package impossible

// One benchmark per experiment in EXPERIMENTS.md (E01–E21), plus the
// ablation benches DESIGN.md calls out. Each bench regenerates the
// experiment's headline quantity and reports it via b.ReportMetric, so
// `go test -bench=. -benchmem` reprints the whole evaluation.

import (
	"math/rand"
	"testing"

	"repro/internal/async"
	"repro/internal/clocks"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/knowledge"
	"repro/internal/registers"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/scenario"
	"repro/internal/sessions"
	"repro/internal/sharedmem"
	"repro/internal/spec"
	"repro/internal/synth"
)

func BenchmarkE01SynthTASMutex(b *testing.B) {
	var passed uint64
	for i := 0; i < b.N; i++ {
		res, err := synth.SearchTASMutex(synth.TASSearchConfig{
			Values: 2, TryStates: 2, RequireLockoutFree: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		passed = res.Passed
	}
	b.ReportMetric(float64(passed), "fair-protocols-found")
}

func BenchmarkE02MutexValues(b *testing.B) {
	var values int
	for i := 0; i < b.N; i++ {
		rep, err := sharedmem.CheckMutex(sharedmem.NewHandoffLock(), sharedmem.CheckMutexOptions{})
		if err != nil {
			b.Fatal(err)
		}
		values = rep.ValuesUsed[0]
	}
	b.ReportMetric(float64(values), "values-for-fairness")
}

func BenchmarkE03RWMutex(b *testing.B) {
	var passed uint64
	for i := 0; i < b.N; i++ {
		res, err := synth.SearchRWMutex(synth.RWSearchConfig{Values: 2, TryStates: 2})
		if err != nil {
			b.Fatal(err)
		}
		passed = res.Passed
	}
	b.ReportMetric(float64(passed), "rw-protocols-found")
}

func BenchmarkE04KExclusion(b *testing.B) {
	var combined int
	for i := 0; i < b.N; i++ {
		rep, err := sharedmem.CheckMutex(sharedmem.NewTicketLock(4), sharedmem.CheckMutexOptions{})
		if err != nil {
			b.Fatal(err)
		}
		combined = rep.CombinedValues
	}
	b.ReportMetric(float64(combined), "joint-memory-contents")
}

func BenchmarkE05ByzantineBounds(b *testing.B) {
	var violations int
	for i := 0; i < b.N; i++ {
		e := &consensus.EIG{Procs: 3, MaxFaults: 1}
		v, err := scenario.SpliceCheck(e, 1, e.Rounds())
		if err != nil {
			b.Fatal(err)
		}
		violations = len(v.Violations)
	}
	b.ReportMetric(float64(violations), "scenario-violations")
}

func BenchmarkE06Connectivity(b *testing.B) {
	line, err := rounds.NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		b.Fatal(err)
	}
	var disagreed float64
	for i := 0; i < b.N; i++ {
		f := &consensus.FloodSet{Procs: 3, MaxFaults: 1}
		v, err := scenario.CutReplayCheck(f, line, []int{1}, f.Rounds())
		if err != nil {
			b.Fatal(err)
		}
		if v.Violation != "" {
			disagreed = 1
		}
	}
	b.ReportMetric(disagreed, "split-brain-violations")
}

func BenchmarkE07ClockSyncFault(b *testing.B) {
	net := clocks.Network{Base: 1, Epsilon: 0.5}
	var skew float64
	for i := 0; i < b.N; i++ {
		e := clocks.UniformExecution(3, net)
		obs := clocks.Observe(e)
		obs[0][2].ReceivedAt -= 10
		obs[1][2].ReceivedAt += 10
		a0 := (clocks.LundeliusLynch{}).Correction(0, obs[0], net)
		a1 := (clocks.LundeliusLynch{}).Correction(1, obs[1], net)
		skew = a1 - a0
		if skew < 0 {
			skew = -skew
		}
	}
	b.ReportMetric(skew, "faulty-skew")
}

func BenchmarkE08RoundLowerBound(b *testing.B) {
	var chain float64
	for i := 0; i < b.N; i++ {
		res, err := consensus.ChainLowerBound(3, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.ChainFound {
			chain = float64(res.ChainLength)
		}
	}
	b.ReportMetric(chain, "chain-length")
}

func BenchmarkE09ApproxAgreement(b *testing.B) {
	inputs := []int{0, 1_000_000, 500_000, 250_000, 750_000}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rep, err := consensus.MeasureApprox(5, 1, 3, inputs, consensus.TwoFacedExtremes(4, 1_000_000))
		if err != nil {
			b.Fatal(err)
		}
		ratio = rep.Ratio
	}
	b.ReportMetric(ratio, "convergence-ratio-k3")
}

func BenchmarkE10MessageBound(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		t := 3
		n := 2*t + 2
		ba := consensus.NewAuthBA(n, t, 0, 0, 3)
		inputs := make([]int, n)
		inputs[0] = 1
		res, err := rounds.Run(ba, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: ba.Rounds()})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.MessagesSent
	}
	b.ReportMetric(float64(msgs), "auth-ba-messages")
}

func BenchmarkE11FLP(b *testing.B) {
	var bivalent int
	for i := 0; i < b.N; i++ {
		rep, err := flp.Analyze(flp.NewWaitQuorum(3), flp.AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		bivalent = rep.BivalentConfigs
	}
	b.ReportMetric(float64(bivalent), "bivalent-configs")
}

func BenchmarkE12TwoGenerals(b *testing.B) {
	var chainLen int
	for i := 0; i < b.N; i++ {
		rep, err := datalink.ChainCheck(&datalink.Handshake{Depth: 4}, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		chainLen = rep.ChainLength
	}
	b.ReportMetric(float64(chainLen), "chain-length")
}

func BenchmarkE13BenOr(b *testing.B) {
	var deliveries float64
	for i := 0; i < b.N; i++ {
		rep, err := async.MeasureBenOr(5, 2, 5, []int{0, 1, 0, 1, 1}, nil, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		deliveries = float64(rep.TotalDeliveries) / float64(rep.Runs)
	}
	b.ReportMetric(deliveries, "avg-deliveries")
}

func BenchmarkE14Commit(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		n := 8
		c := &consensus.TwoPhaseCommit{Procs: n}
		inputs := make([]int, n)
		for j := range inputs {
			inputs[j] = spec.Commit
		}
		res, err := rounds.Run(c, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: 2})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.MessagesSent
	}
	b.ReportMetric(float64(msgs), "commit-messages-n8")
}

func BenchmarkE15Sessions(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		syncRes := sessions.RunSynchronous(8, 5)
		asyncRes, err := sessions.RunTokenBarrier(8, 5)
		if err != nil {
			b.Fatal(err)
		}
		gap = asyncRes.Time / syncRes.Time
	}
	b.ReportMetric(gap, "async-over-sync-time")
}

func BenchmarkE16ClockSkew(b *testing.B) {
	net := clocks.Network{Base: 1, Epsilon: 0.5}
	var skew float64
	for i := 0; i < b.N; i++ {
		adj, err := clocks.AdjustedClocks(clocks.LundeliusLynch{}, clocks.WorstCaseExecution(8, net), net)
		if err != nil {
			b.Fatal(err)
		}
		skew = clocks.MaxSkew(adj)
	}
	b.ReportMetric(skew, "worst-skew-n8")
	b.ReportMetric(clocks.TheoreticalBound(8, net), "bound-n8")
}

func BenchmarkE17AnonymousRing(b *testing.B) {
	var round int
	for i := 0; i < b.N; i++ {
		rep, err := ring.CheckAnonymousSymmetry(ring.NewCountdownProtocol(3), 6, 0, 10)
		if err != nil {
			b.Fatal(err)
		}
		round = rep.RoundOfViolation
	}
	b.ReportMetric(float64(round), "all-leaders-round")
}

func BenchmarkE18RingMessages(b *testing.B) {
	n := 64
	var lcr, hs int
	for i := 0; i < b.N; i++ {
		w, err := ring.RunLCR(ring.DescendingIDs(n))
		if err != nil {
			b.Fatal(err)
		}
		h, err := ring.RunHS(ring.DescendingIDs(n))
		if err != nil {
			b.Fatal(err)
		}
		lcr, hs = w.Messages, h.Messages
	}
	b.ReportMetric(float64(lcr), "lcr-worst-msgs-n64")
	b.ReportMetric(float64(hs), "hs-msgs-n64")
}

func BenchmarkE19ItaiRodeh(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := ring.RunItaiRodeh(16, 16, rng, 1000)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Messages
	}
	b.ReportMetric(float64(msgs), "messages-n16")
}

func BenchmarkE20WaitFree(b *testing.B) {
	var found float64
	for i := 0; i < b.N; i++ {
		res, err := registers.SearchConsensus(registers.ConsSearchConfig{
			Kind: registers.RWRegister, Values: 2, LocalStates: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Found() {
			found = 1
		}
	}
	b.ReportMetric(found, "rw-consensus-found")
}

func BenchmarkE21DataLink(b *testing.B) {
	msgs := []string{"m1", "m2", "m3", "m4", "m5"}
	var packets int
	for i := 0; i < b.N; i++ {
		res, err := datalink.RunABP(msgs, datalink.Script{
			DropData: func(step int) bool { return step%3 == 0 },
		}, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		packets = res.DataPackets
	}
	b.ReportMetric(float64(packets)/float64(len(msgs)), "packets-per-message")
}

// --- Exploration engine benches ---
//
// Sequential/parallel pairs over the two largest seed state spaces: the
// ticket-lock mutex at n=6 (41,083 states) and the FLP wait-quorum
// protocol at n=4 (563,440 states). The parallel variant runs the engine
// at GOMAXPROCS workers (forced through the engine even at one worker, so
// single-core runs measure engine overhead rather than silently aliasing
// the sequential bench). Both report throughput via states/sec.

func benchExplore(b *testing.B, sys core.System[string], parallel bool) {
	b.Helper()
	var states int
	for i := 0; i < b.N; i++ {
		opts := core.ExploreOptions{Parallelism: 1}
		if parallel {
			opts = core.ExploreOptions{Parallelism: 0, Stats: new(engine.Stats)}
		}
		g, err := core.Explore[string](sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		states = g.Len()
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
	b.ReportMetric(float64(states), "states")
}

func BenchmarkExploreSequentialMutex(b *testing.B) {
	benchExplore(b, sharedmem.NewSystem(sharedmem.NewTicketLock(6)), false)
}

func BenchmarkExploreParallelMutex(b *testing.B) {
	benchExplore(b, sharedmem.NewSystem(sharedmem.NewTicketLock(6)), true)
}

func BenchmarkExploreSequentialFLP(b *testing.B) {
	benchExplore(b, flp.NewSystem(flp.NewWaitQuorum(4), nil, 1), false)
}

func BenchmarkExploreParallelFLP(b *testing.B) {
	benchExplore(b, flp.NewSystem(flp.NewWaitQuorum(4), nil, 1), true)
}

// Quotient counterparts of the two exploration benches above: same systems
// under their symmetry canonicalizers. Comparing states and wall time
// against the full-graph pair reads off the orbit reduction directly.

func benchExploreQuotient(b *testing.B, sys core.System[string], canon func(string) string, canonBytes any) {
	b.Helper()
	var st engine.Stats
	for i := 0; i < b.N; i++ {
		g, err := core.Explore[string](sys, core.ExploreOptions{Canon: canon, CanonBytes: canonBytes, Stats: &st})
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() != st.States {
			b.Fatalf("stats/graph state mismatch: %d vs %d", st.States, g.Len())
		}
	}
	b.ReportMetric(float64(st.States)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
	b.ReportMetric(float64(st.States), "states")
	b.ReportMetric(st.ReductionFactor(), "orbit-reduction")
}

func BenchmarkExploreQuotientMutex(b *testing.B) {
	alg := sharedmem.NewTicketLock(6)
	benchExploreQuotient(b, sharedmem.NewSystem(alg), sharedmem.CanonFor(alg), nil)
}

func BenchmarkExploreQuotientFLP(b *testing.B) {
	p := flp.NewWaitQuorum(4)
	canon, err := flp.PermutationCanon(p)
	if err != nil {
		b.Fatal(err)
	}
	canonB, err := flp.PermutationCanonBytes(p)
	if err != nil {
		b.Fatal(err)
	}
	benchExploreQuotient(b, flp.NewSystem(p, nil, 1), canon, canonB)
}

// Partial-order-reduction counterparts over the crash-free wait-quorum n=4
// space (the resilience-1 space is provably POR-irreducible, see
// flp.DeliveryIndependence): full graph, ample-set reduction, and the
// POR+quotient stack. Comparing states against the Full bench reads off
// the reduction; por-branch is the engine's per-state branch factor saving.

func benchExplorePOR(b *testing.B, sys core.System[string], opts core.ExploreOptions) {
	b.Helper()
	var st engine.Stats
	opts.Stats = &st
	for i := 0; i < b.N; i++ {
		g, err := core.Explore[string](sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() != st.States {
			b.Fatalf("stats/graph state mismatch: %d vs %d", st.States, g.Len())
		}
	}
	b.ReportMetric(float64(st.States)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
	b.ReportMetric(float64(st.States), "states")
	if st.POREnabled {
		b.ReportMetric(st.PORReductionFactor(), "por-branch")
	}
}

func BenchmarkExploreFullFLPCrashFree(b *testing.B) {
	p := flp.NewWaitQuorum(4)
	benchExplorePOR(b, flp.NewSystem(p, nil, 0), core.ExploreOptions{})
}

func BenchmarkExplorePORFLPCrashFree(b *testing.B) {
	p := flp.NewWaitQuorum(4)
	benchExplorePOR(b, flp.NewSystem(p, nil, 0), core.ExploreOptions{
		Independent: flp.DeliveryIndependence(p),
		Visible:     flp.DecisionVisibility(p),
	})
}

func BenchmarkExplorePORQuotientFLPCrashFree(b *testing.B) {
	p := flp.NewWaitQuorum(4)
	canon, err := flp.PermutationCanon(p)
	if err != nil {
		b.Fatal(err)
	}
	benchExplorePOR(b, flp.NewSystem(p, nil, 0), core.ExploreOptions{
		Canon:       canon,
		Independent: flp.DeliveryIndependence(p),
		Visible:     flp.DecisionVisibility(p),
	})
}

func BenchmarkExplorePORAsyncLCR(b *testing.B) {
	a, err := ring.NewAsyncLCR(ring.DescendingIDs(7))
	if err != nil {
		b.Fatal(err)
	}
	benchExplorePOR(b, a.System(), core.ExploreOptions{Independent: a.Independence()})
}

// --- Ablation benches (DESIGN.md) ---

// chainSys is a plain linear system used to weigh exploration costs.
type chainSys struct{ n int }

func (c chainSys) Init() []int { return []int{0} }

func (c chainSys) Steps(s int) []core.Step[int] {
	if s >= c.n {
		return nil
	}
	return []core.Step[int]{{To: s + 1, Label: "inc", Actor: 0}}
}

// stringChainSys is the same system over string-encoded states, to measure
// the cost of string canonicalization in the explorer.
type stringChainSys struct{ n int }

func (c stringChainSys) Init() []string { return []string{string(make([]byte, 1))} }

func (c stringChainSys) Steps(s string) []core.Step[string] {
	if len(s) >= c.n {
		return nil
	}
	return []core.Step[string]{{To: s + "x", Label: "inc", Actor: 0}}
}

func BenchmarkAblationCanonicalizationInt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Explore[int](chainSys{n: 2000}, core.ExploreOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCanonicalizationString(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Explore[string](stringChainSys{n: 2000}, core.ExploreOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSymmetryOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.SearchTASMutex(synth.TASSearchConfig{
			Values: 2, TryStates: 2, Symmetric: true, RequireLockoutFree: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSymmetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.SearchTASMutex(synth.TASSearchConfig{
			Values: 2, TryStates: 2, Symmetric: false, RequireLockoutFree: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSearchOrderBFSValence(b *testing.B) {
	// Valence propagation over the wait-quorum graph: the BFS-built graph
	// plus the backward fixpoint, the core of every bivalence argument.
	rep, err := flp.Analyze(flp.NewWaitQuorum(3), flp.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	_ = rep
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flp.Analyze(flp.NewWaitQuorum(3), flp.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE08KnowledgeLevels(b *testing.B) {
	someOne := func(e knowledge.Execution) bool {
		for _, v := range e.Inputs {
			if v == 1 {
				return true
			}
		}
		return false
	}
	var ck float64
	for i := 0; i < b.N; i++ {
		u, err := knowledge.NewCrashUniverse(3, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		e, _ := u.Find([]int{1, 1, 1})
		if u.CommonKnowledge(e, someOne) {
			ck = 1
		}
	}
	b.ReportMetric(ck, "common-knowledge-at-t+1")
}
