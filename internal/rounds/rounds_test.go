package rounds

import (
	"strconv"
	"testing"
)

// echoProto broadcasts its input every round and decides the max seen.
type echoProto struct{ n int }

func (e echoProto) Name() string       { return "echo" }
func (e echoProto) NumProcs() int      { return e.n }
func (e echoProto) Init(_, in int) any { return in }

func (e echoProto) Send(_ int, state any, _, _ int) Message {
	return strconv.Itoa(state.(int))
}

func (e echoProto) Receive(_ int, state any, _ int, msgs []Message) any {
	best := state.(int)
	for _, m := range msgs {
		if m == "" {
			continue
		}
		if v, err := strconv.Atoi(m); err == nil && v > best {
			best = v
		}
	}
	return best
}

func (e echoProto) Decide(_ int, state any) (int, bool) { return state.(int), true }

func TestRunFailureFree(t *testing.T) {
	res, err := Run(echoProto{n: 3}, []int{0, 1, 0}, NoFaults{}, RunOptions{Rounds: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range res.Decisions {
		if d != 1 {
			t.Errorf("p%d decided %d, want 1", p, d)
		}
	}
	if res.MessagesSent != 6 || res.MessagesDelivered != 6 {
		t.Errorf("messages sent/delivered = %d/%d, want 6/6", res.MessagesSent, res.MessagesDelivered)
	}
}

func TestRunValidatesArguments(t *testing.T) {
	if _, err := Run(echoProto{n: 3}, []int{0, 1}, NoFaults{}, RunOptions{Rounds: 1}); err == nil {
		t.Error("input length mismatch should error")
	}
	if _, err := Run(echoProto{n: 3}, []int{0, 1, 0}, NoFaults{}, RunOptions{}); err == nil {
		t.Error("zero rounds should error")
	}
	wrong := CompleteGraph(4)
	if _, err := Run(echoProto{n: 3}, []int{0, 1, 0}, NoFaults{}, RunOptions{Rounds: 1, Network: wrong}); err == nil {
		t.Error("network size mismatch should error")
	}
}

func TestCrashScheduleSemantics(t *testing.T) {
	sched := &CrashSchedule{Crashes: map[int]Crash{
		1: {Round: 2, DeliverTo: map[int]bool{0: true}},
	}}
	if !sched.Faulty(1) || sched.Faulty(0) {
		t.Fatal("faulty classification wrong")
	}
	if sched.NumFaulty() != 1 {
		t.Fatal("NumFaulty wrong")
	}
	// Before the crash round: full delivery.
	if m, ok := sched.Deliver(1, 1, 2, "x"); !ok || m != "x" {
		t.Error("round 1 should deliver")
	}
	// Crash round: only the listed receivers.
	if _, ok := sched.Deliver(2, 1, 2, "x"); ok {
		t.Error("round 2 to p2 should drop")
	}
	if m, ok := sched.Deliver(2, 1, 0, "x"); !ok || m != "x" {
		t.Error("round 2 to p0 should deliver")
	}
	// After the crash: nothing.
	if _, ok := sched.Deliver(3, 1, 0, "x"); ok {
		t.Error("round 3 should drop")
	}
	// Other senders unaffected.
	if m, ok := sched.Deliver(3, 0, 2, "y"); !ok || m != "y" {
		t.Error("nonfaulty sender should deliver")
	}
}

func TestByzantineStrategyForgesOnlyCorrupt(t *testing.T) {
	byz := &ByzantineStrategy{
		Corrupt: map[int]bool{2: true},
		Forge:   func(_, _, _ int, _ Message) Message { return "lie" },
	}
	if m, _ := byz.Deliver(1, 0, 1, "truth"); m != "truth" {
		t.Error("honest sender message should pass through")
	}
	if m, _ := byz.Deliver(1, 2, 1, "truth"); m != "lie" {
		t.Error("corrupt sender message should be forged")
	}
}

func TestGraphConnectivity(t *testing.T) {
	ring4, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if got := ring4.Connectivity(); got != 2 {
		t.Errorf("ring connectivity = %d, want 2", got)
	}
	if got := CompleteGraph(4).Connectivity(); got != 3 {
		t.Errorf("K4 connectivity = %d, want 3", got)
	}
	line, err := NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if got := line.Connectivity(); got != 1 {
		t.Errorf("line connectivity = %d, want 1", got)
	}
}

func TestNewGraphRejectsBadEdges(t *testing.T) {
	if _, err := NewGraph(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge should error")
	}
	if _, err := NewGraph(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop should error")
	}
}

func TestRunOnSparseNetwork(t *testing.T) {
	// On a line 0-1-2, a value at p0 needs 2 rounds to reach p2.
	line, err := NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	res, err := Run(echoProto{n: 3}, []int{1, 0, 0}, NoFaults{}, RunOptions{Rounds: 1, Network: line})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Decisions[2] != 0 {
		t.Error("p2 should not have learned the value in 1 round")
	}
	res, err = Run(echoProto{n: 3}, []int{1, 0, 0}, NoFaults{}, RunOptions{Rounds: 2, Network: line})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Decisions[2] != 1 {
		t.Error("p2 should have learned the value in 2 rounds")
	}
}

func TestRecordViews(t *testing.T) {
	res, err := Run(echoProto{n: 2}, []int{0, 1}, NoFaults{}, RunOptions{Rounds: 2, RecordViews: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// p0's round-1 view of p1 is "1".
	if got := res.Views[0][1]; got != "1" {
		t.Errorf("p0 view of p1 round 1 = %q, want \"1\"", got)
	}
	// No self-messages.
	if got := res.Views[0][0]; got != "" {
		t.Errorf("p0 view of itself = %q, want empty", got)
	}
}
