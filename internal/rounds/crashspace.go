package rounds

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/core"
	"repro/internal/engine"
)

// CrashSpace is the lockstep adversary-choice state space underlying the
// §2.2.2 crash-fault round lower bound: a configuration is (round, crashed
// set). Between round ticks the adversary may crash any live process,
// MaxFaults in total; a tick then advances all live processes one
// synchronous round together, up to the Rounds horizon. Exploring it
// enumerates every crash pattern the t+1-round argument quantifies over —
// and since the protocol-independent pattern space only sees *which*
// processes crashed up to relabeling, quotienting by process permutation
// (Canon) collapses each round's C(n, k) crash sets to one per cardinality.
type CrashSpace struct {
	// Procs is the number of processes (1..8, one mask byte).
	Procs int
	// MaxFaults bounds the total number of crashes (the t of the bound).
	MaxFaults int
	// Rounds is the lockstep horizon.
	Rounds int
}

// crashSpaceState encodes (round, crashed mask) in two bytes.
func crashSpaceState(round int, mask byte) string {
	return string([]byte{byte(round), mask})
}

func (c CrashSpace) validate() error {
	if c.Procs < 1 || c.Procs > 8 {
		return fmt.Errorf("rounds: CrashSpace.Procs = %d, want 1..8", c.Procs)
	}
	if c.MaxFaults < 0 || c.MaxFaults > c.Procs {
		return fmt.Errorf("rounds: CrashSpace.MaxFaults = %d, want 0..%d", c.MaxFaults, c.Procs)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("rounds: CrashSpace.Rounds = %d, want >= 0", c.Rounds)
	}
	return nil
}

type crashSpaceSystem struct{ c CrashSpace }

var _ core.System[string] = crashSpaceSystem{}

func (s crashSpaceSystem) Init() []string { return []string{crashSpaceState(0, 0)} }

func (s crashSpaceSystem) Steps(st string) []core.Step[string] {
	round, mask := int(st[0]), st[1]
	var out []core.Step[string]
	if bits.OnesCount8(mask) < s.c.MaxFaults {
		for p := 0; p < s.c.Procs; p++ {
			if mask&(1<<p) != 0 {
				continue
			}
			out = append(out, core.Step[string]{
				To:    crashSpaceState(round, mask|1<<p),
				Label: fmt.Sprintf("crash p%d", p),
				Actor: core.EnvironmentActor,
			})
		}
	}
	if round < s.c.Rounds {
		out = append(out, core.Step[string]{
			To:    crashSpaceState(round+1, mask),
			Label: fmt.Sprintf("round %d", round+1),
			Actor: core.EnvironmentActor,
		})
	}
	return out
}

var _ core.ScratchSystem[string] = crashSpaceSystem{}

// csScratch is ExpandInto's per-worker label render buffer.
type csScratch struct {
	lbl []byte
}

// ExpandInto implements core.ScratchSystem: Steps' crash and round-advance
// transitions, rendered into the worker's scratch buffer.
func (s crashSpaceSystem) ExpandInto(st string, x *engine.Ctx[string]) {
	if len(st) != 2 {
		// Not an encoding this system produced: defer to the spec path.
		for _, e := range s.Steps(st) {
			x.Emit(e.To, e.Label, e.Actor)
		}
		return
	}
	sc, _ := x.Sys.(*csScratch)
	if sc == nil {
		sc = &csScratch{}
		x.Sys = sc
	}
	round, mask := int(st[0]), st[1]
	if bits.OnesCount8(mask) < s.c.MaxFaults {
		for p := 0; p < s.c.Procs; p++ {
			if mask&(1<<p) != 0 {
				continue
			}
			buf := append(x.Scratch[:0], byte(round), mask|1<<p)
			x.Scratch = buf
			lbl := append(sc.lbl[:0], "crash p"...)
			lbl = strconv.AppendInt(lbl, int64(p), 10)
			sc.lbl = lbl
			x.EmitBytes(buf, x.Label(lbl), core.EnvironmentActor)
		}
	}
	if round < s.c.Rounds {
		buf := append(x.Scratch[:0], byte(round+1), mask)
		x.Scratch = buf
		lbl := append(sc.lbl[:0], "round "...)
		lbl = strconv.AppendInt(lbl, int64(round+1), 10)
		sc.lbl = lbl
		x.EmitBytes(buf, x.Label(lbl), core.EnvironmentActor)
	}
}

// System returns the crash-pattern space as a core.System over encoded
// (round, crashed-set) states. Configurations at the horizon with no crash
// budget left are terminal.
func (c CrashSpace) System() (core.System[string], error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return crashSpaceSystem{c: c}, nil
}

// Canon returns the process-permutation canonicalizer for the crash space:
// crash sets of equal cardinality are related by relabeling, so the
// representative packs the crashed set into the low-order bits. It
// satisfies the engine.Canonicalizer contract exactly (crashing any of the
// n-k live processes of a k-crash set leads to the same representative, so
// successor multisets commute, multiplicities included).
func (c CrashSpace) Canon() func(string) string {
	return func(st string) string {
		mask := st[1]
		packed := byte(1)<<bits.OnesCount8(mask) - 1
		if packed == mask {
			return st
		}
		return string([]byte{st[0], packed})
	}
}
