// Package rounds implements the synchronous message-passing round model of
// §2.2: n processes proceed in lockstep rounds, each round sending
// messages along the edges of a network graph and then updating state on
// the received messages, under an adversary that injects crash, omission
// or Byzantine faults. The paper notes these models "are a lot simpler
// than those used for asynchronous systems, because the notions of timing
// and admissibility are much simpler" — which is why the round lower
// bounds (§2.2.2) and process-count bounds (§2.2.1) live here.
package rounds

import (
	"errors"
	"fmt"

	"repro/internal/spec"
)

// Message is an opaque message payload; the empty string means "no
// message sent".
type Message = string

// NoDecision marks an undecided process (alias of spec.Undecided).
const NoDecision = spec.Undecided

// Protocol is a deterministic synchronous-round protocol. States are
// opaque to the runner.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// NumProcs returns the number of processes.
	NumProcs() int
	// Init returns process p's initial state for the given input value.
	Init(p, input int) any
	// Send returns the message process p sends to process q in round r
	// (1-based), or "" for none. Send must not mutate the state.
	Send(p int, state any, r, q int) Message
	// Receive folds the messages received by p in round r into its state.
	// msgs[q] is the message from q ("" if none arrived).
	Receive(p int, state any, r int, msgs []Message) any
	// Decide reports p's decision, if it has decided.
	Decide(p int, state any) (int, bool)
}

// Adversary controls faults during a run. Implementations decide which
// processes are faulty and what actually travels on each link.
type Adversary interface {
	// Faulty reports whether process p misbehaves in this execution.
	Faulty(p int) bool
	// Deliver intercepts the message m that process "from" would send to
	// "to" in round r. It returns the message actually delivered and
	// whether anything is delivered at all. For nonfaulty senders it must
	// return (m, true).
	Deliver(r, from, to int, m Message) (Message, bool)
}

// NoFaults is the adversary of the failure-free execution.
type NoFaults struct{}

var _ Adversary = NoFaults{}

// Faulty implements Adversary.
func (NoFaults) Faulty(int) bool { return false }

// Deliver implements Adversary.
func (NoFaults) Deliver(_, _, _ int, m Message) (Message, bool) { return m, true }

// CrashSchedule crashes selected processes at chosen rounds, delivering
// only a prefix-subset of their final-round messages — the classic crash
// fault of the t+1 round lower bound (§2.2.2).
type CrashSchedule struct {
	// Crashes maps a process to its crash event; processes not present
	// are correct.
	Crashes map[int]Crash
}

// Crash describes one crash event.
type Crash struct {
	// Round is the 1-based round in which the process crashes.
	Round int
	// DeliverTo lists the processes that still receive the crashing
	// process's round-Round message. Others receive nothing, and no
	// message is sent in later rounds.
	DeliverTo map[int]bool
}

var _ Adversary = (*CrashSchedule)(nil)

// Faulty implements Adversary.
func (c *CrashSchedule) Faulty(p int) bool {
	_, ok := c.Crashes[p]
	return ok
}

// Deliver implements Adversary.
func (c *CrashSchedule) Deliver(r, from, to int, m Message) (Message, bool) {
	cr, ok := c.Crashes[from]
	if !ok || r < cr.Round {
		return m, true
	}
	if r > cr.Round {
		return "", false
	}
	if cr.DeliverTo[to] {
		return m, true
	}
	return "", false
}

// NumFaulty returns the number of crashing processes.
func (c *CrashSchedule) NumFaulty() int { return len(c.Crashes) }

// ByzantineStrategy lets chosen processes send arbitrary messages. Forge
// receives the round, link and the honest message and returns the
// corrupted one.
type ByzantineStrategy struct {
	// Corrupt marks the Byzantine processes.
	Corrupt map[int]bool
	// Forge rewrites outgoing messages of corrupt processes.
	Forge func(r, from, to int, honest Message) Message
}

var _ Adversary = (*ByzantineStrategy)(nil)

// Faulty implements Adversary.
func (b *ByzantineStrategy) Faulty(p int) bool { return b.Corrupt[p] }

// Deliver implements Adversary.
func (b *ByzantineStrategy) Deliver(r, from, to int, m Message) (Message, bool) {
	if !b.Corrupt[from] {
		return m, true
	}
	return b.Forge(r, from, to, m), true
}

// Graph is an undirected network over n nodes. A nil Graph means the
// complete graph.
type Graph struct {
	n   int
	adj [][]bool
}

// NewGraph builds an n-node graph from an edge list.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	g := &Graph{n: n, adj: make([][]bool, n)}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("rounds: invalid edge %v in %d-node graph", e, n)
		}
		g.adj[e[0]][e[1]] = true
		g.adj[e[1]][e[0]] = true
	}
	return g, nil
}

// CompleteGraph returns the complete graph on n nodes.
func CompleteGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([][]bool, n)}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
		for j := range g.adj[i] {
			g.adj[i][j] = i != j
		}
	}
	return g
}

// Connected reports whether p and q share an edge.
func (g *Graph) Connected(p, q int) bool { return g.adj[p][q] }

// Connectivity returns the vertex connectivity of the graph, computed by
// brute force over vertex-subset removals (adequate for the small
// networks of the experiments).
func (g *Graph) Connectivity() int {
	if g.n <= 1 {
		return 0
	}
	// Complete graph: n-1 by convention.
	complete := true
	for i := 0; i < g.n && complete; i++ {
		for j := i + 1; j < g.n; j++ {
			if !g.adj[i][j] {
				complete = false
				break
			}
		}
	}
	if complete {
		return g.n - 1
	}
	for k := 1; k < g.n-1; k++ {
		if g.removableSubsetDisconnects(k) {
			return k
		}
	}
	return g.n - 1
}

func (g *Graph) removableSubsetDisconnects(k int) bool {
	subset := make([]int, k)
	var rec func(start, i int) bool
	rec = func(start, i int) bool {
		if i == k {
			return g.disconnectedWithout(subset)
		}
		for v := start; v < g.n; v++ {
			subset[i] = v
			if rec(v+1, i+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

func (g *Graph) disconnectedWithout(removed []int) bool {
	gone := make([]bool, g.n)
	for _, v := range removed {
		gone[v] = true
	}
	start := -1
	remaining := 0
	for v := 0; v < g.n; v++ {
		if !gone[v] {
			remaining++
			if start < 0 {
				start = v
			}
		}
	}
	if remaining <= 1 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := 0; w < g.n; w++ {
			if g.adj[v][w] && !gone[w] && !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count < remaining
}

// Result reports a completed run.
type Result struct {
	// Decisions[p] is p's decision or NoDecision.
	Decisions []int
	// Rounds is the number of rounds executed.
	Rounds int
	// MessagesSent counts nonempty messages put on links (before
	// adversarial filtering), a proxy for the §2.2.3 message bounds.
	MessagesSent int
	// MessagesDelivered counts messages that actually arrived.
	MessagesDelivered int
	// BytesSent totals the sizes of sent messages — the communication
	// bit-complexity measure of §2.4.2/[84] and the contrast between
	// EIG's exponential messages and phase-king's constant ones.
	BytesSent int
	// Faulty[p] reports whether the adversary corrupted p.
	Faulty []bool
	// Views[p] is p's full receive transcript, used by chain and scenario
	// arguments: entry r*n+q is the message p received from q in round
	// r+1 ("" if none).
	Views [][]Message
}

// RunOptions configures Run.
type RunOptions struct {
	// Rounds is the number of rounds to execute (required, >= 1).
	Rounds int
	// Network is the communication graph (nil = complete).
	Network *Graph
	// RecordViews retains per-process receive transcripts in the Result.
	RecordViews bool
}

// Run executes the protocol synchronously for the configured number of
// rounds under the adversary and collects decisions.
func Run(p Protocol, inputs []int, adv Adversary, opts RunOptions) (Result, error) {
	n := p.NumProcs()
	if len(inputs) != n {
		return Result{}, fmt.Errorf("rounds: %d inputs for %d processes", len(inputs), n)
	}
	if opts.Rounds < 1 {
		return Result{}, errors.New("rounds: RunOptions.Rounds must be >= 1")
	}
	net := opts.Network
	if net == nil {
		net = CompleteGraph(n)
	}
	if net.n != n {
		return Result{}, fmt.Errorf("rounds: network has %d nodes for %d processes", net.n, n)
	}
	states := make([]any, n)
	for i := 0; i < n; i++ {
		states[i] = p.Init(i, inputs[i])
	}
	res := Result{
		Decisions: make([]int, n),
		Rounds:    opts.Rounds,
		Faulty:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		res.Faulty[i] = adv.Faulty(i)
	}
	if opts.RecordViews {
		res.Views = make([][]Message, n)
		for i := range res.Views {
			res.Views[i] = make([]Message, opts.Rounds*n)
		}
	}
	inbox := make([][]Message, n)
	for i := range inbox {
		inbox[i] = make([]Message, n)
	}
	for r := 1; r <= opts.Rounds; r++ {
		for i := range inbox {
			for j := range inbox[i] {
				inbox[i][j] = ""
			}
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to || !net.Connected(from, to) {
					continue
				}
				m := p.Send(from, states[from], r, to)
				if m != "" {
					res.MessagesSent++
					res.BytesSent += len(m)
				}
				got, ok := adv.Deliver(r, from, to, m)
				if ok && got != "" {
					inbox[to][from] = got
					res.MessagesDelivered++
				}
			}
		}
		for q := 0; q < n; q++ {
			states[q] = p.Receive(q, states[q], r, inbox[q])
			if opts.RecordViews {
				copy(res.Views[q][(r-1)*n:r*n], inbox[q])
			}
		}
	}
	for q := 0; q < n; q++ {
		if d, ok := p.Decide(q, states[q]); ok {
			res.Decisions[q] = d
		} else {
			res.Decisions[q] = NoDecision
		}
	}
	return res, nil
}

// OmissionSchedule makes selected processes send-omission faulty: they
// follow the protocol but some of their messages silently vanish. Unlike
// a crash, an omitter keeps participating, and unlike a Byzantine process
// it never lies — the intermediate fault model of §2.2.2's
// crash/omission/Byzantine gradation.
type OmissionSchedule struct {
	// Omit[p] lists the dropped (round, receiver) pairs for faulty p.
	Omit map[int]map[[2]int]bool
}

var _ Adversary = (*OmissionSchedule)(nil)

// Faulty implements Adversary.
func (o *OmissionSchedule) Faulty(p int) bool {
	_, ok := o.Omit[p]
	return ok
}

// Deliver implements Adversary.
func (o *OmissionSchedule) Deliver(r, from, to int, m Message) (Message, bool) {
	drops, ok := o.Omit[from]
	if !ok {
		return m, true
	}
	if drops[[2]int{r, to}] {
		return "", false
	}
	return m, true
}
