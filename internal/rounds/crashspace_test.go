package rounds

import (
	"math/bits"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestCrashSpaceCounts(t *testing.T) {
	c := CrashSpace{Procs: 5, MaxFaults: 2, Rounds: 3}
	sys, err := c.System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	full, err := core.Explore[string](sys, core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	// Each round replicates every crash set of cardinality <= t:
	// (R+1) * (C(5,0)+C(5,1)+C(5,2)) = 4 * 16.
	if want := 4 * 16; full.Len() != want {
		t.Fatalf("full space has %d states, want %d", full.Len(), want)
	}
	var st engine.Stats
	quo, err := core.Explore[string](sys, core.ExploreOptions{
		Canon: c.Canon(), VerifyCanon: 1, Stats: &st,
	})
	if err != nil {
		t.Fatalf("quotient explore: %v", err)
	}
	// Up to relabeling only the crash count matters: (R+1) * (t+1).
	if want := 4 * 3; quo.Len() != want {
		t.Fatalf("quotient has %d states, want %d", quo.Len(), want)
	}
	if !st.CanonEnabled || st.ReductionFactor() <= 1 {
		t.Fatalf("missing orbit telemetry: %+v", st)
	}

	// Orbit completeness: every reachable crash pattern's representative is
	// interned, and the quotient holds nothing but representatives.
	canon := c.Canon()
	orbits := make(map[string]bool, full.Len())
	for i := 0; i < full.Len(); i++ {
		rep := canon(full.State(i))
		orbits[rep] = true
		if _, ok := quo.StateID(rep); !ok {
			t.Fatalf("quotient misses reachable orbit of %q", full.State(i))
		}
	}
	if len(orbits) != quo.Len() {
		t.Fatalf("full graph spans %d orbits but quotient has %d states", len(orbits), quo.Len())
	}

	// The fault bound — an orbit-invariant predicate — agrees on both graphs.
	bound := func(s string) bool { return bits.OnesCount8(s[1]) <= c.MaxFaults }
	if _, _, ok := full.CheckInvariant(bound); !ok {
		t.Fatalf("fault bound violated on full graph")
	}
	if _, _, ok := quo.CheckInvariant(bound); !ok {
		t.Fatalf("fault bound violated on quotient graph")
	}
}

func TestCrashSpaceValidates(t *testing.T) {
	for _, c := range []CrashSpace{
		{Procs: 0, MaxFaults: 0, Rounds: 1},
		{Procs: 9, MaxFaults: 1, Rounds: 1},
		{Procs: 3, MaxFaults: 4, Rounds: 1},
		{Procs: 3, MaxFaults: 1, Rounds: -1},
	} {
		if _, err := c.System(); err == nil {
			t.Fatalf("System accepted invalid %+v", c)
		}
	}
}
