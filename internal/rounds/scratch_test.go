package rounds

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestCrashSpaceExpandIntoMatchesSteps checks, configuration by
// configuration over the whole crash-pattern space, that the
// zero-allocation expansion emits exactly Steps' transitions.
func TestCrashSpaceExpandIntoMatchesSteps(t *testing.T) {
	c := CrashSpace{Procs: 6, MaxFaults: 3, Rounds: 8}
	sysI, err := c.System()
	if err != nil {
		t.Fatal(err)
	}
	sys := sysI.(crashSpaceSystem)
	seen := map[string]bool{}
	frontier := sys.Init()
	checked := 0
	for len(frontier) > 0 {
		var next []string
		for _, s := range frontier {
			if seen[s] {
				continue
			}
			seen[s] = true
			want := sys.Steps(s)
			var got []core.Step[string]
			x := engine.CollectCtx(func(to string, label string, actor int) {
				got = append(got, core.Step[string]{To: to, Label: label, Actor: actor})
			})
			sys.ExpandInto(s, x)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("state %q:\nSteps      = %v\nExpandInto = %v", s, want, got)
			}
			checked++
			for _, st := range want {
				next = append(next, st.To)
			}
		}
		frontier = next
	}
	if checked == 0 {
		t.Fatal("walk checked nothing")
	}
}
