package ring

import (
	"fmt"
	"math/rand"
)

// This file mechanizes Angluin's symmetry argument (§2.4.1): in a ring of
// indistinguishable deterministic processes with identical inputs, every
// process has the same state after every round, so no algorithm can ever
// put one process in a state ("I am the leader") that the others are not
// in. The executor runs an arbitrary anonymous protocol in lockstep and
// verifies the symmetry invariant round by round; the moment a protocol
// declares a leader, all n processes have declared simultaneously — the
// contradiction made concrete. Itai–Rodeh randomized election (§2.4.2,
// [66]) circumvents the argument by breaking symmetry with coin flips.

// Status classifies an anonymous process's self-assessment.
type Status int

const (
	// Unknown: the process has not resolved its role.
	Unknown Status = iota + 1
	// Leader: the process claims leadership.
	Leader
	// Follower: the process has renounced leadership.
	Follower
)

// AnonymousProtocol is a deterministic, anonymous, synchronous ring
// protocol: all processes run identical code with no identifiers. Each
// round every process sends one message in each direction, then folds the
// two received messages into its state.
type AnonymousProtocol interface {
	// Name identifies the protocol.
	Name() string
	// Init returns the (identical) initial state for a common input.
	Init(input int) string
	// Round computes the messages to send from the current state.
	Round(state string) (toLeft, toRight string)
	// Receive folds the messages arriving from the two neighbors.
	Receive(state, fromLeft, fromRight string) string
	// Status reports the process's self-assessment.
	Status(state string) Status
}

// SymmetryReport is the verdict of CheckAnonymousSymmetry.
type SymmetryReport struct {
	// SymmetricForever is true when all rounds kept all states equal and
	// no leader emerged (the protocol cannot ever elect).
	SymmetricForever bool
	// AllDeclaredLeader is true when the protocol "elected": every
	// process declared leadership in the same round — a uniqueness
	// violation.
	AllDeclaredLeader bool
	// RoundOfViolation is the round in which all processes declared.
	RoundOfViolation int
	// RoundsRun is the number of rounds simulated.
	RoundsRun int
}

// CheckAnonymousSymmetry runs the protocol on a ring of n identical
// processes for up to maxRounds rounds and reports the Angluin dichotomy.
// It returns an error if the symmetry invariant ever breaks — which for a
// truly anonymous deterministic protocol cannot happen, so an error means
// the protocol smuggled in an identifier.
func CheckAnonymousSymmetry(p AnonymousProtocol, n, input, maxRounds int) (SymmetryReport, error) {
	if n < 2 {
		return SymmetryReport{}, fmt.Errorf("ring: need n >= 2, got %d", n)
	}
	states := make([]string, n)
	for i := range states {
		states[i] = p.Init(input)
	}
	rep := SymmetryReport{}
	for round := 1; round <= maxRounds; round++ {
		rep.RoundsRun = round
		toLeft := make([]string, n)
		toRight := make([]string, n)
		for i, s := range states {
			toLeft[i], toRight[i] = p.Round(s)
		}
		for i := range states {
			fromLeft := toRight[(i-1+n)%n]
			fromRight := toLeft[(i+1)%n]
			states[i] = p.Receive(states[i], fromLeft, fromRight)
		}
		for i := 1; i < n; i++ {
			if states[i] != states[0] {
				return rep, fmt.Errorf("ring: symmetry broke at round %d (process %d differs) — protocol is not anonymous", round, i)
			}
		}
		if p.Status(states[0]) == Leader {
			rep.AllDeclaredLeader = true
			rep.RoundOfViolation = round
			return rep, nil
		}
	}
	rep.SymmetricForever = true
	return rep, nil
}

// countdownProto "elects" by declaring leadership after k rounds — the
// naive attempt the symmetry argument demolishes: all n processes declare
// together.
type countdownProto struct {
	k int
}

// NewCountdownProtocol returns the declare-after-k-rounds protocol.
func NewCountdownProtocol(k int) AnonymousProtocol { return &countdownProto{k: k} }

func (c *countdownProto) Name() string                  { return fmt.Sprintf("countdown(%d)", c.k) }
func (c *countdownProto) Init(int) string               { return "0" }
func (c *countdownProto) Round(string) (string, string) { return "x", "x" }

func (c *countdownProto) Receive(state, _, _ string) string {
	var r int
	fmt.Sscanf(state, "%d", &r)
	return fmt.Sprintf("%d", r+1)
}

func (c *countdownProto) Status(state string) Status {
	var r int
	fmt.Sscanf(state, "%d", &r)
	if r >= c.k {
		return Leader
	}
	return Unknown
}

// foreverProto never declares: the other horn of the dichotomy.
type foreverProto struct{}

// NewForeverProtocol returns a protocol that never declares a leader.
func NewForeverProtocol() AnonymousProtocol { return foreverProto{} }

func (foreverProto) Name() string                  { return "forever-undecided" }
func (foreverProto) Init(int) string               { return "s" }
func (foreverProto) Round(string) (string, string) { return "m", "m" }
func (foreverProto) Receive(s, _, _ string) string { return s }
func (foreverProto) Status(string) Status          { return Unknown }

// ItaiRodehResult reports a randomized anonymous election.
type ItaiRodehResult struct {
	// Leader is the winning position.
	Leader int
	// Phases is the number of id-drawing phases used.
	Phases int
	// Messages counts hop-by-hop traffic.
	Messages int
}

// RunItaiRodeh elects a leader on an anonymous unidirectional ring of n
// processes using randomization: in each phase every remaining candidate
// draws a random id from [0, space); the ids circulate with hop counts and
// duplicate flags; a unique maximum wins, tied maxima re-draw. The ring
// size n is known to the processes (provably necessary: without n, even
// randomized election is impossible, §2.4.2 [1]).
func RunItaiRodeh(n, space int, rng *rand.Rand, maxPhases int) (ItaiRodehResult, error) {
	if n < 2 || space < 2 {
		return ItaiRodehResult{}, fmt.Errorf("ring: need n >= 2 and space >= 2, got %d/%d", n, space)
	}
	res := ItaiRodehResult{Leader: -1}
	candidates := make([]bool, n)
	for i := range candidates {
		candidates[i] = true
	}
	for phase := 1; phase <= maxPhases; phase++ {
		res.Phases = phase
		ids := make([]int, n)
		for i := range ids {
			if candidates[i] {
				ids[i] = rng.Intn(space)
			} else {
				ids[i] = -1
			}
		}
		maxID := -1
		for i, c := range candidates {
			if c && ids[i] > maxID {
				maxID = ids[i]
			}
		}
		winners := 0
		for i, c := range candidates {
			if c && ids[i] == maxID {
				winners++
			}
		}
		// Token circulation cost: each candidate's token travels until
		// swallowed by a strictly larger id or, for the maxima, the whole
		// ring. Count hops explicitly.
		for i, c := range candidates {
			if !c {
				continue
			}
			if ids[i] == maxID {
				res.Messages += n
				continue
			}
			hops := 0
			for j := 1; j < n; j++ {
				hops++
				pos := (i + j) % n
				if candidates[pos] && ids[pos] > ids[i] {
					break
				}
			}
			res.Messages += hops
		}
		if winners == 1 {
			for i, c := range candidates {
				if c && ids[i] == maxID {
					res.Leader = i
					return res, nil
				}
			}
		}
		// Tie: only the tied maxima survive to the next phase.
		for i := range candidates {
			candidates[i] = candidates[i] && ids[i] == maxID
		}
	}
	return res, ErrNoElection
}
