package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestAsyncLCRValidates(t *testing.T) {
	if _, err := NewAsyncLCR([]int{0}); err == nil {
		t.Fatal("single process should be rejected")
	}
	if _, err := NewAsyncLCR([]int{0, 8}); err == nil {
		t.Fatal("id 8 should be rejected (mask is one byte)")
	}
	if _, err := NewAsyncLCR([]int{0, 1, 2, 3, 4, 5, 6, 7, 0}); err == nil {
		t.Fatal("9 processes should be rejected")
	}
}

func TestAsyncLCRElectsOnlyMaximum(t *testing.T) {
	for _, ids := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		a, err := NewAsyncLCR(ids)
		if err != nil {
			t.Fatalf("NewAsyncLCR(%v): %v", ids, err)
		}
		g, err := a.CheckElection(core.ExploreOptions{})
		if err != nil {
			t.Fatalf("CheckElection(%v): %v", ids, err)
		}
		if g.Len() == 0 {
			t.Fatalf("empty graph for %v", ids)
		}
	}
}

// TestAsyncLCRDeterministicParallel: the exploration workload behind
// ringbench -parallel must be schedule-independent like every other system.
func TestAsyncLCRDeterministicParallel(t *testing.T) {
	a, err := NewAsyncLCR(DescendingIDs(5))
	if err != nil {
		t.Fatal(err)
	}
	var st1, st8 engine.Stats
	g1, err := a.CheckElection(core.ExploreOptions{Parallelism: 1, Stats: &st1})
	if err != nil {
		t.Fatal(err)
	}
	g8, err := a.CheckElection(core.ExploreOptions{Parallelism: 8, Stats: &st8})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g8.Len() || st1.States != st8.States || st1.Edges != st8.Edges {
		t.Fatalf("parallel exploration diverged: %d/%d states, stats %+v vs %+v",
			g1.Len(), g8.Len(), st1, st8)
	}
	for i := 0; i < g1.Len(); i++ {
		if g1.State(i) != g8.State(i) {
			t.Fatalf("state order diverged at %d", i)
		}
	}
}
