package ring

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/engine"
)

// AsyncLCR is the LCR election recast as an asynchronous state space: every
// process has launched its id clockwise, and the adversary (the scheduler)
// picks which in-flight token to deliver next. Exploring the induced
// core.System covers every interleaving at once — the exhaustive
// counterpart to RunLCR's single synchronous schedule, and the workload
// behind ringbench's -parallel/-stats exploration sweep.
//
// Each id is in flight at most once (a token is forwarded or swallowed, and
// ids are unique), so a link's content is a subset of the id space and a
// configuration packs into n+1 bytes: one in-flight bitmask per link plus
// the elected leader's position (0xFF while the election is open).
type AsyncLCR struct {
	ids []int
}

// NewAsyncLCR validates ids (distinct, in [0, 8) so each link mask is one
// byte) and returns the async election system factory.
func NewAsyncLCR(ids []int) (*AsyncLCR, error) {
	if err := validateIDs(ids); err != nil {
		return nil, err
	}
	if len(ids) > 8 {
		return nil, fmt.Errorf("ring: AsyncLCR supports at most 8 processes, got %d", len(ids))
	}
	for _, id := range ids {
		if id >= 8 {
			return nil, fmt.Errorf("ring: AsyncLCR needs ids < 8, got %d", id)
		}
	}
	return &AsyncLCR{ids: append([]int(nil), ids...)}, nil
}

const noLeader = 0xFF

// System returns the exploration system: states are the packed
// configurations, steps deliver one pending token across one link.
func (a *AsyncLCR) System() core.System[string] { return asyncLCRSystem{a} }

// Leader decodes the elected position from a state, or -1 while open.
func (a *AsyncLCR) Leader(s string) int {
	if b := s[len(a.ids)]; b != noLeader {
		return int(b)
	}
	return -1
}

// MaxIDPosition returns the position holding the largest id — the only
// legal election outcome.
func (a *AsyncLCR) MaxIDPosition() int {
	best := 0
	for i, id := range a.ids {
		if id > a.ids[best] {
			best = i
		}
	}
	return best
}

type asyncLCRSystem struct{ a *AsyncLCR }

func (s asyncLCRSystem) Init() []string {
	n := len(s.a.ids)
	st := make([]byte, n+1)
	for i, id := range s.a.ids {
		st[i] = 1 << uint(id) // each process's own id is on its outgoing link
	}
	st[n] = noLeader
	return []string{string(st)}
}

func (s asyncLCRSystem) Steps(st string) []core.Step[string] {
	n := len(s.a.ids)
	if st[n] != noLeader {
		return nil // election decided; the space is a DAG to the leaders
	}
	var out []core.Step[string]
	for link := 0; link < n; link++ {
		mask := st[link]
		for id := 0; id < 8; id++ {
			if mask&(1<<uint(id)) == 0 {
				continue
			}
			dst := (link + 1) % n
			next := []byte(st)
			next[link] &^= 1 << uint(id)
			switch {
			case id == s.a.ids[dst]:
				next[n] = byte(dst) // token came home: dst wins
			case id > s.a.ids[dst]:
				next[dst] |= 1 << uint(id) // forward
			}
			// Smaller ids are swallowed: the token just disappears.
			out = append(out, core.Step[string]{
				To:    string(next),
				Label: fmt.Sprintf("deliver id %d to p%d", id, dst),
				Actor: dst,
			})
		}
	}
	return out
}

var _ core.ScratchSystem[string] = asyncLCRSystem{}

// lcrScratch is ExpandInto's per-worker label render buffer.
type lcrScratch struct {
	lbl []byte
}

// ExpandInto implements core.ScratchSystem: the same deliveries as Steps,
// in the same link-then-id order with byte-identical labels, rendered into
// the worker's scratch buffer instead of a fresh []byte per successor.
func (s asyncLCRSystem) ExpandInto(st string, x *engine.Ctx[string]) {
	n := len(s.a.ids)
	if len(st) != n+1 {
		// Not an encoding this system produced: defer to the spec path.
		for _, e := range s.Steps(st) {
			x.Emit(e.To, e.Label, e.Actor)
		}
		return
	}
	if st[n] != noLeader {
		return // election decided; the space is a DAG to the leaders
	}
	sc, _ := x.Sys.(*lcrScratch)
	if sc == nil {
		sc = &lcrScratch{}
		x.Sys = sc
	}
	for link := 0; link < n; link++ {
		mask := st[link]
		for id := 0; id < 8; id++ {
			if mask&(1<<uint(id)) == 0 {
				continue
			}
			dst := (link + 1) % n
			buf := append(x.Scratch[:0], st...)
			buf[link] &^= 1 << uint(id)
			switch {
			case id == s.a.ids[dst]:
				buf[n] = byte(dst) // token came home: dst wins
			case id > s.a.ids[dst]:
				buf[dst] |= 1 << uint(id) // forward
			}
			// Smaller ids are swallowed: the token just disappears.
			x.Scratch = buf
			lbl := append(sc.lbl[:0], "deliver id "...)
			lbl = append(lbl, byte('0'+id)) // ids are < 8 by construction
			lbl = append(lbl, " to p"...)
			lbl = strconv.AppendInt(lbl, int64(dst), 10)
			sc.lbl = lbl
			x.EmitBytes(buf, x.Label(lbl), dst)
		}
	}
}

// Independence returns the ample-set independence relation of the async
// election space (engine.Independence, for core.ExploreOptions.Independent):
// two deliveries commute when they ride disjoint links — different receivers
// means each step touches only its own link byte and receiver byte, and
// distinct ids occupy distinct mask bits even when one delivery forwards
// onto the other's link. Deliveries that declare a leader are visible (they
// decide the election and make the state terminal, disabling everything
// else), so they are dependent on every other event, which forces full
// expansion wherever an election could complete. Election reachability
// survives the reduction because every ample set still delivers some token
// and tokens make monotone progress toward the max-id home; CheckElection
// pins that end to end.
func (a *AsyncLCR) Independence() engine.Independence[string] {
	n := len(a.ids)
	return func(_ string, x, y engine.Action[string]) bool {
		return x.Actor != y.Actor && x.To[n] == noLeader && y.To[n] == noLeader
	}
}

// CheckElection explores every delivery schedule and verifies the election
// invariant: whenever a leader is declared it is the maximum-id position,
// and some schedule does elect it. It returns the explored graph for
// further inspection along with the number of states.
func (a *AsyncLCR) CheckElection(opts core.ExploreOptions) (*core.Graph[string], error) {
	g, err := core.Explore[string](a.System(), opts)
	if err != nil {
		return nil, err
	}
	want := a.MaxIDPosition()
	elected := false
	for i := 0; i < g.Len(); i++ {
		switch l := a.Leader(g.State(i)); {
		case l == want:
			elected = true
		case l >= 0:
			return nil, fmt.Errorf("ring: some schedule elected position %d, want the max-id position %d", l, want)
		}
	}
	if !elected {
		return nil, ErrNoElection
	}
	return g, nil
}
