// Package ring implements leader election in ring networks and the
// impossibility/lower-bound apparatus of §2.4: the LCR and
// Hirschberg–Sinclair algorithms whose message counts bracket the
// Ω(n log n) lower bound, the Frederickson–Lynch "variable speeds"
// counterexample algorithm (O(n) messages bought with time exponential in
// the identifiers — demonstrating that the lower bound's assumptions are
// necessary), Angluin's symmetry argument for anonymous rings, and the
// Itai–Rodeh randomized election that circumvents it.
package ring

import (
	"errors"
	"fmt"
)

// ErrNoElection is returned when an election fails to complete within its
// budget.
var ErrNoElection = errors.New("ring: no leader elected within budget")

// ElectionResult reports one election run.
type ElectionResult struct {
	// Leader is the elected process's ring position.
	Leader int
	// LeaderID is the elected identifier.
	LeaderID int
	// Messages counts all messages sent (hop by hop).
	Messages int
	// Rounds is the number of synchronous rounds used.
	Rounds int
}

// RunLCR runs the LeLann–Chang–Roberts algorithm on a unidirectional ring
// whose position i holds ids[i]: every process launches its id clockwise;
// a process forwards ids larger than its own and swallows smaller ones;
// an id returning home wins. Messages are counted hop by hop. Worst case
// Θ(n²) (descending arrangement), best case n.
func RunLCR(ids []int) (ElectionResult, error) {
	n := len(ids)
	if err := validateIDs(ids); err != nil {
		return ElectionResult{}, err
	}
	// tokens[i] is the id in flight on the link from i to i+1, or -1.
	tokens := make([]int, n)
	for i := range tokens {
		tokens[i] = ids[i]
	}
	res := ElectionResult{Leader: -1}
	inflight := n
	for round := 1; inflight > 0; round++ {
		res.Rounds = round
		next := make([]int, n)
		for i := range next {
			next[i] = -1
		}
		for i, tok := range tokens {
			if tok < 0 {
				continue
			}
			res.Messages++
			dst := (i + 1) % n
			switch {
			case tok == ids[dst]:
				res.Leader = dst
				res.LeaderID = tok
				inflight--
			case tok > ids[dst]:
				next[dst] = tok // forward
			default:
				inflight-- // swallowed
			}
		}
		tokens = next
		if res.Leader >= 0 {
			break
		}
	}
	if res.Leader < 0 {
		return res, ErrNoElection
	}
	return res, nil
}

func validateIDs(ids []int) error {
	if len(ids) < 2 {
		return fmt.Errorf("ring: need at least 2 processes, got %d", len(ids))
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("ring: negative id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("ring: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}

// hsMessage is a Hirschberg–Sinclair probe or reply.
type hsMessage struct {
	id   int
	hops int  // remaining travel budget for probes
	out  bool // probe (outbound) vs reply (inbound)
}

// RunHS runs the Hirschberg–Sinclair algorithm on a bidirectional ring:
// candidates probe neighborhoods of doubling radius in both directions;
// probes are swallowed by processes with larger ids; a candidate whose
// probe comes home as a probe is the leader. O(n log n) messages in every
// case.
func RunHS(ids []int) (ElectionResult, error) {
	n := len(ids)
	if err := validateIDs(ids); err != nil {
		return ElectionResult{}, err
	}
	res := ElectionResult{Leader: -1}
	// Per-direction link queues: cw[i] travels i -> i+1, ccw[i] travels
	// i -> i-1. Each entry is processed in synchronous rounds.
	type link struct{ msgs []hsMessage }
	cw := make([]link, n)
	ccw := make([]link, n)
	phase := make([]int, n)   // current phase per candidate
	replies := make([]int, n) // replies received in current phase
	for i := 0; i < n; i++ {
		cw[i].msgs = append(cw[i].msgs, hsMessage{id: ids[i], hops: 1, out: true})
		ccw[i].msgs = append(ccw[i].msgs, hsMessage{id: ids[i], hops: 1, out: true})
		res.Messages += 2
	}
	for round := 1; res.Leader < 0; round++ {
		res.Rounds = round
		if round > 16*n*n { // generous safety budget
			return res, ErrNoElection
		}
		newCW := make([]link, n)
		newCCW := make([]link, n)
		send := func(from int, clockwise bool, m hsMessage) {
			res.Messages++
			if clockwise {
				newCW[from].msgs = append(newCW[from].msgs, m)
			} else {
				newCCW[from].msgs = append(newCCW[from].msgs, m)
			}
		}
		deliver := func(to int, clockwise bool, m hsMessage) {
			if m.out {
				switch {
				case m.id == ids[to]:
					res.Leader = to // probe came home
					res.LeaderID = m.id
				case m.id > ids[to] && m.hops > 1:
					send(to, clockwise, hsMessage{id: m.id, hops: m.hops - 1, out: true})
				case m.id > ids[to]:
					// Probe exhausted: turn it around as a reply.
					send(to, !clockwise, hsMessage{id: m.id, out: false})
				default:
					// Swallowed by a larger id.
				}
				return
			}
			// Reply traveling home.
			if m.id == ids[to] {
				replies[to]++
				if replies[to] == 2 {
					phase[to]++
					replies[to] = 0
					budget := 1 << uint(phase[to])
					send(to, true, hsMessage{id: m.id, hops: budget, out: true})
					send(to, false, hsMessage{id: m.id, hops: budget, out: true})
				}
				return
			}
			send(to, clockwise, m) // relay the reply in its direction of travel
		}
		quiet := true
		for i := 0; i < n; i++ {
			for _, m := range cw[i].msgs {
				quiet = false
				deliver((i+1)%n, true, m)
			}
			for _, m := range ccw[i].msgs {
				quiet = false
				deliver((i-1+n)%n, false, m)
			}
		}
		if quiet {
			return res, ErrNoElection
		}
		cw, ccw = newCW, newCCW
	}
	return res, nil
}

// RunVariableSpeeds runs the Frederickson–Lynch style counterexample
// algorithm on a synchronous unidirectional ring: the token carrying id v
// moves one hop every 2^v rounds, and a process swallows tokens whose id
// exceeds the smallest it has seen. The smallest id's token laps the ring
// alone: O(n) messages in every execution, at the price of running time
// ~n·2^(min id) — time exponential in the identifier magnitudes, which is
// exactly why the Ω(n log n) bound's assumptions (comparison-based, or
// time bounded relative to the id space) are necessary (§2.4.2).
func RunVariableSpeeds(ids []int) (ElectionResult, error) {
	n := len(ids)
	if err := validateIDs(ids); err != nil {
		return ElectionResult{}, err
	}
	type token struct {
		id  int
		pos int
	}
	tokens := make([]token, 0, n)
	smallest := make([]int, n) // smallest id seen by each process
	minID := ids[0]
	for i, id := range ids {
		tokens = append(tokens, token{id: id, pos: i})
		smallest[i] = id
		if id < minID {
			minID = id
		}
	}
	res := ElectionResult{Leader: -1}
	for round := 1; ; round++ {
		res.Rounds = round
		if round > n*(1<<uint(minID))+n {
			return res, ErrNoElection
		}
		kept := tokens[:0]
		for _, tk := range tokens {
			// A token's period 2^id overflows int for id >= 63; such a
			// token cannot move within any representable round count, so
			// it stays put (the modulus would otherwise divide by zero).
			if tk.id >= 63 || round%(1<<uint(tk.id)) != 0 {
				kept = append(kept, tk) // not this token's round to move
				continue
			}
			res.Messages++
			dst := (tk.pos + 1) % n
			if tk.id == ids[dst] {
				res.Leader = dst
				res.LeaderID = tk.id
				return res, nil
			}
			if tk.id < smallest[dst] {
				smallest[dst] = tk.id
				kept = append(kept, token{id: tk.id, pos: dst})
			}
			// Otherwise swallowed: dst has seen something smaller.
		}
		tokens = append([]token(nil), kept...)
		if len(tokens) == 0 {
			return res, ErrNoElection
		}
	}
}

// DescendingIDs returns the LCR worst-case arrangement n-1, n-2, ..., 0.
func DescendingIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// AscendingIDs returns the LCR best-case arrangement 0, 1, ..., n-1.
func AscendingIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// BitReversalIDs returns a highly symmetric arrangement (the paper's
// 0,4,2,6,1,5,3,7 example generalized): position i holds the bit-reversal
// of i. n must be a power of two.
func BitReversalIDs(n int) ([]int, error) {
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	if 1<<uint(bits) != n {
		return nil, fmt.Errorf("ring: BitReversalIDs needs a power of two, got %d", n)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<uint(b)) != 0 {
				r |= 1 << uint(bits-1-b)
			}
		}
		out[i] = r
	}
	return out, nil
}
