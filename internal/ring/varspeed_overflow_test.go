package ring

import "testing"

// TestRunVariableSpeedsLargeIDs is the regression test for the 2^id
// overflow: a token's period 1<<id overflows int64 at id >= 63, and the
// round modulus used to divide by zero (panic) on such tokens. Rings of
// 64 and 128 processes necessarily carry ids >= 63, so they exercise the
// guard; the min-id token still laps the ring and elects its owner.
func TestRunVariableSpeedsLargeIDs(t *testing.T) {
	for _, n := range []int{64, 128} {
		ids := make([]int, n)
		for i := range ids {
			// Distinct ids 0..n-1, min id 0 placed mid-ring.
			ids[i] = (i + n/3) % n
		}
		minPos := 0
		for i, id := range ids {
			if id < ids[minPos] {
				minPos = i
			}
		}
		res, err := RunVariableSpeeds(ids)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Leader != minPos || res.LeaderID != 0 {
			t.Errorf("n=%d: elected position %d (id %d), want position %d (id 0)",
				n, res.Leader, res.LeaderID, minPos)
		}
		if res.Messages > 2*n {
			t.Errorf("n=%d: %d messages, want O(n) (the min token laps alone)", n, res.Messages)
		}
	}
}
