package ring

// RunPetersonUnidirectional runs Peterson's O(n log n) election for
// unidirectional rings (§2.4.2's upper-bound landscape): in each phase an
// active process adopts the maximum of its own temporary id and the ids of
// its two nearest active predecessors — it survives exactly when its
// predecessor's id is a local maximum — so at most half the candidates
// survive each phase. Relay nodes forward messages; every hop is counted.
func RunPetersonUnidirectional(ids []int) (ElectionResult, error) {
	n := len(ids)
	if err := validateIDs(ids); err != nil {
		return ElectionResult{}, err
	}
	res := ElectionResult{Leader: -1}
	// active holds ring positions of still-competing processes in ring
	// order; tids their temporary identifiers.
	active := make([]int, n)
	tids := make([]int, n)
	for i := range active {
		active[i] = i
		tids[i] = ids[i]
	}
	gap := func(from, to int) int { return ((to - from) + n) % n }
	for phase := 1; len(active) > 1; phase++ {
		res.Rounds = phase
		m := len(active)
		// First wave: every active sends its tid to its active successor.
		// Hop cost: the full ring is traversed once per wave.
		d1 := make([]int, m) // d1[i]: tid of i's active predecessor
		for i := 0; i < m; i++ {
			pred := (i - 1 + m) % m
			res.Messages += gap(active[pred], active[i])
			d1[i] = tids[pred]
		}
		// Second wave: forward the received value one more active hop.
		d2 := make([]int, m) // d2[i]: tid of i's second active predecessor
		for i := 0; i < m; i++ {
			pred := (i - 1 + m) % m
			res.Messages += gap(active[pred], active[i])
			d2[i] = d1[pred]
		}
		// Survival rule: i survives iff d1[i] > tids[i] and d1[i] > d2[i],
		// adopting d1[i]; a unique maximum tid always survives.
		var nextActive, nextTids []int
		for i := 0; i < m; i++ {
			if d1[i] > tids[i] && d1[i] > d2[i] {
				nextActive = append(nextActive, active[i])
				nextTids = append(nextTids, d1[i])
			}
		}
		if len(nextActive) == 0 {
			// All candidates died (possible only when m == 1 handled by
			// the loop condition, so this is a defect guard).
			return res, ErrNoElection
		}
		active, tids = nextActive, nextTids
	}
	// Announcement lap: the survivor circulates a leader message.
	res.Messages += n
	res.Leader = active[0]
	res.LeaderID = ids[active[0]]
	return res, nil
}
