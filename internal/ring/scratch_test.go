package ring

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestAsyncLCRExpandIntoMatchesSteps checks, state by state over the whole
// reachable election space, that the zero-allocation expansion emits
// exactly Steps' transitions.
func TestAsyncLCRExpandIntoMatchesSteps(t *testing.T) {
	a, err := NewAsyncLCR(DescendingIDs(5))
	if err != nil {
		t.Fatal(err)
	}
	sys := asyncLCRSystem{a}
	seen := map[string]bool{}
	frontier := sys.Init()
	checked := 0
	for len(frontier) > 0 {
		var next []string
		for _, s := range frontier {
			if seen[s] {
				continue
			}
			seen[s] = true
			want := sys.Steps(s)
			var got []core.Step[string]
			x := engine.CollectCtx(func(to string, label string, actor int) {
				got = append(got, core.Step[string]{To: to, Label: label, Actor: actor})
			})
			sys.ExpandInto(s, x)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("state %q:\nSteps      = %v\nExpandInto = %v", s, want, got)
			}
			checked++
			for _, st := range want {
				next = append(next, st.To)
			}
		}
		frontier = next
	}
	if checked == 0 {
		t.Fatal("walk checked nothing")
	}
}

// TestAsyncLCRAliasingClean runs the election exploration with the
// aliasing falsifier checking every state and compares against the
// sequential Steps-driven graph.
func TestAsyncLCRAliasingClean(t *testing.T) {
	a, err := NewAsyncLCR(DescendingIDs(5))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.Explore[string](a.System(), core.ExploreOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Explore[string](a.System(), core.ExploreOptions{
		Parallelism: 2, VerifyAliasing: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("state counts differ: %d vs %d", seq.Len(), par.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		if seq.State(i) != par.State(i) || !reflect.DeepEqual(seq.Successors(i), par.Successors(i)) {
			t.Fatalf("graphs diverge at state %d", i)
		}
	}
}
