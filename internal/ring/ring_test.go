package ring

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLCRElectsMaximum(t *testing.T) {
	cases := [][]int{
		{3, 1, 2},
		{0, 1, 2, 3, 4},
		{9, 2, 7, 4, 1, 0},
	}
	for _, ids := range cases {
		res, err := RunLCR(ids)
		if err != nil {
			t.Fatalf("RunLCR(%v): %v", ids, err)
		}
		wantID := 0
		for _, id := range ids {
			if id > wantID {
				wantID = id
			}
		}
		if res.LeaderID != wantID {
			t.Errorf("ids=%v: leader id %d, want %d", ids, res.LeaderID, wantID)
		}
		if ids[res.Leader] != wantID {
			t.Errorf("ids=%v: leader position %d does not hold the max", ids, res.Leader)
		}
	}
}

func TestLCRMessageExtremes(t *testing.T) {
	n := 16
	worst, err := RunLCR(DescendingIDs(n))
	if err != nil {
		t.Fatalf("RunLCR: %v", err)
	}
	best, err := RunLCR(AscendingIDs(n))
	if err != nil {
		t.Fatalf("RunLCR: %v", err)
	}
	// Descending: id at distance k from max travels k+1... total Θ(n²).
	if worst.Messages < n*n/2 {
		t.Errorf("worst-case messages = %d, want >= %d (Θ(n²))", worst.Messages, n*n/2)
	}
	// Ascending: every non-max id dies after 1 hop; the max laps the ring.
	if best.Messages != 2*n-1 {
		t.Errorf("best-case messages = %d, want %d", best.Messages, 2*n-1)
	}
}

func TestLCRPropertyLeaderIsMax(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		rng := rand.New(rand.NewSource(seed))
		ids := rng.Perm(n * 3)[:n]
		res, err := RunLCR(ids)
		if err != nil {
			return false
		}
		for _, id := range ids {
			if id > res.LeaderID {
				return false
			}
		}
		return ids[res.Leader] == res.LeaderID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHSElectsMaximumWithNLogNMessages(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		ids := DescendingIDs(n)
		res, err := RunHS(ids)
		if err != nil {
			t.Fatalf("RunHS(n=%d): %v", n, err)
		}
		if res.LeaderID != n-1 {
			t.Errorf("n=%d: leader id %d, want %d", n, res.LeaderID, n-1)
		}
		bound := int(10 * float64(n) * (math.Log2(float64(n)) + 2))
		if res.Messages > bound {
			t.Errorf("n=%d: HS used %d messages, above the O(n log n) bound %d", n, res.Messages, bound)
		}
	}
}

func TestHSBeatsLCROnWorstCase(t *testing.T) {
	n := 32
	lcr, err := RunLCR(DescendingIDs(n))
	if err != nil {
		t.Fatalf("RunLCR: %v", err)
	}
	hs, err := RunHS(DescendingIDs(n))
	if err != nil {
		t.Fatalf("RunHS: %v", err)
	}
	if hs.Messages >= lcr.Messages {
		t.Errorf("HS (%d msgs) should beat LCR (%d msgs) on the descending ring", hs.Messages, lcr.Messages)
	}
}

func TestHSPropertyAgreesWithLCR(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%13) + 3
		rng := rand.New(rand.NewSource(seed))
		ids := rng.Perm(n * 2)[:n]
		a, errA := RunLCR(ids)
		b, errB := RunHS(ids)
		return errA == nil && errB == nil && a.LeaderID == b.LeaderID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVariableSpeedsLinearMessagesExponentialTime(t *testing.T) {
	// The counterexample algorithm (§2.4.2): O(n) messages, time growing
	// with 2^(min id).
	for _, n := range []int{4, 8, 16} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i // min id 0 at position 0
		}
		res, err := RunVariableSpeeds(ids)
		if err != nil {
			t.Fatalf("RunVariableSpeeds(n=%d): %v", n, err)
		}
		if res.LeaderID != 0 {
			t.Errorf("n=%d: leader id %d, want the minimum 0", n, res.LeaderID)
		}
		if res.Messages > 4*n {
			t.Errorf("n=%d: %d messages, want O(n) (<= %d)", n, res.Messages, 4*n)
		}
	}
	// Time grows exponentially in the minimum id.
	base, err := RunVariableSpeeds([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("RunVariableSpeeds: %v", err)
	}
	shifted, err := RunVariableSpeeds([]int{5, 6, 7, 8})
	if err != nil {
		t.Fatalf("RunVariableSpeeds: %v", err)
	}
	if shifted.Rounds < 8*base.Rounds {
		t.Errorf("rounds %d vs %d: time should blow up exponentially with id magnitude", shifted.Rounds, base.Rounds)
	}
	if shifted.Messages > 2*base.Messages {
		t.Errorf("messages %d vs %d: message count should stay O(n)", shifted.Messages, base.Messages)
	}
}

func TestValidateIDs(t *testing.T) {
	if _, err := RunLCR([]int{1}); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := RunLCR([]int{1, 1}); err == nil {
		t.Error("duplicate ids should be rejected")
	}
	if _, err := RunLCR([]int{-1, 2}); err == nil {
		t.Error("negative ids should be rejected")
	}
}

func TestBitReversalIDs(t *testing.T) {
	ids, err := BitReversalIDs(8)
	if err != nil {
		t.Fatalf("BitReversalIDs: %v", err)
	}
	want := []int{0, 4, 2, 6, 1, 5, 3, 7} // the paper's figure
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("BitReversalIDs(8) = %v, want %v", ids, want)
		}
	}
	if _, err := BitReversalIDs(6); err == nil {
		t.Error("non-power-of-two should be rejected")
	}
}

// TestAnonymousCountdownViolatesUniqueness: the naive anonymous protocol
// "elects" all n processes simultaneously — Angluin's contradiction.
func TestAnonymousCountdownViolatesUniqueness(t *testing.T) {
	rep, err := CheckAnonymousSymmetry(NewCountdownProtocol(3), 5, 0, 10)
	if err != nil {
		t.Fatalf("CheckAnonymousSymmetry: %v", err)
	}
	if !rep.AllDeclaredLeader {
		t.Fatal("countdown protocol should have all processes declare leadership")
	}
	if rep.RoundOfViolation != 3 {
		t.Errorf("violation at round %d, want 3", rep.RoundOfViolation)
	}
}

// TestAnonymousForeverNeverElects: the other horn — a protocol that stays
// symmetric forever cannot elect.
func TestAnonymousForeverNeverElects(t *testing.T) {
	rep, err := CheckAnonymousSymmetry(NewForeverProtocol(), 4, 1, 50)
	if err != nil {
		t.Fatalf("CheckAnonymousSymmetry: %v", err)
	}
	if !rep.SymmetricForever {
		t.Fatal("forever protocol should stay symmetric and undecided")
	}
}

// TestAnonymousSymmetryInvariantHoldsForAnyProtocol: property test — any
// deterministic anonymous protocol built from a transition table keeps all
// states equal. The table is derived from the seed.
func TestAnonymousSymmetryInvariantHoldsForAnyProtocol(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &randomTableProto{rng: rng, table: map[string]string{}}
		rep, err := CheckAnonymousSymmetry(p, 4, 0, 20)
		return err == nil && (rep.SymmetricForever || rep.AllDeclaredLeader)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomTableProto is a deterministic protocol with a random (but fixed
// per instance) transition table, for the symmetry property test.
type randomTableProto struct {
	rng   *rand.Rand
	table map[string]string
}

func (r *randomTableProto) Name() string    { return "random-table" }
func (r *randomTableProto) Init(int) string { return "a" }

func (r *randomTableProto) Round(state string) (string, string) {
	return state[:1], state[:1]
}

func (r *randomTableProto) Receive(state, l, rgt string) string {
	key := state + "|" + l + "|" + rgt
	if v, ok := r.table[key]; ok {
		return v
	}
	v := string(rune('a' + r.rng.Intn(4)))
	r.table[key] = v
	return v
}

func (r *randomTableProto) Status(state string) Status {
	if state == "d" {
		return Leader
	}
	return Unknown
}

// TestItaiRodehElectsUniqueLeader: randomization circumvents Angluin
// (E19).
func TestItaiRodehElectsUniqueLeader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	phasesTotal, messagesTotal := 0, 0
	runs := 50
	for r := 0; r < runs; r++ {
		res, err := RunItaiRodeh(8, 8, rng, 200)
		if err != nil {
			t.Fatalf("run %d: %v", r, err)
		}
		if res.Leader < 0 || res.Leader >= 8 {
			t.Fatalf("run %d: bad leader %d", r, res.Leader)
		}
		phasesTotal += res.Phases
		messagesTotal += res.Messages
	}
	// With id space = n, expected phases are O(1) (well under 3).
	if avg := float64(phasesTotal) / float64(runs); avg > 3 {
		t.Errorf("average phases %.2f, want < 3", avg)
	}
	if messagesTotal == 0 {
		t.Error("expected nonzero message counts")
	}
}

func TestItaiRodehValidatesArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RunItaiRodeh(1, 4, rng, 10); err == nil {
		t.Error("n=1 should be rejected")
	}
	if _, err := RunItaiRodeh(4, 1, rng, 10); err == nil {
		t.Error("space=1 should be rejected")
	}
}

func TestNoElectionError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, err := RunItaiRodeh(4, 2, rng, 0) // zero phase budget
	if !errors.Is(err, ErrNoElection) {
		t.Fatalf("err = %v, want ErrNoElection", err)
	}
}

func TestPetersonUnidirectionalElectsUniqueLeader(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		res, err := RunPetersonUnidirectional(DescendingIDs(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Leader < 0 || res.Leader >= n {
			t.Fatalf("n=%d: bad leader %d", n, res.Leader)
		}
		bound := int(6*float64(n)*(math.Log2(float64(n))+1)) + n
		if res.Messages > bound {
			t.Errorf("n=%d: %d messages, above O(n log n) bound %d", n, res.Messages, bound)
		}
	}
}

func TestPetersonUnidirectionalPhases(t *testing.T) {
	// At most ceil(log2 n)+1 phases: half the candidates die per phase.
	res, err := RunPetersonUnidirectional(DescendingIDs(32))
	if err != nil {
		t.Fatalf("RunPetersonUnidirectional: %v", err)
	}
	if res.Rounds > 6 {
		t.Errorf("phases = %d, want <= log2(32)+1", res.Rounds)
	}
}

func TestLCRAverageCaseIsNLogN(t *testing.T) {
	// §2.4.2 ([87]): the average message count of LCR over random
	// arrangements is Θ(n log n) — far below the n²/2 worst case.
	n := 64
	rng := rand.New(rand.NewSource(9))
	total := 0
	runs := 40
	for r := 0; r < runs; r++ {
		ids := rng.Perm(n)
		res, err := RunLCR(ids)
		if err != nil {
			t.Fatalf("RunLCR: %v", err)
		}
		total += res.Messages
	}
	avg := float64(total) / float64(runs)
	nln := float64(n) * math.Log(float64(n))
	if avg > 2.5*nln {
		t.Errorf("average %f exceeds 2.5 n ln n = %f", avg, 2.5*nln)
	}
	if avg >= float64(n*n)/4 {
		t.Errorf("average %f should be far below the quadratic worst case", avg)
	}
}
