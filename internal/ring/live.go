package ring

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runtime"
)

// LiveLCR runs LCR election as a real concurrent system under
// internal/runtime: one goroutine per ring position, each id launched
// clockwise as a live message, the adversary choosing delivery order (and
// optionally delaying or crash-starving processes). Its reference model
// is AsyncLCR, available when the ring is small enough to explore (n ≤ 8,
// ids < 8); larger rings run live-only.
//
// The live protocol is exactly the model's: on receiving id v, position p
// elects itself if v is its own id, forwards if v exceeds its id, and
// swallows otherwise. The Buggy variant forwards its own returning id
// instead of electing — the election edge the model takes makes the model
// state terminal, so the buggy implementation's next delivery falls off
// the explored graph and the refinement oracle rejects it.
type LiveLCR struct {
	ids   []int
	buggy bool

	// Live verdict state, written by the electing process and read by
	// Check after the run has joined its goroutines.
	elected  bool
	leader   int
	leaderID int
}

// NewLiveLCR validates ids (distinct, nonnegative — no magnitude bound:
// large rings just have no model) and returns the live workload.
func NewLiveLCR(ids []int) (*LiveLCR, error) {
	if err := validateIDs(ids); err != nil {
		return nil, err
	}
	return &LiveLCR{ids: append([]int(nil), ids...)}, nil
}

// NewBuggyLiveLCR returns the deliberately broken variant: a process
// receiving its own id forwards it instead of electing itself. The ring
// then circulates the maximum id forever; the refinement oracle catches
// the first delivery after the missed election.
func NewBuggyLiveLCR(ids []int) (*LiveLCR, error) {
	w, err := NewLiveLCR(ids)
	if err != nil {
		return nil, err
	}
	w.buggy = true
	return w, nil
}

// Name implements runtime.Workload.
func (l *LiveLCR) Name() string {
	if l.buggy {
		return "async-lcr-buggy"
	}
	return "async-lcr"
}

// NumProcs implements runtime.Workload.
func (l *LiveLCR) NumProcs() int { return len(l.ids) }

// Supports implements runtime.Workload: delay and crash only. The model
// has no loss or duplication edges — a dropped token would end the
// election, which LCR's channels do not do.
func (l *LiveLCR) Supports() runtime.Faults {
	return runtime.FaultDelay | runtime.FaultCrash
}

// Spawn implements runtime.Workload.
func (l *LiveLCR) Spawn(int64) []runtime.Proc {
	l.elected, l.leader, l.leaderID = false, -1, -1
	out := make([]runtime.Proc, len(l.ids))
	for p := range out {
		out[p] = &liveLCRProc{w: l, pos: p}
	}
	return out
}

// Model implements runtime.Workload: the explored AsyncLCR graph, or nil
// at live-only scale.
func (l *LiveLCR) Model() (*core.Graph[string], error) {
	if len(l.ids) > 8 {
		return nil, nil
	}
	for _, id := range l.ids {
		if id >= 8 {
			return nil, nil
		}
	}
	a, err := NewAsyncLCR(l.ids)
	if err != nil {
		return nil, err
	}
	return core.Explore[string](a.System(), core.ExploreOptions{})
}

// Check implements runtime.Workload: election uniqueness and agreement
// with the model. If the live run elected, the leader must be the max-id
// position and every consistent model end state must name the same
// leader; if it did not, no end state may have a leader either.
func (l *LiveLCR) Check(_ *runtime.Result, g *core.Graph[string], ends []int) error {
	a, err := NewAsyncLCR(l.ids)
	if err != nil {
		return err
	}
	if l.elected && l.leader != a.MaxIDPosition() {
		return fmt.Errorf("ring: live run elected position %d, want the max-id position %d",
			l.leader, a.MaxIDPosition())
	}
	for _, e := range ends {
		ml := a.Leader(g.State(e))
		switch {
		case l.elected && ml != l.leader:
			return fmt.Errorf("ring: live leader %d but consistent model state %d has leader %d",
				l.leader, e, ml)
		case !l.elected && ml >= 0:
			return fmt.Errorf("ring: live run elected nobody but consistent model state %d has leader %d", e, ml)
		}
	}
	return nil
}

// liveLCRProc is one live ring position.
type liveLCRProc struct {
	w   *LiveLCR
	pos int
}

// Start implements runtime.Proc: launch the own id clockwise. The model's
// initial state has every id already in flight, so initial sends are part
// of the initial configuration, not model steps.
func (p *liveLCRProc) Start() []runtime.Action {
	return []runtime.Action{{
		Kind:    runtime.ActDeliver,
		From:    p.pos,
		To:      (p.pos + 1) % len(p.w.ids),
		Payload: p.w.ids[p.pos],
	}}
}

// Handle implements runtime.Proc.
func (p *liveLCRProc) Handle(a runtime.Action) runtime.Outcome {
	id := a.Payload.(int)
	own := p.w.ids[p.pos]
	out := runtime.Outcome{
		Label: fmt.Sprintf("deliver id %d to p%d", id, p.pos),
		Actor: p.pos,
	}
	forward := func() {
		out.Effects = []runtime.Action{{
			Kind:    runtime.ActDeliver,
			To:      (p.pos + 1) % len(p.w.ids),
			Payload: id,
		}}
	}
	switch {
	case id == own:
		if p.w.buggy {
			forward() // the bug: the returning id should elect, not travel on
			break
		}
		p.w.elected, p.w.leader, p.w.leaderID = true, p.pos, id
		out.Halt, out.Stop = true, true
	case id > own:
		forward()
		// Smaller ids are swallowed: no effects.
	}
	return out
}
