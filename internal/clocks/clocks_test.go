package clocks

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var testNet = Network{Base: 1.0, Epsilon: 0.5}

func TestUniformExecutionIsPerfectlySynchronized(t *testing.T) {
	e := UniformExecution(4, testNet)
	adj, err := AdjustedClocks(LundeliusLynch{}, e, testNet)
	if err != nil {
		t.Fatalf("AdjustedClocks: %v", err)
	}
	if skew := MaxSkew(adj); skew > 1e-9 {
		t.Fatalf("uniform execution skew = %v, want 0", skew)
	}
}

func TestAlgorithmRemovesInitialOffsets(t *testing.T) {
	// With midpoint delays, arbitrary hardware offsets synchronize
	// perfectly: the estimates are exact.
	e := UniformExecution(3, testNet)
	e.Offsets = []float64{5, -2, 0.75}
	adj, err := AdjustedClocks(LundeliusLynch{}, e, testNet)
	if err != nil {
		t.Fatalf("AdjustedClocks: %v", err)
	}
	if skew := MaxSkew(adj); skew > 1e-9 {
		t.Fatalf("offset-only skew = %v, want 0", skew)
	}
}

func TestWorstCaseHitsTheBoundExactly(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		e := WorstCaseExecution(n, testNet)
		if err := e.Validate(testNet); err != nil {
			t.Fatalf("n=%d: worst case invalid: %v", n, err)
		}
		adj, err := AdjustedClocks(LundeliusLynch{}, e, testNet)
		if err != nil {
			t.Fatalf("AdjustedClocks: %v", err)
		}
		got := MaxSkew(adj)
		want := TheoreticalBound(n, testNet)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: worst-case skew %v, want exactly ε(1−1/n) = %v", n, got, want)
		}
	}
}

func TestSkewNeverExceedsBound(t *testing.T) {
	// Property: over random legal delay matrices and offsets, the
	// averaging algorithm's skew stays within ε(1−1/n).
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		e := UniformExecution(n, testNet)
		for i := range e.Offsets {
			e.Offsets[i] = rng.Float64()*10 - 5
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					e.Delays[i][j] = testNet.Base + rng.Float64()*testNet.Epsilon
				}
			}
		}
		adj, err := AdjustedClocks(LundeliusLynch{}, e, testNet)
		if err != nil {
			return false
		}
		return MaxSkew(adj) <= TheoreticalBound(n, testNet)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftExecutionIsIndistinguishable(t *testing.T) {
	e := WorstCaseExecution(4, testNet)
	shifted := ShiftExecution(e, 2, 0.3)
	if err := CheckIndistinguishable(e, shifted); err != nil {
		t.Fatalf("shifted execution should be observably identical: %v", err)
	}
	// And the shifted process's adjusted clock moves by exactly the
	// shift: the algorithm cannot tell, so its correction is unchanged.
	adjA, err := AdjustedClocks(LundeliusLynch{}, e, testNet)
	if err != nil {
		t.Fatalf("AdjustedClocks: %v", err)
	}
	obsB := Observe(shifted)
	corrB := LundeliusLynch{}.Correction(2, obsB[2], testNet)
	adjB2 := shifted.Offsets[2] + corrB
	if math.Abs((adjB2-adjA[2])-0.3) > 1e-9 {
		t.Fatalf("adjusted clock moved by %v, want exactly the shift 0.3", adjB2-adjA[2])
	}
}

// TestShiftBeyondEpsilonLeavesLegalEnvelope is the lower-bound mechanism:
// a shift is undetectable, but shifting by more than the remaining delay
// slack produces an illegal execution. From the midpoint execution the
// maximal legal shift of one process is ε/2 in each direction — chaining
// these shifts across processes yields the ε(1−1/n) bound.
func TestShiftBeyondEpsilonLeavesLegalEnvelope(t *testing.T) {
	e := UniformExecution(3, testNet)
	small := ShiftExecution(e, 1, testNet.Epsilon/2)
	if err := small.Validate(testNet); err != nil {
		t.Fatalf("ε/2 shift should stay legal: %v", err)
	}
	big := ShiftExecution(e, 1, testNet.Epsilon/2+0.01)
	if err := big.Validate(testNet); err == nil {
		t.Fatal("shift beyond the slack should violate the delay bounds")
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	e := UniformExecution(3, testNet)
	e.Delays = e.Delays[:2]
	if err := e.Validate(testNet); err == nil {
		t.Fatal("truncated delay matrix should be rejected")
	}
	e2 := UniformExecution(3, testNet)
	e2.Delays[0][1] = testNet.Base - 1
	if err := e2.Validate(testNet); err == nil {
		t.Fatal("out-of-range delay should be rejected")
	}
}

func TestCheckIndistinguishableDetectsDifferences(t *testing.T) {
	a := UniformExecution(3, testNet)
	b := UniformExecution(3, testNet)
	b.Delays[0][1] += 0.1
	err := CheckIndistinguishable(a, b)
	if !errors.Is(err, ErrNotIndistinguishable) {
		t.Fatalf("err = %v, want ErrNotIndistinguishable", err)
	}
}

// TestTwoFacedClockFaultDefeatsAveraging sketches E07 (the impossibility
// of synchronizing 3 clocks with one fault, [44]): a faulty process that
// reports different clock readings to its two peers drags their adjusted
// clocks apart, beyond what any legal delay assignment could explain.
func TestTwoFacedClockFaultDefeatsAveraging(t *testing.T) {
	net := testNet
	n := 3
	e := UniformExecution(n, net)
	obs := Observe(e)
	// Process 2 runs a two-faced clock: its broadcast reaches process 0
	// looking 10 units early and process 1 looking 10 units late —
	// impossible for any single legal clock-and-delay assignment.
	obs[0][2].ReceivedAt -= 10
	obs[1][2].ReceivedAt += 10
	adj := make([]float64, 2)
	for j := 0; j < 2; j++ {
		adj[j] = e.Offsets[j] + (LundeliusLynch{}).Correction(j, obs[j], net)
	}
	skew := math.Abs(adj[0] - adj[1])
	if skew <= TheoreticalBound(n, net) {
		t.Fatalf("two-faced fault produced skew %v, expected beyond the fault-free bound %v",
			skew, TheoreticalBound(n, net))
	}
}

func TestTheoreticalBoundShape(t *testing.T) {
	// The bound increases in n and approaches ε.
	prev := 0.0
	for _, n := range []int{2, 3, 5, 10, 100} {
		b := TheoreticalBound(n, testNet)
		if b <= prev || b >= testNet.Epsilon {
			t.Fatalf("bound %v for n=%d out of order", b, n)
		}
		prev = b
	}
}

// TestRateStretchingIsIndistinguishable is the §2.2.6 stretching argument:
// scaling all delays by σ and all rates by 1/σ preserves every hardware
// observation, so no algorithm can measure real time.
func TestRateStretchingIsIndistinguishable(t *testing.T) {
	e := UniformRated(4, testNet)
	e.Offsets = []float64{0.5, -1, 2, 0}
	for _, sigma := range []float64{2, 10, 0.25} {
		stretched := StretchExecution(e, sigma)
		if err := CheckRatedIndistinguishable(e, stretched); err != nil {
			t.Fatalf("sigma=%v: %v", sigma, err)
		}
		// Real-time intervals scale by sigma even though nothing is
		// observable: the delay matrix grew.
		if stretched.Delays[0][1] != e.Delays[0][1]*sigma {
			t.Fatalf("sigma=%v: delays not scaled", sigma)
		}
	}
}

func TestObserveRatedValidation(t *testing.T) {
	e := UniformRated(3, testNet)
	e.Rates[1] = 0
	if _, err := ObserveRated(e); err == nil {
		t.Fatal("zero rate should be rejected")
	}
	bad := RatedExecution{Offsets: []float64{0, 0}, Rates: []float64{1}, Delays: nil}
	if _, err := ObserveRated(bad); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
}

func TestRatedObservationsDetectRealDifferences(t *testing.T) {
	a := UniformRated(3, testNet)
	b := UniformRated(3, testNet)
	b.Delays[0][1] *= 2 // delay change without rate compensation is visible
	if err := CheckRatedIndistinguishable(a, b); err == nil {
		t.Fatal("unbalanced delay change should be observable")
	}
}
