package clocks

import "fmt"

// This file mechanizes the *rate-stretching* argument of §2.2.6
// (Arjomandi–Fischer–Lynch [8], and the clock version in [75]/[44]): an
// execution in which all message delays are multiplied by σ and all
// hardware clock rates divided by σ generates exactly the same
// observations, so no process can tell how fast real time is passing —
// which is why no algorithm can bound real-time quantities (session
// latency, real-time clock skew) without an a-priori bound on rates or
// delays.

// RatedExecution extends Execution with hardware clock rates: process i's
// hardware clock reads Rates[i]*t + Offsets[i] at real time t.
type RatedExecution struct {
	// Offsets are the hardware clock offsets.
	Offsets []float64
	// Rates are the hardware clock rates (must be positive).
	Rates []float64
	// Delays[i][j] is the delay of the message from i to j.
	Delays [][]float64
}

// ObserveRated runs the hardware-time-zero broadcast experiment under
// rates: process i broadcasts when its hardware clock reads 0 (real time
// -Offsets[i]/Rates[i]); obs[j][i] is j's hardware receive time.
func ObserveRated(e RatedExecution) ([][]Observation, error) {
	n := len(e.Offsets)
	if len(e.Rates) != n || len(e.Delays) != n {
		return nil, fmt.Errorf("clocks: inconsistent rated execution shape")
	}
	obs := make([][]Observation, n)
	for j := 0; j < n; j++ {
		if e.Rates[j] <= 0 {
			return nil, fmt.Errorf("clocks: nonpositive rate %v for process %d", e.Rates[j], j)
		}
		obs[j] = make([]Observation, n)
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			realSend := -e.Offsets[i] / e.Rates[i]
			realArrival := realSend + e.Delays[i][j]
			obs[j][i] = Observation{ReceivedAt: e.Rates[j]*realArrival + e.Offsets[j]}
		}
	}
	return obs, nil
}

// StretchExecution scales real time by sigma: every delay multiplies by
// sigma and every rate divides by sigma. All hardware observations are
// unchanged — the executions are indistinguishable — while every
// real-time interval in the system grows by the factor sigma.
func StretchExecution(e RatedExecution, sigma float64) RatedExecution {
	n := len(e.Offsets)
	out := RatedExecution{
		Offsets: make([]float64, n),
		Rates:   make([]float64, n),
		Delays:  make([][]float64, n),
	}
	copy(out.Offsets, e.Offsets)
	for i := 0; i < n; i++ {
		out.Rates[i] = e.Rates[i] / sigma
		out.Delays[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out.Delays[i][j] = e.Delays[i][j] * sigma
		}
	}
	return out
}

// CheckRatedIndistinguishable verifies two rated executions generate
// identical observations.
func CheckRatedIndistinguishable(a, b RatedExecution) error {
	oa, err := ObserveRated(a)
	if err != nil {
		return err
	}
	ob, err := ObserveRated(b)
	if err != nil {
		return err
	}
	const tol = 1e-9
	for j := range oa {
		for i := range oa[j] {
			d := oa[j][i].ReceivedAt - ob[j][i].ReceivedAt
			if d > tol || d < -tol {
				return fmt.Errorf("%w: process %d sees %v vs %v for sender %d",
					ErrNotIndistinguishable, j, oa[j][i], ob[j][i], i)
			}
		}
	}
	return nil
}

// UniformRated builds a benign rated execution with unit rates.
func UniformRated(n int, net Network) RatedExecution {
	base := UniformExecution(n, net)
	out := RatedExecution{Offsets: base.Offsets, Rates: make([]float64, n), Delays: base.Delays}
	for i := range out.Rates {
		out.Rates[i] = 1
	}
	return out
}
