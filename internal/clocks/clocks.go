// Package clocks implements the clock synchronization results of §2.2.6:
// the Lundelius–Lynch averaging algorithm, whose worst-case skew over a
// complete graph is exactly ε(1−1/n) for message-delay uncertainty ε, and
// the diagram-shifting argument behind the matching lower bound — an
// execution can be "stretched" (one process's clock shifted, its link
// delays adjusted to compensate) without any process observing a
// difference, so no algorithm can synchronize more tightly.
//
// The model follows [77]: hardware clocks run at perfect rate but with
// unknown offsets; every message between two processes takes a delay in
// [Base, Base+Epsilon] chosen by the adversary.
package clocks

import (
	"errors"
	"fmt"
	"math"
)

// Network fixes the delay model.
type Network struct {
	// Base is the minimum message delay.
	Base float64
	// Epsilon is the delay uncertainty: delays lie in [Base, Base+Epsilon].
	Epsilon float64
}

// Execution is one synchronization experiment: process i's hardware clock
// reads t + Offsets[i] at real time t, and the message i->j experiences
// delay Delays[i][j].
type Execution struct {
	// Offsets are the hardware clock offsets.
	Offsets []float64
	// Delays[i][j] is the delay of the message from i to j.
	Delays [][]float64
}

// Validate checks the execution against the network's delay bounds.
func (e Execution) Validate(net Network) error {
	n := len(e.Offsets)
	if len(e.Delays) != n {
		return fmt.Errorf("clocks: %d delay rows for %d processes", len(e.Delays), n)
	}
	const tol = 1e-9
	for i := range e.Delays {
		if len(e.Delays[i]) != n {
			return fmt.Errorf("clocks: delay row %d has %d entries", i, len(e.Delays[i]))
		}
		for j, d := range e.Delays[i] {
			if i == j {
				continue
			}
			if d < net.Base-tol || d > net.Base+net.Epsilon+tol {
				return fmt.Errorf("clocks: delay %d->%d = %v outside [%v, %v]",
					i, j, d, net.Base, net.Base+net.Epsilon)
			}
		}
	}
	return nil
}

// Observation is what process j learns from process i's broadcast: the
// receiver's hardware clock at receipt. (Every process broadcasts when its
// own hardware clock reads zero, so the sender-side timestamp carries no
// information; receive times are the *only* algorithm inputs — the
// mechanized form of "if a process sees the same thing in two executions,
// it behaves the same in both".)
type Observation struct {
	ReceivedAt float64 // receiver hardware clock at receipt
}

// Observe runs the one-shot broadcast experiment: every process broadcasts
// at hardware time 0 (real time -Offsets[i]). Observe returns obs[j][i],
// process j's observation of process i's broadcast.
func Observe(e Execution) [][]Observation {
	n := len(e.Offsets)
	obs := make([][]Observation, n)
	for j := 0; j < n; j++ {
		obs[j] = make([]Observation, n)
		for i := 0; i < n; i++ {
			if i == j {
				obs[j][i] = Observation{}
				continue
			}
			realArrival := -e.Offsets[i] + e.Delays[i][j]
			obs[j][i] = Observation{ReceivedAt: realArrival + e.Offsets[j]}
		}
	}
	return obs
}

// Algorithm computes, from a process's observations, the correction to
// add to its hardware clock.
type Algorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Correction returns process j's clock adjustment.
	Correction(j int, obs []Observation, net Network) float64
}

// LundeliusLynch is the averaging algorithm of [77]: estimate each peer's
// offset difference assuming the midpoint delay, and add the average
// estimated difference (self included as zero).
type LundeliusLynch struct{}

var _ Algorithm = LundeliusLynch{}

// Name implements Algorithm.
func (LundeliusLynch) Name() string { return "lundelius-lynch-averaging" }

// Correction implements Algorithm.
func (LundeliusLynch) Correction(j int, obs []Observation, net Network) float64 {
	n := len(obs)
	mid := net.Base + net.Epsilon/2
	sum := 0.0
	for i, o := range obs {
		if i == j {
			continue
		}
		// Estimated difference (peer clock - own clock): the peer sent at
		// its hardware time 0; assuming the midpoint delay, at receipt the
		// peer's clock reads mid while ours reads ReceivedAt.
		sum += mid - o.ReceivedAt
	}
	return sum / float64(n)
}

// AdjustedClocks runs the algorithm in the execution and returns each
// process's adjusted clock value at real time 0 (hardware offset plus
// correction).
func AdjustedClocks(a Algorithm, e Execution, net Network) ([]float64, error) {
	if err := e.Validate(net); err != nil {
		return nil, err
	}
	obs := Observe(e)
	out := make([]float64, len(e.Offsets))
	for j := range out {
		out[j] = e.Offsets[j] + a.Correction(j, obs[j], net)
	}
	return out, nil
}

// MaxSkew returns the spread of the adjusted clocks.
func MaxSkew(adjusted []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range adjusted {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// TheoreticalBound returns the tight worst-case skew ε(1−1/n) of [77].
func TheoreticalBound(n int, net Network) float64 {
	return net.Epsilon * (1 - 1/float64(n))
}

// UniformExecution builds the benign execution: zero offsets, midpoint
// delays.
func UniformExecution(n int, net Network) Execution {
	e := Execution{Offsets: make([]float64, n), Delays: make([][]float64, n)}
	for i := range e.Delays {
		e.Delays[i] = make([]float64, n)
		for j := range e.Delays[i] {
			e.Delays[i][j] = net.Base + net.Epsilon/2
		}
	}
	return e
}

// WorstCaseExecution builds the adversarial delay assignment that drives
// the averaging algorithm exactly to its ε(1−1/n) bound: every message
// into process 1 rides the fastest delay (so process 1 overestimates all
// peers by ε/2) and every message into process 0 the slowest (so process
// 0 underestimates all peers by ε/2); everyone else sees midpoints.
func WorstCaseExecution(n int, net Network) Execution {
	e := UniformExecution(n, net)
	for i := 0; i < n; i++ {
		if i != 1 {
			e.Delays[i][1] = net.Base
		}
		if i != 0 {
			e.Delays[i][0] = net.Base + net.Epsilon
		}
	}
	return e
}

// ErrNotIndistinguishable reports that two executions differ observably.
var ErrNotIndistinguishable = errors.New("clocks: executions are observably different")

// ShiftExecution produces the "stretched" execution of the lower-bound
// argument: process k's hardware offset moves by s (its real-time events
// slide earlier), its outgoing delays grow by s and its incoming delays
// shrink by s, leaving every observation identical. The result may
// violate the delay bounds — that is the point: the amount of legal shift
// is limited by the remaining delay slack, which is where the ε(1−1/n)
// bound comes from.
func ShiftExecution(e Execution, k int, s float64) Execution {
	n := len(e.Offsets)
	out := Execution{Offsets: make([]float64, n), Delays: make([][]float64, n)}
	copy(out.Offsets, e.Offsets)
	out.Offsets[k] += s
	for i := range e.Delays {
		out.Delays[i] = make([]float64, n)
		copy(out.Delays[i], e.Delays[i])
	}
	for j := 0; j < n; j++ {
		if j == k {
			continue
		}
		out.Delays[k][j] += s // k sends earlier; arrivals stay put
		out.Delays[j][k] -= s // k's receipts stay put on its own clock
	}
	return out
}

// CheckIndistinguishable verifies that two executions generate identical
// observations for every process.
func CheckIndistinguishable(a, b Execution) error {
	oa, ob := Observe(a), Observe(b)
	const tol = 1e-9
	for j := range oa {
		for i := range oa[j] {
			if math.Abs(oa[j][i].ReceivedAt-ob[j][i].ReceivedAt) > tol {
				return fmt.Errorf("%w: process %d sees %v vs %v for sender %d",
					ErrNotIndistinguishable, j, oa[j][i], ob[j][i], i)
			}
		}
	}
	return nil
}
