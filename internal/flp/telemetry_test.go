package flp

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TestWaitQuorumTelemetryAcceptance is the PR's acceptance run: exploring
// wait-quorum n=4 (crash-free) with progress and trace sinks attached
// emits at least one timer snapshot and a schema-valid JSONL trace whose
// final snapshot totals equal the returned Stats — while the configuration
// graph stays byte-identical to a no-sink exploration at workers 1, 2 and
// 8, and the deterministic trace digest is identical across all three.
func TestWaitQuorumTelemetryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("explores a 112k-state space six times")
	}
	p := NewWaitQuorum(4)
	sys := NewSystem(p, nil, 0)

	var refDigest string
	for _, workers := range []int{1, 2, 8} {
		// The bare run also carries a Stats pointer so both runs route
		// through the engine (a sequential-explorer Graph is structurally
		// different in its private fields even when equivalent); the only
		// delta under comparison is the sink.
		var plainStats engine.Stats
		plain, err := core.Explore[string](sys, core.ExploreOptions{
			Parallelism: workers, Stats: &plainStats,
		})
		if err != nil {
			t.Fatalf("workers=%d without sink: %v", workers, err)
		}

		var trace, progress bytes.Buffer
		tw, err := obs.NewTraceWriter(&trace, obs.NewManifest("flp-test"))
		if err != nil {
			t.Fatal(err)
		}
		var st engine.Stats
		traced, err := core.Explore[string](sys, core.ExploreOptions{
			Parallelism: workers,
			Stats:       &st,
			Sink:        obs.MultiSink{tw, obs.NewLogger(&progress, "[obs] ")},
			// Fast timer so a sub-second exploration still snapshots.
			SnapshotEvery: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("workers=%d with sink: %v", workers, err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}

		// Observation is passive: the graph is byte-identical.
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("workers=%d: sink-attached graph differs from bare graph", workers)
		}

		sum, err := obs.ValidateTrace(bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatalf("workers=%d: trace invalid: %v", workers, err)
		}
		if sum.Runs != 1 {
			t.Fatalf("workers=%d: trace has %d runs, want 1", workers, sum.Runs)
		}
		if sum.Snapshots < 1 {
			t.Fatalf("workers=%d: trace has no timer snapshots", workers)
		}
		if sum.Levels < 1 {
			t.Fatalf("workers=%d: trace has no level events", workers)
		}
		if len(sum.FinalStates) != 1 || sum.FinalStates[0] != st.States {
			t.Fatalf("workers=%d: trace final states %v != returned stats %d",
				workers, sum.FinalStates, st.States)
		}
		if sum.Digest != tw.Digest() {
			t.Fatalf("workers=%d: validator digest %s != writer digest %s",
				workers, sum.Digest, tw.Digest())
		}
		if refDigest == "" {
			refDigest = sum.Digest
		} else if sum.Digest != refDigest {
			t.Fatalf("workers=%d: digest %s diverged from workers=1 digest %s",
				workers, sum.Digest, refDigest)
		}
		if plain.Len() != st.States {
			t.Fatalf("workers=%d: graph has %d states but stats say %d",
				workers, plain.Len(), st.States)
		}
		if progress.Len() == 0 {
			t.Fatalf("workers=%d: progress logger produced no output", workers)
		}
	}
}

// TestAnalyzeSinkCoversMainExplorationOnly: Analyze's Sink attaches to the
// main configuration-graph exploration and not to the uniform-vector
// validity explorations, so a bivalence trace carries exactly one run and
// its final totals match Report.States.
func TestAnalyzeSinkCoversMainExplorationOnly(t *testing.T) {
	var trace bytes.Buffer
	tw, err := obs.NewTraceWriter(&trace, obs.NewManifest("flp-test"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(NewAdoptSwap(2), AnalyzeOptions{Sink: tw, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if sum.Runs != 1 {
		t.Fatalf("trace has %d runs, want 1 (validity explorations must not be traced)", sum.Runs)
	}
	if sum.FinalStates[0] != rep.States {
		t.Fatalf("trace final states %d != report states %d", sum.FinalStates[0], rep.States)
	}
}
