package flp

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
)

// DeliveryIndependence builds the independence relation for p's
// configuration graph, enabling ample-set partial-order reduction of the
// delivery interleavings (engine.Independence; see
// AnalyzeOptions.Independent, and ALWAYS pair it with DecisionVisibility —
// the relation leans on the visibility hook for its C2 obligation). The
// rules:
//
//   - crashes: two crashes conflict (the resilience budget makes each
//     disable the other), and a crash conflicts with every delivery to the
//     crashed process (the crash disables the delivery). Crash–delivery
//     pairs with distinct targets commute.
//   - distinct receivers: independent. Each delivery rewrites only its own
//     receiver's local state, so the forward diamond closes state-wise even
//     when one of them emits messages.
//   - same receiver: independent only for send-free deliveries from
//     distinct senders that both preserve the receiver's decision. The wait
//     protocols accumulate the SET of received values, not the order, so
//     two such deliveries are commuting writes into the receiver's value
//     table — while a threshold-crossing delivery decides on whichever
//     value set happens to be present, so its queue position is the whole
//     point, and a send-producing delivery (a wake-up) floods every queue.
//     Send-freedom is detected positionally: the in-flight multiset must
//     shrink by exactly one.
//
// Decision visibility (the C2 obligation) is deliberately NOT folded into
// the relation: a decision-changing delivery still commutes state-wise with
// other processes' events, it just must not be deferred INTO an ample set —
// that is DecisionVisibility's job, and keeping it out of the dependence
// components is what lets the decision-free remainder of a receiver's queue
// still reduce.
//
// Soundness fine print: the forward-diamond half of the contract holds for
// every declared pair (VerifyPOR can confirm it exhaustively), but the C1
// persistence half is NOT theorem-grade here. A deferred send-producing
// delivery mints fresh messages for a receiver whose quiet deliveries were
// serialized as an ample set, and deep in that deferred future a minted
// message can become the receiver's threshold-crossing delivery — an action
// dependent on the long-taken ample set. Closing that leak syntactically
// (declaring send-producers dependent on everything) provably restores C1
// but collapses the reduction to ≈1.3× because every wake-up chains the
// components together. The shipped relation instead carries an empirical
// contract: the six analyzer verdicts (bivalence, agreement, validity,
// lasso, deadlock, liveness) are byte-identical between full and reduced
// runs for every shipped protocol at every tested size and resilience, and
// the root-level verdict-equality tests pin exactly that. See DESIGN.md's
// "Independence contract" for the full obligation ledger.
//
// The FLP configuration spaces are leveled DAGs (each event consumes
// exactly one unit of the in-flight + crash-budget measure), so the
// engine's cycle proviso never vetoes a component.
//
// Resilience note: at resilience ≥ 1 the crash-free configurations admit no
// proper ample set at all — crashes are pairwise dependent and each crash
// is dependent on the deliveries to its victim, chaining every component
// together — and since every post-crash configuration is crash(c) of a
// reachable crash-free c (crashes postpone freely), the reduced space
// equals the full space: the adversary's crash choice is irreducibly
// dependent on everything, which is the valency argument's freedom in
// miniature. The reduction therefore pays off on the crash-free
// (resilience 0) interleaving spaces and composes with the symmetry
// quotient everywhere.
func DeliveryIndependence(p Protocol) func(string, engine.Action[string], engine.Action[string]) bool {
	return func(c string, a, b engine.Action[string]) bool {
		aCrash := a.Actor == core.EnvironmentActor
		bCrash := b.Actor == core.EnvironmentActor
		if aCrash && bCrash {
			return false
		}
		if aCrash || bCrash {
			crash, del := a, b
			if bCrash {
				crash, del = b, a
			}
			return crashTarget(crash.Label) != del.Actor
		}
		if a.Actor != b.Actor {
			return true
		}
		// Same receiver: independent only for quiet deliveries from
		// distinct senders that both preserve the receiver's decision —
		// those are commuting writes into its value table (the protocol
		// state accumulates what was received, not in which order), while a
		// threshold-crossing delivery decides on whichever value set
		// happens to be present, so its position in the queue is the whole
		// point.
		return sendFree(c, a) && sendFree(c, b) &&
			preservesDecision(p, c, a) && preservesDecision(p, c, b) &&
			sender(a.Label) != sender(b.Label)
	}
}

// preservesDecision reports that delivery d leaves its receiver's decision
// status and value unchanged.
func preservesDecision(p Protocol, c string, d engine.Action[string]) bool {
	before, bok := p.Decide(d.Actor, localState(c, d.Actor))
	after, aok := p.Decide(d.Actor, localState(d.To, d.Actor))
	return bok == aok && before == after
}

// sender extracts the sending process from a "deliver f>t:payload" label.
func sender(label string) string {
	rest, ok := strings.CutPrefix(label, "deliver ")
	if !ok {
		return label
	}
	if i := strings.IndexByte(rest, '>'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// DecisionVisibility builds the visibility predicate paired with
// DeliveryIndependence (engine.Visibility; see AnalyzeOptions.Visible): a
// delivery is visible iff it changes its receiver's decision status or
// value, which is the only thing any analyzer predicate (valence,
// agreement, validity, non-deciding lasso) reads from a configuration.
// Crashes change no predicate and are invisible.
func DecisionVisibility(p Protocol) func(string, engine.Action[string]) bool {
	return func(c string, a engine.Action[string]) bool {
		if a.Actor == core.EnvironmentActor {
			return false
		}
		before, bok := p.Decide(a.Actor, localState(c, a.Actor))
		after, aok := p.Decide(a.Actor, localState(a.To, a.Actor))
		return bok != aok || before != after
	}
}

// sendFree reports that delivery d consumed its message without emitting
// new ones.
func sendFree(c string, d engine.Action[string]) bool {
	return msgCount(d.To) == msgCount(c)-1
}

// crashTarget parses the crashed process out of a "crash pN" label, or -1.
func crashTarget(label string) int {
	rest, ok := strings.CutPrefix(label, "crash p")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// msgCount counts the in-flight messages of an encoded configuration.
func msgCount(c config) int {
	flight := c[strings.LastIndexByte(c, '\x1d')+1:]
	if flight == "" {
		return 0
	}
	return strings.Count(flight, "\x1f") + 1
}

// localState extracts process t's local state from an encoded configuration
// without decoding the rest.
func localState(c config, t int) string {
	i := strings.IndexByte(c, '\x1d') + 1
	part := c[i:strings.LastIndexByte(c, '\x1d')]
	for ; t > 0; t-- {
		part = part[strings.IndexByte(part, '\x1e')+1:]
	}
	if j := strings.IndexByte(part, '\x1e'); j >= 0 {
		part = part[:j]
	}
	return part
}
