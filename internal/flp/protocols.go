package flp

import (
	"strconv"
	"strings"
)

// This file provides small asynchronous consensus attempts for the
// analyzer to dissect. The FLP theorem says every 1-resilient protocol
// must fail somewhere; these three fail in the three characteristic ways:
//
//   - WaitAll is safe but deadlocks (undecided) as soon as one process
//     crashes: it waits for everybody.
//   - WaitQuorum waits for only n-1 values (so it survives a crash) but
//     pays with a reachable disagreement.
//   - AdoptSwap is safe but admits a weakly-fair non-deciding execution —
//     the bivalent forever-run of the FLP construction itself.

// waitProto implements WaitAll/WaitQuorum: broadcast the input, collect
// values, decide the minimum once `need` processes (including self) have
// reported.
type waitProto struct {
	n    int
	need int
	name string
}

// NewWaitAll returns the wait-for-everyone protocol.
func NewWaitAll(n int) Protocol { return &waitProto{n: n, need: n, name: "wait-all"} }

// NewWaitQuorum returns the wait-for-(n-1) protocol.
func NewWaitQuorum(n int) Protocol { return &waitProto{n: n, need: n - 1, name: "wait-quorum"} }

var _ ScratchProtocol = (*waitProto)(nil)

// Name implements Protocol.
func (w *waitProto) Name() string { return w.name }

// NumProcs implements Protocol.
func (w *waitProto) NumProcs() int { return w.n }

// State layout: one value char per process ('-', '0', '1') + ":" +
// decision char ('-', '0', '1').
func (w *waitProto) Init(p, input int) string {
	vals := make([]byte, w.n)
	for i := range vals {
		vals[i] = '-'
	}
	vals[p] = byte('0' + input)
	s := string(vals) + ":-"
	return w.maybeDecide(s)
}

// InitialSends implements Protocol: broadcast own value.
func (w *waitProto) InitialSends(p int, state string) []Send {
	out := make([]Send, 0, w.n-1)
	for q := 0; q < w.n; q++ {
		if q != p {
			out = append(out, Send{To: q, Payload: string(state[p])})
		}
	}
	return out
}

// Step implements Protocol. The two early returns are allocation-free
// fast paths for deliveries that cannot change the state: every reachable
// state is a fixed point of maybeDecide (Init and Step both apply it
// before returning), so an unchanged value vector means an unchanged
// state.
func (w *waitProto) Step(_ int, state string, from int, payload string) (string, []Send) {
	if payload != "0" && payload != "1" {
		return state, nil // junk payload: absorbed without recording
	}
	if state[from] == payload[0] {
		return state, nil // redelivery of an already-recorded value
	}
	vals := []byte(state[:w.n])
	vals[from] = payload[0]
	return w.maybeDecide(string(vals) + state[w.n:]), nil
}

// AppendStep implements ScratchProtocol: Step with the successor rendered
// into dst and maybeDecide applied in place over the rendered bytes.
func (w *waitProto) AppendStep(dst []byte, _ int, state string, from int, payload string, sends []Send) ([]byte, []Send) {
	if (payload != "0" && payload != "1") || state[from] == payload[0] {
		return append(dst, state...), sends // absorbed: successor == state
	}
	off := len(dst)
	dst = append(dst, state...)
	dst[off+from] = payload[0]
	s := dst[off:]
	if s[w.n+1] == '-' { // maybeDecide, in place
		count := 0
		best := byte('9')
		for i := 0; i < w.n; i++ {
			if s[i] != '-' {
				count++
				if s[i] < best {
					best = s[i]
				}
			}
		}
		if count >= w.need {
			s[w.n+1] = best
		}
	}
	return dst, sends
}

// AppendInitialSends implements ScratchProtocol: the same broadcast as
// InitialSends, with constant payload strings instead of per-send
// string(byte) conversions.
func (w *waitProto) AppendInitialSends(p int, state string, sends []Send) []Send {
	pay := valuePayload(state[p])
	for q := 0; q < w.n; q++ {
		if q != p {
			sends = append(sends, Send{To: q, Payload: pay})
		}
	}
	return sends
}

// valuePayload is string(b) with interned results for the value alphabet:
// a variable string(byte) that escapes into a Send allocates, a constant
// does not. Non-value bytes (unreachable on canonical states) fall through
// to the allocating conversion so the function stays total.
func valuePayload(b byte) string {
	switch b {
	case '0':
		return "0"
	case '1':
		return "1"
	case '-':
		return "-"
	}
	return string(b)
}

func (w *waitProto) maybeDecide(state string) string {
	if state[w.n+1] != '-' {
		return state // already decided
	}
	count := 0
	best := byte('9')
	for i := 0; i < w.n; i++ {
		if state[i] != '-' {
			count++
			if state[i] < best {
				best = state[i]
			}
		}
	}
	if count >= w.need {
		return state[:w.n+1] + string(best)
	}
	return state
}

// Decide implements Protocol.
func (w *waitProto) Decide(_ int, state string) (int, bool) {
	d := state[w.n+1]
	if d == '-' {
		return 0, false
	}
	return int(d - '0'), true
}

// adoptSwap is the livelock-prone protocol, arranged on a logical ring to
// keep the in-flight message population bounded: on receiving a matching
// value, decide it; on a mismatch, adopt the received value and forward it
// to the ring successor. With processes holding different values, an
// adversarial schedule circulates the mismatch forever — a weakly fair
// non-deciding execution.
type adoptSwap struct {
	n int
}

// NewAdoptSwap returns the adopt-and-rebroadcast protocol.
func NewAdoptSwap(n int) Protocol { return &adoptSwap{n: n} }

var _ ScratchProtocol = (*adoptSwap)(nil)

// Name implements Protocol.
func (a *adoptSwap) Name() string { return "adopt-swap" }

// NumProcs implements Protocol.
func (a *adoptSwap) NumProcs() int { return a.n }

// State layout: value char + decision char.
func (a *adoptSwap) Init(_, input int) string {
	return strconv.Itoa(input) + "-"
}

// InitialSends implements Protocol: send own value to the ring successor.
func (a *adoptSwap) InitialSends(p int, state string) []Send {
	return []Send{{To: (p + 1) % a.n, Payload: state[:1]}}
}

// Step implements Protocol.
func (a *adoptSwap) Step(p int, state string, _ int, payload string) (string, []Send) {
	if state[1] != '-' || (payload != "0" && payload != "1") {
		return state, nil // decided or junk: absorb
	}
	if payload == state[:1] {
		return state[:1] + payload, nil // match: decide
	}
	// Mismatch: adopt and forward around the ring.
	return payload + "-", []Send{{To: (p + 1) % a.n, Payload: payload}}
}

// AppendStep implements ScratchProtocol.
func (a *adoptSwap) AppendStep(dst []byte, p int, state string, _ int, payload string, sends []Send) ([]byte, []Send) {
	if state[1] != '-' || (payload != "0" && payload != "1") {
		return append(dst, state...), sends // decided or junk: absorb
	}
	if payload == state[:1] {
		return append(dst, state[0], payload[0]), sends // match: decide
	}
	// Mismatch: adopt and forward around the ring. The payload string is a
	// substring of the configuration, so forwarding it verbatim is safe.
	dst = append(dst, payload...)
	dst = append(dst, '-')
	return dst, append(sends, Send{To: (p + 1) % a.n, Payload: payload})
}

// AppendInitialSends implements ScratchProtocol.
func (a *adoptSwap) AppendInitialSends(p int, state string, sends []Send) []Send {
	return append(sends, Send{To: (p + 1) % a.n, Payload: state[:1]})
}

// Decide implements Protocol.
func (a *adoptSwap) Decide(_ int, state string) (int, bool) {
	if state[1] == '-' {
		return 0, false
	}
	return int(state[1] - '0'), true
}

// DescribeHorn summarizes which FLP horn a report exhibits, for reports
// and examples.
func DescribeHorn(rep Report) string {
	var horns []string
	if rep.AgreementViolated {
		horns = append(horns, "agreement violation")
	}
	if rep.ValidityViolated {
		horns = append(horns, "validity violation")
	}
	if rep.HasDeadlock {
		horns = append(horns, "undecided deadlock after a crash")
	}
	if rep.NondecidingLasso != nil {
		horns = append(horns, "fair non-deciding execution")
	}
	if len(horns) == 0 {
		if rep.Lossy {
			// A lossy sweep can miss the horn along with the states it merged
			// away: absence of evidence only.
			return rep.Protocol + ": no horn found in the states kept (LOSSY sweep — not evidence of liveness)"
		}
		return rep.Protocol + ": no horn found (contradicts FLP for a 1-resilient protocol)"
	}
	return rep.Protocol + ": " + strings.Join(horns, "; ")
}
