package flp

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// TestDifferentialWaitQuorum holds the real FLP system — scratch
// expansion, byte-level permutation canon, aliasing falsifier — to the
// engine's full cross-mode oracle: full/quotient graphs byte-identical at
// workers 1, 2 and 8, under the default store and a tightly-budgeted spill
// backend, with VerifyCanon and VerifyAliasing checking every state.
func TestDifferentialWaitQuorum(t *testing.T) {
	p := NewWaitQuorum(3)
	s := &system{p: p, inputVectors: allBinaryVectors(3), resilience: 1}
	canon, err := PermutationCanon(p)
	if err != nil {
		t.Fatal(err)
	}
	canonB, err := PermutationCanonBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := engine.DiffSpec[config]{
		Name:  "flp-wait-quorum-n3",
		Inits: s.Init(),
		Expand: func(c config, x *engine.Ctx[config]) {
			s.ExpandInto(c, x)
		},
		Canon:          canon,
		CanonBytes:     canonB,
		VerifyAliasing: 1,
		Stores: []store.Config{
			{Kind: store.Spill, MaxBytes: 8 << 10, Dir: t.TempDir(), PageBits: 6},
		},
	}
	if _, err := engine.Differential(spec); err != nil {
		t.Fatal(err)
	}
}
