package flp

import (
	"strings"
	"testing"
)

// TestWaitQuorumTwoProcs pins the n=2 degenerate quorum: need = n-1 = 1 is
// satisfied by a process's own input, so everyone decides at initialization
// and mixed inputs disagree immediately.
func TestWaitQuorumTwoProcs(t *testing.T) {
	p := NewWaitQuorum(2)
	if got := p.Init(0, 1); got != "1-:1" {
		t.Fatalf("Init(0,1) = %q, want immediate decision %q", got, "1-:1")
	}
	if v, ok := p.Decide(0, "1-:1"); !ok || v != 1 {
		t.Fatalf("Decide = (%d,%v), want (1,true)", v, ok)
	}
	rep, err := Analyze(p, AnalyzeOptions{Resilience: intPtr(1)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.AgreementViolated {
		t.Error("wait-quorum(2) must disagree on mixed inputs")
	}
	if rep.Lively {
		t.Error("an agreement violation is not lively")
	}
}

// TestWaitAllTwoProcsDeadlocks pins the n=2, r=n-1=1 corner of the
// deadlock horn: crash either process before its wake-up and the survivor
// waits forever.
func TestWaitAllTwoProcsDeadlocks(t *testing.T) {
	rep, err := Analyze(NewWaitAll(2), AnalyzeOptions{Resilience: intPtr(1)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.HasDeadlock {
		t.Error("wait-all(2) must deadlock under one crash")
	}
	if rep.AgreementViolated || rep.ValidityViolated {
		t.Error("wait-all is safe; only liveness may fail")
	}
	if len(rep.UndecidedDeadlock) == 0 {
		t.Error("deadlock verdict must carry a witness trace")
	}
}

// TestWaitProtoStepEdges drives the Step branches no exploration reaches
// deliberately: junk payloads and already-decided states.
func TestWaitProtoStepEdges(t *testing.T) {
	w := NewWaitAll(2).(*waitProto)
	// Junk payload: the value table must not change.
	if got, sends := w.Step(0, "0-:-", 1, "junk"); got != "0-:-" || sends != nil {
		t.Errorf("junk payload: Step = (%q, %v)", got, sends)
	}
	// Already decided: maybeDecide must return early even as values arrive.
	if got, _ := w.Step(0, "0-:0", 1, "1"); got != "01:0" {
		t.Errorf("decided state: Step = %q, want value recorded but decision kept", got)
	}
	// Threshold crossing decides the minimum of the received values.
	if got, _ := w.Step(0, "1-:-", 1, "0"); got != "10:0" {
		t.Errorf("threshold: Step = %q, want decision on min value", got)
	}
}

// TestAdoptSwapStepEdges drives adopt-swap's absorb branches.
func TestAdoptSwapStepEdges(t *testing.T) {
	a := NewAdoptSwap(2).(*adoptSwap)
	// Decided processes absorb everything.
	if got, sends := a.Step(0, "00", 1, "1"); got != "00" || sends != nil {
		t.Errorf("decided absorb: Step = (%q, %v)", got, sends)
	}
	// Junk payloads are absorbed undecided.
	if got, sends := a.Step(0, "0-", 1, "x"); got != "0-" || sends != nil {
		t.Errorf("junk absorb: Step = (%q, %v)", got, sends)
	}
	// A match decides; no forwarding.
	if got, sends := a.Step(0, "1-", 1, "1"); got != "11" || sends != nil {
		t.Errorf("match: Step = (%q, %v)", got, sends)
	}
	// A mismatch adopts and forwards to the ring successor.
	got, sends := a.Step(0, "0-", 1, "1")
	if got != "1-" || len(sends) != 1 || sends[0].To != 1 || sends[0].Payload != "1" {
		t.Errorf("mismatch: Step = (%q, %v)", got, sends)
	}
}

// TestDescribeHornAllBranches exercises every horn clause and their
// combination.
func TestDescribeHornAllBranches(t *testing.T) {
	if got := DescribeHorn(Report{Protocol: "v", ValidityViolated: true}); got != "v: validity violation" {
		t.Errorf("validity horn = %q", got)
	}
	if got := DescribeHorn(Report{Protocol: "d", HasDeadlock: true}); got != "d: undecided deadlock after a crash" {
		t.Errorf("deadlock horn = %q", got)
	}
	rep, err := Analyze(NewAdoptSwap(2), AnalyzeOptions{Resilience: intPtr(0)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.NondecidingLasso == nil {
		t.Fatal("adopt-swap(2) must have a fair non-deciding execution")
	}
	if got := DescribeHorn(rep); !strings.Contains(got, "fair non-deciding execution") {
		t.Errorf("lasso horn missing from %q", got)
	}
	multi := Report{Protocol: "m", AgreementViolated: true, ValidityViolated: true, HasDeadlock: true}
	if got := DescribeHorn(multi); !strings.Contains(got, "; ") ||
		!strings.Contains(got, "agreement violation") ||
		!strings.Contains(got, "validity violation") ||
		!strings.Contains(got, "undecided deadlock") {
		t.Errorf("combined horns = %q", got)
	}
}
