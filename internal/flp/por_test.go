package flp

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// stepActions materializes a configuration's outgoing steps as engine
// actions, so the independence relation can be probed directly.
func stepActions(sys core.System[config], c config) []engine.Action[string] {
	var out []engine.Action[string]
	for _, st := range sys.Steps(c) {
		out = append(out, engine.Action[string]{To: st.To, Label: st.Label, Actor: st.Actor})
	}
	return out
}

func findAction(t *testing.T, acts []engine.Action[string], pred func(engine.Action[string]) bool, what string) engine.Action[string] {
	t.Helper()
	for _, a := range acts {
		if pred(a) {
			return a
		}
	}
	t.Fatalf("no action matching %s among %d actions", what, len(acts))
	return engine.Action[string]{}
}

// TestDeliveryIndependenceRules walks the relation's decision table on real
// configurations of wait-all(3) at resilience 1.
func TestDeliveryIndependenceRules(t *testing.T) {
	p := NewWaitAll(3)
	indep := DeliveryIndependence(p)
	sys := NewSystem(p, [][]int{{0, 1, 1}}, 1)
	init := sys.Init()[0]
	acts := stepActions(sys, init)

	crash0 := findAction(t, acts, func(a engine.Action[string]) bool {
		return a.Label == "crash p0"
	}, "crash p0")
	crash1 := findAction(t, acts, func(a engine.Action[string]) bool {
		return a.Label == "crash p1"
	}, "crash p1")
	wake0 := findAction(t, acts, func(a engine.Action[string]) bool {
		return a.Actor == 0 && a.Label != "crash p0"
	}, "p0's wake-up delivery")
	wake1 := findAction(t, acts, func(a engine.Action[string]) bool {
		return a.Actor == 1 && a.Label != "crash p1"
	}, "p1's wake-up delivery")

	if indep(init, crash0, crash1) {
		t.Error("two crashes must conflict (shared resilience budget)")
	}
	if indep(init, crash0, wake0) || indep(init, wake0, crash0) {
		t.Error("a crash must conflict with a delivery to its victim")
	}
	if !indep(init, crash0, wake1) || !indep(init, wake1, crash0) {
		t.Error("a crash must commute with deliveries to other processes")
	}
	if !indep(init, wake0, wake1) {
		t.Error("deliveries to distinct receivers must be independent")
	}
	// Same receiver, send-producing: the wake-up mints the broadcast, so it
	// must conflict with any other delivery to the same process. Drive to a
	// configuration where p0's wake and a value delivery to p0 coexist.
	after1 := wake1.To
	acts1 := stepActions(sys, after1)
	wake0b := findAction(t, acts1, func(a engine.Action[string]) bool {
		return a.Actor == 0 && sender(a.Label) == "0"
	}, "p0 wake after p1 woke")
	val10 := findAction(t, acts1, func(a engine.Action[string]) bool {
		return a.Actor == 0 && sender(a.Label) == "1"
	}, "delivery 1>0 after p1 woke")
	if indep(after1, wake0b, val10) {
		t.Error("a send-producing wake-up must conflict with a same-receiver delivery")
	}

	// Same receiver, quiet, decision-preserving, distinct senders: after all
	// three wake, p2 has two pending quiet value deliveries (wait-all needs
	// all 3, so neither delivery alone decides).
	after := wake0.To
	for _, actor := range []int{1, 2} {
		actor := actor
		a := findAction(t, stepActions(sys, after), func(a engine.Action[string]) bool {
			// The wake-up is the unique self-addressed delivery.
			return a.Actor == actor && sender(a.Label) == string(rune('0'+actor))
		}, "wake")
		after = a.To
	}
	acts2 := stepActions(sys, after)
	d0 := findAction(t, acts2, func(a engine.Action[string]) bool {
		return a.Actor == 2 && sender(a.Label) == "0"
	}, "delivery 0>2")
	d1 := findAction(t, acts2, func(a engine.Action[string]) bool {
		return a.Actor == 2 && sender(a.Label) == "1"
	}, "delivery 1>2")
	if !indep(after, d0, d1) {
		t.Error("quiet decision-preserving same-receiver deliveries from distinct senders must be independent")
	}
	if !sendFree(after, d0) || !sendFree(after, d1) {
		t.Error("value deliveries to a woken wait-all process are send-free")
	}
	if !preservesDecision(p, after, d0) {
		t.Error("one of two missing values cannot decide wait-all(3)")
	}
	// Deliver d0; the remaining delivery crosses the threshold and decides,
	// so preservesDecision must reject it.
	acts3 := stepActions(sys, d0.To)
	d1b := findAction(t, acts3, func(a engine.Action[string]) bool {
		return a.Actor == 2 && sender(a.Label) == "1"
	}, "threshold delivery 1>2")
	if preservesDecision(p, d0.To, d1b) {
		t.Error("the threshold-crossing delivery changes p2's decision")
	}
}

func TestPORLabelHelpers(t *testing.T) {
	if got := sender("deliver 1>2:0"); got != "1" {
		t.Errorf("sender(deliver 1>2:0) = %q", got)
	}
	if got := sender("crash p1"); got != "crash p1" {
		t.Errorf("sender without deliver prefix = %q", got)
	}
	if got := sender("deliver oops"); got != "oops" {
		t.Errorf("sender without '>' = %q", got)
	}
	if got := crashTarget("crash p2"); got != 2 {
		t.Errorf("crashTarget(crash p2) = %d", got)
	}
	if got := crashTarget("deliver 1>2:0"); got != -1 {
		t.Errorf("crashTarget on a delivery = %d", got)
	}
	if got := crashTarget("crash pX"); got != -1 {
		t.Errorf("crashTarget on junk = %d", got)
	}
}

func TestConfigFieldHelpers(t *testing.T) {
	c := encodeConfig(0, []string{"aa", "b", "ccc"},
		[]envelope{{from: 0, to: 1, payload: "x"}, {from: 2, to: 0, payload: "y"}})
	if got := msgCount(c); got != 2 {
		t.Errorf("msgCount = %d, want 2", got)
	}
	if got := msgCount(encodeConfig(0, []string{"a", "b"}, nil)); got != 0 {
		t.Errorf("msgCount of empty flight = %d, want 0", got)
	}
	for i, want := range []string{"aa", "b", "ccc"} {
		if got := localState(c, i); got != want {
			t.Errorf("localState(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestAnalyzePORVerdictsMatch is the root soundness contract of the shipped
// relation: every boolean verdict is identical between the full and the
// POR-reduced analysis, for every protocol, resilience and worker count.
func TestAnalyzePORVerdictsMatch(t *testing.T) {
	protos := []Protocol{NewWaitAll(3), NewWaitQuorum(3), NewAdoptSwap(3)}
	for _, p := range protos {
		for _, resilience := range []int{0, 1} {
			base, err := Analyze(p, AnalyzeOptions{Resilience: intPtr(resilience)})
			if err != nil {
				t.Fatalf("%s r=%d: %v", p.Name(), resilience, err)
			}
			for _, workers := range []int{1, 2, 8} {
				rep, err := Analyze(p, AnalyzeOptions{
					Resilience:  intPtr(resilience),
					Parallelism: workers,
					Independent: DeliveryIndependence(p),
					Visible:     DecisionVisibility(p),
					VerifyPOR:   1,
				})
				if err != nil {
					t.Fatalf("%s r=%d workers=%d: %v", p.Name(), resilience, workers, err)
				}
				if rep.States > base.States || rep.Edges > base.Edges {
					t.Errorf("%s r=%d workers=%d: reduced graph larger than full (%d/%d vs %d/%d)",
						p.Name(), resilience, workers, rep.States, rep.Edges, base.States, base.Edges)
				}
				if rep.AgreementViolated != base.AgreementViolated ||
					rep.ValidityViolated != base.ValidityViolated ||
					rep.HasDeadlock != base.HasDeadlock ||
					(rep.NondecidingLasso != nil) != (base.NondecidingLasso != nil) ||
					rep.HasBivalentInitial != base.HasBivalentInitial ||
					rep.Lively != base.Lively {
					t.Errorf("%s r=%d workers=%d: verdicts diverged under POR:\nfull    %+v\nreduced %+v",
						p.Name(), resilience, workers, base, rep)
				}
			}
		}
	}
}

// TestPoisonedIndependenceCaught drops the send-conflict guard from the
// shipped relation — declaring a send-producing wake-up independent of other
// deliveries to the same process — and requires the engine's POR falsifier
// to reject the analysis deterministically at every worker count.
func TestPoisonedIndependenceCaught(t *testing.T) {
	p := NewAdoptSwap(2)
	poisoned := func(c string, a, b engine.Action[string]) bool {
		if a.Actor == core.EnvironmentActor || b.Actor == core.EnvironmentActor {
			return false
		}
		if a.Actor != b.Actor {
			return true
		}
		// Missing guards: no sendFree, no preservesDecision. A wake-up mints
		// the ring send carrying the CURRENT value, so its order against a
		// value-adopting delivery is observable in the emitted messages.
		return sender(a.Label) != sender(b.Label)
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := Analyze(p, AnalyzeOptions{
			Resilience:  intPtr(0),
			Parallelism: workers,
			Independent: poisoned,
			Visible:     DecisionVisibility(p),
			VerifyPOR:   1,
		})
		if err == nil {
			t.Fatalf("workers=%d: poisoned independence escaped the falsifier", workers)
		}
		if !errors.Is(err, engine.ErrPORUnsound) {
			t.Fatalf("workers=%d: got %v, want ErrPORUnsound", workers, err)
		}
	}
}

// TestBrokenIdempotenceCanonCaught feeds Analyze a canon that rotates the
// process-state vector one slot per application — sound-looking output,
// but not idempotent — and requires ErrCanonUnsound at every worker count.
func TestBrokenIdempotenceCanonCaught(t *testing.T) {
	rotate := func(c string) string {
		crashed, states, flight := decodeConfig(c)
		if len(states) < 2 {
			return c
		}
		rotated := append(states[1:], states[0])
		return encodeConfig(crashed, rotated, flight)
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := Analyze(NewWaitAll(2), AnalyzeOptions{
			Resilience:  intPtr(0),
			Parallelism: workers,
			Canon:       rotate,
			VerifyCanon: 1,
		})
		if err == nil {
			t.Fatalf("workers=%d: non-idempotent canon escaped the falsifier", workers)
		}
		if !errors.Is(err, engine.ErrCanonUnsound) {
			t.Fatalf("workers=%d: got %v, want ErrCanonUnsound", workers, err)
		}
	}
}
