package flp

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/engine"
)

// This file provides symmetry canonicalizers over encoded configurations,
// for use with core.ExploreOptions.Canon / AnalyzeOptions.Canon. A
// canonicalizer maps each configuration to the minimum of its orbit under a
// relabeling group; engine.Canonicalizer documents the soundness contract
// (idempotent, step-commuting), and Options.VerifyCanon checks it on the
// fly. Relabeling a configuration is always well-defined — whether the
// relabeling is a *symmetry of the protocol* is a separate question, which
// is exactly what the engine's safety check answers (see ValueSwapCanon for
// a deliberate non-example).

// ProcessSymmetric is implemented by protocols whose processes run
// identical, identity-blind code, so that relabeling the processes by any
// permutation is a symmetry of the transition relation. PermuteState must
// rewrite every process index embedded in a local state (index j becomes
// perm[j]); PermutePayload must do the same for message payloads (returning
// the payload unchanged when payloads carry no process ids).
type ProcessSymmetric interface {
	PermuteState(state string, perm []int) string
	PermutePayload(payload string, perm []int) string
}

// ValueSymmetric is implemented by protocols over binary inputs whose state
// and payload encodings support relabeling the values 0 <-> 1. As with
// ProcessSymmetric, implementing the relabeling does not assert it is a
// protocol symmetry: a protocol that breaks the tie between values (e.g. by
// deciding the minimum) relabels perfectly well but does not commute, and
// the engine's VerifyCanon rejects its value quotient.
type ValueSymmetric interface {
	SwapValuesState(state string) string
	SwapValuesPayload(payload string) string
}

// PermutationCanon returns the process-permutation canonicalizer for p: the
// representative of a configuration is the least encoding over all n!
// relabelings of the processes (states, crash mask, and message endpoints
// all permuted consistently). It errors when p does not declare
// ProcessSymmetric.
func PermutationCanon(p Protocol) (func(config) config, error) {
	ps, ok := p.(ProcessSymmetric)
	if !ok {
		return nil, fmt.Errorf("flp: protocol %s does not implement ProcessSymmetric", p.Name())
	}
	n := p.NumProcs()
	perms := permutations(n)
	return func(c config) config {
		crashed, states, flight := decodeConfig(c)
		best := c
		for _, pi := range perms[1:] { // perms[0] is the identity
			newStates := make([]string, n)
			newCrashed := 0
			for q := 0; q < n; q++ {
				newStates[pi[q]] = ps.PermuteState(states[q], pi)
				if crashed&(1<<uint(q)) != 0 {
					newCrashed |= 1 << uint(pi[q])
				}
			}
			newFlight := make([]envelope, len(flight))
			for i, env := range flight {
				payload := env.payload
				if payload != wakePayload {
					payload = ps.PermutePayload(payload, pi)
				}
				newFlight[i] = envelope{from: pi[env.from], to: pi[env.to], payload: payload}
			}
			if enc := encodeConfig(newCrashed, newStates, newFlight); enc < best {
				best = enc
			}
		}
		return best
	}, nil
}

// ProcessSymmetricAppend is the allocation-free extension of
// ProcessSymmetric, for the engine's EmitBytes canonicalization path: the
// Append forms must write exactly the bytes of the corresponding string
// forms into dst and return the extended slice, reading state/payload from
// the caller's buffers without retaining them.
type ProcessSymmetricAppend interface {
	ProcessSymmetric
	AppendPermutedState(dst, state []byte, perm []int) []byte
	AppendPermutedPayload(dst, payload []byte, perm []int) []byte
}

// PermutationCanonBytes returns a per-worker factory of byte-level
// process-permutation canonicalizers agreeing exactly with
// PermutationCanon (pass both to AnalyzeOptions / core.ExploreOptions:
// Canon defines the quotient, CanonBytes keeps the hot path free of
// string materialization). Each canonicalizer owns its scratch buffers, so
// a factory instance must not be shared across goroutines — the engine
// calls the factory once per worker. Configurations that violate
// encodeConfig's invariants (non-canonical integer fields, unsorted or
// malformed message section) are routed to the string canonicalizer, so
// agreement is unconditional. It errors when p does not declare
// ProcessSymmetricAppend.
func PermutationCanonBytes(p Protocol) (func() engine.BytesCanonicalizer, error) {
	ps, ok := p.(ProcessSymmetricAppend)
	if !ok {
		return nil, fmt.Errorf("flp: protocol %s does not implement ProcessSymmetricAppend", p.Name())
	}
	slow, err := PermutationCanon(p)
	if err != nil {
		return nil, err
	}
	n := p.NumProcs()
	perms := permutations(n)
	// invs[k][r] is the process whose state lands in slot r under perms[k].
	invs := make([][]int, len(perms))
	for k, pi := range perms {
		inv := make([]int, n)
		for q, r := range pi {
			inv[r] = q
		}
		invs[k] = inv
	}
	wake := []byte(wakePayload)
	return func() engine.BytesCanonicalizer {
		var sc permCanonScratch
		return func(dst, src []byte) []byte {
			best := append(dst[:0], src...)
			if !sc.parse(src, n) {
				return append(dst[:0], slow(string(src))...)
			}
			for k, pi := range perms[1:] {
				inv := invs[k+1]
				newCrashed := 0
				for q := 0; q < n; q++ {
					if sc.crashed&(1<<uint(q)) != 0 {
						newCrashed |= 1 << uint(pi[q])
					}
				}
				cand := sc.cand[:0]
				cand = strconv.AppendInt(cand, int64(newCrashed), 10)
				cand = append(cand, '\x1d')
				for r := 0; r < n; r++ {
					if r > 0 {
						cand = append(cand, '\x1e')
					}
					cand = ps.AppendPermutedState(cand, sc.states[inv[r]], pi)
				}
				cand = append(cand, '\x1d')
				// Prefix gate: the crash mask and permuted states are cheap
				// to render, the message section (per-envelope renders plus a
				// sort) is not. Lexicographic comparison is positional, so if
				// the prefix already exceeds best at some byte — or equals it
				// with best exhausted, since any extension only grows cand —
				// the candidate has lost and the message section is never
				// rendered. Most of the n!-1 candidates die here.
				m := len(cand)
				if len(best) < m {
					m = len(best)
				}
				if c := bytes.Compare(cand[:m], best[:m]); c > 0 || (c == 0 && len(best) <= len(cand)) {
					sc.cand = cand
					continue
				}
				sc.msgBuf = sc.msgBuf[:0]
				sc.msgOff = sc.msgOff[:0]
				for _, m := range sc.parsed {
					start := len(sc.msgBuf)
					sc.msgBuf = strconv.AppendInt(sc.msgBuf, int64(pi[m.from]), 10)
					sc.msgBuf = append(sc.msgBuf, '>')
					sc.msgBuf = strconv.AppendInt(sc.msgBuf, int64(pi[m.to]), 10)
					sc.msgBuf = append(sc.msgBuf, ':')
					if bytes.Equal(m.payload, wake) {
						sc.msgBuf = append(sc.msgBuf, m.payload...)
					} else {
						sc.msgBuf = ps.AppendPermutedPayload(sc.msgBuf, m.payload, pi)
					}
					sc.msgOff = append(sc.msgOff, [2]int{start, len(sc.msgBuf)})
				}
				sortSpansBytes(sc.msgBuf, sc.msgOff)
				for i, sp := range sc.msgOff {
					if i > 0 {
						cand = append(cand, '\x1f')
					}
					cand = append(cand, sc.msgBuf[sp[0]:sp[1]]...)
				}
				sc.cand = cand
				if bytes.Compare(cand, best) < 0 {
					best = append(best[:0], cand...)
				}
			}
			return best
		}
	}, nil
}

// permMsg is one strictly parsed in-flight envelope; payload aliases the
// source configuration.
type permMsg struct {
	from, to int
	payload  []byte
}

// permCanonScratch is the reusable state of one byte-level permutation
// canonicalizer.
type permCanonScratch struct {
	crashed int
	states  [][]byte // subslices of src
	parsed  []permMsg
	msgBuf  []byte
	msgOff  [][2]int
	cand    []byte
}

// parse strictly decomposes src; false means fall back to the string
// canonicalizer. It requires exactly n process states, canonical integer
// fields, and msgs in sorted order (encodeConfig re-sorts, so an unsorted
// input would not re-encode to itself).
func (sc *permCanonScratch) parse(src []byte, n int) bool {
	i1 := bytes.IndexByte(src, '\x1d')
	if i1 < 0 {
		return false
	}
	rest := src[i1+1:]
	i2 := bytes.IndexByte(rest, '\x1d')
	if i2 < 0 {
		return false
	}
	crashed, ok := parseCanonInt(src[:i1])
	if !ok {
		return false
	}
	sc.crashed = crashed
	sc.states = sc.states[:0]
	statesSec := rest[:i2]
	for {
		j := bytes.IndexByte(statesSec, '\x1e')
		if j < 0 {
			sc.states = append(sc.states, statesSec)
			break
		}
		sc.states = append(sc.states, statesSec[:j])
		statesSec = statesSec[j+1:]
	}
	if len(sc.states) != n {
		return false
	}
	sc.parsed = sc.parsed[:0]
	msgsSec := rest[i2+1:]
	if len(msgsSec) == 0 {
		return true
	}
	var prev []byte
	for {
		j := bytes.IndexByte(msgsSec, '\x1f')
		m := msgsSec
		if j >= 0 {
			m = msgsSec[:j]
		}
		if prev != nil && bytes.Compare(m, prev) < 0 {
			return false
		}
		prev = m
		gt := bytes.IndexByte(m, '>')
		if gt <= 0 {
			return false
		}
		colon := bytes.IndexByte(m[gt+1:], ':')
		if colon < 0 {
			return false
		}
		colon += gt + 1
		from, okF := parseCanonInt(m[:gt])
		to, okT := parseCanonInt(m[gt+1 : colon])
		if !okF || !okT || from >= n || to >= n {
			return false
		}
		sc.parsed = append(sc.parsed, permMsg{from: from, to: to, payload: m[colon+1:]})
		if j < 0 {
			return true
		}
		msgsSec = msgsSec[j+1:]
	}
}

// sortSpansBytes is sortSpans for a bytes-only call site (kept separate so
// canon.go does not depend on expand.go's string-comparison helper).
func sortSpansBytes(buf []byte, offs [][2]int) {
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && bytes.Compare(buf[offs[j][0]:offs[j][1]], buf[offs[j-1][0]:offs[j-1][1]]) < 0; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
}

// AppendPermutedState implements ProcessSymmetricAppend; see PermuteState.
func (w *waitProto) AppendPermutedState(dst, state []byte, perm []int) []byte {
	off := len(dst)
	dst = append(dst, state...)
	for j := 0; j < w.n; j++ {
		dst[off+perm[j]] = state[j]
	}
	return dst
}

// AppendPermutedPayload implements ProcessSymmetricAppend; payloads are
// bare value characters.
func (w *waitProto) AppendPermutedPayload(dst, payload []byte, _ []int) []byte {
	return append(dst, payload...)
}

// ValueSwapCanon returns the value-relabeling (0 <-> 1) canonicalizer for
// p: the representative is the lesser of a configuration and its fully
// value-swapped image. It errors when p does not declare ValueSymmetric.
//
// Value swapping is a genuine symmetry only of value-blind protocols
// (AdoptSwap decides on a match, which is equivariant); the wait protocols
// decide the *minimum* value seen, which relabeling does not commute with —
// their value quotient is unsound and silently drops reachable orbits.
// Instructively, VerifyCanon does NOT catch this one: the commutation
// violations sit at configurations like "p0 decided 0 from values 10" whose
// swapped images ("decided 1 from values 01") the protocol can never
// produce, so the quotient never generates the offending orbit members for
// the sampled check to examine. The package tests pin the unsoundness down
// the direct way instead, by exhibiting a reachable orbit the quotient
// misses. Keep this canonicalizer for protocols that are actually
// value-blind — and treat a passing VerifyCanon as evidence, not proof.
func ValueSwapCanon(p Protocol) (func(config) config, error) {
	vs, ok := p.(ValueSymmetric)
	if !ok {
		return nil, fmt.Errorf("flp: protocol %s does not implement ValueSymmetric", p.Name())
	}
	n := p.NumProcs()
	return func(c config) config {
		crashed, states, flight := decodeConfig(c)
		newStates := make([]string, n)
		for q := 0; q < n; q++ {
			newStates[q] = vs.SwapValuesState(states[q])
		}
		newFlight := make([]envelope, len(flight))
		for i, env := range flight {
			payload := env.payload
			if payload != wakePayload {
				payload = vs.SwapValuesPayload(payload)
			}
			newFlight[i] = envelope{from: env.from, to: env.to, payload: payload}
		}
		if enc := encodeConfig(crashed, newStates, newFlight); enc < c {
			return enc
		}
		return c
	}, nil
}

// permutations returns all permutations of [0, n) in a deterministic
// order, identity first.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// PermuteState implements ProcessSymmetric: the collected-values prefix is
// indexed by process, so slot j moves to slot perm[j]; the decision suffix
// is index-free.
func (w *waitProto) PermuteState(state string, perm []int) string {
	out := []byte(state)
	for j := 0; j < w.n; j++ {
		out[perm[j]] = state[j]
	}
	return string(out)
}

// PermutePayload implements ProcessSymmetric: payloads are bare value
// characters.
func (w *waitProto) PermutePayload(payload string, _ []int) string { return payload }

// SwapValuesState implements ValueSymmetric (see ValueSwapCanon for why the
// resulting quotient is nonetheless unsound for the wait protocols).
func (w *waitProto) SwapValuesState(state string) string {
	return swapBinaryChars(state)
}

// SwapValuesPayload implements ValueSymmetric.
func (w *waitProto) SwapValuesPayload(payload string) string {
	return swapBinaryChars(payload)
}

// SwapValuesState implements ValueSymmetric: value char + decision char,
// both relabeled.
func (a *adoptSwap) SwapValuesState(state string) string {
	return swapBinaryChars(state)
}

// SwapValuesPayload implements ValueSymmetric.
func (a *adoptSwap) SwapValuesPayload(payload string) string {
	return swapBinaryChars(payload)
}

func swapBinaryChars(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch b {
		case '0':
			out[i] = '1'
		case '1':
			out[i] = '0'
		}
	}
	return string(out)
}
