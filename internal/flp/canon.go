package flp

import (
	"fmt"
)

// This file provides symmetry canonicalizers over encoded configurations,
// for use with core.ExploreOptions.Canon / AnalyzeOptions.Canon. A
// canonicalizer maps each configuration to the minimum of its orbit under a
// relabeling group; engine.Canonicalizer documents the soundness contract
// (idempotent, step-commuting), and Options.VerifyCanon checks it on the
// fly. Relabeling a configuration is always well-defined — whether the
// relabeling is a *symmetry of the protocol* is a separate question, which
// is exactly what the engine's safety check answers (see ValueSwapCanon for
// a deliberate non-example).

// ProcessSymmetric is implemented by protocols whose processes run
// identical, identity-blind code, so that relabeling the processes by any
// permutation is a symmetry of the transition relation. PermuteState must
// rewrite every process index embedded in a local state (index j becomes
// perm[j]); PermutePayload must do the same for message payloads (returning
// the payload unchanged when payloads carry no process ids).
type ProcessSymmetric interface {
	PermuteState(state string, perm []int) string
	PermutePayload(payload string, perm []int) string
}

// ValueSymmetric is implemented by protocols over binary inputs whose state
// and payload encodings support relabeling the values 0 <-> 1. As with
// ProcessSymmetric, implementing the relabeling does not assert it is a
// protocol symmetry: a protocol that breaks the tie between values (e.g. by
// deciding the minimum) relabels perfectly well but does not commute, and
// the engine's VerifyCanon rejects its value quotient.
type ValueSymmetric interface {
	SwapValuesState(state string) string
	SwapValuesPayload(payload string) string
}

// PermutationCanon returns the process-permutation canonicalizer for p: the
// representative of a configuration is the least encoding over all n!
// relabelings of the processes (states, crash mask, and message endpoints
// all permuted consistently). It errors when p does not declare
// ProcessSymmetric.
func PermutationCanon(p Protocol) (func(config) config, error) {
	ps, ok := p.(ProcessSymmetric)
	if !ok {
		return nil, fmt.Errorf("flp: protocol %s does not implement ProcessSymmetric", p.Name())
	}
	n := p.NumProcs()
	perms := permutations(n)
	return func(c config) config {
		crashed, states, flight := decodeConfig(c)
		best := c
		for _, pi := range perms[1:] { // perms[0] is the identity
			newStates := make([]string, n)
			newCrashed := 0
			for q := 0; q < n; q++ {
				newStates[pi[q]] = ps.PermuteState(states[q], pi)
				if crashed&(1<<uint(q)) != 0 {
					newCrashed |= 1 << uint(pi[q])
				}
			}
			newFlight := make([]envelope, len(flight))
			for i, env := range flight {
				payload := env.payload
				if payload != wakePayload {
					payload = ps.PermutePayload(payload, pi)
				}
				newFlight[i] = envelope{from: pi[env.from], to: pi[env.to], payload: payload}
			}
			if enc := encodeConfig(newCrashed, newStates, newFlight); enc < best {
				best = enc
			}
		}
		return best
	}, nil
}

// ValueSwapCanon returns the value-relabeling (0 <-> 1) canonicalizer for
// p: the representative is the lesser of a configuration and its fully
// value-swapped image. It errors when p does not declare ValueSymmetric.
//
// Value swapping is a genuine symmetry only of value-blind protocols
// (AdoptSwap decides on a match, which is equivariant); the wait protocols
// decide the *minimum* value seen, which relabeling does not commute with —
// their value quotient is unsound and silently drops reachable orbits.
// Instructively, VerifyCanon does NOT catch this one: the commutation
// violations sit at configurations like "p0 decided 0 from values 10" whose
// swapped images ("decided 1 from values 01") the protocol can never
// produce, so the quotient never generates the offending orbit members for
// the sampled check to examine. The package tests pin the unsoundness down
// the direct way instead, by exhibiting a reachable orbit the quotient
// misses. Keep this canonicalizer for protocols that are actually
// value-blind — and treat a passing VerifyCanon as evidence, not proof.
func ValueSwapCanon(p Protocol) (func(config) config, error) {
	vs, ok := p.(ValueSymmetric)
	if !ok {
		return nil, fmt.Errorf("flp: protocol %s does not implement ValueSymmetric", p.Name())
	}
	n := p.NumProcs()
	return func(c config) config {
		crashed, states, flight := decodeConfig(c)
		newStates := make([]string, n)
		for q := 0; q < n; q++ {
			newStates[q] = vs.SwapValuesState(states[q])
		}
		newFlight := make([]envelope, len(flight))
		for i, env := range flight {
			payload := env.payload
			if payload != wakePayload {
				payload = vs.SwapValuesPayload(payload)
			}
			newFlight[i] = envelope{from: env.from, to: env.to, payload: payload}
		}
		if enc := encodeConfig(crashed, newStates, newFlight); enc < c {
			return enc
		}
		return c
	}, nil
}

// permutations returns all permutations of [0, n) in a deterministic
// order, identity first.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// PermuteState implements ProcessSymmetric: the collected-values prefix is
// indexed by process, so slot j moves to slot perm[j]; the decision suffix
// is index-free.
func (w *waitProto) PermuteState(state string, perm []int) string {
	out := []byte(state)
	for j := 0; j < w.n; j++ {
		out[perm[j]] = state[j]
	}
	return string(out)
}

// PermutePayload implements ProcessSymmetric: payloads are bare value
// characters.
func (w *waitProto) PermutePayload(payload string, _ []int) string { return payload }

// SwapValuesState implements ValueSymmetric (see ValueSwapCanon for why the
// resulting quotient is nonetheless unsound for the wait protocols).
func (w *waitProto) SwapValuesState(state string) string {
	return swapBinaryChars(state)
}

// SwapValuesPayload implements ValueSymmetric.
func (w *waitProto) SwapValuesPayload(payload string) string {
	return swapBinaryChars(payload)
}

// SwapValuesState implements ValueSymmetric: value char + decision char,
// both relabeled.
func (a *adoptSwap) SwapValuesState(state string) string {
	return swapBinaryChars(state)
}

// SwapValuesPayload implements ValueSymmetric.
func (a *adoptSwap) SwapValuesPayload(payload string) string {
	return swapBinaryChars(payload)
}

func swapBinaryChars(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch b {
		case '0':
			out[i] = '1'
		case '1':
			out[i] = '0'
		}
	}
	return string(out)
}
