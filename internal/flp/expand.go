package flp

import (
	"bytes"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
)

// This file is the zero-allocation expansion path: ExpandInto re-derives
// Steps' successors directly from the encoded configuration, rendering each
// one into the worker's scratch buffer instead of materializing envelope
// slices, a dedup map, and joined strings per successor. The encoding
// invariants it leans on (canonical decimal fields, sorted message
// section) are established by encodeConfig; any configuration that
// violates them — which encodeConfig never emits — is handed to the
// allocating Steps path, so the two are extensionally identical on every
// input. Equivalence is pinned three ways: TestExpandIntoMatchesSteps,
// engine.Differential in the package tests, and Options.VerifyAliasing.
//
// Contract recap (engine.Ctx): the bytes passed to EmitBytes and Label are
// consumed before the call returns, and nothing emitted may be retained
// across expansions. All state below lives in expandScratch, re-derived
// from the current configuration on every call.

// expandScratch is the per-worker scratch of the expansion fast path,
// carried in Ctx.Sys. The substring slices alias the configuration being
// expanded; the byte buffers are overwritten on every successor.
type expandScratch struct {
	states   []string    // per-process local states (substrings of c)
	msgs     []string    // sorted in-flight section (substrings of c)
	parsed   []parsedEnv // strict parse of msgs, index-aligned
	sendOff  [][2]int    // rendered new-send spans in sendBuf, sorted
	sendBuf  []byte      // rendered new sends
	lbl      []byte      // label render buffer
	sends    []Send      // reusable send slice for ScratchProtocol calls
	stateBuf []byte      // successor local-state render buffer
}

// ScratchProtocol is the optional allocation-free twin of Protocol's
// transition functions. AppendStep renders the successor local state into
// dst (append-style, returning the grown slice) and appends any sends to
// the reusable slice instead of allocating fresh ones; AppendInitialSends
// does the same for the wake-up broadcast. Both must be extensionally
// identical to Step/InitialSends — same successor bytes, same sends in the
// same order — and the returned Send payloads must be immutable strings
// (constants or substrings of the inputs), never views over dst.
type ScratchProtocol interface {
	Protocol
	AppendStep(dst []byte, p int, state string, from int, payload string, sends []Send) ([]byte, []Send)
	AppendInitialSends(p int, state string, sends []Send) []Send
}

// parsedEnv is one strictly parsed envelope; payload aliases the
// configuration being expanded.
type parsedEnv struct {
	from, to int
	payload  string
}

var _ core.ScratchSystem[config] = (*system)(nil)

// ExpandInto implements core.ScratchSystem: it emits exactly the
// transitions of Steps, in the same order (deliveries in sorted flight
// order, then crashes p0..pn-1), with byte-identical successor encodings
// and labels.
func (s *system) ExpandInto(c config, x *engine.Ctx[config]) {
	sc, _ := x.Sys.(*expandScratch)
	if sc == nil {
		sc = &expandScratch{}
		x.Sys = sc
	}
	i1 := strings.IndexByte(c, '\x1d')
	if i1 < 0 {
		s.expandSlow(c, x)
		return
	}
	rest := c[i1+1:]
	i2 := strings.IndexByte(rest, '\x1d')
	if i2 < 0 {
		s.expandSlow(c, x)
		return
	}
	crashed, ok := parseCanonInt(c[:i1])
	if !ok {
		s.expandSlow(c, x)
		return
	}
	statesStr := rest[:i2]
	msgsStr := rest[i2+1:]
	n := s.p.NumProcs()

	sc.states = splitByte(sc.states[:0], statesStr, '\x1e')
	if len(sc.states) != n {
		s.expandSlow(c, x)
		return
	}
	sc.msgs = sc.msgs[:0]
	if msgsStr != "" {
		sc.msgs = splitByte(sc.msgs, msgsStr, '\x1f')
	}

	// Validation pre-pass: everything that can force the fallback must be
	// detected before the first emission (an emission cannot be retracted,
	// so a mid-loop fallback would double-emit).
	sc.parsed = sc.parsed[:0]
	for i, m := range sc.msgs {
		if i > 0 && m < sc.msgs[i-1] {
			// Unsorted message section: not an encodeConfig output.
			s.expandSlow(c, x)
			return
		}
		from, to, payload, ok := parseMsg(m)
		if !ok || from >= n || to >= n {
			s.expandSlow(c, x)
			return
		}
		sc.parsed = append(sc.parsed, parsedEnv{from: from, to: to, payload: payload})
	}

	sp, scratchOK := s.p.(ScratchProtocol)

	for i, m := range sc.msgs {
		if i > 0 && m == sc.msgs[i-1] {
			continue // identical envelopes lead to identical successors
		}
		from, to, payload := sc.parsed[i].from, sc.parsed[i].to, sc.parsed[i].payload
		if crashed&(1<<uint(to)) != 0 {
			continue // receiver is dead; the message is never delivered
		}
		var newState string
		var sends []Send
		useB := false
		if payload == wakePayload && from == to {
			newState = sc.states[to]
			if scratchOK {
				sc.sends = sp.AppendInitialSends(to, newState, sc.sends[:0])
				sends = sc.sends
			} else {
				sends = s.p.InitialSends(to, newState)
			}
		} else if scratchOK {
			sc.stateBuf, sc.sends = sp.AppendStep(sc.stateBuf[:0], to, sc.states[to], from, payload, sc.sends[:0])
			sends = sc.sends
			useB = true
		} else {
			newState, sends = s.p.Step(to, sc.states[to], from, payload)
		}
		sc.sendBuf = sc.sendBuf[:0]
		sc.sendOff = sc.sendOff[:0]
		for _, snd := range sends {
			start := len(sc.sendBuf)
			sc.sendBuf = appendMsg(sc.sendBuf, to, snd.To, snd.Payload)
			sc.sendOff = append(sc.sendOff, [2]int{start, len(sc.sendBuf)})
		}
		sortSpans(sc.sendBuf, sc.sendOff)

		buf := x.Scratch[:0]
		buf = strconv.AppendInt(buf, int64(crashed), 10)
		buf = append(buf, '\x1d')
		for q, st := range sc.states {
			if q > 0 {
				buf = append(buf, '\x1e')
			}
			if q == to {
				if useB {
					buf = append(buf, sc.stateBuf...)
				} else {
					buf = append(buf, newState...)
				}
			} else {
				buf = append(buf, st...)
			}
		}
		buf = append(buf, '\x1d')
		buf = appendMergedMsgs(buf, sc.msgs, i, sc.sendBuf, sc.sendOff)
		x.Scratch = buf
		sc.lbl = append(sc.lbl[:0], "deliver "...)
		sc.lbl = append(sc.lbl, m...)
		x.EmitBytes(buf, x.Label(sc.lbl), to)
	}

	if countBits(crashed) < s.resilience {
		for p := 0; p < n; p++ {
			if crashed&(1<<uint(p)) != 0 {
				continue
			}
			// A crash changes only the mask: the state and message
			// sections carry over verbatim (they re-render to themselves
			// under the canonical-parse checks above).
			buf := x.Scratch[:0]
			buf = strconv.AppendInt(buf, int64(crashed|1<<uint(p)), 10)
			buf = append(buf, '\x1d')
			buf = append(buf, statesStr...)
			buf = append(buf, '\x1d')
			buf = append(buf, msgsStr...)
			x.Scratch = buf
			sc.lbl = append(sc.lbl[:0], "crash p"...)
			sc.lbl = strconv.AppendInt(sc.lbl, int64(p), 10)
			x.EmitBytes(buf, x.Label(sc.lbl), core.EnvironmentActor)
		}
	}
}

// expandSlow is the fallback onto the allocating executable spec.
func (s *system) expandSlow(c config, x *engine.Ctx[config]) {
	for _, st := range s.Steps(c) {
		x.Emit(st.To, st.Label, st.Actor)
	}
}

// splitByte appends the sep-separated substrings of s to dst. Unlike
// strings.Split it allocates nothing beyond dst's backing array.
func splitByte(dst []string, s string, sep byte) []string {
	for {
		j := strings.IndexByte(s, sep)
		if j < 0 {
			return append(dst, s)
		}
		dst = append(dst, s[:j])
		s = s[j+1:]
	}
}

// parseCanonInt parses a canonically rendered non-negative decimal — the
// exact image of strconv.Itoa, so no empty string, no leading zeros, no
// signs. Anything else means the field did not come from encodeConfig.
func parseCanonInt[T ~string | ~[]byte](s T) (int, bool) {
	if len(s) == 0 || (len(s) > 1 && s[0] == '0') {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, false
		}
		v = v*10 + int(d)
		if v > 1<<30 {
			return 0, false
		}
	}
	return v, true
}

// parseMsg parses a canonically rendered envelope "from>to:payload".
func parseMsg(m string) (from, to int, payload string, ok bool) {
	gt := strings.IndexByte(m, '>')
	if gt <= 0 {
		return 0, 0, "", false
	}
	colon := strings.IndexByte(m[gt+1:], ':')
	if colon < 0 {
		return 0, 0, "", false
	}
	colon += gt + 1
	from, okF := parseCanonInt(m[:gt])
	to, okT := parseCanonInt(m[gt+1 : colon])
	if !okF || !okT {
		return 0, 0, "", false
	}
	return from, to, m[colon+1:], true
}

// appendMsg renders an envelope exactly as envelope.String does.
func appendMsg(dst []byte, from, to int, payload string) []byte {
	dst = strconv.AppendInt(dst, int64(from), 10)
	dst = append(dst, '>')
	dst = strconv.AppendInt(dst, int64(to), 10)
	dst = append(dst, ':')
	return append(dst, payload...)
}

// sortSpans insertion-sorts the spans of buf lexicographically. Send
// counts are tiny (at most n-1), so insertion sort wins.
func sortSpans(buf []byte, offs [][2]int) {
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && bytes.Compare(buf[offs[j][0]:offs[j][1]], buf[offs[j-1][0]:offs[j-1][1]]) < 0; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
}

// cmpBytesString three-way compares a byte slice against a string without
// allocating.
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// appendMergedMsgs appends the \x1f-joined sorted union of msgs (minus the
// delivered copy at index skip) and the pre-sorted rendered sends — i.e.
// exactly encodeConfig's message section for the successor.
func appendMergedMsgs(buf []byte, msgs []string, skip int, sendBuf []byte, offs [][2]int) []byte {
	mi, si := 0, 0
	first := true
	for mi < len(msgs) || si < len(offs) {
		if mi == skip {
			mi++
			continue
		}
		takeSend := false
		if mi >= len(msgs) {
			takeSend = true
		} else if si < len(offs) {
			sp := offs[si]
			takeSend = cmpBytesString(sendBuf[sp[0]:sp[1]], msgs[mi]) < 0
		}
		if !first {
			buf = append(buf, '\x1f')
		}
		first = false
		if takeSend {
			sp := offs[si]
			buf = append(buf, sendBuf[sp[0]:sp[1]]...)
			si++
		} else {
			buf = append(buf, msgs[mi]...)
			mi++
		}
	}
	return buf
}
