package flp

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// collectInto runs ExpandInto with a collecting sink, returning the
// emitted transitions as core.Steps for comparison against Steps.
func collectInto(s *system, c config) []core.Step[config] {
	var out []core.Step[config]
	x := engine.CollectCtx(func(to config, label string, actor int) {
		out = append(out, core.Step[config]{To: to, Label: label, Actor: actor})
	})
	s.ExpandInto(c, x)
	return out
}

// walkConfigs breadth-first walks the configuration graph from the
// system's initials using Steps, applying f to every distinct
// configuration, up to limit states.
func walkConfigs(s *system, limit int, f func(config)) {
	seen := map[config]bool{}
	frontier := s.Init()
	for len(frontier) > 0 && len(seen) < limit {
		var next []config
		for _, c := range frontier {
			if seen[c] {
				continue
			}
			seen[c] = true
			f(c)
			if len(seen) >= limit {
				return
			}
			for _, st := range s.Steps(c) {
				next = append(next, st.To)
			}
		}
		frontier = next
	}
}

// TestExpandIntoMatchesSteps checks, configuration by configuration, that
// the zero-allocation expansion emits exactly Steps' transitions — same
// successors, labels, actors, same order — across all three protocol
// families and both resilience settings.
func TestExpandIntoMatchesSteps(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  *system
	}{
		{"wait-all", &system{p: NewWaitAll(3), inputVectors: allBinaryVectors(3), resilience: 1}},
		{"wait-quorum", &system{p: NewWaitQuorum(3), inputVectors: allBinaryVectors(3), resilience: 1}},
		{"adopt-swap", &system{p: NewAdoptSwap(3), inputVectors: allBinaryVectors(3), resilience: 1}},
		{"wait-all-r0", &system{p: NewWaitAll(3), inputVectors: allBinaryVectors(3), resilience: 0}},
		{"wait-quorum-r2", &system{p: NewWaitQuorum(3), inputVectors: allBinaryVectors(3), resilience: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checked := 0
			walkConfigs(tc.sys, 4000, func(c config) {
				want := tc.sys.Steps(c)
				got := collectInto(tc.sys, c)
				if len(want) == 0 && len(got) == 0 {
					return
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("config %q:\nSteps      = %v\nExpandInto = %v", c, want, got)
				}
				checked++
			})
			if checked == 0 {
				t.Fatal("walk checked nothing")
			}
		})
	}
}

// TestExpandIntoFallsBackOnAnomalies feeds encodings that encodeConfig
// never produces; the fast path must hand them to Steps rather than
// mis-parse them, so the two stay extensionally identical even off the
// reachable set.
func TestExpandIntoFallsBackOnAnomalies(t *testing.T) {
	s := &system{p: NewWaitQuorum(3), inputVectors: allBinaryVectors(3), resilience: 1}
	// Configurations missing the section separators entirely make
	// decodeConfig itself panic, in fast path and fallback alike (the
	// fallback IS Steps); the anomalies here are the parseable-but-
	// non-canonical ones, where the fast path could plausibly diverge.
	anomalies := []config{
		"00\x1d0--:-\x1e-0-:-\x1e--1:-\x1d",              // non-canonical crash mask
		"0\x1d0--:-\x1e-0-:-\x1d",                        // wrong process count
		"0\x1d0--:-\x1e-0-:-\x1e--1:-\x1d1>0:1\x1f0>1:0", // unsorted messages
		"0\x1d0--:-\x1e-0-:-\x1e--1:-\x1dx>0:1",          // malformed sender
		"0\x1d0--:-\x1e-0-:-\x1e--1:-\x1d01>0:1",         // non-canonical sender
		"0\x1d0--:-\x1e-0-:-\x1e--1:-\x1d0:1",            // no '>' separator
	}
	for _, c := range anomalies {
		want := s.Steps(c)
		got := collectInto(s, c)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("anomalous config %q:\nSteps      = %v\nExpandInto = %v", c, want, got)
		}
	}
}

// TestPermutationCanonBytesMatchesCanon checks the byte-level
// canonicalizer against PermutationCanon on every reachable configuration
// of a 3-process wait protocol, plus the dst-backing contract.
func TestPermutationCanonBytesMatchesCanon(t *testing.T) {
	p := NewWaitQuorum(3)
	s := &system{p: p, inputVectors: allBinaryVectors(3), resilience: 1}
	canonStr, err := PermutationCanon(p)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := PermutationCanonBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	canonB := factory()
	var dst []byte
	checked := 0
	walkConfigs(s, 4000, func(c config) {
		dst = canonB(dst[:0], []byte(c))
		if got, want := string(dst), canonStr(c); got != want {
			t.Fatalf("config %q: bytes canon %q, string canon %q", c, got, want)
		}
		checked++
	})
	if checked < 100 {
		t.Fatalf("walk checked only %d configs", checked)
	}
	// Anomalous (but decodable) encodings must agree too, via the string
	// fallback.
	for _, c := range []string{
		"0\x1daaaa\x1ebbbb\x1ecccc\x1dbad msg",        // malformed envelope (decode drops it)
		"0\x1daaaa\x1ebbbb\x1ecccc\x1d1>0:x\x1f0>1:y", // unsorted message section
		"00\x1daaaa\x1ebbbb\x1ecccc\x1d0>1:x",         // non-canonical crash mask
	} {
		if got, want := string(canonB(nil, []byte(c))), canonStr(c); got != want {
			t.Fatalf("anomalous %q: bytes canon %q, string canon %q", c, got, want)
		}
	}
	// The result must be dst-backed, never aliasing src.
	src := []byte("0\x1d-1-:-\x1e0--:-\x1e--1:-\x1d")
	out := canonB(nil, src)
	for i := range src {
		src[i] = 0xEE
	}
	if got, want := string(out), canonStr("0\x1d-1-:-\x1e0--:-\x1e--1:-\x1d"); got != want {
		t.Fatalf("result aliases src: %q after poisoning, want %q", got, want)
	}
}

// TestPermutationCanonBytesRequiresAppend checks the interface gate.
func TestPermutationCanonBytesRequiresAppend(t *testing.T) {
	if _, err := PermutationCanonBytes(NewAdoptSwap(3)); err == nil {
		t.Fatal("adopt-swap does not declare ProcessSymmetricAppend; want error")
	}
}

// TestAnalyzeWithBytesPath runs the full analysis with the byte-level
// canon and the aliasing falsifier enabled everywhere, and checks the
// report matches the plain-path report field for field.
func TestAnalyzeWithBytesPath(t *testing.T) {
	p := NewWaitQuorum(3)
	canonStr, err := PermutationCanon(p)
	if err != nil {
		t.Fatal(err)
	}
	canonB, err := PermutationCanonBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(p, AnalyzeOptions{Canon: canonStr, VerifyCanon: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Analyze(p, AnalyzeOptions{
		Canon: canonStr, VerifyCanon: 1, CanonBytes: canonB,
		VerifyAliasing: 1, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, fast) {
		t.Fatalf("reports differ:\nplain = %+v\nfast  = %+v", plain, fast)
	}
}
