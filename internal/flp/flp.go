// Package flp mechanizes the bivalence technique of Fischer, Lynch and
// Paterson (§2.2.4): for an asynchronous message-passing consensus
// protocol, it explores the configuration graph (including up to one crash
// event, since the theorem is about 1-resilient protocols), computes the
// valence of every configuration, finds bivalent initial configurations
// and Herlihy-style decider configurations, and constructs the admissible
// non-deciding executions at the heart of the proof. For any concrete
// protocol the analyzer therefore exhibits at least one of the horns the
// theorem guarantees: a safety violation (disagreement or invalidity) or a
// liveness violation (a fair non-deciding execution or an undecided
// deadlock after a single crash).
package flp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// Send is a message emitted by a protocol step.
type Send struct {
	// To is the destination process.
	To int
	// Payload is the message body.
	Payload string
}

// Protocol is a deterministic asynchronous message-passing protocol in the
// FLP style: every step is the receipt of one in-flight message, which
// updates the local state and emits messages. Initial messages are
// declared by InitialSends. Local states are canonical strings so the
// explorer can deduplicate configurations.
type Protocol interface {
	// Name identifies the protocol.
	Name() string
	// NumProcs returns the number of processes.
	NumProcs() int
	// Init returns process p's initial local state for an input value.
	Init(p, input int) string
	// InitialSends returns the messages p emits before receiving anything.
	InitialSends(p int, state string) []Send
	// Step handles delivery of a message from a peer and returns the new
	// state plus emitted messages.
	Step(p int, state string, from int, payload string) (string, []Send)
	// Decide reports p's decision, if any, from its state.
	Decide(p int, state string) (int, bool)
}

// envelope is one in-flight message.
type envelope struct {
	from, to int
	payload  string
}

func (e envelope) String() string {
	return strconv.Itoa(e.from) + ">" + strconv.Itoa(e.to) + ":" + e.payload
}

// config is the canonical encoding of a configuration: crash mask, process
// states joined by \x1e, then the sorted in-flight multiset joined by \x1f.
type config = string

func encodeConfig(crashed int, states []string, flight []envelope) config {
	msgs := make([]string, len(flight))
	for i, e := range flight {
		msgs[i] = e.String()
	}
	sort.Strings(msgs)
	return strconv.Itoa(crashed) + "\x1d" + strings.Join(states, "\x1e") + "\x1d" + strings.Join(msgs, "\x1f")
}

func decodeConfig(c config) (crashed int, states []string, flight []envelope) {
	parts := strings.SplitN(c, "\x1d", 3)
	crashed, _ = strconv.Atoi(parts[0])
	states = strings.Split(parts[1], "\x1e")
	if parts[2] == "" {
		return crashed, states, nil
	}
	for _, m := range strings.Split(parts[2], "\x1f") {
		gt := strings.IndexByte(m, '>')
		colon := strings.IndexByte(m, ':')
		if gt < 0 || colon < gt {
			continue
		}
		from, _ := strconv.Atoi(m[:gt])
		to, _ := strconv.Atoi(m[gt+1 : colon])
		flight = append(flight, envelope{from: from, to: to, payload: m[colon+1:]})
	}
	return crashed, states, flight
}

// system adapts a Protocol to core.System: events are message deliveries
// (attributed to the receiving process) and — when resilience > 0 — crash
// events (attributed to the environment). A crashed process takes no
// further steps; messages addressed to it are silently absorbed.
type system struct {
	p            Protocol
	inputVectors [][]int
	resilience   int
}

var _ core.System[config] = (*system)(nil)

// wakePayload is the self-addressed message whose delivery constitutes a
// process's first step (emitting its InitialSends). Crashing a process
// before its wake-up suppresses those sends entirely — without this, the
// adversary could never prevent a process's first broadcast, and the
// crash-resilience analysis would be vacuous.
const wakePayload = "\x00wake"

func (s *system) initialFor(inputs []int) config {
	n := s.p.NumProcs()
	states := make([]string, n)
	flight := make([]envelope, 0, n)
	for p := 0; p < n; p++ {
		states[p] = s.p.Init(p, inputs[p])
		flight = append(flight, envelope{from: p, to: p, payload: wakePayload})
	}
	return encodeConfig(0, states, flight)
}

// Init implements core.System.
func (s *system) Init() []config {
	out := make([]config, 0, len(s.inputVectors))
	for _, in := range s.inputVectors {
		out = append(out, s.initialFor(in))
	}
	return out
}

// Steps implements core.System.
func (s *system) Steps(c config) []core.Step[config] {
	n := s.p.NumProcs()
	crashed, states, flight := decodeConfig(c)
	steps := make([]core.Step[config], 0, len(flight)+n)
	seen := map[string]bool{}
	for i, env := range flight {
		if crashed&(1<<uint(env.to)) != 0 {
			continue // receiver is dead; the message is never delivered
		}
		key := env.String()
		if seen[key] {
			continue // identical envelopes lead to identical successors
		}
		seen[key] = true
		var newState string
		var sends []Send
		if env.payload == wakePayload && env.from == env.to {
			newState = states[env.to]
			sends = s.p.InitialSends(env.to, newState)
		} else {
			newState, sends = s.p.Step(env.to, states[env.to], env.from, env.payload)
		}
		newStates := make([]string, n)
		copy(newStates, states)
		newStates[env.to] = newState
		newFlight := make([]envelope, 0, len(flight)+len(sends)-1)
		newFlight = append(newFlight, flight[:i]...)
		newFlight = append(newFlight, flight[i+1:]...)
		for _, snd := range sends {
			newFlight = append(newFlight, envelope{from: env.to, to: snd.To, payload: snd.Payload})
		}
		steps = append(steps, core.Step[config]{
			To:    encodeConfig(crashed, newStates, newFlight),
			Label: "deliver " + key,
			Actor: env.to,
		})
	}
	if countBits(crashed) < s.resilience {
		for p := 0; p < n; p++ {
			if crashed&(1<<uint(p)) != 0 {
				continue
			}
			steps = append(steps, core.Step[config]{
				To:    encodeConfig(crashed|1<<uint(p), states, flight),
				Label: "crash p" + strconv.Itoa(p),
				Actor: core.EnvironmentActor,
			})
		}
	}
	return steps
}

func countBits(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// Report is the outcome of Analyze.
type Report struct {
	// Protocol names the analyzed protocol.
	Protocol string
	// States and Edges size the explored configuration graph.
	States, Edges int
	// HasBivalentInitial reports whether some initial configuration is
	// bivalent (the first FLP lemma predicts one for every correct
	// 1-resilient protocol).
	HasBivalentInitial bool
	// BivalentConfigs counts bivalent configurations.
	BivalentConfigs int
	// AgreementViolated reports a reachable configuration in which two
	// processes decided differently, with a witness execution.
	AgreementViolated bool
	AgreementWitness  core.Trace
	// ValidityViolated reports a decided value that is not any input.
	ValidityViolated bool
	// NondecidingLasso is a weakly-fair infinite execution confined to
	// undecided configurations, if one exists.
	NondecidingLasso *core.Lasso
	// UndecidedDeadlock is a reachable terminal undecided configuration
	// (typically: everyone waits for a crashed process), if one exists.
	UndecidedDeadlock core.Trace
	HasDeadlock       bool
	// DeciderFound reports a Herlihy-style decider configuration:
	// bivalent, with every successor univalent.
	DeciderFound bool
	// Lively is true when no liveness or safety horn was found — which
	// the FLP theorem says cannot happen for a nontrivial 1-resilient
	// protocol.
	Lively bool
	// Lossy reports that the exploration ran on a lossy visited-set backend
	// (bitstate): the configuration graph may undercount the reachable set,
	// so every universally-quantified verdict above is only "no violation
	// found among the states kept" — never evidence that the protocol is
	// lively. DescribeHorn renders the downgrade.
	Lossy bool
}

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// InputVectors are the initial input assignments to explore together
	// (default: all binary vectors).
	InputVectors [][]int
	// Resilience is the number of crash events the adversary may inject
	// (default 1, per the FLP setting). Set to 0 to analyze the
	// crash-free graph.
	Resilience *int
	// MaxStates bounds exploration.
	MaxStates int
	// Parallelism is the exploration worker count (0 = GOMAXPROCS,
	// 1 = sequential); the configuration graph is identical either way.
	Parallelism int
	// Stats, when non-nil, receives the telemetry of the main
	// configuration-graph exploration (the uniform-vector validity
	// explorations are not included).
	Stats *engine.Stats
	// Canon, when non-nil, quotients every exploration (main and validity)
	// by the given configuration symmetry — see PermutationCanon. Only
	// process-relabeling symmetries are admissible here: the analysis
	// evaluates per-value predicates (validity pins the decided value), so
	// a value-relabeling canon would corrupt the verdicts even where it is
	// sound. Counts in the Report (States, Edges, BivalentConfigs) then
	// describe the quotient graph; the boolean verdicts are unchanged.
	Canon func(string) string
	// VerifyCanon, when > 0, samples raw configurations (every one whose
	// fingerprint is ≡ 0 mod VerifyCanon; 1 = all) and fails the analysis
	// with engine.ErrCanonUnsound if Canon is not idempotent and
	// step-commuting on them.
	VerifyCanon int
	// CanonBytes, when non-nil, is the byte-level twin of Canon for the
	// engine's zero-allocation expansion path — see PermutationCanonBytes
	// and engine.Options.CanonBytes. Requires Canon; VerifyCanon
	// additionally cross-checks the two on sampled configurations.
	CanonBytes any
	// VerifyAliasing, when > 0, enables the engine's buffer-aliasing
	// falsifier on every exploration (every configuration whose
	// fingerprint is ≡ 0 mod VerifyAliasing is re-expanded over poisoned
	// scratch; 1 = all) and fails the analysis with
	// engine.ErrAliasUnsound on divergence — see engine.Options.
	VerifyAliasing int
	// Independent, when non-nil, applies ample-set partial-order reduction
	// to every exploration (main and validity) under the given independence
	// relation — see DeliveryIndependence. The reduced graph preserves the
	// boolean verdicts (bivalence, agreement, validity, deadlock, fair
	// lasso) but not per-interleaving structure: States, Edges and
	// BivalentConfigs then describe the reduced graph, and DeciderFound — a
	// property of the full branching — is not meaningful under reduction.
	Independent func(string, engine.Action[string], engine.Action[string]) bool
	// Visible marks the deliveries whose ordering the analyzer's predicates
	// observe, keeping them out of proper ample sets — see
	// DecisionVisibility. Only meaningful together with Independent.
	Visible func(string, engine.Action[string]) bool
	// VerifyPOR, when > 0, samples expanded configurations (every one whose
	// fingerprint is ≡ 0 mod VerifyPOR; 1 = all) and fails the analysis
	// with engine.ErrPORUnsound if a declared-independent pair of events
	// does not commute there.
	VerifyPOR int
	// Sink, when non-nil, streams the telemetry of the main
	// configuration-graph exploration (like Stats, the uniform-vector
	// validity explorations are excluded, so a trace carries exactly one
	// run whose final snapshot equals the exploration's Stats).
	Sink obs.Sink
	// SnapshotEvery is the timer-driven snapshot period (only meaningful
	// with Sink; zero = engine.DefaultSnapshotEvery, negative = barrier
	// events only).
	SnapshotEvery time.Duration
	// Store selects the visited-set backend for every exploration (main and
	// validity). A lossy backend sets Report.Lossy and downgrades the
	// verdicts — see Report.Lossy. See store.Config.
	Store store.Config
	// Sched selects the exploration scheduler for every exploration
	// ("barrier" or "steal"; "" = barrier). A performance knob only: the
	// Report is identical either way. See core.ExploreOptions.Sched.
	Sched string
}

// NewSystem exposes a protocol's configuration graph (canonical encoded
// configurations, crash events included when resilience > 0) as a
// core.System, for direct exploration by the determinism tests and the
// exploration benchmarks. A nil inputVectors means all binary input
// assignments.
func NewSystem(p Protocol, inputVectors [][]int, resilience int) core.System[string] {
	if len(inputVectors) == 0 {
		inputVectors = allBinaryVectors(p.NumProcs())
	}
	return &system{p: p, inputVectors: inputVectors, resilience: resilience}
}

// Analyze explores the protocol's configuration graph and runs the full
// bivalence analysis.
func Analyze(p Protocol, opts AnalyzeOptions) (Report, error) {
	n := p.NumProcs()
	vectors := opts.InputVectors
	if len(vectors) == 0 {
		vectors = allBinaryVectors(n)
	}
	resilience := 1
	if opts.Resilience != nil {
		resilience = *opts.Resilience
	}
	sys := &system{p: p, inputVectors: vectors, resilience: resilience}
	eopts := core.ExploreOptions{
		MaxStates: opts.MaxStates, Parallelism: opts.Parallelism, Stats: opts.Stats,
		Sink: opts.Sink, SnapshotEvery: opts.SnapshotEvery, Store: opts.Store,
		VerifyAliasing: opts.VerifyAliasing, Sched: opts.Sched,
	}
	if opts.Canon != nil {
		eopts.Canon = opts.Canon
		eopts.VerifyCanon = opts.VerifyCanon
		eopts.CanonBytes = opts.CanonBytes
	}
	if opts.Independent != nil {
		eopts.Independent = opts.Independent
		eopts.Visible = opts.Visible
		eopts.VerifyPOR = opts.VerifyPOR
	}
	g, err := core.Explore[config](sys, eopts)
	if err != nil {
		return Report{}, fmt.Errorf("flp: exploring %s: %w", p.Name(), err)
	}
	rep := Report{Protocol: p.Name(), States: g.Len(), Edges: g.NumEdges(), Lossy: opts.Store.Lossy()}

	decideConfig := func(c config) (int, bool) {
		_, states, _ := decodeConfig(c)
		for q := 0; q < n; q++ {
			if v, ok := p.Decide(q, states[q]); ok {
				return v, true
			}
		}
		return 0, false
	}
	val, err := g.Valence(decideConfig)
	if err != nil {
		return rep, fmt.Errorf("flp: valence of %s: %w", p.Name(), err)
	}
	_, rep.HasBivalentInitial = g.BivalentInitial(val)
	for i := 0; i < g.Len(); i++ {
		if val.IsBivalent(i) {
			rep.BivalentConfigs++
		}
	}
	_, rep.DeciderFound = g.Decider(val)

	// Agreement: no reachable configuration with contradictory decisions.
	if _, tr, ok := g.CheckInvariant(func(c config) bool {
		_, states, _ := decodeConfig(c)
		seen := -1
		for q := 0; q < n; q++ {
			if v, ok := p.Decide(q, states[q]); ok {
				if seen >= 0 && v != seen {
					return false
				}
				seen = v
			}
		}
		return true
	}); !ok {
		rep.AgreementViolated = true
		rep.AgreementWitness = tr
	}

	// Validity (binary inputs): a decided value must be 0 or 1 here, and
	// under a uniform input vector it must be that value. Checked by
	// exploring the uniform vectors separately.
	for _, v := range []int{0, 1} {
		uniform := make([]int, n)
		for i := range uniform {
			uniform[i] = v
		}
		guOpts := core.ExploreOptions{
			MaxStates: opts.MaxStates, Parallelism: opts.Parallelism, Store: opts.Store,
			VerifyAliasing: opts.VerifyAliasing, Sched: opts.Sched,
		}
		if opts.Canon != nil {
			// Uniform-vector initials are fixed points of any process
			// relabeling, so the quotient is sound here too.
			guOpts.Canon = opts.Canon
			guOpts.VerifyCanon = opts.VerifyCanon
			guOpts.CanonBytes = opts.CanonBytes
		}
		if opts.Independent != nil {
			guOpts.Independent = opts.Independent
			guOpts.Visible = opts.Visible
			guOpts.VerifyPOR = opts.VerifyPOR
		}
		gu, err := core.Explore[config](&system{p: p, inputVectors: [][]int{uniform}, resilience: resilience},
			guOpts)
		if err != nil {
			return rep, fmt.Errorf("flp: validity exploration of %s: %w", p.Name(), err)
		}
		if _, _, ok := gu.CheckInvariant(func(c config) bool {
			d, decided := decideConfig(c)
			return !decided || d == v
		}); !ok {
			rep.ValidityViolated = true
		}
	}

	// Liveness horns: a fair undecided lasso, or an undecided deadlock.
	undecided := func(i int) bool {
		_, decided := decideConfig(g.State(i))
		return !decided
	}
	if lasso, ok := g.FairLassoWithin(undecided, core.WeakFairness, n); ok {
		rep.NondecidingLasso = &lasso
	}
	for _, i := range g.Terminals() {
		if undecided(i) {
			rep.HasDeadlock = true
			rep.UndecidedDeadlock = g.PathTo(i)
			break
		}
	}
	rep.Lively = !rep.AgreementViolated && !rep.ValidityViolated &&
		rep.NondecidingLasso == nil && !rep.HasDeadlock
	return rep, nil
}

func allBinaryVectors(n int) [][]int {
	out := make([][]int, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		v := make([]int, n)
		for i := 0; i < n; i++ {
			v[i] = (mask >> uint(i)) & 1
		}
		out = append(out, v)
	}
	return out
}
