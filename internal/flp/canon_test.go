package flp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestPermutationCanonSoundOnWaitQuorum(t *testing.T) {
	p := NewWaitQuorum(3)
	canon, err := PermutationCanon(p)
	if err != nil {
		t.Fatalf("PermutationCanon: %v", err)
	}
	full, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	var st engine.Stats
	quo, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{
		Canon: canon, VerifyCanon: 1, Stats: &st,
	})
	if err != nil {
		t.Fatalf("quotient explore: %v", err)
	}
	if quo.Len() >= full.Len() {
		t.Fatalf("quotient %d states, full %d: no reduction", quo.Len(), full.Len())
	}
	if quo.Len()*6 < full.Len() { // |S_3| = 6 bounds the reduction
		t.Fatalf("quotient %d × 6 < full %d: impossible reduction", quo.Len(), full.Len())
	}
	for i := 0; i < quo.Len(); i++ {
		if s := quo.State(i); canon(s) != s {
			t.Fatalf("interned non-representative %q", s)
		}
	}
	// Orbit completeness — the substance of soundness: every reachable
	// configuration's representative is in the quotient, and nothing else.
	seen := make(map[string]bool, full.Len())
	for i := 0; i < full.Len(); i++ {
		rep := canon(full.State(i))
		seen[rep] = true
		if _, ok := quo.StateID(rep); !ok {
			t.Fatalf("quotient misses reachable orbit of %q", full.State(i))
		}
	}
	if len(seen) != quo.Len() {
		t.Fatalf("full graph spans %d orbits but quotient has %d states", len(seen), quo.Len())
	}
}

func TestAnalyzeQuotientVerdictsMatch(t *testing.T) {
	cases := []Protocol{NewWaitAll(3), NewWaitQuorum(3)}
	for _, p := range cases {
		t.Run(p.Name(), func(t *testing.T) {
			canon, err := PermutationCanon(p)
			if err != nil {
				t.Fatalf("PermutationCanon: %v", err)
			}
			full, err := Analyze(p, AnalyzeOptions{})
			if err != nil {
				t.Fatalf("full Analyze: %v", err)
			}
			quo, err := Analyze(p, AnalyzeOptions{Canon: canon, VerifyCanon: 1})
			if err != nil {
				t.Fatalf("quotient Analyze: %v", err)
			}
			if quo.States >= full.States {
				t.Fatalf("quotient explored %d states, full %d: no reduction", quo.States, full.States)
			}
			type verdicts struct {
				bivalentInitial, agreement, validity, deadlock, lasso, decider, lively bool
			}
			vOf := func(r Report) verdicts {
				return verdicts{
					bivalentInitial: r.HasBivalentInitial,
					agreement:       r.AgreementViolated,
					validity:        r.ValidityViolated,
					deadlock:        r.HasDeadlock,
					lasso:           r.NondecidingLasso != nil,
					decider:         r.DeciderFound,
					lively:          r.Lively,
				}
			}
			if vOf(full) != vOf(quo) {
				t.Fatalf("verdicts differ:\nfull     %+v\nquotient %+v", vOf(full), vOf(quo))
			}
		})
	}
}

// TestValueSwapCanonUnsoundOnWaitQuorum pins down the asymmetry the wait
// protocols hide: they decide the minimum value seen, and min does not
// commute with relabeling 0 <-> 1. The failure mode is instructive — the
// violating orbit members (a process that decided the swapped value from
// swapped evidence) are protocol-unreachable, so the sampled VerifyCanon
// check cannot observe them and the exploration "succeeds"; the quotient is
// nonetheless wrong, which this test demonstrates by exhibiting a reachable
// orbit it lost. See ValueSwapCanon's doc comment.
func TestValueSwapCanonUnsoundOnWaitQuorum(t *testing.T) {
	p := NewWaitQuorum(3)
	canon, err := ValueSwapCanon(p)
	if err != nil {
		t.Fatalf("ValueSwapCanon: %v", err)
	}
	full, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	quo, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{
		Canon: canon, VerifyCanon: 1,
	})
	if err != nil {
		// The sampled check catching it outright would be fine too — but
		// see above for why it structurally cannot here.
		t.Fatalf("quotient explore: %v", err)
	}
	lost := 0
	for i := 0; i < full.Len(); i++ {
		if _, ok := quo.StateID(canon(full.State(i))); !ok {
			lost++
		}
	}
	if lost == 0 {
		t.Fatalf("value-swap quotient covered every reachable orbit; expected it to lose some (min-decide is not value-equivariant)")
	}
}

// TestValueSwapCanonSoundOnAdoptSwap: deciding on a match is equivariant
// under value relabeling, so AdoptSwap's value quotient passes the same
// check the wait protocol fails.
func TestValueSwapCanonSoundOnAdoptSwap(t *testing.T) {
	p := NewAdoptSwap(3)
	canon, err := ValueSwapCanon(p)
	if err != nil {
		t.Fatalf("ValueSwapCanon: %v", err)
	}
	full, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	quo, err := core.Explore[string](NewSystem(p, nil, 1), core.ExploreOptions{
		Canon: canon, VerifyCanon: 1,
	})
	if err != nil {
		t.Fatalf("quotient explore: %v", err)
	}
	if quo.Len() >= full.Len() || quo.Len()*2 < full.Len() {
		t.Fatalf("quotient %d states vs full %d: outside (full/2, full)", quo.Len(), full.Len())
	}
	// Unlike the wait protocol, the value-blind quotient loses no orbits.
	for i := 0; i < full.Len(); i++ {
		if _, ok := quo.StateID(canon(full.State(i))); !ok {
			t.Fatalf("quotient misses reachable orbit of %q", full.State(i))
		}
	}
}

func TestCanonConstructorsRejectUnsupportedProtocols(t *testing.T) {
	if _, err := PermutationCanon(NewAdoptSwap(3)); err == nil {
		t.Fatalf("PermutationCanon accepted the ring protocol (only rotations are symmetries)")
	}
}
