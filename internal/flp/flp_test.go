package flp

import (
	"testing"
)

func intPtr(v int) *int { return &v }

// TestWaitAllDeadlocksUnderOneCrash: the wait-for-everyone protocol is
// safe but not 1-resilient — a single crash leaves an undecided deadlock.
func TestWaitAllDeadlocksUnderOneCrash(t *testing.T) {
	rep, err := Analyze(NewWaitAll(3), AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.AgreementViolated {
		t.Errorf("wait-all should never disagree; witness:\n%s", rep.AgreementWitness)
	}
	if rep.ValidityViolated {
		t.Error("wait-all should be valid")
	}
	if !rep.HasDeadlock {
		t.Error("wait-all should deadlock undecided after a crash")
	}
	if rep.Lively {
		t.Error("FLP horn must be found")
	}
}

// TestWaitAllIsLivelyWithoutCrashes: with resilience 0 the same protocol
// decides in every fair execution — showing the crash events carry the
// theorem.
func TestWaitAllIsLivelyWithoutCrashes(t *testing.T) {
	rep, err := Analyze(NewWaitAll(3), AnalyzeOptions{Resilience: intPtr(0)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.Lively {
		t.Errorf("wait-all without crashes should be lively: %s", DescribeHorn(rep))
	}
}

// TestWaitQuorumDisagrees: waiting for only n-1 values buys crash
// tolerance at the price of a reachable disagreement.
func TestWaitQuorumDisagrees(t *testing.T) {
	rep, err := Analyze(NewWaitQuorum(3), AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.AgreementViolated {
		t.Fatal("wait-quorum should have a reachable disagreement")
	}
	if len(rep.AgreementWitness) == 0 {
		t.Fatal("expected an agreement-violation witness execution")
	}
}

// TestAdoptSwapHasNondecidingExecution: the adopt-and-rebroadcast protocol
// is safe but admits the FLP forever-bivalent run even with no crashes.
func TestAdoptSwapHasNondecidingExecution(t *testing.T) {
	rep, err := Analyze(NewAdoptSwap(2), AnalyzeOptions{Resilience: intPtr(0)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.AgreementViolated {
		t.Errorf("adopt-swap should be safe; witness:\n%s", rep.AgreementWitness)
	}
	if rep.NondecidingLasso == nil {
		t.Fatal("adopt-swap should admit a fair non-deciding execution")
	}
	if len(rep.NondecidingLasso.Cycle) == 0 {
		t.Fatal("expected a nonempty non-deciding cycle")
	}
	if !rep.HasBivalentInitial {
		t.Error("the (0,1) initial configuration should be bivalent")
	}
	if rep.BivalentConfigs == 0 {
		t.Error("expected bivalent configurations")
	}
}

// TestEveryProtocolFallsOnAHorn is the theorem-shaped summary: none of the
// protocol attempts is simultaneously safe and live with one crash.
func TestEveryProtocolFallsOnAHorn(t *testing.T) {
	protos := []Protocol{NewWaitAll(3), NewWaitQuorum(3), NewAdoptSwap(2), NewAdoptSwap(3)}
	for _, p := range protos {
		rep, err := Analyze(p, AnalyzeOptions{})
		if err != nil {
			t.Fatalf("Analyze(%s): %v", p.Name(), err)
		}
		if rep.Lively {
			t.Errorf("%s: analyzer found no FLP horn — impossible for a 1-resilient protocol", p.Name())
		}
	}
}

// TestValidityViolationDetected: a protocol that decides a constant
// regardless of inputs trips the validity check.
type constProto struct{ n int }

func (c constProto) Name() string                    { return "const-0" }
func (c constProto) NumProcs() int                   { return c.n }
func (c constProto) Init(int, int) string            { return "s" }
func (c constProto) InitialSends(int, string) []Send { return nil }
func (c constProto) Step(_ int, s string, _ int, _ string) (string, []Send) {
	return s, nil
}
func (c constProto) Decide(int, string) (int, bool) { return 0, true }

func TestValidityViolationDetected(t *testing.T) {
	rep, err := Analyze(constProto{n: 2}, AnalyzeOptions{Resilience: intPtr(0)})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.ValidityViolated {
		t.Fatal("constant-0 protocol should violate validity on all-ones inputs")
	}
	if rep.HasBivalentInitial {
		t.Error("a constant protocol has no bivalent configuration")
	}
}

func TestConfigCodecRoundTrip(t *testing.T) {
	states := []string{"a", "b:x", "c"}
	flight := []envelope{{from: 0, to: 2, payload: "mv"}, {from: 1, to: 0, payload: ""}}
	c := encodeConfig(5, states, flight)
	crashed, gotStates, gotFlight := decodeConfig(c)
	if crashed != 5 {
		t.Fatalf("crashed = %d, want 5", crashed)
	}
	for i := range states {
		if gotStates[i] != states[i] {
			t.Fatalf("state %d mismatch: %q", i, gotStates[i])
		}
	}
	if len(gotFlight) != 2 {
		t.Fatalf("flight length = %d", len(gotFlight))
	}
	if gotFlight[0].payload != "mv" && gotFlight[1].payload != "mv" {
		t.Fatal("payload lost in round trip")
	}
}

func TestDescribeHorn(t *testing.T) {
	rep := Report{Protocol: "x", AgreementViolated: true}
	if got := DescribeHorn(rep); got != "x: agreement violation" {
		t.Fatalf("DescribeHorn = %q", got)
	}
	empty := Report{Protocol: "y"}
	if got := DescribeHorn(empty); got == "" {
		t.Fatal("empty horn description")
	}
}

func TestCountBits(t *testing.T) {
	if countBits(0) != 0 || countBits(5) != 2 || countBits(7) != 3 {
		t.Fatal("countBits broken")
	}
}
