// Package spec holds problem statements: the "careful description of the
// correctness conditions" that §2.1 and §3.3 of the paper identify as the
// hard, load-bearing half of every impossibility proof. Problem statements
// here are small, checkable predicates over decision vectors and region
// assignments, so that checkers can "invoke the problem statement
// repeatedly to justify steps of a construction".
package spec

import (
	"errors"
	"fmt"
)

// Region is the classic four-region decomposition of a resource-allocation
// participant (§2.1): remainder, trying, critical, exit.
type Region int

const (
	// Remainder: the process is outside the protocol; the *environment*
	// decides if and when it requests the resource, so fairness never
	// forces a remainder step.
	Remainder Region = iota + 1
	// Trying: the process is executing its entry protocol and is required
	// to keep taking steps.
	Trying
	// Critical: the process holds the resource. Progress conditions are
	// stated under the assumption that critical sections terminate.
	Critical
	// Exit: the process is executing its exit protocol.
	Exit
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Remainder:
		return "remainder"
	case Trying:
		return "trying"
	case Critical:
		return "critical"
	case Exit:
		return "exit"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Undecided marks a process that has not decided in a decision vector.
const Undecided = -1

// ErrAgreement, ErrValidity and ErrTermination are the three failure modes
// of a consensus-style decision problem.
var (
	ErrAgreement   = errors.New("spec: agreement violated")
	ErrValidity    = errors.New("spec: validity violated")
	ErrTermination = errors.New("spec: termination violated")
)

// CheckAgreement verifies that all decided entries of decisions are equal.
// faulty[i] marks processes whose decisions are exempt (Byzantine
// processes may output anything).
func CheckAgreement(decisions []int, faulty []bool) error {
	seen := Undecided
	for i, d := range decisions {
		if d == Undecided || (faulty != nil && faulty[i]) {
			continue
		}
		if seen == Undecided {
			seen = d
			continue
		}
		if d != seen {
			return fmt.Errorf("%w: process decided %d, another decided %d", ErrAgreement, d, seen)
		}
	}
	return nil
}

// CheckStrongValidity verifies the classic validity condition: if every
// nonfaulty process starts with the same input v, every nonfaulty decision
// must be v.
func CheckStrongValidity(inputs, decisions []int, faulty []bool) error {
	common := Undecided
	uniform := true
	for i, in := range inputs {
		if faulty != nil && faulty[i] {
			continue
		}
		if common == Undecided {
			common = in
		} else if in != common {
			uniform = false
		}
	}
	if !uniform || common == Undecided {
		return nil
	}
	for i, d := range decisions {
		if d == Undecided || (faulty != nil && faulty[i]) {
			continue
		}
		if d != common {
			return fmt.Errorf("%w: uniform input %d but process %d decided %d", ErrValidity, common, i, d)
		}
	}
	return nil
}

// CheckTermination verifies that every nonfaulty process decided.
func CheckTermination(decisions []int, faulty []bool) error {
	for i, d := range decisions {
		if faulty != nil && faulty[i] {
			continue
		}
		if d == Undecided {
			return fmt.Errorf("%w: process %d never decided", ErrTermination, i)
		}
	}
	return nil
}

// CheckConsensus runs the three consensus conditions together.
func CheckConsensus(inputs, decisions []int, faulty []bool) error {
	if err := CheckTermination(decisions, faulty); err != nil {
		return err
	}
	if err := CheckAgreement(decisions, faulty); err != nil {
		return err
	}
	return CheckStrongValidity(inputs, decisions, faulty)
}

// CommitAbort values for the commit problem (§2.2.5).
const (
	Abort  = 0
	Commit = 1
)

// CheckCommitRule verifies the commit rule: if any input is Abort the
// decision must be Abort; if all inputs are Commit and the execution was
// failure-free, the decision must be Commit.
func CheckCommitRule(inputs, decisions []int, anyFailure bool) error {
	anyAbort := false
	for _, in := range inputs {
		if in == Abort {
			anyAbort = true
			break
		}
	}
	for i, d := range decisions {
		if d == Undecided {
			continue
		}
		if anyAbort && d != Abort {
			return fmt.Errorf("%w: input vector contains abort but process %d committed", ErrValidity, i)
		}
		if !anyAbort && !anyFailure && d != Commit {
			return fmt.Errorf("%w: all-commit failure-free execution but process %d aborted", ErrValidity, i)
		}
	}
	return nil
}

// CheckCrashConsensus verifies the consensus conditions appropriate to the
// crash-fault model: termination and agreement among nonfaulty processes,
// and validity counting every process's input — a crashed process is
// honest, so its input legitimately enters the decision (unlike the
// Byzantine conditions, where faulty inputs are excluded).
func CheckCrashConsensus(inputs, decisions []int, faulty []bool) error {
	if err := CheckTermination(decisions, faulty); err != nil {
		return err
	}
	if err := CheckAgreement(decisions, faulty); err != nil {
		return err
	}
	allowed := make(map[int]bool, len(inputs))
	common := Undecided
	uniform := true
	for i, in := range inputs {
		allowed[in] = true
		if i == 0 {
			common = in
		} else if in != common {
			uniform = false
		}
	}
	for i, d := range decisions {
		if d == Undecided || (faulty != nil && faulty[i]) {
			continue
		}
		if !allowed[d] {
			return fmt.Errorf("%w: process %d decided %d, not any process's input", ErrValidity, i, d)
		}
		if uniform && d != common {
			return fmt.Errorf("%w: uniform input %d but process %d decided %d", ErrValidity, common, i, d)
		}
	}
	return nil
}
