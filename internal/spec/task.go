package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Task is a decision task in the sense of Moran–Wolfstahl and
// Biran–Moran–Zaks (§2.2.4): a set of allowable input vectors and, per
// input vector, the set of allowable decision vectors.
type Task struct {
	// Name identifies the task in reports.
	Name string
	// Inputs is the set of allowable input vectors (all the same length).
	Inputs [][]int
	// Outputs returns the allowable decision vectors for an input vector.
	Outputs func(in []int) [][]int
}

// NumProcs returns the number of processes participating in the task.
func (t Task) NumProcs() int {
	if len(t.Inputs) == 0 {
		return 0
	}
	return len(t.Inputs[0])
}

// VectorGraph is the graph whose vertices are vectors and whose edges join
// vectors differing in exactly one component — the "input graph" and
// "decision graph" of [85]/[20].
type VectorGraph struct {
	vecs  [][]int
	index map[string]int
	adj   [][]int
}

// vecKey canonically encodes a vector.
func vecKey(v []int) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// NewVectorGraph builds the differ-in-one-component graph over vecs.
// Duplicate vectors are merged.
func NewVectorGraph(vecs [][]int) *VectorGraph {
	g := &VectorGraph{index: make(map[string]int, len(vecs))}
	for _, v := range vecs {
		k := vecKey(v)
		if _, ok := g.index[k]; ok {
			continue
		}
		cp := make([]int, len(v))
		copy(cp, v)
		g.index[k] = len(g.vecs)
		g.vecs = append(g.vecs, cp)
	}
	g.adj = make([][]int, len(g.vecs))
	for i := 0; i < len(g.vecs); i++ {
		for j := i + 1; j < len(g.vecs); j++ {
			if hamming(g.vecs[i], g.vecs[j]) == 1 {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
	return g
}

func hamming(a, b []int) int {
	if len(a) != len(b) {
		return -1
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Len returns the number of distinct vectors in the graph.
func (g *VectorGraph) Len() int { return len(g.vecs) }

// Components returns the number of connected components.
func (g *VectorGraph) Components() int {
	seen := make([]bool, len(g.vecs))
	comps := 0
	for i := range g.vecs {
		if seen[i] {
			continue
		}
		comps++
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return comps
}

// Connected reports whether the graph is connected (vacuously true when
// empty).
func (g *VectorGraph) Connected() bool { return g.Components() <= 1 }

// InputGraph builds the task's input graph.
func (t Task) InputGraph() *VectorGraph { return NewVectorGraph(t.Inputs) }

// DecisionGraph builds the task's decision graph: all allowable decision
// vectors over all allowable inputs.
func (t Task) DecisionGraph() *VectorGraph {
	var all [][]int
	for _, in := range t.Inputs {
		all = append(all, t.Outputs(in)...)
	}
	return NewVectorGraph(all)
}

// MoranWolfstahlImpossible applies the characterization of [85]: a task
// with a connected input graph and a disconnected decision graph cannot be
// solved in an asynchronous system with one faulty process. It returns
// true when the criterion applies (so the task is provably unsolvable) and
// a human-readable justification.
func (t Task) MoranWolfstahlImpossible() (bool, string) {
	in := t.InputGraph()
	out := t.DecisionGraph()
	if in.Connected() && !out.Connected() {
		return true, fmt.Sprintf(
			"task %q: input graph connected (%d vectors), decision graph has %d components — unsolvable with 1 faulty process (Moran–Wolfstahl)",
			t.Name, in.Len(), out.Components())
	}
	return false, fmt.Sprintf(
		"task %q: criterion not applicable (input connected=%v, decision components=%d)",
		t.Name, in.Connected(), out.Components())
}

// BinaryConsensusTask builds the n-process binary consensus task: inputs
// are all 0/1 vectors; allowable decisions are the constant vectors whose
// value appears in the input.
func BinaryConsensusTask(n int) Task {
	inputs := allBinaryVectors(n)
	return Task{
		Name:   fmt.Sprintf("binary-consensus-%d", n),
		Inputs: inputs,
		Outputs: func(in []int) [][]int {
			var out [][]int
			for _, v := range []int{0, 1} {
				if containsValue(in, v) {
					out = append(out, constantVector(len(in), v))
				}
			}
			return out
		},
	}
}

func allBinaryVectors(n int) [][]int {
	out := make([][]int, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		v := make([]int, n)
		for i := 0; i < n; i++ {
			v[i] = (m >> uint(i)) & 1
		}
		out = append(out, v)
	}
	return out
}

func containsValue(v []int, x int) bool {
	for _, y := range v {
		if y == x {
			return true
		}
	}
	return false
}

func constantVector(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
