package spec

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		Remainder: "remainder",
		Trying:    "trying",
		Critical:  "critical",
		Exit:      "exit",
		Region(9): "Region(9)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestCheckAgreement(t *testing.T) {
	if err := CheckAgreement([]int{1, 1, Undecided, 1}, nil); err != nil {
		t.Errorf("uniform decisions: %v", err)
	}
	err := CheckAgreement([]int{0, 1}, nil)
	if !errors.Is(err, ErrAgreement) {
		t.Errorf("err = %v, want ErrAgreement", err)
	}
	// A faulty process's decision is exempt.
	if err := CheckAgreement([]int{0, 1}, []bool{false, true}); err != nil {
		t.Errorf("faulty exemption: %v", err)
	}
}

func TestCheckStrongValidity(t *testing.T) {
	if err := CheckStrongValidity([]int{1, 1, 1}, []int{1, 1, 1}, nil); err != nil {
		t.Errorf("valid uniform: %v", err)
	}
	err := CheckStrongValidity([]int{1, 1, 1}, []int{0, 0, 0}, nil)
	if !errors.Is(err, ErrValidity) {
		t.Errorf("err = %v, want ErrValidity", err)
	}
	// Mixed inputs impose no constraint.
	if err := CheckStrongValidity([]int{0, 1, 1}, []int{0, 0, 0}, nil); err != nil {
		t.Errorf("mixed inputs: %v", err)
	}
	// Faulty process input excluded from uniformity computation.
	err = CheckStrongValidity([]int{0, 1, 1}, []int{0, 0, 0}, []bool{true, false, false})
	if !errors.Is(err, ErrValidity) {
		t.Errorf("err = %v, want ErrValidity (nonfaulty inputs uniform 1)", err)
	}
}

func TestCheckTermination(t *testing.T) {
	if err := CheckTermination([]int{0, 1}, nil); err != nil {
		t.Errorf("all decided: %v", err)
	}
	err := CheckTermination([]int{0, Undecided}, nil)
	if !errors.Is(err, ErrTermination) {
		t.Errorf("err = %v, want ErrTermination", err)
	}
	if err := CheckTermination([]int{0, Undecided}, []bool{false, true}); err != nil {
		t.Errorf("faulty exemption: %v", err)
	}
}

func TestCheckConsensus(t *testing.T) {
	if err := CheckConsensus([]int{0, 0}, []int{0, 0}, nil); err != nil {
		t.Errorf("valid run: %v", err)
	}
	if err := CheckConsensus([]int{0, 0}, []int{0, 1}, nil); err == nil {
		t.Error("disagreement should fail")
	}
	if err := CheckConsensus([]int{0, 0}, []int{Undecided, 0}, nil); err == nil {
		t.Error("nontermination should fail")
	}
}

func TestCheckCommitRule(t *testing.T) {
	// Any abort input forces abort.
	if err := CheckCommitRule([]int{Commit, Abort}, []int{Abort, Abort}, false); err != nil {
		t.Errorf("abort rule: %v", err)
	}
	if err := CheckCommitRule([]int{Commit, Abort}, []int{Commit, Commit}, false); err == nil {
		t.Error("commit despite abort input should fail")
	}
	// All-commit failure-free forces commit.
	if err := CheckCommitRule([]int{Commit, Commit}, []int{Abort, Abort}, false); err == nil {
		t.Error("abort in all-commit failure-free run should fail")
	}
	// With failures, abort is allowed.
	if err := CheckCommitRule([]int{Commit, Commit}, []int{Abort, Abort}, true); err != nil {
		t.Errorf("abort with failure: %v", err)
	}
}

func TestVectorGraphBasics(t *testing.T) {
	g := NewVectorGraph([][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if !g.Connected() {
		t.Fatal("hypercube should be connected")
	}
	// Two isolated constant vectors of length 2 differ in 2 places.
	g2 := NewVectorGraph([][]int{{0, 0}, {1, 1}})
	if g2.Connected() {
		t.Fatal("{00,11} should be disconnected")
	}
	if got := g2.Components(); got != 2 {
		t.Fatalf("Components = %d, want 2", got)
	}
}

func TestVectorGraphDeduplicates(t *testing.T) {
	g := NewVectorGraph([][]int{{1, 2}, {1, 2}, {1, 3}})
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after dedup", g.Len())
	}
}

func TestBinaryConsensusTaskMoranWolfstahl(t *testing.T) {
	for n := 2; n <= 4; n++ {
		task := BinaryConsensusTask(n)
		if got := task.NumProcs(); got != n {
			t.Fatalf("NumProcs = %d, want %d", got, n)
		}
		impossible, why := task.MoranWolfstahlImpossible()
		if !impossible {
			t.Fatalf("n=%d: consensus should satisfy the Moran–Wolfstahl criterion: %s", n, why)
		}
		if !strings.Contains(why, "unsolvable") {
			t.Fatalf("unexpected justification: %s", why)
		}
	}
}

func TestTrivialTaskNotFlagged(t *testing.T) {
	// "Decide your own input" has a connected decision graph: not flagged.
	n := 3
	task := Task{
		Name:    "identity",
		Inputs:  allBinaryVectors(n),
		Outputs: func(in []int) [][]int { return [][]int{in} },
	}
	impossible, _ := task.MoranWolfstahlImpossible()
	if impossible {
		t.Fatal("identity task should not be flagged impossible")
	}
}

func TestInputGraphConnectivityProperty(t *testing.T) {
	// Property: the full binary cube of any dimension is connected, and
	// removing the all-ones vector keeps it connected for n >= 2.
	prop := func(nRaw uint8) bool {
		n := int(nRaw%3) + 2 // 2..4
		vecs := allBinaryVectors(n)
		return NewVectorGraph(vecs).Connected()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAgreementProperty(t *testing.T) {
	// Property: constant decision vectors always satisfy agreement.
	prop := func(v uint8, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		dec := constantVector(n, int(v%7))
		return CheckAgreement(dec, nil) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHamming(t *testing.T) {
	if hamming([]int{1, 2, 3}, []int{1, 0, 3}) != 1 {
		t.Fatal("hamming distance should be 1")
	}
	if hamming([]int{1}, []int{1, 2}) != -1 {
		t.Fatal("length mismatch should return -1")
	}
}

func TestCheckCrashConsensus(t *testing.T) {
	// A crashed process's input may legitimately determine the decision.
	if err := CheckCrashConsensus([]int{1, 1, 0}, []int{0, 0, 0}, []bool{false, false, true}); err != nil {
		t.Errorf("crashed process's input should be a valid decision: %v", err)
	}
	// But a value that is nobody's input is invalid.
	if err := CheckCrashConsensus([]int{1, 1, 1}, []int{0, 0, 0}, nil); err == nil {
		t.Error("deciding a non-input value should fail")
	}
	// Disagreement among nonfaulty still fails.
	if err := CheckCrashConsensus([]int{1, 0}, []int{1, 0}, nil); err == nil {
		t.Error("disagreement should fail")
	}
}
