package scenario

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/rounds"
)

// TestSpliceCheckDefeatsEIGAtThreeProcesses is E05's negative half: EIG
// with n = 3, t = 1 must violate some scenario requirement, and the engine
// must reproduce the violation as a concrete 1-fault Byzantine execution.
func TestSpliceCheckDefeatsEIGAtThreeProcesses(t *testing.T) {
	e := &consensus.EIG{Procs: 3, MaxFaults: 1}
	v, err := SpliceCheck(e, 1, e.Rounds())
	if err != nil {
		t.Fatalf("SpliceCheck: %v", err)
	}
	if len(v.Violations) == 0 {
		t.Fatal("EIG at n=3t must violate a scenario requirement")
	}
	if !v.CounterexampleChecked {
		t.Fatalf("the replayed counterexample should violate consensus; verdict: %+v", v)
	}
	if len(v.RingDecisions) != 6 {
		t.Fatalf("expected 6 ring decisions, got %d", len(v.RingDecisions))
	}
}

// TestSpliceCheckDefeatsEIGAtSixProcesses extends the splice to t = 2
// (blocks of two processes).
func TestSpliceCheckDefeatsEIGAtSixProcesses(t *testing.T) {
	e := &consensus.EIG{Procs: 6, MaxFaults: 2}
	v, err := SpliceCheck(e, 2, e.Rounds())
	if err != nil {
		t.Fatalf("SpliceCheck: %v", err)
	}
	if len(v.Violations) == 0 {
		t.Fatal("EIG at n=3t (t=2) must violate a scenario requirement")
	}
	if !v.CounterexampleChecked {
		t.Fatalf("the replayed counterexample should violate consensus; verdict: %+v", v)
	}
}

func TestSpliceCheckRejectsWrongShape(t *testing.T) {
	e := &consensus.EIG{Procs: 4, MaxFaults: 1}
	if _, err := SpliceCheck(e, 1, 2); err == nil {
		t.Fatal("n != 3t should be rejected")
	}
}

// TestCutReplaySplitsFloodSetOnALine is the connectivity result's heart
// (E06): on the line A-b-C (connectivity 1), a Byzantine b fools A and C
// into mutually inconsistent legitimate-looking executions, for any
// protocol — here demonstrated against FloodSet.
func TestCutReplaySplitsFloodSetOnALine(t *testing.T) {
	line, err := rounds.NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	f := &consensus.FloodSet{Procs: 3, MaxFaults: 1}
	v, err := CutReplayCheck(f, line, []int{1}, f.Rounds())
	if err != nil {
		t.Fatalf("CutReplayCheck: %v", err)
	}
	if v.Violation == "" {
		t.Fatal("split brain must violate consensus")
	}
	if v.Decisions[0] == v.Decisions[2] {
		t.Fatalf("A and C should disagree; decisions: %v", v.Decisions)
	}
}

// TestCutReplayRequiresACut: the complete graph has no 1-vertex cut.
func TestCutReplayRequiresACut(t *testing.T) {
	f := &consensus.FloodSet{Procs: 3, MaxFaults: 1}
	if _, err := CutReplayCheck(f, rounds.CompleteGraph(3), []int{1}, f.Rounds()); err == nil {
		t.Fatal("non-disconnecting cut should be rejected")
	}
}

// TestConnectivityPredicate pairs the graph-theoretic connectivity
// calculator with the Dolev criterion: agreement is possible only when
// connectivity > 2t.
func TestConnectivityPredicate(t *testing.T) {
	line, _ := rounds.NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	ring, _ := rounds.NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cases := []struct {
		g        *rounds.Graph
		t        int
		possible bool
	}{
		{line, 1, false},                   // connectivity 1 <= 2
		{ring, 1, false},                   // connectivity 2 <= 2
		{rounds.CompleteGraph(4), 1, true}, // connectivity 3 > 2
		{rounds.CompleteGraph(4), 2, false},
	}
	for i, c := range cases {
		got := c.g.Connectivity() > 2*c.t
		if got != c.possible {
			t.Errorf("case %d: connectivity %d with t=%d: possible=%v, want %v",
				i, c.g.Connectivity(), c.t, got, c.possible)
		}
	}
}

func TestSplicedRingPartnerConsistency(t *testing.T) {
	// partner must be an involution across the splice: if u's q-partner
	// is v, then v's role(u)-partner is u.
	s := &splicedRing{n: 6, t: 2}
	for pos := 0; pos < 12; pos++ {
		for q := 0; q < 6; q++ {
			if s.block(q) == s.block(s.role(pos)) && q != s.role(pos) {
				// same-block peers: stay within the copy
				if s.copyOf(s.partner(pos, q)) != s.copyOf(pos) {
					t.Fatalf("same-block partner of %d for %d leaves the copy", pos, q)
				}
			}
			v := s.partner(pos, q)
			if s.role(v) != q {
				t.Fatalf("partner(%d,%d) has role %d", pos, q, s.role(v))
			}
			back := s.partner(v, s.role(pos))
			if back != pos && s.role(back) == s.role(pos) && s.block(s.role(pos)) != s.block(q) {
				t.Fatalf("partner not symmetric: partner(%d,%d)=%d but partner(%d,%d)=%d",
					pos, q, v, v, s.role(pos), back)
			}
		}
	}
}
