package scenario

import (
	"fmt"

	"repro/internal/rounds"
	"repro/internal/spec"
)

// This file mechanizes the low-connectivity impossibility (§2.2.1, Dolev
// [39]: Byzantine agreement needs network connectivity > 2t). The engine
// here demonstrates the heart of that proof for a cut of t vertices: the
// faulty cut processes run a split brain, replaying toward one side of the
// cut their behavior from the failure-free all-zeros execution and toward
// the other side their behavior from the all-ones execution. Each side's
// view is then identical to a legitimate execution, validity pins the two
// sides to different decisions, and agreement dies — for any protocol.

// CutVerdict reports a CutReplayCheck.
type CutVerdict struct {
	// SideA and SideB are the two components separated by the cut.
	SideA, SideB []int
	// Decisions are the decisions of the replayed execution.
	Decisions []int
	// Violation is the consensus condition that failed (always set:
	// the construction defeats every protocol).
	Violation string
}

// CutReplayCheck runs the split-brain construction for the given protocol
// on the given network, corrupting cutSet. The cut must disconnect the
// network. Returns the verdict with the violated condition.
func CutReplayCheck(base rounds.Protocol, net *rounds.Graph, cutSet []int, numRounds int) (CutVerdict, error) {
	n := base.NumProcs()
	comps := componentsWithout(net, n, cutSet)
	if len(comps) < 2 {
		return CutVerdict{}, fmt.Errorf("scenario: cut %v does not disconnect the network", cutSet)
	}
	sideA, sideB := comps[0], comps[1]

	// Failure-free reference executions.
	zeros := make([]int, n)
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	opts := rounds.RunOptions{Rounds: numRounds, Network: net, RecordViews: true}
	exec0, err := rounds.Run(base, zeros, rounds.NoFaults{}, opts)
	if err != nil {
		return CutVerdict{}, fmt.Errorf("scenario: reference all-zeros run: %w", err)
	}
	exec1, err := rounds.Run(base, ones, rounds.NoFaults{}, opts)
	if err != nil {
		return CutVerdict{}, fmt.Errorf("scenario: reference all-ones run: %w", err)
	}

	inA := make(map[int]bool, len(sideA))
	for _, p := range sideA {
		inA[p] = true
	}
	corrupt := map[int]bool{}
	for _, p := range cutSet {
		corrupt[p] = true
	}
	inputs := make([]int, n)
	for _, p := range sideB {
		inputs[p] = 1
	}
	for _, p := range cutSet {
		inputs[p] = 0
	}
	adv := &rounds.ByzantineStrategy{
		Corrupt: corrupt,
		Forge: func(r, from, to int, _ rounds.Message) rounds.Message {
			if inA[to] {
				return exec0.Views[to][(r-1)*n+from]
			}
			return exec1.Views[to][(r-1)*n+from]
		},
	}
	res, err := rounds.Run(base, inputs, adv, rounds.RunOptions{Rounds: numRounds, Network: net})
	if err != nil {
		return CutVerdict{}, fmt.Errorf("scenario: split-brain run: %w", err)
	}
	out := CutVerdict{SideA: sideA, SideB: sideB, Decisions: res.Decisions}
	if err := spec.CheckConsensus(inputs, res.Decisions, res.Faulty); err != nil {
		out.Violation = err.Error()
		return out, nil
	}
	return out, fmt.Errorf("scenario: split brain failed to violate consensus — protocol may be reading forbidden global state")
}

// componentsWithout returns the connected components of the network after
// removing the given vertices.
func componentsWithout(net *rounds.Graph, n int, removed []int) [][]int {
	gone := make([]bool, n)
	for _, v := range removed {
		gone[v] = true
	}
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if gone[start] || seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := 0; w < n; w++ {
				if !gone[w] && !seen[w] && net.Connected(v, w) {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
