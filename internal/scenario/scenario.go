// Package scenario mechanizes the scenario arguments of §2.2.1 ([54],
// Fischer–Lynch–Merritt): to show that no n = 3t protocol tolerates t
// Byzantine faults, splice two copies of the protocol's processes into a
// ring of 6 blocks; every adjacent pair of blocks "thinks it is in" a
// legitimate 3-block scenario with the rest of the ring impersonating the
// third block. The problem statement, applied across the splice, demands
// contradictory decisions.
//
// Given any concrete protocol, SpliceCheck runs the spliced ring (a
// perfectly ordinary failure-free synchronous system), derives the replay
// adversaries, and reports which requirement of the problem statement the
// protocol actually violates — producing a concrete counterexample
// execution with t Byzantine faults, exactly the "bad execution" the
// paper's proofs construct by hand.
package scenario

import (
	"fmt"

	"repro/internal/rounds"
	"repro/internal/spec"
)

// splicedRing adapts a base protocol on n = 3t processes (three blocks
// A = [0,t), B = [t,2t), C = [2t,3t)) to a 6-block ring of 2n processes:
// A0 B0 C0 A1 B1 C1, with block-crossing links C_i -> A_{i+1 mod 2}.
// Within the ring every process runs the unmodified base protocol; it
// simply talks to the copy of each peer designated by the ring structure.
type splicedRing struct {
	base rounds.Protocol
	n    int // base process count (3t)
	t    int
}

var _ rounds.Protocol = (*splicedRing)(nil)

// block returns the block index (0=A, 1=B, 2=C) of base process p.
func (s *splicedRing) block(p int) int { return p / s.t }

// role maps a ring position to its base process id.
func (s *splicedRing) role(pos int) int { return pos % s.n }

// copyOf maps a ring position to its copy index (0 or 1).
func (s *splicedRing) copyOf(pos int) int { return pos / s.n }

// position maps (copy, base process) to a ring position.
func (s *splicedRing) position(c, p int) int { return c*s.n + p }

// partner returns the ring position that plays base process q from the
// point of view of ring position pos. Blocks A and B of a copy talk to
// their own copy for everything except the C↔A crossing: block C of copy
// c talks to block A of copy 1-c... specifically C_c's A-partner is
// A_{c+1} and A_c's C-partner is C_{c-1} (indices mod 2).
func (s *splicedRing) partner(pos, q int) int {
	c := s.copyOf(pos)
	p := s.role(pos)
	bp, bq := s.block(p), s.block(q)
	switch {
	case bp == 2 && bq == 0: // C talking to A: next copy
		return s.position(1-c, q)
	case bp == 0 && bq == 2: // A talking to C: previous copy
		return s.position(1-c, q)
	default:
		return s.position(c, q)
	}
}

// Name implements rounds.Protocol.
func (s *splicedRing) Name() string { return "spliced-ring(" + s.base.Name() + ")" }

// NumProcs implements rounds.Protocol.
func (s *splicedRing) NumProcs() int { return 2 * s.n }

// Init implements rounds.Protocol.
func (s *splicedRing) Init(pos, input int) any { return s.base.Init(s.role(pos), input) }

// Send implements rounds.Protocol: send the base message only to the
// designated copy of each peer.
func (s *splicedRing) Send(pos int, state any, r, to int) rounds.Message {
	q := s.role(to)
	if q == s.role(pos) {
		return "" // base processes never talk to themselves
	}
	if s.partner(pos, q) != to {
		return ""
	}
	return s.base.Send(s.role(pos), state, r, q)
}

// Receive implements rounds.Protocol: fold ring messages back into a
// base-shaped inbox.
func (s *splicedRing) Receive(pos int, state any, r int, msgs []rounds.Message) any {
	inbox := make([]rounds.Message, s.n)
	for q := 0; q < s.n; q++ {
		if q == s.role(pos) {
			continue
		}
		inbox[q] = msgs[s.partner(pos, q)]
	}
	return s.base.Receive(s.role(pos), state, r, inbox)
}

// Decide implements rounds.Protocol.
func (s *splicedRing) Decide(pos int, state any) (int, bool) {
	return s.base.Decide(s.role(pos), state)
}

// Violation describes one way the protocol failed the problem statement.
type Violation struct {
	// Requirement is the problem-statement clause that failed.
	Requirement string
	// FaultyBlock is the block (0=A, 1=B, 2=C) the corresponding scenario
	// corrupts.
	FaultyBlock int
	// Detail is a human-readable account.
	Detail string
}

// Verdict is the outcome of SpliceCheck.
type Verdict struct {
	// T is the fault bound; the base protocol has n = 3t processes.
	T int
	// RingDecisions are the decisions at the 6t ring positions.
	RingDecisions []int
	// Violations lists the problem-statement clauses the protocol broke.
	// The theorem guarantees at least one entry for every protocol.
	Violations []Violation
	// CounterexampleChecked is true when a violating scenario was
	// replayed against the real n-process system under a t-fault
	// Byzantine adversary and the violation reproduced.
	CounterexampleChecked bool
}

// SpliceCheck runs the Fischer–Lynch–Merritt splice against a concrete
// base protocol with n = 3t processes running the given number of rounds,
// and reports which consensus requirement breaks. Inputs: copy 0 starts
// with all zeros, copy 1 with all ones.
func SpliceCheck(base rounds.Protocol, t, numRounds int) (Verdict, error) {
	n := base.NumProcs()
	if n != 3*t || t < 1 {
		return Verdict{}, fmt.Errorf("scenario: SpliceCheck needs n = 3t, got n=%d t=%d", n, t)
	}
	s := &splicedRing{base: base, n: n, t: t}
	inputs := make([]int, 2*n)
	for i := n; i < 2*n; i++ {
		inputs[i] = 1
	}
	res, err := rounds.Run(s, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: numRounds, RecordViews: true})
	if err != nil {
		return Verdict{}, fmt.Errorf("scenario: running spliced ring: %w", err)
	}
	v := Verdict{T: t, RingDecisions: res.Decisions}

	dec := func(c, p int) int { return res.Decisions[s.position(c, p)] }
	blockDec := func(c, b int) (int, bool) {
		val := dec(c, b*t)
		for i := 0; i < t; i++ {
			if dec(c, b*t+i) != val {
				return 0, false
			}
		}
		return val, true
	}

	// Requirement 1: A0 and B0 sit in a scenario where block C is faulty
	// and every nonfaulty input is 0 — validity demands they decide 0.
	if val, ok := blockDec(0, 0); !ok || val != 0 {
		v.Violations = append(v.Violations, Violation{
			Requirement: "validity(A0=0)", FaultyBlock: 2,
			Detail: "block A, copy 0, must decide 0 in the scenario where C is faulty and all inputs are 0",
		})
	}
	if val, ok := blockDec(0, 1); !ok || val != 0 {
		v.Violations = append(v.Violations, Violation{
			Requirement: "validity(B0=0)", FaultyBlock: 2,
			Detail: "block B, copy 0, must decide 0 in the scenario where C is faulty and all inputs are 0",
		})
	}
	// Requirement 2: B1 and C1 sit in a scenario where block A is faulty
	// and every nonfaulty input is 1.
	if val, ok := blockDec(1, 1); !ok || val != 1 {
		v.Violations = append(v.Violations, Violation{
			Requirement: "validity(B1=1)", FaultyBlock: 0,
			Detail: "block B, copy 1, must decide 1 in the scenario where A is faulty and all inputs are 1",
		})
	}
	if val, ok := blockDec(1, 2); !ok || val != 1 {
		v.Violations = append(v.Violations, Violation{
			Requirement: "validity(C1=1)", FaultyBlock: 0,
			Detail: "block C, copy 1, must decide 1 in the scenario where A is faulty and all inputs are 1",
		})
	}
	// Requirement 3: A0 and C1 sit in a common scenario where block B is
	// faulty — agreement demands equal decisions.
	a0, okA := blockDec(0, 0)
	c1, okC := blockDec(1, 2)
	if !okA || !okC || a0 != c1 {
		v.Violations = append(v.Violations, Violation{
			Requirement: "agreement(A0,C1)", FaultyBlock: 1,
			Detail: fmt.Sprintf("blocks A0 and C1 share a scenario with B faulty but decided %d vs %d", a0, c1),
		})
	}
	if len(v.Violations) == 0 {
		// The theorem says this cannot happen for a protocol meeting the
		// requirements; reaching here means the decisions are mutually
		// inconsistent with the checks above, which is impossible.
		return v, fmt.Errorf("scenario: no violation found — n=3t protocol appears to satisfy all scenario requirements, contradicting [54]")
	}

	// Replay the first violating scenario against the real n-process
	// system to produce a checked counterexample.
	viol := v.Violations[0]
	adv, scenarioInputs := s.replayAdversary(res, viol.FaultyBlock)
	real, err := rounds.Run(base, scenarioInputs, adv, rounds.RunOptions{Rounds: numRounds})
	if err != nil {
		return v, fmt.Errorf("scenario: replaying counterexample: %w", err)
	}
	if spec.CheckConsensus(scenarioInputs, real.Decisions, real.Faulty) != nil {
		v.CounterexampleChecked = true
	}
	return v, nil
}

// replayAdversary builds the Byzantine adversary that makes the faulty
// block behave, toward each nonfaulty block, exactly as the corresponding
// ring copies behaved — together with the scenario's input vector.
func (s *splicedRing) replayAdversary(ringRes rounds.Result, faultyBlock int) (rounds.Adversary, []int) {
	// Choose which copy of each nonfaulty block participates, following
	// the three scenarios of SpliceCheck:
	//   C faulty: A0, B0 (inputs 0).
	//   A faulty: B1, C1 (inputs 1).
	//   B faulty: A0, C1 (inputs 0 for A, 1 for C).
	copyOfBlock := map[int]int{}
	switch faultyBlock {
	case 2:
		copyOfBlock = map[int]int{0: 0, 1: 0}
	case 0:
		copyOfBlock = map[int]int{1: 1, 2: 1}
	default:
		copyOfBlock = map[int]int{0: 0, 2: 1}
	}
	inputs := make([]int, s.n)
	corrupt := map[int]bool{}
	for p := 0; p < s.n; p++ {
		b := s.block(p)
		if b == faultyBlock {
			corrupt[p] = true
			continue
		}
		inputs[p] = copyOfBlock[b] // copy 0 ran inputs 0, copy 1 inputs 1
	}
	forge := func(r, from, to int, _ rounds.Message) rounds.Message {
		// The faulty process `from` sends `to` whatever the ring copy
		// adjacent to `to`'s copy sent it.
		toPos := s.position(copyOfBlock[s.block(to)], to)
		return ringRes.Views[toPos][(r-1)*2*s.n+s.partner(toPos, from)]
	}
	return &rounds.ByzantineStrategy{Corrupt: corrupt, Forge: forge}, inputs
}
