package engine

import (
	"errors"
	"fmt"
)

// Canonicalizer maps a state to the canonical representative of its symmetry
// orbit. When one is supplied via Options.Canon, the engine explores the
// quotient graph: every generated state is canonicalized before it is
// fingerprinted and interned, so an entire orbit of symmetric states
// collapses to one representative — the classic model-checking rendering of
// the paper's §2.4 symmetry arguments ("identical processes behave
// identically").
//
// A canonicalizer is sound for quotient exploration iff it is
//
//   - idempotent:      Canon(Canon(s)) == Canon(s), and
//   - step-commuting:  the multiset {Canon(u) : u ∈ succ(s)} equals
//     {Canon(u) : u ∈ succ(Canon(s))} for every reachable s,
//
// which together say Canon picks one representative per orbit of a symmetry
// of the transition relation. Under those two conditions (at every state of
// the FULL space) the quotient graph reaches a representative of every
// reachable orbit, preserves every orbit-invariant (symmetric) predicate,
// and is still explored deterministically at any worker count. Predicates
// that name a specific process (e.g. "process 0 is never locked out") are
// NOT orbit-invariant and must not be checked on a quotient graph.
//
// Options.VerifyCanon spot-checks both conditions during exploration. The
// check necessarily runs only on states the quotient exploration generates,
// so it refutes a broken canonicalizer whenever a violation is visible
// there — in practice almost any mis-specified permutation — but it is a
// falsifier, not a proof: a canonicalizer whose violations live entirely on
// orbit members the quotient never materializes can pass it while silently
// dropping reachable orbits (internal/flp's ValueSwapCanon on the wait
// protocols is the worked example, with the orbit loss demonstrated in its
// tests). Establishing soundness outright remains a per-system argument
// that the group generating Canon is an automorphism group.
type Canonicalizer[S comparable] func(S) S

// ErrCanonUnsound is wrapped by the error Explore returns when the
// VerifyCanon safety check catches a canonicalizer violating idempotence or
// step-commutation on a reachable state.
var ErrCanonUnsound = errors.New("engine: canonicalizer failed soundness check")

// BytesCanonicalizer is the byte-level form of Canonicalizer for
// string-typed states: it writes the canonical representative's encoding
// into dst[:0] and returns the grown slice, so the EmitBytes hot path can
// canonicalize without materializing a string per generated state.
//
// Contract, in addition to the Canonicalizer soundness conditions:
//
//   - Agreement: string(f(nil, []byte(s))) == Canon(s) for every
//     reachable s — the string canonicalizer defines the quotient, the
//     byte form merely avoids the allocations. VerifyCanon cross-checks
//     the two on sampled states.
//   - The result must be backed by dst (never by src): callers compare it
//     against src and then reuse src's buffer.
//   - src must not be modified.
//
// Stateful implementations (scratch parsers) are per-worker: pass a
// func() BytesCanonicalizer factory as Options.CanonBytes and the engine
// instantiates one per worker.
type BytesCanonicalizer func(dst, src []byte) []byte

// canonBytesFor resolves the dynamically-typed Options.CanonBytes into a
// per-worker factory. A bare BytesCanonicalizer (or its underlying func
// type) must be stateless and is shared; a factory is called once per
// worker.
func canonBytesFor(v any) (func() BytesCanonicalizer, error) {
	switch c := v.(type) {
	case nil:
		return nil, nil
	case BytesCanonicalizer:
		return func() BytesCanonicalizer { return c }, nil
	case func(dst, src []byte) []byte:
		return func() BytesCanonicalizer { return c }, nil
	case func() BytesCanonicalizer:
		return c, nil
	default:
		return nil, fmt.Errorf("engine: Options.CanonBytes has type %T, want BytesCanonicalizer or func() BytesCanonicalizer", v)
	}
}

// canonFor resolves the dynamically-typed Options.Canon into a typed
// canonicalizer for the explored state type. Both the named Canonicalizer[S]
// and a plain func(S) S are accepted; anything else is an error (a silent
// nil would quietly explore the full space).
func canonFor[S comparable](v any) (Canonicalizer[S], error) {
	switch c := v.(type) {
	case nil:
		return nil, nil
	case Canonicalizer[S]:
		return c, nil
	case func(S) S:
		return c, nil
	default:
		var zero S
		return nil, fmt.Errorf("engine: Options.Canon has type %T, want func(%T) %T", v, zero, zero)
	}
}

// canonSuccessors returns the canonicalized successor multiset of s, sorted
// into a deterministic order via each state's fingerprint so two multisets
// can be compared positionally. Used only by the safety check; the hot
// exploration path never materializes successor slices.
func (e *explorer[S]) canonSuccessors(s S) map[S]int {
	out := make(map[S]int)
	e.expand(s, e.collectCtx(func(to S, _ string, _ int) {
		out[e.canon(to)]++
	}))
	return out
}

// checkCanonBytes is the sampled EmitBytes-path check: it materializes the
// raw state and its byte-level representative, verifies the byte and
// string canonicalizers agree, and then runs the regular soundness check
// on the raw state. Errors land in verifyErr like every sampled check.
func (e *explorer[S]) checkCanonBytes(src, rep []byte) {
	raw := e.fromBytes(src)
	bytesRep := e.fromBytes(rep)
	if stringRep := e.canon(raw); stringRep != bytesRep {
		e.noteVerifyErr(fmt.Errorf("%w: CanonBytes disagrees with Canon at %v: bytes form gives %v, string form gives %v",
			ErrCanonUnsound, raw, bytesRep, stringRep))
		return
	}
	if err := e.checkCanon(raw); err != nil {
		e.noteVerifyErr(err)
	}
}

// checkCanon verifies the two soundness conditions at one sampled raw state:
// idempotence of canon at raw, and step-commutation between raw and its
// representative. raw states already equal to their representative are
// trivially sound (both conditions degenerate to identities), so callers
// skip them.
func (e *explorer[S]) checkCanon(raw S) error {
	rep := e.canon(raw)
	if again := e.canon(rep); again != rep {
		return fmt.Errorf("%w: not idempotent at %v: Canon(s)=%v but Canon(Canon(s))=%v",
			ErrCanonUnsound, raw, rep, again)
	}
	succRaw := e.canonSuccessors(raw)
	succRep := e.canonSuccessors(rep)
	if len(succRaw) != len(succRep) {
		return fmt.Errorf("%w: not step-commuting at %v (rep %v): %d distinct canonical successors vs %d",
			ErrCanonUnsound, raw, rep, len(succRaw), len(succRep))
	}
	for s, n := range succRaw {
		if succRep[s] != n {
			return fmt.Errorf("%w: not step-commuting at %v (rep %v): canonical successor %v occurs %d times vs %d",
				ErrCanonUnsound, raw, rep, s, n, succRep[s])
		}
	}
	return nil
}

// noteVerifyErr records the first safety-check failure (canonicalizer or
// independence relation). The level barrier turns it into Explore's return
// error, so the *occurrence* of a failure by a given BFS depth is
// deterministic even though which offending state is reported first may
// vary with scheduling.
func (e *explorer[S]) noteVerifyErr(err error) {
	e.verifyMu.Lock()
	if e.verifyErr == nil {
		e.verifyErr = err
	}
	e.verifyMu.Unlock()
	// The free-running scheduler has no barriers; its workers poll this
	// flag per expansion and fail fast.
	e.verifySet.Store(true)
}
