package engine

import "fmt"

// fingerprint maps a state to the 64-bit key used to pick a visited-set
// shard and to index within it. Collisions are tolerated (every hit is
// confirmed against the full state), so the only requirements are
// determinism and reasonable spread.
//
// The switch is over *S rather than S: boxing a pointer into an interface
// stores it directly in the interface word, so the common string/int paths
// stay allocation-free. Exotic comparable state types fall back to their
// fmt rendering — slow but correct, and unused by any system in this
// repository (whose canonical states are strings and small ints).
func fingerprint[S comparable](s *S) uint64 {
	switch p := any(s).(type) {
	case *string:
		return hashString(*p)
	case *int:
		return mix64(uint64(*p))
	case *int8:
		return mix64(uint64(*p))
	case *int16:
		return mix64(uint64(*p))
	case *int32:
		return mix64(uint64(*p))
	case *int64:
		return mix64(uint64(*p))
	case *uint:
		return mix64(uint64(*p))
	case *uint8:
		return mix64(uint64(*p))
	case *uint16:
		return mix64(uint64(*p))
	case *uint32:
		return mix64(uint64(*p))
	case *uint64:
		return mix64(*p)
	case *uintptr:
		return mix64(uint64(*p))
	default:
		return hashString(fmt.Sprint(*s))
	}
}

// hashString is FNV-1a with a splitmix64 finalizer for avalanche.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// hashBytes is hashString over raw bytes: hashBytes(b) == hashString(
// string(b)) by construction, which is what lets the EmitBytes path
// fingerprint a successor without materializing it.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return mix64(h)
}

// fromBytesFunc resolves the []byte -> S materializer for string state
// types (nil for every other type; EmitBytes is a string-state API).
func fromBytesFunc[S comparable]() func([]byte) S {
	var zero S
	if _, ok := any(zero).(string); !ok {
		return nil
	}
	return func(b []byte) S {
		var s S
		*any(&s).(*string) = string(b)
		return s
	}
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// spreads small integers (the typical encoded-state ids) across the full
// 64-bit range.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
