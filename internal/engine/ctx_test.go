package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// gridExpandBytes is gridExpand reworked onto the zero-alloc surface:
// successors are rendered into Ctx.Scratch and emitted as raw bytes, and
// labels go through the Ctx label interner. It must explore byte-identically
// to gridExpand.
func gridExpandBytes(n int) ExpandFunc[string] {
	return func(s string, ex *Ctx[string]) {
		comma := strings.IndexByte(s, ',')
		x, _ := strconv.Atoi(s[:comma])
		y, _ := strconv.Atoi(s[comma+1:])
		buf := ex.Scratch[:0]
		if x+1 < n {
			buf = strconv.AppendInt(buf[:0], int64(x+1), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(y), 10)
			ex.EmitBytes(buf, ex.Label([]byte("right")), 0)
		}
		if y+1 < n {
			buf = strconv.AppendInt(buf[:0], int64(x), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(y+1), 10)
			ex.EmitBytes(buf, ex.Label([]byte("up")), 1)
		}
		ex.Scratch = buf
	}
}

// TestEmitBytesMatchesEmit checks the EmitBytes direct path against the
// materializing Emit path: byte-identical Results and invariant telemetry
// at several worker counts and across every bytes-capable backend.
func TestEmitBytesMatchesEmit(t *testing.T) {
	const n = 12
	inits := []string{"0,0"}
	stores := map[string]store.Config{
		"mem":   {},
		"spill": {Kind: store.Spill, MaxBytes: 1 << 10, PageBits: 5},
	}
	for name, sc := range stores {
		for _, par := range []int{1, 2, 8} {
			opts := Options{Parallelism: par, Store: sc, VerifyAliasing: 1}
			want, err := Explore(inits, gridExpand(n), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Explore(inits, gridExpandBytes(n), opts)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, fmt.Sprintf("emit-bytes %s workers=%d", name, par), want, got)
			if want.Stats.DedupHits != got.Stats.DedupHits || want.Stats.Expansions != got.Stats.Expansions {
				t.Fatalf("%s workers=%d: telemetry differs: dedup %d vs %d, expansions %d vs %d", name, par,
					want.Stats.DedupHits, got.Stats.DedupHits, want.Stats.Expansions, got.Stats.Expansions)
			}
		}
	}
}

// sortCanon maps "x,y" to the orbit representative with the coordinates
// sorted — the transposition symmetry of the grid.
func sortCanon(s string) string {
	comma := strings.IndexByte(s, ',')
	a, b := s[:comma], s[comma+1:]
	ai, _ := strconv.Atoi(a)
	bi, _ := strconv.Atoi(b)
	if ai <= bi {
		return s
	}
	return b + "," + a
}

// sortCanonBytes is sortCanon's byte-level twin.
func sortCanonBytes(dst, src []byte) []byte {
	comma := 0
	for src[comma] != ',' {
		comma++
	}
	a, _ := strconv.Atoi(string(src[:comma]))
	b, _ := strconv.Atoi(string(src[comma+1:]))
	if a <= b {
		return append(dst[:0], src...)
	}
	dst = append(dst[:0], src[comma+1:]...)
	dst = append(dst, ',')
	return append(dst, src[:comma]...)
}

// TestCanonBytesMatchesCanon checks the byte-level quotient path against
// the string canonicalizer: identical quotient Results and telemetry, with
// VerifyCanon cross-checking agreement on every remapped state.
func TestCanonBytesMatchesCanon(t *testing.T) {
	const n = 10
	inits := []string{"0,0"}
	for _, par := range []int{1, 2, 8} {
		strOpts := Options{Parallelism: par, Canon: sortCanon, VerifyCanon: 1, VerifyAliasing: 1}
		want, err := Explore(inits, gridExpand(n), strOpts)
		if err != nil {
			t.Fatal(err)
		}
		bytesOpts := strOpts
		bytesOpts.CanonBytes = sortCanonBytes
		got, err := Explore(inits, gridExpandBytes(n), bytesOpts)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("canon-bytes workers=%d", par), want, got)
		if want.Stats.CanonHits != got.Stats.CanonHits || want.Stats.RawStates != got.Stats.RawStates {
			t.Fatalf("workers=%d: canon telemetry differs: hits %d vs %d, raw %d vs %d", par,
				want.Stats.CanonHits, got.Stats.CanonHits, want.Stats.RawStates, got.Stats.RawStates)
		}
	}
}

// TestCanonBytesDisagreementCaught plants a byte canonicalizer that
// disagrees with the string canonicalizer; VerifyCanon must fail the run
// with ErrCanonUnsound. The broken canon swaps unconditionally so that it
// remaps states sortCanon holds fixed (the sampler only cross-checks
// remapped states — a disagreeing fixed point of the byte canon would
// also be a remap under it, so unconditional swapping covers the case).
func TestCanonBytesDisagreementCaught(t *testing.T) {
	broken := func(dst, src []byte) []byte {
		comma := 0
		for src[comma] != ',' {
			comma++
		}
		dst = append(dst[:0], src[comma+1:]...)
		dst = append(dst, ',')
		return append(dst, src[:comma]...)
	}
	_, err := Explore([]string{"0,0"}, gridExpandBytes(8), Options{
		Canon:       sortCanon,
		CanonBytes:  broken,
		VerifyCanon: 1,
	})
	if !errors.Is(err, ErrCanonUnsound) {
		t.Fatalf("swapping CanonBytes under sortCanon: err = %v, want ErrCanonUnsound", err)
	}
}

// TestCanonBytesRequiresCanon checks the option-validation coupling.
func TestCanonBytesRequiresCanon(t *testing.T) {
	_, err := Explore([]string{"0,0"}, gridExpandBytes(4), Options{CanonBytes: sortCanonBytes})
	if err == nil {
		t.Fatal("CanonBytes without Canon accepted")
	}
}

// retainingExpand illegally keeps views into Ctx.Scratch across
// expansions: the first expansion stashes the rendered successor bytes,
// later expansions re-emit from the stale (possibly poisoned or
// overwritten) memory. VerifyAliasing must catch it.
type retainingExpand struct {
	stash [][]byte
}

func (r *retainingExpand) expand(s string, x *Ctx[string]) {
	if len(x.Scratch) < 8 {
		x.Scratch = make([]byte, 8)
	}
	buf := x.Scratch[:0]
	switch s {
	case "a":
		buf = append(buf, "b0"...)
		r.stash = append(r.stash, buf) // illegal: retained across expansions
		x.EmitBytes(buf, "step", 0)
	default:
		if len(r.stash) > 0 {
			// Re-emit from the retained buffer: its contents are garbage
			// by now (the engine poisons Scratch between expansions under
			// VerifyAliasing), so the re-expansion diverges.
			x.EmitBytes(r.stash[0], "step", 0)
		}
	}
}

func TestVerifyAliasingCatchesRetainedBuffer(t *testing.T) {
	// One worker so the stashed slice aliases the scratch buffer of the
	// worker whose re-expansion reads it back.
	r := &retainingExpand{}
	_, err := Explore([]string{"a"}, r.expand, Options{Parallelism: 1, VerifyAliasing: 1, MaxStates: 100})
	if !errors.Is(err, ErrAliasUnsound) {
		t.Fatalf("buffer-retaining system: err = %v, want ErrAliasUnsound", err)
	}
}

// TestVerifyAliasingCleanSystems re-runs well-behaved expansions (string
// and bytes emitting, full and POR modes) under VerifyAliasing=1 and
// checks the results are byte-identical to unverified runs: the falsifier
// must be a pure observer.
func TestVerifyAliasingCleanSystems(t *testing.T) {
	inits := []string{"0,0"}
	indep := func(s string, a, b Action[string]) bool { return a.Actor != b.Actor }
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"full", Options{}},
		{"canon", Options{Canon: sortCanon, VerifyCanon: 1}},
		{"por", Options{Independent: indep, VerifyPOR: 1}},
	} {
		for _, expand := range []ExpandFunc[string]{gridExpand(9), gridExpandBytes(9)} {
			want, err := Explore(inits, expand, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			vopts := tc.opts
			vopts.VerifyAliasing = 1
			got, err := Explore(inits, expand, vopts)
			if err != nil {
				t.Fatalf("%s with VerifyAliasing: %v", tc.name, err)
			}
			mustEqualResults(t, tc.name+" aliasing-verified", want, got)
		}
	}
}

// TestLabelInterner checks Label returns stable, value-equal strings.
func TestLabelInterner(t *testing.T) {
	x := &Ctx[string]{}
	a := x.Label([]byte("deliver 0>1:m"))
	b := x.Label([]byte("deliver 0>1:m"))
	if a != b {
		t.Fatalf("Label not stable: %q vs %q", a, b)
	}
	if len(x.labels) != 1 {
		t.Fatalf("interner holds %d entries, want 1", len(x.labels))
	}
}
