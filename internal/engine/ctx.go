package engine

import (
	"bytes"
	"time"
)

// Ctx is the expansion context the engine hands to an ExpandFunc: the
// revised expand API that makes the hot path allocation-free. A worker
// owns one Ctx for the whole run and passes the same pointer to every
// expansion it performs, so everything reachable from it — the scratch
// buffer, the system's private scratch, the label interner — is reused
// across states without synchronization.
//
// Buffer-ownership contract (the aliasing rules VerifyAliasing falsifies):
//
//   - Scratch and any system-owned buffers may be freely overwritten
//     during an expansion, but their contents are garbage once ExpandFunc
//     returns: the next expansion (of an arbitrary state, possibly after a
//     level barrier) reuses them.
//   - Bytes passed to EmitBytes are fully consumed before EmitBytes
//     returns; the system may overwrite them immediately afterwards.
//     Conversely the system must NOT retain them either — the engine may
//     hand the same backing array back as Scratch later.
//   - Strings passed to Emit/Label are immutable Go strings and may be
//     retained by the engine indefinitely (they land in Result.Edges), so
//     systems must not build them over reused backing arrays via unsafe.
type Ctx[S comparable] struct {
	// Scratch is a reusable byte buffer owned by the expanding worker.
	// Systems may slice, grow and overwrite it freely during one expansion
	// (writing the grown slice back so capacity accumulates); its contents
	// do not survive across expansions, and under Options.VerifyAliasing
	// they are actively poisoned in between.
	Scratch []byte
	// Sys is system-owned per-worker scratch storage: a system that needs
	// typed buffers (parsed state, successor assembly, …) lazily installs
	// its scratch struct here on first use and finds it again on every
	// later expansion by the same worker. The engine never touches it.
	Sys any

	e *explorer[S]
	w *worker[S]
	// sink, when non-nil, switches the context to collect mode: Emit
	// routes transitions to it instead of interning, and EmitBytes
	// materializes. Used by the POR action-collection pass and the sampled
	// soundness checks.
	sink func(to S, label string, actor int)
	// labels is the per-context label interner backing Label.
	labels map[string]string
}

// Emit records one successor of the state being expanded. The label
// string is retained by the engine (it appears in Result.Edges verbatim);
// use Label to build it allocation-free from scratch bytes.
func (x *Ctx[S]) Emit(to S, label string, actor int) {
	if x.sink != nil {
		x.sink(to, label, actor)
		return
	}
	e, ws := x.e, x.w
	if ws.profSampling {
		// Fine-profiled twin for the 1-in-64 sampled states; one
		// predictable always-false branch when profiling is off.
		x.emitSampled(to, label, actor)
		return
	}
	if e.canon != nil {
		to = e.canonicalize(to, ws)
	}
	if sr := e.steal.Load(); sr != nil {
		// Free-running discovery: route by shard ownership instead of
		// interning in place (DedupHits is derived after termination —
		// the emitter cannot know freshness for forwarded successors).
		sr.emitState(ws, to, label, actor)
		return
	}
	tid, fresh := e.store.Intern(to)
	if !fresh {
		ws.dedup++
	}
	ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
}

// emitSampled is Emit's fine-profiled twin (sink already known nil):
// behaviorally identical — keep the two in sync — with the
// canonicalization and intern/forward sections timed into the worker's
// sample counters. See profile.go for the sampling design.
func (x *Ctx[S]) emitSampled(to S, label string, actor int) {
	e, ws := x.e, x.w
	if e.canon != nil {
		t := time.Now()
		to = e.canonicalize(to, ws)
		ws.prof.sampleCanon.Add(int64(time.Since(t)))
	}
	t := time.Now()
	if sr := e.steal.Load(); sr != nil {
		sr.emitState(ws, to, label, actor)
		ws.prof.sampleIntern.Add(int64(time.Since(t)))
		return
	}
	tid, fresh := e.store.Intern(to)
	ws.prof.sampleIntern.Add(int64(time.Since(t)))
	if !fresh {
		ws.dedup++
	}
	ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
}

// EmitBytes is Emit for string-typed states handed over as raw encoded
// bytes: the successor state is string(to), but on the direct path the
// engine fingerprints, canonicalizes and interns the bytes without ever
// materializing that string — a dedup hit (the common case) allocates
// nothing at all. The bytes are fully consumed before EmitBytes returns.
//
// The direct path requires a string state type, a backend supporting
// store.BytesInterner, and — under a canonicalizer — Options.CanonBytes;
// otherwise EmitBytes transparently falls back to materializing the
// string and calling Emit, so systems can use it unconditionally.
func (x *Ctx[S]) EmitBytes(to []byte, label string, actor int) {
	e := x.e
	if x.sink != nil || !e.bytesDirect {
		if e.fromBytes == nil {
			panic("engine: EmitBytes on a non-string state type")
		}
		x.Emit(e.fromBytes(to), label, actor)
		return
	}
	ws := x.w
	if ws.profSampling {
		x.emitBytesSampled(to, label, actor)
		return
	}
	sr := e.steal.Load()
	if e.canon != nil {
		// The canon memo is disabled under free-running discovery: it
		// caches interned ids, and a forwarded successor's id resolves
		// asynchronously in the owning worker — the emitter never learns
		// it. Every emission then pays the full canonicalization, which
		// keeps the per-emission counters (canonHits, rawSeen) exactly as
		// the memo would have replayed them.
		if sr == nil {
			if ent, ok := ws.canonMemo[string(to)]; ok {
				// Memo hit: this worker already canonicalized these exact raw
				// bytes, so the id, the remap bit, and the rawSeen entry are all
				// known — no hashing, no candidate renders. The successor is
				// necessarily already interned, hence the unconditional dedup.
				if ent.remapped {
					ws.canonHits++
				}
				ws.dedup++
				ws.arena = append(ws.arena, rawEdge{to: ent.id, actor: int32(actor), label: label})
				return
			}
		}
		h := e.hashB(to)
		ws.rawSeen[h] = struct{}{}
		rep := ws.canonB(ws.canonBuf[:0], to)
		ws.canonBuf = rep
		remapped := !bytes.Equal(rep, to)
		var rawKey string
		if sr == nil {
			rawKey = string(to) // the one allocation per distinct raw encoding
		}
		if remapped {
			ws.canonHits++
			if e.verifyMod != 0 && h%e.verifyMod == 0 {
				e.checkCanonBytes(to, rep)
			}
			to = rep
			h = e.hashB(rep)
		}
		if sr != nil {
			sr.emitBytes(ws, to, h, label, actor)
			return
		}
		// Fixed points are trivially idempotent and step-commuting, and a
		// byte-identical representative is trivially in agreement with the
		// string canonicalizer, so (mirroring canonicalize) the sampled
		// check only runs on remapped states — and, with the memo, on each
		// worker's first emission of a given raw encoding.
		tid, fresh := e.bytesIntern.InternBytes(h, to)
		if !fresh {
			ws.dedup++
		}
		if len(ws.canonMemo) >= canonMemoCap || ws.canonMemo == nil {
			ws.canonMemo = make(map[string]canonMemoEntry)
		}
		ws.canonMemo[rawKey] = canonMemoEntry{id: tid, remapped: remapped}
		ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
		return
	}
	h := e.hashB(to)
	if sr != nil {
		sr.emitBytes(ws, to, h, label, actor)
		return
	}
	tid, fresh := e.bytesIntern.InternBytes(h, to)
	if !fresh {
		ws.dedup++
	}
	ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
}

// emitBytesSampled is the direct path of EmitBytes (sink known nil,
// bytesDirect known true) for the 1-in-64 fine-sampled states:
// behaviorally identical — keep the two in sync — with the
// canonicalization pipeline (memo lookup, raw fingerprint bookkeeping,
// representative render) and the hash+intern/forward section timed into
// the worker's sample counters. A sampled memo hit records its true
// near-zero cost rather than re-paying the pipeline, so the sampled
// fractions reflect what the run actually spends.
func (x *Ctx[S]) emitBytesSampled(to []byte, label string, actor int) {
	e, ws := x.e, x.w
	prof := ws.prof
	sr := e.steal.Load()
	if e.canon != nil {
		ct := time.Now()
		if sr == nil {
			if ent, ok := ws.canonMemo[string(to)]; ok {
				prof.sampleCanon.Add(int64(time.Since(ct)))
				if ent.remapped {
					ws.canonHits++
				}
				ws.dedup++
				ws.arena = append(ws.arena, rawEdge{to: ent.id, actor: int32(actor), label: label})
				return
			}
		}
		h := e.hashB(to)
		ws.rawSeen[h] = struct{}{}
		rep := ws.canonB(ws.canonBuf[:0], to)
		ws.canonBuf = rep
		remapped := !bytes.Equal(rep, to)
		var rawKey string
		if sr == nil {
			rawKey = string(to)
		}
		if remapped {
			ws.canonHits++
			if e.verifyMod != 0 && h%e.verifyMod == 0 {
				e.checkCanonBytes(to, rep)
			}
			to = rep
			h = e.hashB(rep)
		}
		it := time.Now()
		prof.sampleCanon.Add(int64(it.Sub(ct)))
		if sr != nil {
			sr.emitBytes(ws, to, h, label, actor)
			prof.sampleIntern.Add(int64(time.Since(it)))
			return
		}
		tid, fresh := e.bytesIntern.InternBytes(h, to)
		prof.sampleIntern.Add(int64(time.Since(it)))
		if !fresh {
			ws.dedup++
		}
		if len(ws.canonMemo) >= canonMemoCap || ws.canonMemo == nil {
			ws.canonMemo = make(map[string]canonMemoEntry)
		}
		ws.canonMemo[rawKey] = canonMemoEntry{id: tid, remapped: remapped}
		ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
		return
	}
	it := time.Now()
	h := e.hashB(to)
	if sr != nil {
		sr.emitBytes(ws, to, h, label, actor)
		prof.sampleIntern.Add(int64(time.Since(it)))
		return
	}
	tid, fresh := e.bytesIntern.InternBytes(h, to)
	prof.sampleIntern.Add(int64(time.Since(it)))
	if !fresh {
		ws.dedup++
	}
	ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(actor), label: label})
}

// Label interns a label string built in a scratch buffer: the first
// expansion to produce a given byte sequence pays one string allocation,
// every later occurrence is an allocation-free map hit. State spaces have
// a tiny label alphabet relative to their edge count, so the map stays
// small while the hot path stops concatenating label strings per edge.
func (x *Ctx[S]) Label(b []byte) string {
	if s, ok := x.labels[string(b)]; ok {
		return s
	}
	s := string(b)
	if x.labels == nil {
		x.labels = make(map[string]string)
	}
	x.labels[s] = s
	return s
}

// collectCtx builds a transient collect-mode context: Emit routes to sink,
// EmitBytes materializes. Used by the sampled soundness checks — never on
// the hot path, so the closure and map allocations here are irrelevant.
func (e *explorer[S]) collectCtx(sink func(to S, label string, actor int)) *Ctx[S] {
	return &Ctx[S]{e: e, sink: sink}
}

// CollectCtx builds a standalone collect-mode context outside any run:
// Emit and EmitBytes route every transition to sink (EmitBytes by
// materializing the state), and Scratch, Sys and Label behave as on a
// real context. Intended for equivalence tests that compare a scratch
// expansion's emissions against a reference — not for exploration.
func CollectCtx[S comparable](sink func(to S, label string, actor int)) *Ctx[S] {
	return &Ctx[S]{sink: sink, e: &explorer[S]{fromBytes: fromBytesFunc[S]()}}
}
