package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// chainExpand is a linear system 0 -> 1 -> ... -> n.
func chainExpand(n int) ExpandFunc[int] {
	return func(s int, x *Ctx[int]) {
		if s < n {
			x.Emit(s+1, "inc", 0)
		}
	}
}

// gridExpand is a 2-D lattice walk over string states "x,y" with
// 0 <= x,y < n: two successors per interior state, lots of diamond-shaped
// dedup, frontier width up to n.
func gridExpand(n int) ExpandFunc[string] {
	return func(s string, ex *Ctx[string]) {
		var x, y int
		fmt.Sscanf(s, "%d,%d", &x, &y)
		if x+1 < n {
			ex.Emit(fmt.Sprintf("%d,%d", x+1, y), "right", 0)
		}
		if y+1 < n {
			ex.Emit(fmt.Sprintf("%d,%d", x, y+1), "up", 1)
		}
	}
}

// randomExpand is a seeded random digraph over [0, n): each state's
// successor list is derived deterministically from the seed and the state,
// so the expansion is pure while the shape is irregular.
func randomExpand(seed int64, n int) ExpandFunc[int] {
	return func(s int, x *Ctx[int]) {
		rng := rand.New(rand.NewSource(seed ^ int64(s)*0x9e3779b9))
		deg := rng.Intn(4)
		for i := 0; i < deg; i++ {
			x.Emit(rng.Intn(n), fmt.Sprintf("e%d", i), rng.Intn(3))
		}
	}
}

// mustEqualResults fails the test unless a and b are byte-identical in
// every canonical field.
func mustEqualResults[S comparable](t *testing.T, label string, a, b *Result[S]) {
	t.Helper()
	if !reflect.DeepEqual(a.States, b.States) {
		t.Fatalf("%s: state orderings differ", label)
	}
	if !reflect.DeepEqual(a.Inits, b.Inits) {
		t.Fatalf("%s: initial ids differ: %v vs %v", label, a.Inits, b.Inits)
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatalf("%s: edge lists differ", label)
	}
	if !reflect.DeepEqual(a.Parents, b.Parents) {
		t.Fatalf("%s: parent trees differ", label)
	}
	if !reflect.DeepEqual(a.ParentEdges, b.ParentEdges) {
		t.Fatalf("%s: parent edges differ", label)
	}
	if a.Truncated != b.Truncated {
		t.Fatalf("%s: truncation flags differ: %v vs %v", label, a.Truncated, b.Truncated)
	}
}

func TestExploreChain(t *testing.T) {
	res, err := Explore([]int{0}, chainExpand(10), Options{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(res.States) != 11 {
		t.Fatalf("states = %d, want 11", len(res.States))
	}
	for i, s := range res.States {
		if s != i {
			t.Fatalf("state %d = %d, want BFS order", i, s)
		}
	}
	if res.Stats.Depth != 11 {
		t.Fatalf("depth = %d, want 11", res.Stats.Depth)
	}
	for i := 1; i < len(res.States); i++ {
		if res.Parents[i] != i-1 {
			t.Fatalf("parent[%d] = %d, want %d", i, res.Parents[i], i-1)
		}
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	type tc struct {
		name string
		run  func(par int) (any, error)
	}
	cases := []tc{
		{"grid", func(par int) (any, error) {
			return Explore([]string{"0,0"}, gridExpand(40), Options{Parallelism: par})
		}},
		{"random", func(par int) (any, error) {
			return Explore([]int{0, 1, 0}, randomExpand(42, 5000), Options{Parallelism: par})
		}},
		{"chain", func(par int) (any, error) {
			return Explore([]int{0}, chainExpand(300), Options{Parallelism: par})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref, err := c.run(1)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			for _, par := range []int{2, 3, 8} {
				got, err := c.run(par)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				switch r := ref.(type) {
				case *Result[string]:
					mustEqualResults(t, fmt.Sprintf("%s par=%d", c.name, par), r, got.(*Result[string]))
				case *Result[int]:
					mustEqualResults(t, fmt.Sprintf("%s par=%d", c.name, par), r, got.(*Result[int]))
				}
			}
		})
	}
}

func TestTruncationIsCanonical(t *testing.T) {
	// The partial result at any worker count must equal the sequential
	// partial result, state for state.
	ref, err := Explore([]string{"0,0"}, gridExpand(60), Options{Parallelism: 1, MaxStates: 500})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	if !ref.Truncated || len(ref.States) != 501 {
		t.Fatalf("partial result: truncated=%v states=%d, want truncated with 501 states", ref.Truncated, len(ref.States))
	}
	for _, par := range []int{2, 8} {
		got, err := Explore([]string{"0,0"}, gridExpand(60), Options{Parallelism: par, MaxStates: 500})
		if !errors.Is(err, ErrStateLimit) {
			t.Fatalf("parallelism %d: err = %v, want ErrStateLimit", par, err)
		}
		mustEqualResults(t, fmt.Sprintf("truncated par=%d", par), ref, got)
	}
}

func TestFingerprintCollisionsAreHarmless(t *testing.T) {
	// Degrading the fingerprint to two bits piles every state onto a
	// handful of shard chains; full-state confirmation must keep the
	// result identical.
	clean, err := Explore([]string{"0,0"}, gridExpand(25), Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	degraded, err := Explore([]string{"0,0"}, gridExpand(25), Options{Parallelism: 4, degradeFingerprint: true})
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	mustEqualResults(t, "degraded fingerprint", clean, degraded)
}

func TestNoInitialStates(t *testing.T) {
	_, err := Explore(nil, chainExpand(3), Options{})
	if !errors.Is(err, ErrNoInitialStates) {
		t.Fatalf("err = %v, want ErrNoInitialStates", err)
	}
}

func TestDuplicateInitialStatesCollapse(t *testing.T) {
	res, err := Explore([]int{7, 7, 7}, chainExpand(9), Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(res.Inits) != 1 || res.Inits[0] != 0 {
		t.Fatalf("inits = %v, want [0]", res.Inits)
	}
}

func TestStatsTelemetry(t *testing.T) {
	var st Stats
	res, err := Explore([]string{"0,0"}, gridExpand(30), Options{Parallelism: 2, Stats: &st})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	want := 30 * 30
	if st.States != want || res.Stats.States != want {
		t.Fatalf("stats states = %d/%d, want %d", st.States, res.Stats.States, want)
	}
	if st.Edges != 2*30*29 {
		t.Fatalf("stats edges = %d, want %d", st.Edges, 2*30*29)
	}
	// Grid diamonds: every interior state is generated twice.
	if st.DedupHits == 0 {
		t.Fatal("expected dedup hits on the grid")
	}
	if st.Depth != 59 {
		t.Fatalf("depth = %d, want 59", st.Depth)
	}
	if st.PeakFrontier != 30 {
		t.Fatalf("peak frontier = %d, want 30", st.PeakFrontier)
	}
	var sum uint64
	for _, ws := range st.WorkerSteps {
		sum += ws
	}
	if sum != st.Expansions || st.Expansions != uint64(want) {
		t.Fatalf("worker steps sum %d, expansions %d, want %d", sum, st.Expansions, want)
	}
	if st.StatesPerSec <= 0 || st.Elapsed <= 0 {
		t.Fatalf("rate/elapsed not populated: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestSelfLoopsAndReconvergence(t *testing.T) {
	// A state that emits itself and a shared sink: exercises dedup of the
	// expanding state itself.
	expand := func(s int, x *Ctx[int]) {
		switch s {
		case 0:
			x.Emit(0, "self", 0)
			x.Emit(1, "a", 0)
			x.Emit(2, "b", 1)
		case 1, 2:
			x.Emit(3, "sink", 0)
		}
	}
	ref, err := Explore([]int{0}, expand, Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(ref.States) != 4 {
		t.Fatalf("states = %d, want 4", len(ref.States))
	}
	if got := ref.Edges[0][0]; got.To != 0 || got.Label != "self" {
		t.Fatalf("self loop edge = %+v", got)
	}
	for _, par := range []int{2, 4} {
		got, err := Explore([]int{0}, expand, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		mustEqualResults(t, fmt.Sprintf("selfloop par=%d", par), ref, got)
	}
}
