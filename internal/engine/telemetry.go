package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// DefaultSnapshotEvery is the period of timer-driven progress snapshots
// when Options.Sink is set and Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = time.Second

// telemetry is the engine side of the observability layer: the
// coordinator publishes deterministic events (run_start, one level event
// per barrier, truncated, run_end) synchronously, and a monitor goroutine
// publishes timer-driven snapshots built purely from atomic reads — the
// interned-state counter, the per-worker step counters, and the
// barrier-published aggregates below. The monitor never touches worker
// state, so attaching a sink cannot perturb the exploration; the
// determinism tests assert byte-identical Results with and without one.
//
// The struct is deliberately non-generic: Explore hands it closures over
// the explorer's atomics instead of the explorer itself.
type telemetry struct {
	sink      obs.Sink
	start     time.Time
	maxStates int
	workers   int

	// states and workerSteps read the explorer's live atomic counters;
	// storeStats snapshots the visited-set backend (also concurrency-safe).
	states      func() int
	workerSteps func() []uint64
	storeStats  func() store.Stats
	// schedGauges reads the work-stealing scheduler's live counters
	// (steals, handoff batches, queue occupancy); it returns zeros when no
	// free-running discovery phase is live. Like WorkerSteps, the gauges
	// are scheduling-dependent and appear only in snapshots the trace
	// digest ignores.
	schedGauges func() (uint64, uint64, uint64)
	// phases reads the live phase-attribution aggregate (and the sampled
	// expansion-latency histogram, nil while empty). Pure timing — always
	// digest-excluded, stamped into every snapshot.
	phases func() (obs.Phases, *obs.HistSnap)

	// Barrier-published live values: written by the coordinator between
	// levels, read by the monitor goroutine.
	depth        atomic.Int64
	frontier     atomic.Int64
	peakFrontier atomic.Int64
	dedup        atomic.Uint64
	canonHits    atomic.Uint64
	ample        atomic.Uint64
	deferred     atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// newTelemetry wires a telemetry for one Explore run and publishes its
// run_start event.
func newTelemetry(sink obs.Sink, start time.Time, maxStates, workers, inits int,
	canonOn, porOn bool, storeCfg store.Config, sched string,
	states func() int, workerSteps func() []uint64, storeStats func() store.Stats,
	schedGauges func() (uint64, uint64, uint64),
	phases func() (obs.Phases, *obs.HistSnap)) *telemetry {
	t := &telemetry{
		sink:        sink,
		start:       start,
		maxStates:   maxStates,
		workers:     workers,
		states:      states,
		workerSteps: workerSteps,
		storeStats:  storeStats,
		schedGauges: schedGauges,
		phases:      phases,
	}
	cfg := &obs.RunConfig{
		Workers:   workers,
		MaxStates: maxStates,
		Inits:     inits,
		Canon:     canonOn,
		POR:       porOn,
		Store:     string(storeCfg.ResolvedKind()),
		Sched:     sched,
	}
	if storeCfg.ResolvedKind() == store.Spill {
		cfg.MaxStoreBytes = storeCfg.MaxBytes
		if cfg.MaxStoreBytes == 0 {
			cfg.MaxStoreBytes = store.DefaultMaxBytes
		}
	}
	sink.Publish(obs.Event{Kind: obs.KindRunStart, Config: cfg})
	return t
}

// startMonitor launches the snapshot goroutine. every <= 0 disables it
// (barrier and final events are still published).
func (t *telemetry) startMonitor(every time.Duration) {
	if every <= 0 {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func() {
		defer close(t.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				snap := t.liveSnapshot()
				t.sink.Publish(obs.Event{Kind: obs.KindSnapshot, Snapshot: &snap})
			}
		}
	}()
}

// stopMonitor halts the snapshot goroutine and waits for it, so no event
// can trail the run_end the coordinator publishes next. Idempotent.
func (t *telemetry) stopMonitor() {
	if t.stop == nil {
		return
	}
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	<-t.done
}

// liveSnapshot assembles a timer-driven snapshot from atomics only. The
// per-edge counters (dedup, canon, POR) are barrier-fresh; States,
// WorkerSteps and the store figures are live.
func (t *telemetry) liveSnapshot() obs.ProgressSnapshot {
	steps := t.workerSteps()
	var exp uint64
	for _, s := range steps {
		exp += s
	}
	snap := obs.ProgressSnapshot{
		Elapsed:         time.Since(t.start),
		States:          t.states(),
		Depth:           int(t.depth.Load()),
		Frontier:        int(t.frontier.Load()),
		PeakFrontier:    int(t.peakFrontier.Load()),
		Expansions:      exp,
		DedupHits:       t.dedup.Load(),
		CanonHits:       t.canonHits.Load(),
		AmpleStates:     t.ample.Load(),
		DeferredActions: t.deferred.Load(),
		WorkerSteps:     steps,
		MaxStates:       t.maxStates,
	}
	if t.schedGauges != nil {
		snap.Steals, snap.HandoffBatches, snap.QueueOccupancy = t.schedGauges()
	}
	t.stampStore(&snap)
	return snap
}

// stampStore adds the store and peak-RSS figures to a snapshot. These are
// observability-only: scheduling-dependent (page layout, process RSS) and
// therefore excluded from trace digests, like Elapsed and WorkerSteps.
func (t *telemetry) stampStore(snap *obs.ProgressSnapshot) {
	ss := t.storeStats()
	snap.StoreBytesInRAM = ss.BytesInRAM
	snap.StoreBytesSpilled = ss.BytesSpilled
	snap.StoreSegments = ss.Segments
	snap.StoreSegmentReads = ss.SegmentReads
	snap.StoreCollisionConfirms = ss.CollisionConfirms
	snap.StorePageCacheHits = ss.PageCacheHits
	if ss.ReadLat.Count > 0 {
		rl := ss.ReadLat
		snap.StoreReadLat = &rl
	}
	if ss.WriteLat.Count > 0 {
		wl := ss.WriteLat
		snap.StoreWriteLat = &wl
	}
	snap.StoreLossy = ss.Lossy
	snap.PeakRSSBytes = obs.PeakRSS()
	if t.phases != nil {
		if ph, lat := t.phases(); !ph.Zero() {
			snap.Phases = &ph
			snap.ExpandLat = lat
		}
	}
}

// barrierSnapshot assembles a barrier-accurate snapshot after a level
// completed: every counter is exact and worker-count-invariant except
// WorkerSteps and Elapsed (which the digest layer ignores).
func (t *telemetry) barrierSnapshot(states, depth, frontier, peak int) obs.ProgressSnapshot {
	steps := t.workerSteps()
	var exp uint64
	for _, s := range steps {
		exp += s
	}
	snap := obs.ProgressSnapshot{
		Elapsed:         time.Since(t.start),
		States:          states,
		Depth:           depth,
		Frontier:        frontier,
		PeakFrontier:    peak,
		Expansions:      exp,
		DedupHits:       t.dedup.Load(),
		CanonHits:       t.canonHits.Load(),
		AmpleStates:     t.ample.Load(),
		DeferredActions: t.deferred.Load(),
		WorkerSteps:     steps,
		MaxStates:       t.maxStates,
	}
	t.stampStore(&snap)
	return snap
}

// level is the coordinator's barrier hook: it refreshes the
// barrier-published aggregates from the (quiescent) workers and publishes
// the level event. frontier is the size of the next level about to start.
func publishLevel[S comparable](t *telemetry, e *explorer[S], states, depth, frontier, peak int) {
	var dedup, canon, ample, deferred uint64
	for _, ws := range e.workers {
		dedup += ws.dedup
		canon += ws.canonHits
		ample += ws.ampleStates
		deferred += ws.deferred
	}
	t.dedup.Store(dedup)
	t.canonHits.Store(canon)
	t.ample.Store(ample)
	t.deferred.Store(deferred)
	t.depth.Store(int64(depth))
	t.frontier.Store(int64(frontier))
	t.peakFrontier.Store(int64(peak))
	snap := t.barrierSnapshot(states, depth, frontier, peak)
	t.sink.Publish(obs.Event{Kind: obs.KindLevel, Snapshot: &snap})
}

// synthLevel publishes one synthesized level (or truncated) event for the
// free-running scheduler, whose discovery has no barriers to publish from:
// the counters come from the post-discovery levelization instead of live
// worker state, and reproduce publishLevel's digest-relevant fields
// exactly (POR never composes with free-running discovery, so ample and
// deferred are genuinely zero). The barrier-published atomics are
// refreshed so a trailing monitor snapshot stays coherent.
func (t *telemetry) synthLevel(kind obs.EventKind, states, depth, frontier, peak int, exp, dedup, canonHits uint64, trunc bool) {
	t.dedup.Store(dedup)
	t.canonHits.Store(canonHits)
	t.depth.Store(int64(depth))
	t.frontier.Store(int64(frontier))
	t.peakFrontier.Store(int64(peak))
	steps := t.workerSteps()
	snap := obs.ProgressSnapshot{
		Elapsed:      time.Since(t.start),
		States:       states,
		Depth:        depth,
		Frontier:     frontier,
		PeakFrontier: peak,
		Expansions:   exp,
		DedupHits:    dedup,
		CanonHits:    canonHits,
		WorkerSteps:  steps,
		MaxStates:    t.maxStates,
		Truncated:    trunc,
	}
	t.stampStore(&snap)
	t.sink.Publish(obs.Event{Kind: kind, Snapshot: &snap})
}

// truncated publishes the limit-trip event.
func (t *telemetry) truncated(states, depth, peak int) {
	snap := t.barrierSnapshot(states, depth, 0, peak)
	snap.Truncated = true
	t.sink.Publish(obs.Event{Kind: obs.KindTruncated, Snapshot: &snap})
}

// runEnd stops the monitor and publishes the final snapshot, whose totals
// equal the run's Stats by construction (both come from Stats.Snapshot).
func (t *telemetry) runEnd(st Stats) {
	t.stopMonitor()
	snap := st.Snapshot()
	snap.MaxStates = t.maxStates
	t.sink.Publish(obs.Event{Kind: obs.KindRunEnd, Snapshot: &snap})
}
