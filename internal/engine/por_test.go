package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// gridIndep declares every pair of grid moves independent, which is sound:
// "right" and "up" fully commute, disable nothing, and the tests check no
// move-specific predicate.
func gridIndep(_ string, _, _ Action[string]) bool { return true }

func TestPORGridStaircase(t *testing.T) {
	// With right ⫫ up everywhere, the ample set at each interior state is
	// the singleton {right}: the n×n diamond lattice collapses to one
	// staircase path of 2n-1 states. The grid is a leveled DAG (depth =
	// x+y), so the cycle proviso never fires.
	const n = 12
	res, err := Explore([]string{"0,0"}, gridExpand(n), Options{
		Independent: Independence[string](gridIndep),
		VerifyPOR:   1,
	})
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	if len(res.States) != 2*n-1 {
		t.Fatalf("POR states = %d, want %d", len(res.States), 2*n-1)
	}
	st := res.Stats
	if !st.POREnabled {
		t.Fatalf("POREnabled = false on a POR run")
	}
	if st.AmpleStates != n-1 {
		t.Fatalf("AmpleStates = %d, want %d", st.AmpleStates, n-1)
	}
	if st.DeferredActions != n-1 {
		t.Fatalf("DeferredActions = %d, want %d", st.DeferredActions, n-1)
	}
	if rf := st.PORReductionFactor(); rf <= 1 {
		t.Fatalf("PORReductionFactor = %v, want > 1", rf)
	}
	if !strings.Contains(st.String(), "por-branch=") {
		t.Fatalf("Stats.String() missing POR telemetry: %q", st.String())
	}
}

func TestPORDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(par, maxStates int) (*Result[string], error) {
		return Explore([]string{"0,0"}, gridExpand(40), Options{
			Parallelism: par,
			MaxStates:   maxStates,
			Independent: func(_ string, _, _ Action[string]) bool { return false }, // plain func form; no pair independent = full graph
		})
	}
	for _, maxStates := range []int{0, 300} {
		ref, err := run(1, maxStates)
		wantTrunc := maxStates != 0
		if wantTrunc != errors.Is(err, ErrStateLimit) {
			t.Fatalf("max=%d: sequential err = %v", maxStates, err)
		}
		for _, par := range []int{2, 8} {
			got, err := run(par, maxStates)
			if wantTrunc != errors.Is(err, ErrStateLimit) {
				t.Fatalf("max=%d par=%d: err = %v", maxStates, par, err)
			}
			mustEqualResults(t, fmt.Sprintf("max=%d par=%d", maxStates, par), ref, got)
		}
	}
	// An all-dependent relation must reproduce the unreduced graph exactly.
	full, err := Explore([]string{"0,0"}, gridExpand(40), Options{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	porFull, err := run(1, 0)
	if err != nil {
		t.Fatalf("POR all-dependent explore: %v", err)
	}
	mustEqualResults(t, "all-dependent vs unreduced", full, porFull)
}

// ringFlagExpand is a cyclic system exercising the C3 proviso: states are
// "k,flag" with k on a ring of size m; "step" (actor 0) advances k mod m and
// "set" (actor 1) raises the flag once. The two actions commute (the diamond
// closes at ((k+1) mod m, 1)), so a proviso-free reduction could chase
// "step" around the ring forever and starve "set", never discovering the
// flag=1 half of the space.
func ringFlagExpand(m int) ExpandFunc[string] {
	return func(s string, x *Ctx[string]) {
		var k, flag int
		fmt.Sscanf(s, "%d,%d", &k, &flag)
		x.Emit(fmt.Sprintf("%d,%d", (k+1)%m, flag), "step", 0)
		if flag == 0 {
			x.Emit(fmt.Sprintf("%d,1", k), "set", 1)
		}
	}
}

func TestPORCycleProvisoPreventsStarvation(t *testing.T) {
	const m = 6
	indep := func(_ string, a, b Action[string]) bool { return a.Actor != b.Actor }
	ref, err := Explore([]string{"0,0"}, ringFlagExpand(m), Options{
		Independent: Independence[string](indep),
		VerifyPOR:   1,
	})
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	// Every state of the full space must still be reachable: the proviso
	// forces a full expansion where "step" closes the ring, releasing "set".
	if len(ref.States) != 2*m {
		t.Fatalf("POR states = %d, want %d (starved states?)", len(ref.States), 2*m)
	}
	flagged := 0
	for _, s := range ref.States {
		if strings.HasSuffix(s, ",1") {
			flagged++
		}
	}
	if flagged != m {
		t.Fatalf("flag=1 states = %d, want %d", flagged, m)
	}
	if ref.Stats.DeferredActions == 0 {
		t.Fatalf("DeferredActions = 0, want deferrals before the proviso fires")
	}
	for _, par := range []int{2, 8} {
		got, err := Explore([]string{"0,0"}, ringFlagExpand(m), Options{
			Parallelism: par,
			Independent: Independence[string](indep),
			VerifyPOR:   1,
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		mustEqualResults(t, fmt.Sprintf("par=%d", par), ref, got)
	}
}

// brokenDiamondExpand declares a 5-state system where actions "a" and "b"
// are both enabled at 0 but do not commute: 0 -a-> 1 -b-> 3 versus
// 0 -b-> 2 -a-> 4.
func brokenDiamondExpand(s int, x *Ctx[int]) {
	switch s {
	case 0:
		x.Emit(1, "a", 0)
		x.Emit(2, "b", 1)
	case 1:
		x.Emit(3, "b", 1)
	case 2:
		x.Emit(4, "a", 0)
	}
}

// disablingExpand declares a system where "b" is enabled at 0 but "a"
// disables it: 0 -a-> 1 has no "b" successor.
func disablingExpand(s int, x *Ctx[int]) {
	switch s {
	case 0:
		x.Emit(1, "a", 0)
		x.Emit(2, "b", 1)
	case 2:
		x.Emit(3, "a", 0)
	}
}

func TestVerifyPORCatchesBrokenDiamond(t *testing.T) {
	allIndep := func(_ int, _, _ Action[int]) bool { return true }
	for _, par := range []int{1, 4} {
		_, err := Explore([]int{0}, brokenDiamondExpand, Options{
			Parallelism: par,
			Independent: allIndep,
			VerifyPOR:   1,
		})
		if !errors.Is(err, ErrPORUnsound) {
			t.Fatalf("par=%d: err = %v, want ErrPORUnsound", par, err)
		}
		if !strings.Contains(err.Error(), "diamond does not close") {
			t.Fatalf("par=%d: err = %v, want diamond complaint", par, err)
		}
		_, err = Explore([]int{0}, disablingExpand, Options{
			Parallelism: par,
			Independent: allIndep,
			VerifyPOR:   1,
		})
		if !errors.Is(err, ErrPORUnsound) {
			t.Fatalf("par=%d: disabling err = %v, want ErrPORUnsound", par, err)
		}
		if !strings.Contains(err.Error(), "disables") {
			t.Fatalf("par=%d: err = %v, want disabling complaint", par, err)
		}
	}
}

func TestIndependentRejectsWrongType(t *testing.T) {
	_, err := Explore([]string{"0,0"}, gridExpand(4), Options{Independent: 42})
	if err == nil || !strings.Contains(err.Error(), "Options.Independent") {
		t.Fatalf("err = %v, want Independent type error", err)
	}
	_, err = Explore([]string{"0,0"}, gridExpand(4), Options{
		Independent: func(_ int, _, _ Action[int]) bool { return true },
	})
	if err == nil || !strings.Contains(err.Error(), "Options.Independent") {
		t.Fatalf("err = %v, want Independent type error for mismatched state type", err)
	}
}

func TestPORComposesWithCanon(t *testing.T) {
	// POR and the mirror quotient stack on the grid: the quotient halves the
	// space, the ample sets thin the branching, and the composed run is
	// still deterministic at any worker count with both checks enabled.
	run := func(par int) (*Result[string], error) {
		return Explore([]string{"0,0"}, gridExpand(16), Options{
			Parallelism: par,
			Canon:       Canonicalizer[string](mirrorGridCanon),
			VerifyCanon: 1,
			Independent: Independence[string](gridIndep),
			VerifyPOR:   1,
		})
	}
	ref, err := run(1)
	if err != nil {
		t.Fatalf("composed explore: %v", err)
	}
	if !ref.Stats.CanonEnabled || !ref.Stats.POREnabled {
		t.Fatalf("expected both CanonEnabled and POREnabled, got %+v", ref.Stats)
	}
	full, err := Explore([]string{"0,0"}, gridExpand(16), Options{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	if len(ref.States) >= len(full.States)/2 {
		t.Fatalf("composed states = %d, want < half of full %d", len(ref.States), len(full.States))
	}
	for _, par := range []int{2, 8} {
		got, err := run(par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		mustEqualResults(t, fmt.Sprintf("composed par=%d", par), ref, got)
	}
}
