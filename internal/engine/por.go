package engine

import (
	"errors"
	"fmt"
	"sort"
)

// Action is one transition out of a state, as emitted by ExpandFunc: the
// successor state together with the label/actor pair that identifies the
// event. Independence relations and the VerifyPOR falsifier both speak in
// Actions; To is the raw successor (pre-canonicalization), because
// independence is a property of the system's transition relation, not of
// the symmetry quotient layered on top of it.
type Action[S comparable] struct {
	To    S
	Label string
	Actor int
}

// Independence declares when two actions enabled at the same state commute.
// When a relation is supplied via Options.Independent, the engine performs
// ample-set partial-order reduction: at each state it partitions the enabled
// actions into dependence-connected components and, when a proper-subset
// component also satisfies the cycle proviso, explores only that component —
// the deferred actions are guaranteed (by the contract below) to remain
// enabled and to lead to the same states along the explored orders.
//
// indep(s, a, b) may be called for any two distinct actions a, b enabled at
// a reachable state s, in either order; it must be symmetric, concurrency
// safe, and a pure function of its arguments. Returning true asserts the
// full commuting-diamond package:
//
//   - forward diamond: from s, taking a then b's event reaches the same
//     state as taking b then a's event (and both second steps exist, i.e.
//     neither action disables the other);
//   - persistence: no action dependent on a ∈ ample can be reached from s
//     without first taking an action of the ample set (equivalently: events
//     independent of the ample set cannot, over any number of steps outside
//     it, enable an event dependent on it);
//   - invisibility: a and b do not toggle any predicate the downstream
//     analysis checks (visible actions must be declared dependent on
//     everything, which forces full expansion where they occur).
//
// Returning false is always sound — it only reduces the reduction. See
// DESIGN.md's "Independence contract" for the per-system proof obligations
// and for what the sampled VerifyPOR check does and does not catch.
type Independence[S comparable] func(s S, a, b Action[S]) bool

// ErrPORUnsound is wrapped by the error Explore returns when the VerifyPOR
// safety check catches an independence relation declaring a non-commuting
// (or disabling) pair of actions independent.
var ErrPORUnsound = errors.New("engine: independence relation failed soundness check")

// Visibility marks the actions the downstream analysis can observe — those
// that may change the truth of a checked predicate (a decision, an election,
// a delivery acknowledgment). Ample-set theory's C2 condition: a
// proper ample set must contain only invisible actions, because the reduced
// graph realizes the deferred actions in fewer interleavings and a visible
// action's orderings are exactly what the predicates can tell apart.
// Visible actions may still be DEFERRED (they stay enabled and are explored
// from later states); they just force their own dependence component to be
// passed over. A nil visibility treats every action as invisible, leaving
// the entire obligation on the independence relation (e.g. by declaring
// visible actions dependent on everything, which forces full expansion
// where they occur — sound, but coarser).
type Visibility[S comparable] func(s S, a Action[S]) bool

// indepFor resolves the dynamically-typed Options.Independent into a typed
// relation for the explored state type. Both the named Independence[S] and
// the equivalent plain func type are accepted; anything else is an error (a
// silent nil would quietly explore the full space).
func indepFor[S comparable](v any) (Independence[S], error) {
	switch r := v.(type) {
	case nil:
		return nil, nil
	case Independence[S]:
		return r, nil
	case func(S, Action[S], Action[S]) bool:
		return r, nil
	default:
		var zero S
		return nil, fmt.Errorf("engine: Options.Independent has type %T, want func(%T, Action, Action) bool", v, zero)
	}
}

// visFor resolves the dynamically-typed Options.Visible into a typed
// visibility predicate for the explored state type.
func visFor[S comparable](v any) (Visibility[S], error) {
	switch p := v.(type) {
	case nil:
		return nil, nil
	case Visibility[S]:
		return p, nil
	case func(S, Action[S]) bool:
		return p, nil
	default:
		var zero S
		return nil, fmt.Errorf("engine: Options.Visible has type %T, want func(%T, Action) bool", v, zero)
	}
}

// porAction is one collected transition during a POR expansion: the raw
// action (for the independence relation and the falsifier) plus the
// canonical successor actually interned.
type porAction[S comparable] struct {
	act Action[S]
	to  S // canonical successor; == act.To when no canonicalizer is set
}

// ampleSet partitions the actions enabled at s into dependence-connected
// components (two actions are connected when the relation does NOT declare
// them independent) and returns the member indices of the best component,
// in first-occurrence order, that is a proper subset of the enabled set and
// passes the cycle proviso. It returns nil when no component qualifies, in
// which case the caller expands fully.
//
// Candidate components are ranked by (fewest members, smallest member
// Actor, first occurrence). Fewest members defers the most work; the
// stable actor tiebreak is what turns local deferrals into global state
// savings: when every state defers the same processes' actions, the
// product-of-interleavings lattice collapses to a staircase, whereas a
// per-state arbitrary choice re-reaches the deferred orderings from
// neighboring states and saves almost nothing. Any deterministic rule is
// equally sound; this one is also deterministic across worker counts
// because it is a pure function of the state's action list.
//
// The proviso (C3) rejects a candidate component if any member's successor
// is already interned with a provisional id < hi — that is, discovered
// before the current BFS level began. Every cycle of the reduced graph must
// contain a non-depth-increasing edge, whose destination was necessarily
// interned on an earlier level, so the proviso guarantees each cycle
// contains at least one fully expanded state: no action is deferred forever
// around a cycle. The predicate "interned with id < hi" depends only on
// which states exist at the previous level barrier — a schedule-independent
// set — so the reduced graph stays byte-identical at any worker count.
func (e *explorer[S]) ampleSet(s S, acts []porAction[S], uf []int32, hi int) []int32 {
	k := len(acts)
	for i := range uf {
		uf[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			ri, rj := find(int32(i)), find(int32(j))
			if ri == rj {
				continue
			}
			if !e.indep(s, acts[i].act, acts[j].act) {
				// Union by smaller root so a component's root is always its
				// first-occurring member.
				if ri < rj {
					uf[rj] = ri
				} else {
					uf[ri] = rj
				}
			}
		}
	}
	// Rank component roots by (smallest member actor, first occurrence);
	// roots are minimal members by construction, so ascending root order is
	// first-occurrence order and the sort below is stable across schedules.
	type cand struct {
		root     int32
		size     int
		minActor int
	}
	cands := make([]cand, 0, k)
	for i := 0; i < k; i++ {
		if find(int32(i)) != int32(i) {
			continue
		}
		size, minActor := 1, acts[i].act.Actor
		for j := i + 1; j < k; j++ {
			if find(int32(j)) == int32(i) {
				size++
				if acts[j].act.Actor < minActor {
					minActor = acts[j].act.Actor
				}
			}
		}
		cands = append(cands, cand{root: int32(i), size: size, minActor: minActor})
	}
	if len(cands) < 2 {
		return nil // single component: no reduction possible
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].size != cands[b].size {
			return cands[a].size < cands[b].size
		}
		if cands[a].minActor != cands[b].minActor {
			return cands[a].minActor < cands[b].minActor
		}
		return cands[a].root < cands[b].root
	})
	for _, c := range cands {
		members := make([]int32, 0, k)
		for j := c.root; j < int32(k); j++ {
			if find(j) == c.root {
				members = append(members, j)
			}
		}
		ok := true
		for _, m := range members {
			// C2: a proper ample set must be invisible. C3: it must not
			// close a cycle back into an already-discovered level.
			if (e.visible != nil && e.visible(s, acts[m].act)) || e.probeOld(acts[m].to, hi) {
				ok = false
				break
			}
		}
		if ok {
			return members
		}
	}
	return nil
}

// probeOld reports whether state s is already interned with a provisional id
// assigned before the current level began (id < hi). States interned during
// the current level always receive ids ≥ hi, so the answer is independent of
// how this level's work is scheduled across workers.
func (e *explorer[S]) probeOld(s S, hi int) bool {
	id, ok := e.store.Probe(s)
	return ok && id < int32(hi)
}

// checkPOR verifies the commuting-diamond half of the independence contract
// at one sampled state: for every pair of enabled actions the relation
// declares independent, executing them in both orders must be possible and
// must land in the same state (compared after canonicalization when a
// canonicalizer is installed, since POR over a quotient needs the diamond to
// close in the quotient). Matching "the same event after the other action"
// goes by (Label, Actor), which is how the engine identifies events across
// states.
//
// Like VerifyCanon this is a falsifier, not a proof: it catches broken
// diamonds on sampled reachable states, but the persistence and visibility
// obligations quantify over futures and predicates it cannot see. Those
// remain per-system arguments (see DESIGN.md).
func (e *explorer[S]) checkPOR(s S, acts []porAction[S]) error {
	type key struct {
		label string
		actor int
	}
	// succ lazily expands the raw successor of one enabled action, bucketing
	// that state's own successors by event key. Canonicalization (when
	// installed) is applied directly, bypassing worker telemetry: these are
	// probe expansions, not exploration.
	cache := make([]map[key][]S, len(acts))
	succ := func(i int) map[key][]S {
		if cache[i] == nil {
			m := make(map[key][]S)
			e.expand(acts[i].act.To, e.collectCtx(func(to S, label string, actor int) {
				if e.canon != nil {
					to = e.canon(to)
				}
				m[key{label, actor}] = append(m[key{label, actor}], to)
			}))
			cache[i] = m
		}
		return cache[i]
	}
	for i := 0; i < len(acts); i++ {
		for j := i + 1; j < len(acts); j++ {
			a, b := acts[i].act, acts[j].act
			if !e.indep(s, a, b) {
				continue
			}
			ab := succ(i)[key{b.Label, b.Actor}] // a first, then b's event
			ba := succ(j)[key{a.Label, a.Actor}] // b first, then a's event
			if len(ab) == 0 || len(ba) == 0 {
				return fmt.Errorf("%w: at %v, actions (%q,%d) and (%q,%d) declared independent but one disables the other",
					ErrPORUnsound, s, a.Label, a.Actor, b.Label, b.Actor)
			}
			if !sameMultiset(ab, ba) {
				return fmt.Errorf("%w: at %v, actions (%q,%d) and (%q,%d) declared independent but the diamond does not close: %v vs %v",
					ErrPORUnsound, s, a.Label, a.Actor, b.Label, b.Actor, ab, ba)
			}
		}
	}
	return nil
}

// sameMultiset reports whether xs and ys contain the same states with the
// same multiplicities.
func sameMultiset[S comparable](xs, ys []S) bool {
	if len(xs) != len(ys) {
		return false
	}
	counts := make(map[S]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	for _, y := range ys {
		if counts[y] == 0 {
			return false
		}
		counts[y]--
	}
	return true
}
