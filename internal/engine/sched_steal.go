// Work-stealing exploration scheduler: the Options.Sched == "steal"
// discovery phase. Instead of the fork/join level loop, a persistent pool
// of workers owns disjoint slices of the visited set's fingerprint shards
// (worker w owns every shard s with s % nw == w), keeps newly discovered
// states on private deques, forwards successors it does not own to the
// owning worker in fixed-capacity batches, and steals from peers when its
// own queues run dry. Discovery runs barrier-free; global termination is
// detected with a token count (one token per active worker plus one per
// in-flight batch — zero tokens means no worker can ever receive work
// again).
//
// Determinism is free: the discovery phase only decides WHICH states are
// reachable (a property of the system, not the schedule) and records each
// state's successor list (a pure function of the state). The sequential
// replay pass then renumbers the graph into sequential-BFS order exactly
// as it does for the barrier scheduler, so Results, Stats invariants and
// trace digests are byte-identical across schedulers.
//
// Two submodes share the Sched == "steal" surface:
//
//   - Free-running (no POR, store kind != spill): the full machinery above.
//     Per-emission counters that depend on knowing freshness at the emitter
//     (DedupHits) are instead derived after termination from the recorded
//     graph — see finishFree for the exact identities — and the per-level
//     telemetry events are synthesized from a post-hoc levelization of the
//     recorded spans, reproducing the barrier scheduler's event stream
//     field for field.
//
//   - Epoch mode (POR enabled, or a spill store): ample-set selection needs
//     a level-coherent view of the visited set (the C3 proviso probes
//     "discovered in an earlier level") and the spill store needs quiescent
//     maintenance windows, so discovery keeps the level structure but runs
//     it on a persistent worker pool (epochPool) instead of per-level
//     goroutine forks. Semantically identical to the barrier loop.
//
// Truncation under free-running discovery is epoch-granular: workers race
// past the limit by design (they stop as soon as any worker observes the
// store over the limit, then drain in-flight batches so every recorded
// emission resolves to an id), and a sequential completion pass expands
// whatever states below the cutoff depth the stopped workers abandoned.
// The cutoff depth k is the first level where the cumulative state count
// exceeds the limit — the same level at which the barrier scheduler stops
// — so the replay pass sees a superset of the barrier scheduler's spans
// that agrees exactly on every span replay can reach, and produces the
// same canonically truncated Result and ErrStateLimit.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

const (
	// handoffBatchCap is the entry capacity of one cross-worker handoff
	// batch: emissions bound for a peer-owned shard accumulate until the
	// batch fills (or the sender runs out of local work and flushes), so a
	// channel transfer amortizes over up to this many states.
	handoffBatchCap = 256
	// edgeChunkBits sizes the per-worker edge arena chunks (2^16 rawEdges).
	// Chunks are fixed-capacity and never reallocate, so a *int32 into a
	// chunk's "to" field stays valid for the whole run — that is what lets
	// an emitter record an edge immediately and have the owning worker
	// resolve the successor id through the pointer later.
	edgeChunkBits = 16
	edgeChunkCap  = 1 << edgeChunkBits
	// stealBatch caps how many deque entries one steal transfers.
	stealBatch = 64
	// privCap is the soft bound on a worker's private (unlocked) work
	// stack; overflow publishes the oldest half to the lockable deque where
	// peers can steal it.
	privCap = 256
	// spanPageBits sizes pagedSpans pages (2^13 spans per page).
	spanPageBits = 13
	spanPageCap  = 1 << spanPageBits
)

// spanPage is one pagedSpans page: the spans of spanPageCap consecutive
// provisional ids, plus (under a canonicalizer) the per-state count of
// canonicalizer remaps its expansion performed — the levelized telemetry
// synthesis needs that count per level, and the expander is the only one
// who knows it.
type spanPage struct {
	sp []span
	cd []int32
}

// pagedSpans is the free-running scheduler's replacement for the
// explorer's flat spans/expanded slices: a two-level paged table workers
// can write concurrently at distinct ids without barriers. Pages are
// created under a mutex and published atomically (the pagetab pattern);
// span writes within a page go to distinct indices (each id is expanded by
// exactly one worker) and are read only after the termination join, whose
// happens-before edge covers them. A span with worker == -1 marks an
// unexpanded id.
type pagedSpans struct {
	mu    sync.Mutex
	spine atomic.Pointer[[]atomic.Pointer[spanPage]]
	canon bool
}

func newPagedSpans(canon bool) *pagedSpans {
	ps := &pagedSpans{canon: canon}
	spine := make([]atomic.Pointer[spanPage], 0)
	ps.spine.Store(&spine)
	return ps
}

// page returns the page holding id index pi, creating and publishing it if
// needed.
func (ps *pagedSpans) page(pi int) *spanPage {
	spine := *ps.spine.Load()
	if pi < len(spine) {
		if pg := spine[pi].Load(); pg != nil {
			return pg
		}
	}
	return ps.grow(pi)
}

func (ps *pagedSpans) grow(pi int) *spanPage {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	spine := *ps.spine.Load()
	if pi >= len(spine) {
		next := make([]atomic.Pointer[spanPage], 2*pi+2)
		for i := range spine {
			next[i].Store(spine[i].Load())
		}
		ps.spine.Store(&next)
		spine = next
	}
	if pg := spine[pi].Load(); pg != nil {
		return pg
	}
	pg := &spanPage{sp: make([]span, spanPageCap)}
	for i := range pg.sp {
		pg.sp[i].worker = -1
	}
	if ps.canon {
		pg.cd = make([]int32, spanPageCap)
	}
	spine[pi].Store(pg)
	return pg
}

func (ps *pagedSpans) set(id int32, sp span, cdelta int32) {
	pg := ps.page(int(id) >> spanPageBits)
	i := int(id) & (spanPageCap - 1)
	pg.sp[i] = sp
	if pg.cd != nil {
		pg.cd[i] = cdelta
	}
}

// get returns the recorded span and canon-remap delta of id; a span with
// worker == -1 (also returned for ids whose page was never created) means
// the id was interned but not expanded.
func (ps *pagedSpans) get(id int32) (span, int32) {
	spine := *ps.spine.Load()
	pi := int(id) >> spanPageBits
	if pi >= len(spine) {
		return span{worker: -1}, 0
	}
	pg := spine[pi].Load()
	if pg == nil {
		return span{worker: -1}, 0
	}
	i := int(id) & (spanPageCap - 1)
	var cd int32
	if pg.cd != nil {
		cd = pg.cd[i]
	}
	return pg.sp[i], cd
}

// capturedEmit is one emission's scheduling-independent signature — the
// fingerprint of the canonical successor, the label, and the actor — used
// by the free-running VerifyAliasing falsifier, which cannot compare
// interned ids (forwarded emissions resolve their ids asynchronously).
type capturedEmit struct {
	h     uint64
	label string
	actor int32
}

// handoffEnt is one forwarded emission: the successor's fingerprint, the
// arena slot the owner writes the resolved id into, and the state payload
// (either s, or — for the EmitBytes path — the blo:bhi byte range of the
// batch's buf; blo < 0 selects s).
type handoffEnt[S comparable] struct {
	h        uint64
	slot     *int32
	s        S
	blo, bhi int32
}

// handoffBatch carries up to handoffBatchCap forwarded emissions from src
// to dst. buf holds the byte payloads of EmitBytes entries, so the bytes
// path stays allocation-free: batches (with their ents and buf backing
// arrays) are recycled through the sender's free channel.
type handoffBatch[S comparable] struct {
	src, dst int32
	ents     []handoffEnt[S]
	buf      []byte
}

// stealWorker is one worker's scheduler-private state under free-running
// discovery.
type stealWorker[S comparable] struct {
	self int32

	// priv is the unlocked LIFO work stack only the owner touches; dq is
	// the lockable FIFO deque peers steal from (owner publishes priv
	// overflow to its tail, pops from head, thieves take from the tail).
	// dqLen mirrors len(dq)-head for the queue-occupancy gauge.
	priv  []int32
	mu    sync.Mutex
	dq    []int32
	head  int
	dqLen atomic.Int64

	// chunks is the worker's edge arena as fixed-capacity chunks (see
	// edgeChunkBits); cur aliases chunks[len(chunks)-1]. edges is the
	// global offset of the next append, so spans index across chunks.
	chunks [][]rawEdge
	cur    []rawEdge
	edges  int32

	// out[d] is the partial batch being assembled for worker d; inbox
	// receives batches from peers; free recycles this worker's batches
	// back after the receiver drained them.
	out   []*handoffBatch[S]
	inbox chan *handoffBatch[S]
	free  chan *handoffBatch[S]

	steals         atomic.Uint64
	handoffBatches atomic.Uint64
	handoffStates  atomic.Uint64

	// capture records the current expansion's emission signatures when the
	// sampled aliasing falsifier selected it; recheck is the re-expansion
	// buffer it is compared against.
	capturing bool
	capture   []capturedEmit
	recheck   []capturedEmit
}

// pushWork adds a freshly interned id to the owner's work stack,
// publishing the oldest half to the stealable deque when the stack
// overflows privCap.
func (sw *stealWorker[S]) pushWork(id int32) {
	if len(sw.priv) >= privCap {
		half := len(sw.priv) / 2
		sw.mu.Lock()
		sw.dq = append(sw.dq, sw.priv[:half]...)
		sw.mu.Unlock()
		sw.dqLen.Add(int64(half))
		n := copy(sw.priv, sw.priv[half:])
		sw.priv = sw.priv[:n]
	}
	sw.priv = append(sw.priv, id)
}

func (sw *stealWorker[S]) popPriv() (int32, bool) {
	n := len(sw.priv)
	if n == 0 {
		return 0, false
	}
	id := sw.priv[n-1]
	sw.priv = sw.priv[:n-1]
	return id, true
}

func (sw *stealWorker[S]) popShared() (int32, bool) {
	sw.mu.Lock()
	if sw.head >= len(sw.dq) {
		sw.mu.Unlock()
		return 0, false
	}
	id := sw.dq[sw.head]
	sw.head++
	if sw.head == len(sw.dq) {
		sw.dq = sw.dq[:0]
		sw.head = 0
	}
	sw.mu.Unlock()
	sw.dqLen.Add(-1)
	return id, true
}

// appendEdge records one rawEdge in the chunked arena and returns a stable
// pointer to its "to" field (chunks never reallocate, so the pointer stays
// valid; the owning worker writes the resolved id through it for forwarded
// emissions).
func (sw *stealWorker[S]) appendEdge(r rawEdge) *int32 {
	if len(sw.cur) == edgeChunkCap {
		sw.cur = make([]rawEdge, 0, edgeChunkCap)
		sw.chunks = append(sw.chunks, sw.cur)
	}
	sw.cur = append(sw.cur, r)
	sw.chunks[len(sw.chunks)-1] = sw.cur
	sw.edges++
	return &sw.cur[len(sw.cur)-1].to
}

// stealRun is the shared state of one free-running discovery phase.
type stealRun[S comparable] struct {
	e  *explorer[S]
	nw int32
	// ownMask is shardCount(nw)-1: the store's shard-selection mask, so
	// owner(h) = (h & ownMask) % nw puts every shard under exactly one
	// worker — the single-writer condition store.OwnedInterner needs.
	ownMask uint64
	limit   int
	// owned is the store's lock-skipping single-writer extension, nil when
	// the backend does not support it (ownership then still routes the
	// interning work, it just takes the shard lock).
	owned store.OwnedInterner[S]

	// tokens implements Dijkstra-style termination: it starts at nw (one
	// per worker), is incremented before every batch send and decremented
	// after the batch is processed, and a worker exchanges its token for a
	// blocking inbox wait when it runs out of work (idle). The count can
	// only reach zero when every worker is idle and no batch is in flight
	// — at which point no work can ever appear again — and the worker that
	// decrements to zero closes done.
	tokens atomic.Int64
	done   chan struct{}

	// stop asks workers to wind down (limit cut or verify error); cut
	// records that the reason was the state limit. seq, set after the
	// termination join, switches the emit paths to direct sequential
	// interning for the completion pass.
	stop atomic.Bool
	cut  atomic.Bool
	seq  bool

	ws []*stealWorker[S]
}

// getBatch returns a recycled batch or a fresh one.
func (sr *stealRun[S]) getBatch(sw *stealWorker[S]) *handoffBatch[S] {
	select {
	case b := <-sw.free:
		return b
	default:
		return &handoffBatch[S]{src: sw.self, ents: make([]handoffEnt[S], 0, handoffBatchCap)}
	}
}

// sendBatch transfers b to dst's inbox. The sender stays receptive to its
// own inbox while blocked — with every worker either processing, sending
// (and draining), or idle (and draining), inboxes always drain and no send
// cycle can deadlock. The token is taken before the send so the in-flight
// batch keeps termination at bay.
func (sr *stealRun[S]) sendBatch(w *worker[S], dst int32, b *handoffBatch[S]) {
	sw := w.sw
	sw.handoffBatches.Add(1)
	sw.handoffStates.Add(uint64(len(b.ents)))
	sr.tokens.Add(1)
	// Phase attribution: time blocked on the send (and any interleaved
	// inbox processing, which re-attributes itself) as handoff. Two clock
	// reads per batch, never per state.
	prof := w.prof
	var prev int
	if prof != nil {
		prev = prof.cur
		prof.to(phHandoff)
	}
	for {
		select {
		case sr.ws[dst].inbox <- b:
			if prof != nil {
				prof.to(prev)
			}
			return
		case nb := <-sw.inbox:
			sr.processBatch(w, nb)
		}
	}
}

// processBatch interns every forwarded emission of b (this worker owns all
// their shards), resolves their arena slots, queues the fresh ones, and
// recycles the batch to its sender. Releasing the batch's termination
// token is the last step, so a batch never "disappears" from the count
// while its states are unresolved.
func (sr *stealRun[S]) processBatch(w *worker[S], b *handoffBatch[S]) {
	e := sr.e
	sw := w.sw
	// Phase attribution: the whole batch resolution is handoff time; the
	// previous phase (expand, or handoff when nested under sendBatch) is
	// restored on the way out. Two clock reads per batch.
	prof := w.prof
	var prev int
	if prof != nil {
		prev = prof.cur
		prof.to(phHandoff)
	}
	for i := range b.ents {
		ent := &b.ents[i]
		var id int32
		var fresh bool
		if ent.blo >= 0 {
			if sr.owned != nil {
				id, fresh = sr.owned.InternBytesOwned(ent.h, b.buf[ent.blo:ent.bhi])
			} else {
				id, fresh = e.bytesIntern.InternBytes(ent.h, b.buf[ent.blo:ent.bhi])
			}
		} else {
			if sr.owned != nil {
				id, fresh = sr.owned.InternOwned(ent.h, ent.s)
			} else {
				id, fresh = e.store.Intern(ent.s)
			}
		}
		*ent.slot = id
		if fresh {
			sw.pushWork(id)
		}
	}
	clear(b.ents)
	b.ents = b.ents[:0]
	b.buf = b.buf[:0]
	select {
	case sr.ws[b.src].free <- b:
	default:
	}
	if prof != nil {
		prof.to(prev)
	}
	if sr.tokens.Add(-1) == 0 {
		close(sr.done)
	}
}

// drainInbox processes every batch currently queued, without blocking.
func (sr *stealRun[S]) drainInbox(w *worker[S]) {
	for {
		select {
		case b := <-w.sw.inbox:
			sr.processBatch(w, b)
		default:
			return
		}
	}
}

// flushAll sends every non-empty partial batch; reports whether any went
// out. Workers flush before idling (a peer may be starving behind a
// half-full batch) and before winding down on stop (every recorded slot
// must resolve).
func (sr *stealRun[S]) flushAll(w *worker[S]) bool {
	sw := w.sw
	sent := false
	for dst, b := range sw.out {
		if b == nil {
			continue
		}
		sw.out[dst] = nil
		sr.sendBatch(w, int32(dst), b)
		sent = true
	}
	return sent
}

// steal takes up to half (capped at stealBatch) of the first non-empty
// peer deque's tail and returns one id, keeping the rest on priv.
func (sr *stealRun[S]) steal(sw *stealWorker[S]) (int32, bool) {
	for k := int32(1); k < sr.nw; k++ {
		v := sr.ws[(sw.self+k)%sr.nw]
		v.mu.Lock()
		avail := len(v.dq) - v.head
		if avail <= 0 {
			v.mu.Unlock()
			continue
		}
		take := (avail + 1) / 2
		if take > stealBatch {
			take = stealBatch
		}
		cutAt := len(v.dq) - take
		sw.priv = append(sw.priv, v.dq[cutAt:]...)
		v.dq = v.dq[:cutAt]
		v.mu.Unlock()
		v.dqLen.Add(-int64(take))
		sw.steals.Add(1)
		return sw.popPriv()
	}
	return 0, false
}

// idle exchanges the worker's termination token for a blocking wait:
// either a batch arrives (reclaim the token, process, resume) or done
// closes (discovery is globally quiescent). Returns false when the worker
// should exit. A batch queued in the inbox still holds its sender-granted
// token, so the count cannot hit zero with deliverable work pending.
func (sr *stealRun[S]) idle(w *worker[S]) bool {
	if sr.tokens.Add(-1) == 0 {
		close(sr.done)
		return false
	}
	// Phase attribution: only the blocking wait is idle time; batch
	// processing re-attributes itself to handoff.
	prof := w.prof
	if prof != nil {
		prof.to(phIdle)
	}
	select {
	case b := <-w.sw.inbox:
		sr.tokens.Add(1)
		if prof != nil {
			prof.to(phExpand)
		}
		sr.processBatch(w, b)
		return true
	case <-sr.done:
		if prof != nil {
			prof.to(phExpand)
		}
		return false
	}
}

// expandOne expands one owned (or stolen) state: record its span in the
// paged table, run the sampled aliasing falsifier, count the
// canonicalizer-remap delta for the levelized telemetry. Also the
// completion pass's expansion step (with sr.seq routing the emissions to
// direct sequential interning).
func (sr *stealRun[S]) expandOne(w *worker[S], id int32) {
	e := sr.e
	sw := w.sw
	off := sw.edges
	s := e.store.State(id)
	sampled := e.aliasMod != 0 && e.fpOfID(id)%e.aliasMod == 0
	if sampled {
		sw.capture = sw.capture[:0]
		sw.capturing = true
	}
	var before uint64
	if e.canon != nil {
		before = w.canonHits
	}
	if prof := w.prof; prof != nil && id&profSampleMask == 0 {
		// 1-in-64 fine sample: end-to-end expansion latency plus the
		// canon/intern section split recorded along the emit paths.
		w.profSampling = true
		t := time.Now()
		e.expand(s, &w.ctx)
		prof.noteSample(time.Since(t))
		w.profSampling = false
	} else {
		e.expand(s, &w.ctx)
	}
	sw.capturing = false
	var cd int32
	if e.canon != nil {
		cd = int32(w.canonHits - before)
	}
	e.pspans.set(id, span{worker: sw.self, off: off, n: sw.edges - off}, cd)
	w.steps.Add(1)
	if sampled {
		sr.checkAliasingSteal(s, w)
	}
}

// emitState is the free-running Emit hot path (to is already canonical).
// Owned successors intern immediately (lock-free when the store supports
// single-writer interning); peer-owned successors record a slot-pointer
// edge and join the batch for the owning worker.
func (sr *stealRun[S]) emitState(w *worker[S], to S, label string, actor int) {
	e := sr.e
	sw := w.sw
	h := e.fp(&to)
	if sw.capturing {
		sw.capture = append(sw.capture, capturedEmit{h: h, label: label, actor: int32(actor)})
	}
	if sr.seq {
		id, _ := e.store.Intern(to)
		sw.appendEdge(rawEdge{to: id, actor: int32(actor), label: label})
		return
	}
	owner := int32(h&sr.ownMask) % sr.nw
	if owner == sw.self {
		var id int32
		var fresh bool
		if sr.owned != nil {
			id, fresh = sr.owned.InternOwned(h, to)
		} else {
			id, fresh = e.store.Intern(to)
		}
		sw.appendEdge(rawEdge{to: id, actor: int32(actor), label: label})
		if fresh {
			sw.pushWork(id)
		}
		return
	}
	slot := sw.appendEdge(rawEdge{to: -1, actor: int32(actor), label: label})
	b := sw.out[owner]
	if b == nil {
		b = sr.getBatch(sw)
		b.dst = owner
		sw.out[owner] = b
	}
	b.ents = append(b.ents, handoffEnt[S]{h: h, slot: slot, s: to, blo: -1})
	if len(b.ents) >= handoffBatchCap {
		sw.out[owner] = nil
		sr.sendBatch(w, owner, b)
	}
}

// emitBytes is emitState for the EmitBytes direct path: to is the
// canonical payload bytes and h their fingerprint. Forwarded payloads are
// copied into the batch's recycled buffer, keeping the path free of
// per-emission allocations.
func (sr *stealRun[S]) emitBytes(w *worker[S], to []byte, h uint64, label string, actor int) {
	e := sr.e
	sw := w.sw
	if sw.capturing {
		sw.capture = append(sw.capture, capturedEmit{h: h, label: label, actor: int32(actor)})
	}
	if sr.seq {
		id, _ := e.bytesIntern.InternBytes(h, to)
		sw.appendEdge(rawEdge{to: id, actor: int32(actor), label: label})
		return
	}
	owner := int32(h&sr.ownMask) % sr.nw
	if owner == sw.self {
		var id int32
		var fresh bool
		if sr.owned != nil {
			id, fresh = sr.owned.InternBytesOwned(h, to)
		} else {
			id, fresh = e.bytesIntern.InternBytes(h, to)
		}
		sw.appendEdge(rawEdge{to: id, actor: int32(actor), label: label})
		if fresh {
			sw.pushWork(id)
		}
		return
	}
	slot := sw.appendEdge(rawEdge{to: -1, actor: int32(actor), label: label})
	b := sw.out[owner]
	if b == nil {
		b = sr.getBatch(sw)
		b.dst = owner
		sw.out[owner] = b
	}
	blo := int32(len(b.buf))
	b.buf = append(b.buf, to...)
	b.ents = append(b.ents, handoffEnt[S]{h: h, slot: slot, blo: blo, bhi: int32(len(b.buf))})
	if len(b.ents) >= handoffBatchCap {
		sw.out[owner] = nil
		sr.sendBatch(w, owner, b)
	}
}

// checkAliasingSteal is the free-running VerifyAliasing falsifier: it
// compares the (canonical-fingerprint, label, actor) signature sequence
// captured during the recorded expansion against a poisoned re-expansion.
// The barrier scheduler's variant compares interned ids via Probe; here
// forwarded ids resolve asynchronously and Probe would race the lock-free
// shard owners, so the comparison is by fingerprint instead (a 64-bit
// collision could in principle mask a divergence — acceptable for a
// falsifier, which only ever turns bugs into errors).
func (sr *stealRun[S]) checkAliasingSteal(s S, w *worker[S]) {
	e := sr.e
	sw := w.sw
	poisonScratch(w)
	got := sw.recheck[:0]
	x := &w.ctx
	x.sink = func(to S, label string, actor int) {
		if e.canon != nil {
			to = e.canon(to)
		}
		got = append(got, capturedEmit{h: e.fp(&to), label: label, actor: int32(actor)})
	}
	e.expand(s, x)
	x.sink = nil
	sw.recheck = got
	want := sw.capture
	if len(got) != len(want) {
		e.noteVerifyErr(fmt.Errorf("%w: state %v emitted %d transitions on poisoned re-expansion, want %d (system retains emitted or scratch buffers?)",
			ErrAliasUnsound, s, len(got), len(want)))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			e.noteVerifyErr(fmt.Errorf("%w: state %v transition %d diverged on poisoned re-expansion: got (fp=%#x label=%q actor=%d), want (fp=%#x label=%q actor=%d)",
				ErrAliasUnsound, s, i, got[i].h, got[i].label, got[i].actor, want[i].h, want[i].label, want[i].actor))
			return
		}
	}
}

// workerLoop is one worker's free-running discovery loop: drain the inbox,
// find work (private stack, shared deque, steal), expand, repeat; flush
// and go idle when dry; on stop (limit cut or verify error) flush partial
// batches and keep draining until global termination, so every recorded
// slot resolves before the join.
func (sr *stealRun[S]) workerLoop(w *worker[S]) {
	sw := w.sw
	e := sr.e
	// The phase clock free-runs in expand across the loop glue (inbox
	// drain, deque pops): only steal attempts, batch handoffs and idle
	// waits switch it, so the common path costs zero clock reads.
	prof := w.prof
	if prof != nil {
		prof.resume(phExpand)
		defer prof.flush()
	}
	for {
		sr.drainInbox(w)
		if sr.stop.Load() {
			break
		}
		id, ok := sw.popPriv()
		if !ok {
			id, ok = sw.popShared()
		}
		if !ok {
			if prof != nil {
				prof.to(phSteal)
			}
			id, ok = sr.steal(sw)
			if prof != nil {
				prof.to(phExpand)
			}
		}
		if !ok {
			if sr.flushAll(w) {
				continue
			}
			sr.drainInbox(w)
			if len(sw.priv) > 0 {
				continue
			}
			if !sr.idle(w) {
				return
			}
			continue
		}
		sr.expandOne(w, id)
		if e.store.Len() > sr.limit {
			sr.cut.Store(true)
			sr.stop.Store(true)
		}
		if e.verifySet.Load() {
			sr.stop.Store(true)
		}
	}
	sr.flushAll(w)
	for {
		sr.drainInbox(w)
		if !sr.idle(w) {
			return
		}
	}
}

// levelInfo is the post-discovery levelization of the recorded graph: the
// per-level state counts, recorded-emission counts and canonicalizer-remap
// counts a sequential BFS over the spans yields. It is the bridge from
// order-free discovery back to the barrier scheduler's level-indexed
// counters and telemetry events.
type levelInfo struct {
	sizes     []int
	edges     []uint64
	cdelta    []uint64
	cum       []int // cum[d] = states discovered through level d+1
	pids      []int32
	truncated bool
}

// levelize walks the recorded spans level by level from the initial
// states. On a cut run it doubles as the completion pass: any state below
// the cutoff depth the stopped workers left unexpanded is expanded here,
// sequentially, so the spans cover exactly (a superset of) what the
// barrier scheduler would have recorded. The walk stops at the first level
// where the cumulative count exceeds the limit — the barrier scheduler's
// truncation level.
func (e *explorer[S]) levelize(sr *stealRun[S], initIDs []int32, limit int, cut bool) (*levelInfo, error) {
	lv := &levelInfo{}
	seen := make([]bool, e.store.Len())
	cur := make([]int32, len(initIDs))
	copy(cur, initIDs)
	for _, id := range initIDs {
		seen[id] = true
	}
	total := len(initIDs)
	for len(cur) > 0 {
		lv.sizes = append(lv.sizes, len(cur))
		var next []int32
		var edgeSum, cdSum uint64
		for _, pid := range cur {
			sp, cd := e.pspans.get(pid)
			if sp.worker < 0 {
				if !cut {
					return nil, fmt.Errorf("engine: internal error: state %d unexpanded after untruncated discovery", pid)
				}
				sr.expandOne(e.workers[0], pid)
				sp, cd = e.pspans.get(pid)
			}
			edgeSum += uint64(sp.n)
			cdSum += uint64(cd)
			for j := int32(0); j < sp.n; j++ {
				r := e.edgeAt(sp.worker, sp.off+j)
				if int(r.to) >= len(seen) {
					seen = append(seen, make([]bool, int(r.to)+1-len(seen))...)
				}
				if !seen[r.to] {
					seen[r.to] = true
					next = append(next, r.to)
				}
			}
		}
		if e.canon != nil {
			lv.pids = append(lv.pids, cur...)
		}
		lv.edges = append(lv.edges, edgeSum)
		lv.cdelta = append(lv.cdelta, cdSum)
		total += len(next)
		lv.cum = append(lv.cum, total)
		cur = next
		if total > limit {
			lv.truncated = true
			break
		}
	}
	return lv, nil
}

// edgeAt reads one rawEdge from a worker's chunked arena by global offset.
func (e *explorer[S]) edgeAt(wk int32, off int32) rawEdge {
	sw := e.workers[wk].sw
	return sw.chunks[off>>edgeChunkBits][int(off)&(edgeChunkCap-1)]
}

// chunkEdges returns span sp's rawEdges: a direct chunk subslice when the
// span does not straddle a chunk boundary (the common case), otherwise a
// copy assembled in *buf.
func (e *explorer[S]) chunkEdges(sp span, buf *[]rawEdge) []rawEdge {
	chunks := e.workers[sp.worker].sw.chunks
	ci := int(sp.off) >> edgeChunkBits
	lo := int(sp.off) & (edgeChunkCap - 1)
	if lo+int(sp.n) <= edgeChunkCap {
		return chunks[ci][lo : lo+int(sp.n)]
	}
	b := (*buf)[:0]
	for j := int32(0); j < sp.n; j++ {
		b = append(b, e.edgeAt(sp.worker, sp.off+j))
	}
	*buf = b
	return b
}

// recountCanon recomputes RawStates and CanonHits for a truncated
// free-running canon run by re-expanding exactly the states the levelized
// walk expanded (plus the raw initial states): the live worker counters
// include overshoot expansions beyond the cutoff level, which the barrier
// scheduler never performs. Expansion purity makes the re-expansion emit
// the identical multiset the recorded pass did.
func (e *explorer[S]) recountCanon(rawInits []S, pids []int32) (int, uint64) {
	seen := make(map[uint64]struct{})
	var hits uint64
	note := func(raw S) {
		seen[e.fp(&raw)] = struct{}{}
		if e.canon(raw) != raw {
			hits++
		}
	}
	for _, s := range rawInits {
		note(s)
	}
	x := e.collectCtx(func(to S, label string, actor int) { note(to) })
	for _, pid := range pids {
		e.expand(e.store.State(pid), x)
	}
	return len(seen), hits
}

// exploreFree runs the free-running discovery phase end to end: worker
// pool, termination, verify-error and limit handling, levelization (with
// completion pass), derived stats, and the synthesized telemetry events.
func (e *explorer[S]) exploreFree(st *Stats, rawInits []S, initIDs []int32, limit, nw int) error {
	sr := &stealRun[S]{
		e:       e,
		nw:      int32(nw),
		ownMask: uint64(shardCount(nw) - 1),
		limit:   limit,
		done:    make(chan struct{}),
	}
	if oi, ok := e.store.(store.OwnedInterner[S]); ok && oi.OwnedSupported() {
		sr.owned = oi
	}
	e.pspans = newPagedSpans(e.canon != nil)
	sr.ws = make([]*stealWorker[S], nw)
	for i, w := range e.workers {
		sw := &stealWorker[S]{
			self:  int32(i),
			inbox: make(chan *handoffBatch[S], 4*nw),
			free:  make(chan *handoffBatch[S], 4*nw),
			out:   make([]*handoffBatch[S], nw),
		}
		sw.cur = make([]rawEdge, 0, edgeChunkCap)
		sw.chunks = append(sw.chunks, sw.cur)
		w.sw = sw
		sr.ws[i] = sw
	}
	// initCanon is the initial states' contribution to CanonHits — the
	// baseline of the synthesized level events' canon counter.
	initCanon := e.workers[0].canonHits
	for i, id := range initIDs {
		e.workers[i%nw].sw.pushWork(id)
	}
	sr.tokens.Store(int64(nw))
	e.steal.Store(sr)
	var wg sync.WaitGroup
	for i := 1; i < nw; i++ {
		wg.Add(1)
		go func(w *worker[S]) {
			defer wg.Done()
			sr.workerLoop(w)
		}(e.workers[i])
	}
	sr.workerLoop(e.workers[0])
	wg.Wait()
	if err := e.takeVerifyErr(); err != nil {
		e.steal.Store(nil)
		return err
	}
	// Completion + levelization run sequentially with direct interning.
	sr.seq = true
	lv, err := e.levelize(sr, initIDs, limit, sr.cut.Load())
	e.steal.Store(nil)
	if err != nil {
		return err
	}
	// The completion pass runs the same sampled checks discovery does.
	if err := e.takeVerifyErr(); err != nil {
		return err
	}
	// Parity with the barrier loop's per-level maintenance: surface any
	// sticky store error deterministically before replay (mem and bitstate
	// backends no-op here; the spill backend never takes this path).
	if err := e.store.Maintain(int32(e.store.Len())); err != nil {
		return fmt.Errorf("engine: state store: %w", err)
	}
	e.finishFree(st, lv, rawInits, initCanon, len(initIDs))
	return nil
}

// finishFree derives the run's Stats from the levelized graph and
// publishes the synthesized telemetry events. The identities, all exact
// (k = len(lv.sizes) is the number of expanded levels):
//
//   - Expansions = Σ sizes[0..k-1]: the barrier scheduler expands exactly
//     the states of levels 0..k-1 (WorkerSteps keeps the live counters,
//     which on a truncated run include overshoot — hence the relaxed
//     sum(WorkerSteps) ≥ Expansions invariant for truncated steal runs).
//   - DedupHits = recorded emissions − fresh interns: every emission either
//     hit a known state or interned a fresh one, and the states of levels
//     ≤ k other than the inits are interned by exactly one emission each,
//     so dedup(levels < k) = edges(levels < k) − (states(levels ≤ k) − inits).
//     This is what the barrier scheduler counts emission by emission.
//   - CanonHits/RawStates: live worker counters on complete runs (the same
//     emission multiset as the barrier run, counted per emission); a
//     recount over the expanded set on truncated runs (see recountCanon).
func (e *explorer[S]) finishFree(st *Stats, lv *levelInfo, rawInits []S, initCanon uint64, nInits int) {
	for _, w := range e.workers {
		st.WorkerSteps = append(st.WorkerSteps, w.steps.Load())
		sw := w.sw
		st.Steals += sw.steals.Load()
		st.HandoffBatches += sw.handoffBatches.Load()
		st.HandoffStates += sw.handoffStates.Load()
	}
	k := len(lv.sizes)
	st.Depth = k
	var exp, edgeTotal uint64
	for _, n := range lv.sizes {
		if n > st.PeakFrontier {
			st.PeakFrontier = n
		}
		exp += uint64(n)
	}
	for _, n := range lv.edges {
		edgeTotal += n
	}
	st.Expansions = exp
	st.DedupHits = edgeTotal - uint64(lv.cum[k-1]-nInits)
	if e.canon != nil {
		st.CanonEnabled = true
		if !lv.truncated {
			for _, w := range e.workers {
				st.CanonHits += w.canonHits
			}
			rawAll := e.workers[0].rawSeen
			for _, w := range e.workers[1:] {
				for h := range w.rawSeen {
					rawAll[h] = struct{}{}
				}
			}
			st.RawStates = len(rawAll)
		} else {
			st.RawStates, st.CanonHits = e.recountCanon(rawInits, lv.pids)
		}
	}
	if e.tel == nil {
		return
	}
	// Synthesize the barrier scheduler's per-level event stream from the
	// levelization: field for field what publishLevel would have emitted at
	// each barrier, so trace digests are scheduler-invariant.
	var expSoFar, edgesSoFar, cdSoFar uint64
	peak := 0
	for j := 1; j <= k; j++ {
		sz := lv.sizes[j-1]
		if sz > peak {
			peak = sz
		}
		expSoFar += uint64(sz)
		edgesSoFar += lv.edges[j-1]
		cdSoFar += lv.cdelta[j-1]
		states := lv.cum[j-1]
		dedup := edgesSoFar - uint64(states-nInits)
		var canonHits uint64
		if e.canon != nil {
			canonHits = initCanon + cdSoFar
		}
		frontier := 0
		if j < k {
			frontier = lv.sizes[j]
		} else if lv.truncated {
			prev := nInits
			if j >= 2 {
				prev = lv.cum[j-2]
			}
			frontier = states - prev
		}
		e.tel.synthLevel(obs.KindLevel, states, j, frontier, peak, expSoFar, dedup, canonHits, false)
		if j == k && lv.truncated {
			e.tel.synthLevel(obs.KindTruncated, states, j, 0, peak, expSoFar, dedup, canonHits, true)
		}
	}
}

// takeVerifyErr reads the sticky verify error under its lock.
func (e *explorer[S]) takeVerifyErr() error {
	e.verifyMu.Lock()
	defer e.verifyMu.Unlock()
	return e.verifyErr
}

// isExpanded reports whether pid's successors were recorded, under either
// span representation.
func (e *explorer[S]) isExpanded(pid int32) bool {
	if e.pspans != nil {
		sp, _ := e.pspans.get(pid)
		return sp.worker >= 0
	}
	return e.expanded[pid]
}

// epochPool is the steal scheduler's epoch submode: the level loop's
// fan-out runs on persistent workers fed per-level jobs instead of
// per-level goroutine forks. Used when ample-set POR or the spill store
// needs level-coherent epochs; work distribution within a level is the
// same atomic-cursor chunk claiming the barrier scheduler uses (frontier
// ids are contiguous, so the cursor IS the shared queue).
func (e *explorer[S]) epochPool(nw int, expandLevel func(int32, *atomic.Int64, int, int)) (dispatch func(*atomic.Int64, int, int), shutdown func()) {
	type job struct {
		cursor    *atomic.Int64
		hi, chunk int
	}
	jobs := make([]chan job, nw)
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		jobs[w] = make(chan job)
		go func(w int32, ch chan job) {
			// The wait for the next level's job is this worker's barrier
			// time (the pool analogue of the fork/join gap).
			prof := e.workers[w].prof
			for {
				var t time.Time
				if prof != nil {
					t = time.Now()
				}
				j, ok := <-ch
				if prof != nil {
					prof.counters[phBarrier].Add(int64(time.Since(t)))
				}
				if !ok {
					return
				}
				expandLevel(w, j.cursor, j.hi, j.chunk)
				wg.Done()
			}
		}(int32(w), jobs[w])
	}
	dispatch = func(cursor *atomic.Int64, hi, chunk int) {
		wg.Add(nw - 1)
		for w := 1; w < nw; w++ {
			jobs[w] <- job{cursor, hi, chunk}
		}
		expandLevel(0, cursor, hi, chunk)
		waitBarrier(e.workers[0].prof, &wg)
	}
	shutdown = func() {
		for w := 1; w < nw; w++ {
			close(jobs[w])
		}
	}
	return dispatch, shutdown
}
