package engine

import (
	"fmt"
	"time"
)

// Stats is the exploration telemetry of one Explore run: the observability
// hook the CLIs and benchmarks surface. All fields describe the completed
// run (the engine does not stream them mid-exploration).
type Stats struct {
	// States is the number of canonical states in the Result.
	States int
	// Edges is the number of transitions in the Result.
	Edges int
	// Depth is the number of BFS levels expanded (the frontier depth).
	Depth int
	// PeakFrontier is the largest BFS level, in states.
	PeakFrontier int
	// Expansions is the number of states expanded (ExpandFunc calls). It
	// can exceed States on a truncated run: the parallel phase finishes the
	// level in flight when the limit trips.
	Expansions uint64
	// DedupHits counts generated successors that were already known — the
	// visited-set hit rate is DedupHits / (DedupHits + new states).
	DedupHits uint64
	// Workers is the resolved worker count.
	Workers int
	// WorkerSteps[i] is the number of states worker i expanded; its spread
	// shows how evenly the frontier sharded.
	WorkerSteps []uint64
	// Elapsed is the wall-clock time of the exploration, canonicalization
	// included.
	Elapsed time.Duration
	// StatesPerSec is States / Elapsed.
	StatesPerSec float64
	// Truncated reports that the state limit cut the exploration short.
	Truncated bool
}

// DedupRate returns the fraction of generated successors that hit an
// already-known state, in [0, 1].
func (s Stats) DedupRate() float64 {
	total := s.DedupHits + uint64(s.States)
	if total == 0 {
		return 0
	}
	return float64(s.DedupHits) / float64(total)
}

// String renders the telemetry as a single report line.
func (s Stats) String() string {
	line := fmt.Sprintf("states=%d edges=%d depth=%d peak-frontier=%d dedup=%.1f%% workers=%d %s states/sec=%.0f",
		s.States, s.Edges, s.Depth, s.PeakFrontier, 100*s.DedupRate(), s.Workers, s.Elapsed.Round(time.Microsecond), s.StatesPerSec)
	if s.Truncated {
		line += " (truncated)"
	}
	return line
}
