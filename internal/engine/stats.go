package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Stats is the exploration telemetry of one Explore run: the observability
// hook the CLIs and benchmarks surface. All fields describe the completed
// run (the engine does not stream them mid-exploration).
type Stats struct {
	// States is the number of canonical states in the Result.
	States int
	// Edges is the number of transitions in the Result.
	Edges int
	// Depth is the number of BFS levels expanded (the frontier depth).
	Depth int
	// PeakFrontier is the largest BFS level, in states.
	PeakFrontier int
	// Expansions is the number of states expanded (ExpandFunc calls). It
	// can exceed States on a truncated run: the parallel phase finishes the
	// level in flight when the limit trips.
	Expansions uint64
	// DedupHits counts generated successors that were already known — the
	// visited-set hit rate is DedupHits / (DedupHits + new states).
	DedupHits uint64
	// Workers is the resolved worker count.
	Workers int
	// WorkerSteps[i] is the number of states worker i expanded; its spread
	// shows how evenly the frontier sharded.
	WorkerSteps []uint64
	// Elapsed is the wall-clock time of the exploration, canonicalization
	// included.
	Elapsed time.Duration
	// StatesPerSec is States / Elapsed.
	StatesPerSec float64
	// Truncated reports that the state limit cut the exploration short.
	Truncated bool
	// CanonEnabled reports that a symmetry canonicalizer was installed and
	// the run explored the quotient graph.
	CanonEnabled bool
	// RawStates is the number of distinct raw (pre-canonicalization) states
	// generated while exploring the quotient, counted by fingerprint. It is
	// a lower bound on the full state space: only successors of orbit
	// representatives are ever generated, so orbits are sampled, not
	// enumerated. Zero when CanonEnabled is false.
	RawStates int
	// CanonHits counts generated states the canonicalizer remapped to a
	// different orbit representative.
	CanonHits uint64
	// POREnabled reports that an independence relation was installed and
	// the run used ample-set partial-order reduction.
	POREnabled bool
	// AmpleStates counts expanded states where a proper ample subset was
	// selected (the remaining states were expanded fully, because no
	// proper dependence component existed or the cycle proviso vetoed it).
	AmpleStates uint64
	// DeferredActions counts enabled actions skipped by ample-set
	// selection across all expansions — the per-state branching the
	// reduction removed. The end-to-end state savings compound beyond this
	// count: every deferred action also prunes the subtree that
	// interleaving order would have spawned.
	DeferredActions uint64
	// Store is the visited-set backend's end-of-run telemetry: resident
	// and spilled bytes, segment traffic, lossiness. Its spill counters
	// depend on page layout and therefore on scheduling — they are NOT
	// part of the worker-count-invariant set diffStats compares.
	Store store.Stats
	// Lossy mirrors Store.Lossy at the top level: a true value taints the
	// whole run — distinct states may have been merged, so the explored
	// counts are lower bounds and any "no violation" outcome means "none
	// found", never "none exists". Checkers must downgrade their verdicts.
	Lossy bool
	// PeakRSSBytes is the process's peak resident set size at run end
	// (process-wide and monotone across runs; 0 if unmeasurable).
	PeakRSSBytes int64
	// Sched names the discovery scheduler the run used ("barrier" or
	// "steal"). Like WorkerSteps, it describes scheduling, not structure,
	// and is excluded from the determinism comparisons.
	Sched string
	// Steals counts work batches one worker took from another's deque
	// (steal scheduler only). Scheduling-dependent, excluded from
	// determinism comparisons.
	Steals uint64
	// HandoffBatches and HandoffStates count the batched frontier
	// forwards between shard-owning workers (steal scheduler only):
	// HandoffStates successor emissions crossed worker boundaries in
	// HandoffBatches channel sends. Scheduling-dependent, excluded from
	// determinism comparisons.
	HandoffBatches uint64
	HandoffStates  uint64
	// Phases is the run's aggregate phase-attribution profile (expand,
	// barrier-wait, store I/O, replay, steal, handoff, idle — plus the
	// sampled canon/intern split), summed over workers; WorkerPhases is the
	// per-worker breakdown and ExpandLat the sampled expansion-latency
	// histogram. Recorded whenever Options.Stats or Options.Sink is set.
	// Pure timing: scheduling- and machine-dependent, excluded from the
	// determinism comparisons and from trace digests.
	Phases       obs.Phases
	WorkerPhases []obs.Phases
	ExpandLat    obs.HistSnap
}

// DedupRate returns the fraction of generated successors that hit an
// already-known state, in [0, 1].
func (s Stats) DedupRate() float64 {
	total := s.DedupHits + uint64(s.States)
	if total == 0 {
		return 0
	}
	return float64(s.DedupHits) / float64(total)
}

// ReductionFactor is the observed orbit reduction RawStates / States: how
// many raw states collapsed into each explored representative. It is ≥ 1 on
// any quotient run and a lower bound on the full-space reduction (see
// RawStates). Zero when no canonicalizer was installed.
func (s Stats) ReductionFactor() float64 {
	if !s.CanonEnabled || s.States == 0 {
		return 0
	}
	return float64(s.RawStates) / float64(s.States)
}

// PORReductionFactor is the observed branching reduction
// (Edges + DeferredActions) / Edges: how many enabled actions existed per
// action actually explored. It is ≥ 1 on any POR run and a lower bound on
// the full-space state reduction (deferred actions also prune their
// interleaving subtrees, which this ratio cannot see). Zero when no
// independence relation was installed.
func (s Stats) PORReductionFactor() float64 {
	if !s.POREnabled || s.Edges == 0 {
		return 0
	}
	return float64(uint64(s.Edges)+s.DeferredActions) / float64(s.Edges)
}

// Snapshot converts the end-of-run telemetry into the observability
// layer's final progress snapshot. It is the single source of the run_end
// event's payload, so "the trace's final snapshot totals equal the
// returned Stats" holds by construction.
func (s Stats) Snapshot() obs.ProgressSnapshot {
	snap := obs.ProgressSnapshot{
		Elapsed:         s.Elapsed,
		States:          s.States,
		Edges:           s.Edges,
		Depth:           s.Depth,
		PeakFrontier:    s.PeakFrontier,
		Expansions:      s.Expansions,
		DedupHits:       s.DedupHits,
		CanonHits:       s.CanonHits,
		RawStates:       s.RawStates,
		AmpleStates:     s.AmpleStates,
		DeferredActions: s.DeferredActions,
		WorkerSteps:     append([]uint64(nil), s.WorkerSteps...),
		Truncated:       s.Truncated,
		Final:           true,
		Steals:          s.Steals,
		HandoffBatches:  s.HandoffBatches,

		StoreBytesInRAM:        s.Store.BytesInRAM,
		StoreBytesSpilled:      s.Store.BytesSpilled,
		StoreSegments:          s.Store.Segments,
		StoreSegmentReads:      s.Store.SegmentReads,
		StoreCollisionConfirms: s.Store.CollisionConfirms,
		StorePageCacheHits:     s.Store.PageCacheHits,
		StoreLossy:             s.Lossy,
		PeakRSSBytes:           s.PeakRSSBytes,
	}
	if s.Store.ReadLat.Count > 0 {
		rl := s.Store.ReadLat
		snap.StoreReadLat = &rl
	}
	if s.Store.WriteLat.Count > 0 {
		wl := s.Store.WriteLat
		snap.StoreWriteLat = &wl
	}
	if !s.Phases.Zero() {
		ph := s.Phases
		snap.Phases = &ph
		snap.WorkerPhases = append([]obs.Phases(nil), s.WorkerPhases...)
	}
	if s.ExpandLat.Count > 0 {
		el := s.ExpandLat
		snap.ExpandLat = &el
	}
	return snap
}

// PhaseString renders the aggregate phase profile as one report line ("" when
// no profile was recorded). Wall-clock percentages are of the summed
// per-worker clock (≈ Workers × Elapsed); the canon/intern split comes from
// the 1-in-64 fine samples.
func (s Stats) PhaseString() string {
	p := s.Phases
	if p.Zero() {
		return ""
	}
	total := p.TotalNs()
	if total == 0 {
		return ""
	}
	pct := func(ns int64) float64 { return 100 * float64(ns) / float64(total) }
	line := fmt.Sprintf("phases: expand=%.1f%% barrier=%.1f%% store-io=%.1f%% replay=%.1f%%",
		pct(p.ExpandNs), pct(p.BarrierWaitNs), pct(p.StoreIONs), pct(p.ReplayNs))
	if s.Sched == "steal" {
		line += fmt.Sprintf(" steal=%.1f%% handoff=%.1f%% idle=%.1f%%",
			pct(p.StealNs), pct(p.HandoffNs), pct(p.IdleNs))
	}
	if p.SampledStates > 0 && p.SampleExpandNs > 0 {
		line += fmt.Sprintf(" | sampled=%d canon=%.1f%% intern=%.1f%% of expand",
			p.SampledStates, 100*p.CanonFrac(), 100*p.InternFrac())
		if s.ExpandLat.Count > 0 {
			line += fmt.Sprintf(" p50=%s p99=%s",
				time.Duration(s.ExpandLat.QuantileNs(0.5)), time.Duration(s.ExpandLat.QuantileNs(0.99)))
		}
	}
	return line
}

// String renders the telemetry as a single report line.
func (s Stats) String() string {
	line := fmt.Sprintf("states=%d edges=%d depth=%d peak-frontier=%d dedup=%.1f%% workers=%d %s states/sec=%.0f",
		s.States, s.Edges, s.Depth, s.PeakFrontier, 100*s.DedupRate(), s.Workers, s.Elapsed.Round(time.Microsecond), s.StatesPerSec)
	if s.CanonEnabled {
		line += fmt.Sprintf(" raw=%d reduction=%.2fx", s.RawStates, s.ReductionFactor())
	}
	if s.POREnabled {
		line += fmt.Sprintf(" ample=%d deferred=%d por-branch=%.2fx", s.AmpleStates, s.DeferredActions, s.PORReductionFactor())
	}
	if s.Sched == "steal" {
		line += fmt.Sprintf(" sched=steal steals=%d handoff=%d/%d", s.Steals, s.HandoffStates, s.HandoffBatches)
	}
	if s.Truncated {
		line += " (truncated)"
	}
	if s.Lossy {
		line += " (LOSSY: bitstate sweep, counts are lower bounds)"
	}
	return line
}

// StoreString renders the store telemetry as one report line ("" for the
// default mem backend, which has nothing actionable to report).
func (s Stats) StoreString() string {
	ss := s.Store
	switch ss.Kind {
	case store.Spill:
		return fmt.Sprintf("store=spill budget=%s ram=%s spilled=%d states (%s raw, %s on disk) segments=%d seg-reads=%d confirms=%d",
			byteCount(ss.MaxBytes), byteCount(ss.BytesInRAM), ss.SpilledStates,
			byteCount(ss.BytesSpilled), byteCount(ss.CompressedBytes), ss.Segments, ss.SegmentReads, ss.CollisionConfirms)
	case store.Bitstate:
		bits := ss.FingerprintBits
		if bits == 0 {
			bits = 64
		}
		return fmt.Sprintf("store=bitstate fp-bits=%d ram=%s (lossy)", bits, byteCount(ss.BytesInRAM))
	}
	return ""
}

// byteCount renders n in binary units with one decimal.
func byteCount(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
