package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/store"
)

// This file is the engine half of the backend conformance suite (the unit
// half lives in internal/store): every backend must preserve the engine's
// worker-count-determinism contract on real explorations, the spill
// backend bit for bit against mem, and the bitstate backend must stay
// honest about its lossiness.

// storeBackends is the conformance matrix. The spill entries use budgets
// small enough that the grid workload actually spills.
func storeBackends(t *testing.T) map[string]store.Config {
	t.Helper()
	return map[string]store.Config{
		"mem":        {Kind: store.Mem},
		"spill":      {Kind: store.Spill, MaxBytes: 8 << 10, Dir: t.TempDir()},
		"bitstate64": {Kind: store.Bitstate}, // full-width fp: exact on these inputs, still flagged lossy
	}
}

// TestStoreBackendDeterminism runs the grid workload under every backend
// at workers 1, 2 and 8 and requires byte-identical Results within each
// backend — and across backends, since none of these configurations
// actually loses states.
func TestStoreBackendDeterminism(t *testing.T) {
	ref, err := Explore([]string{"0,0"}, gridExpand(40), Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for name, cfg := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			for _, par := range []int{1, 2, 8} {
				res, err := Explore([]string{"0,0"}, gridExpand(40), Options{Parallelism: par, Store: cfg})
				if err != nil {
					t.Fatalf("workers=%d: %v", par, err)
				}
				mustEqualResults(t, name, ref, res)
				if res.Stats.Store.Kind != cfg.ResolvedKind() {
					t.Fatalf("Stats.Store.Kind = %q, want %q", res.Stats.Store.Kind, cfg.ResolvedKind())
				}
				if res.Stats.Lossy != cfg.Lossy() {
					t.Fatalf("Stats.Lossy = %v under %q", res.Stats.Lossy, name)
				}
			}
		})
	}
}

// TestSpillExplorationSpills pins that the budget in storeBackends is
// actually doing work: the 40x40 grid (1600 states, ~7 bytes each plus
// overhead) must overflow an 8 KiB budget and hit the confirm-by-readback
// path, because the grid's diamond shape dedups against earlier levels.
func TestSpillExplorationSpills(t *testing.T) {
	var st Stats
	_, err := Explore([]string{"0,0"}, gridExpand(40),
		Options{Parallelism: 2, Stats: &st, Store: store.Config{Kind: store.Spill, MaxBytes: 8 << 10, Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.Store
	if ss.Segments == 0 || ss.SpilledStates == 0 {
		t.Fatalf("grid run spilled nothing under an 8KiB budget: %+v", ss)
	}
	if ss.BytesSpilled <= ss.CompressedBytes {
		t.Fatalf("flate expanded the payload: raw=%d disk=%d", ss.BytesSpilled, ss.CompressedBytes)
	}
	if line := st.StoreString(); !strings.Contains(line, "store=spill") || !strings.Contains(line, "segments=") {
		t.Fatalf("StoreString missing spill figures: %q", line)
	}
}

// TestSpillWithDegradedFingerprint forces every state through the
// fingerprint-collision confirm path while payloads are spilling: the
// 2-bit fingerprint makes all buckets collide, so correctness here means
// the segment read-back really distinguishes states. Small pages
// (PageBits) let the 625-state grid span many spillable pages.
func TestSpillWithDegradedFingerprint(t *testing.T) {
	ref, err := Explore([]string{"0,0"}, gridExpand(25), Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, par := range []int{1, 4} {
		var st Stats
		res, err := Explore([]string{"0,0"}, gridExpand(25), Options{
			Parallelism:        par,
			Stats:              &st,
			Store:              store.Config{Kind: store.Spill, MaxBytes: 1 << 10, Dir: t.TempDir(), PageBits: 5},
			degradeFingerprint: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", par, err)
		}
		mustEqualResults(t, "degraded-fp spill", ref, res)
		if st.Store.CollisionConfirms == 0 {
			t.Fatal("no spilled-payload confirms under a 2-bit fingerprint and a 1KiB budget")
		}
	}
}

// TestBitstateUndercounts pins the lossy semantics end to end: with a
// tiny fingerprint mask the explored state count must stay at or below
// both the exact count and the mask's capacity, and the taint must
// surface in Stats.
func TestBitstateUndercounts(t *testing.T) {
	exact, err := Explore([]string{"0,0"}, gridExpand(40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	res, err := Explore([]string{"0,0"}, gridExpand(40), Options{
		Stats: &st,
		Store: store.Config{Kind: store.Bitstate, FingerprintBits: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) >= len(exact.States) {
		t.Fatalf("8-bit sweep kept %d of %d states; expected merges", len(res.States), len(exact.States))
	}
	if len(res.States) > 256 {
		t.Fatalf("8-bit sweep admitted %d states (> 2^8)", len(res.States))
	}
	if !st.Lossy || !st.Store.Lossy || st.Store.FingerprintBits != 8 {
		t.Fatalf("lossy run not tainted: %+v", st.Store)
	}
	if !strings.Contains(st.String(), "LOSSY") {
		t.Fatalf("Stats.String hides the taint: %q", st.String())
	}
}

// TestDifferentialStoreBackends drives the cross-backend oracle arm: mem
// vs spill byte-identical, bitstate rejected without AllowLossy and
// bounded with it.
func TestDifferentialStoreBackends(t *testing.T) {
	spec := DiffSpec[string]{
		Name:   "grid-30",
		Inits:  []string{"0,0"},
		Expand: gridExpand(30),
		Stores: []store.Config{{Kind: store.Spill, MaxBytes: 4 << 10, Dir: t.TempDir(), PageBits: 6}},
	}
	rep, err := Differential(spec)
	if err != nil {
		t.Fatalf("mem vs spill diverged: %v", err)
	}
	found := false
	for _, m := range rep.Modes {
		if m.Mode == "full+spill" {
			found = true
			if m.Stats.Store.SpilledStates == 0 {
				t.Fatalf("spill arm ran without spilling: %+v", m.Stats.Store)
			}
		}
	}
	if !found {
		t.Fatalf("no full+spill mode in report: %+v", rep.Modes)
	}

	spec.Stores = []store.Config{{Kind: store.Bitstate, FingerprintBits: 10}}
	if _, err := Differential(spec); !errors.Is(err, ErrLossyStore) {
		t.Fatalf("lossy backend admitted without AllowLossy: %v", err)
	}
	spec.AllowLossy = true
	rep, err = Differential(spec)
	if err != nil {
		t.Fatalf("AllowLossy run failed: %v", err)
	}
	mode := rep.Modes[len(rep.Modes)-1]
	if mode.Mode != "full+bitstate" || !mode.Stats.Lossy {
		t.Fatalf("lossy arm missing or untainted: %+v", mode)
	}
}

// TestStoreErrorSurfacesAtBarrier checks the sticky-I/O-error contract:
// a spill directory that vanishes mid-run must fail the exploration with
// a store error at a barrier, not corrupt the graph.
func TestStoreErrorSurfacesAtBarrier(t *testing.T) {
	dir := t.TempDir() + "/gone"
	// Do not create dir: the first Maintain that needs a segment file fails.
	_, err := Explore([]string{"0,0"}, gridExpand(40),
		Options{Store: store.Config{Kind: store.Spill, MaxBytes: 1 << 10, Dir: dir}})
	if err == nil || !strings.Contains(err.Error(), "state store") {
		t.Fatalf("missing spill dir produced %v, want a state store error", err)
	}
}
