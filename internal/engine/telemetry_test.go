package engine

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectSink records every event, concurrency-safe (the engine publishes
// from the coordinator and the monitor goroutine).
type collectSink struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (c *collectSink) Publish(ev obs.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collectSink) events() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.evs...)
}

// telemetryModes is the mode grid the observation-invariance tests sweep —
// the same vocabulary Differential uses.
func telemetryModes() map[string]Options {
	return map[string]Options{
		"full":  {},
		"canon": {Canon: Canonicalizer[string](mirrorGridCanon)},
		"por":   {Independent: Independence[string](gridIndep)},
		"canon+por": {
			Canon:       Canonicalizer[string](mirrorGridCanon),
			Independent: Independence[string](gridIndep),
		},
	}
}

// TestSinkDoesNotPerturbResults is the passive-observation contract: under
// every mode and worker count, the Result with a sink attached is
// byte-identical to the Result without one, and the deterministic trace
// digest is identical across worker counts within a mode.
func TestSinkDoesNotPerturbResults(t *testing.T) {
	const n = 16
	for mode, base := range telemetryModes() {
		var refDigest string
		for _, workers := range []int{1, 2, 8} {
			bare := base
			bare.Parallelism = workers
			plain, err := Explore([]string{"0,0"}, gridExpand(n), bare)
			if err != nil {
				t.Fatalf("%s/w%d without sink: %v", mode, workers, err)
			}

			observed := base
			observed.Parallelism = workers
			dig := obs.NewDigest()
			sink := &collectSink{}
			observed.Sink = obs.MultiSink{sink, dig}
			observed.SnapshotEvery = -1 // deterministic events only
			traced, err := Explore([]string{"0,0"}, gridExpand(n), observed)
			if err != nil {
				t.Fatalf("%s/w%d with sink: %v", mode, workers, err)
			}
			mustEqualResults(t, mode+" observed vs bare", plain, traced)

			if refDigest == "" {
				refDigest = dig.Sum()
			} else if dig.Sum() != refDigest {
				t.Fatalf("%s: digest diverged across worker counts: %s vs %s (workers=%d)",
					mode, dig.Sum(), refDigest, workers)
			}
			if len(sink.events()) == 0 {
				t.Fatalf("%s/w%d: sink saw no events", mode, workers)
			}
		}
	}
}

// TestDigestSeparatesModes: reductions change the level structure, so the
// digest must tell the modes apart (that is what makes it useful as a
// trace fingerprint in divergence reports).
func TestDigestSeparatesModes(t *testing.T) {
	const n = 16
	sums := map[string]string{}
	for mode, base := range telemetryModes() {
		dig := obs.NewDigest()
		base.Sink = dig
		base.SnapshotEvery = -1
		if _, err := Explore([]string{"0,0"}, gridExpand(n), base); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		sums[mode] = dig.Sum()
	}
	seen := map[string]string{}
	for mode, sum := range sums {
		if prev, dup := seen[sum]; dup {
			t.Fatalf("modes %s and %s share digest %s", prev, mode, sum)
		}
		seen[sum] = mode
	}
}

// TestTelemetryEventStream checks the event protocol: run_start first
// (with the resolved config), one level event per completed BFS level with
// monotone depth, and a final run_end whose snapshot totals equal the
// returned Stats.
func TestTelemetryEventStream(t *testing.T) {
	const n = 12
	sink := &collectSink{}
	res, err := Explore([]string{"0,0"}, gridExpand(n), Options{
		Parallelism: 4, Sink: sink, SnapshotEvery: -1,
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	evs := sink.events()
	if len(evs) < 3 {
		t.Fatalf("got %d events, want at least run_start + levels + run_end", len(evs))
	}
	first, last := evs[0], evs[len(evs)-1]
	if first.Kind != obs.KindRunStart || first.Config == nil {
		t.Fatalf("first event = %+v, want run_start with config", first)
	}
	if first.Config.Workers != 4 || first.Config.Inits != 1 || first.Config.MaxStates != DefaultMaxStates {
		t.Fatalf("run_start config = %+v", *first.Config)
	}
	depth := -1
	levels := 0
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.Kind != obs.KindLevel {
			t.Fatalf("mid-stream event kind %s, want level", ev.Kind)
		}
		if ev.Snapshot.Depth <= depth {
			t.Fatalf("level depth not increasing: %d after %d", ev.Snapshot.Depth, depth)
		}
		depth = ev.Snapshot.Depth
		levels++
	}
	// The grid explores one level per diagonal: 2n-1 levels, the last of
	// which finds no new states.
	if levels != 2*n-1 {
		t.Fatalf("saw %d level events, want %d", levels, 2*n-1)
	}
	if last.Kind != obs.KindRunEnd {
		t.Fatalf("last event = %s, want run_end", last.Kind)
	}
	snap := last.Snapshot
	if snap == nil || !snap.Final {
		t.Fatalf("run_end snapshot = %+v, want final", snap)
	}
	st := res.Stats
	if snap.States != st.States || snap.Edges != st.Edges || snap.Depth != st.Depth ||
		snap.Expansions != st.Expansions || snap.DedupHits != st.DedupHits ||
		snap.PeakFrontier != st.PeakFrontier || snap.Truncated != st.Truncated {
		t.Fatalf("run_end totals %+v != returned stats %+v", *snap, st)
	}
	if len(snap.WorkerSteps) != len(st.WorkerSteps) {
		t.Fatalf("run_end worker steps %v != stats %v", snap.WorkerSteps, st.WorkerSteps)
	}
}

// TestTelemetryTruncated: the limit trip publishes a truncated event before
// run_end, and both carry Truncated.
func TestTelemetryTruncated(t *testing.T) {
	sink := &collectSink{}
	res, err := Explore([]string{"0,0"}, gridExpand(64), Options{
		MaxStates: 100, Sink: sink, SnapshotEvery: -1,
	})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	if !res.Truncated {
		t.Fatal("expected a truncated result")
	}
	evs := sink.events()
	var sawTruncated bool
	for _, ev := range evs {
		if ev.Kind == obs.KindTruncated {
			sawTruncated = true
			if !ev.Snapshot.Truncated {
				t.Fatal("truncated event's snapshot not marked truncated")
			}
		}
	}
	if !sawTruncated {
		t.Fatal("no truncated event published")
	}
	last := evs[len(evs)-1]
	if last.Kind != obs.KindRunEnd || !last.Snapshot.Truncated {
		t.Fatalf("last event = %+v, want truncated run_end", last)
	}
}

// TestMonitorSnapshotsDuringExploration is the -race regression for the
// live-read paths: a fast monitor publishes timer snapshots (reading the
// interned-state counter and the per-worker step counters, which workers
// are concurrently incrementing) while external readers hammer snapshot
// formatting and the /metrics endpoint. Before worker.steps became atomic
// this raced; mid-run engine.Stats reads were never supported — the
// snapshot stream asserted race-free here is the replacement.
func TestMonitorSnapshotsDuringExploration(t *testing.T) {
	live := obs.NewLive(nil)
	sink := &collectSink{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rr := httptest.NewRecorder()
			live.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
			for _, ev := range sink.events() {
				if ev.Snapshot != nil {
					_ = ev.Snapshot.String()
					_ = ev.Snapshot.Utilization()
				}
			}
		}
	}()
	for i := 0; i < 3; i++ {
		res, err := Explore([]string{"0,0"}, gridExpand(48), Options{
			Parallelism:   8,
			Sink:          obs.MultiSink{live, sink},
			SnapshotEvery: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("Explore: %v", err)
		}
		_ = res.Stats.String() // the post-run read is always safe
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotEveryDefault: zero means DefaultSnapshotEvery, negative
// disables the monitor entirely; both still publish the deterministic
// skeleton.
func TestSnapshotEveryDefault(t *testing.T) {
	sink := &collectSink{}
	if _, err := Explore([]string{"0,0"}, gridExpand(6), Options{Sink: sink}); err != nil {
		t.Fatalf("Explore: %v", err)
	}
	evs := sink.events()
	// A millisecond-scale run cannot tick a 1s timer: every event must be
	// deterministic, and the skeleton must be complete.
	for _, ev := range evs {
		if ev.Kind == obs.KindSnapshot {
			t.Fatalf("unexpected timer snapshot on a sub-second run")
		}
	}
	if evs[0].Kind != obs.KindRunStart || evs[len(evs)-1].Kind != obs.KindRunEnd {
		t.Fatalf("incomplete event skeleton: first=%s last=%s", evs[0].Kind, evs[len(evs)-1].Kind)
	}
}
