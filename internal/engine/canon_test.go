package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// mirrorGridCanon quotients the grid under the diagonal reflection
// (x,y) -> (y,x), which commutes with gridExpand (right and up swap). The
// representative is the lexicographic minimum of the two renderings.
func mirrorGridCanon(s string) string {
	i := strings.IndexByte(s, ',')
	m := s[i+1:] + "," + s[:i]
	if m < s {
		return m
	}
	return s
}

func TestQuotientGrid(t *testing.T) {
	const n = 12
	full, err := Explore([]string{"0,0"}, gridExpand(n), Options{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	if len(full.States) != n*n {
		t.Fatalf("full states = %d, want %d", len(full.States), n*n)
	}
	quo, err := Explore([]string{"0,0"}, gridExpand(n), Options{
		Canon:       Canonicalizer[string](mirrorGridCanon),
		VerifyCanon: 1,
	})
	if err != nil {
		t.Fatalf("quotient explore: %v", err)
	}
	want := n * (n + 1) / 2
	if len(quo.States) != want {
		t.Fatalf("quotient states = %d, want %d", len(quo.States), want)
	}
	for _, s := range quo.States {
		if mirrorGridCanon(s) != s {
			t.Fatalf("non-canonical state %q in quotient result", s)
		}
	}
	st := quo.Stats
	if !st.CanonEnabled {
		t.Fatalf("CanonEnabled = false on a quotient run")
	}
	if st.RawStates <= len(quo.States) {
		t.Fatalf("RawStates = %d, want > quotient states %d", st.RawStates, len(quo.States))
	}
	if st.CanonHits == 0 {
		t.Fatalf("CanonHits = 0, want > 0")
	}
	if rf := st.ReductionFactor(); rf <= 1 {
		t.Fatalf("ReductionFactor = %v, want > 1", rf)
	}
	if !strings.Contains(st.String(), "reduction=") {
		t.Fatalf("Stats.String() missing reduction telemetry: %q", st.String())
	}
}

func TestQuotientDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(par, maxStates int) (*Result[string], error) {
		return Explore([]string{"0,0"}, gridExpand(40), Options{
			Parallelism: par,
			MaxStates:   maxStates,
			Canon:       mirrorGridCanon, // plain func form
		})
	}
	for _, maxStates := range []int{0, 300} {
		ref, err := run(1, maxStates)
		wantTrunc := maxStates != 0
		if wantTrunc != errors.Is(err, ErrStateLimit) {
			t.Fatalf("max=%d: sequential err = %v", maxStates, err)
		}
		for _, par := range []int{2, 8} {
			got, err := run(par, maxStates)
			if wantTrunc != errors.Is(err, ErrStateLimit) {
				t.Fatalf("max=%d par=%d: err = %v", maxStates, par, err)
			}
			mustEqualResults(t, fmt.Sprintf("max=%d par=%d", maxStates, par), ref, got)
			if got.Stats.RawStates != ref.Stats.RawStates {
				t.Fatalf("max=%d par=%d: RawStates = %d, want %d", maxStates, par, got.Stats.RawStates, ref.Stats.RawStates)
			}
			if got.Stats.CanonHits != ref.Stats.CanonHits {
				t.Fatalf("max=%d par=%d: CanonHits = %d, want %d", maxStates, par, got.Stats.CanonHits, ref.Stats.CanonHits)
			}
		}
	}
}

func TestCanonRejectsWrongType(t *testing.T) {
	_, err := Explore([]string{"0,0"}, gridExpand(4), Options{Canon: 42})
	if err == nil || !strings.Contains(err.Error(), "Options.Canon") {
		t.Fatalf("err = %v, want Canon type error", err)
	}
	_, err = Explore([]string{"0,0"}, gridExpand(4), Options{Canon: func(s int) int { return s }})
	if err == nil || !strings.Contains(err.Error(), "Options.Canon") {
		t.Fatalf("err = %v, want Canon type error for mismatched state type", err)
	}
}

func TestVerifyCanonCatchesNonIdempotent(t *testing.T) {
	// Always reflecting is an involution, not a projection: applying it
	// twice returns to the start, so it picks no representative.
	reflect := func(s string) string {
		i := strings.IndexByte(s, ',')
		return s[i+1:] + "," + s[:i]
	}
	for _, par := range []int{1, 4} {
		_, err := Explore([]string{"0,1"}, gridExpand(6), Options{
			Parallelism: par,
			Canon:       reflect,
			VerifyCanon: 1,
		})
		if !errors.Is(err, ErrCanonUnsound) {
			t.Fatalf("par=%d: err = %v, want ErrCanonUnsound", par, err)
		}
		if !strings.Contains(err.Error(), "idempotent") {
			t.Fatalf("par=%d: err = %v, want idempotence complaint", par, err)
		}
	}
}

func TestVerifyCanonCatchesNonCommuting(t *testing.T) {
	// Rounding down to even is idempotent but does not commute with the
	// chain step: succ(3) canonicalizes to {4} while succ(canon(3)) = succ(2)
	// canonicalizes to {2}.
	roundDown := func(s int) int { return s - s%2 }
	for _, par := range []int{1, 4} {
		_, err := Explore([]int{0}, chainExpand(10), Options{
			Parallelism: par,
			Canon:       roundDown,
			VerifyCanon: 1,
		})
		if !errors.Is(err, ErrCanonUnsound) {
			t.Fatalf("par=%d: err = %v, want ErrCanonUnsound", par, err)
		}
		if !strings.Contains(err.Error(), "step-commuting") {
			t.Fatalf("par=%d: err = %v, want step-commutation complaint", par, err)
		}
	}
}

func TestVerifyCanonSampling(t *testing.T) {
	// A sparse sampling modulus still catches a broken canonicalizer on a
	// large enough system, and sampling is fingerprint-keyed, so the same
	// modulus fails identically at any worker count. The pure reflection
	// keeps the exploration alive (it merges nothing), leaving thousands of
	// off-diagonal states as check candidates.
	reflect := func(s string) string {
		i := strings.IndexByte(s, ',')
		return s[i+1:] + "," + s[:i]
	}
	for _, par := range []int{1, 4} {
		_, err := Explore([]string{"0,0"}, gridExpand(60), Options{
			Parallelism: par,
			Canon:       reflect,
			VerifyCanon: 64,
		})
		if !errors.Is(err, ErrCanonUnsound) {
			t.Fatalf("par=%d: sampled check missed the unsound canonicalizer: %v", par, err)
		}
	}
}
