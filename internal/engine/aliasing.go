package engine

import (
	"errors"
	"fmt"
)

// ErrAliasUnsound is wrapped by the error Explore returns when the
// VerifyAliasing falsifier catches an expansion whose emissions change on
// re-expansion with poisoned scratch — a system illegally retaining
// emitted slices or scratch-buffer contents across expansions, or one
// that is not a pure function of its state.
var ErrAliasUnsound = errors.New("engine: expansion failed buffer-aliasing check")

// poisonByte overwrites reused scratch between the recorded expansion and
// the verification re-expansion: stale views read garbage instead of
// accidentally-still-valid data, turning latent aliasing bugs into loud,
// deterministic divergences.
const poisonByte = 0xDB

// poisonScratch fills the worker's reusable buffers with poisonByte. Only
// the engine-owned buffers can be poisoned here; the system's private
// scratch (Ctx.Sys) is instead exercised by the re-expansion itself, which
// must reproduce the original emissions while reusing it.
func poisonScratch[S comparable](ws *worker[S]) {
	for i := range ws.ctx.Scratch {
		ws.ctx.Scratch[i] = poisonByte
	}
	for i := range ws.canonBuf {
		ws.canonBuf[i] = poisonByte
	}
}

// checkAliasing re-expands s after poisoning the reusable scratch buffers
// and compares the emitted (successor, label, actor) sequence against the
// transitions just recorded in the worker's arena at sp. Successors are
// resolved by Probe — the recorded pass interned every one of them, so a
// missing probe is itself a divergence. Runs on the worker's own Ctx so
// the system's retained scratch (Ctx.Sys) is reused, exactly as it will be
// on the next real expansion.
func (e *explorer[S]) checkAliasing(s S, ws *worker[S], sp span) {
	poisonScratch(ws)
	got := ws.aliasBuf[:0]
	missing := false
	x := &ws.ctx
	x.sink = func(to S, label string, actor int) {
		if e.canon != nil {
			to = e.canon(to)
		}
		tid, ok := e.store.Probe(to)
		if !ok {
			missing = true
			tid = -1
		}
		got = append(got, rawEdge{to: tid, actor: int32(actor), label: label})
	}
	e.expand(s, x)
	x.sink = nil
	ws.aliasBuf = got
	want := ws.arena[sp.off : sp.off+sp.n]
	if missing || len(got) != len(want) {
		e.noteVerifyErr(fmt.Errorf("%w: state %v emitted %d transitions on poisoned re-expansion, want %d (system retains emitted or scratch buffers?)",
			ErrAliasUnsound, s, len(got), len(want)))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			e.noteVerifyErr(fmt.Errorf("%w: state %v transition %d diverged on poisoned re-expansion: got (to=%d label=%q actor=%d), want (to=%d label=%q actor=%d)",
				ErrAliasUnsound, s, i, got[i].to, got[i].label, got[i].actor, want[i].to, want[i].label, want[i].actor))
			return
		}
	}
}

// checkAliasingPOR is checkAliasing for the partial-order-reduced path: it
// compares against the full collected action set (ws.acts, before ample
// selection), since the arena only records the ample subset.
func (e *explorer[S]) checkAliasingPOR(s S, ws *worker[S]) {
	poisonScratch(ws)
	got := ws.aliasActs[:0]
	x := &ws.ctx
	old := x.sink
	x.sink = func(to S, label string, actor int) {
		got = append(got, Action[S]{To: to, Label: label, Actor: actor})
	}
	e.expand(s, x)
	x.sink = old
	ws.aliasActs = got
	want := ws.acts
	if len(got) != len(want) {
		e.noteVerifyErr(fmt.Errorf("%w: state %v emitted %d transitions on poisoned re-expansion, want %d (system retains emitted or scratch buffers?)",
			ErrAliasUnsound, s, len(got), len(want)))
		return
	}
	for i := range want {
		if got[i] != want[i].act {
			e.noteVerifyErr(fmt.Errorf("%w: state %v transition %d diverged on poisoned re-expansion: got (to=%v label=%q actor=%d), want (to=%v label=%q actor=%d)",
				ErrAliasUnsound, s, i, got[i].To, got[i].Label, got[i].Actor, want[i].act.To, want[i].act.Label, want[i].act.Actor))
			return
		}
	}
}
