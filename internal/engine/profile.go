package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Phase-attribution profiling. Enabled whenever the caller can observe the
// result (Options.Stats or Options.Sink installed); with neither, every
// worker's prof pointer stays nil and the engine keeps its zero-cost
// disabled path. The design keeps clock reads off the per-state hot path:
//
//   - Coarse counters (expand, barrier-wait, steal, handoff, idle) are a
//     per-worker *phase clock*: each worker attributes wall time at phase
//     transitions, which happen per level, per batch, or per steal — never
//     per state. Consecutive expansions share one running interval.
//   - The fine canon/intern split inside expansion time is *sampled*: one
//     state in 64 (by provisional id) is timed end-to-end, with its
//     canonicalization and hash+intern sections timed individually along
//     the Ctx emit paths. Sample counters are reported raw
//     (obs.Phases.Sample*) so consumers scale them against each other.
//   - Coordinator-only phases (store maintenance, replay) are timed
//     directly around their calls.
//
// Everything recorded here is timing, never structure: profiles are
// excluded from trace digests and from diffStats, so the determinism
// contract (byte-identical results at any worker count, with or without
// profiling) is untouched. The overhead contract is the obs layer's ≤3%;
// measured figures live in EXPERIMENTS.md.

// Phase-clock indices (phaseProf.counters).
const (
	phExpand = iota
	phBarrier
	phSteal
	phHandoff
	phIdle
	phCount
)

// profSampleMask selects 1 state in 64 (provisional id & mask == 0) for
// fine-grained timing. Provisional ids are scheduling-dependent, which is
// fine: the sample population varies run to run, the reported fractions
// converge, and nothing digest-relevant depends on them.
const profSampleMask = 63

// phaseProf is one worker's phase profile. The counters are atomics so
// the telemetry monitor can read mid-run; cur/last (the phase clock) are
// owned by the worker's current goroutine and never read elsewhere.
type phaseProf struct {
	counters [phCount]atomic.Int64
	cur      int
	last     time.Time

	sampled      atomic.Uint64
	sampleExpand atomic.Int64
	sampleCanon  atomic.Int64
	sampleIntern atomic.Int64
	expandLat    obs.Hist
}

// resume starts the phase clock in phase ph, discarding any un-flushed
// interval (used at worker-loop entry, once per level or per run).
func (p *phaseProf) resume(ph int) { p.cur, p.last = ph, time.Now() }

// to folds the elapsed interval into the current phase and switches to ph.
func (p *phaseProf) to(ph int) {
	now := time.Now()
	p.counters[p.cur].Add(int64(now.Sub(p.last)))
	p.cur, p.last = ph, now
}

// flush folds the trailing interval without switching phase (worker-loop
// exit).
func (p *phaseProf) flush() { p.to(p.cur) }

// noteSample records one fine-sampled state's end-to-end expansion time.
func (p *phaseProf) noteSample(d time.Duration) {
	ns := int64(d)
	p.sampled.Add(1)
	p.sampleExpand.Add(ns)
	p.expandLat.Observe(ns)
}

// snapshot renders the worker's counters as an obs.Phases (coordinator
// phases excluded; collectPhases adds those to the aggregate only).
func (p *phaseProf) snapshot() obs.Phases {
	return obs.Phases{
		ExpandNs:       p.counters[phExpand].Load(),
		BarrierWaitNs:  p.counters[phBarrier].Load(),
		StealNs:        p.counters[phSteal].Load(),
		HandoffNs:      p.counters[phHandoff].Load(),
		IdleNs:         p.counters[phIdle].Load(),
		SampledStates:  p.sampled.Load(),
		SampleExpandNs: p.sampleExpand.Load(),
		SampleCanonNs:  p.sampleCanon.Load(),
		SampleInternNs: p.sampleIntern.Load(),
	}
}

// waitBarrier is the coordinator's fork/join wait, attributed to the
// coordinating worker's barrier phase (nil-tolerant for unprofiled runs).
func waitBarrier(p *phaseProf, wg *sync.WaitGroup) {
	if p == nil {
		wg.Wait()
		return
	}
	t := time.Now()
	wg.Wait()
	p.counters[phBarrier].Add(int64(time.Since(t)))
}

// profiled reports whether this run records phases.
func (e *explorer[S]) profiled() bool { return e.workers[0].prof != nil }

// maintainStore wraps store.Maintain with store-I/O attribution.
func (e *explorer[S]) maintainStore(keepFrom int32) error {
	if !e.profiled() {
		return e.store.Maintain(keepFrom)
	}
	t := time.Now()
	err := e.store.Maintain(keepFrom)
	e.profStoreIO.Add(int64(time.Since(t)))
	return err
}

// replayTimed wraps the sequential replay pass with its attribution.
func (e *explorer[S]) replayTimed(initIDs []int32, limit int) (*Result[S], error) {
	if !e.profiled() {
		return e.replay(initIDs, limit)
	}
	t := time.Now()
	res, err := e.replay(initIDs, limit)
	e.profReplay.Add(int64(time.Since(t)))
	return res, err
}

// livePhases is the telemetry monitor's mid-run aggregate view: worker
// counters summed, coordinator phases added, plus the merged sampled
// expansion-latency histogram (nil while empty). Reads only atomics, so it
// is safe against running workers; in-flight phase intervals are simply
// not yet folded in.
func (e *explorer[S]) livePhases() (obs.Phases, *obs.HistSnap) {
	var agg obs.Phases
	var lat obs.HistSnap
	if !e.profiled() {
		return agg, nil
	}
	for _, ws := range e.workers {
		agg.Add(ws.prof.snapshot())
		lat.Add(ws.prof.expandLat.Snapshot())
	}
	agg.StoreIONs = e.profStoreIO.Load()
	agg.ReplayNs = e.profReplay.Load()
	if lat.Count == 0 {
		return agg, nil
	}
	return agg, &lat
}

// collectPhases fills st's final phase profile: per-worker breakdowns,
// the run-wide aggregate, and the merged sampled-latency histogram.
func (e *explorer[S]) collectPhases(st *Stats) {
	if !e.profiled() {
		return
	}
	var agg obs.Phases
	var lat obs.HistSnap
	for _, ws := range e.workers {
		p := ws.prof.snapshot()
		st.WorkerPhases = append(st.WorkerPhases, p)
		agg.Add(p)
		lat.Add(ws.prof.expandLat.Snapshot())
	}
	agg.StoreIONs = e.profStoreIO.Load()
	agg.ReplayNs = e.profReplay.Load()
	st.Phases = agg
	st.ExpandLat = lat
}
