package engine

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// runSchedRef runs the barrier w=1 reference for a scheduler-equivalence
// check and returns the Result plus its trace digest. err is filtered the
// way the differential oracle filters it: ErrStateLimit still carries the
// canonical partial Result.
func runSchedRef(t *testing.T, inits []string, expand ExpandFunc[string], opts Options) (*Result[string], *obs.Digest, error) {
	t.Helper()
	dig := obs.NewDigest()
	opts.Parallelism = 1
	opts.Sink, opts.SnapshotEvery = dig, -1
	res, err := Explore(inits, expand, opts)
	if err != nil && !errors.Is(err, ErrStateLimit) {
		t.Fatalf("barrier reference: %v", err)
	}
	return res, dig, err
}

// mustMatchSteal runs the same exploration under Sched="steal" at the
// given worker count and checks the full scheduler-equivalence contract
// against the barrier reference: byte-identical Result, equal trace
// digest, equal invariant telemetry, same error class, and internally
// consistent stats.
func mustMatchSteal(t *testing.T, label string, inits []string, expand ExpandFunc[string],
	opts Options, nw int, want *Result[string], wantDig *obs.Digest, wantErr error) {
	t.Helper()
	dig := obs.NewDigest()
	opts.Sched = "steal"
	opts.Parallelism = nw
	opts.Sink, opts.SnapshotEvery = dig, -1
	got, err := Explore(inits, expand, opts)
	if errors.Is(wantErr, ErrStateLimit) != errors.Is(err, ErrStateLimit) {
		t.Fatalf("%s: error class diverged: barrier %v, steal %v", label, wantErr, err)
	}
	if err != nil && !errors.Is(err, ErrStateLimit) {
		t.Fatalf("%s: %v", label, err)
	}
	mustEqualResults(t, label, want, got)
	if dig.Sum() != wantDig.Sum() {
		t.Errorf("%s: trace digest diverged: steal %s, barrier %s", label, dig.Sum(), wantDig.Sum())
	}
	if msg := diffStats(want.Stats, got.Stats); msg != "" {
		t.Errorf("%s: invariant telemetry diverged: %s", label, msg)
	}
	if msg := statsConsistency(got); msg != "" {
		t.Errorf("%s: inconsistent telemetry: %s", label, msg)
	}
	if got.Stats.Sched != "steal" {
		t.Errorf("%s: Stats.Sched = %q, want \"steal\"", label, got.Stats.Sched)
	}
}

// TestStealSchedulerDifferential is the scheduler-equivalence acceptance
// matrix: every reduction stack (full, canon, POR, canon+POR — the POR
// rows exercise the epoch submode) over the mem and spill backends (spill
// also forces epoch mode), at workers 1, 2, 8 and 16, must reproduce the
// barrier scheduler's canonical Result, trace digest and invariant
// telemetry byte for byte.
func TestStealSchedulerDifferential(t *testing.T) {
	const n = 16
	inits := []string{"0,0"}
	modes := []struct {
		name string
		opts Options
	}{
		{"full", Options{}},
		{"canon", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4}},
		{"por", Options{Independent: gridIndep}},
		{"canon+por", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4, Independent: gridIndep}},
	}
	stores := []struct {
		name string
		cfg  store.Config
	}{
		{"mem", store.Config{}},
		{"spill", store.Config{Kind: store.Spill, MaxBytes: 1 << 10, PageBits: 5}},
	}
	for _, m := range modes {
		for _, sc := range stores {
			t.Run(m.name+"/"+sc.name, func(t *testing.T) {
				opts := m.opts
				opts.Store = sc.cfg
				opts.VerifyAliasing = 4
				want, wantDig, wantErr := runSchedRef(t, inits, gridExpandBytes(n), opts)
				for _, nw := range []int{1, 2, 8, 16} {
					mustMatchSteal(t, fmt.Sprintf("%s/%s workers=%d", m.name, sc.name, nw),
						inits, gridExpandBytes(n), opts, nw, want, wantDig, wantErr)
				}
			})
		}
	}
}

// TestStealTruncation pins the epoch-granular MaxStates contract: the
// free-running scheduler overshoots the limit during discovery, but the
// canonically truncated Result, the ErrStateLimit error, the truncation
// level and the derived counters must all match the barrier scheduler's.
func TestStealTruncation(t *testing.T) {
	const n = 16
	inits := []string{"0,0"}
	cases := []struct {
		name string
		opts Options
	}{
		{"full", Options{MaxStates: 100}},
		{"canon", Options{MaxStates: 40, Canon: sortCanon, CanonBytes: sortCanonBytes}},
		{"por", Options{MaxStates: 20, Independent: gridIndep}},
		{"spill", Options{MaxStates: 100, Store: store.Config{Kind: store.Spill, MaxBytes: 1 << 10, PageBits: 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantDig, wantErr := runSchedRef(t, inits, gridExpandBytes(n), tc.opts)
			if !errors.Is(wantErr, ErrStateLimit) || !want.Truncated {
				t.Fatalf("barrier reference not truncated: err=%v truncated=%v", wantErr, want.Truncated)
			}
			for _, nw := range []int{1, 8} {
				mustMatchSteal(t, fmt.Sprintf("%s workers=%d", tc.name, nw),
					inits, gridExpandBytes(n), tc.opts, nw, want, wantDig, wantErr)
			}
		})
	}
}

// TestStealBitstate covers the lossy backend under steal: bitstate does
// not implement the single-writer interning extension, so ownership is
// purely a scheduling concern and interning takes the shard lock. At full
// fingerprint width the run is collision-free on this input, so the graph
// still matches the barrier run exactly (and stays flagged lossy).
func TestStealBitstate(t *testing.T) {
	inits := []string{"0,0"}
	opts := Options{Store: store.Config{Kind: store.Bitstate}}
	want, wantDig, wantErr := runSchedRef(t, inits, gridExpandBytes(12), opts)
	if !want.Stats.Lossy {
		t.Fatal("bitstate reference not flagged lossy")
	}
	for _, nw := range []int{1, 8} {
		mustMatchSteal(t, fmt.Sprintf("bitstate workers=%d", nw),
			inits, gridExpandBytes(12), opts, nw, want, wantDig, wantErr)
	}
}

// TestStealObsPassive is the observability-passivity gate for the steal
// scheduler: attaching a sink with aggressive timer snapshots (which read
// the live scheduler gauges — steals, handoff batches, queue occupancy —
// concurrently with free-running discovery) must not perturb the
// exploration. Results are compared byte for byte against a sink-free run.
func TestStealObsPassive(t *testing.T) {
	const n = 20
	inits := []string{"0,0"}
	plain := Options{Sched: "steal", Parallelism: 8}
	want, err := Explore(inits, gridExpandBytes(n), plain)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recSink{}
	observed := plain
	observed.Sink = rec
	observed.SnapshotEvery = 100 * time.Microsecond
	got, err := Explore(inits, gridExpandBytes(n), observed)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "steal with sink", want, got)
	if msg := diffStats(want.Stats, got.Stats); msg != "" {
		t.Errorf("sink perturbed invariant telemetry: %s", msg)
	}
	rec.mu.Lock()
	events := rec.events
	rec.mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	sawSched := false
	for _, ev := range events {
		if ev.Kind == obs.KindRunStart && ev.Config != nil && ev.Config.Sched == "steal" {
			sawSched = true
		}
	}
	if !sawSched {
		t.Error("run_start event does not carry Sched=steal")
	}
}

// recSink records every published event; Publish is concurrency-safe, as
// the Sink contract requires (the monitor goroutine publishes snapshots
// concurrently with the coordinator's deterministic events).
type recSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recSink) Publish(ev obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// braidState is one state of the deep-narrow workload below: `lanes`
// parallel chains of length `depth` hanging off a single root (lane -1).
type braidState struct{ lane, pos int32 }

// braidExpand is the chain topology the steal scheduler exists for:
// branching factor ~1, depth in the thousands. The barrier scheduler
// degenerates to sequential execution on it (every level has at most
// `lanes` states); free-running discovery keeps all workers busy walking
// lanes concurrently and forwarding cross-shard successors.
func braidExpand(lanes, depth int32) ExpandFunc[braidState] {
	return func(s braidState, x *Ctx[braidState]) {
		if s.lane < 0 {
			for l := int32(0); l < lanes; l++ {
				x.Emit(braidState{lane: l, pos: 1}, "start", int(l))
			}
			return
		}
		if s.pos < depth {
			x.Emit(braidState{lane: s.lane, pos: s.pos + 1}, "step", int(s.lane))
		}
	}
}

// TestStealChainSmoke drives the deep-narrow braid at GOMAXPROCS=16 under
// both schedulers and checks the byte-identity contract plus the planted
// closed-form state count. This is the shape where free-running discovery
// must not deadlock, livelock or drop lane tails: progress depends
// entirely on handoff batches flushing promptly when workers go idle.
func TestStealChainSmoke(t *testing.T) {
	prev := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(prev)
	const lanes, depth = 8, 1500
	inits := []braidState{{lane: -1}}
	refDig := obs.NewDigest()
	want, err := Explore(inits, braidExpand(lanes, depth), Options{Parallelism: 1, Sink: refDig, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if wantStates := 1 + lanes*depth; len(want.States) != wantStates {
		t.Fatalf("braid states = %d, want %d", len(want.States), wantStates)
	}
	for _, nw := range []int{2, 8, 16} {
		dig := obs.NewDigest()
		got, err := Explore(inits, braidExpand(lanes, depth),
			Options{Sched: "steal", Parallelism: nw, Sink: dig, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("steal workers=%d: %v", nw, err)
		}
		mustEqualResults(t, fmt.Sprintf("braid steal workers=%d", nw), want, got)
		if dig.Sum() != refDig.Sum() {
			t.Errorf("braid steal workers=%d: trace digest diverged", nw)
		}
		if msg := diffStats(want.Stats, got.Stats); msg != "" {
			t.Errorf("braid steal workers=%d: %s", nw, msg)
		}
	}
}

// TestStealUnknownSched pins the option-validation error scheme.
func TestStealUnknownSched(t *testing.T) {
	_, err := Explore([]string{"0,0"}, gridExpandBytes(4), Options{Sched: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("Sched=bogus: err = %v, want unknown-scheduler error", err)
	}
}

// TestStealVerifyCanon checks the sampled canonicalizer falsifier still
// fails fast under free-running discovery: without level barriers the
// workers poll the sticky verify error per expansion instead.
func TestStealVerifyCanon(t *testing.T) {
	broken := func(s string) string { return s + "#" } // never idempotent
	_, err := Explore([]string{"0,0"}, gridExpandBytes(8),
		Options{Sched: "steal", Parallelism: 8, Canon: broken, VerifyCanon: 1})
	if !errors.Is(err, ErrCanonUnsound) {
		t.Fatalf("broken canon under steal: err = %v, want ErrCanonUnsound", err)
	}
}

// TestStealVerifyAliasing checks the free-running aliasing falsifier
// (fingerprint-signature comparison instead of the barrier scheduler's
// id-based Probe) catches a buffer-retaining system.
func TestStealVerifyAliasing(t *testing.T) {
	r := &retainingExpand{}
	_, err := Explore([]string{"a"}, r.expand,
		Options{Sched: "steal", Parallelism: 1, VerifyAliasing: 1, MaxStates: 100})
	if !errors.Is(err, ErrAliasUnsound) {
		t.Fatalf("buffer-retaining system under steal: err = %v, want ErrAliasUnsound", err)
	}
}
