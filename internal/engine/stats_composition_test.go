package engine

import "testing"

// This file pins the telemetry contract under mode composition with exact
// numbers on a fixed two-component space: two independent one-step chains
// A->B (state "XY", component i flips byte i, actors 0 and 1). Small enough
// to account for every counter by hand:
//
//   full graph        AA -> {BA, AB} -> BB      4 states, 4 edges
//   sorted-byte canon AA -> AB -> BB            3 states, 3 edges
//   ample-set POR     AA -> BA -> BB            3 states, 2 edges
//   canon + POR       AA -> AB -> BB            3 states, 2 edges
//
// Every number must be identical at workers 1, 2 and 8 — the counters are
// part of the deterministic Result, not best-effort diagnostics.

func twoChainExpand(s string, x *Ctx[string]) {
	for i := 0; i < len(s); i++ {
		if s[i] == 'A' {
			b := []byte(s)
			b[i] = 'B'
			x.Emit(string(b), "s", i)
		}
	}
}

func sortTwoBytes(s string) string {
	if s[0] > s[1] {
		return string([]byte{s[1], s[0]})
	}
	return s
}

func twoChainIndep(_ string, a, b Action[string]) bool { return a.Actor != b.Actor }

// statsExpect is the hand-derived subset of Stats pinned by these tests.
type statsExpect struct {
	states, edges, depth, peak              int
	expansions, dedup                       uint64
	rawStates                               int
	canonHits, ampleStates, deferredActions uint64
	canonEnabled, porEnabled                bool
}

func checkStats(t *testing.T, label string, got Stats, want statsExpect) {
	t.Helper()
	if got.States != want.states || got.Edges != want.edges || got.Depth != want.depth || got.PeakFrontier != want.peak {
		t.Fatalf("%s: shape = states=%d edges=%d depth=%d peak=%d, want states=%d edges=%d depth=%d peak=%d",
			label, got.States, got.Edges, got.Depth, got.PeakFrontier, want.states, want.edges, want.depth, want.peak)
	}
	if got.Expansions != want.expansions || got.DedupHits != want.dedup {
		t.Fatalf("%s: expansions=%d dedup=%d, want expansions=%d dedup=%d",
			label, got.Expansions, got.DedupHits, want.expansions, want.dedup)
	}
	if got.CanonEnabled != want.canonEnabled || got.RawStates != want.rawStates || got.CanonHits != want.canonHits {
		t.Fatalf("%s: canon telemetry enabled=%v raw=%d hits=%d, want enabled=%v raw=%d hits=%d",
			label, got.CanonEnabled, got.RawStates, got.CanonHits, want.canonEnabled, want.rawStates, want.canonHits)
	}
	if got.POREnabled != want.porEnabled || got.AmpleStates != want.ampleStates || got.DeferredActions != want.deferredActions {
		t.Fatalf("%s: POR telemetry enabled=%v ample=%d deferred=%d, want enabled=%v ample=%d deferred=%d",
			label, got.POREnabled, got.AmpleStates, got.DeferredActions, want.porEnabled, want.ampleStates, want.deferredActions)
	}
}

func TestStatsExactUnderComposition(t *testing.T) {
	cases := []struct {
		mode string
		opts Options
		want statsExpect
	}{
		{
			// AA expands to BA and AB; both expand to BB (one DedupHit).
			mode: "full",
			opts: Options{},
			want: statsExpect{states: 4, edges: 4, depth: 3, peak: 2, expansions: 4, dedup: 1},
		},
		{
			// BA canonicalizes to AB (one CanonHit); four raw states collapse
			// to three orbit representatives, and the two level-1 arrivals at
			// AB dedup once.
			mode: "canon",
			opts: Options{Canon: sortTwoBytes, VerifyCanon: 1},
			want: statsExpect{states: 3, edges: 3, depth: 3, peak: 1, expansions: 3, dedup: 1,
				canonEnabled: true, rawStates: 4, canonHits: 1},
		},
		{
			// At AA both actions are independent and invisible: the ample set
			// keeps actor 0 (one AmpleStates, one deferred action), leaving
			// the single chain AA -> BA -> BB.
			mode: "por",
			opts: Options{Independent: twoChainIndep, VerifyPOR: 1},
			want: statsExpect{states: 3, edges: 2, depth: 3, peak: 1, expansions: 3, dedup: 0,
				porEnabled: true, ampleStates: 1, deferredActions: 1},
		},
		{
			// Composition: the ample chain's BA is canonicalized to AB, so the
			// stack explores AA -> AB -> BB; both reduction counters fire.
			mode: "canon+por",
			opts: Options{Canon: sortTwoBytes, VerifyCanon: 1, Independent: twoChainIndep, VerifyPOR: 1},
			want: statsExpect{states: 3, edges: 2, depth: 3, peak: 1, expansions: 3, dedup: 0,
				canonEnabled: true, rawStates: 4, canonHits: 1,
				porEnabled: true, ampleStates: 1, deferredActions: 1},
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 8} {
			opts := tc.opts
			opts.Parallelism = workers
			var st Stats
			opts.Stats = &st
			res, err := Explore([]string{"AA"}, twoChainExpand, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.mode, workers, err)
			}
			label := tc.mode + "/workers=" + string(rune('0'+workers))
			checkStats(t, label, res.Stats, tc.want)
			// The caller-supplied sink must match the Result's copy.
			checkStats(t, label+"/sink", st, tc.want)
			if st.Workers != workers {
				t.Fatalf("%s: Stats.Workers = %d, want %d", label, st.Workers, workers)
			}
		}
	}
}
