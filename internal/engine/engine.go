// Package engine is the parallel reachability-exploration subsystem
// underneath every proof-technique checker in the library. It executes the
// unified model the paper calls for (§3.6, §4.4) at scale: a worker-pool
// breadth-first exploration over a fingerprint-sharded visited set, followed
// by a sequential canonicalization pass that renumbers the discovered graph
// into exactly the order a single-threaded BFS would have produced.
//
// The determinism guarantee is the load-bearing property: the returned
// Result — state numbering, edge order, BFS parent tree, initial-state ids —
// is byte-identical to a sequential exploration of the same system,
// regardless of worker count or interleaving. Every downstream analysis
// (valence, deciders, fair lassos, counterexample traces) is therefore
// reproducible across runs and across machines.
//
// The package deliberately does not import internal/core: core adapts its
// System interface onto Explore's callback form and assembles the Result
// into a core.Graph, so the engine stays independently testable (notably
// under -race) and free of import cycles.
//
// Correctness of the two-phase design rests on a BFS invariant: the set of
// states at distance d from the initial states is a function of the system
// alone, not of scheduling. The parallel phase explores whole levels at a
// time, so after every level barrier it has discovered exactly the states a
// sequential BFS would have discovered by the end of that level; the replay
// pass then re-walks the recorded successor lists in canonical order without
// ever calling back into the system.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ErrStateLimit is returned by Explore when the reachable state space
// exceeds the configured bound. The partial Result accompanying it is still
// valid — and still canonical: it is exactly the partial graph a sequential
// BFS would have built when it hit the same bound.
var ErrStateLimit = errors.New("engine: state limit exceeded during exploration")

// ErrNoInitialStates is returned when the system declares no initial states.
var ErrNoInitialStates = errors.New("engine: system has no initial states")

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// ExpandFunc enumerates the successors of s by calling x.Emit (or
// x.EmitBytes) once per outgoing transition, in a deterministic order. It
// must be safe to call concurrently from multiple goroutines — each call
// gets its worker's private Ctx — and must be a pure function of s: the
// determinism guarantee (and the visited-set dedup) are both built on
// "same state in, same transitions out". The Ctx (and its scratch
// buffers) is valid only for the duration of the call; see Ctx for the
// buffer-ownership contract.
type ExpandFunc[S comparable] func(s S, x *Ctx[S])

// Options configure an exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Parallelism is the worker count. Zero (or negative) means
	// runtime.GOMAXPROCS(0). One worker still runs the full two-phase
	// pipeline and produces the same canonical Result.
	Parallelism int
	// Stats, when non-nil, receives a copy of the exploration telemetry
	// (also available as Result.Stats).
	Stats *Stats
	// Canon, when non-nil, must be a Canonicalizer[S] (or plain func(S) S)
	// for the explored state type: every generated state is mapped to its
	// orbit representative before fingerprinting/interning, so the engine
	// explores the symmetry quotient instead of the full space. See
	// Canonicalizer for the soundness contract. A value of any other type is
	// an error.
	Canon any
	// VerifyCanon enables the canonicalizer safety check: every raw
	// (pre-canonicalization) state whose fingerprint is ≡ 0 mod VerifyCanon
	// is checked for idempotence and step-commutation, and Explore fails
	// with ErrCanonUnsound on a violation. 1 checks every state; 0 disables
	// the check. Sampling is by state fingerprint, so which states are
	// checked is independent of scheduling and worker count.
	VerifyCanon int
	// Independent, when non-nil, must be an Independence[S] (or the
	// equivalent plain func type) for the explored state type: the engine
	// then performs ample-set partial-order reduction, expanding at each
	// state only a dependence-closed proper subset of the enabled actions
	// when one exists and the cycle proviso permits it. See Independence for
	// the soundness contract. A value of any other type is an error.
	// Composes with Canon: the ample set is selected among the
	// canonicalized successors of each orbit representative.
	Independent any
	// Visible, when non-nil, must be a Visibility[S] (or the equivalent
	// plain func type): actions it marks visible are never placed in a
	// proper ample set (they may still be deferred). Only meaningful
	// together with Independent. See Visibility for the contract.
	Visible any
	// VerifyPOR enables the independence safety check: at every expanded
	// state whose fingerprint is ≡ 0 mod VerifyPOR, each pair of enabled
	// actions the relation declares independent is re-executed in both
	// orders, and Explore fails with ErrPORUnsound if either order is
	// disabled or the diamond lands in different states. 1 checks every
	// state; 0 disables the check. Sampling is by state fingerprint, so
	// which states are checked is independent of scheduling and worker
	// count.
	VerifyPOR int
	// CanonBytes, when non-nil, is the byte-level twin of Canon for
	// string-typed states: a BytesCanonicalizer (or a func()
	// BytesCanonicalizer factory, called once per worker so stateful
	// scratch canonicalizers stay single-threaded). With it installed, the
	// EmitBytes hot path canonicalizes successors without materializing
	// strings. It must agree with Canon exactly — see BytesCanonicalizer
	// for the contract; VerifyCanon cross-checks the two on sampled
	// states. Requires Canon; any other type is an error.
	CanonBytes any
	// VerifyAliasing enables the buffer-aliasing falsifier for the revised
	// expand API: every expanded state whose fingerprint is ≡ 0 mod
	// VerifyAliasing is re-expanded after the engine poisons the reusable
	// scratch buffer with 0xDB bytes, and Explore fails with
	// ErrAliasUnsound if the two emission sequences differ — which is what
	// happens when a system illegally retains emitted slices or scratch
	// contents across expansions (or is simply not a pure function of its
	// state). 1 checks every state; 0 disables the check. Sampling is by
	// state fingerprint, so it is independent of scheduling and worker
	// count.
	VerifyAliasing int
	// Sink, when non-nil, receives the run's streaming telemetry: a
	// run_start event, one level event per BFS barrier, timer-driven
	// progress snapshots, a truncated event when the state limit trips,
	// and a run_end event whose final snapshot totals equal the returned
	// Stats. Observation is passive — the Result is byte-identical with
	// and without a sink, at any worker count — and a nil Sink costs one
	// branch (no telemetry code runs at all). Publish is called from the
	// coordinator and from one monitor goroutine; see obs.Sink for the
	// concurrency contract.
	Sink obs.Sink
	// SnapshotEvery is the period of the timer-driven snapshots (only
	// meaningful with a Sink). Zero selects DefaultSnapshotEvery;
	// negative disables periodic snapshots, leaving the deterministic
	// barrier events.
	SnapshotEvery time.Duration
	// Store selects and parameterizes the visited-set backend (the zero
	// value is the RAM-resident sharded map the engine always had). The
	// mem and spill backends preserve the determinism contract bit for
	// bit; the bitstate backend is lossy and taints the run's Stats with
	// Lossy=true. See internal/store.
	Store store.Config
	// Sched selects the discovery scheduler. "" and "barrier" run the
	// level-synchronized fork/join loop (the default); "steal" runs the
	// persistent work-stealing worker pool: shard-owning workers with
	// private deques, batched frontier handoff, and termination detection
	// instead of per-level barriers (see sched_steal.go). Both schedulers
	// produce byte-identical Results, Stats invariants, and trace digests —
	// discovery order is free because the replay pass renumbers the graph
	// into sequential BFS order either way. Any other value is an error.
	Sched string

	// degradeFingerprint collapses the state fingerprint to two bits,
	// forcing heavy shard collisions. Test-only: it exercises the
	// full-state confirmation path that rules out fingerprint collisions.
	degradeFingerprint bool
}

// Edge is one canonical transition: To is the canonical id of the successor
// state.
type Edge struct {
	To    int
	Label string
	Actor int
}

// Result is the canonicalized exploration outcome. Ids are dense from 0 in
// sequential-BFS discovery order.
type Result[S comparable] struct {
	// States maps canonical id to state.
	States []S
	// Inits are the canonical ids of the (deduplicated) initial states, in
	// declaration order.
	Inits []int
	// Edges[i] are the outgoing transitions of state i, in expansion order.
	// A nil entry on a truncated Result marks a state whose expansion was
	// cut off by the state limit.
	Edges [][]Edge
	// Parents[i] is the canonical id of the state that first reached state
	// i in BFS order; -1 for initial states.
	Parents []int
	// ParentEdges[i] is the transition by which Parents[i] first reached i.
	ParentEdges []Edge
	// Truncated reports that the state limit cut the exploration short.
	Truncated bool
	// Stats is the exploration telemetry.
	Stats Stats
}

// rawEdge is the provisional-id form of a transition, recorded by workers
// during the parallel phase and rewritten by the canonicalization replay.
type rawEdge struct {
	to    int32
	actor int32
	label string
}

// span locates one state's recorded successors inside its expanding
// worker's arena.
type span struct {
	worker int32
	off    int32
	n      int32
}

// worker holds one worker's private exploration storage. arena is only
// ever touched by its owner during a level and by the coordinator between
// levels, so none of it needs locking.
type worker[S comparable] struct {
	// arena accumulates rawEdges; spans index into it by offset, so append
	// growth is safe.
	arena []rawEdge
	// steps counts states expanded by this worker over the whole run. It
	// is atomic — single-writer (the owner), read live by the telemetry
	// monitor goroutine for per-worker utilization snapshots.
	steps atomic.Uint64
	// dedup counts successor generations that hit an already-known state.
	dedup uint64
	// rawSeen fingerprints the raw (pre-canonicalization) states this worker
	// generated; the per-worker sets are unioned into Stats.RawStates. Nil
	// unless a canonicalizer is installed.
	rawSeen map[uint64]struct{}
	// canonHits counts generated states the canonicalizer remapped to a
	// different representative.
	canonHits uint64
	// acts and uf are scratch buffers for the POR path: the collected
	// actions of the state being expanded and the union-find array over
	// them.
	acts []porAction[S]
	uf   []int32
	// ampleStates counts expansions where a proper ample subset was taken;
	// deferred counts the enabled actions those expansions skipped.
	ampleStates uint64
	deferred    uint64
	// ctx is the worker's reusable expansion context; the same pointer is
	// handed to every ExpandFunc call this worker makes.
	ctx Ctx[S]
	// canonB and canonBuf are the worker's byte-level canonicalizer
	// instance and its output buffer (EmitBytes path only).
	canonB   BytesCanonicalizer
	canonBuf []byte
	// canonMemo caches, per distinct raw successor encoding, the interned
	// id its canonicalization produced, plus whether it was remapped (so
	// canonHits stays exact). Quotient exploration re-generates the same
	// raw successors constantly — orbit factor × branch factor times each —
	// and a hit replaces the full canonicalization (n! candidate renders
	// for the permutation canon) with one map probe. The cache is exact:
	// within a run, equal raw bytes canonicalize to equal bytes and
	// re-interning returns the same id, so a hit is extensionally identical
	// to re-running the pipeline. Per-worker, so no synchronization; capped
	// at canonMemoCap entries and cleared when full.
	canonMemo map[string]canonMemoEntry
	// aliasBuf and aliasActs are the VerifyAliasing re-expansion buffers.
	aliasBuf  []rawEdge
	aliasActs []Action[S]
	// sw is the worker's free-running-scheduler state (deques, chunked
	// edge arena, handoff channels); nil outside Sched == "steal"
	// free-running runs. See sched_steal.go.
	sw *stealWorker[S]
	// prof is the worker's phase-attribution profile; nil when profiling
	// is off (no Stats out-param and no Sink). profSampling marks the
	// current expansion as fine-sampled, so the Ctx emit paths divert to
	// their timed twins — one predictable always-false branch when
	// profiling is off. See profile.go.
	prof         *phaseProf
	profSampling bool
}

// canonMemoEntry is one canonMemo cache line.
type canonMemoEntry struct {
	id       int32
	remapped bool
}

// canonMemoCap bounds each worker's canon memo (roughly 100 bytes/entry
// for short encodings). Exceeding it drops the whole cache — correctness
// is unaffected, the next occurrences just re-pay the canonicalization.
const canonMemoCap = 1 << 18

// explorer is the shared state of one Explore run.
type explorer[S comparable] struct {
	expand ExpandFunc[S]
	// store is the visited set: the fingerprint-sharded id assignment and
	// the id -> payload table, behind the pluggable-backend interface
	// (RAM-resident map, disk-spilling, or lossy bitstate sweep). fp is
	// the fingerprint the store shards by, kept here too for the sampled
	// soundness checks.
	store store.StateStore[S]
	fp    func(*S) uint64

	// canon, when non-nil, maps every generated state to its orbit
	// representative before interning. verifyMod != 0 samples raw states
	// (by fingerprint) for the soundness check.
	canon     Canonicalizer[S]
	verifyMod uint64

	// The EmitBytes direct path: bytesIntern is the store's zero-copy
	// extension (nil when absent or unsupported), hashB the byte-level
	// fingerprint mirroring fp on string states, fromBytes the
	// materializer for the fallback paths. bytesDirect gates the whole
	// path: it additionally requires CanonBytes whenever a canonicalizer
	// is installed, so the bytes and string paths can never disagree
	// silently.
	bytesIntern store.BytesInterner
	bytesDirect bool
	hashB       func([]byte) uint64
	fromBytes   func([]byte) S

	// aliasMod != 0 samples expanded states (by fingerprint) for the
	// buffer-aliasing falsifier.
	aliasMod uint64

	// indep, when non-nil, switches expansion to the partial-order-reduced
	// path. porVerifyMod != 0 samples expanded states (by fingerprint) for
	// the commuting-diamond check.
	indep        Independence[S]
	visible      Visibility[S]
	porVerifyMod uint64

	// tel, when non-nil, is the run's streaming-telemetry state (see
	// telemetry.go). Every use is nil-guarded: with no sink installed the
	// engine pays one branch per barrier and nothing per state.
	tel *telemetry

	// The first canon/POR safety-check failure lands in verifyErr and
	// surfaces deterministically at the next level barrier. verifySet
	// mirrors "verifyErr != nil" as an atomic flag, so the free-running
	// scheduler's workers can fail fast without taking the mutex per
	// expansion.
	verifyMu  sync.Mutex
	verifyErr error
	verifySet atomic.Bool

	// spans and expanded are indexed by provisional id. They are only
	// appended to between level barriers; during a level, workers write
	// spans/expanded at the distinct indices they own. (The id -> state
	// payloads live in the store.)
	spans    []span
	expanded []bool

	// steal is non-nil while the free-running work-stealing discovery
	// phase is live (plus its sequential completion pass): the Ctx emit
	// paths branch to it. pspans then replaces spans/expanded. See
	// sched_steal.go.
	steal  atomic.Pointer[stealRun[S]]
	pspans *pagedSpans

	// profStoreIO and profReplay are the coordinator-only phase counters
	// (store maintenance between levels, the sequential replay pass);
	// per-worker phases live in each worker's prof. See profile.go.
	profStoreIO atomic.Int64
	profReplay  atomic.Int64

	workers []*worker[S]
}

// canonicalize maps raw to its orbit representative, recording the raw
// fingerprint and remap count in ws and running the sampled soundness check.
// Callers guard on e.canon != nil to keep the no-symmetry path branch-cheap.
func (e *explorer[S]) canonicalize(raw S, ws *worker[S]) S {
	h := e.fp(&raw)
	ws.rawSeen[h] = struct{}{}
	rep := e.canon(raw)
	if rep == raw {
		// Fixed points are trivially idempotent and step-commuting, so the
		// soundness check has nothing to test here.
		return raw
	}
	ws.canonHits++
	if e.verifyMod != 0 && h%e.verifyMod == 0 {
		if err := e.checkCanon(raw); err != nil {
			e.noteVerifyErr(err)
		}
	}
	return rep
}

// expandRange expands provisional ids [lo, hi) claimed in chunks from
// cursor, writing successors into worker w's arena.
func (e *explorer[S]) expandRange(w int32, cursor *atomic.Int64, hi int, chunk int) {
	ws := e.workers[w]
	x := &ws.ctx
	prof := ws.prof
	if prof != nil {
		// One clock read per level entry/exit: all in-level time (expansion
		// plus chunk claiming and span bookkeeping) is the expand phase.
		prof.resume(phExpand)
		defer prof.flush()
	}
	for {
		lo := int(cursor.Add(int64(chunk))) - chunk
		if lo >= hi {
			return
		}
		end := lo + chunk
		if end > hi {
			end = hi
		}
		for id := lo; id < end; id++ {
			off := int32(len(ws.arena))
			s := e.store.State(int32(id))
			if prof != nil && id&profSampleMask == 0 {
				ws.profSampling = true
				t := time.Now()
				e.expand(s, x)
				prof.noteSample(time.Since(t))
				ws.profSampling = false
			} else {
				e.expand(s, x)
			}
			sp := span{worker: w, off: off, n: int32(len(ws.arena)) - off}
			e.spans[id] = sp
			e.expanded[id] = true
			ws.steps.Add(1)
			// fpOfID re-fetches the state off the hot path: fp(&s) inline
			// would make escape analysis heap-box s on every iteration,
			// falsifier enabled or not.
			if e.aliasMod != 0 && e.fpOfID(int32(id))%e.aliasMod == 0 {
				e.checkAliasing(s, ws, sp)
			}
		}
	}
}

// fpOfID fingerprints the state behind id. Kept out of line so hot loops
// never take the address of their loop-local state copy (which would force
// it to escape); the extra State fetch only runs on sampled states.
//
//go:noinline
func (e *explorer[S]) fpOfID(id int32) uint64 {
	s := e.store.State(id)
	return e.fp(&s)
}

// expandRangePOR is expandRange's partial-order-reduced twin: instead of
// interning successors as they are emitted, it first collects the full
// enabled-action set of each state, asks ampleSet for a sufficient proper
// subset, and interns only the selected actions (in emission order, so the
// reduced graph is as deterministic as the full one). States where no
// proper ample set exists — or where the cycle proviso vetoes every
// candidate — are expanded fully.
func (e *explorer[S]) expandRangePOR(w int32, cursor *atomic.Int64, hi int, chunk int) {
	ws := e.workers[w]
	x := &ws.ctx
	collect := func(to S, label string, actor int) {
		pa := porAction[S]{act: Action[S]{To: to, Label: label, Actor: actor}, to: to}
		if e.canon != nil {
			if ws.profSampling {
				t := time.Now()
				pa.to = e.canonicalize(to, ws)
				ws.prof.sampleCanon.Add(int64(time.Since(t)))
			} else {
				pa.to = e.canonicalize(to, ws)
			}
		}
		ws.acts = append(ws.acts, pa)
	}
	prof := ws.prof
	if prof != nil {
		prof.resume(phExpand)
		defer prof.flush()
	}
	for {
		lo := int(cursor.Add(int64(chunk))) - chunk
		if lo >= hi {
			return
		}
		end := lo + chunk
		if end > hi {
			end = hi
		}
		for id := lo; id < end; id++ {
			s := e.store.State(int32(id))
			var sampleT time.Time
			if prof != nil && id&profSampleMask == 0 {
				ws.profSampling = true
				sampleT = time.Now()
			}
			ws.acts = ws.acts[:0]
			x.sink = collect
			e.expand(s, x)
			x.sink = nil
			acts := ws.acts
			// fpOfID instead of fp(&s): see expandRange.
			if e.aliasMod != 0 && e.fpOfID(int32(id))%e.aliasMod == 0 {
				e.checkAliasingPOR(s, ws)
			}
			if e.porVerifyMod != 0 && e.fpOfID(int32(id))%e.porVerifyMod == 0 {
				if err := e.checkPOR(s, acts); err != nil {
					e.noteVerifyErr(err)
				}
			}
			var ample []int32
			if len(acts) > 1 {
				ws.uf = growTo(ws.uf[:0], len(acts))
				ample = e.ampleSet(s, acts, ws.uf, hi)
			}
			off := int32(len(ws.arena))
			record := func(pa porAction[S]) {
				var tid int32
				var fresh bool
				if ws.profSampling {
					t := time.Now()
					tid, fresh = e.store.Intern(pa.to)
					ws.prof.sampleIntern.Add(int64(time.Since(t)))
				} else {
					tid, fresh = e.store.Intern(pa.to)
				}
				if !fresh {
					ws.dedup++
				}
				ws.arena = append(ws.arena, rawEdge{to: tid, actor: int32(pa.act.Actor), label: pa.act.Label})
			}
			if ample != nil {
				ws.ampleStates++
				ws.deferred += uint64(len(acts) - len(ample))
				for _, m := range ample {
					record(acts[m])
				}
			} else {
				for _, pa := range acts {
					record(pa)
				}
			}
			e.spans[id] = span{worker: w, off: off, n: int32(len(ws.arena)) - off}
			e.expanded[id] = true
			ws.steps.Add(1)
			if ws.profSampling {
				prof.noteSample(time.Since(sampleT))
				ws.profSampling = false
			}
		}
	}
}

// growTo appends zero values until s has length n.
func growTo[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	return append(s, make([]T, n-len(s))...)
}

// Explore runs the two-phase parallel BFS: inits are the initial states (in
// declaration order, duplicates tolerated) and expand enumerates
// successors. See ExpandFunc for the purity and concurrency requirements.
//
// On success the Result is canonical: identical to a sequential BFS at any
// Parallelism. When the state space exceeds Options.MaxStates, Explore
// returns the canonical partial Result alongside ErrStateLimit (wrapped).
func Explore[S comparable](inits []S, expand ExpandFunc[S], opts Options) (*Result[S], error) {
	start := time.Now()
	limit := opts.MaxStates
	if limit <= 0 {
		limit = DefaultMaxStates
	}
	if limit > math.MaxInt32-2 {
		limit = math.MaxInt32 - 2
	}
	nw := opts.Parallelism
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	sched := "barrier"
	switch opts.Sched {
	case "", "barrier":
	case "steal":
		sched = "steal"
	default:
		return nil, fmt.Errorf("engine: unknown scheduler %q (want \"barrier\" or \"steal\")", opts.Sched)
	}

	e := &explorer[S]{expand: expand, fp: fingerprint[S]}
	if opts.degradeFingerprint {
		e.fp = func(s *S) uint64 { return fingerprint(s) & 3 }
	}
	canon, err := canonFor[S](opts.Canon)
	if err != nil {
		return nil, err
	}
	e.canon = canon
	if e.canon != nil && opts.VerifyCanon > 0 {
		e.verifyMod = uint64(opts.VerifyCanon)
	}
	indep, err := indepFor[S](opts.Independent)
	if err != nil {
		return nil, err
	}
	e.indep = indep
	if e.indep != nil && opts.VerifyPOR > 0 {
		e.porVerifyMod = uint64(opts.VerifyPOR)
	}
	vis, err := visFor[S](opts.Visible)
	if err != nil {
		return nil, err
	}
	e.visible = vis
	canonBFactory, err := canonBytesFor(opts.CanonBytes)
	if err != nil {
		return nil, err
	}
	if canonBFactory != nil && e.canon == nil {
		return nil, errors.New("engine: Options.CanonBytes requires Options.Canon (the string canonicalizer defines the quotient)")
	}
	if opts.VerifyAliasing > 0 {
		e.aliasMod = uint64(opts.VerifyAliasing)
	}
	e.store, err = store.New[S](opts.Store, shardCount(nw), e.fp)
	if err != nil {
		return nil, err
	}
	defer e.store.Close()

	// Resolve the EmitBytes direct path: string states, a bytes-capable
	// backend, and (under a canonicalizer) a byte-level canonicalizer.
	// Every precondition failure degrades to the materializing fallback,
	// never to wrong behavior.
	e.fromBytes = fromBytesFunc[S]()
	if e.fromBytes != nil {
		e.hashB = hashBytes
		if opts.degradeFingerprint {
			e.hashB = func(b []byte) uint64 { return hashBytes(b) & 3 }
		}
		if bi, ok := e.store.(store.BytesInterner); ok && bi.BytesSupported() {
			e.bytesIntern = bi
			e.bytesDirect = e.canon == nil || canonBFactory != nil
		}
	}

	e.workers = make([]*worker[S], nw)
	for i := range e.workers {
		ws := &worker[S]{}
		if e.canon != nil {
			ws.rawSeen = make(map[uint64]struct{})
		}
		if e.bytesDirect && canonBFactory != nil {
			ws.canonB = canonBFactory()
		}
		ws.ctx = Ctx[S]{e: e, w: ws}
		e.workers[i] = ws
	}
	// Phase profiling is on whenever the caller can observe the result.
	// The passive-observation rule extends to it: profiles are pure
	// timing, excluded from digests and diffStats, so results stay
	// byte-identical with profiling on or off, at any worker count.
	if opts.Stats != nil || opts.Sink != nil {
		for _, ws := range e.workers {
			ws.prof = &phaseProf{}
		}
	}

	// Intern initial states sequentially: their provisional ids coincide
	// with their canonical ones, and duplicates collapse exactly as in a
	// sequential exploration.
	var initIDs []int32
	for _, s := range inits {
		if e.canon != nil {
			s = e.canonicalize(s, e.workers[0])
		}
		if id, fresh := e.store.Intern(s); fresh {
			initIDs = append(initIDs, id)
		}
	}
	if len(initIDs) == 0 {
		return nil, ErrNoInitialStates
	}
	if e.verifyErr != nil {
		return nil, e.verifyErr
	}

	if opts.Sink != nil {
		e.tel = newTelemetry(opts.Sink, start, limit, nw, len(initIDs),
			e.canon != nil, e.indep != nil, opts.Store, sched,
			func() int { return e.store.Len() },
			func() []uint64 {
				steps := make([]uint64, len(e.workers))
				for i, ws := range e.workers {
					steps[i] = ws.steps.Load()
				}
				return steps
			},
			e.store.Stats,
			func() (uint64, uint64, uint64) {
				sr := e.steal.Load()
				if sr == nil {
					return 0, 0, 0
				}
				var steals, batches, occ uint64
				for _, sw := range sr.ws {
					steals += sw.steals.Load()
					batches += sw.handoffBatches.Load()
					if n := sw.dqLen.Load(); n > 0 {
						occ += uint64(n)
					}
				}
				return steals, batches, occ
			},
			e.livePhases)
		every := opts.SnapshotEvery
		if every == 0 {
			every = DefaultSnapshotEvery
		}
		e.tel.startMonitor(every)
		// The deferred stop covers the error returns below; the success
		// path stops the monitor again (idempotently) inside runEnd, so
		// that no timer event can trail the final run_end.
		defer e.tel.stopMonitor()
	}

	// Parallel phase. Free-running discovery (work-stealing scheduler
	// without POR or a spill store) replaces the level loop entirely; the
	// barrier scheduler — and the steal scheduler's epoch submode, which
	// only swaps the per-level fan-out for a persistent pool — expand
	// whole BFS levels between barriers. The level granularity is what
	// keeps truncation canonical — if the state count crosses the limit,
	// every state the sequential explorer would have expanded before
	// failing has already been expanded here (the overshoot is at most one
	// level of successors); the free-running path re-establishes the same
	// cutoff with its sequential completion pass.
	var st Stats
	st.Workers = nw
	st.Sched = sched
	freeMode := sched == "steal" && e.indep == nil && opts.Store.ResolvedKind() != store.Spill
	if freeMode {
		if err := e.exploreFree(&st, inits, initIDs, limit, nw); err != nil {
			return nil, err
		}
		st.POREnabled = false
	} else {
		expandLevel := e.expandRange
		if e.indep != nil {
			expandLevel = e.expandRangePOR
		}
		dispatch := func(cursor *atomic.Int64, hi, chunk int) {
			var wg sync.WaitGroup
			for w := 1; w < nw; w++ {
				wg.Add(1)
				go func(w int32) {
					defer wg.Done()
					expandLevel(w, cursor, hi, chunk)
				}(int32(w))
			}
			expandLevel(0, cursor, hi, chunk)
			waitBarrier(e.workers[0].prof, &wg)
		}
		if sched == "steal" && nw > 1 {
			d, shutdown := e.epochPool(nw, expandLevel)
			dispatch = d
			defer shutdown()
		}
		lo, hi := 0, e.store.Len()
		e.spans = growTo(e.spans, hi)
		e.expanded = growTo(e.expanded, hi)
		for lo < hi {
			frontier := hi - lo
			if frontier > st.PeakFrontier {
				st.PeakFrontier = frontier
			}
			st.Depth++
			var cursor atomic.Int64
			cursor.Store(int64(lo))
			chunk := frontier/(nw*4) + 1
			// Small frontiers are not worth a fan-out: per-level goroutine
			// and barrier costs would dominate on deep, narrow graphs
			// (chains).
			if nw == 1 || frontier < nw*16 {
				expandLevel(0, &cursor, hi, chunk)
			} else {
				dispatch(&cursor, hi, chunk)
			}
			// Level barrier: the store already holds every state interned
			// during this level (the barrier's happens-before makes the
			// payloads readable by id from any worker next level).
			total := e.store.Len()
			e.spans = growTo(e.spans, total)
			e.expanded = growTo(e.expanded, total)
			lo, hi = hi, total
			// Budget maintenance runs at the barrier, while the workers are
			// quiescent: the store may spill payloads below the next frontier
			// (ids < lo) and must surface any sticky I/O error here, so the
			// failure is deterministic per level, never mid-expansion.
			if err := e.maintainStore(int32(lo)); err != nil {
				return nil, fmt.Errorf("engine: state store: %w", err)
			}
			if e.canon != nil || e.indep != nil || e.aliasMod != 0 {
				// The barrier makes soundness-check failure deterministic:
				// every sampled state of the finished level has been checked,
				// so whether an error exists here depends only on the system
				// and the installed hooks, never on scheduling.
				if verr := e.takeVerifyErr(); verr != nil {
					return nil, verr
				}
			}
			if e.tel != nil {
				// The workers are quiescent between barriers, so the level
				// event's counters are exact — and worker-count-invariant, per
				// the determinism contract (the trace digest relies on this).
				publishLevel(e.tel, e, total, st.Depth, hi-lo, st.PeakFrontier)
			}
			if total > limit {
				if e.tel != nil {
					e.tel.truncated(total, st.Depth, st.PeakFrontier)
				}
				break
			}
		}
		for _, ws := range e.workers {
			st.WorkerSteps = append(st.WorkerSteps, ws.steps.Load())
			st.Expansions += ws.steps.Load()
			st.DedupHits += ws.dedup
			st.CanonHits += ws.canonHits
			st.AmpleStates += ws.ampleStates
			st.DeferredActions += ws.deferred
		}
		st.POREnabled = e.indep != nil
		if e.canon != nil {
			st.CanonEnabled = true
			rawAll := e.workers[0].rawSeen
			for _, ws := range e.workers[1:] {
				for h := range ws.rawSeen {
					rawAll[h] = struct{}{}
				}
			}
			st.RawStates = len(rawAll)
		}
	}

	res, err := e.replayTimed(initIDs, limit)
	if err == nil || errors.Is(err, ErrStateLimit) {
		// Replay reads spilled payloads back; surface a read failure as
		// the run's error rather than a silently wrong graph.
		if serr := e.store.Err(); serr != nil {
			return nil, fmt.Errorf("engine: state store: %w", serr)
		}
	}
	st.States = len(res.States)
	for _, es := range res.Edges {
		st.Edges += len(es)
	}
	st.Truncated = res.Truncated
	st.Store = e.store.Stats()
	st.Lossy = st.Store.Lossy
	e.collectPhases(&st)
	st.PeakRSSBytes = obs.PeakRSS()
	st.Elapsed = time.Since(start)
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.StatesPerSec = float64(st.States) / secs
	}
	res.Stats = st
	if opts.Stats != nil {
		*opts.Stats = st
	}
	if e.tel != nil {
		e.tel.runEnd(st)
	}
	return res, err
}

// replay is the canonicalization pass: a sequential BFS over the recorded
// successor lists, renumbering provisional ids into canonical (discovery
// order) ids. It mirrors the sequential explorer's loop exactly — including
// where the state limit fires — so its output is byte-identical to a
// single-threaded exploration, and its truncated output is byte-identical
// to a truncated single-threaded exploration.
func (e *explorer[S]) replay(initIDs []int32, limit int) (*Result[S], error) {
	n := e.store.Len()
	canon := make([]int32, n)
	for i := range canon {
		canon[i] = -1
	}
	res := &Result[S]{
		States:      make([]S, 0, n),
		Edges:       make([][]Edge, 0, n),
		Parents:     make([]int, 0, n),
		ParentEdges: make([]Edge, 0, n),
	}
	// One arena holds every canonical edge: the per-state Edges slices are
	// carved out of it sequentially, replacing n per-state allocations with
	// one. Its capacity is exact (each recorded rawEdge is replayed at most
	// once), so append never reallocates and the carved views stay valid.
	var rawTotal int
	for _, ws := range e.workers {
		rawTotal += len(ws.arena)
		if ws.sw != nil {
			rawTotal += int(ws.sw.edges)
		}
	}
	edgeArena := make([]Edge, 0, rawTotal)
	intern := func(pid int32) (int, bool) {
		if c := canon[pid]; c >= 0 {
			return int(c), false
		}
		c := len(res.States)
		canon[pid] = int32(c)
		res.States = append(res.States, e.store.State(pid))
		res.Edges = append(res.Edges, nil)
		res.Parents = append(res.Parents, -1)
		res.ParentEdges = append(res.ParentEdges, Edge{})
		return c, true
	}
	queue := make([]int32, 0, n)
	for _, pid := range initIDs {
		c, _ := intern(pid)
		res.Inits = append(res.Inits, c)
		queue = append(queue, pid)
	}
	var crossBuf []rawEdge
	for head := 0; head < len(queue); head++ {
		pid := queue[head]
		cid := int(canon[pid])
		if !e.isExpanded(pid) {
			// Unreachable: the level-granular cutoff guarantees the limit
			// fires (below) before any unexpanded state is dequeued.
			return res, fmt.Errorf("engine: internal error: state %d dequeued without recorded successors", cid)
		}
		var raw []rawEdge
		if e.pspans != nil {
			sp, _ := e.pspans.get(pid)
			raw = e.chunkEdges(sp, &crossBuf)
		} else {
			sp := e.spans[pid]
			raw = e.workers[sp.worker].arena[sp.off : sp.off+sp.n]
		}
		start := len(edgeArena)
		for _, r := range raw {
			tc, fresh := intern(r.to)
			if fresh {
				if len(res.States) > limit {
					res.Truncated = true
					return res, fmt.Errorf("%w: limit %d", ErrStateLimit, limit)
				}
				res.Parents[tc] = cid
				res.ParentEdges[tc] = Edge{To: tc, Label: r.label, Actor: int(r.actor)}
				queue = append(queue, r.to)
			}
			edgeArena = append(edgeArena, Edge{To: tc, Label: r.label, Actor: int(r.actor)})
		}
		res.Edges[cid] = edgeArena[start:len(edgeArena):len(edgeArena)]
	}
	return res, nil
}

// shardCount picks a power-of-two stripe count for the visited set: one
// stripe for a lone worker (no contention to spread), otherwise enough
// stripes that workers rarely collide.
func shardCount(workers int) int {
	if workers <= 1 {
		return 1
	}
	n := 1
	for n < workers*16 && n < 256 {
		n <<= 1
	}
	return n
}
