package engine

import (
	"errors"
	"fmt"
	"reflect"

	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the differential-testing oracle over the engine's mode
// stack. Given one system plus optional reduction hooks and optional
// planted ground truth (see internal/spacegen for the generator that
// supplies both), Differential explores the system under every applicable
// mode — full graph, symmetry quotient, ample-set POR, and the composed
// stack — at several worker counts, and cross-checks everything the
// determinism and soundness contracts promise:
//
//   - byte-identical Results and telemetry at every worker count per mode;
//   - planted state/terminal/decided counts for the full graph and the
//     quotient;
//   - POR reduction soundness: the reduced graph is a subgraph of the full
//     one and preserves the exact terminal state set (and, composed with
//     the quotient, the quotient's terminal set);
//   - Stats internal consistency (RawStates vs States vs full size,
//     CanonHits vs generated states, AmpleStates vs Expansions,
//     worker-step accounting).
//
//   - trace-digest equality across worker counts per mode: the
//     deterministic telemetry skeleton (obs.Digest over level and run_end
//     events) is part of the determinism contract.
//
//   - scheduler equivalence: every mode re-runs under the work-stealing
//     scheduler (Options.Sched == "steal") at every worker count, and must
//     reproduce the barrier reference's Result, invariant telemetry and
//     trace digest byte for byte — including on truncated runs, where the
//     steal scheduler's epoch-granular cutoff must land on the identical
//     canonical prefix. Lossy backends are exempt (as across worker
//     counts, there is no byte-identical graph to promise).
//
// Any violation is reported as an error wrapping ErrDiverged (and the
// underlying engine error, when there is one), carrying enough context to
// replay: mode, worker count, the spec name — and, where results diverge,
// the trace digests of both runs, so the corresponding JSONL traces can
// be re-recorded with -trace and diffed.

// ErrDiverged is wrapped by every error Differential returns: some mode
// disagreed with another mode, with the planted ground truth, or with the
// Stats consistency contract.
var ErrDiverged = errors.New("engine: differential oracle divergence")

// ErrLossyStore is returned (wrapping ErrDiverged) when DiffSpec.Stores
// names a lossy backend without AllowLossy: a store that can merge
// distinct states has no byte-identical graph to promise, so admitting it
// into the oracle must be an explicit opt-in, never a default.
var ErrLossyStore = errors.New("engine: lossy store backend in differential spec (set AllowLossy to accept undercounting)")

// DiffTruth is planted ground truth for a Differential run. All counts are
// exact; quotient fields are only consulted when the spec carries a
// canonicalizer.
type DiffTruth struct {
	// States, Terminals, Decided describe the full reachable graph.
	States, Terminals, Decided int
	// QuotientStates, QuotientTerminals, QuotientDecided describe the
	// symmetry quotient under the spec's Canon.
	QuotientStates, QuotientTerminals, QuotientDecided int
}

// DiffSpec is one system under differential test.
type DiffSpec[S comparable] struct {
	// Name tags divergence reports.
	Name string
	// Inits and Expand define the system, as for Explore.
	Inits  []S
	Expand ExpandFunc[S]
	// Canon, when non-nil, enables the quotient modes. It must be sound
	// (Differential runs it under VerifyCanon=1, so an unsound canon fails
	// the run — by design: the oracle's planted hooks are correct by
	// construction, and the falsifier tripping on them is a divergence).
	Canon func(S) S
	// CanonBytes, when non-nil, is threaded as Options.CanonBytes into
	// every quotient arm, so the byte-level canonicalizer is held to the
	// same cross-mode/cross-worker byte-identity bar (and to VerifyCanon's
	// agreement check) as everything else.
	CanonBytes any
	// VerifyAliasing is threaded as Options.VerifyAliasing into every arm:
	// 1 re-expands every state with poisoned scratch, so a system that
	// retains emitted buffers fails the oracle loudly.
	VerifyAliasing int
	// Independent, when non-nil, enables the POR modes (run under
	// VerifyPOR=1, same reasoning).
	Independent func(S, Action[S], Action[S]) bool
	// Decided, when non-nil, classifies terminal states for the decided
	// counts.
	Decided func(S) bool
	// Truth, when non-nil, is checked against every mode's outcome.
	Truth *DiffTruth
	// Workers are the worker counts every mode runs at (default 1, 2, 8).
	Workers []int
	// MaxStates bounds each exploration (0 = DefaultMaxStates). Truncated
	// runs still check determinism but skip the count assertions.
	MaxStates int
	// Stores re-runs the full mode under each listed visited-set backend
	// and cross-checks it against the default in-memory run. Exact
	// backends (spill) must reproduce the mem run bit for bit — Result,
	// invariant telemetry and trace digest — at every worker count. Lossy
	// backends (bitstate) are rejected with ErrLossyStore unless
	// AllowLossy is set; with it, the lossy run must flag itself Lossy and
	// may only ever undercount (never exceed the exact state count, nor
	// the planted truth when present).
	Stores []store.Config
	// AllowLossy admits lossy backends listed in Stores, downgrading
	// their check from byte equality to the undercount bound.
	AllowLossy bool
}

// DiffMode is the outcome of one mode of a Differential run.
type DiffMode struct {
	// Mode is "full", "canon", "por" or "canon+por".
	Mode string
	// Stats is the telemetry of the mode's reference run (the first
	// configured worker count).
	Stats Stats
	// TraceDigest is the deterministic-event digest (obs.Digest) of the
	// mode's reference run: the fingerprint a JSONL trace of the same
	// system under the same mode must reproduce at any worker count. Two
	// modes that agree on the Result can still digest differently (levels
	// fill in a different order under reduction); within one mode the
	// digest is part of the determinism contract and is checked across
	// worker counts.
	TraceDigest string
}

// DiffReport summarizes a passing Differential run.
type DiffReport struct {
	// Name echoes the spec name.
	Name string
	// Modes holds one entry per mode explored, in execution order.
	Modes []DiffMode
}

// Differential runs spec under every applicable mode and worker count and
// returns a report, or an error wrapping ErrDiverged on the first
// violation.
func Differential[S comparable](spec DiffSpec[S]) (*DiffReport, error) {
	workers := spec.Workers
	if len(workers) == 0 {
		workers = []int{1, 2, 8}
	}
	rep := &DiffReport{Name: spec.Name}
	fail := func(mode string, par int, format string, args ...any) error {
		return fmt.Errorf("%w: %s [mode=%s workers=%d]: %s",
			ErrDiverged, spec.Name, mode, par, fmt.Sprintf(format, args...))
	}

	run := func(mode string, opts Options) (*Result[S], error) {
		// Every exploration runs with a trace-digest sink attached: the
		// deterministic event skeleton (level barriers, final totals) must
		// be worker-count invariant too, and a divergence report names the
		// digests so the corresponding -trace JSONL files can be diffed.
		refDig := obs.NewDigest()
		o := opts
		o.Sink, o.SnapshotEvery = refDig, -1
		ref, err := Explore(spec.Inits, spec.Expand, o)
		if err != nil && !errors.Is(err, ErrStateLimit) {
			// ErrStateLimit still carries the canonical partial Result; the
			// determinism checks below apply to it unchanged.
			return nil, fmt.Errorf("%w: %s [mode=%s workers=%d]: %w",
				ErrDiverged, spec.Name, mode, opts.Parallelism, err)
		}
		for _, par := range workers[1:] {
			gotDig := obs.NewDigest()
			o := opts
			o.Parallelism = par
			o.Sink, o.SnapshotEvery = gotDig, -1
			got, err := Explore(spec.Inits, spec.Expand, o)
			if err != nil && !errors.Is(err, ErrStateLimit) {
				return nil, fmt.Errorf("%w: %s [mode=%s workers=%d]: %w",
					ErrDiverged, spec.Name, mode, par, err)
			}
			if msg := diffResults(ref, got); msg != "" {
				return nil, fail(mode, par, "diverged from workers=%d run: %s (trace digests %s vs %s)",
					workers[0], msg, refDig.Sum(), gotDig.Sum())
			}
			if msg := diffStats(ref.Stats, got.Stats); msg != "" {
				return nil, fail(mode, par, "telemetry diverged from workers=%d run: %s (trace digests %s vs %s)",
					workers[0], msg, refDig.Sum(), gotDig.Sum())
			}
			if refDig.Sum() != gotDig.Sum() {
				return nil, fail(mode, par, "trace digest diverged from workers=%d run: %s vs %s",
					workers[0], refDig.Sum(), gotDig.Sum())
			}
		}
		// Scheduler sweep: the work-stealing scheduler must reproduce the
		// barrier reference bit for bit at every worker count (free-running
		// submode for plain modes, epoch submode under POR or spill).
		for _, par := range workers {
			gotDig := obs.NewDigest()
			o := opts
			o.Parallelism = par
			o.Sched = "steal"
			o.Sink, o.SnapshotEvery = gotDig, -1
			got, err := Explore(spec.Inits, spec.Expand, o)
			if err != nil && !errors.Is(err, ErrStateLimit) {
				return nil, fmt.Errorf("%w: %s [mode=%s workers=%d]: sched=steal: %w",
					ErrDiverged, spec.Name, mode, par, err)
			}
			if msg := diffResults(ref, got); msg != "" {
				return nil, fail(mode, par, "sched=steal diverged from barrier reference: %s (trace digests %s vs %s)",
					msg, refDig.Sum(), gotDig.Sum())
			}
			if msg := diffStats(ref.Stats, got.Stats); msg != "" {
				return nil, fail(mode, par, "sched=steal telemetry diverged from barrier reference: %s", msg)
			}
			if refDig.Sum() != gotDig.Sum() {
				return nil, fail(mode, par, "sched=steal trace digest diverged from barrier reference: %s vs %s",
					refDig.Sum(), gotDig.Sum())
			}
			if msg := statsConsistency(got); msg != "" {
				return nil, fail(mode, par, "sched=steal inconsistent telemetry: %s", msg)
			}
		}
		if msg := statsConsistency(ref); msg != "" {
			return nil, fail(mode, workers[0], "inconsistent telemetry: %s", msg)
		}
		rep.Modes = append(rep.Modes, DiffMode{Mode: mode, Stats: ref.Stats, TraceDigest: refDig.Sum()})
		return ref, nil
	}

	base := Options{MaxStates: spec.MaxStates, Parallelism: workers[0], VerifyAliasing: spec.VerifyAliasing}

	full, err := run("full", base)
	if err != nil {
		return nil, err
	}
	fullDigest := rep.Modes[len(rep.Modes)-1].TraceDigest
	fullTerm := terminalSet(full)
	if spec.Truth != nil && !full.Truncated {
		if got := len(full.States); got != spec.Truth.States {
			return nil, fail("full", workers[0], "states = %d, planted truth %d", got, spec.Truth.States)
		}
		if got := len(fullTerm); got != spec.Truth.Terminals {
			return nil, fail("full", workers[0], "terminals = %d, planted truth %d", got, spec.Truth.Terminals)
		}
		if spec.Decided != nil {
			if got := countDecided(fullTerm, spec.Decided); got != spec.Truth.Decided {
				return nil, fail("full", workers[0], "decided terminals = %d, planted truth %d", got, spec.Truth.Decided)
			}
		}
	}

	// Cross-backend comparison: the store is an implementation detail of
	// the visited set, so under an exact backend everything the
	// determinism contract covers — including the trace digest, which
	// hashes no store field — must come out bit-identical to the mem run.
	for _, sc := range spec.Stores {
		mode := "full+" + string(sc.ResolvedKind())
		if sc.Lossy() && !spec.AllowLossy {
			return nil, fmt.Errorf("%w: %s [mode=%s]: %w", ErrDiverged, spec.Name, mode, ErrLossyStore)
		}
		opts := base
		opts.Store = sc
		if sc.Lossy() {
			// One configuration only: under forced collisions (small
			// FingerprintBits) which payload survives a merge is
			// first-intern-wins, i.e. scheduling-dependent, so there is no
			// cross-worker-count promise to check — only the undercount
			// bound and the taint flag.
			dig := obs.NewDigest()
			opts.Sink, opts.SnapshotEvery = dig, -1
			res, err := Explore(spec.Inits, spec.Expand, opts)
			if err != nil && !errors.Is(err, ErrStateLimit) {
				return nil, fmt.Errorf("%w: %s [mode=%s]: %w", ErrDiverged, spec.Name, mode, err)
			}
			if !res.Stats.Lossy || !res.Stats.Store.Lossy {
				return nil, fail(mode, workers[0], "bitstate run not flagged lossy: %+v", res.Stats.Store)
			}
			if len(res.States) > len(full.States) {
				return nil, fail(mode, workers[0], "lossy backend overcounted: %d states > exact %d",
					len(res.States), len(full.States))
			}
			if spec.Truth != nil && len(res.States) > spec.Truth.States {
				return nil, fail(mode, workers[0], "lossy backend overcounted: %d states > planted truth %d",
					len(res.States), spec.Truth.States)
			}
			rep.Modes = append(rep.Modes, DiffMode{Mode: mode, Stats: res.Stats, TraceDigest: dig.Sum()})
			continue
		}
		alt, err := run(mode, opts)
		if err != nil {
			return nil, err
		}
		if msg := diffResults(full, alt); msg != "" {
			return nil, fail(mode, workers[0], "diverged from mem backend: %s", msg)
		}
		if msg := diffStats(full.Stats, alt.Stats); msg != "" {
			return nil, fail(mode, workers[0], "telemetry diverged from mem backend: %s", msg)
		}
		if altDigest := rep.Modes[len(rep.Modes)-1].TraceDigest; altDigest != fullDigest {
			return nil, fail(mode, workers[0], "trace digest diverged from mem backend: %s vs %s",
				altDigest, fullDigest)
		}
	}

	var quo *Result[S]
	if spec.Canon != nil {
		opts := base
		opts.Canon = spec.Canon
		opts.CanonBytes = spec.CanonBytes
		opts.VerifyCanon = 1
		if quo, err = run("canon", opts); err != nil {
			return nil, err
		}
		st := quo.Stats
		if !quo.Truncated {
			if st.RawStates < len(quo.States) {
				return nil, fail("canon", workers[0], "RawStates %d < quotient states %d", st.RawStates, len(quo.States))
			}
			if !full.Truncated && st.RawStates > len(full.States) {
				return nil, fail("canon", workers[0], "RawStates %d > full states %d", st.RawStates, len(full.States))
			}
			if maxGen := st.DedupHits + uint64(len(quo.States)) + uint64(len(spec.Inits)); st.CanonHits > maxGen {
				return nil, fail("canon", workers[0], "CanonHits %d > generated states %d", st.CanonHits, maxGen)
			}
			if spec.Truth != nil {
				qt := terminalSet(quo)
				if got := len(quo.States); got != spec.Truth.QuotientStates {
					return nil, fail("canon", workers[0], "quotient states = %d, planted truth %d", got, spec.Truth.QuotientStates)
				}
				if got := len(qt); got != spec.Truth.QuotientTerminals {
					return nil, fail("canon", workers[0], "quotient terminals = %d, planted truth %d", got, spec.Truth.QuotientTerminals)
				}
				if spec.Decided != nil {
					if got := countDecided(qt, spec.Decided); got != spec.Truth.QuotientDecided {
						return nil, fail("canon", workers[0], "quotient decided = %d, planted truth %d", got, spec.Truth.QuotientDecided)
					}
				}
			}
		}
	}

	if spec.Independent != nil {
		opts := base
		opts.Independent = spec.Independent
		opts.VerifyPOR = 1
		por, err := run("por", opts)
		if err != nil {
			return nil, err
		}
		if !por.Truncated && !full.Truncated {
			if msg := porSoundVsFull(por, full, fullTerm); msg != "" {
				return nil, fail("por", workers[0], "%s", msg)
			}
		}

		if spec.Canon != nil {
			opts.Canon = spec.Canon
			opts.CanonBytes = spec.CanonBytes
			opts.VerifyCanon = 1
			both, err := run("canon+por", opts)
			if err != nil {
				return nil, err
			}
			if !both.Truncated && quo != nil && !quo.Truncated {
				if msg := porSoundVsFull(both, quo, terminalSet(quo)); msg != "" {
					return nil, fail("canon+por", workers[0], "vs quotient: %s", msg)
				}
			}
		}
	}
	return rep, nil
}

// diffResults compares two Results field by field and describes the first
// difference ("" when byte-identical). It is mustEqualResults in error
// form, shared by the oracle so divergences carry a message instead of a
// test failure.
func diffResults[S comparable](a, b *Result[S]) string {
	switch {
	case !reflect.DeepEqual(a.States, b.States):
		return fmt.Sprintf("state orderings differ (%d vs %d states)", len(a.States), len(b.States))
	case !reflect.DeepEqual(a.Inits, b.Inits):
		return fmt.Sprintf("initial ids differ: %v vs %v", a.Inits, b.Inits)
	case !reflect.DeepEqual(a.Edges, b.Edges):
		return "edge lists differ"
	case !reflect.DeepEqual(a.Parents, b.Parents):
		return "parent trees differ"
	case !reflect.DeepEqual(a.ParentEdges, b.ParentEdges):
		return "parent edges differ"
	case a.Truncated != b.Truncated:
		return fmt.Sprintf("truncation flags differ: %v vs %v", a.Truncated, b.Truncated)
	}
	return ""
}

// diffStats compares the worker-count-invariant telemetry fields.
func diffStats(a, b Stats) string {
	type inv struct {
		name string
		a, b uint64
	}
	for _, f := range []inv{
		{"States", uint64(a.States), uint64(b.States)},
		{"Edges", uint64(a.Edges), uint64(b.Edges)},
		{"Depth", uint64(a.Depth), uint64(b.Depth)},
		{"PeakFrontier", uint64(a.PeakFrontier), uint64(b.PeakFrontier)},
		{"Expansions", a.Expansions, b.Expansions},
		{"DedupHits", a.DedupHits, b.DedupHits},
		{"RawStates", uint64(a.RawStates), uint64(b.RawStates)},
		{"CanonHits", a.CanonHits, b.CanonHits},
		{"AmpleStates", a.AmpleStates, b.AmpleStates},
		{"DeferredActions", a.DeferredActions, b.DeferredActions},
	} {
		if f.a != f.b {
			return fmt.Sprintf("%s = %d vs %d", f.name, f.a, f.b)
		}
	}
	return ""
}

// statsConsistency checks one run's telemetry against its Result and the
// engine's internal accounting invariants.
func statsConsistency[S comparable](res *Result[S]) string {
	st := res.Stats
	if st.States != len(res.States) {
		return fmt.Sprintf("Stats.States %d != len(States) %d", st.States, len(res.States))
	}
	edges := 0
	for _, es := range res.Edges {
		edges += len(es)
	}
	if st.Edges != edges {
		return fmt.Sprintf("Stats.Edges %d != recorded edges %d", st.Edges, edges)
	}
	if len(st.WorkerSteps) != st.Workers {
		return fmt.Sprintf("len(WorkerSteps) %d != Workers %d", len(st.WorkerSteps), st.Workers)
	}
	var steps uint64
	for _, s := range st.WorkerSteps {
		steps += s
	}
	if st.Sched == "steal" && st.Truncated {
		// Free-running discovery races past the limit by design, and the
		// sequential completion pass re-expands what stopped workers
		// abandoned: the live step counters overshoot the canonical
		// Expansions count (which stays scheduler-invariant).
		if steps < st.Expansions {
			return fmt.Sprintf("sum(WorkerSteps) %d < Expansions %d on a truncated steal run", steps, st.Expansions)
		}
	} else if steps != st.Expansions {
		return fmt.Sprintf("sum(WorkerSteps) %d != Expansions %d", steps, st.Expansions)
	}
	if !st.Truncated && st.Expansions != uint64(st.States) {
		return fmt.Sprintf("Expansions %d != States %d on a complete run", st.Expansions, st.States)
	}
	if st.Truncated != res.Truncated {
		return fmt.Sprintf("Stats.Truncated %v != Result.Truncated %v", st.Truncated, res.Truncated)
	}
	if st.AmpleStates > st.Expansions {
		return fmt.Sprintf("AmpleStates %d > Expansions %d", st.AmpleStates, st.Expansions)
	}
	if st.AmpleStates == 0 && st.DeferredActions != 0 {
		return fmt.Sprintf("DeferredActions %d with zero AmpleStates", st.DeferredActions)
	}
	if st.AmpleStates > 0 && st.DeferredActions < st.AmpleStates {
		return fmt.Sprintf("DeferredActions %d < AmpleStates %d (every ample expansion defers at least one action)",
			st.DeferredActions, st.AmpleStates)
	}
	if !st.CanonEnabled && (st.RawStates != 0 || st.CanonHits != 0) {
		return "canon telemetry nonzero without a canonicalizer"
	}
	// The store interns every state the run discovers: on a complete run
	// the counts coincide; a truncated run's store holds the overshoot the
	// replay cut off.
	if !st.Truncated && st.Store.States != st.States {
		return fmt.Sprintf("Store.States %d != States %d on a complete run", st.Store.States, st.States)
	}
	if st.Truncated && st.Store.States < st.States {
		return fmt.Sprintf("Store.States %d < replayed States %d", st.Store.States, st.States)
	}
	if st.Lossy != st.Store.Lossy {
		return fmt.Sprintf("Stats.Lossy %v != Store.Lossy %v", st.Lossy, st.Store.Lossy)
	}
	if !st.POREnabled && (st.AmpleStates != 0 || st.DeferredActions != 0) {
		return "POR telemetry nonzero without an independence relation"
	}
	return ""
}

// porSoundVsFull checks the reduced graph against its unreduced
// counterpart: a subgraph (state- and edge-wise) that preserves the exact
// terminal state set.
func porSoundVsFull[S comparable](por, full *Result[S], fullTerm map[S]bool) string {
	if len(por.States) > len(full.States) {
		return fmt.Sprintf("reduced states %d > unreduced %d", len(por.States), len(full.States))
	}
	if st := por.Stats; st.Edges > full.Stats.Edges {
		return fmt.Sprintf("reduced edges %d > unreduced %d", st.Edges, full.Stats.Edges)
	}
	unreduced := make(map[S]bool, len(full.States))
	for _, s := range full.States {
		unreduced[s] = true
	}
	for _, s := range por.States {
		if !unreduced[s] {
			return fmt.Sprintf("reduced graph reaches state %v absent from the unreduced graph", s)
		}
	}
	porTerm := terminalSet(por)
	if len(porTerm) != len(fullTerm) {
		return fmt.Sprintf("reduced graph has %d terminals, unreduced %d (deadlock preservation violated)",
			len(porTerm), len(fullTerm))
	}
	for s := range porTerm {
		if !fullTerm[s] {
			return fmt.Sprintf("reduced terminal %v is not terminal in the unreduced graph", s)
		}
	}
	return ""
}

// terminalSet collects the terminal states of a Result.
func terminalSet[S comparable](res *Result[S]) map[S]bool {
	out := make(map[S]bool)
	for i, es := range res.Edges {
		if es == nil {
			continue // truncated result: expansion cut off, not terminal
		}
		if len(es) == 0 {
			out[res.States[i]] = true
		}
	}
	return out
}

// countDecided counts the states in set satisfying pred.
func countDecided[S comparable](set map[S]bool, pred func(S) bool) int {
	n := 0
	for s := range set {
		if pred(s) {
			n++
		}
	}
	return n
}
