package engine

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

// TestRaceMatrix drives the hot path at 8 workers across every reduction
// stack — full, canon quotient, ample-set POR, and the canon+POR stack —
// over both the mem and spill store backends, with the aliasing falsifier
// on, and checks each graph is byte-identical to its sequential twin. On
// its own it is a determinism test; under `go test -race` (CI runs it that
// way explicitly) it is the data-race gate for the zero-alloc pipeline:
// slab arenas, scratch buffers, the label interner, and the sharded
// interning table all get concurrent traffic here.
func TestRaceMatrix(t *testing.T) {
	const n = 24
	inits := []string{"0,0"}
	modes := []struct {
		name string
		opts Options
	}{
		{"full", Options{}},
		{"canon", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4}},
		{"por", Options{Independent: gridIndep}},
		{"canon+por", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4, Independent: gridIndep}},
	}
	stores := []struct {
		name string
		cfg  store.Config
	}{
		{"mem", store.Config{}},
		{"spill", store.Config{Kind: store.Spill, MaxBytes: 1 << 10, PageBits: 5}},
	}
	for _, m := range modes {
		for _, sc := range stores {
			t.Run(m.name+"/"+sc.name, func(t *testing.T) {
				seqOpts := m.opts
				seqOpts.Parallelism = 1
				seqOpts.Store = sc.cfg
				seqOpts.VerifyAliasing = 1
				want, err := Explore(inits, gridExpandBytes(n), seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				parOpts := seqOpts
				parOpts.Parallelism = 8
				got, err := Explore(inits, gridExpandBytes(n), parOpts)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, fmt.Sprintf("%s/%s workers=8", m.name, sc.name), want, got)
			})
		}
	}
}
