package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/store"
)

// TestRaceMatrix drives the hot path at 8 workers across every reduction
// stack — full, canon quotient, ample-set POR, and the canon+POR stack —
// over both the mem and spill store backends and both schedulers, with
// the aliasing falsifier on, and checks each graph is byte-identical to
// its sequential twin. On its own it is a determinism test; under `go
// test -race` (CI runs it that way explicitly) it is the data-race gate
// for the zero-alloc pipeline: slab arenas, scratch buffers, the label
// interner, the sharded interning table — and, under sched=steal, the
// lock-free single-writer interning path, the slot-pointer edge
// resolution, the handoff batch recycling and the token termination
// protocol all get concurrent traffic here.
func TestRaceMatrix(t *testing.T) {
	const n = 24
	inits := []string{"0,0"}
	modes := []struct {
		name string
		opts Options
	}{
		{"full", Options{}},
		{"canon", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4}},
		{"por", Options{Independent: gridIndep}},
		{"canon+por", Options{Canon: sortCanon, CanonBytes: sortCanonBytes, VerifyCanon: 4, Independent: gridIndep}},
	}
	stores := []struct {
		name string
		cfg  store.Config
	}{
		{"mem", store.Config{}},
		{"spill", store.Config{Kind: store.Spill, MaxBytes: 1 << 10, PageBits: 5}},
	}
	for _, m := range modes {
		for _, sc := range stores {
			for _, sched := range []string{"barrier", "steal"} {
				t.Run(m.name+"/"+sc.name+"/"+sched, func(t *testing.T) {
					seqOpts := m.opts
					seqOpts.Parallelism = 1
					seqOpts.Store = sc.cfg
					seqOpts.VerifyAliasing = 1
					want, err := Explore(inits, gridExpandBytes(n), seqOpts)
					if err != nil {
						t.Fatal(err)
					}
					parOpts := seqOpts
					parOpts.Parallelism = 8
					parOpts.Sched = sched
					got, err := Explore(inits, gridExpandBytes(n), parOpts)
					if err != nil {
						t.Fatal(err)
					}
					mustEqualResults(t, fmt.Sprintf("%s/%s/%s workers=8", m.name, sc.name, sched), want, got)
				})
			}
		}
	}
}

// TestRaceChainSteal is the deep-narrow shape of the race gate: a braid
// of long chains at GOMAXPROCS=16 under the free-running scheduler, where
// nearly every emission is a cross-worker handoff and workers spend most
// of their time in the flush/idle/steal paths rather than expanding.
func TestRaceChainSteal(t *testing.T) {
	prev := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(prev)
	const lanes, depth = 8, 800
	inits := []braidState{{lane: -1}}
	want, err := Explore(inits, braidExpand(lanes, depth), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range []int{8, 16} {
		got, err := Explore(inits, braidExpand(lanes, depth), Options{Sched: "steal", Parallelism: nw})
		if err != nil {
			t.Fatalf("steal workers=%d: %v", nw, err)
		}
		mustEqualResults(t, fmt.Sprintf("chain steal workers=%d", nw), want, got)
	}
}
