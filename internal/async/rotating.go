package async

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// RotatingCoord is a deterministic consensus protocol in the spirit of
// Dwork, Lynch and Stockmeyer [46] (§2.2.4): agreement and validity hold
// under *every* scheduler, while termination is guaranteed only when the
// timing is benign — the weakened problem statement that circumvents FLP
// without randomness. Each phase has the Ben-Or wave structure, but where
// Ben-Or flips a coin, an undecided process adopts the phase coordinator's
// broadcast value; once a synchronous-enough phase delivers the
// coordinator's value to everyone promptly, all processes enter the next
// phase unanimous and decide.
type RotatingCoord struct {
	// Procs is the number of processes n.
	Procs int
	// MaxFaults is the crash bound t < n/2.
	MaxFaults int
}

var _ Protocol = (*RotatingCoord)(nil)

// rcState is one process's view.
type rcState struct {
	value    int
	phase    int
	stage    int
	decided  bool
	decision int
	rMsgs    map[int]map[int]int
	pMsgs    map[int]map[int]int
	cMsgs    map[int]int // phase -> coordinator's broadcast value
	self     int
}

// Name implements Protocol.
func (rc *RotatingCoord) Name() string {
	return fmt.Sprintf("rotating-coordinator(n=%d,t=%d)", rc.Procs, rc.MaxFaults)
}

// NumProcs implements Protocol.
func (rc *RotatingCoord) NumProcs() int { return rc.Procs }

// Init implements Protocol.
func (rc *RotatingCoord) Init(p, input int, _ *rand.Rand) any {
	s := &rcState{
		value: input,
		phase: 1,
		rMsgs: map[int]map[int]int{},
		pMsgs: map[int]map[int]int{},
		cMsgs: map[int]int{},
		self:  p,
	}
	rc.record(s.rMsgs, 1, p, input)
	return s
}

func (rc *RotatingCoord) record(m map[int]map[int]int, phase, from, v int) {
	if m[phase] == nil {
		m[phase] = map[int]int{}
	}
	if _, ok := m[phase][from]; !ok {
		m[phase][from] = v
	}
}

func (rc *RotatingCoord) coordinator(phase int) int { return phase % rc.Procs }

// InitialSends implements Protocol.
func (rc *RotatingCoord) InitialSends(p int, state any) []Send {
	s := state.(*rcState)
	out := rc.broadcast(p, "R", s.phase, s.value)
	if rc.coordinator(s.phase) == p {
		out = append(out, rc.broadcast(p, "C", s.phase, s.value)...)
		s.cMsgs[s.phase] = s.value
	}
	return out
}

func (rc *RotatingCoord) broadcast(p int, kind string, phase, v int) []Send {
	payload := kind + "|" + strconv.Itoa(phase) + "|" + strconv.Itoa(v)
	out := make([]Send, 0, rc.Procs-1)
	for q := 0; q < rc.Procs; q++ {
		if q != p {
			out = append(out, Send{To: q, Payload: payload})
		}
	}
	return out
}

// Step implements Protocol.
func (rc *RotatingCoord) Step(p int, state any, from int, payload string, _ *rand.Rand) (any, []Send) {
	s := state.(*rcState)
	parts := strings.Split(payload, "|")
	if len(parts) == 3 {
		phase, err1 := strconv.Atoi(parts[1])
		v, err2 := strconv.Atoi(parts[2])
		if err1 == nil && err2 == nil {
			switch parts[0] {
			case "R":
				rc.record(s.rMsgs, phase, from, v)
			case "P":
				rc.record(s.pMsgs, phase, from, v)
			case "C":
				if _, ok := s.cMsgs[phase]; !ok && from == rc.coordinator(phase) {
					s.cMsgs[phase] = v
				}
			}
		}
	}
	var sends []Send
	for {
		progressed, out := rc.advance(p, s)
		sends = append(sends, out...)
		if !progressed {
			break
		}
	}
	return s, sends
}

func (rc *RotatingCoord) advance(p int, s *rcState) (bool, []Send) {
	n, t := rc.Procs, rc.MaxFaults
	quorum := n - t
	switch s.stage {
	case 0:
		reports := s.rMsgs[s.phase]
		if len(reports) < quorum {
			return false, nil
		}
		counts := map[int]int{}
		for _, v := range reports {
			counts[v]++
		}
		prop := benOrUnknown
		for v, c := range counts {
			if 2*c > n {
				prop = v
				break
			}
		}
		s.stage = 1
		rc.record(s.pMsgs, s.phase, p, prop)
		return true, rc.broadcast(p, "P", s.phase, prop)
	default:
		props := s.pMsgs[s.phase]
		if len(props) < quorum {
			return false, nil
		}
		// An undecided process without a proposed value needs the
		// coordinator's word (or gives up waiting only when it has it —
		// safety permits waiting forever; that is the FLP-mandated price,
		// paid here in liveness-under-bad-timing).
		val, count := benOrUnknown, 0
		for _, v := range props {
			if v != benOrUnknown {
				val = v
				count++
			}
		}
		coordVal, haveCoord := s.cMsgs[s.phase]
		switch {
		case val != benOrUnknown && count >= t+1:
			if !s.decided {
				s.decided = true
				s.decision = val
			}
			s.value = val
		case val != benOrUnknown:
			s.value = val
		case haveCoord:
			s.value = coordVal
		default:
			return false, nil // wait for the coordinator's word
		}
		s.phase++
		s.stage = 0
		rc.record(s.rMsgs, s.phase, p, s.value)
		out := rc.broadcast(p, "R", s.phase, s.value)
		if rc.coordinator(s.phase) == p {
			out = append(out, rc.broadcast(p, "C", s.phase, s.value)...)
			s.cMsgs[s.phase] = s.value
		}
		return true, out
	}
}

// Decide implements Protocol.
func (rc *RotatingCoord) Decide(_ int, state any) (int, bool) {
	s := state.(*rcState)
	return s.decision, s.decided
}
