package async

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// BenOr is Ben-Or's randomized binary consensus ([19], §2.2.4): the
// algorithm that "circumvents" FLP by trading deterministic termination
// for termination with probability 1. It tolerates t < n/2 crash faults.
// Each phase has a report wave (R) and a proposal wave (P); a process
// decides when at least t+1 proposals carry the same value, adopts a
// proposed value when it sees one, and flips a fair coin otherwise.
type BenOr struct {
	// Procs is the number of processes n.
	Procs int
	// MaxFaults is the crash bound t < n/2.
	MaxFaults int
}

var _ Protocol = (*BenOr)(nil)

const benOrUnknown = -1

// benOrState is one process's view.
type benOrState struct {
	value    int
	phase    int
	stage    int // 0: collecting R, 1: collecting P
	decided  bool
	decision int
	rMsgs    map[int]map[int]int // phase -> sender -> value
	pMsgs    map[int]map[int]int // phase -> sender -> value (-1 = "?")
	self     int
}

// Name implements Protocol.
func (b *BenOr) Name() string { return fmt.Sprintf("ben-or(n=%d,t=%d)", b.Procs, b.MaxFaults) }

// NumProcs implements Protocol.
func (b *BenOr) NumProcs() int { return b.Procs }

// Init implements Protocol.
func (b *BenOr) Init(p, input int, _ *rand.Rand) any {
	s := &benOrState{
		value: input,
		phase: 1,
		rMsgs: map[int]map[int]int{},
		pMsgs: map[int]map[int]int{},
		self:  p,
	}
	b.record(s.rMsgs, 1, p, input) // own report
	return s
}

func (b *BenOr) record(m map[int]map[int]int, phase, from, v int) {
	if m[phase] == nil {
		m[phase] = map[int]int{}
	}
	if _, ok := m[phase][from]; !ok {
		m[phase][from] = v
	}
}

// InitialSends implements Protocol: broadcast the phase-1 report.
func (b *BenOr) InitialSends(p int, state any) []Send {
	s := state.(*benOrState)
	return b.broadcast(p, "R", s.phase, s.value)
}

func (b *BenOr) broadcast(p int, kind string, phase, v int) []Send {
	out := make([]Send, 0, b.Procs-1)
	payload := kind + "|" + strconv.Itoa(phase) + "|" + strconv.Itoa(v)
	for q := 0; q < b.Procs; q++ {
		if q != p {
			out = append(out, Send{To: q, Payload: payload})
		}
	}
	return out
}

// Step implements Protocol.
func (b *BenOr) Step(p int, state any, from int, payload string, rng *rand.Rand) (any, []Send) {
	s := state.(*benOrState)
	parts := strings.Split(payload, "|")
	if len(parts) == 3 {
		phase, err1 := strconv.Atoi(parts[1])
		v, err2 := strconv.Atoi(parts[2])
		if err1 == nil && err2 == nil {
			switch parts[0] {
			case "R":
				b.record(s.rMsgs, phase, from, v)
			case "P":
				b.record(s.pMsgs, phase, from, v)
			}
		}
	}
	var sends []Send
	for {
		progressed, out := b.advance(p, s, rng)
		sends = append(sends, out...)
		if !progressed {
			break
		}
	}
	return s, sends
}

// advance fires at most one stage transition when its quorum is met.
func (b *BenOr) advance(p int, s *benOrState, rng *rand.Rand) (bool, []Send) {
	n, t := b.Procs, b.MaxFaults
	quorum := n - t
	switch s.stage {
	case 0: // collecting reports for s.phase
		reports := s.rMsgs[s.phase]
		if len(reports) < quorum {
			return false, nil
		}
		counts := map[int]int{}
		for _, v := range reports {
			counts[v]++
		}
		prop := benOrUnknown
		for v, c := range counts {
			if 2*c > n {
				prop = v
				break
			}
		}
		s.stage = 1
		b.record(s.pMsgs, s.phase, p, prop)
		return true, b.broadcast(p, "P", s.phase, prop)
	default: // collecting proposals for s.phase
		props := s.pMsgs[s.phase]
		if len(props) < quorum {
			return false, nil
		}
		val, count := benOrUnknown, 0
		for _, v := range props {
			if v != benOrUnknown {
				val = v
				count++
			}
		}
		switch {
		case val != benOrUnknown && count >= t+1:
			if !s.decided {
				s.decided = true
				s.decision = val
			}
			s.value = val
		case val != benOrUnknown:
			s.value = val
		default:
			s.value = rng.Intn(2)
		}
		s.phase++
		s.stage = 0
		b.record(s.rMsgs, s.phase, p, s.value)
		return true, b.broadcast(p, "R", s.phase, s.value)
	}
}

// Decide implements Protocol.
func (b *BenOr) Decide(_ int, state any) (int, bool) {
	s := state.(*benOrState)
	return s.decision, s.decided
}

// PhaseOf reports the phase a process had reached (for measurements).
func (b *BenOr) PhaseOf(state any) int { return state.(*benOrState).phase }

// MeasureBenOr runs Ben-Or once per seed and reports decision phases.
type BenOrReport struct {
	// Runs is the number of seeded executions.
	Runs int
	// Agreed counts runs where all non-crashed deciders agreed.
	Agreed int
	// Terminated counts runs where every non-crashed process decided
	// within the delivery budget.
	Terminated int
	// TotalDeliveries sums deliveries across runs.
	TotalDeliveries int
}

// MeasureBenOr runs `runs` seeded executions with a random scheduler and
// optional crashes and aggregates the outcomes.
func MeasureBenOr(n, t, runs int, inputs []int, crashAfter map[int]int, baseSeed int64) (BenOrReport, error) {
	rep := BenOrReport{Runs: runs}
	for r := 0; r < runs; r++ {
		b := &BenOr{Procs: n, MaxFaults: t}
		seed := baseSeed + int64(r)
		res, err := Run(b, inputs, Options{
			Scheduler:          &RandomScheduler{Rng: rand.New(rand.NewSource(seed))},
			Seed:               seed,
			StopWhenAllDecided: true,
			CrashAfter:         crashAfter,
		})
		if err != nil {
			return rep, fmt.Errorf("async: ben-or run %d: %w", r, err)
		}
		rep.TotalDeliveries += res.Deliveries
		if res.AllDecided {
			rep.Terminated++
		}
		agreed := true
		seen := -1
		for q := 0; q < n; q++ {
			if res.Crashed[q] || res.Decisions[q] < 0 {
				continue
			}
			if seen >= 0 && res.Decisions[q] != seen {
				agreed = false
			}
			seen = res.Decisions[q]
		}
		if agreed && seen >= 0 {
			rep.Agreed++
		}
	}
	return rep, nil
}
