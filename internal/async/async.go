// Package async is the concrete asynchronous message-passing runtime: it
// executes protocols under pluggable schedulers (the "adversary" of
// §2.2.4), injects crash faults, and collects step and message counts.
// Where the flp package *explores* all schedules exhaustively, this
// package *runs* single large executions — the tool for randomized
// algorithms like Ben-Or's (§2.2.4, [19]), whose whole point is that they
// terminate with probability 1 against the very adversary that defeats
// deterministic protocols.
package async

import (
	"errors"
	"fmt"
	"math/rand"
)

// Send is a message emitted by a protocol step.
type Send struct {
	// To is the destination process.
	To int
	// Payload is the message body.
	Payload string
}

// Protocol is an asynchronous message-passing protocol. Unlike
// flp.Protocol, states are opaque and steps may consume randomness (the
// rng is per-process and seeded deterministically, so runs reproduce).
type Protocol interface {
	// Name identifies the protocol.
	Name() string
	// NumProcs returns the number of processes.
	NumProcs() int
	// Init returns process p's initial state.
	Init(p, input int, rng *rand.Rand) any
	// InitialSends returns the messages p emits on its first step.
	InitialSends(p int, state any) []Send
	// Step handles one delivered message.
	Step(p int, state any, from int, payload string, rng *rand.Rand) (any, []Send)
	// Decide reports p's decision, if any.
	Decide(p int, state any) (int, bool)
}

// Envelope is an in-flight message (exported for Scheduler implementers).
type Envelope struct {
	From, To int
	Payload  string
	// Seq is a global sequence number (send order).
	Seq int
}

// Scheduler picks which pending envelope to deliver next — it is the
// adversary controlling asynchrony.
type Scheduler interface {
	// Pick returns the index into pending of the next message to
	// deliver. pending is never empty.
	Pick(pending []Envelope) int
}

// RandomScheduler delivers a uniformly random pending message.
type RandomScheduler struct {
	// Rng drives the choices.
	Rng *rand.Rand
}

var _ Scheduler = (*RandomScheduler)(nil)

// Pick implements Scheduler.
func (r *RandomScheduler) Pick(pending []Envelope) int { return r.Rng.Intn(len(pending)) }

// FIFOScheduler delivers messages in send order.
type FIFOScheduler struct{}

var _ Scheduler = FIFOScheduler{}

// Pick implements Scheduler.
func (FIFOScheduler) Pick(pending []Envelope) int {
	best := 0
	for i, e := range pending {
		if e.Seq < pending[best].Seq {
			best = i
		}
	}
	return best
}

// LIFOScheduler delivers the most recently sent message first — a simple
// adversarial pattern that starves old messages as long as new ones keep
// arriving.
type LIFOScheduler struct{}

var _ Scheduler = LIFOScheduler{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(pending []Envelope) int {
	best := 0
	for i, e := range pending {
		if e.Seq > pending[best].Seq {
			best = i
		}
	}
	return best
}

// Options configures Run.
type Options struct {
	// Scheduler picks deliveries (required).
	Scheduler Scheduler
	// MaxDeliveries aborts the run after this many deliveries (0 means
	// DefaultMaxDeliveries); the run is then reported as not terminated.
	MaxDeliveries int
	// CrashAfter maps a process to the number of its own steps after
	// which it crashes (0 = crashed from the start, before its initial
	// sends).
	CrashAfter map[int]int
	// Seed derives the per-process RNGs.
	Seed int64
	// StopWhenAllDecided ends the run once every non-crashed process has
	// decided.
	StopWhenAllDecided bool
}

// DefaultMaxDeliveries bounds runs unless overridden.
const DefaultMaxDeliveries = 1_000_000

// Result reports a completed run.
type Result struct {
	// Decisions[p] is p's decision or -1.
	Decisions []int
	// Deliveries counts delivered messages.
	Deliveries int
	// Sent counts messages emitted.
	Sent int
	// Steps[p] counts p's steps (wake-up included).
	Steps []int
	// Crashed[p] reports whether p crashed.
	Crashed []bool
	// AllDecided reports whether every non-crashed process decided.
	AllDecided bool
}

// ErrNoScheduler is returned when Options.Scheduler is nil.
var ErrNoScheduler = errors.New("async: Options.Scheduler is required")

// Run executes the protocol until quiescence, decision, or the delivery
// budget.
func Run(p Protocol, inputs []int, opts Options) (Result, error) {
	if opts.Scheduler == nil {
		return Result{}, ErrNoScheduler
	}
	n := p.NumProcs()
	if len(inputs) != n {
		return Result{}, fmt.Errorf("async: %d inputs for %d processes", len(inputs), n)
	}
	maxDel := opts.MaxDeliveries
	if maxDel <= 0 {
		maxDel = DefaultMaxDeliveries
	}
	rngs := make([]*rand.Rand, n)
	states := make([]any, n)
	res := Result{
		Decisions: make([]int, n),
		Steps:     make([]int, n),
		Crashed:   make([]bool, n),
	}
	for q := 0; q < n; q++ {
		rngs[q] = rand.New(rand.NewSource(opts.Seed*31 + int64(q)))
		states[q] = p.Init(q, inputs[q], rngs[q])
		res.Decisions[q] = -1
	}
	seq := 0
	var pending []Envelope
	emit := func(from int, sends []Send) {
		for _, s := range sends {
			pending = append(pending, Envelope{From: from, To: s.To, Payload: s.Payload, Seq: seq})
			seq++
			res.Sent++
		}
	}
	crashBudget := func(q int) (int, bool) {
		if opts.CrashAfter == nil {
			return 0, false
		}
		b, ok := opts.CrashAfter[q]
		return b, ok
	}
	// Wake-up steps (initial sends), unless crashed from the start.
	for q := 0; q < n; q++ {
		if b, ok := crashBudget(q); ok && b == 0 {
			res.Crashed[q] = true
			continue
		}
		res.Steps[q]++
		emit(q, p.InitialSends(q, states[q]))
	}
	allDecided := func() bool {
		for q := 0; q < n; q++ {
			if res.Crashed[q] {
				continue
			}
			if _, ok := p.Decide(q, states[q]); !ok {
				return false
			}
		}
		return true
	}
	for len(pending) > 0 && res.Deliveries < maxDel {
		if opts.StopWhenAllDecided && allDecided() {
			break
		}
		i := opts.Scheduler.Pick(pending)
		env := pending[i]
		pending[i] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		res.Deliveries++
		if res.Crashed[env.To] {
			continue // lost: the receiver is dead
		}
		newState, sends := p.Step(env.To, states[env.To], env.From, env.Payload, rngs[env.To])
		states[env.To] = newState
		res.Steps[env.To]++
		if b, ok := crashBudget(env.To); ok && res.Steps[env.To] >= b {
			res.Crashed[env.To] = true
			continue // crash consumes the emitted messages
		}
		emit(env.To, sends)
	}
	for q := 0; q < n; q++ {
		if d, ok := p.Decide(q, states[q]); ok {
			res.Decisions[q] = d
		}
	}
	res.AllDecided = allDecided()
	return res, nil
}
