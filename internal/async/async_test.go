package async

import (
	"math/rand"
	"testing"
)

// pingProto: p0 sends one message to p1; p1 decides on receipt.
type pingProto struct{}

func (pingProto) Name() string                     { return "ping" }
func (pingProto) NumProcs() int                    { return 2 }
func (pingProto) Init(_, in int, _ *rand.Rand) any { return in }

func (pingProto) InitialSends(p int, _ any) []Send {
	if p == 0 {
		return []Send{{To: 1, Payload: "ping"}}
	}
	return nil
}

func (pingProto) Step(_ int, state any, _ int, _ string, _ *rand.Rand) (any, []Send) {
	return 100, nil
}

func (pingProto) Decide(_ int, state any) (int, bool) {
	v := state.(int)
	return v, v == 100
}

func TestRunBasics(t *testing.T) {
	res, err := Run(pingProto{}, []int{0, 0}, Options{Scheduler: FIFOScheduler{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Deliveries != 1 || res.Sent != 1 {
		t.Fatalf("deliveries/sent = %d/%d, want 1/1", res.Deliveries, res.Sent)
	}
	if res.Decisions[1] != 100 {
		t.Fatalf("p1 decision = %d, want 100", res.Decisions[1])
	}
}

func TestRunRequiresScheduler(t *testing.T) {
	if _, err := Run(pingProto{}, []int{0, 0}, Options{}); err != ErrNoScheduler {
		t.Fatalf("err = %v, want ErrNoScheduler", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if _, err := Run(pingProto{}, []int{0}, Options{Scheduler: FIFOScheduler{}}); err == nil {
		t.Fatal("input length mismatch should error")
	}
}

func TestCrashFromStartSuppressesInitialSends(t *testing.T) {
	res, err := Run(pingProto{}, []int{0, 0}, Options{
		Scheduler:  FIFOScheduler{},
		CrashAfter: map[int]int{0: 0},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed[0] {
		t.Fatal("p0 should be crashed")
	}
	if res.Sent != 0 {
		t.Fatalf("sent = %d, want 0 (crashed before wake-up)", res.Sent)
	}
	if res.Decisions[1] != -1 {
		t.Fatal("p1 should be undecided")
	}
}

func TestSchedulerOrders(t *testing.T) {
	pending := []Envelope{{Seq: 3}, {Seq: 1}, {Seq: 2}}
	if got := (FIFOScheduler{}).Pick(pending); got != 1 {
		t.Errorf("FIFO picked %d, want 1", got)
	}
	if got := (LIFOScheduler{}).Pick(pending); got != 0 {
		t.Errorf("LIFO picked %d, want 0", got)
	}
	rs := &RandomScheduler{Rng: rand.New(rand.NewSource(1))}
	if got := rs.Pick(pending); got < 0 || got > 2 {
		t.Errorf("random pick out of range: %d", got)
	}
}

// TestBenOrUniformInputsDecideImmediately: validity — uniform inputs
// decide that value in phase 1.
func TestBenOrUniformInputsDecideImmediately(t *testing.T) {
	for _, v := range []int{0, 1} {
		b := &BenOr{Procs: 5, MaxFaults: 2}
		inputs := []int{v, v, v, v, v}
		res, err := Run(b, inputs, Options{
			Scheduler:          FIFOScheduler{},
			Seed:               1,
			StopWhenAllDecided: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !res.AllDecided {
			t.Fatalf("v=%d: not all decided", v)
		}
		for p, d := range res.Decisions {
			if d != v {
				t.Fatalf("v=%d: p%d decided %d", v, p, d)
			}
		}
	}
}

// TestBenOrTerminatesAndAgreesUnderRandomScheduling: the probabilistic
// circumvention of FLP (E13): over many seeds, mixed inputs terminate with
// agreement.
func TestBenOrTerminatesAndAgreesUnderRandomScheduling(t *testing.T) {
	rep, err := MeasureBenOr(5, 2, 30, []int{0, 1, 0, 1, 1}, nil, 1000)
	if err != nil {
		t.Fatalf("MeasureBenOr: %v", err)
	}
	if rep.Terminated != rep.Runs {
		t.Errorf("terminated %d/%d runs", rep.Terminated, rep.Runs)
	}
	if rep.Agreed != rep.Runs {
		t.Errorf("agreed %d/%d runs", rep.Agreed, rep.Runs)
	}
}

// TestBenOrSurvivesCrashes: t crashes do not prevent termination.
func TestBenOrSurvivesCrashes(t *testing.T) {
	crash := map[int]int{3: 2, 4: 5}
	rep, err := MeasureBenOr(5, 2, 20, []int{0, 1, 1, 0, 1}, crash, 77)
	if err != nil {
		t.Fatalf("MeasureBenOr: %v", err)
	}
	if rep.Terminated != rep.Runs {
		t.Errorf("terminated %d/%d runs with crashes", rep.Terminated, rep.Runs)
	}
	if rep.Agreed != rep.Runs {
		t.Errorf("agreed %d/%d runs with crashes", rep.Agreed, rep.Runs)
	}
}

// TestBenOrAgreementHoldsUnderAdversarialScheduling: LIFO starves old
// messages but can never produce disagreement (the safety half survives
// any adversary; only termination becomes probabilistic).
func TestBenOrAgreementHoldsUnderAdversarialScheduling(t *testing.T) {
	b := &BenOr{Procs: 3, MaxFaults: 1}
	res, err := Run(b, []int{0, 1, 0}, Options{
		Scheduler:          LIFOScheduler{},
		Seed:               5,
		MaxDeliveries:      50_000,
		StopWhenAllDecided: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := -1
	for q, d := range res.Decisions {
		if d < 0 {
			continue
		}
		if seen >= 0 && d != seen {
			t.Fatalf("disagreement: p%d decided %d, another %d", q, d, seen)
		}
		seen = d
	}
}

// TestRotatingCoordTerminatesUnderTimelyScheduling: the [46] trade — with
// benign (FIFO) timing, the deterministic protocol terminates and agrees.
func TestRotatingCoordTerminatesUnderTimelyScheduling(t *testing.T) {
	rc := &RotatingCoord{Procs: 5, MaxFaults: 2}
	res, err := Run(rc, []int{0, 1, 0, 1, 1}, Options{
		Scheduler:          FIFOScheduler{},
		Seed:               3,
		StopWhenAllDecided: true,
		MaxDeliveries:      200_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDecided {
		t.Fatalf("rotating coordinator should decide under FIFO timing: %+v", res.Decisions)
	}
	seen := -1
	for _, d := range res.Decisions {
		if d < 0 {
			continue
		}
		if seen >= 0 && d != seen {
			t.Fatalf("disagreement: %v", res.Decisions)
		}
		seen = d
	}
	if seen != 0 && seen != 1 {
		t.Fatalf("invalid decision %d", seen)
	}
}

// TestRotatingCoordUniformInputs: validity under all schedulers.
func TestRotatingCoordUniformInputs(t *testing.T) {
	for _, v := range []int{0, 1} {
		rc := &RotatingCoord{Procs: 4, MaxFaults: 1}
		inputs := []int{v, v, v, v}
		res, err := Run(rc, inputs, Options{
			Scheduler:          FIFOScheduler{},
			StopWhenAllDecided: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for p, d := range res.Decisions {
			if d != v {
				t.Fatalf("v=%d: p%d decided %d", v, p, d)
			}
		}
	}
}

// TestRotatingCoordSafeUnderAdversarialScheduling: agreement survives any
// scheduler; only termination is at risk (the FLP-mandated price, paid in
// liveness instead of safety or randomness).
func TestRotatingCoordSafeUnderAdversarialScheduling(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rc := &RotatingCoord{Procs: 5, MaxFaults: 2}
		res, err := Run(rc, []int{0, 1, 1, 0, 0}, Options{
			Scheduler:     &RandomScheduler{Rng: rand.New(rand.NewSource(seed))},
			Seed:          seed,
			MaxDeliveries: 30_000,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		seen := -1
		for q, d := range res.Decisions {
			if d < 0 {
				continue
			}
			if seen >= 0 && d != seen {
				t.Fatalf("seed=%d: disagreement at p%d: %v", seed, q, res.Decisions)
			}
			seen = d
		}
	}
	// LIFO starves old messages; decided values must still agree.
	rc := &RotatingCoord{Procs: 3, MaxFaults: 1}
	res, err := Run(rc, []int{0, 1, 0}, Options{
		Scheduler:     LIFOScheduler{},
		MaxDeliveries: 30_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := -1
	for _, d := range res.Decisions {
		if d < 0 {
			continue
		}
		if seen >= 0 && d != seen {
			t.Fatalf("LIFO disagreement: %v", res.Decisions)
		}
		seen = d
	}
}
