package knowledge

import "testing"

// someOne is the fact "some process started with input 1".
func someOne(e Execution) bool {
	for _, v := range e.Inputs {
		if v == 1 {
			return true
		}
	}
	return false
}

func TestUniverseEnumerates(t *testing.T) {
	u, err := NewCrashUniverse(3, 1, 1)
	if err != nil {
		t.Fatalf("NewCrashUniverse: %v", err)
	}
	if u.Len() != 104 { // 8 inputs x 13 schedules, matching the chain engine
		t.Fatalf("Len = %d, want 104", u.Len())
	}
	if _, ok := u.Find([]int{1, 1, 1}); !ok {
		t.Fatal("all-ones failure-free execution missing")
	}
}

func TestKnowledgeAfterOneRound(t *testing.T) {
	u, err := NewCrashUniverse(3, 1, 1)
	if err != nil {
		t.Fatalf("NewCrashUniverse: %v", err)
	}
	e, _ := u.Find([]int{1, 1, 1})
	// After one failure-free round everyone has seen a 1: each process
	// knows the fact...
	for p := 0; p < 3; p++ {
		if !u.Knows(p, e, someOne) {
			t.Fatalf("p%d should know someOne after a failure-free round", p)
		}
	}
	// ...but knowledge levels are finite: E^j(someOne) fails at some
	// depth, because the indistinguishability chain eventually connects to
	// executions where inputs were all zero.
	level := u.KnowledgeLevel(e, someOne, 32)
	if level < 1 {
		t.Fatalf("level = %d, want >= 1", level)
	}
	if level >= 32 {
		t.Fatalf("level = %d, want finite (< 32)", level)
	}
	// And therefore common knowledge is not attained — the epistemic
	// restatement of the chain argument's success at k = t = 1.
	if u.CommonKnowledge(e, someOne) {
		t.Fatal("someOne should not be common knowledge at k = t = 1")
	}
}

func TestCommonKnowledgeMatchesChainVerdict(t *testing.T) {
	// At k = t+1 = 2 the chain engine finds no chain between all-ones and
	// all-zeros failure-free executions; common knowledge of "someOne"
	// at all-ones is exactly the absence of any chain to a ¬someOne
	// execution. Verify the two engines agree on the connectivity.
	u, err := NewCrashUniverse(3, 1, 2)
	if err != nil {
		t.Fatalf("NewCrashUniverse: %v", err)
	}
	e, _ := u.Find([]int{1, 1, 1})
	gotCK := u.CommonKnowledge(e, someOne)
	// If CK holds, no ¬someOne execution shares the component: in
	// particular no chain to all-zeros failure-free exists — consistent
	// with ChainLowerBound(3,1,2) finding none. If CK fails, a chain to
	// some all-zeros-input execution exists even at t+1 rounds (crashed
	// processes widen the component beyond the failure-free all-zeros
	// target the chain engine uses). Either way the level must be finite
	// or the component must be someOne-pure; assert internal consistency.
	level := u.KnowledgeLevel(e, someOne, 64)
	if gotCK && level < 64 {
		t.Fatalf("common knowledge attained but E^%d failed — operators inconsistent", level)
	}
	if !gotCK && level >= 64 {
		t.Fatalf("no common knowledge but E^64 held — operators inconsistent")
	}
	t.Logf("k=2: common knowledge of someOne at all-ones: %v (level %d)", gotCK, level)
}

func TestKnowledgeLevelGrowsWithRounds(t *testing.T) {
	levels := make([]int, 0, 2)
	for _, k := range []int{1, 2} {
		u, err := NewCrashUniverse(3, 1, k)
		if err != nil {
			t.Fatalf("NewCrashUniverse: %v", err)
		}
		e, _ := u.Find([]int{1, 1, 1})
		levels = append(levels, u.KnowledgeLevel(e, someOne, 64))
	}
	if levels[1] <= levels[0] && levels[1] < 64 {
		t.Fatalf("knowledge depth should grow with rounds: %v", levels)
	}
}

func TestFalseFactHasNegativeLevel(t *testing.T) {
	u, err := NewCrashUniverse(2, 1, 1)
	if err != nil {
		t.Fatalf("NewCrashUniverse: %v", err)
	}
	e, _ := u.Find([]int{0, 0})
	if lvl := u.KnowledgeLevel(e, someOne, 8); lvl != -1 {
		t.Fatalf("level of a false fact = %d, want -1", lvl)
	}
	if u.CommonKnowledge(e, someOne) {
		t.Fatal("false fact cannot be common knowledge")
	}
}

func TestFaultyProcessKnowsNothing(t *testing.T) {
	u, err := NewCrashUniverse(3, 1, 1)
	if err != nil {
		t.Fatalf("NewCrashUniverse: %v", err)
	}
	for i := 0; i < u.Len(); i++ {
		ex := u.Execution(i)
		for p, f := range ex.Faulty {
			if f && u.Knows(p, i, someOne) {
				t.Fatalf("faulty p%d reported as knowing", p)
			}
		}
	}
}
