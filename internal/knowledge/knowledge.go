// Package knowledge implements the epistemic reading of the round lower
// bounds (§2.2.2 Dwork–Moses, §2.6 Chandy–Misra and Halpern–Moses): over
// the universe of all k-round crash executions, "process p knows φ" means
// φ holds in every execution p cannot distinguish from the actual one, and
// "everyone knows" iterates that operator. Common knowledge — the fixpoint
// E^∞φ — is exactly truth of φ throughout the connected component of the
// indistinguishability graph, so the chain arguments of the consensus
// package and the attainability of common knowledge are two faces of one
// computation: a chain from e to a ¬φ execution exists iff φ is not common
// knowledge at e. The paper recounts how Dwork and Moses used this view to
// characterize exactly which failure patterns force t+1 rounds.
package knowledge

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/consensus"
	"repro/internal/rounds"
)

// Execution is one element of the universe.
type Execution struct {
	// Inputs is the binary input vector.
	Inputs []int
	// Faulty marks the crashed processes.
	Faulty []bool
	// viewKeys canonically identify each process's k-round view.
	viewKeys []string
}

// Fact is a property of executions (e.g. "some input is 1").
type Fact func(e Execution) bool

// Universe is the set of all admissible k-round crash executions for n
// processes and at most t faults, with the indistinguishability structure
// precomputed.
type Universe struct {
	execs []Execution
	n     int
	// groups maps (process, view) to the executions sharing it.
	groups map[string][]int32
}

// NewCrashUniverse enumerates the k-round crash universe.
func NewCrashUniverse(n, t, k int) (*Universe, error) {
	proto := &consensus.FullInfo{Procs: n}
	u := &Universe{n: n, groups: make(map[string][]int32)}
	for _, in := range consensus.AllBinaryInputs(n) {
		for _, sched := range consensus.AllCrashSchedules(n, t, k) {
			res, err := rounds.Run(proto, in, sched, rounds.RunOptions{Rounds: k, RecordViews: true})
			if err != nil {
				return nil, fmt.Errorf("knowledge: enumerating universe: %w", err)
			}
			e := Execution{Inputs: in, Faulty: res.Faulty, viewKeys: make([]string, n)}
			for p := 0; p < n; p++ {
				e.viewKeys[p] = "in=" + strconv.Itoa(in[p]) + "\x1d" + strings.Join(res.Views[p], "\x1c")
			}
			id := int32(len(u.execs))
			u.execs = append(u.execs, e)
			for p := 0; p < n; p++ {
				if e.Faulty[p] {
					continue
				}
				key := strconv.Itoa(p) + "\x1b" + e.viewKeys[p]
				u.groups[key] = append(u.groups[key], id)
			}
		}
	}
	return u, nil
}

// Len returns the number of executions in the universe.
func (u *Universe) Len() int { return len(u.execs) }

// Execution returns execution i.
func (u *Universe) Execution(i int) Execution { return u.execs[i] }

// Find returns the index of the execution with the given inputs and no
// faults.
func (u *Universe) Find(inputs []int) (int, bool) {
	for i, e := range u.execs {
		if anyTrue(e.Faulty) {
			continue
		}
		if equalInts(e.Inputs, inputs) {
			return i, true
		}
	}
	return 0, false
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evaluate memoizes a fact over the whole universe.
func (u *Universe) evaluate(f Fact) []bool {
	out := make([]bool, len(u.execs))
	for i, e := range u.execs {
		out[i] = f(e)
	}
	return out
}

// knowsAll computes, from a truth vector, the executions at which process
// p knows the fact: truth must hold at every execution in p's view group.
func (u *Universe) knowsAll(truth []bool) []bool {
	out := make([]bool, len(u.execs))
	for i := range out {
		out[i] = true
	}
	// A group is "all true" iff no member is false; a nonfaulty process
	// knows the fact at e iff its group at e is all-true. Faulty
	// processes are not required to know anything.
	groupAllTrue := make(map[string]bool, len(u.groups))
	for key, members := range u.groups {
		all := true
		for _, m := range members {
			if !truth[m] {
				all = false
				break
			}
		}
		groupAllTrue[key] = all
	}
	for i, e := range u.execs {
		for p := 0; p < u.n; p++ {
			if e.Faulty[p] {
				continue
			}
			key := strconv.Itoa(p) + "\x1b" + e.viewKeys[p]
			if !groupAllTrue[key] {
				out[i] = false
				break
			}
		}
	}
	return out
}

// Knows reports whether nonfaulty process p knows f at execution e.
func (u *Universe) Knows(p, e int, f Fact) bool {
	ex := u.execs[e]
	if ex.Faulty[p] {
		return false
	}
	key := strconv.Itoa(p) + "\x1b" + ex.viewKeys[p]
	for _, m := range u.groups[key] {
		if !f(u.execs[m]) {
			return false
		}
	}
	return true
}

// KnowledgeLevel returns the largest j <= max such that E^j(f) holds at
// execution e, where E^0(f) = f and E^(j+1)(f) = "every nonfaulty process
// knows E^j(f)".
func (u *Universe) KnowledgeLevel(e int, f Fact, max int) int {
	truth := u.evaluate(f)
	if !truth[e] {
		return -1
	}
	level := 0
	for level < max {
		truth = u.knowsAll(truth)
		if !truth[e] {
			return level
		}
		level++
	}
	return level
}

// CommonKnowledge reports whether f is common knowledge at execution e:
// the fixpoint of the E operator, equivalently truth of f throughout e's
// connected component of the indistinguishability graph — exactly the
// absence of a chain from e to any ¬f execution.
func (u *Universe) CommonKnowledge(e int, f Fact) bool {
	seen := make([]bool, len(u.execs))
	seen[e] = true
	queue := []int32{int32(e)}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		ex := u.execs[i]
		if !f(ex) {
			return false
		}
		for p := 0; p < u.n; p++ {
			if ex.Faulty[p] {
				continue
			}
			key := strconv.Itoa(p) + "\x1b" + ex.viewKeys[p]
			for _, m := range u.groups[key] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
	}
	return true
}
