package sharedmem

import "repro/internal/spec"

// handoffLock is a two-process, lockout-free mutual exclusion algorithm
// using a single 4-valued test-and-set variable, in the spirit of the
// Cremers–Hibbard counterexample algorithm (§2.1): the synth package's
// exhaustive searches show that two values never suffice for fair mutual
// exclusion (and that within the bounded symmetric skeleton three do not
// either); this algorithm shows a single variable with a handful of values
// is nonetheless enough, in contrast to the read/write case where no
// number of values helps (Burns–Lynch).
//
// Value protocol: 0 = free, 1 = busy, 2 = busy with a registered waiter,
// 3 = grant (the lock is reserved for the registered waiter). A fresh
// trier takes a free lock (0→1) or registers against a busy one (1→2).
// The holder's exit converts 2 into the grant value 3, which only the
// registered waiter consumes (3→1). The crucial design point — found by
// running this library's own model checker against earlier 3-valued
// attempts — is that the grant value is *transient*: it persists only
// until the (fair) waiter's next step, so a fresh trier that spins on 3
// cannot be starved by missed windows, whereas any protocol in which a
// trier spins silently on a value that recurs in its rival's solo cycle
// admits a weakly-fair starvation schedule.
type handoffLock struct{}

// NewHandoffLock returns the 4-valued fair 2-process test-and-set lock.
func NewHandoffLock() Algorithm { return handoffLock{} }

// Local states of handoffLock.
const (
	hoRemainder = 0 // remainder
	hoTry       = 1 // trying, not registered
	hoWait      = 2 // registered waiter
	hoCritical  = 3
	hoExit      = 4
)

// Shared-variable values.
const (
	hoFree   = 0
	hoBusy   = 1
	hoWaited = 2 // busy with registered waiter
	hoGrant  = 3 // reserved for the registered waiter
)

func (handoffLock) Name() string      { return "handoff-lock(4-values)" }
func (handoffLock) NumProcs() int     { return 2 }
func (handoffLock) Vars() []VarSpec   { return []VarSpec{{Kind: RMW, Init: hoFree, Values: 4}} }
func (handoffLock) InitLocal(int) int { return hoRemainder }

func (handoffLock) Region(_, local int) spec.Region {
	switch local {
	case hoRemainder:
		return spec.Remainder
	case hoCritical:
		return spec.Critical
	case hoExit:
		return spec.Exit
	default:
		return spec.Trying
	}
}

func (handoffLock) Access(_, _ int) int { return 0 }

func (handoffLock) Step(_, local, val int) (int, int) {
	switch local {
	case hoRemainder: // request: observe only
		return hoTry, val
	case hoTry:
		switch val {
		case hoFree:
			return hoCritical, hoBusy
		case hoBusy:
			return hoWait, hoWaited // register
		case hoGrant:
			// Reserved for the other process (with two processes, a
			// pending grant can only belong to the rival, who is trying
			// and will consume it): wait for the transient value to pass.
			return hoTry, val
		default: // hoWaited: unreachable with two processes
			return hoTry, val
		}
	case hoWait:
		switch val {
		case hoWaited:
			return hoWait, val // holder still inside
		case hoGrant:
			return hoCritical, hoBusy // consume the grant
		case hoBusy:
			return hoWait, hoWaited // defensive: re-register
		default: // hoFree: defensive take
			return hoCritical, hoBusy
		}
	case hoCritical:
		return hoExit, val
	default: // hoExit
		switch val {
		case hoWaited:
			return hoRemainder, hoGrant // hand off to the registered waiter
		default:
			return hoRemainder, hoFree // no waiter: release
		}
	}
}
