package sharedmem

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestExpandIntoMatchesSteps checks, state by state over the whole
// reachable space, that the zero-allocation expansion emits exactly Steps'
// transitions — same successors, labels, actors, same order — for each
// seed algorithm.
func TestExpandIntoMatchesSteps(t *testing.T) {
	for _, alg := range []Algorithm{NewPeterson2(), NewTicketLock(4), NewTournament4()} {
		t.Run(alg.Name(), func(t *testing.T) {
			sys := system{alg: alg}
			seen := map[state]bool{}
			frontier := sys.Init()
			checked := 0
			for len(frontier) > 0 {
				var next []state
				for _, s := range frontier {
					if seen[s] {
						continue
					}
					seen[s] = true
					want := sys.Steps(s)
					var got []core.Step[state]
					x := engine.CollectCtx(func(to state, label string, actor int) {
						got = append(got, core.Step[state]{To: to, Label: label, Actor: actor})
					})
					sys.ExpandInto(s, x)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("state %q:\nSteps      = %v\nExpandInto = %v", s, want, got)
					}
					checked++
					for _, st := range want {
						next = append(next, st.To)
					}
				}
				frontier = next
			}
			if checked == 0 {
				t.Fatal("walk checked nothing")
			}
		})
	}
}

// TestExpandIntoAliasingClean runs a full engine exploration with the
// aliasing falsifier checking every state: the scratch expansion must not
// retain emitted buffers, and the graph must match the sequential path.
func TestExpandIntoAliasingClean(t *testing.T) {
	alg := NewTicketLock(3)
	seq, err := core.Explore[state](NewSystem(alg), core.ExploreOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Explore[state](NewSystem(alg), core.ExploreOptions{
		Parallelism: 2, VerifyAliasing: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("state counts differ: %d vs %d", seq.Len(), par.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		if seq.State(i) != par.State(i) {
			t.Fatalf("state %d differs: %q vs %q", i, seq.State(i), par.State(i))
		}
		if !reflect.DeepEqual(seq.Successors(i), par.Successors(i)) {
			t.Fatalf("successors of state %d differ:\nseq = %v\npar = %v",
				i, seq.Successors(i), par.Successors(i))
		}
	}
}
