package sharedmem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/spec"
)

// exploreBoth explores alg's full graph and its symmetry quotient with the
// engine's soundness check on every state, and returns both graphs with the
// quotient telemetry.
func exploreBoth(t *testing.T, alg Algorithm) (full, quo *core.Graph[string], st engine.Stats) {
	t.Helper()
	canon := CanonFor(alg)
	if canon == nil {
		t.Fatalf("CanonFor(%s) = nil", alg.Name())
	}
	full, err := Explore(alg, 0)
	if err != nil {
		t.Fatalf("full explore of %s: %v", alg.Name(), err)
	}
	quo, err = ExploreWith(alg, core.ExploreOptions{Canon: canon, VerifyCanon: 1, Stats: &st})
	if err != nil {
		t.Fatalf("quotient explore of %s: %v", alg.Name(), err)
	}
	return full, quo, st
}

func TestCanonSoundAndReducing(t *testing.T) {
	cases := []struct {
		alg Algorithm
		// orbitMax bounds the reduction by the symmetry group order.
		groupOrder int
	}{
		{NewTASLock(4), 24},
		{NewTicketLock(3), 6},
		{NewCountingSemaphore(4, 2), 24},
		{NewPeterson2(), 2},
		{NewTournament4(), 8},
	}
	for _, c := range cases {
		t.Run(c.alg.Name(), func(t *testing.T) {
			full, quo, st := exploreBoth(t, c.alg)
			if quo.Len() >= full.Len() {
				t.Fatalf("quotient %d states, full %d: no reduction", quo.Len(), full.Len())
			}
			// The quotient can never shrink the space below 1/|G|.
			if quo.Len()*c.groupOrder < full.Len() {
				t.Fatalf("quotient %d states × group order %d < full %d states: impossible reduction",
					quo.Len(), c.groupOrder, full.Len())
			}
			if !st.CanonEnabled || st.ReductionFactor() <= 1 {
				t.Fatalf("missing orbit telemetry: %+v", st)
			}
			// Exclusion — an orbit-invariant predicate — must agree.
			fullOK := invariantHolds(c.alg, full)
			quoOK := invariantHolds(c.alg, quo)
			if fullOK != quoOK {
				t.Fatalf("exclusion verdict differs: full %v, quotient %v", fullOK, quoOK)
			}
		})
	}
}

func invariantHolds(alg Algorithm, g *core.Graph[string]) bool {
	excl := 1
	if cs, ok := alg.(countingSemaphore); ok {
		excl = cs.k
	}
	_, _, ok := g.CheckInvariant(func(s string) bool {
		return countRegion(regionsOf(alg, s), spec.Critical) <= excl
	})
	return ok
}

// TestCanonOrbitComplete checks the substance of quotient soundness
// directly: the quotient contains exactly the representatives of the
// reachable orbits — every full-graph state's representative is interned
// (none lost), every interned state is its own representative (none extra).
func TestCanonOrbitComplete(t *testing.T) {
	for _, alg := range []Algorithm{NewTicketLock(3), NewPeterson2(), NewTournament4()} {
		canon := CanonFor(alg)
		full, err := Explore(alg, 0)
		if err != nil {
			t.Fatalf("full explore of %s: %v", alg.Name(), err)
		}
		quo, err := ExploreWith(alg, core.ExploreOptions{Canon: canon})
		if err != nil {
			t.Fatalf("quotient explore of %s: %v", alg.Name(), err)
		}
		for i := 0; i < quo.Len(); i++ {
			if s := quo.State(i); canon(s) != s {
				t.Fatalf("%s: interned state %q is not canonical (rep %q)", alg.Name(), s, canon(s))
			}
		}
		orbits := make(map[string]bool, full.Len())
		for i := 0; i < full.Len(); i++ {
			rep := canon(full.State(i))
			orbits[rep] = true
			if _, ok := quo.StateID(rep); !ok {
				t.Fatalf("%s: quotient misses reachable orbit of %q", alg.Name(), full.State(i))
			}
		}
		if len(orbits) != quo.Len() {
			t.Fatalf("%s: full graph spans %d orbits but quotient has %d states", alg.Name(), len(orbits), quo.Len())
		}
	}
}
