// Package sharedmem implements the asynchronous shared-memory model of
// §2.1 of the paper: a group of asynchronous processes communicating via
// shared variables accessed by atomic read/write or general test-and-set
// (read-modify-write) operations, together with checkable statements of
// the mutual exclusion correctness conditions (mutual exclusion, progress,
// lockout-freedom, bounded bypass) whose "careful description" the paper
// identifies as the heart of the Cremers–Hibbard and Burns et al. results.
package sharedmem

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/store"
)

// VarKind distinguishes read/write registers from general test-and-set
// (read-modify-write) variables. The distinction carries the Burns–Lynch
// result (§2.1): with RW access, a writer obliterates the variable and
// single-variable mutual exclusion becomes impossible.
type VarKind int

const (
	// RW variables admit only atomic reads (value unchanged) and atomic
	// writes of a value computed without looking at the old value.
	RW VarKind = iota + 1
	// RMW variables admit one atomic access that reads, computes and
	// writes back — the "very general" test-and-set of Cremers–Hibbard.
	RMW
)

// String implements fmt.Stringer.
func (k VarKind) String() string {
	switch k {
	case RW:
		return "rw"
	case RMW:
		return "rmw"
	default:
		return fmt.Sprintf("VarKind(%d)", int(k))
	}
}

// VarSpec describes one shared variable.
type VarSpec struct {
	Kind VarKind
	// Init is the initial value.
	Init int
	// Values is the domain size; values range over [0, Values).
	Values int
}

// Algorithm is a deterministic shared-memory protocol: each process is an
// automaton whose every transition is a single atomic access to one shared
// variable. Local states and values are small nonnegative ints so that
// global states can be encoded canonically.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// NumProcs returns the number of processes.
	NumProcs() int
	// Vars describes the shared variables.
	Vars() []VarSpec
	// InitLocal returns process p's initial local state.
	InitLocal(p int) int
	// Region classifies local states into the four-region decomposition.
	Region(p, local int) spec.Region
	// Access returns the index of the variable process p touches when
	// stepping from the given local state.
	Access(p, local int) int
	// Step performs the atomic access: given the current value of the
	// accessed variable, it returns the next local state and the value to
	// store back (equal to val for a pure read).
	Step(p, local, val int) (newLocal, newVal int)
}

// state is the canonical encoding of a global configuration: one byte per
// process local state followed by one byte per shared variable.
type state = string

func encode(locals, vars []int) state {
	buf := make([]byte, 0, len(locals)+len(vars))
	for _, l := range locals {
		buf = append(buf, byte(l))
	}
	for _, v := range vars {
		buf = append(buf, byte(v))
	}
	return state(buf)
}

func decode(s state, n, nv int) (locals, vars []int) {
	locals = make([]int, n)
	vars = make([]int, nv)
	for i := 0; i < n; i++ {
		locals[i] = int(s[i])
	}
	for i := 0; i < nv; i++ {
		vars[i] = int(s[n+i])
	}
	return locals, vars
}

// system adapts an Algorithm to a core.System. Steps from remainder states
// are attributed to the environment ("the process might request the
// resource at any time", §2.1 — requesting is not under the algorithm's
// control and fairness never forces it); all other steps are process steps
// subject to weak fairness.
type system struct {
	alg Algorithm
}

var _ core.System[state] = system{}

func (sys system) Init() []state {
	n := sys.alg.NumProcs()
	vs := sys.alg.Vars()
	locals := make([]int, n)
	for p := 0; p < n; p++ {
		locals[p] = sys.alg.InitLocal(p)
	}
	vars := make([]int, len(vs))
	for i, v := range vs {
		vars[i] = v.Init
	}
	return []state{encode(locals, vars)}
}

func (sys system) Steps(s state) []core.Step[state] {
	n := sys.alg.NumProcs()
	vs := sys.alg.Vars()
	locals, vars := decode(s, n, len(vs))
	steps := make([]core.Step[state], 0, n)
	for p := 0; p < n; p++ {
		l := locals[p]
		v := sys.alg.Access(p, l)
		nl, nv := sys.alg.Step(p, l, vars[v])
		newLocals := make([]int, n)
		copy(newLocals, locals)
		newLocals[p] = nl
		newVars := make([]int, len(vars))
		copy(newVars, vars)
		newVars[v] = nv
		actor := p
		label := fmt.Sprintf("p%d: v%d %d->%d", p, v, vars[v], nv)
		if sys.alg.Region(p, l) == spec.Remainder {
			actor = core.EnvironmentActor
			label = fmt.Sprintf("p%d requests", p)
		}
		steps = append(steps, core.Step[state]{To: encode(newLocals, newVars), Label: label, Actor: actor})
	}
	return steps
}

var _ core.ScratchSystem[state] = system{}

// smScratch is the per-worker label render buffer of ExpandInto, carried
// in Ctx.Sys.
type smScratch struct {
	lbl []byte
}

// ExpandInto implements core.ScratchSystem: the same n successors as
// Steps, in the same order with byte-identical labels, but each one
// rendered into the worker's scratch buffer (two patched bytes over the
// current encoding) instead of materializing int slices and fmt labels.
func (sys system) ExpandInto(s state, x *engine.Ctx[state]) {
	n := sys.alg.NumProcs()
	vs := sys.alg.Vars()
	if len(s) != n+len(vs) {
		// Not an encoding this system produced: defer to the spec path.
		for _, st := range sys.Steps(s) {
			x.Emit(st.To, st.Label, st.Actor)
		}
		return
	}
	sc, _ := x.Sys.(*smScratch)
	if sc == nil {
		sc = &smScratch{}
		x.Sys = sc
	}
	for p := 0; p < n; p++ {
		l := int(s[p])
		v := sys.alg.Access(p, l)
		old := int(s[n+v])
		nl, nv := sys.alg.Step(p, l, old)
		buf := append(x.Scratch[:0], s...)
		buf[p] = byte(nl)
		buf[n+v] = byte(nv)
		x.Scratch = buf
		actor := p
		lbl := sc.lbl[:0]
		if sys.alg.Region(p, l) == spec.Remainder {
			actor = core.EnvironmentActor
			lbl = append(lbl, 'p')
			lbl = strconv.AppendInt(lbl, int64(p), 10)
			lbl = append(lbl, " requests"...)
		} else {
			lbl = append(lbl, 'p')
			lbl = strconv.AppendInt(lbl, int64(p), 10)
			lbl = append(lbl, ": v"...)
			lbl = strconv.AppendInt(lbl, int64(v), 10)
			lbl = append(lbl, ' ')
			lbl = strconv.AppendInt(lbl, int64(old), 10)
			lbl = append(lbl, "->"...)
			lbl = strconv.AppendInt(lbl, int64(nv), 10)
		}
		sc.lbl = lbl
		x.EmitBytes(buf, x.Label(lbl), actor)
	}
}

// NewSystem exposes the algorithm's transition system (canonical encoded
// global states) for direct exploration — used by the determinism tests and
// the exploration benchmarks.
func NewSystem(alg Algorithm) core.System[string] {
	return system{alg: alg}
}

// Explore builds the reachable state graph of the algorithm.
func Explore(alg Algorithm, maxStates int) (*core.Graph[state], error) {
	return ExploreWith(alg, core.ExploreOptions{MaxStates: maxStates})
}

// ExploreWith builds the reachable state graph with full exploration
// options (worker count, telemetry).
func ExploreWith(alg Algorithm, opts core.ExploreOptions) (*core.Graph[state], error) {
	g, err := core.Explore[state](system{alg: alg}, opts)
	if err != nil {
		return nil, fmt.Errorf("sharedmem: exploring %s: %w", alg.Name(), err)
	}
	return g, nil
}

// regionsOf returns the region of each process in encoded state s.
func regionsOf(alg Algorithm, s state) []spec.Region {
	n := alg.NumProcs()
	locals, _ := decode(s, n, len(alg.Vars()))
	out := make([]spec.Region, n)
	for p := 0; p < n; p++ {
		out[p] = alg.Region(p, locals[p])
	}
	return out
}

func countRegion(rs []spec.Region, want spec.Region) int {
	c := 0
	for _, r := range rs {
		if r == want {
			c++
		}
	}
	return c
}

// MutexReport is the verdict of CheckMutex on one algorithm.
type MutexReport struct {
	Algorithm string
	// States and Edges size the explored graph.
	States int
	Edges  int
	// Exclusion is the maximum number of simultaneously-critical
	// processes allowed (1 for mutual exclusion, k for k-exclusion).
	Exclusion int
	// MutualExclusion: never more than Exclusion processes critical.
	MutualExclusion bool
	// Progress: someone trying with no one critical leads to someone
	// critical, under weak fairness.
	Progress bool
	// LockoutFree: for every p, p trying leads to p critical, under weak
	// fairness.
	LockoutFree bool
	// LockoutVictim is a process that can starve, when LockoutFree is
	// false.
	LockoutVictim int
	// ValuesUsed[i] is the number of distinct values variable i actually
	// takes over all reachable states — the quantity bounded from below
	// by the §2.1 pigeonhole arguments.
	ValuesUsed []int
	// CombinedValues is the number of distinct shared-memory contents
	// (joint variable valuations) observed.
	CombinedValues int
	// MutexWitness is a trace violating exclusion, when applicable.
	MutexWitness core.Trace
	// LockoutCycle is the fair starvation cycle, when applicable.
	LockoutCycle core.Trace
}

// CheckMutexOptions configures CheckMutex.
type CheckMutexOptions struct {
	// Exclusion is the allowed number of simultaneous critical processes
	// (default 1).
	Exclusion int
	// MaxStates bounds exploration (default core.DefaultMaxStates).
	MaxStates int
	// Parallelism is the exploration worker count (0 = GOMAXPROCS,
	// 1 = sequential); the graph — and so the verdict — is identical
	// either way.
	Parallelism int
	// Stats, when non-nil, receives the exploration telemetry.
	Stats *engine.Stats
	// Sink, when non-nil, streams the exploration's telemetry events —
	// see obs.Sink.
	Sink obs.Sink
	// SnapshotEvery is the timer-driven snapshot period (only meaningful
	// with Sink; zero = engine.DefaultSnapshotEvery, negative = barrier
	// events only).
	SnapshotEvery time.Duration
	// Store selects the visited-set backend — see store.Config. A lossy
	// backend (bitstate) undercounts reachable states, so the report's
	// universally-quantified verdicts become "no violation found"; check
	// Stats.Lossy.
	Store store.Config
	// Sched selects the exploration scheduler ("barrier" or "steal";
	// "" = barrier) — see core.ExploreOptions.Sched. The report is
	// identical either way.
	Sched string
}

// CheckMutex model-checks the resource-allocation correctness conditions
// of §2.1 against alg and measures its shared-memory value usage.
func CheckMutex(alg Algorithm, opts CheckMutexOptions) (MutexReport, error) {
	excl := opts.Exclusion
	if excl <= 0 {
		excl = 1
	}
	rep := MutexReport{Algorithm: alg.Name(), Exclusion: excl, LockoutVictim: -1}
	g, err := ExploreWith(alg, core.ExploreOptions{
		MaxStates: opts.MaxStates, Parallelism: opts.Parallelism, Stats: opts.Stats,
		Sink: opts.Sink, SnapshotEvery: opts.SnapshotEvery, Store: opts.Store,
		Sched: opts.Sched,
	})
	if err != nil {
		return rep, err
	}
	rep.States = g.Len()
	rep.Edges = g.NumEdges()

	// Mutual (k-)exclusion invariant.
	_, witness, ok := g.CheckInvariant(func(s state) bool {
		return countRegion(regionsOf(alg, s), spec.Critical) <= excl
	})
	rep.MutualExclusion = ok
	if !ok {
		rep.MutexWitness = witness
	}

	n := alg.NumProcs()
	// Progress.
	prog := g.CheckLeadsTo(
		func(s state) bool {
			rs := regionsOf(alg, s)
			return countRegion(rs, spec.Trying) > 0 && countRegion(rs, spec.Critical) == 0
		},
		func(s state) bool {
			return countRegion(regionsOf(alg, s), spec.Critical) > 0
		},
		core.WeakFairness, n)
	rep.Progress = prog.Holds

	// Lockout-freedom, per process.
	rep.LockoutFree = true
	for p := 0; p < n; p++ {
		res := g.CheckLeadsTo(
			func(s state) bool { return regionsOf(alg, s)[p] == spec.Trying },
			func(s state) bool { return regionsOf(alg, s)[p] == spec.Critical },
			core.WeakFairness, n)
		if !res.Holds {
			rep.LockoutFree = false
			rep.LockoutVictim = p
			rep.LockoutCycle = res.Cycle
			break
		}
	}

	// Value usage per variable and combined.
	vs := alg.Vars()
	seen := make([]map[int]bool, len(vs))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	joint := make(map[string]bool)
	for i := 0; i < g.Len(); i++ {
		s := g.State(i)
		_, vars := decode(s, n, len(vs))
		for vi, val := range vars {
			seen[vi][val] = true
		}
		joint[s[n:]] = true
	}
	rep.ValuesUsed = make([]int, len(vs))
	for i := range seen {
		rep.ValuesUsed[i] = len(seen[i])
	}
	rep.CombinedValues = len(joint)
	return rep, nil
}

// ErrNotRW is returned by CheckRWDiscipline for algorithms whose accesses
// to RW variables are neither pure reads nor blind writes.
var ErrNotRW = errors.New("sharedmem: access violates read/write discipline")

// CheckRWDiscipline verifies that every access the algorithm can make to a
// variable declared RW is either a pure read (stored value always equals
// the old value) or a blind write (stored value and successor local state
// are independent of the old value). This is the formal content of the
// Burns–Lynch observation that "a writing process obliterates any
// information previously in the variable".
func CheckRWDiscipline(alg Algorithm, maxLocalStates int) error {
	vs := alg.Vars()
	for p := 0; p < alg.NumProcs(); p++ {
		for l := 0; l < maxLocalStates; l++ {
			v := alg.Access(p, l)
			if v < 0 || v >= len(vs) || vs[v].Kind != RW {
				continue
			}
			dom := vs[v].Values
			isRead := true
			isWrite := true
			l0, v0 := alg.Step(p, l, 0)
			for val := 0; val < dom; val++ {
				nl, nv := alg.Step(p, l, val)
				if nv != val {
					isRead = false
				}
				if nl != l0 || nv != v0 {
					isWrite = false
				}
			}
			if !isRead && !isWrite {
				return fmt.Errorf("%w: process %d local state %d on variable %d", ErrNotRW, p, l, v)
			}
		}
	}
	return nil
}

// bypassState augments a global state with per-process saturating bypass
// counters for bounded-bypass checking.
type bypassSystem struct {
	inner system
	bound int
}

var _ core.System[state] = bypassSystem{}

func (b bypassSystem) Init() []state {
	base := b.inner.Init()
	n := b.inner.alg.NumProcs()
	out := make([]state, len(base))
	for i, s := range base {
		out[i] = s + string(make([]byte, n))
	}
	return out
}

func (b bypassSystem) Steps(s state) []core.Step[state] {
	alg := b.inner.alg
	n := alg.NumProcs()
	nv := len(alg.Vars())
	baseLen := n + nv
	base := s[:baseLen]
	counters := []byte(s[baseLen:])
	out := b.inner.Steps(base)
	for i, st := range out {
		preRegions := regionsOf(alg, base)
		postRegions := regionsOf(alg, st.To)
		next := make([]byte, n)
		copy(next, counters)
		// Identify a process that just entered the critical region.
		entered := -1
		for p := 0; p < n; p++ {
			if preRegions[p] != spec.Critical && postRegions[p] == spec.Critical {
				entered = p
				break
			}
		}
		for p := 0; p < n; p++ {
			switch {
			case postRegions[p] == spec.Critical || postRegions[p] == spec.Remainder:
				next[p] = 0
			case entered >= 0 && entered != p && preRegions[p] == spec.Trying && postRegions[p] == spec.Trying:
				if int(next[p]) <= b.bound {
					next[p]++
				}
			}
		}
		out[i] = core.Step[state]{To: st.To + string(next), Label: st.Label, Actor: st.Actor}
	}
	return out
}

// CheckBoundedBypass verifies that while a process is continuously trying,
// no other process enters the critical region more than bound times (the
// "bounded waiting" condition of Burns et al., §2.1). It returns a witness
// trace on violation.
func CheckBoundedBypass(alg Algorithm, bound, maxStates int) (ok bool, witness core.Trace, err error) {
	sys := bypassSystem{inner: system{alg: alg}, bound: bound}
	g, err := core.Explore[state](sys, core.ExploreOptions{MaxStates: maxStates})
	if err != nil {
		return false, nil, fmt.Errorf("sharedmem: bounded-bypass exploration of %s: %w", alg.Name(), err)
	}
	n := alg.NumProcs()
	nv := len(alg.Vars())
	_, witness, ok = g.CheckInvariant(func(s state) bool {
		counters := s[n+nv:]
		for p := 0; p < n; p++ {
			if int(counters[p]) > bound {
				return false
			}
		}
		return true
	})
	return ok, witness, nil
}
