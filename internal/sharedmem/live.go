package sharedmem

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/spec"
)

// LiveMutex runs a shared-memory mutual-exclusion algorithm as a real
// concurrent system under internal/runtime: one goroutine per process,
// genuinely shared variable cells, the adversary choosing which process
// takes its next atomic access (and optionally delaying or
// crash-starving processes — a crash inside the critical region is the
// classic fail-stop hazard of §2.1).
//
// Atomicity of the model's accesses is enforced by MaxBatch() = 1: the
// scheduler dispatches one access at a time, so each live step reads and
// writes the shared cells race-free, with the channel handoffs carrying
// the happens-before edges. Each process keeps one persistent "step"
// local action armed — the model's "every process always has exactly one
// enabled transition".
type LiveMutex struct {
	alg Algorithm

	vars      []int
	locals    []int
	critCount int
	maxCrit   int
}

// NewLiveMutex wraps an algorithm as a live runtime workload.
func NewLiveMutex(alg Algorithm) *LiveMutex { return &LiveMutex{alg: alg} }

// MaxCritical reports the largest number of simultaneously-critical
// processes observed by the last run.
func (l *LiveMutex) MaxCritical() int { return l.maxCrit }

// Name implements runtime.Workload.
func (l *LiveMutex) Name() string { return "mutex-" + l.alg.Name() }

// NumProcs implements runtime.Workload.
func (l *LiveMutex) NumProcs() int { return l.alg.NumProcs() }

// Supports implements runtime.Workload: delay and crash. No message
// faults — there are no messages, only shared-variable accesses.
func (l *LiveMutex) Supports() runtime.Faults {
	return runtime.FaultDelay | runtime.FaultCrash
}

// MaxBatch implements runtime.BatchLimiter: shared-variable accesses are
// atomic, so at most one process steps per scheduler batch.
func (l *LiveMutex) MaxBatch() int { return 1 }

// Spawn implements runtime.Workload: reset the shared cells to the
// algorithm's initial valuation.
func (l *LiveMutex) Spawn(int64) []runtime.Proc {
	n := l.alg.NumProcs()
	vs := l.alg.Vars()
	l.vars = make([]int, len(vs))
	for i, v := range vs {
		l.vars[i] = v.Init
	}
	l.locals = make([]int, n)
	for p := 0; p < n; p++ {
		l.locals[p] = l.alg.InitLocal(p)
	}
	l.critCount = 0
	for p := 0; p < n; p++ {
		if l.alg.Region(p, l.locals[p]) == spec.Critical {
			l.critCount++
		}
	}
	l.maxCrit = l.critCount
	out := make([]runtime.Proc, n)
	for p := 0; p < n; p++ {
		out[p] = &liveMutexProc{w: l, p: p}
	}
	return out
}

// Model implements runtime.Workload: the explored algorithm graph for
// small process counts, nil at live-only scale.
func (l *LiveMutex) Model() (*core.Graph[string], error) {
	if l.alg.NumProcs() > 6 {
		return nil, nil
	}
	return ExploreWith(l.alg, core.ExploreOptions{})
}

// Check implements runtime.Workload: the live run's exclusion verdict
// must agree with the model's invariant (a live violation of an
// invariant the model proves is a refinement bug), and the live final
// configuration must be exactly the model state the trace leads to (the
// encoding is label-deterministic, so there is exactly one).
func (l *LiveMutex) Check(_ *runtime.Result, g *core.Graph[string], ends []int) error {
	if l.maxCrit > 1 {
		_, _, modelSafe := g.CheckInvariant(func(s state) bool {
			return countRegion(regionsOf(l.alg, s), spec.Critical) <= 1
		})
		if modelSafe {
			return fmt.Errorf("sharedmem: live run saw %d simultaneously-critical processes but the model proves mutual exclusion", l.maxCrit)
		}
	}
	final := encode(l.locals, l.vars)
	for _, e := range ends {
		if g.State(e) != final {
			return fmt.Errorf("sharedmem: live final state %q but consistent model state %d is %q", final, e, g.State(e))
		}
	}
	return nil
}

// liveMutexProc is one live process: its entire behavior is the armed
// "step" action performing the algorithm's next atomic access.
type liveMutexProc struct {
	w *LiveMutex
	p int
}

// Start implements runtime.Proc.
func (pr *liveMutexProc) Start() []runtime.Action {
	return []runtime.Action{{Kind: runtime.ActLocal, To: pr.p, Key: "step"}}
}

// Handle implements runtime.Proc: one atomic access, with the model's
// label and actor attribution (remainder steps are environment requests),
// then re-arm.
func (pr *liveMutexProc) Handle(runtime.Action) runtime.Outcome {
	w, p := pr.w, pr.p
	alg := w.alg
	l := w.locals[p]
	v := alg.Access(p, l)
	old := w.vars[v]
	nl, nv := alg.Step(p, l, old)

	label := fmt.Sprintf("p%d: v%d %d->%d", p, v, old, nv)
	actor := p
	if alg.Region(p, l) == spec.Remainder {
		label = fmt.Sprintf("p%d requests", p)
		actor = core.EnvironmentActor
	}

	preCrit := alg.Region(p, l) == spec.Critical
	postCrit := alg.Region(p, nl) == spec.Critical
	w.locals[p] = nl
	w.vars[v] = nv
	if postCrit && !preCrit {
		w.critCount++
		if w.critCount > w.maxCrit {
			w.maxCrit = w.critCount
		}
	} else if preCrit && !postCrit {
		w.critCount--
	}

	return runtime.Outcome{
		Label:   label,
		Actor:   actor,
		Effects: []runtime.Action{{Kind: runtime.ActLocal, To: p, Key: "step"}},
	}
}
