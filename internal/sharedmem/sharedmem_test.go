package sharedmem

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

func mustCheck(t *testing.T, alg Algorithm, opts CheckMutexOptions) MutexReport {
	t.Helper()
	rep, err := CheckMutex(alg, opts)
	if err != nil {
		t.Fatalf("CheckMutex(%s): %v", alg.Name(), err)
	}
	return rep
}

func TestTASLockSatisfiesExclusionAndProgressButNotFairness(t *testing.T) {
	for _, n := range []int{2, 3} {
		rep := mustCheck(t, NewTASLock(n), CheckMutexOptions{})
		if !rep.MutualExclusion {
			t.Errorf("n=%d: mutual exclusion should hold; witness:\n%s", n, rep.MutexWitness)
		}
		if !rep.Progress {
			t.Errorf("n=%d: progress should hold", n)
		}
		if rep.LockoutFree {
			t.Errorf("n=%d: the 2-valued semaphore should admit lockout (§2.1)", n)
		}
		if rep.LockoutVictim < 0 {
			t.Errorf("n=%d: expected a named lockout victim", n)
		}
		if len(rep.LockoutCycle) == 0 {
			t.Errorf("n=%d: expected a starvation cycle witness", n)
		}
		if got := rep.ValuesUsed[0]; got != 2 {
			t.Errorf("n=%d: ValuesUsed = %d, want 2", n, got)
		}
	}
}

func TestPetersonIsAFairTwoProcessMutex(t *testing.T) {
	alg := NewPeterson2()
	rep := mustCheck(t, alg, CheckMutexOptions{})
	if !rep.MutualExclusion {
		t.Fatalf("mutual exclusion should hold; witness:\n%s", rep.MutexWitness)
	}
	if !rep.Progress {
		t.Fatal("progress should hold")
	}
	if !rep.LockoutFree {
		t.Fatalf("Peterson should be lockout-free; victim p%d cycle:\n%s",
			rep.LockoutVictim, rep.LockoutCycle)
	}
}

func TestPetersonRWDiscipline(t *testing.T) {
	if err := CheckRWDiscipline(NewPeterson2(), 6); err != nil {
		t.Fatalf("Peterson should obey RW discipline: %v", err)
	}
}

func TestPetersonBoundedBypass(t *testing.T) {
	ok, _, err := CheckBoundedBypass(NewPeterson2(), 1, 0)
	if err != nil {
		t.Fatalf("CheckBoundedBypass: %v", err)
	}
	if !ok {
		t.Fatal("Peterson should have bypass bound 1")
	}
	ok, witness, err := CheckBoundedBypass(NewPeterson2(), 0, 0)
	if err != nil {
		t.Fatalf("CheckBoundedBypass: %v", err)
	}
	if ok {
		t.Fatal("bypass bound 0 should be violated (the rival can overtake once)")
	}
	if len(witness) == 0 {
		t.Fatal("expected a bypass witness trace")
	}
}

func TestDijkstraExclusionAndProgress(t *testing.T) {
	for _, n := range []int{2, 3} {
		rep := mustCheck(t, NewDijkstra(n), CheckMutexOptions{})
		if !rep.MutualExclusion {
			t.Errorf("n=%d: mutual exclusion should hold; witness:\n%s", n, rep.MutexWitness)
		}
		if !rep.Progress {
			t.Errorf("n=%d: progress should hold", n)
		}
		if rep.LockoutFree {
			t.Errorf("n=%d: Dijkstra's algorithm should admit lockout", n)
		}
	}
}

func TestDijkstraRWDiscipline(t *testing.T) {
	d := NewDijkstra(3)
	if err := CheckRWDiscipline(d, 30); err != nil {
		t.Fatalf("Dijkstra should obey RW discipline: %v", err)
	}
}

func TestTicketLockIsFIFOFair(t *testing.T) {
	for _, n := range []int{2, 3} {
		alg := NewTicketLock(n)
		rep := mustCheck(t, alg, CheckMutexOptions{})
		if !rep.MutualExclusion {
			t.Errorf("n=%d: mutual exclusion should hold; witness:\n%s", n, rep.MutexWitness)
		}
		if !rep.Progress {
			t.Errorf("n=%d: progress should hold", n)
		}
		if !rep.LockoutFree {
			t.Errorf("n=%d: ticket lock should be lockout-free; victim p%d cycle:\n%s",
				n, rep.LockoutVictim, rep.LockoutCycle)
		}
		// Each counter takes all n+1 values.
		for vi, used := range rep.ValuesUsed {
			if used != n+1 {
				t.Errorf("n=%d: variable %d uses %d values, want %d", n, vi, used, n+1)
			}
		}
	}
}

func TestTicketLockBoundedBypass(t *testing.T) {
	// FIFO: while p is trying, each other process can enter at most once
	// (those already ahead in the queue), so bypass is bounded by n-1.
	n := 2
	ok, witness, err := CheckBoundedBypass(NewTicketLock(n), n-1, 0)
	if err != nil {
		t.Fatalf("CheckBoundedBypass: %v", err)
	}
	if !ok {
		t.Fatalf("ticket lock bypass should be bounded by %d; witness:\n%s", n-1, witness)
	}
}

func TestCountingSemaphoreKExclusion(t *testing.T) {
	alg := NewCountingSemaphore(3, 2)
	// 2-exclusion holds.
	rep := mustCheck(t, alg, CheckMutexOptions{Exclusion: 2})
	if !rep.MutualExclusion {
		t.Fatalf("2-exclusion should hold; witness:\n%s", rep.MutexWitness)
	}
	if !rep.Progress {
		t.Fatal("progress should hold")
	}
	// Plain mutual exclusion (k=1) is violated: two permits exist.
	rep = mustCheck(t, alg, CheckMutexOptions{Exclusion: 1})
	if rep.MutualExclusion {
		t.Fatal("1-exclusion should be violated by a 2-permit semaphore")
	}
	if len(rep.MutexWitness) == 0 {
		t.Fatal("expected an exclusion-violation witness")
	}
}

func TestCombinedValuesGrowQuadraticallyForTicketLock(t *testing.T) {
	// The FIFO ticket lock uses two mod-(n+1) counters: the number of
	// distinct joint shared-memory contents grows like Θ(n²) — the shape
	// of the §2.1 queue-simulation lower bound.
	var counts []int
	for _, n := range []int{2, 3, 4} {
		rep := mustCheck(t, NewTicketLock(n), CheckMutexOptions{})
		counts = append(counts, rep.CombinedValues)
		want := (n + 1) * (n + 1)
		if rep.CombinedValues > want {
			t.Errorf("n=%d: combined values %d exceeds the (n+1)^2 = %d possible", n, rep.CombinedValues, want)
		}
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("combined value counts should grow with n: %v", counts)
	}
}

func TestCheckRWDisciplineRejectsHiddenRMW(t *testing.T) {
	// A "register" whose access increments the value is not RW.
	bad := &TableAlgorithm{
		AlgName:  "hidden-rmw",
		Procs:    1,
		VarSpecs: []VarSpec{{Kind: RW, Init: 0, Values: 2}},
		Initial:  []int{0},
		Regions:  [][]spec.Region{{spec.Trying, spec.Critical}},
		Accesses: [][]int{{0, 0}},
		Table: [][][]Cell{{
			{{NextLocal: 1, NewVal: 1}, {NextLocal: 0, NewVal: 0}}, // val-dependent write
			{{NextLocal: 1, NewVal: 0}, {NextLocal: 1, NewVal: 1}},
		}},
	}
	err := CheckRWDiscipline(bad, 1)
	if !errors.Is(err, ErrNotRW) {
		t.Fatalf("err = %v, want ErrNotRW", err)
	}
}

func TestVarKindString(t *testing.T) {
	if RW.String() != "rw" || RMW.String() != "rmw" {
		t.Fatal("unexpected VarKind strings")
	}
	if VarKind(7).String() != "VarKind(7)" {
		t.Fatal("unexpected fallthrough VarKind string")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	locals := []int{3, 1, 4}
	vars := []int{1, 5}
	s := encode(locals, vars)
	gotL, gotV := decode(s, 3, 2)
	for i := range locals {
		if gotL[i] != locals[i] {
			t.Fatalf("locals round-trip mismatch at %d", i)
		}
	}
	for i := range vars {
		if gotV[i] != vars[i] {
			t.Fatalf("vars round-trip mismatch at %d", i)
		}
	}
}

func TestTableAlgorithmImplementsAlgorithm(t *testing.T) {
	ta := &TableAlgorithm{
		AlgName:  "tiny",
		Procs:    1,
		VarSpecs: []VarSpec{{Kind: RMW, Init: 0, Values: 2}},
		Initial:  []int{0},
		Regions:  [][]spec.Region{{spec.Remainder, spec.Critical}},
		Accesses: [][]int{{0, 0}},
		Table: [][][]Cell{{
			{{NextLocal: 1, NewVal: 1}, {NextLocal: 1, NewVal: 1}},
			{{NextLocal: 0, NewVal: 0}, {NextLocal: 0, NewVal: 0}},
		}},
	}
	if ta.Name() != "tiny" || ta.NumProcs() != 1 {
		t.Fatal("accessors broken")
	}
	nl, nv := ta.Step(0, 0, 1)
	if nl != 1 || nv != 1 {
		t.Fatalf("Step = (%d,%d), want (1,1)", nl, nv)
	}
	if ta.Region(0, 1) != spec.Critical || ta.Access(0, 0) != 0 {
		t.Fatal("region/access broken")
	}
}

func TestHandoffLockIsFairWithOneVariable(t *testing.T) {
	alg := NewHandoffLock()
	rep := mustCheck(t, alg, CheckMutexOptions{})
	if !rep.MutualExclusion {
		t.Fatalf("mutual exclusion should hold; witness:\n%s", rep.MutexWitness)
	}
	if !rep.Progress {
		t.Fatal("progress should hold")
	}
	if !rep.LockoutFree {
		t.Fatalf("handoff lock should be lockout-free; victim p%d cycle:\n%s",
			rep.LockoutVictim, rep.LockoutCycle)
	}
	if got := rep.ValuesUsed[0]; got != 4 {
		t.Fatalf("ValuesUsed = %d, want all 4", got)
	}
}

func TestHandoffLockFairnessSensitivity(t *testing.T) {
	// §2.1: "the extended results turned out to be very sensitive to
	// assumptions about fairness". The handoff lock is lockout-free under
	// weak fairness, yet it does NOT have bounded bypass: a trier that has
	// requested but not yet taken a step can be overtaken arbitrarily
	// often, because registration costs a step. Lockout-freedom and
	// bounded waiting are genuinely different conditions.
	for _, bound := range []int{0, 1, 2, 3} {
		ok, witness, err := CheckBoundedBypass(NewHandoffLock(), bound, 0)
		if err != nil {
			t.Fatalf("CheckBoundedBypass(%d): %v", bound, err)
		}
		if ok {
			t.Fatalf("bypass bound %d should be violated for the handoff lock", bound)
		}
		if len(witness) == 0 {
			t.Fatalf("bound %d: expected a witness", bound)
		}
	}
}

func TestTournamentLockIsAFairFourProcessMutex(t *testing.T) {
	alg := NewTournament4()
	rep := mustCheck(t, alg, CheckMutexOptions{})
	if !rep.MutualExclusion {
		t.Fatalf("mutual exclusion should hold; witness:\n%s", rep.MutexWitness)
	}
	if !rep.Progress {
		t.Fatal("progress should hold")
	}
	if !rep.LockoutFree {
		t.Fatalf("tournament should be lockout-free; victim p%d cycle:\n%s",
			rep.LockoutVictim, rep.LockoutCycle)
	}
}

func TestTournamentRWDiscipline(t *testing.T) {
	if err := CheckRWDiscipline(NewTournament4(), 12); err != nil {
		t.Fatalf("tournament should obey RW discipline: %v", err)
	}
}
