package sharedmem

import "repro/internal/spec"

// tournamentLock is the 4-process tournament built from three Peterson
// instances (§2.1's n-process generalization by composition): processes
// 0,1 compete on semifinal lock A, processes 2,3 on semifinal lock B, and
// the two winners compete on the final lock C. It inherits Peterson's
// lockout-freedom level by level, and exercises the checker on a
// composed, multi-variable algorithm (9 RW registers).
type tournamentLock struct{}

// NewTournament4 returns the 4-process tournament lock.
func NewTournament4() Algorithm { return tournamentLock{} }

// Variable layout: semifinal A: 0,1 flags (procs 0,1), 2 turn;
// semifinal B: 3,4 flags (procs 2,3), 5 turn;
// final C: 6,7 flags (sides 0,1), 8 turn.
const (
	tnSemiFlagBase = 0 // + role for lock A, +3 for lock B
	tnFinalFlag0   = 6
	tnFinalTurn    = 8
)

// Program counters.
const (
	tnRemainder = 0
	tnSemiFlag  = 1 // write own semifinal flag
	tnSemiTurn  = 2 // write semifinal turn
	tnSemiRFlag = 3 // read rival's semifinal flag
	tnSemiRTurn = 4 // read semifinal turn
	tnFinFlag   = 5 // write own final flag
	tnFinTurn   = 6 // write final turn
	tnFinRFlag  = 7 // read rival side's final flag
	tnFinRTurn  = 8 // read final turn
	tnCritical  = 9
	tnRelFinal  = 10 // clear final flag
	tnRelSemi   = 11 // clear semifinal flag
)

func (tournamentLock) Name() string  { return "tournament-4(peterson^2)" }
func (tournamentLock) NumProcs() int { return 4 }

func (tournamentLock) Vars() []VarSpec {
	vs := make([]VarSpec, 9)
	for i := range vs {
		vs[i] = VarSpec{Kind: RW, Init: 0, Values: 2}
	}
	return vs
}

func (tournamentLock) InitLocal(int) int { return tnRemainder }

func (tournamentLock) Region(_, local int) spec.Region {
	switch local {
	case tnRemainder:
		return spec.Remainder
	case tnCritical:
		return spec.Critical
	case tnRelFinal, tnRelSemi:
		return spec.Exit
	default:
		return spec.Trying
	}
}

// semiVars returns (ownFlag, rivalFlag, turn) for p's semifinal.
func semiVars(p int) (own, rival, turn int) {
	base := 0
	if p >= 2 {
		base = 3
	}
	role := p % 2
	return base + role, base + 1 - role, base + 2
}

// finalVars returns (ownFlag, rivalFlag, turn) for p's side of the final.
func finalVars(p int) (own, rival, turn int) {
	side := p / 2
	return tnFinalFlag0 + side, tnFinalFlag0 + 1 - side, tnFinalTurn
}

func (tournamentLock) Access(p, local int) int {
	so, sr, st := semiVars(p)
	fo, fr, ft := finalVars(p)
	switch local {
	case tnRemainder, tnSemiFlag, tnRelSemi:
		return so
	case tnSemiTurn, tnSemiRTurn:
		return st
	case tnSemiRFlag:
		return sr
	case tnFinFlag, tnRelFinal:
		return fo
	case tnFinTurn, tnFinRTurn:
		return ft
	case tnFinRFlag:
		return fr
	default: // critical: dummy read of own semifinal flag
		return so
	}
}

func (tournamentLock) Step(p, local, val int) (int, int) {
	semiRole := p % 2
	finalSide := p / 2
	switch local {
	case tnRemainder: // request: write semifinal flag
		return tnSemiTurn, 1
	case tnSemiFlag:
		return tnSemiTurn, 1
	case tnSemiTurn: // turn := rival's role
		return tnSemiRFlag, 1 - semiRole
	case tnSemiRFlag:
		if val == 0 {
			return tnFinFlag, val
		}
		return tnSemiRTurn, val
	case tnSemiRTurn:
		if val == semiRole {
			return tnFinFlag, val
		}
		return tnSemiRFlag, val
	case tnFinFlag:
		return tnFinTurn, 1
	case tnFinTurn:
		return tnFinRFlag, 1 - finalSide
	case tnFinRFlag:
		if val == 0 {
			return tnCritical, val
		}
		return tnFinRTurn, val
	case tnFinRTurn:
		if val == finalSide {
			return tnCritical, val
		}
		return tnFinRFlag, val
	case tnCritical:
		return tnRelFinal, val
	case tnRelFinal:
		return tnRelSemi, 0
	default: // tnRelSemi
		return tnRemainder, 0
	}
}
