package sharedmem

import (
	"fmt"

	"repro/internal/spec"
)

// tasLock is the 2-valued test-and-set semaphore: the "plenty if there are
// no fairness requirements" algorithm of §2.1. It satisfies mutual
// exclusion and progress but admits lockout.
type tasLock struct {
	n int
}

// NewTASLock returns the n-process 2-valued test-and-set lock.
func NewTASLock(n int) Algorithm { return tasLock{n: n} }

// Local states: 0 remainder, 1 trying (spin on TAS), 2 critical, 3 exit.
const (
	tasRemainder = 0
	tasTrying    = 1
	tasCritical  = 2
	tasExit      = 3
)

func (t tasLock) Name() string      { return fmt.Sprintf("tas-semaphore(n=%d)", t.n) }
func (t tasLock) NumProcs() int     { return t.n }
func (t tasLock) Vars() []VarSpec   { return []VarSpec{{Kind: RMW, Init: 0, Values: 2}} }
func (t tasLock) InitLocal(int) int { return tasRemainder }

func (t tasLock) Region(_, local int) spec.Region {
	switch local {
	case tasRemainder:
		return spec.Remainder
	case tasTrying:
		return spec.Trying
	case tasCritical:
		return spec.Critical
	default:
		return spec.Exit
	}
}

func (t tasLock) Access(_, _ int) int { return 0 }

func (t tasLock) Step(_, local, val int) (int, int) {
	switch local {
	case tasRemainder:
		return tasTrying, val // request: observe only
	case tasTrying:
		if val == 0 {
			return tasCritical, 1
		}
		return tasTrying, val
	case tasCritical:
		return tasExit, val
	default: // exit: release
		return tasRemainder, 0
	}
}

// peterson2 is Peterson's two-process mutual exclusion algorithm over
// read/write registers: two intent flags plus a turn variable. It is the
// canonical witness that n separate RW variables (here 3 ≥ n+1 for n=2)
// suffice where a single one cannot (Burns–Lynch, §2.1).
type peterson2 struct{}

// NewPeterson2 returns Peterson's 2-process RW mutex.
func NewPeterson2() Algorithm { return peterson2{} }

// Local states for peterson2.
const (
	petRemainder = 0 // request: write flag[p]=1
	petSetTurn   = 1 // write turn = other
	petCheckFlag = 2 // read flag[other]
	petCheckTurn = 3 // read turn
	petCritical  = 4
	petExit      = 5 // write flag[p]=0
)

// Variable layout: 0 = flag[0], 1 = flag[1], 2 = turn.
func (peterson2) Name() string  { return "peterson-2" }
func (peterson2) NumProcs() int { return 2 }
func (peterson2) Vars() []VarSpec {
	return []VarSpec{
		{Kind: RW, Init: 0, Values: 2},
		{Kind: RW, Init: 0, Values: 2},
		{Kind: RW, Init: 0, Values: 2},
	}
}
func (peterson2) InitLocal(int) int { return petRemainder }

func (peterson2) Region(_, local int) spec.Region {
	switch local {
	case petRemainder:
		return spec.Remainder
	case petCritical:
		return spec.Critical
	case petExit:
		return spec.Exit
	default:
		return spec.Trying
	}
}

func (peterson2) Access(p, local int) int {
	switch local {
	case petRemainder, petExit:
		return p // flag[p]
	case petSetTurn, petCheckTurn:
		return 2 // turn
	case petCheckFlag:
		return 1 - p // flag[other]
	default: // critical: dummy read of own flag
		return p
	}
}

func (peterson2) Step(p, local, val int) (int, int) {
	switch local {
	case petRemainder:
		return petSetTurn, 1 // flag[p] := 1
	case petSetTurn:
		return petCheckFlag, 1 - p // turn := other
	case petCheckFlag:
		if val == 0 {
			return petCritical, val
		}
		return petCheckTurn, val
	case petCheckTurn:
		if val == p {
			return petCritical, val
		}
		return petCheckFlag, val
	case petCritical:
		return petExit, val
	default: // exit
		return petRemainder, 0 // flag[p] := 0
	}
}

// dijkstra is Dijkstra's original n-process mutual exclusion algorithm
// [38]: flags b[i], c[i] and a favored-process pointer k, all read/write.
// It guarantees mutual exclusion and progress but not lockout-freedom —
// the opening example of §2.1's "each paper seemed to solve a slightly
// different problem".
type dijkstra struct {
	n int
}

// NewDijkstra returns Dijkstra's n-process RW mutex.
func NewDijkstra(n int) Algorithm { return dijkstra{n: n} }

// Program counters for dijkstra. Local state = pc*n + aux, where aux
// holds the remembered value of k (pc 2,3) or the scan index j (pc 6).
const (
	djRemainder = 0 // request: write b[p]=0
	djReadK     = 1 // read k
	djSetC1     = 2 // write c[p]=1 (aux = remembered k)
	djReadBK    = 3 // read b[aux]
	djGrabK     = 4 // write k=p
	djSetC0     = 5 // write c[p]=0
	djScan      = 6 // read c[aux], scanning aux over all j
	djCritical  = 7
	djExitC     = 8 // write c[p]=1
	djExitB     = 9 // write b[p]=1
)

// Variable layout: 0 = k; 1..n = b[i]; n+1..2n = c[i].
func (d dijkstra) Name() string  { return fmt.Sprintf("dijkstra(n=%d)", d.n) }
func (d dijkstra) NumProcs() int { return d.n }

func (d dijkstra) Vars() []VarSpec {
	vs := make([]VarSpec, 0, 2*d.n+1)
	vs = append(vs, VarSpec{Kind: RW, Init: 0, Values: d.n})
	for i := 0; i < 2*d.n; i++ {
		vs = append(vs, VarSpec{Kind: RW, Init: 1, Values: 2})
	}
	return vs
}

func (d dijkstra) InitLocal(int) int { return d.enc(djRemainder, 0) }

func (d dijkstra) enc(pc, aux int) int { return pc*d.n + aux }

func (d dijkstra) dec(local int) (pc, aux int) { return local / d.n, local % d.n }

func (d dijkstra) Region(_, local int) spec.Region {
	pc, _ := d.dec(local)
	switch pc {
	case djRemainder:
		return spec.Remainder
	case djCritical:
		return spec.Critical
	case djExitC, djExitB:
		return spec.Exit
	default:
		return spec.Trying
	}
}

func (d dijkstra) Access(p, local int) int {
	pc, aux := d.dec(local)
	switch pc {
	case djRemainder, djExitB:
		return 1 + p // b[p]
	case djReadK, djGrabK, djCritical:
		return 0 // k
	case djSetC1, djSetC0, djExitC:
		return 1 + d.n + p // c[p]
	case djReadBK:
		return 1 + aux // b[remembered k]
	default: // djScan
		return 1 + d.n + aux // c[j]
	}
}

func (d dijkstra) Step(p, local, val int) (int, int) {
	pc, aux := d.dec(local)
	switch pc {
	case djRemainder:
		return d.enc(djReadK, 0), 0 // b[p] := 0 (requesting)
	case djReadK:
		if val == p {
			return d.enc(djSetC0, 0), val
		}
		return d.enc(djSetC1, val), val // remember k
	case djSetC1:
		return d.enc(djReadBK, aux), 1 // c[p] := 1
	case djReadBK:
		if val == 1 { // favored process idle: contend for k
			return d.enc(djGrabK, 0), val
		}
		return d.enc(djReadK, 0), val
	case djGrabK:
		return d.enc(djReadK, 0), p // k := p
	case djSetC0:
		return d.enc(djScan, 0), 0 // c[p] := 0, start scan at j=0
	case djScan:
		next := aux + 1
		if aux == p || val == 1 { // self, or j not in second stage
			if next == d.n {
				return d.enc(djCritical, 0), val
			}
			return d.enc(djScan, next), val
		}
		return d.enc(djReadK, 0), val // conflict: retry
	case djCritical:
		return d.enc(djExitC, 0), val // dummy read of k
	case djExitC:
		return d.enc(djExitB, 0), 1 // c[p] := 1
	default: // djExitB
		return d.enc(djRemainder, 0), 1 // b[p] := 1
	}
}

// ticketLock is the FIFO ticket lock over two read-modify-write counters
// modulo n+1: "next ticket" and "now serving". It achieves bounded bypass
// 0 (FIFO), demonstrating that Θ(n) values per variable (Θ(n²) combined
// shared-memory contents — compare the §2.1 queue-simulation lower bound)
// buy the strongest fairness.
type ticketLock struct {
	n int
}

// NewTicketLock returns the n-process FIFO ticket lock.
func NewTicketLock(n int) Algorithm { return ticketLock{n: n} }

// Local states: 0 remainder; 1+t waiting with ticket t (t in [0,n]);
// n+2 critical; n+3 exit.
func (t ticketLock) Name() string  { return fmt.Sprintf("ticket-lock(n=%d)", t.n) }
func (t ticketLock) NumProcs() int { return t.n }

func (t ticketLock) Vars() []VarSpec {
	return []VarSpec{
		{Kind: RMW, Init: 0, Values: t.n + 1}, // next ticket
		{Kind: RMW, Init: 0, Values: t.n + 1}, // now serving
	}
}

func (t ticketLock) InitLocal(int) int { return 0 }

func (t ticketLock) Region(_, local int) spec.Region {
	switch {
	case local == 0:
		return spec.Remainder
	case local == t.n+2:
		return spec.Critical
	case local == t.n+3:
		return spec.Exit
	default:
		return spec.Trying
	}
}

func (t ticketLock) Access(_, local int) int {
	switch {
	case local == 0 || local == t.n+3:
		if local == 0 {
			return 0 // take a ticket from "next"
		}
		return 1 // advance "serving"
	case local == t.n+2:
		return 0 // dummy read in critical
	default:
		return 1 // poll "serving"
	}
}

func (t ticketLock) Step(_, local, val int) (int, int) {
	switch {
	case local == 0: // take ticket
		return 1 + val, (val + 1) % (t.n + 1)
	case local == t.n+2: // critical -> exit
		return t.n + 3, val
	case local == t.n+3: // exit: serving++
		return 0, (val + 1) % (t.n + 1)
	default: // waiting with ticket local-1
		if val == local-1 {
			return t.n + 2, val
		}
		return local, val
	}
}

// countingSemaphore implements k-exclusion (§2.1, [57],[53]) with a single
// RMW permit counter: at most k processes are simultaneously critical.
type countingSemaphore struct {
	n, k int
}

// NewCountingSemaphore returns the n-process k-exclusion permit counter.
func NewCountingSemaphore(n, k int) Algorithm { return countingSemaphore{n: n, k: k} }

// Local states: 0 remainder, 1 trying, 2 critical, 3 exit.
func (c countingSemaphore) Name() string {
	return fmt.Sprintf("counting-semaphore(n=%d,k=%d)", c.n, c.k)
}
func (c countingSemaphore) NumProcs() int { return c.n }
func (c countingSemaphore) Vars() []VarSpec {
	return []VarSpec{{Kind: RMW, Init: c.k, Values: c.k + 1}}
}
func (c countingSemaphore) InitLocal(int) int { return 0 }

func (c countingSemaphore) Region(_, local int) spec.Region {
	switch local {
	case 0:
		return spec.Remainder
	case 1:
		return spec.Trying
	case 2:
		return spec.Critical
	default:
		return spec.Exit
	}
}

func (c countingSemaphore) Access(_, _ int) int { return 0 }

func (c countingSemaphore) Step(_, local, val int) (int, int) {
	switch local {
	case 0:
		return 1, val
	case 1:
		if val > 0 {
			return 2, val - 1
		}
		return 1, val
	case 2:
		return 3, val
	default:
		return 0, val + 1
	}
}

// TableAlgorithm is an explicit-transition-table protocol, the raw
// material of the synth package's exhaustive searches and a convenient
// way to hard-code small synthesized algorithms.
type TableAlgorithm struct {
	// AlgName identifies the algorithm.
	AlgName string
	// Procs is the number of processes.
	Procs int
	// VarSpecs describes the shared variables.
	VarSpecs []VarSpec
	// Initial[p] is process p's initial local state.
	Initial []int
	// Regions[p][local] classifies local states.
	Regions [][]spec.Region
	// Accesses[p][local] is the variable touched from each local state.
	Accesses [][]int
	// Table[p][local][val] is the (nextLocal, newVal) pair.
	Table [][][]Cell
}

// Cell is one entry of a TableAlgorithm transition table.
type Cell struct {
	NextLocal int
	NewVal    int
}

var _ Algorithm = (*TableAlgorithm)(nil)

// Name implements Algorithm.
func (t *TableAlgorithm) Name() string { return t.AlgName }

// NumProcs implements Algorithm.
func (t *TableAlgorithm) NumProcs() int { return t.Procs }

// Vars implements Algorithm.
func (t *TableAlgorithm) Vars() []VarSpec { return t.VarSpecs }

// InitLocal implements Algorithm.
func (t *TableAlgorithm) InitLocal(p int) int { return t.Initial[p] }

// Region implements Algorithm.
func (t *TableAlgorithm) Region(p, local int) spec.Region { return t.Regions[p][local] }

// Access implements Algorithm.
func (t *TableAlgorithm) Access(p, local int) int { return t.Accesses[p][local] }

// Step implements Algorithm.
func (t *TableAlgorithm) Step(p, local, val int) (int, int) {
	c := t.Table[p][local][val]
	return c.NextLocal, c.NewVal
}
