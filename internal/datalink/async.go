package datalink

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// AsyncABP recasts the alternating-bit protocol as an asynchronous state
// space: instead of RunABP's scripted single schedule, the adversary (the
// scheduler) freely interleaves the sender, the receiver, and a lossy
// channel in each direction. Exploring the induced core.System covers every
// loss/retransmission/delivery schedule at once, which is the exhaustive
// form of the §2.5 claim that ABP delivers each message exactly once, in
// order, over channels that lose but do not duplicate or reorder.
//
// Unlike the FLP and ring spaces — leveled DAGs where every event consumes
// a unit of a finite measure — this space has real cycles: send data →
// drop data → send data retransmits forever. That makes it the workload
// that exercises the exploration engine's C3 cycle proviso: an ample set
// must not be deferrable around a retransmission loop, or the deferred
// direction's packet would be starved out of the reduced graph.
//
// A configuration packs into 7 bytes:
//
//	[ next, senderBit, expected, delivered, dataSlot, owed, ackSlot ]
//
// next is the index of the message being sent (next == Messages is the
// terminal "all acknowledged" state), senderBit/expected are the
// alternating bits, delivered counts messages the receiver handed to its
// client, dataSlot is the in-flight data packet (slotEmpty or bit<<4|index),
// owed is the ack the receiver owes (slotEmpty or a bit), and ackSlot is
// the in-flight ack. Each channel holds at most one packet — the sender
// retransmits only into an empty channel — so the space is finite.
type AsyncABP struct {
	// Messages is the number of messages to transfer (payloads are their
	// indices); at most 16 so a data packet packs into one byte.
	Messages int
}

// NewAsyncABP validates the message count and returns the system factory.
func NewAsyncABP(messages int) (*AsyncABP, error) {
	if messages < 1 || messages > 16 {
		return nil, fmt.Errorf("datalink: AsyncABP needs 1..16 messages, got %d", messages)
	}
	return &AsyncABP{Messages: messages}, nil
}

const slotEmpty = 0xFF

// Byte offsets into the packed configuration.
const (
	offNext = iota
	offSenderBit
	offExpected
	offDelivered
	offDataSlot
	offOwed
	offAckSlot
	stateLen
)

// Action kinds, recovered from labels by kindOf. The sender owns the data
// direction (actor 0), the receiver the ack direction (actor 1), and the
// channel adversary drops (core.EnvironmentActor).
const (
	kindSendData = iota
	kindDeliverData
	kindDropData
	kindSendAck
	kindDeliverAck
	kindDropAck
	numKinds
)

var kindLabels = [numKinds]string{
	"send data", "deliver data", "drop data",
	"send ack", "deliver ack", "drop ack",
}

// kindOf maps an action label back to its kind; -1 for foreign labels.
func kindOf(label string) int {
	for k, prefix := range kindLabels {
		if len(label) >= len(prefix) && label[:len(prefix)] == prefix {
			return k
		}
	}
	return -1
}

// System returns the exploration system over packed configurations.
func (a *AsyncABP) System() core.System[string] { return asyncABPSystem{a} }

type asyncABPSystem struct{ a *AsyncABP }

func (s asyncABPSystem) Init() []string {
	st := make([]byte, stateLen)
	st[offDataSlot], st[offOwed], st[offAckSlot] = slotEmpty, slotEmpty, slotEmpty
	return []string{string(st)}
}

// Done reports whether every message has been acknowledged in state st.
func (a *AsyncABP) Done(st string) bool { return int(st[offNext]) == a.Messages }

// Delivered reports how many messages the receiver has handed up in st.
func (a *AsyncABP) Delivered(st string) int { return int(st[offDelivered]) }

func (s asyncABPSystem) Steps(st string) []core.Step[string] {
	if s.a.Done(st) {
		return nil // all acknowledged: terminal
	}
	var out []core.Step[string]
	emit := func(next []byte, kind, actor int, detail string) {
		out = append(out, core.Step[string]{
			To:    string(next),
			Label: kindLabels[kind] + detail,
			Actor: actor,
		})
	}
	if st[offDataSlot] == slotEmpty {
		// The sender (re)transmits its current packet into the empty
		// channel. This is the retransmission cycle: drop data returns here.
		next := []byte(st)
		next[offDataSlot] = st[offSenderBit]<<4 | st[offNext]
		emit(next, kindSendData, 0, fmt.Sprintf(" b%d m%d", st[offSenderBit], st[offNext]))
	} else {
		pkt := st[offDataSlot]
		bit, idx := pkt>>4, pkt&0x0F
		next := []byte(st)
		next[offDataSlot] = slotEmpty
		if bit == st[offExpected] {
			next[offDelivered]++
			next[offExpected] ^= 1
		}
		// The receiver acks every packet's bit, fresh or stale; a still
		// unsent older ack is overwritten (equivalent to the channel
		// losing it).
		next[offOwed] = bit
		emit(next, kindDeliverData, 1, fmt.Sprintf(" b%d m%d", bit, idx))

		drop := []byte(st)
		drop[offDataSlot] = slotEmpty
		emit(drop, kindDropData, core.EnvironmentActor, "")
	}
	if st[offOwed] != slotEmpty && st[offAckSlot] == slotEmpty {
		next := []byte(st)
		next[offAckSlot] = st[offOwed]
		next[offOwed] = slotEmpty
		emit(next, kindSendAck, 1, fmt.Sprintf(" b%d", st[offOwed]))
	}
	if st[offAckSlot] != slotEmpty {
		bit := st[offAckSlot]
		next := []byte(st)
		next[offAckSlot] = slotEmpty
		if bit == st[offSenderBit] {
			next[offNext]++
			next[offSenderBit] ^= 1
		}
		emit(next, kindDeliverAck, 0, fmt.Sprintf(" b%d", bit))

		drop := []byte(st)
		drop[offAckSlot] = slotEmpty
		emit(drop, kindDropAck, core.EnvironmentActor, "")
	}
	return out
}

// Independence returns the ample-set independence relation of the async
// ABP space (engine.Independence, for core.ExploreOptions.Independent).
// Each action kind reads and writes a fixed set of configuration fields,
// so dependence is a relation on kinds: two co-enabled actions conflict
// exactly when their field footprints intersect.
//
//   - deliver data ↔ drop data and deliver ack ↔ drop ack race for the
//     packet in the slot: each disables the other.
//   - deliver data ↔ send ack both touch the owed-ack slot (delivery
//     overwrites the owed bit).
//   - send data ↔ deliver ack both touch next/senderBit (the ack delivery
//     advances the packet the sender would transmit).
//   - an ack delivery that acknowledges the final message makes the state
//     terminal, disabling every other action, so it is dependent on
//     everything (the analogue of AsyncLCR's electing deliveries).
//
// Every other pair touches disjoint fields and commutes — in particular
// the two channel directions interleave freely, which is where the
// reduction comes from. Both deliver kinds change the analyzer-visible
// progress counters (delivered, next), so CheckDelivery passes
// ProgressVisibility alongside this relation to keep them out of proper
// ample sets (the C2 obligation); the send/drop cycles are then the C3
// proviso's problem, and the proviso is exactly what stops the reduced
// graph from spinning a retransmission loop while an ack waits forever.
func (a *AsyncABP) Independence() engine.Independence[string] {
	var dep [numKinds][numKinds]bool
	conflict := func(x, y int) { dep[x][y], dep[y][x] = true, true }
	conflict(kindDeliverData, kindDropData)
	conflict(kindDeliverAck, kindDropAck)
	conflict(kindDeliverData, kindSendAck)
	conflict(kindSendData, kindDeliverAck)
	return func(_ string, x, y engine.Action[string]) bool {
		if a.Done(x.To) || a.Done(y.To) {
			return false // completing the transfer disables everything
		}
		kx, ky := kindOf(x.Label), kindOf(y.Label)
		if kx < 0 || ky < 0 || kx == ky {
			return false
		}
		return !dep[kx][ky]
	}
}

// ProgressVisibility returns the visibility predicate paired with
// Independence (engine.Visibility, for core.ExploreOptions.Visible): an
// action is visible iff it changes a progress counter CheckDelivery reads —
// the receiver's delivered count or the sender's acknowledged count.
func (a *AsyncABP) ProgressVisibility() engine.Visibility[string] {
	return func(s string, x engine.Action[string]) bool {
		return x.To[offDelivered] != s[offDelivered] || x.To[offNext] != s[offNext]
	}
}

// CheckDelivery explores every loss/retransmission schedule and verifies
// the §2.5 delivery properties on each reachable configuration: the
// receiver never duplicates, drops, or reorders (delivered always equals
// the sender's acknowledged count or leads it by exactly the packet in
// flight), and some schedule completes the transfer with every message
// delivered exactly once. It returns the explored graph for inspection.
func (a *AsyncABP) CheckDelivery(opts core.ExploreOptions) (*core.Graph[string], error) {
	g, err := core.Explore[string](a.System(), opts)
	if err != nil {
		return nil, err
	}
	completed := false
	for i := 0; i < g.Len(); i++ {
		st := g.State(i)
		next, delivered := int(st[offNext]), int(st[offDelivered])
		if delivered != next && delivered != next+1 {
			return nil, fmt.Errorf("datalink: schedule reached delivered=%d with %d acknowledged: duplicate or lost delivery", delivered, next)
		}
		if a.Done(st) {
			if delivered != a.Messages {
				return nil, fmt.Errorf("datalink: transfer completed with %d of %d messages delivered", delivered, a.Messages)
			}
			completed = true
		}
	}
	if !completed {
		return nil, fmt.Errorf("%w: no schedule completes the %d-message transfer", ErrStalled, a.Messages)
	}
	return g, nil
}
