package datalink

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestNewAsyncABPValidates(t *testing.T) {
	for _, bad := range []int{0, -1, 17} {
		if _, err := NewAsyncABP(bad); err == nil {
			t.Fatalf("NewAsyncABP(%d) accepted", bad)
		}
	}
	if _, err := NewAsyncABP(16); err != nil {
		t.Fatalf("NewAsyncABP(16): %v", err)
	}
}

// TestAsyncABPExhaustiveDelivery is the exhaustive counterpart of the
// scripted RunABP tests: over every loss/retransmission/delivery schedule
// the receiver never duplicates or reorders, and the transfer completes.
func TestAsyncABPExhaustiveDelivery(t *testing.T) {
	a, err := NewAsyncABP(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := a.CheckDelivery(core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < g.Len(); i++ {
		if a.Done(g.State(i)) {
			done++
			if a.Delivered(g.State(i)) != 3 {
				t.Fatalf("terminal state delivered %d of 3", a.Delivered(g.State(i)))
			}
		}
	}
	if done == 0 {
		t.Fatal("no terminal state reached")
	}
}

// TestAsyncABPHasRetransmissionCycles pins the structural property that
// makes this space the engine's cycle-proviso workload: some reachable
// state can return to itself (send data followed by drop data).
func TestAsyncABPHasRetransmissionCycles(t *testing.T) {
	a, err := NewAsyncABP(2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Explore[string](a.System(), core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys := a.System()
	for i := 0; i < g.Len(); i++ {
		s := g.State(i)
		for _, step := range sys.Steps(s) {
			if !strings.HasPrefix(step.Label, "send data") {
				continue
			}
			for _, back := range sys.Steps(step.To) {
				if strings.HasPrefix(back.Label, "drop data") && back.To == s {
					return // found a send/drop self-loop
				}
			}
		}
	}
	t.Fatal("no send data -> drop data cycle found")
}

// TestAsyncABPIndependenceContract spot-checks the relation's fixed rules:
// cross-direction pairs commute, slot races and shared-field pairs do not,
// and transfer-completing acks are dependent on everything.
func TestAsyncABPIndependenceContract(t *testing.T) {
	a, err := NewAsyncABP(2)
	if err != nil {
		t.Fatal(err)
	}
	indep := a.Independence()
	act := func(label string, done bool) engine.Action[string] {
		st := make([]byte, stateLen)
		st[offDataSlot], st[offOwed], st[offAckSlot] = slotEmpty, slotEmpty, slotEmpty
		if done {
			st[offNext] = 2
		}
		return engine.Action[string]{To: string(st), Label: label}
	}
	cases := []struct {
		x, y string
		want bool
	}{
		{"send data b0 m0", "send ack b1", true},
		{"send data b0 m0", "drop ack", true},
		{"deliver data b0 m0", "deliver ack b0", true},
		{"deliver data b0 m0", "drop data", false},
		{"deliver ack b0", "drop ack", false},
		{"deliver data b0 m0", "send ack b0", false},
		{"send data b0 m0", "deliver ack b0", false},
	}
	for _, c := range cases {
		if got := indep("", act(c.x, false), act(c.y, false)); got != c.want {
			t.Errorf("indep(%q, %q) = %v, want %v", c.x, c.y, got, c.want)
		}
		if got := indep("", act(c.y, false), act(c.x, false)); got != c.want {
			t.Errorf("indep(%q, %q) = %v, want %v (symmetry)", c.y, c.x, got, c.want)
		}
	}
	if indep("", act("deliver ack b0", true), act("deliver data b0 m1", false)) {
		t.Error("transfer-completing ack declared independent")
	}
}
