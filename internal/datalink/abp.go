// Package datalink implements the communication-protocol results of §2.5:
// the alternating-bit protocol, which achieves reliable FIFO message
// delivery over channels that lose packets; the demonstrations of the
// Lynch–Mansour–Fekete impossibility results [78] — a crash that wipes
// receiver memory forces duplicate delivery, and with bounded headers a
// channel that can replay ("steal") old packets forces incorrect delivery;
// and the Two Generals chain argument of [61].
package datalink

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrStalled is returned when a run exhausts its step budget before the
// sender finishes.
var ErrStalled = errors.New("datalink: protocol stalled within step budget")

// Packet is a data packet on the wire: a one-bit header plus payload —
// the bounded-header regime of [78].
type Packet struct {
	// Bit is the alternating header bit.
	Bit int
	// Payload is the carried message.
	Payload string
}

// Script controls the channel adversary per step.
type Script struct {
	// DropData reports whether the data packet sent at this step is lost.
	DropData func(step int) bool
	// DropAck reports whether the ack sent at this step is lost.
	DropAck func(step int) bool
	// CrashReceiverAt wipes the receiver's memory (its expected-bit
	// state) at the start of the given step; 0 means never. This is the
	// "crashes that cause a loss of memory" case of [78].
	CrashReceiverAt int
	// ReplayAt injects, at the start of the given step, a copy of the
	// ReplayIndex-th data packet ever sent (0-based) — the channel
	// "steals" a packet and delivers it later, the message-stealing move
	// of [78]. Zero-valued means no replay.
	ReplayAt    int
	ReplayIndex int
}

// never is the default drop function.
func never(int) bool { return false }

// Result reports an alternating-bit run.
type Result struct {
	// Delivered is the sequence of payloads the receiver handed to its
	// client, in order.
	Delivered []string
	// DataPackets and AckPackets count transmissions (including
	// retransmissions).
	DataPackets, AckPackets int
	// Steps is the number of simulation steps consumed.
	Steps int
}

// RunABP drives the alternating-bit protocol until all messages are
// acknowledged or the step budget runs out. Each step the sender
// (re)transmits its current packet; the channel applies the script; the
// receiver acks every packet it gets and delivers fresh ones.
func RunABP(msgs []string, script Script, maxSteps int) (Result, error) {
	if script.DropData == nil {
		script.DropData = never
	}
	if script.DropAck == nil {
		script.DropAck = never
	}
	res := Result{}
	senderBit := 0
	next := 0 // index of the message being sent
	expected := 0
	var history []Packet // every data packet ever sent, for replays
	for step := 1; next < len(msgs); step++ {
		res.Steps = step
		if step > maxSteps {
			return res, fmt.Errorf("%w: %d messages left", ErrStalled, len(msgs)-next)
		}
		if script.CrashReceiverAt == step {
			expected = 0 // memory wiped: the receiver restarts fresh
		}
		if script.ReplayAt == step && script.ReplayIndex < len(history) {
			// The channel delivers a stolen copy of an old packet.
			p := history[script.ReplayIndex]
			if p.Bit == expected {
				res.Delivered = append(res.Delivered, p.Payload)
				expected = 1 - expected
			}
			// The duplicate's ack (if any) is absorbed by the script's
			// ack handling below only for regular packets; replay acks
			// are dropped to keep the demonstration minimal.
		}
		// Sender transmits the current packet.
		pkt := Packet{Bit: senderBit, Payload: msgs[next]}
		history = append(history, pkt)
		res.DataPackets++
		ackBit := -1
		if !script.DropData(step) {
			if pkt.Bit == expected {
				res.Delivered = append(res.Delivered, pkt.Payload)
				expected = 1 - expected
			}
			// The receiver acks the packet's bit either way.
			res.AckPackets++
			if !script.DropAck(step) {
				ackBit = pkt.Bit
			}
		}
		if ackBit == senderBit {
			next++
			senderBit = 1 - senderBit
		}
	}
	return res, nil
}

// RunSeqNo drives the unbounded-header counterpart of the alternating-bit
// protocol: packets carry full sequence numbers instead of one bit. The
// same channel adversary that defeats ABP by replaying a stolen packet
// (TestMessageStealingForcesPhantomDelivery) is harmless here — the stale
// sequence number is simply rejected — which is exactly the [78] dichotomy:
// with only boundedly many headers reliable delivery is impossible, with
// unbounded headers it is routine. HeaderBytes reports the cumulative
// header cost, the quantity whose necessary growth [99] studies.
func RunSeqNo(msgs []string, script Script, maxSteps int) (Result, int, error) {
	if script.DropData == nil {
		script.DropData = never
	}
	if script.DropAck == nil {
		script.DropAck = never
	}
	res := Result{}
	headerBytes := 0
	next := 0
	expected := 0
	type seqPacket struct {
		seq     int
		payload string
	}
	var history []seqPacket
	for step := 1; next < len(msgs); step++ {
		res.Steps = step
		if step > maxSteps {
			return res, headerBytes, fmt.Errorf("%w: %d messages left", ErrStalled, len(msgs)-next)
		}
		if script.CrashReceiverAt == step {
			expected = 0
		}
		if script.ReplayAt == step && script.ReplayIndex < len(history) {
			p := history[script.ReplayIndex]
			if p.seq == expected { // stale sequence numbers never match
				res.Delivered = append(res.Delivered, p.payload)
				expected++
			}
		}
		pkt := seqPacket{seq: next, payload: msgs[next]}
		history = append(history, pkt)
		res.DataPackets++
		headerBytes += len(strconv.Itoa(pkt.seq))
		ackSeq := -1
		if !script.DropData(step) {
			if pkt.seq == expected {
				res.Delivered = append(res.Delivered, pkt.payload)
				expected++
			}
			res.AckPackets++
			if !script.DropAck(step) {
				ackSeq = pkt.seq
			}
		}
		if ackSeq == next {
			next++
		}
	}
	return res, headerBytes, nil
}
