package datalink

import "fmt"

// This file mechanizes the Two Generals chain argument ([61], §2.2.4):
// two parties communicating over an unreliable channel cannot reach
// consensus on whether to attack. Starting from the execution in which
// every message is delivered, remove the last delivery; the resulting
// execution looks identical to one of the generals, who therefore decides
// the same — and agreement drags the other general along. Iterating down
// to the empty execution forces the full-communication decision to equal
// the no-communication decision, which validity forbids. For any concrete
// protocol, ChainCheck walks the chain and reports the execution where the
// protocol actually breaks.

// GeneralProtocol is a deterministic two-party protocol run in lockstep
// rounds; the channel may drop any message.
type GeneralProtocol interface {
	// Name identifies the protocol.
	Name() string
	// Rounds is the number of communication rounds.
	Rounds() int
	// Init returns a general's initial state; input 1 means "wants to
	// attack". General 0 is A, general 1 is B.
	Init(general, input int) string
	// Send returns the message the general sends in round r ("" = none).
	Send(general int, state string, r int) string
	// Receive folds the (possibly lost) peer message into the state.
	Receive(general int, state string, r int, msg string, delivered bool) string
	// Decide returns 1 to attack, 0 to hold.
	Decide(general int, state string) int
}

// pattern[r][g] records whether general g's round-r message is delivered.
type pattern [][2]bool

func fullPattern(rounds int) pattern {
	p := make(pattern, rounds)
	for i := range p {
		p[i] = [2]bool{true, true}
	}
	return p
}

// run executes the protocol under a delivery pattern and returns both
// final states.
func run(p GeneralProtocol, inputs [2]int, del pattern) [2]string {
	states := [2]string{p.Init(0, inputs[0]), p.Init(1, inputs[1])}
	for r := 1; r <= p.Rounds(); r++ {
		msgs := [2]string{
			p.Send(0, states[0], r),
			p.Send(1, states[1], r),
		}
		for g := 0; g < 2; g++ {
			peer := 1 - g
			delivered := del[r-1][peer] && msgs[peer] != ""
			payload := ""
			if delivered {
				payload = msgs[peer]
			}
			states[g] = p.Receive(g, states[g], r, payload, delivered)
		}
	}
	return states
}

// ChainReport is the outcome of ChainCheck.
type ChainReport struct {
	// Protocol names the checked protocol.
	Protocol string
	// ChainLength is the number of executions in the chain.
	ChainLength int
	// DisagreementAt is the chain index of an execution where the two
	// generals decide differently (-1 if none).
	DisagreementAt int
	// ValidityBroken is set when the protocol attacks with no
	// communication, or refuses to attack with full communication.
	ValidityBroken string
	// Horn summarizes which requirement failed.
	Horn string
}

// ChainCheck walks the Two Generals chain for the protocol with both
// inputs "attack": executions e_0 (all delivered), e_1, ..., e_k (nothing
// delivered), each obtained by dropping the last remaining delivery. It
// verifies the indistinguishability invariant mechanically and reports
// where the protocol violates the problem statement. The theorem
// guarantees some violation for every protocol.
func ChainCheck(p GeneralProtocol, inputsA, inputsB int) (ChainReport, error) {
	rounds := p.Rounds()
	rep := ChainReport{Protocol: p.Name(), DisagreementAt: -1}
	// Build the chain by clearing deliveries from the last round
	// backwards, one at a time (B's delivery then A's in each round).
	var chain []pattern
	cur := fullPattern(rounds)
	chain = append(chain, clonePattern(cur))
	for r := rounds - 1; r >= 0; r-- {
		for g := 1; g >= 0; g-- {
			cur[r][g] = false
			chain = append(chain, clonePattern(cur))
		}
	}
	rep.ChainLength = len(chain)
	inputs := [2]int{inputsA, inputsB}

	decisions := make([][2]int, len(chain))
	for i, pat := range chain {
		states := run(p, inputs, pat)
		decisions[i] = [2]int{p.Decide(0, states[0]), p.Decide(1, states[1])}
		if decisions[i][0] != decisions[i][1] {
			rep.DisagreementAt = i
		}
	}
	// Validity horns: with both inputs attack and everything delivered
	// the generals should attack; with no communication they must not
	// (the no-communication run is indistinguishable from one where the
	// peer never wanted to attack).
	if decisions[0][0] != 1 || decisions[0][1] != 1 {
		rep.ValidityBroken = "no attack despite full communication and willing generals"
	}
	last := decisions[len(decisions)-1]
	if last[0] == 1 && last[1] == 1 {
		rep.ValidityBroken = "attack with no communication at all"
	}
	switch {
	case rep.DisagreementAt >= 0:
		rep.Horn = fmt.Sprintf("disagreement at chain index %d", rep.DisagreementAt)
	case rep.ValidityBroken != "":
		rep.Horn = "validity: " + rep.ValidityBroken
	default:
		return rep, fmt.Errorf("datalink: protocol %s survived the chain — contradicts the Two Generals theorem", p.Name())
	}
	return rep, nil
}

func clonePattern(p pattern) pattern {
	out := make(pattern, len(p))
	copy(out, p)
	return out
}

// Handshake is the natural k-round confirmation protocol: A proposes, B
// confirms, A confirms the confirmation, and so on; a general attacks iff
// it saw the full handshake depth it expected. The chain argument finds
// the crack: dropping the final message yields one general who saw
// everything it needed and one who did not.
type Handshake struct {
	// Depth is the number of rounds of confirmations.
	Depth int
}

var _ GeneralProtocol = (*Handshake)(nil)

// Name implements GeneralProtocol.
func (h *Handshake) Name() string { return fmt.Sprintf("handshake(depth=%d)", h.Depth) }

// Rounds implements GeneralProtocol.
func (h *Handshake) Rounds() int { return h.Depth }

// Init implements GeneralProtocol. State: input digit + count of received
// confirmations.
func (h *Handshake) Init(_, input int) string { return fmt.Sprintf("%d:0", input) }

func parseState(s string) (input, got int) {
	fmt.Sscanf(s, "%d:%d", &input, &got)
	return input, got
}

// Send implements GeneralProtocol: keep confirming while willing.
func (h *Handshake) Send(_ int, state string, _ int) string {
	input, got := parseState(state)
	if input != 1 {
		return ""
	}
	return fmt.Sprintf("confirm%d", got)
}

// Receive implements GeneralProtocol.
func (h *Handshake) Receive(_ int, state string, _ int, _ string, delivered bool) string {
	input, got := parseState(state)
	if delivered {
		got++
	}
	return fmt.Sprintf("%d:%d", input, got)
}

// Decide implements GeneralProtocol: attack iff willing and every round's
// confirmation arrived.
func (h *Handshake) Decide(_ int, state string) int {
	input, got := parseState(state)
	if input == 1 && got >= h.Depth {
		return 1
	}
	return 0
}

// Optimist attacks whenever it is willing and saw at least one message —
// the other extreme, broken even earlier in the chain.
type Optimist struct {
	// R is the number of rounds to run.
	R int
}

var _ GeneralProtocol = (*Optimist)(nil)

// Name implements GeneralProtocol.
func (o *Optimist) Name() string { return "optimist" }

// Rounds implements GeneralProtocol.
func (o *Optimist) Rounds() int { return o.R }

// Init implements GeneralProtocol.
func (o *Optimist) Init(_, input int) string { return fmt.Sprintf("%d:0", input) }

// Send implements GeneralProtocol.
func (o *Optimist) Send(_ int, state string, _ int) string {
	input, _ := parseState(state)
	if input != 1 {
		return ""
	}
	return "hi"
}

// Receive implements GeneralProtocol.
func (o *Optimist) Receive(_ int, state string, _ int, _ string, delivered bool) string {
	input, got := parseState(state)
	if delivered {
		got++
	}
	return fmt.Sprintf("%d:%d", input, got)
}

// Decide implements GeneralProtocol.
func (o *Optimist) Decide(_ int, state string) int {
	input, got := parseState(state)
	if input == 1 && got > 0 {
		return 1
	}
	return 0
}
