package datalink

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestABPLosslessDeliversInOrder(t *testing.T) {
	msgs := []string{"a", "b", "c"}
	res, err := RunABP(msgs, Script{}, 100)
	if err != nil {
		t.Fatalf("RunABP: %v", err)
	}
	if len(res.Delivered) != 3 {
		t.Fatalf("delivered %v", res.Delivered)
	}
	for i, m := range msgs {
		if res.Delivered[i] != m {
			t.Fatalf("delivered %v, want %v", res.Delivered, msgs)
		}
	}
	if res.DataPackets != 3 {
		t.Fatalf("data packets = %d, want 3 (no retransmissions)", res.DataPackets)
	}
}

func TestABPSurvivesLoss(t *testing.T) {
	msgs := []string{"m1", "m2", "m3", "m4"}
	// Drop every third data packet and every fourth ack.
	script := Script{
		DropData: func(step int) bool { return step%3 == 0 },
		DropAck:  func(step int) bool { return step%4 == 0 },
	}
	res, err := RunABP(msgs, script, 1000)
	if err != nil {
		t.Fatalf("RunABP: %v", err)
	}
	if len(res.Delivered) != len(msgs) {
		t.Fatalf("delivered %d messages, want %d", len(res.Delivered), len(msgs))
	}
	for i, m := range msgs {
		if res.Delivered[i] != m {
			t.Fatalf("delivered %v, want %v", res.Delivered, msgs)
		}
	}
	if res.DataPackets <= len(msgs) {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestABPRandomLossProperty(t *testing.T) {
	// Property: under any random loss pattern (with eventual delivery),
	// ABP delivers exactly the sent sequence — the §2.5 positive result.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		msgs := []string{"x", "y", "z"}
		script := Script{
			DropData: func(int) bool { return rng.Intn(3) == 0 },
			DropAck:  func(int) bool { return rng.Intn(3) == 0 },
		}
		res, err := RunABP(msgs, script, 10_000)
		if err != nil {
			return false
		}
		if len(res.Delivered) != len(msgs) {
			return false
		}
		for i := range msgs {
			if res.Delivered[i] != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestABPStallsUnderTotalLoss(t *testing.T) {
	script := Script{DropData: func(int) bool { return true }}
	_, err := RunABP([]string{"a"}, script, 50)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestReceiverCrashForcesDuplicate is the first [78] impossibility made
// concrete: wiping the receiver's memory (its expected-bit) makes it
// accept a retransmission of an already-delivered message — duplicate
// delivery, for any bounded-state data link protocol.
func TestReceiverCrashForcesDuplicate(t *testing.T) {
	msgs := []string{"pay $100", "pay $200"}
	// Step 1: m1 delivered, ack lost (sender will retransmit m1).
	// Step 2: receiver crashes (expected-bit resets to 0), m1
	// retransmitted with bit 0 — accepted again.
	script := Script{
		DropAck:         func(step int) bool { return step == 1 },
		CrashReceiverAt: 2,
	}
	res, err := RunABP(msgs, script, 100)
	if err != nil {
		t.Fatalf("RunABP: %v", err)
	}
	dup := 0
	for _, d := range res.Delivered {
		if d == "pay $100" {
			dup++
		}
	}
	if dup < 2 {
		t.Fatalf("expected duplicate delivery of m1 after crash; got %v", res.Delivered)
	}
}

// TestMessageStealingForcesPhantomDelivery is the second [78]
// impossibility: with bounded (1-bit) headers over a channel that can
// replay old packets, the receiver accepts a stale packet as a fresh
// message — the channel "steals" a packet and spends it later.
func TestMessageStealingForcesPhantomDelivery(t *testing.T) {
	msgs := []string{"m1", "m2", "m3"}
	// Let m1 (bit 0) and m2 (bit 1) flow normally; at the step where the
	// receiver expects bit 0 again (for m3), replay the very first m1
	// packet: its bit matches and the receiver delivers m1 out of place.
	script := Script{
		ReplayAt:    3,
		ReplayIndex: 0,
	}
	res, err := RunABP(msgs, script, 100)
	if err != nil {
		t.Fatalf("RunABP: %v", err)
	}
	// Delivered sequence should contain m1 twice (once as a phantom).
	count := 0
	for _, d := range res.Delivered {
		if d == "m1" {
			count++
		}
	}
	if count < 2 {
		t.Fatalf("expected the stolen m1 to be delivered again; got %v", res.Delivered)
	}
}

// TestTwoGeneralsChainDefeatsHandshake: E12 — the chain argument finds
// the execution where the k-round handshake protocol breaks.
func TestTwoGeneralsChainDefeatsHandshake(t *testing.T) {
	for _, depth := range []int{1, 2, 4} {
		rep, err := ChainCheck(&Handshake{Depth: depth}, 1, 1)
		if err != nil {
			t.Fatalf("ChainCheck(depth=%d): %v", depth, err)
		}
		if rep.DisagreementAt < 0 && rep.ValidityBroken == "" {
			t.Fatalf("depth=%d: no horn found: %+v", depth, rep)
		}
		if rep.ChainLength != 2*depth+1 {
			t.Fatalf("depth=%d: chain length %d, want %d", depth, rep.ChainLength, 2*depth+1)
		}
	}
}

// TestTwoGeneralsChainDefeatsOptimist: the eager protocol disagrees even
// earlier in the chain.
func TestTwoGeneralsChainDefeatsOptimist(t *testing.T) {
	rep, err := ChainCheck(&Optimist{R: 3}, 1, 1)
	if err != nil {
		t.Fatalf("ChainCheck: %v", err)
	}
	if rep.DisagreementAt < 0 {
		t.Fatalf("optimist should disagree somewhere in the chain: %+v", rep)
	}
}

// TestTwoGeneralsValidityHornForCoward: a protocol that never attacks
// fails validity instead of agreement.
type coward struct{}

func (coward) Name() string                                            { return "coward" }
func (coward) Rounds() int                                             { return 2 }
func (coward) Init(_, input int) string                                { return "x" }
func (coward) Send(int, string, int) string                            { return "m" }
func (coward) Receive(_ int, s string, _ int, _ string, _ bool) string { return s }
func (coward) Decide(int, string) int                                  { return 0 }

func TestTwoGeneralsValidityHornForCoward(t *testing.T) {
	rep, err := ChainCheck(coward{}, 1, 1)
	if err != nil {
		t.Fatalf("ChainCheck: %v", err)
	}
	if rep.ValidityBroken == "" {
		t.Fatalf("coward should break validity: %+v", rep)
	}
}

func TestHandshakeAttacksOnFullCommunication(t *testing.T) {
	h := &Handshake{Depth: 3}
	states := run(h, [2]int{1, 1}, fullPattern(3))
	if h.Decide(0, states[0]) != 1 || h.Decide(1, states[1]) != 1 {
		t.Fatal("handshake should attack under full communication")
	}
	// An unwilling general never attacks and never sends.
	states = run(h, [2]int{1, 0}, fullPattern(3))
	if h.Decide(1, states[1]) != 0 {
		t.Fatal("unwilling general attacked")
	}
	if h.Decide(0, states[0]) != 0 {
		t.Fatal("willing general should hold when the peer is silent")
	}
}

// TestSeqNoSurvivesReplay completes the [78] dichotomy: the replay attack
// that forces ABP into a phantom delivery is rejected by sequence-number
// (unbounded-header) packets.
func TestSeqNoSurvivesReplay(t *testing.T) {
	msgs := []string{"m1", "m2", "m3"}
	script := Script{ReplayAt: 3, ReplayIndex: 0}
	res, headerBytes, err := RunSeqNo(msgs, script, 100)
	if err != nil {
		t.Fatalf("RunSeqNo: %v", err)
	}
	if len(res.Delivered) != 3 {
		t.Fatalf("delivered %v, want exactly the 3 messages", res.Delivered)
	}
	for i, m := range msgs {
		if res.Delivered[i] != m {
			t.Fatalf("delivered %v, want %v", res.Delivered, msgs)
		}
	}
	if headerBytes == 0 {
		t.Fatal("expected nonzero header cost")
	}
	// Contrast: ABP corrupts the delivered sequence under the same script.
	abp, err := RunABP(msgs, script, 100)
	if err != nil {
		t.Fatalf("RunABP: %v", err)
	}
	same := len(abp.Delivered) == len(msgs)
	if same {
		for i := range msgs {
			if abp.Delivered[i] != msgs[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("ABP should have corrupted the sequence under replay; got %v", abp.Delivered)
	}
}

// TestSeqNoHeaderGrowth: header cost grows with the number of messages —
// the unavoidable price [99] quantifies.
func TestSeqNoHeaderGrowth(t *testing.T) {
	short := make([]string, 5)
	long := make([]string, 500)
	for i := range short {
		short[i] = "x"
	}
	for i := range long {
		long[i] = "x"
	}
	_, hShort, err := RunSeqNo(short, Script{}, 10_000)
	if err != nil {
		t.Fatalf("RunSeqNo short: %v", err)
	}
	_, hLong, err := RunSeqNo(long, Script{}, 10_000)
	if err != nil {
		t.Fatalf("RunSeqNo long: %v", err)
	}
	if hLong <= hShort*20 {
		t.Errorf("header bytes %d vs %d: cost must grow with message count", hLong, hShort)
	}
}

func TestSeqNoLossRecovery(t *testing.T) {
	msgs := []string{"a", "b", "c"}
	res, _, err := RunSeqNo(msgs, Script{DropData: func(s int) bool { return s%2 == 0 }}, 1000)
	if err != nil {
		t.Fatalf("RunSeqNo: %v", err)
	}
	if len(res.Delivered) != 3 || res.Delivered[2] != "c" {
		t.Fatalf("delivered %v", res.Delivered)
	}
}
