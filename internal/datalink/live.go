package datalink

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runtime"
)

// LiveABP runs the alternating-bit protocol as two real processes — a
// sender goroutine and a receiver goroutine — over the adversary's lossy
// channels. Its reference model is AsyncABP; the channel-slot discipline
// maps onto live scheduling exactly: the model's "send data is enabled
// iff the data slot is empty" becomes a guarded local retransmission
// action whose guard is "no data packet currently in flight".
//
// The NoRetransmit variant arms the send action only once per message
// instead of persistently: after the adversary drops a packet, the sender
// goes silent. The live run then quiesces while every consistent model
// state still has "send data" enabled, and the refinement oracle's
// quiescence rule rejects it.
type LiveABP struct {
	// Messages is the transfer length, 1..16 (the model's bound).
	Messages     int
	noRetransmit bool

	snd *liveABPSender
	rcv *liveABPReceiver
}

// NewLiveABP validates the message count and returns the live workload.
func NewLiveABP(messages int) (*LiveABP, error) {
	if _, err := NewAsyncABP(messages); err != nil {
		return nil, err
	}
	return &LiveABP{Messages: messages}, nil
}

// NewNoRetransmitABP returns the deliberately broken variant whose sender
// never retransmits a lost packet.
func NewNoRetransmitABP(messages int) (*LiveABP, error) {
	w, err := NewLiveABP(messages)
	if err != nil {
		return nil, err
	}
	w.noRetransmit = true
	return w, nil
}

// abpData and abpAck are the live wire payloads.
type abpData struct{ bit, idx byte }
type abpAck struct{ bit byte }

// Local action keys.
const (
	abpKeySend    = "send"
	abpKeySendAck = "sendack"
)

// Name implements runtime.Workload.
func (l *LiveABP) Name() string {
	if l.noRetransmit {
		return "async-abp-noretransmit"
	}
	return "async-abp"
}

// NumProcs implements runtime.Workload: the sender is process 0, the
// receiver process 1 — matching the model's actor numbering.
func (l *LiveABP) NumProcs() int { return 2 }

// Supports implements runtime.Workload: ABP is the workload built for
// lossy channels, so drop joins delay and crash. No duplication — the
// model's channels hold at most one packet and never duplicate (§2.5).
func (l *LiveABP) Supports() runtime.Faults {
	return runtime.FaultDelay | runtime.FaultDrop | runtime.FaultCrash
}

// Spawn implements runtime.Workload.
func (l *LiveABP) Spawn(int64) []runtime.Proc {
	l.snd = &liveABPSender{w: l}
	l.rcv = &liveABPReceiver{w: l}
	return []runtime.Proc{l.snd, l.rcv}
}

// Model implements runtime.Workload.
func (l *LiveABP) Model() (*core.Graph[string], error) {
	a, err := NewAsyncABP(l.Messages)
	if err != nil {
		return nil, err
	}
	return core.Explore[string](a.System(), core.ExploreOptions{})
}

// Guard implements runtime.Guarded: a (re)transmission is enabled iff its
// channel is empty, i.e. no packet of that direction is pending.
func (l *LiveABP) Guard(a runtime.Action, pending []runtime.Action) bool {
	for _, pa := range pending {
		if pa.Kind != runtime.ActDeliver {
			continue
		}
		switch pa.Payload.(type) {
		case abpData:
			if a.Key == abpKeySend {
				return false
			}
		case abpAck:
			if a.Key == abpKeySendAck {
				return false
			}
		}
	}
	return true
}

// DropLabel implements runtime.Dropper with the model's loss edges.
func (l *LiveABP) DropLabel(a runtime.Action) (string, int) {
	if _, ok := a.Payload.(abpData); ok {
		return kindLabels[kindDropData], core.EnvironmentActor
	}
	return kindLabels[kindDropAck], core.EnvironmentActor
}

// Check implements runtime.Workload: exactly-once in-order delivery live,
// and agreement with every consistent model end state on the delivered
// and acknowledged counts.
func (l *LiveABP) Check(_ *runtime.Result, g *core.Graph[string], ends []int) error {
	for i, idx := range l.rcv.deliveredSeq {
		if int(idx) != i {
			return fmt.Errorf("datalink: live receiver delivered message %d in position %d (duplicate, loss, or reorder)", idx, i)
		}
	}
	if l.snd.done && len(l.rcv.deliveredSeq) != l.Messages {
		return fmt.Errorf("datalink: live transfer completed with %d of %d messages delivered",
			len(l.rcv.deliveredSeq), l.Messages)
	}
	for _, e := range ends {
		st := g.State(e)
		if int(st[offDelivered]) != len(l.rcv.deliveredSeq) {
			return fmt.Errorf("datalink: live delivered %d but consistent model state %d has %d",
				len(l.rcv.deliveredSeq), e, st[offDelivered])
		}
		if int(st[offNext]) != int(l.snd.next) {
			return fmt.Errorf("datalink: live sender acknowledged %d but consistent model state %d has %d",
				l.snd.next, e, st[offNext])
		}
	}
	return nil
}

// liveABPSender is process 0.
type liveABPSender struct {
	w    *LiveABP
	next byte // index of the message being sent
	bit  byte
	done bool
}

// Start implements runtime.Proc: arm the (guarded) transmission action.
func (s *liveABPSender) Start() []runtime.Action {
	return []runtime.Action{{Kind: runtime.ActLocal, To: 0, Key: abpKeySend}}
}

// Handle implements runtime.Proc.
func (s *liveABPSender) Handle(a runtime.Action) runtime.Outcome {
	if a.Kind == runtime.ActLocal {
		if s.done {
			return runtime.Outcome{Actor: 0} // stale timer after completion
		}
		out := runtime.Outcome{
			Label: fmt.Sprintf("%s b%d m%d", kindLabels[kindSendData], s.bit, s.next),
			Actor: 0,
			Effects: []runtime.Action{{
				Kind: runtime.ActDeliver, From: 0, To: 1,
				Payload: abpData{bit: s.bit, idx: s.next},
			}},
		}
		if !s.w.noRetransmit {
			// Persistent retransmission: re-arm, guard-blocked until the
			// packet leaves the channel (delivered or dropped).
			out.Effects = append(out.Effects,
				runtime.Action{Kind: runtime.ActLocal, To: 0, Key: abpKeySend})
		}
		return out
	}
	ack := a.Payload.(abpAck)
	out := runtime.Outcome{
		Label: fmt.Sprintf("%s b%d", kindLabels[kindDeliverAck], ack.bit),
		Actor: 0,
	}
	if ack.bit == s.bit {
		s.next++
		s.bit ^= 1
		if int(s.next) == s.w.Messages {
			s.done = true
			out.Halt, out.Stop = true, true
		} else if s.w.noRetransmit {
			// The buggy sender arms one transmission per acknowledged
			// message instead of keeping the timer armed.
			out.Effects = []runtime.Action{{Kind: runtime.ActLocal, To: 0, Key: abpKeySend}}
		}
	}
	return out
}

// liveABPReceiver is process 1.
type liveABPReceiver struct {
	w            *LiveABP
	expected     byte
	owed         byte
	owedSet      bool
	deliveredSeq []byte // message indexes handed to the client, in order
}

// Start implements runtime.Proc.
func (r *liveABPReceiver) Start() []runtime.Action { return nil }

// Handle implements runtime.Proc.
func (r *liveABPReceiver) Handle(a runtime.Action) runtime.Outcome {
	if a.Kind == runtime.ActLocal {
		if !r.owedSet {
			return runtime.Outcome{Actor: 1} // stale timer: nothing owed
		}
		bit := r.owed
		r.owedSet = false
		return runtime.Outcome{
			Label: fmt.Sprintf("%s b%d", kindLabels[kindSendAck], bit),
			Actor: 1,
			Effects: []runtime.Action{{
				Kind: runtime.ActDeliver, From: 1, To: 0,
				Payload: abpAck{bit: bit},
			}},
		}
	}
	data := a.Payload.(abpData)
	out := runtime.Outcome{
		Label: fmt.Sprintf("%s b%d m%d", kindLabels[kindDeliverData], data.bit, data.idx),
		Actor: 1,
	}
	if data.bit == r.expected {
		r.deliveredSeq = append(r.deliveredSeq, data.idx)
		r.expected ^= 1
	}
	// Ack every packet's bit, fresh or stale; overwriting a still-unsent
	// older owed bit mirrors the model (equivalent to losing that ack).
	r.owed, r.owedSet = data.bit, true
	out.Effects = []runtime.Action{{Kind: runtime.ActLocal, To: 1, Key: abpKeySendAck}}
	return out
}
