package datalink

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/runtime"
)

func TestNewLiveABPValidation(t *testing.T) {
	for _, msgs := range []int{0, -1, 17} {
		if _, err := NewLiveABP(msgs); err == nil {
			t.Errorf("NewLiveABP(%d) accepted an out-of-range transfer length", msgs)
		}
		if _, err := NewNoRetransmitABP(msgs); err == nil {
			t.Errorf("NewNoRetransmitABP(%d) accepted an out-of-range transfer length", msgs)
		}
	}
	w, err := NewLiveABP(2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "async-abp" || w.NumProcs() != 2 {
		t.Fatalf("Name/NumProcs = %q/%d", w.Name(), w.NumProcs())
	}
	if w.Supports()&runtime.FaultDrop == 0 {
		t.Fatal("ABP must support the drop fault; it is the lossy-channel workload")
	}
	b, err := NewNoRetransmitABP(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "async-abp-noretransmit" {
		t.Fatalf("buggy variant Name = %q", b.Name())
	}
}

func TestLiveABPGuardAndDropLabel(t *testing.T) {
	w, _ := NewLiveABP(1)
	send := runtime.Action{Kind: runtime.ActLocal, To: 0, Key: abpKeySend}
	sendAck := runtime.Action{Kind: runtime.ActLocal, To: 1, Key: abpKeySendAck}
	dataInFlight := runtime.Action{Kind: runtime.ActDeliver, From: 0, To: 1, Payload: abpData{}}
	ackInFlight := runtime.Action{Kind: runtime.ActDeliver, From: 1, To: 0, Payload: abpAck{}}

	if w.Guard(send, []runtime.Action{dataInFlight}) {
		t.Error("retransmission enabled while a data packet is in flight")
	}
	if !w.Guard(send, []runtime.Action{ackInFlight}) {
		t.Error("retransmission blocked by an in-flight ack (wrong channel)")
	}
	if w.Guard(sendAck, []runtime.Action{ackInFlight}) {
		t.Error("ack send enabled while an ack is in flight")
	}
	if !w.Guard(sendAck, nil) {
		t.Error("ack send blocked on an empty channel")
	}

	if lbl, actor := w.DropLabel(dataInFlight); lbl != kindLabels[kindDropData] || actor != core.EnvironmentActor {
		t.Errorf("DropLabel(data) = (%q,%d)", lbl, actor)
	}
	if lbl, _ := w.DropLabel(ackInFlight); lbl != kindLabels[kindDropAck] {
		t.Errorf("DropLabel(ack) = %q", lbl)
	}
}

// TestLiveABPRefines runs the live protocol under a lossy adversary and
// replays the trace into the explored model.
func TestLiveABPRefines(t *testing.T) {
	w, err := NewLiveABP(2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Model()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		res, err := runtime.Run(w, runtime.Options{Seed: seed, Drop: 0.3, Delay: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := runtime.Refine(w, res, g); err != nil {
			t.Fatalf("seed %d: refinement failed: %v", seed, err)
		}
	}
}

// TestNoRetransmitABPStallsRejected: once the adversary drops a packet the
// buggy sender goes silent, and the quiescence rule must reject the run.
func TestNoRetransmitABPStallsRejected(t *testing.T) {
	g, err := (&LiveABP{Messages: 2}).Model()
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for seed := int64(0); seed < 12; seed++ {
		w, err := NewNoRetransmitABP(2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Run(w, runtime.Options{Seed: seed, Drop: 0.5, Delay: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Drops == 0 {
			continue // lucky schedule: nothing dropped, the bug is latent
		}
		if _, err := runtime.Refine(w, res, g); errors.Is(err, runtime.ErrNotQuiescent) {
			rejected++
		} else if err != nil {
			t.Fatalf("seed %d: wrong rejection: %v", seed, err)
		}
	}
	if rejected == 0 {
		t.Fatal("no lossy schedule rejected the no-retransmit sender")
	}
}

func TestProgressVisibility(t *testing.T) {
	a, err := NewAsyncABP(1)
	if err != nil {
		t.Fatal(err)
	}
	vis := a.ProgressVisibility()
	g, err := a.CheckDelivery(core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	visible, hidden := 0, 0
	for i := 0; i < g.Len(); i++ {
		st := g.State(i)
		for _, e := range g.Successors(i) {
			if vis(st, engine.Action[string]{To: e.To, Label: e.Label, Actor: e.Actor}) {
				visible++
			} else {
				hidden++
			}
		}
	}
	if visible == 0 || hidden == 0 {
		t.Fatalf("visibility predicate is degenerate: %d visible, %d hidden edges", visible, hidden)
	}
}
