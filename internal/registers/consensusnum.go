package registers

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// This file mechanizes Herlihy's consensus-number separation (§2.3, [65],
// with the underlying impossibility due to Loui–Abu-Amara [76]): wait-free
// 2-process binary consensus is solvable with a single read-modify-write
// (test-and-set) object but not with a read/write register, no matter how
// many values the register holds. The negative half is proved by
// exhaustion over every bounded protocol table under the read/write
// discipline; the positive half is found by the same search run over the
// unrestricted RMW tables.

// ObjKind selects the shared object's access discipline.
type ObjKind int

const (
	// RWRegister permits pure reads and blind writes only.
	RWRegister ObjKind = iota + 1
	// RMWObject permits one atomic read-compute-write per access.
	RMWObject
)

// String implements fmt.Stringer.
func (k ObjKind) String() string {
	switch k {
	case RWRegister:
		return "rw-register"
	case RMWObject:
		return "rmw-object"
	default:
		return fmt.Sprintf("ObjKind(%d)", int(k))
	}
}

// ConsCell is one transition-table entry: the next local state (a plain
// state, or a decide pseudo-state) and the value stored back.
type ConsCell struct {
	Next   int // 0..L-1 plain, L = decide 0, L+1 = decide 1
	NewVal int
}

// ConsTable is one process's program: Table[state][observedValue].
type ConsTable [][]ConsCell

// ConsSearchConfig parameterizes SearchConsensus.
type ConsSearchConfig struct {
	// Kind selects the object discipline.
	Kind ObjKind
	// Values is the object's domain size (initial value 0).
	Values int
	// LocalStates is the plain-state count L >= 2; a process starts in
	// state equal to its input (0 or 1).
	LocalStates int
	// Symmetric makes both processes run the same table.
	Symmetric bool
	// StopAtFirst ends the search at the first witness.
	StopAtFirst bool
	// Workers is the parallelism degree; zero means GOMAXPROCS.
	Workers int
	// MaxStates bounds each per-pair reachability exploration (zero means
	// core.DefaultMaxStates). If any pair's configuration space exceeds the
	// bound, SearchConsensus fails with core.ErrStateLimit.
	MaxStates int
}

// ConsResult reports a consensus search.
type ConsResult struct {
	// TablesEnumerated counts generated per-process tables.
	TablesEnumerated uint64
	// TablesViable counts tables passing the solo-validity prune.
	TablesViable uint64
	// PairsChecked counts protocol pairs model-checked.
	PairsChecked uint64
	// Witness is a working protocol pair, if found.
	Witness *[2]ConsTable
}

// Found reports whether a witness protocol was found.
func (r ConsResult) Found() bool { return r.Witness != nil }

// stateOptions enumerates the legal rows for one local state.
func stateOptions(kind ObjKind, values, locals int) [][]ConsCell {
	targets := locals + 2
	var out [][]ConsCell
	switch kind {
	case RWRegister:
		// Pure reads: a target per observed value, value unchanged.
		total := 1
		for i := 0; i < values; i++ {
			total *= targets
		}
		for idx := 0; idx < total; idx++ {
			row := make([]ConsCell, values)
			rem := idx
			for v := 0; v < values; v++ {
				row[v] = ConsCell{Next: rem % targets, NewVal: v}
				rem /= targets
			}
			out = append(out, row)
		}
		// Blind writes: constant target and stored value.
		for next := 0; next < targets; next++ {
			for nv := 0; nv < values; nv++ {
				row := make([]ConsCell, values)
				for v := 0; v < values; v++ {
					row[v] = ConsCell{Next: next, NewVal: nv}
				}
				out = append(out, row)
			}
		}
	default: // RMWObject: free (target, newVal) per observed value
		perVal := targets * values
		total := 1
		for i := 0; i < values; i++ {
			total *= perVal
		}
		for idx := 0; idx < total; idx++ {
			row := make([]ConsCell, values)
			rem := idx
			for v := 0; v < values; v++ {
				c := rem % perVal
				rem /= perVal
				row[v] = ConsCell{Next: c / values, NewVal: c % values}
			}
			out = append(out, row)
		}
	}
	return out
}

// soloValid checks the per-table prune: a process running entirely alone
// must decide its own input (validity forces this — alone, only its input
// is present in the system) within a bounded number of steps.
func soloValid(t ConsTable, locals, values int) bool {
	for input := 0; input <= 1; input++ {
		l, v := input, 0
		limit := locals*values + 2
		decided := -1
		for step := 0; step < limit; step++ {
			c := t[l][v]
			v = c.NewVal
			if c.Next >= locals {
				decided = c.Next - locals
				break
			}
			l = c.Next
		}
		if decided != input {
			return false
		}
	}
	return true
}

// pairSys is the 2-process configuration system for one table pair under
// fixed inputs, encoded as core-explorable int states
// (l0*L + l1)*values + v with L = locals + 2 (the two extra local states
// are the decide-0/decide-1 pseudo-states). It replaces the hand-rolled
// visited-array search this file used to carry, so pair checking goes
// through the same exploration engine — and the same MaxStates/truncation
// discipline — as every other checker in the repository.
type pairSys struct {
	tables         [2]ConsTable
	locals, values int
	a, b           int
}

func (ps *pairSys) idx(l0, l1, v int) int {
	L := ps.locals + 2
	return (l0*L+l1)*ps.values + v
}

func (ps *pairSys) decode(s int) (l0, l1, v int) {
	L := ps.locals + 2
	return s / ps.values / L, (s / ps.values) % L, s % ps.values
}

// Init implements core.System.
func (ps *pairSys) Init() []int { return []int{ps.idx(ps.a, ps.b, 0)} }

// Steps implements core.System: each undecided process may take its one
// atomic access next.
func (ps *pairSys) Steps(s int) []core.Step[int] {
	l0, l1, v := ps.decode(s)
	ls := [2]int{l0, l1}
	var out []core.Step[int]
	for p := 0; p < 2; p++ {
		if ls[p] >= ps.locals { // decided: takes no further steps
			continue
		}
		c := ps.tables[p][ls[p]][v]
		nl := ls
		nl[p] = c.Next
		out = append(out, core.Step[int]{To: ps.idx(nl[0], nl[1], c.NewVal), Label: "access", Actor: p})
	}
	return out
}

// checkPair verifies wait-free consensus for one table pair over all four
// input combinations: every reachable configuration must let each
// undecided process finish solo (wait-freedom), decided values must agree,
// and validity must hold. A non-nil error means the exploration itself
// failed (state bound exceeded), not that the pair is a non-protocol.
func checkPair(t0, t1 ConsTable, locals, values, maxStates int) (bool, error) {
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			ok, err := checkInputs(t0, t1, locals, values, a, b, maxStates)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

func checkInputs(t0, t1 ConsTable, locals, values, a, b, maxStates int) (bool, error) {
	sys := &pairSys{tables: [2]ConsTable{t0, t1}, locals: locals, values: values, a: a, b: b}
	// The per-pair graphs are tiny (at most (locals+2)^2 * values states);
	// parallelism lives in the outer pair enumeration, so each exploration
	// runs sequentially.
	g, err := core.Explore[int](sys, core.ExploreOptions{MaxStates: maxStates, Parallelism: 1})
	if err != nil {
		return false, err
	}
	decided := func(l int) (int, bool) {
		if l >= locals {
			return l - locals, true
		}
		return 0, false
	}
	for i := 0; i < g.Len(); i++ {
		l0, l1, v := sys.decode(g.State(i))
		ls := [2]int{l0, l1}
		d0, ok0 := decided(l0)
		d1, ok1 := decided(l1)
		// Agreement and validity.
		if ok0 && ok1 && d0 != d1 {
			return false, nil
		}
		for _, dv := range []struct {
			d  int
			ok bool
		}{{d0, ok0}, {d1, ok1}} {
			if !dv.ok {
				continue
			}
			if dv.d != a && dv.d != b {
				return false, nil
			}
		}
		// Wait-freedom: each undecided process must decide running solo.
		for p := 0; p < 2; p++ {
			if _, ok := decided(ls[p]); ok {
				continue
			}
			sl, sv := ls[p], v
			finished := false
			for step := 0; step < locals*values+2; step++ {
				c := sys.tables[p][sl][sv]
				sv = c.NewVal
				if c.Next >= locals {
					finished = true
					break
				}
				sl = c.Next
			}
			if !finished {
				return false, nil
			}
		}
	}
	return true, nil
}

// SearchConsensus exhaustively enumerates 2-process protocols over a
// single shared object and reports whether any achieves wait-free binary
// consensus. With Kind == RWRegister the expected outcome is no witness
// (consensus number 1); with Kind == RMWObject and Values >= 3 the search
// finds the classic test-and-set consensus protocol (consensus number at
// least 2).
func SearchConsensus(cfg ConsSearchConfig) (ConsResult, error) {
	if cfg.Values < 2 || cfg.LocalStates < 2 {
		return ConsResult{}, fmt.Errorf("registers: need Values >= 2 and LocalStates >= 2, got %d/%d", cfg.Values, cfg.LocalStates)
	}
	opts := stateOptions(cfg.Kind, cfg.Values, cfg.LocalStates)
	perProc := uint64(1)
	for i := 0; i < cfg.LocalStates; i++ {
		perProc *= uint64(len(opts))
	}
	res := ConsResult{TablesEnumerated: perProc}
	var tables []ConsTable
	for id := uint64(0); id < perProc; id++ {
		rem := id
		t := make(ConsTable, cfg.LocalStates)
		for s := 0; s < cfg.LocalStates; s++ {
			t[s] = opts[rem%uint64(len(opts))]
			rem /= uint64(len(opts))
		}
		if soloValid(t, cfg.LocalStates, cfg.Values) {
			tables = append(tables, t)
		}
	}
	res.TablesViable = uint64(len(tables))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pairs atomic.Uint64
	var mu sync.Mutex // guards res.Witness and firstErr
	var firstErr error
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tables); i += workers {
				if stop.Load() {
					return
				}
				jEnd := len(tables)
				if cfg.Symmetric {
					jEnd = i + 1
				}
				for j := i; j < jEnd; j++ {
					pairs.Add(1)
					ok, err := checkPair(tables[i], tables[j], cfg.LocalStates, cfg.Values, cfg.MaxStates)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						stop.Store(true)
						return
					}
					if !ok {
						continue
					}
					mu.Lock()
					if res.Witness == nil {
						res.Witness = &[2]ConsTable{tables[i], tables[j]}
					}
					mu.Unlock()
					if cfg.StopAtFirst {
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.PairsChecked = pairs.Load()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// CanonicalTASConsensus returns the classic 2-process consensus protocol
// over one 3-valued RMW object (values: 0 = unclaimed, 1 = claimed-with-0,
// 2 = claimed-with-1): the first access claims the object with the
// process's input and decides it; a later access finds the claim and
// decides the claimant's value.
func CanonicalTASConsensus(locals int) ConsTable {
	// Only states 0 and 1 (the inputs) are used; extra states self-loop
	// into deciding 0 to keep the table total.
	t := make(ConsTable, locals)
	decide := func(d int) int { return locals + d }
	for s := range t {
		row := make([]ConsCell, 3)
		input := s
		if s > 1 {
			input = 0
		}
		row[0] = ConsCell{Next: decide(input), NewVal: input + 1} // claim
		row[1] = ConsCell{Next: decide(0), NewVal: 1}             // claimed with 0
		row[2] = ConsCell{Next: decide(1), NewVal: 2}             // claimed with 1
		t[s] = row
	}
	return t
}
