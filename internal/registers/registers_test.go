package registers

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// A clean sequential history: write 1, then read 1.
func TestSequentialHistoryIsAtomic(t *testing.T) {
	h := []Op{
		{Proc: 0, Kind: Write, Value: 1, Start: 0, End: 1},
		{Proc: 1, Kind: Read, Value: 1, Start: 2, End: 3},
	}
	for name, check := range map[string]func([]Op, int) (bool, error){
		"atomic": IsAtomic, "regular": IsRegular, "safe": IsSafe,
	} {
		ok, err := check(h, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s should accept the sequential history", name)
		}
	}
}

// The new/old inversion: two sequential reads overlapping one write, the
// first returning the new value and the second the old one. Regular
// allows it; atomic forbids it — Lamport's §2.3 distinction.
func TestNewOldInversionSeparatesRegularFromAtomic(t *testing.T) {
	h := []Op{
		{Proc: 0, Kind: Write, Value: 1, Start: 0, End: 10},
		{Proc: 1, Kind: Read, Value: 1, Start: 1, End: 2}, // new value
		{Proc: 1, Kind: Read, Value: 0, Start: 3, End: 4}, // then old again
	}
	regular, err := IsRegular(h, 0)
	if err != nil {
		t.Fatalf("IsRegular: %v", err)
	}
	if !regular {
		t.Error("regular semantics should allow the new/old inversion")
	}
	atomic, err := IsAtomic(h, 0)
	if err != nil {
		t.Fatalf("IsAtomic: %v", err)
	}
	if atomic {
		t.Error("atomic semantics must forbid the new/old inversion")
	}
}

// A read overlapping a write may return garbage under safe semantics but
// not under regular semantics.
func TestSafeAllowsGarbageDuringWrites(t *testing.T) {
	h := []Op{
		{Proc: 0, Kind: Write, Value: 1, Start: 0, End: 10},
		{Proc: 1, Kind: Read, Value: 42, Start: 1, End: 2},
	}
	safe, err := IsSafe(h, 0)
	if err != nil {
		t.Fatalf("IsSafe: %v", err)
	}
	if !safe {
		t.Error("safe semantics should allow any value during a write")
	}
	regular, err := IsRegular(h, 0)
	if err != nil {
		t.Fatalf("IsRegular: %v", err)
	}
	if regular {
		t.Error("regular semantics must reject a value no write produced")
	}
}

func TestStaleReadRejectedEverywhere(t *testing.T) {
	// A read entirely after a write must see it.
	h := []Op{
		{Proc: 0, Kind: Write, Value: 7, Start: 0, End: 1},
		{Proc: 1, Kind: Read, Value: 0, Start: 2, End: 3},
	}
	for name, check := range map[string]func([]Op, int) (bool, error){
		"atomic": IsAtomic, "regular": IsRegular, "safe": IsSafe,
	} {
		ok, err := check(h, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ok {
			t.Errorf("%s should reject the stale read", name)
		}
	}
}

func TestValidateRejectsBadOps(t *testing.T) {
	bad := []Op{{Proc: 0, Kind: Write, Value: 1, Start: 2, End: 1}}
	if _, err := IsAtomic(bad, 0); err == nil {
		t.Error("inverted interval should be rejected")
	}
	badKind := []Op{{Proc: 0, Kind: OpKind(9), Value: 1, Start: 0, End: 1}}
	if _, err := IsRegular(badKind, 0); err == nil {
		t.Error("bad kind should be rejected")
	}
}

// TestCanonicalTASConsensusWorks verifies the classic protocol against the
// full wait-free consensus specification.
func TestCanonicalTASConsensusWorks(t *testing.T) {
	table := CanonicalTASConsensus(2)
	if !soloValid(table, 2, 3) {
		t.Fatal("canonical protocol fails solo validity")
	}
	ok, err := checkPair(table, table, 2, 3, 0)
	if err != nil {
		t.Fatalf("checkPair: %v", err)
	}
	if !ok {
		t.Fatal("canonical TAS consensus fails the checker")
	}
}

// TestRWRegisterCannotSolveConsensus is E20's negative half: exhaustive
// search over every 2-process protocol using one read/write register
// (2 local states; 2 then 3 values) finds no wait-free consensus protocol
// — consensus number 1.
func TestRWRegisterCannotSolveConsensus(t *testing.T) {
	for _, values := range []int{2, 3} {
		res, err := SearchConsensus(ConsSearchConfig{
			Kind:        RWRegister,
			Values:      values,
			LocalStates: 2,
		})
		if err != nil {
			t.Fatalf("SearchConsensus(values=%d): %v", values, err)
		}
		if res.Found() {
			t.Fatalf("values=%d: no RW protocol should solve consensus, found one (viable=%d pairs=%d)",
				values, res.TablesViable, res.PairsChecked)
		}
		if res.TablesEnumerated == 0 {
			t.Fatal("search enumerated nothing")
		}
	}
}

// TestRMWObjectSolvesConsensus is E20's positive half: the same search
// over unrestricted read-modify-write tables finds a witness — and the
// separation between the two searches is exactly Herlihy's hierarchy gap.
func TestRMWObjectSolvesConsensus(t *testing.T) {
	res, err := SearchConsensus(ConsSearchConfig{
		Kind:        RMWObject,
		Values:      3,
		LocalStates: 2,
		Symmetric:   true,
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatalf("SearchConsensus: %v", err)
	}
	if !res.Found() {
		t.Fatalf("RMW search should find the test-and-set consensus protocol (viable=%d)", res.TablesViable)
	}
	// Re-verify the witness independently.
	w := *res.Witness
	ok, err := checkPair(w[0], w[1], 2, 3, 0)
	if err != nil {
		t.Fatalf("checkPair: %v", err)
	}
	if !ok {
		t.Fatal("found witness fails re-verification")
	}
}

func TestSearchConsensusValidatesConfig(t *testing.T) {
	if _, err := SearchConsensus(ConsSearchConfig{Kind: RWRegister, Values: 1, LocalStates: 2}); err == nil {
		t.Error("Values=1 should be rejected")
	}
	if _, err := SearchConsensus(ConsSearchConfig{Kind: RWRegister, Values: 2, LocalStates: 1}); err == nil {
		t.Error("LocalStates=1 should be rejected")
	}
}

func TestObjKindString(t *testing.T) {
	if RWRegister.String() != "rw-register" || RMWObject.String() != "rmw-object" {
		t.Fatal("unexpected ObjKind strings")
	}
	if ObjKind(5).String() != "ObjKind(5)" {
		t.Fatal("unexpected fallthrough")
	}
}

// TestHierarchyProperty: on random histories, atomic implies regular
// implies safe — Lamport's hierarchy is a chain.
func TestHierarchyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		h := randomHistory(rng)
		atomic, err := IsAtomic(h, 0)
		if err != nil {
			t.Fatalf("IsAtomic: %v", err)
		}
		regular, err := IsRegular(h, 0)
		if err != nil {
			t.Fatalf("IsRegular: %v", err)
		}
		safe, err := IsSafe(h, 0)
		if err != nil {
			t.Fatalf("IsSafe: %v", err)
		}
		if atomic && !regular {
			t.Fatalf("atomic history not regular: %+v", h)
		}
		if regular && !safe {
			t.Fatalf("regular history not safe: %+v", h)
		}
	}
}

// randomHistory builds a small single-writer, single-reader history with
// plausible and implausible read values. Each process's own operations are
// sequential (regular-register semantics presuppose a single writer whose
// writes do not overlap each other), but the two processes interleave
// freely.
func randomHistory(rng *rand.Rand) []Op {
	n := rng.Intn(4) + 2
	out := make([]Op, 0, n)
	cursor := [2]float64{}
	for i := 0; i < n; i++ {
		kind := Read
		proc := 1
		if rng.Intn(2) == 0 {
			kind = Write
			proc = 0
		}
		start := cursor[proc] + rng.Float64()
		end := start + rng.Float64()*2 + 0.1
		cursor[proc] = end + 0.01
		out = append(out, Op{
			Proc:  proc,
			Kind:  kind,
			Value: rng.Intn(3),
			Start: start,
			End:   end,
		})
	}
	return out
}

// TestSearchConsensusHonorsMaxStates verifies that the per-pair
// explorations go through the shared engine's state bound: an absurdly
// tight MaxStates makes the search fail with core.ErrStateLimit instead of
// silently mis-deciding pairs.
func TestSearchConsensusHonorsMaxStates(t *testing.T) {
	_, err := SearchConsensus(ConsSearchConfig{
		Kind:        RWRegister,
		Values:      2,
		LocalStates: 2,
		MaxStates:   1,
	})
	if !errors.Is(err, core.ErrStateLimit) {
		t.Fatalf("err = %v, want core.ErrStateLimit", err)
	}
}
