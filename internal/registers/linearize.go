// Package registers implements the shared-register results of §2.3: the
// safe/regular/atomic hierarchy of Lamport [71] as executable history
// checkers, and Herlihy's consensus-number separation [65] — wait-free
// 2-process consensus is solvable with one test-and-set object but not
// with read/write registers, proved here by exhaustive search over bounded
// protocol tables (the same impossibility-by-exhaustion discipline as the
// synth package).
package registers

import (
	"errors"
	"fmt"
	"sort"
)

// OpKind distinguishes reads from writes.
type OpKind int

const (
	// Read returns a value.
	Read OpKind = iota + 1
	// Write stores a value.
	Write
)

// Op is one complete register operation in a history, with real-time
// start/end bounds.
type Op struct {
	// Proc is the invoking process.
	Proc int
	// Kind is Read or Write.
	Kind OpKind
	// Value is the written value or the value the read returned.
	Value int
	// Start and End bound the operation interval (Start < End).
	Start, End float64
}

// ErrBadHistory marks structurally invalid histories.
var ErrBadHistory = errors.New("registers: invalid history")

// validate checks interval sanity.
func validate(h []Op) error {
	for i, op := range h {
		if op.Start >= op.End {
			return fmt.Errorf("%w: op %d has Start >= End", ErrBadHistory, i)
		}
		if op.Kind != Read && op.Kind != Write {
			return fmt.Errorf("%w: op %d has bad kind", ErrBadHistory, i)
		}
	}
	return nil
}

// precedes reports whether a finishes before b starts.
func precedes(a, b Op) bool { return a.End < b.Start }

// overlaps reports whether the two intervals intersect.
func overlaps(a, b Op) bool { return !precedes(a, b) && !precedes(b, a) }

// IsAtomic reports whether the history is linearizable as an atomic
// register initialized to initial: there is a total order of the
// operations, consistent with real-time precedence, in which every read
// returns the most recent write (or the initial value). Checked by
// backtracking over admissible orders — adequate for the small
// demonstration histories of the §2.3 results.
func IsAtomic(h []Op, initial int) (bool, error) {
	if err := validate(h); err != nil {
		return false, err
	}
	n := len(h)
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func(last int) bool
	rec = func(last int) bool {
		if len(order) == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Real-time: i may come next only if no unused op precedes it.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && precedes(h[j], h[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur := last
			if h[i].Kind == Read && h[i].Value != cur {
				continue
			}
			next := cur
			if h[i].Kind == Write {
				next = h[i].Value
			}
			used[i] = true
			order = append(order, i)
			if rec(next) {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	return rec(initial), nil
}

// IsRegular reports whether the history obeys regular-register semantics
// for a single-writer register initialized to initial: every read returns
// either the value of some write it overlaps, or the value of the latest
// write that completely precedes it (the initial value if none). Regular
// registers permit the "new/old inversion" that atomic registers forbid —
// the distinction at the core of Lamport's hierarchy.
func IsRegular(h []Op, initial int) (bool, error) {
	if err := validate(h); err != nil {
		return false, err
	}
	writes := make([]Op, 0, len(h))
	for _, op := range h {
		if op.Kind == Write {
			writes = append(writes, op)
		}
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].End < writes[j].End })
	for _, op := range h {
		if op.Kind != Read {
			continue
		}
		allowed := map[int]bool{}
		latest := initial
		latestEnd := -1.0
		for _, w := range writes {
			if precedes(w, op) {
				if w.End > latestEnd {
					latestEnd = w.End
					latest = w.Value
				}
			} else if overlaps(w, op) {
				allowed[w.Value] = true
			}
		}
		allowed[latest] = true
		if !allowed[op.Value] {
			return false, nil
		}
	}
	return true, nil
}

// IsSafe reports whether the history obeys safe-register semantics: reads
// that overlap no write must return the latest preceding write (or the
// initial value); overlapping reads may return anything.
func IsSafe(h []Op, initial int) (bool, error) {
	if err := validate(h); err != nil {
		return false, err
	}
	for _, op := range h {
		if op.Kind != Read {
			continue
		}
		overlapping := false
		latest := initial
		latestEnd := -1.0
		for _, w := range h {
			if w.Kind != Write {
				continue
			}
			if overlaps(w, op) {
				overlapping = true
			} else if precedes(w, op) && w.End > latestEnd {
				latestEnd = w.End
				latest = w.Value
			}
		}
		if !overlapping && op.Value != latest {
			return false, nil
		}
	}
	return true, nil
}
