package obs

import (
	"fmt"
	"io"
	"sync"
)

// Logger is a Sink that renders the event stream as human-oriented
// progress lines — the -progress flag of the CLIs. It prints run_start,
// timer-driven snapshots (with the windowed rate between consecutive
// snapshots, which surfaces a stuck frontier immediately), truncation,
// and the final run_end totals. Level events are skipped by default
// (deep graphs emit thousands); set Levels for barrier-by-barrier output.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	prev   *ProgressSnapshot
	// Levels enables a line per BFS level barrier.
	Levels bool
}

// NewLogger writes progress lines to w, each prefixed with prefix.
func NewLogger(w io.Writer, prefix string) *Logger {
	return &Logger{w: w, prefix: prefix}
}

// Publish implements Sink.
func (l *Logger) Publish(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch ev.Kind {
	case KindRunStart:
		if c := ev.Config; c != nil {
			fmt.Fprintf(l.w, "%srun start: mode=%s workers=%d max-states=%d inits=%d\n",
				l.prefix, c.Mode(), c.Workers, c.MaxStates, c.Inits)
		}
		l.prev = nil
	case KindSnapshot:
		if s := ev.Snapshot; s != nil {
			line := s.String()
			if l.prev != nil {
				line += fmt.Sprintf(" now=%.0f/s", s.Rate(*l.prev))
			}
			fmt.Fprintf(l.w, "%s%s\n", l.prefix, line)
			cp := *s
			l.prev = &cp
		}
	case KindLevel:
		if l.Levels && ev.Snapshot != nil {
			fmt.Fprintf(l.w, "%slevel %s\n", l.prefix, ev.Snapshot)
		}
	case KindTruncated:
		if s := ev.Snapshot; s != nil {
			fmt.Fprintf(l.w, "%sstate limit hit: %s\n", l.prefix, s)
		}
	case KindRunEnd:
		if s := ev.Snapshot; s != nil {
			fmt.Fprintf(l.w, "%srun end: %s\n", l.prefix, s)
		}
		l.prev = nil
	}
}
