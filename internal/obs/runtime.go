package obs

// Runtime event payloads (schema v2). The live adversarial runtime
// (internal/runtime) publishes one rt_start per run carrying a
// RuntimeConfig, one rt_event per scheduled action, and one rt_end
// carrying a RuntimeSummary. Everything in these payloads is part of the
// runtime's determinism contract: under a fixed seed and config the whole
// stream is byte-identical at any GOMAXPROCS, so it all folds into Digest
// (unlike exploration snapshots, there are no timing-dependent fields).

// Runtime event kinds, carried in RuntimeEvent.Kind. Deliver and local
// events are protocol steps; drop, dup, crash and restart are adversary
// moves.
const (
	RTDeliver = "deliver" // a message handed to its destination process
	RTLocal   = "local"   // a process-armed local action fired
	RTDrop    = "drop"    // the adversary discarded an in-flight message
	RTDup     = "dup"     // the adversary re-enqueued a delivered message
	RTCrash   = "crash"   // a process was crash-stopped
	RTRestart = "restart" // a crashed process resumed
)

// RuntimeConfig describes one live runtime run, published with rt_start.
// It is the replay recipe: the same workload, seed and knobs reproduce the
// same rt_event stream bit for bit.
type RuntimeConfig struct {
	// Workload names the live system (e.g. "async-lcr", "async-abp").
	Workload string `json:"workload"`
	// Procs is the number of live process goroutines.
	Procs int `json:"procs"`
	// Seed drives the adversarial scheduler and every per-process RNG.
	Seed int64 `json:"seed"`
	// MaxEvents is the run's scheduling budget.
	MaxEvents int `json:"max_events"`
	// Batch is the concurrent dispatch width (a config constant, never
	// derived from GOMAXPROCS — batch composition shapes the trace).
	Batch int `json:"batch"`
	// Drop and Dup are the per-delivery loss and duplication probabilities.
	Drop float64 `json:"drop,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
	// Delay is the maximum scheduling skew (in events) a newly enqueued
	// action can be deferred by.
	Delay int `json:"delay,omitempty"`
	// Crash is the per-process crash probability; RestartAfter is the
	// number of events after which a crashed process resumes (0 = never).
	Crash        float64 `json:"crash,omitempty"`
	RestartAfter int     `json:"restart_after,omitempty"`
}

// RuntimeEvent is one scheduled runtime action, published as rt_event.
type RuntimeEvent struct {
	// Kind is one of the RT* constants.
	Kind string `json:"kind"`
	// Event is the 1-based index of the event within its run; strictly
	// increasing, and equal to the rt_end summary's Events total at close.
	Event int `json:"event"`
	// Actor is the model-facing actor of the step (a process index, or -1
	// for environment moves like drops).
	Actor int `json:"actor"`
	// To is the process the action targeted (crash/restart: the process).
	To int `json:"to"`
	// From is the sending process of a delivery, -1 otherwise.
	From int `json:"from"`
	// Label is the model edge label of the step, when the step corresponds
	// to a transition of the reference state space; empty for internal
	// stutters (timeout no-ops, crashes) that refinement skips.
	Label string `json:"label,omitempty"`
}

// RuntimeSummary closes a runtime run, published with rt_end.
type RuntimeSummary struct {
	// Events counts scheduled actions (every rt_event).
	Events int `json:"events"`
	// Deliveries and LocalSteps count the protocol steps among them.
	Deliveries int `json:"deliveries"`
	LocalSteps int `json:"local_steps,omitempty"`
	// Drops, Dups, Crashes and Restarts count the adversary's moves.
	Drops    int `json:"drops,omitempty"`
	Dups     int `json:"dups,omitempty"`
	Crashes  int `json:"crashes,omitempty"`
	Restarts int `json:"restarts,omitempty"`
	// Pending is the number of actions left unscheduled when the run ended.
	Pending int `json:"pending,omitempty"`
	// Halted counts processes that reached a terminal protocol state.
	Halted int `json:"halted,omitempty"`
	// Exactly how the run ended. Stopped: a process reported the run's goal
	// reached (election, transfer complete). Quiesced: nothing pending and
	// nothing schedulable. Stalled: only crash-starved actions remained.
	// Budget: MaxEvents ran out.
	Stopped  bool `json:"stopped,omitempty"`
	Quiesced bool `json:"quiesced,omitempty"`
	Stalled  bool `json:"stalled,omitempty"`
	Budget   bool `json:"budget,omitempty"`
	// BatchLat is the wall-clock latency histogram of concurrent batch
	// dispatches (schema v3). The one timing field in the summary: it is
	// excluded from Digest (see DigestLine), because wall time varies while
	// the scheduled stream does not.
	BatchLat *HistSnap `json:"batch_lat,omitempty"`
}
