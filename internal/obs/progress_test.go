package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLoggerSubSecondWindowedRate(t *testing.T) {
	// Snapshot periods are routinely sub-second (-snapshot 250ms); the
	// windowed rate must scale by the real Δelapsed, not whole seconds.
	var buf bytes.Buffer
	lg := NewLogger(&buf, "")
	lg.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 100, Inits: 1}})
	s1 := ProgressSnapshot{States: 10, Depth: 1, Elapsed: 100 * time.Millisecond}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s1})
	s2 := ProgressSnapshot{States: 60, Depth: 1, Elapsed: 350 * time.Millisecond}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s2})
	out := buf.String()
	// Δ50 states over Δ250ms = 200/s.
	if !strings.Contains(out, "now=200/s") {
		t.Fatalf("sub-second windowed rate wrong:\n%s", out)
	}
	// The first snapshot has no window yet, so no now= figure.
	first := strings.SplitN(out, "\n", 3)[1]
	if strings.Contains(first, "now=") {
		t.Fatalf("first snapshot should not carry a windowed rate: %q", first)
	}
}

func TestLoggerCoincidentSnapshots(t *testing.T) {
	// Two snapshots with the same Elapsed (timer fired faster than the
	// clock's granularity) must print a zero rate, never NaN or Inf.
	var buf bytes.Buffer
	lg := NewLogger(&buf, "")
	lg.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 100, Inits: 1}})
	s1 := ProgressSnapshot{States: 10, Elapsed: 500 * time.Millisecond}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s1})
	s2 := ProgressSnapshot{States: 25, Elapsed: 500 * time.Millisecond}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s2})
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("coincident snapshots produced a non-finite rate:\n%s", out)
	}
	if !strings.Contains(out, "now=0/s") {
		t.Fatalf("coincident snapshots should rate 0:\n%s", out)
	}
}

func TestLoggerRunEndResetsWindow(t *testing.T) {
	// The window must not leak across runs in one trace: the first snapshot
	// of run 2 has no predecessor.
	var buf bytes.Buffer
	lg := NewLogger(&buf, "")
	for run := 0; run < 2; run++ {
		lg.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 100, Inits: 1}})
		s := ProgressSnapshot{States: 10, Elapsed: 200 * time.Millisecond}
		lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s})
		end := ProgressSnapshot{States: 20, Elapsed: 400 * time.Millisecond, Final: true}
		lg.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
	}
	if strings.Contains(buf.String(), "now=") {
		t.Fatalf("windowed rate leaked across run boundary:\n%s", buf.String())
	}
}
