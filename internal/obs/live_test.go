package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// profiledSnapshot builds a snapshot carrying every profiling payload the
// Prometheus view renders, so exposition tests exercise the full surface.
func profiledSnapshot() *ProgressSnapshot {
	var lat Hist
	lat.Observe(2000)
	lat.Observe(int64(time.Millisecond))
	snap := lat.Snapshot()
	return &ProgressSnapshot{
		States: 50, Depth: 3, Frontier: 10, PeakFrontier: 20,
		Expansions: 48, Elapsed: time.Second,
		WorkerSteps: []uint64{30, 18},
		Phases: &Phases{
			ExpandNs: 8e8, BarrierWaitNs: 1e8, ReplayNs: 1e8,
			SampledStates: 7, SampleExpandNs: 7000, SampleCanonNs: 1400, SampleInternNs: 2100,
		},
		ExpandLat:          &snap,
		StorePageCacheHits: 12,
		StoreReadLat:       &snap,
	}
}

func TestPrometheusExposition(t *testing.T) {
	m := NewManifest("obs-test")
	live := NewLive(&m)
	live.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 2, MaxStates: 100, Inits: 1}})
	live.Publish(Event{Kind: KindSnapshot, Snapshot: profiledSnapshot()})
	live.Publish(Event{Kind: KindRTStart})
	live.Publish(Event{Kind: KindRTEvent, RT: &RuntimeEvent{Kind: "deliver"}})
	live.Publish(Event{Kind: KindRTEvent, RT: &RuntimeEvent{Kind: "drop"}})

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rr := httptest.NewRecorder()
	live.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE explore_states gauge",
		"explore_states 50",
		"explore_workers 2",
		`explore_worker_steps_total{worker="0"} 30`,
		`explore_phase_seconds_total{phase="expand"} 0.8`,
		`explore_phase_seconds_total{phase="barrier_wait"} 0.1`,
		"explore_sampled_states_total 7",
		"explore_canon_fraction 0.2",
		"explore_intern_fraction 0.3",
		"# TYPE explore_expand_latency_seconds histogram",
		"explore_expand_latency_seconds_count 2",
		"explore_store_page_cache_hits_total 12",
		"explore_store_read_latency_seconds_sum",
		"rt_runs_total 1",
		`rt_events_total{kind="deliver"} 1`,
		`rt_events_total{kind="drop"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Histogram buckets are cumulative and end with the canonical +Inf.
	if !strings.Contains(body, `explore_expand_latency_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("histogram missing +Inf bucket:\n%s", body)
	}

	// ?format=prometheus forces the text view regardless of Accept.
	rr = httptest.NewRecorder()
	live.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if !strings.Contains(rr.Body.String(), "explore_states 50") {
		t.Fatal("?format=prometheus did not force the text exposition")
	}

	// A browser-ish Accept keeps the JSON document.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "*/*")
	rr = httptest.NewRecorder()
	live.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept */* got Content-Type %q, want application/json", ct)
	}
	if !json.Valid(rr.Body.Bytes()) {
		t.Fatal("JSON view is not valid JSON")
	}
}

func TestLiveConcurrentScrape(t *testing.T) {
	// The scrape-safety contract: /metrics may be hit, in both
	// representations, while a hot producer publishes — every response is
	// well-formed and no snapshot tears (run under -race in CI).
	live := NewLive(nil)
	stop := make(chan struct{})
	var producer, scrapers sync.WaitGroup
	producer.Add(1)
	go func() {
		defer producer.Done()
		var seq int
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			live.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 4, MaxStates: 1000, Inits: 1}})
			s := profiledSnapshot()
			s.States = seq
			live.Publish(Event{Kind: KindSnapshot, Snapshot: s})
			live.Publish(Event{Kind: KindRunEnd, Snapshot: s})
		}
	}()

	for scraper := 0; scraper < 4; scraper++ {
		scrapers.Add(1)
		go func(prom bool) {
			defer scrapers.Done()
			for i := 0; i < 200; i++ {
				url := "/metrics"
				if prom {
					url += "?format=prometheus"
				}
				rr := httptest.NewRecorder()
				live.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
				if prom {
					if !strings.Contains(rr.Body.String(), "explore_runs_total") {
						t.Errorf("prometheus scrape %d malformed:\n%s", i, rr.Body.String())
						return
					}
				} else if !json.Valid(rr.Body.Bytes()) {
					t.Errorf("JSON scrape %d is not valid JSON", i)
					return
				}
			}
		}(scraper%2 == 0)
	}
	// Scrapers exit after their fixed quota; then stop the producer.
	done := make(chan struct{})
	go func() { scrapers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent scrape deadlocked")
	}
	close(stop)
	producer.Wait()
}
