package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistObserveZeroAllocs(t *testing.T) {
	// Observe sits on expansion and I/O hot paths; it must never allocate.
	var h Hist
	ns := int64(1)
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(ns)
		ns <<= 1
		if ns > 1<<40 {
			ns = 1
		}
	}); avg != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", avg)
	}
}

func TestHistBucketBounds(t *testing.T) {
	// histBucket must put ns in the smallest bucket whose bound covers it —
	// exact at every power-of-two boundary, overflow beyond the ladder.
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {256, 0},
		{257, 1}, {512, 1}, {513, 2},
		{HistBound(10), 10}, {HistBound(10) + 1, 11},
		{HistBound(HistBuckets - 1), HistBuckets - 1},
		{HistBound(HistBuckets-1) + 1, HistBuckets},
		{1 << 62, HistBuckets},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.ns)
		s := h.Snapshot()
		got := len(s.Counts) - 1
		if got != c.want || s.Counts[got] != 1 {
			t.Fatalf("Observe(%d) landed in bucket %d (counts %v), want %d", c.ns, got, s.Counts, c.want)
		}
	}
}

func TestHistSnapshotStats(t *testing.T) {
	var h Hist
	for _, ns := range []int64{100, 200, 1000, 4000, int64(2 * time.Millisecond)} {
		h.Observe(ns)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if want := int64(100+200+1000+4000) + int64(2*time.Millisecond); s.SumNs != want {
		t.Fatalf("SumNs = %d, want %d", s.SumNs, want)
	}
	if got := s.MeanNs(); got != s.SumNs/5 {
		t.Fatalf("MeanNs = %d, want %d", got, s.SumNs/5)
	}
	// p50 of {100,200,1000,4000,2ms}: the third observation's bucket bound.
	if got := s.QuantileNs(0.5); got != 1024 {
		t.Fatalf("p50 = %d, want 1024 (bucket bound covering 1000ns)", got)
	}
	// p0 is the smallest bucket's bound, p1 the largest occupied one.
	if got := s.QuantileNs(0); got != 256 {
		t.Fatalf("p0 = %d, want 256", got)
	}
	if got := s.QuantileNs(1); got != HistBound(histBucket(int64(2*time.Millisecond))) {
		t.Fatalf("p1 = %d, want the 2ms bucket bound", got)
	}
	if got := (HistSnap{}).QuantileNs(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	if got := (HistSnap{}).String(); got != "n=0" {
		t.Fatalf("empty String = %q, want n=0", got)
	}
	if str := s.String(); !strings.Contains(str, "n=5") || !strings.Contains(str, "p99=") {
		t.Fatalf("String missing figures: %q", str)
	}
}

func TestHistSnapAddMerges(t *testing.T) {
	// Fixed compile-time bounds make snapshots mergeable element-wise,
	// including when the operands trimmed to different lengths.
	var a, b Hist
	a.Observe(100)
	a.Observe(100)
	b.Observe(100)
	b.Observe(1 << 20)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Add(sb)
	if sa.Count != 4 || sa.SumNs != 200+100+1<<20 {
		t.Fatalf("merged snap = %+v", sa)
	}
	if sa.Counts[0] != 3 {
		t.Fatalf("merged bucket 0 = %d, want 3", sa.Counts[0])
	}
	if got := len(sa.Counts) - 1; got != histBucket(1<<20) {
		t.Fatalf("merged length %d, want trimmed to bucket %d", got, histBucket(1<<20))
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	// Writers race each other and a snapshotter; counts must never be lost
	// or corrupted (run under -race in CI).
	var h Hist
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + int64(i))
			}
		}(int64(w * 1000))
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("Count = %d, want %d", s.Count, writers*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != Count %d", sum, s.Count)
	}
}
