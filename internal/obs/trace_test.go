package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// writeRun publishes one complete synthetic run through tw: run_start, two
// levels, one timer snapshot, run_end. Counters are internally consistent
// (Expansions equals the worker-step sum, States/Depth monotone).
func writeRun(tw *TraceWriter) {
	tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 2, MaxStates: 1000, Inits: 1}})
	l1 := ProgressSnapshot{Elapsed: time.Millisecond, States: 3, Depth: 1, Frontier: 2,
		PeakFrontier: 2, Expansions: 1, WorkerSteps: []uint64{1, 0}}
	tw.Publish(Event{Kind: KindLevel, Snapshot: &l1})
	timer := ProgressSnapshot{Elapsed: 2 * time.Millisecond, States: 4, Depth: 1, Frontier: 2,
		PeakFrontier: 2, Expansions: 2, WorkerSteps: []uint64{1, 1}}
	tw.Publish(Event{Kind: KindSnapshot, Snapshot: &timer})
	l2 := ProgressSnapshot{Elapsed: 3 * time.Millisecond, States: 7, Depth: 2, Frontier: 4,
		PeakFrontier: 4, Expansions: 3, WorkerSteps: []uint64{2, 1}}
	tw.Publish(Event{Kind: KindLevel, Snapshot: &l2})
	end := ProgressSnapshot{Elapsed: 4 * time.Millisecond, States: 7, Edges: 9, Depth: 2,
		PeakFrontier: 4, Expansions: 7, WorkerSteps: []uint64{4, 3}, Final: true}
	tw.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := NewManifest("obs-test")
	m.Seed = 42
	m.Options = map[string]string{"proto": "wait-quorum", "n": "4"}
	tw, err := NewTraceWriter(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	writeRun(tw)
	writeRun(tw) // a second run in the same file bumps the run number
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest survives the trip byte-for-byte on the fields we set.
	var gotM Manifest
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(first), &gotM); err != nil {
		t.Fatalf("manifest line does not parse: %v", err)
	}
	if gotM.Tool != "obs-test" || gotM.Seed != 42 || gotM.SchemaVersion != SchemaVersion ||
		gotM.Options["proto"] != "wait-quorum" || gotM.Options["n"] != "4" {
		t.Fatalf("manifest round-trip mangled: %+v", gotM)
	}

	sum, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateTrace rejected a well-formed trace: %v", err)
	}
	if sum.Runs != 2 || sum.Events != 10 || sum.Levels != 4 || sum.Snapshots != 2 {
		t.Fatalf("summary = %+v, want runs=2 events=10 levels=4 snapshots=2", sum)
	}
	if len(sum.FinalStates) != 2 || sum.FinalStates[0] != 7 || sum.FinalStates[1] != 7 {
		t.Fatalf("final states = %v, want [7 7]", sum.FinalStates)
	}
	// The validator's recomputed digest matches the writer's: the
	// deterministic skeleton survives serialization.
	if sum.Digest != tw.Digest() {
		t.Fatalf("validator digest %s != writer digest %s", sum.Digest, tw.Digest())
	}
}

func TestTraceDigestIgnoresTiming(t *testing.T) {
	// Two traces of the same run differing only in Elapsed, WorkerSteps
	// and timer snapshots digest identically.
	write := func(elapsedScale time.Duration, timerSnaps int, steps []uint64) string {
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf, NewManifest("t"))
		if err != nil {
			t.Fatal(err)
		}
		tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: len(steps), MaxStates: 100, Inits: 1}})
		var exp uint64
		for _, s := range steps {
			exp += s
		}
		lvl := ProgressSnapshot{Elapsed: elapsedScale, States: 5, Depth: 1, Frontier: 4,
			PeakFrontier: 4, Expansions: exp, WorkerSteps: steps}
		tw.Publish(Event{Kind: KindLevel, Snapshot: &lvl})
		for i := 0; i < timerSnaps; i++ {
			snap := lvl
			snap.Elapsed += time.Duration(i) * time.Millisecond
			tw.Publish(Event{Kind: KindSnapshot, Snapshot: &snap})
		}
		end := ProgressSnapshot{Elapsed: 2 * elapsedScale, States: 5, Edges: 4, Depth: 1,
			PeakFrontier: 4, Expansions: exp, WorkerSteps: steps, Final: true}
		tw.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
		return tw.Digest()
	}
	a := write(time.Millisecond, 0, []uint64{5})
	b := write(time.Hour, 7, []uint64{2, 2, 1})
	if a != b {
		t.Fatalf("digests differ across timing/worker variations: %s vs %s", a, b)
	}
	// But a structural difference (one more state) changes it.
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, NewManifest("t"))
	tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 100, Inits: 1}})
	lvl := ProgressSnapshot{States: 6, Depth: 1, Frontier: 4, PeakFrontier: 4, Expansions: 5, WorkerSteps: []uint64{5}}
	tw.Publish(Event{Kind: KindLevel, Snapshot: &lvl})
	end := ProgressSnapshot{States: 6, Edges: 4, Depth: 1, PeakFrontier: 4, Expansions: 5, WorkerSteps: []uint64{5}, Final: true}
	tw.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
	if tw.Digest() == a {
		t.Fatal("digest did not react to a structural difference")
	}
}

func TestTraceElapsedNsMonotonic(t *testing.T) {
	// The writer stamps every event with its own monotonic clock under the
	// write lock, so elapsed_ns is non-decreasing by construction — the
	// property ValidateTrace enforces and run reports rely on for
	// throughput-over-time.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, NewManifest("t"))
	if err != nil {
		t.Fatal(err)
	}
	writeRun(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	_, evs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for i, ev := range evs {
		if ev.ElapsedNs < last {
			t.Fatalf("event %d elapsed_ns regressed %d -> %d", i, last, ev.ElapsedNs)
		}
		last = ev.ElapsedNs
	}
	if last == 0 {
		t.Fatal("no event carries a non-zero elapsed_ns stamp")
	}
}

func TestDigestLineExcludesProfiling(t *testing.T) {
	// Regression guard for the passive-observation invariant: none of the
	// profiling fields — elapsed_ns, phase counters, latency histograms,
	// store cache counters — may leak into the digest line. If one does,
	// digests stop being worker-count-invariant (timing differs every run)
	// and trace-diff reports phantom divergences.
	snap := ProgressSnapshot{States: 5, Edges: 4, Depth: 1, Frontier: 4,
		PeakFrontier: 4, Expansions: 5}
	base, ok := DigestLine(Event{Kind: KindLevel, Run: 1, Seq: 2, Snapshot: &snap})
	if !ok {
		t.Fatal("level event should contribute a digest line")
	}
	var lat Hist
	lat.Observe(12345)
	hs := lat.Snapshot()
	prof := snap
	prof.Elapsed = time.Hour
	prof.WorkerSteps = []uint64{3, 2}
	prof.Phases = &Phases{ExpandNs: 1e9, BarrierWaitNs: 1e8, SampledStates: 3,
		SampleExpandNs: 999, SampleCanonNs: 111, SampleInternNs: 222}
	prof.WorkerPhases = []Phases{{ExpandNs: 5e8}, {ExpandNs: 5e8}}
	prof.ExpandLat = &hs
	prof.StorePageCacheHits = 42
	prof.StoreReadLat, prof.StoreWriteLat = &hs, &hs
	got, ok := DigestLine(Event{Kind: KindLevel, Run: 1, Seq: 2, ElapsedNs: 1 << 40, Snapshot: &prof})
	if !ok || got != base {
		t.Fatalf("profiling fields leaked into the digest line:\n base %q\n prof %q", base, got)
	}
}

// validTrace renders one complete run to bytes for mutation tests.
func validTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, NewManifest("obs-test"))
	if err != nil {
		t.Fatal(err)
	}
	writeRun(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateTraceRejects(t *testing.T) {
	base := validTrace(t)
	lines := strings.Split(strings.TrimSuffix(string(base), "\n"), "\n")

	cases := []struct {
		name    string
		mutate  func([]string) []string
		wantErr string
	}{
		{"empty", func([]string) []string { return nil }, "no manifest"},
		{"manifest missing", func(ls []string) []string { return ls[1:] }, "not a manifest"},
		{"newer schema", func(ls []string) []string {
			cur := fmt.Sprintf(`"schema_version":%d`, SchemaVersion)
			ls[0] = strings.Replace(ls[0], cur, `"schema_version":99`, 1)
			return ls
		}, "newer than this binary"},
		{"unknown kind", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"kind":"level"`, `"kind":"wibble"`, 1)
			return ls
		}, "unknown event kind"},
		{"seq regression", func(ls []string) []string {
			ls[3] = strings.Replace(ls[3], `"seq":3`, `"seq":2`, 1)
			return ls
		}, "not strictly increasing"},
		{"event outside a run", func(ls []string) []string {
			return append(ls[:1], ls[2:]...) // drop run_start
		}, "outside a run"},
		{"missing run_end", func(ls []string) []string {
			return ls[:len(ls)-1]
		}, "missing run_end"},
		{"run_end not final", func(ls []string) []string {
			ls[len(ls)-1] = strings.Replace(ls[len(ls)-1], `"final":true`, `"final":false`, 1)
			return ls
		}, "not marked final"},
		{"expansions mismatch", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"expansions":1`, `"expansions":9`, 1)
			return ls
		}, "worker-step sum"},
		{"states regression", func(ls []string) []string {
			ls[4] = strings.Replace(ls[4], `"states":7`, `"states":1`, 1)
			return ls
		}, "regressed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ls := c.mutate(append([]string(nil), lines...))
			// Mutations must actually hit their target line; a no-op
			// Replace would silently test nothing.
			_, err := ValidateTrace(strings.NewReader(strings.Join(ls, "\n")))
			if err == nil {
				t.Fatalf("ValidateTrace accepted a %s trace", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateTraceAllowsTimerSnapshotLag(t *testing.T) {
	// A timer snapshot may race a barrier and report an older state count;
	// only barrier-to-barrier monotonicity is promised.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, NewManifest("t"))
	if err != nil {
		t.Fatal(err)
	}
	tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 100, Inits: 1}})
	lvl := ProgressSnapshot{States: 10, Depth: 2}
	tw.Publish(Event{Kind: KindLevel, Snapshot: &lvl})
	stale := ProgressSnapshot{States: 4, Depth: 1} // behind the barrier
	tw.Publish(Event{Kind: KindSnapshot, Snapshot: &stale})
	end := ProgressSnapshot{States: 10, Depth: 2, Final: true}
	tw.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateTrace rejected a lagging timer snapshot: %v", err)
	}
}

func TestLiveMetricsEndpoint(t *testing.T) {
	m := NewManifest("obs-test")
	live := NewLive(&m)
	live.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 4, MaxStates: 100, Inits: 1}})
	snap := ProgressSnapshot{States: 50, Depth: 3, Elapsed: time.Second, WorkerSteps: []uint64{10, 10, 10, 10}}
	live.Publish(Event{Kind: KindSnapshot, Snapshot: &snap})

	rr := httptest.NewRecorder()
	live.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	var doc struct {
		Runs         int               `json:"runs"`
		Events       uint64            `json:"events"`
		Config       *RunConfig        `json:"config"`
		Snapshot     *ProgressSnapshot `json:"snapshot"`
		StatesPerSec float64           `json:"states_per_sec"`
		Utilization  float64           `json:"utilization"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if doc.Runs != 1 || doc.Events != 2 || doc.Config == nil || doc.Config.Workers != 4 {
		t.Fatalf("/metrics counters wrong: %+v", doc)
	}
	if doc.Snapshot == nil || doc.Snapshot.States != 50 {
		t.Fatalf("/metrics snapshot wrong: %+v", doc.Snapshot)
	}
	if doc.StatesPerSec != 50 || doc.Utilization != 1 {
		t.Fatalf("/metrics derived figures wrong: rate=%v util=%v", doc.StatesPerSec, doc.Utilization)
	}

	// The mux serves the index and pprof routes.
	h := Handler(live)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rr.Body.String(), "/metrics") {
		t.Fatalf("index page does not list routes: %q", rr.Body.String())
	}
}

func TestLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "[t] ")
	lg.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 2, MaxStates: 100, Inits: 3, Canon: true}})
	s1 := ProgressSnapshot{States: 10, Depth: 1, Elapsed: time.Second}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s1})
	s2 := ProgressSnapshot{States: 30, Depth: 2, Elapsed: 2 * time.Second}
	lg.Publish(Event{Kind: KindSnapshot, Snapshot: &s2})
	end := ProgressSnapshot{States: 35, Depth: 3, Elapsed: 3 * time.Second, Final: true}
	lg.Publish(Event{Kind: KindRunEnd, Snapshot: &end})
	out := buf.String()
	for _, want := range []string{
		"[t] run start: mode=canon workers=2",
		"now=20/s", // windowed rate between the two snapshots
		"run end: states=35",
		"(final)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("logger output missing %q:\n%s", want, out)
		}
	}
}
