package obs

import (
	"bytes"
	"strings"
	"testing"
)

// writeRTRun publishes one complete synthetic runtime run through tw: an
// rt_start, one rt_event of every kind (with consecutive 1-based
// indices), and an rt_end whose totals tally exactly.
func writeRTRun(tw *TraceWriter) {
	tw.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{
		Workload: "toy", Procs: 3, Seed: 9, MaxEvents: 100, Batch: 4,
		Drop: 0.5, Dup: 0.25, Delay: 2, Crash: 0.1, RestartAfter: 5,
	}})
	for i, e := range []RuntimeEvent{
		{Kind: RTDeliver, Actor: 1, From: 0, To: 1, Label: "deliver x"},
		{Kind: RTLocal, Actor: 2, From: 2, To: 2, Label: "local y"},
		{Kind: RTDrop, Actor: -1, From: 0, To: 2, Label: "drop x"},
		{Kind: RTDup, Actor: -1, From: 1, To: 0},
		{Kind: RTCrash, Actor: -1, From: -1, To: 0},
		{Kind: RTRestart, Actor: -1, From: -1, To: 0},
	} {
		e.Event = i + 1
		ev := e
		tw.Publish(Event{Kind: KindRTEvent, RT: &ev})
	}
	tw.Publish(Event{Kind: KindRTEnd, RTSummary: &RuntimeSummary{
		Events: 6, Deliveries: 1, LocalSteps: 1, Drops: 1, Dups: 1,
		Crashes: 1, Restarts: 1, Pending: 2, Halted: 1, Budget: true,
	}})
}

func TestRTTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, NewManifest("rt-test"))
	if err != nil {
		t.Fatal(err)
	}
	writeRTRun(tw)
	writeRun(tw) // an exploration run after a runtime run in the same file
	writeRTRun(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateTrace rejected a well-formed mixed trace: %v", err)
	}
	if sum.RTRuns != 2 || sum.RTEvents != 12 || sum.Runs != 1 {
		t.Fatalf("summary = %+v, want rt_runs=2 rt_events=12 runs=1", sum)
	}
	if sum.Digest != tw.Digest() {
		t.Fatalf("validator digest %s != writer digest %s", sum.Digest, tw.Digest())
	}
}

// validRTTrace renders one complete runtime run to lines for mutation.
func validRTTrace(t *testing.T) []string {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, NewManifest("rt-test"))
	if err != nil {
		t.Fatal(err)
	}
	writeRTRun(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
}

func TestValidateRTTraceRejects(t *testing.T) {
	// Line layout: 0 manifest, 1 rt_start, 2..7 rt_events, 8 rt_end.
	cases := []struct {
		name    string
		mutate  func([]string) []string
		wantErr string
	}{
		{"rt_event outside a run", func(ls []string) []string {
			return append(ls[:1], ls[2:]...) // drop rt_start
		}, "rt_event outside a runtime run"},
		{"missing rt_end", func(ls []string) []string {
			return ls[:len(ls)-1]
		}, "missing rt_end"},
		{"rt_end outside a run", func(ls []string) []string {
			return append([]string{ls[0]}, ls[len(ls)-1])
		}, "rt_end outside a runtime run"},
		{"rt_start without config", func(ls []string) []string {
			ls[1] = strings.Replace(ls[1], `"rt_config":`, `"ignored":`, 1)
			return ls
		}, "without a config payload"},
		{"no workload name", func(ls []string) []string {
			ls[1] = strings.Replace(ls[1], `"workload":"toy"`, `"workload":""`, 1)
			return ls
		}, "no workload name"},
		{"zero procs", func(ls []string) []string {
			ls[1] = strings.Replace(ls[1], `"procs":3`, `"procs":0`, 1)
			return ls
		}, "non-positive procs"},
		{"probability out of range", func(ls []string) []string {
			ls[1] = strings.Replace(ls[1], `"drop":0.5`, `"drop":1.5`, 1)
			return ls
		}, "probability outside [0,1]"},
		{"negative delay", func(ls []string) []string {
			ls[1] = strings.Replace(ls[1], `"delay":2`, `"delay":-2`, 1)
			return ls
		}, "negative delay"},
		{"event index gap", func(ls []string) []string {
			ls[3] = strings.Replace(ls[3], `"event":2`, `"event":7`, 1)
			return ls
		}, "consecutive 1-based"},
		{"unknown rt kind", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"kind":"deliver"`, `"kind":"teleport"`, 1)
			return ls
		}, "unknown runtime event kind"},
		{"target out of range", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"to":1`, `"to":7`, 1)
			return ls
		}, "outside [0,3)"},
		{"from out of range", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"from":0`, `"from":-3`, 1)
			return ls
		}, "out-of-range from"},
		{"rt_event payload missing", func(ls []string) []string {
			ls[2] = strings.Replace(ls[2], `"rt":`, `"ignored":`, 1)
			return ls
		}, "without a payload"},
		{"totals mismatch", func(ls []string) []string {
			last := len(ls) - 1
			ls[last] = strings.Replace(ls[last], `"drops":1`, `"drops":3`, 1)
			return ls
		}, "disagree with observed"},
		{"rt_end payload missing", func(ls []string) []string {
			last := len(ls) - 1
			ls[last] = strings.Replace(ls[last], `"rt_summary":`, `"ignored":`, 1)
			return ls
		}, "without a summary payload"},
		{"quiesced with pending", func(ls []string) []string {
			last := len(ls) - 1
			ls[last] = strings.Replace(ls[last], `"budget":true`, `"quiesced":true`, 1)
			return ls
		}, "quiescence with 2 actions pending"},
		{"halted above procs", func(ls []string) []string {
			last := len(ls) - 1
			ls[last] = strings.Replace(ls[last], `"halted":1`, `"halted":9`, 1)
			return ls
		}, "out-of-range pending"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := validRTTrace(t)
			ls := c.mutate(append([]string(nil), base...))
			_, err := ValidateTrace(strings.NewReader(strings.Join(ls, "\n")))
			if err == nil {
				t.Fatalf("ValidateTrace accepted a %s trace", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateTraceRejectsInterleavedRuns(t *testing.T) {
	// An exploration event inside a runtime run, and vice versa.
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, NewManifest("t"))
	tw.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{Workload: "toy", Procs: 1, MaxEvents: 1, Batch: 1}})
	tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 10, Inits: 1}})
	tw.Close()
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "run_start inside an open runtime run") {
		t.Errorf("run_start inside rt run: got %v", err)
	}

	buf.Reset()
	tw, _ = NewTraceWriter(&buf, NewManifest("t"))
	tw.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{Workload: "toy", Procs: 1, MaxEvents: 1, Batch: 1}})
	snap := ProgressSnapshot{States: 1}
	tw.Publish(Event{Kind: KindLevel, Snapshot: &snap})
	tw.Close()
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "inside a runtime run") {
		t.Errorf("level inside rt run: got %v", err)
	}

	buf.Reset()
	tw, _ = NewTraceWriter(&buf, NewManifest("t"))
	tw.Publish(Event{Kind: KindRunStart, Config: &RunConfig{Workers: 1, MaxStates: 10, Inits: 1}})
	tw.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{Workload: "toy", Procs: 1, MaxEvents: 1, Batch: 1}})
	tw.Close()
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "rt_start inside an open run") {
		t.Errorf("rt_start inside exploration run: got %v", err)
	}
}

func TestRTDigestSensitivity(t *testing.T) {
	base := func(label string, mutateSeed int64) string {
		d := NewDigest()
		d.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{
			Workload: "toy", Procs: 2, Seed: mutateSeed, MaxEvents: 10, Batch: 1}})
		d.Publish(Event{Kind: KindRTEvent, RT: &RuntimeEvent{
			Kind: RTDeliver, Event: 1, Actor: 0, From: 1, To: 0, Label: label}})
		d.Publish(Event{Kind: KindRTEnd, RTSummary: &RuntimeSummary{Events: 1, Deliveries: 1}})
		if d.Events() != 3 {
			t.Fatalf("digest folded %d events, want 3", d.Events())
		}
		return d.Sum()
	}
	a, b := base("deliver x", 1), base("deliver x", 1)
	if a != b {
		t.Fatal("identical rt streams digest differently")
	}
	if base("deliver y", 1) == a {
		t.Fatal("digest ignores rt_event labels")
	}
	if base("deliver x", 2) == a {
		t.Fatal("digest ignores the rt_start seed")
	}
}

func TestDigestIgnoresPayloadlessEvents(t *testing.T) {
	d := NewDigest()
	for _, k := range []EventKind{KindRTStart, KindRTEvent, KindRTEnd, KindRunStart, KindLevel, KindSnapshot} {
		d.Publish(Event{Kind: k}) // nil payloads must not fold or panic
	}
	if d.Events() != 0 {
		t.Fatalf("payload-less events folded: %d", d.Events())
	}
}
