package obs

import (
	"strings"
	"testing"
	"time"
)

// Snapshot arithmetic is pure (the clock is an injected Elapsed value), so
// every figure is checked against hand-computed constants.

func TestSnapshotStatesPerSec(t *testing.T) {
	p := ProgressSnapshot{States: 500, Elapsed: 2 * time.Second}
	if got := p.StatesPerSec(); got != 250 {
		t.Fatalf("StatesPerSec = %v, want 250", got)
	}
	if got := (ProgressSnapshot{States: 500}).StatesPerSec(); got != 0 {
		t.Fatalf("StatesPerSec with zero elapsed = %v, want 0", got)
	}
}

func TestSnapshotRate(t *testing.T) {
	prev := ProgressSnapshot{States: 100, Elapsed: 1 * time.Second}
	cur := ProgressSnapshot{States: 400, Elapsed: 3 * time.Second}
	if got := cur.Rate(prev); got != 150 {
		t.Fatalf("Rate = %v, want 150 (Δ300 states over Δ2s)", got)
	}
	if got := prev.Rate(cur); got != 0 {
		t.Fatalf("Rate with reversed order = %v, want 0", got)
	}
	if got := cur.Rate(cur); got != 0 {
		t.Fatalf("Rate against itself = %v, want 0", got)
	}
}

func TestSnapshotUtilization(t *testing.T) {
	even := ProgressSnapshot{WorkerSteps: []uint64{50, 50, 50, 50}}
	if got := even.Utilization(); got != 1.0 {
		t.Fatalf("even Utilization = %v, want 1.0", got)
	}
	// mean(100, 50, 30, 20) = 50; max = 100; utilization = 0.5.
	skewed := ProgressSnapshot{WorkerSteps: []uint64{100, 50, 30, 20}}
	if got := skewed.Utilization(); got != 0.5 {
		t.Fatalf("skewed Utilization = %v, want 0.5", got)
	}
	if got := (ProgressSnapshot{}).Utilization(); got != 0 {
		t.Fatalf("empty Utilization = %v, want 0", got)
	}
	if got := (ProgressSnapshot{WorkerSteps: []uint64{0, 0}}).Utilization(); got != 0 {
		t.Fatalf("all-idle Utilization = %v, want 0", got)
	}
}

func TestSnapshotReductionFactor(t *testing.T) {
	p := ProgressSnapshot{RawStates: 120, States: 30}
	if got := p.ReductionFactor(); got != 4 {
		t.Fatalf("ReductionFactor = %v, want 4", got)
	}
	if got := (ProgressSnapshot{States: 30}).ReductionFactor(); got != 0 {
		t.Fatalf("ReductionFactor without raw states = %v, want 0", got)
	}
}

func TestSnapshotETA(t *testing.T) {
	// 1000 states in 2s = 500/s; 4000 remaining → 8s.
	p := ProgressSnapshot{States: 1000, Elapsed: 2 * time.Second, MaxStates: 5000}
	if got := p.ETA(); got != 8*time.Second {
		t.Fatalf("ETA = %v, want 8s", got)
	}
	done := ProgressSnapshot{States: 5000, Elapsed: time.Second, MaxStates: 5000}
	if got := done.ETA(); got != 0 {
		t.Fatalf("ETA at the limit = %v, want 0", got)
	}
	if got := (ProgressSnapshot{States: 10, Elapsed: time.Second}).ETA(); got != 0 {
		t.Fatalf("ETA without MaxStates = %v, want 0", got)
	}
}

func TestSnapshotString(t *testing.T) {
	p := ProgressSnapshot{
		States: 1000, Depth: 4, Frontier: 200, Elapsed: 2 * time.Second,
		WorkerSteps: []uint64{300, 300, 200, 200}, RawStates: 3000,
	}
	s := p.String()
	// mean(300, 300, 200, 200) = 250; max = 300; utilization ≈ 83%.
	for _, want := range []string{"states=1000", "depth=4", "frontier=200", "states/sec=500", "util=83%", "reduction=3.00x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	final := ProgressSnapshot{States: 10, Elapsed: time.Second, Final: true, Truncated: true}
	s = final.String()
	if !strings.Contains(s, "(final)") || !strings.Contains(s, "(truncated)") {
		t.Fatalf("final String() = %q, missing final/truncated markers", s)
	}
}

func TestRunConfigMode(t *testing.T) {
	cases := []struct {
		canon, por bool
		want       string
	}{
		{false, false, "full"},
		{true, false, "canon"},
		{false, true, "por"},
		{true, true, "canon+por"},
	}
	for _, c := range cases {
		if got := (RunConfig{Canon: c.canon, POR: c.por}).Mode(); got != c.want {
			t.Fatalf("Mode(canon=%v, por=%v) = %q, want %q", c.canon, c.por, got, c.want)
		}
	}
}

// TestNilSinkZeroAllocs pins the disabled-telemetry fast path: publishing
// to a nil sink must not allocate (the engine calls this on hot paths
// guarded only by the nil check).
func TestNilSinkZeroAllocs(t *testing.T) {
	snap := ProgressSnapshot{States: 1}
	ev := Event{Kind: KindLevel, Snapshot: &snap}
	allocs := testing.AllocsPerRun(1000, func() {
		Publish(nil, ev)
	})
	if allocs != 0 {
		t.Fatalf("Publish(nil, ev) allocates %v per op, want 0", allocs)
	}
}

func BenchmarkNilSinkPublish(b *testing.B) {
	snap := ProgressSnapshot{States: 1}
	ev := Event{Kind: KindLevel, Snapshot: &snap}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Publish(nil, ev)
	}
}

type countSink struct{ n int }

func (c *countSink) Publish(Event) { c.n++ }

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &countSink{}, &countSink{}
	m := MultiSink{a, b}
	for i := 0; i < 3; i++ {
		m.Publish(Event{Kind: KindSnapshot})
	}
	if a.n != 3 || b.n != 3 {
		t.Fatalf("MultiSink delivered %d/%d events, want 3/3", a.n, b.n)
	}
}
