//go:build !unix

package obs

// PeakRSS reports 0 on platforms without getrusage: peak-RSS telemetry is
// best-effort, and consumers treat 0 as "not measured".
func PeakRSS() int64 { return 0 }
