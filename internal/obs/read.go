package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReadTrace parses a JSONL trace into its manifest and event list. It
// checks only what parsing needs (a manifest first, JSON per line, a
// schema this binary understands); run ValidateTrace for the full schema
// check. Post-hoc tooling (`hundred report`, `hundred trace-diff`) reads
// traces through here.
func ReadTrace(r io.Reader) (Manifest, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var m Manifest
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return m, nil, err
		}
		return m, nil, fmt.Errorf("trace is empty (no manifest line)")
	}
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m.Kind != KindManifest {
		return m, nil, fmt.Errorf("trace line 1 is not a manifest: %s", firstOf(err, "kind %q", m.Kind))
	}
	if m.SchemaVersion > SchemaVersion {
		return m, nil, fmt.Errorf("trace schema_version %d is newer than this binary's %d; upgrade the binary",
			m.SchemaVersion, SchemaVersion)
	}
	var evs []Event
	line := 1
	for sc.Scan() {
		line++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return m, nil, fmt.Errorf("trace line %d: not a JSON event: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return m, nil, err
	}
	return m, evs, nil
}
