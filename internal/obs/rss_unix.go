//go:build unix

package obs

import "syscall"

// PeakRSS returns the process's peak resident set size in bytes, from
// getrusage(2). Linux reports ru_maxrss in KiB; the Darwin kernel reports
// bytes, which this deliberately does not special-case — the repository's
// benchmarks and CI are Linux, and an over-reported peak on a developer
// laptop is harmless telemetry. Returns 0 if the syscall fails.
func PeakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss) * 1024
}
