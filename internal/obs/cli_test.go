package obs

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSetupCLINilFastPath(t *testing.T) {
	sink, cleanup, err := SetupCLI(CLIConfig{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if sink != nil {
		t.Fatal("no flags set, want a nil Sink so the engine keeps its fast path")
	}
	cleanup() // must be a safe no-op
}

func TestSetupCLITraceAndProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var log bytes.Buffer
	sink, cleanup, err := SetupCLI(CLIConfig{
		Tool: "cli-test", Progress: true, TracePath: path, LogTo: &log,
		Seed: 42, Options: map[string]string{"workload": "toy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("flags set but sink is nil")
	}
	sink.Publish(Event{Kind: KindRTStart, RTConfig: &RuntimeConfig{
		Workload: "toy", Procs: 1, MaxEvents: 1, Batch: 1}})
	sink.Publish(Event{Kind: KindRTEnd, RTSummary: &RuntimeSummary{Quiesced: true}})
	cleanup()

	if !strings.Contains(log.String(), "trace written to") ||
		!strings.Contains(log.String(), "digest") {
		t.Errorf("cleanup did not report the trace digest; log:\n%s", log.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := ValidateTrace(f)
	if err != nil {
		t.Fatalf("trace file does not validate: %v", err)
	}
	if sum.RTRuns != 1 || sum.Tool != "cli-test" {
		t.Errorf("summary = %+v, want rt_runs=1 tool=cli-test", sum)
	}
}

func TestSetupCLIBadTracePath(t *testing.T) {
	_, _, err := SetupCLI(CLIConfig{Tool: "t", TracePath: filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")})
	if err == nil || !strings.Contains(err.Error(), "create trace") {
		t.Fatalf("unwritable trace path: got %v, want create trace error", err)
	}
}

func TestSetupCLIServe(t *testing.T) {
	var log bytes.Buffer
	sink, cleanup, err := SetupCLI(CLIConfig{Tool: "t", ServeAddr: "127.0.0.1:0", LogTo: &log})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if sink == nil {
		t.Fatal("serve flag set but sink is nil")
	}
	line := log.String()
	i := strings.Index(line, "http://")
	j := strings.Index(line, "/metrics")
	if i < 0 || j < 0 {
		t.Fatalf("setup notice missing metrics URL: %q", line)
	}
	resp, err := http.Get(line[i : j+len("/metrics")])
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
}
