package obs

import (
	"fmt"
	"io"
	"os"
)

// CLIConfig is the flag surface the commands share: -progress, -trace and
// -serve, plus manifest provenance.
type CLIConfig struct {
	// Tool names the command, recorded in trace manifests.
	Tool string
	// Progress enables human-oriented progress lines on LogTo.
	Progress bool
	// TracePath, when non-empty, writes a JSONL run trace to this file
	// ("-" for stdout).
	TracePath string
	// ServeAddr, when non-empty, serves /metrics and /debug/pprof on this
	// address for the life of the process.
	ServeAddr string
	// LogTo receives progress lines and setup notices (default os.Stderr,
	// keeping experiment tables on stdout clean).
	LogTo io.Writer
	// Seed and Options are recorded in the trace manifest.
	Seed    int64
	Options map[string]string
}

// SetupCLI assembles the sink stack a command asked for and returns it
// behind a bounded Bus, plus a cleanup function that drains the bus,
// flushes the trace (reporting its digest and any drops on LogTo), and
// stops the metrics server. When no observability flag is set it returns
// a nil Sink and a no-op cleanup, preserving the engine's nil fast path.
func SetupCLI(cfg CLIConfig) (Sink, func(), error) {
	if !cfg.Progress && cfg.TracePath == "" && cfg.ServeAddr == "" {
		return nil, func() {}, nil
	}
	logTo := cfg.LogTo
	if logTo == nil {
		logTo = os.Stderr
	}
	var (
		sinks    []Sink
		tw       *TraceWriter
		shutdown func()
	)
	cleanupPartial := func() {
		if tw != nil {
			tw.Close() //nolint:errcheck // best effort on the error path
		}
		if shutdown != nil {
			shutdown()
		}
	}
	if cfg.Progress {
		sinks = append(sinks, NewLogger(logTo, "[obs] "))
	}
	if cfg.TracePath != "" {
		m := NewManifest(cfg.Tool)
		m.Seed = cfg.Seed
		m.Options = cfg.Options
		w := io.Writer(os.Stdout)
		if cfg.TracePath != "-" {
			f, err := os.Create(cfg.TracePath)
			if err != nil {
				return nil, nil, fmt.Errorf("obs: create trace: %w", err)
			}
			w = f
		}
		var err error
		if tw, err = NewTraceWriter(w, m); err != nil {
			cleanupPartial()
			return nil, nil, err
		}
		sinks = append(sinks, tw)
	}
	if cfg.ServeAddr != "" {
		live := NewLive(nil)
		addr, stop, err := Serve(cfg.ServeAddr, live)
		if err != nil {
			cleanupPartial()
			return nil, nil, err
		}
		shutdown = stop
		fmt.Fprintf(logTo, "[obs] serving live metrics on http://%s/metrics (pprof under /debug/pprof/)\n", addr)
		sinks = append(sinks, live)
	}
	bus := NewBus(0, sinks...)
	cleanup := func() {
		bus.Close()
		if dropped := bus.Dropped(); dropped > 0 {
			fmt.Fprintf(logTo, "[obs] warning: %d telemetry events dropped (bus buffer full)\n", dropped)
		}
		if tw != nil {
			digest := tw.Digest()
			if err := tw.Close(); err != nil {
				fmt.Fprintf(logTo, "[obs] trace write failed: %v\n", err)
			} else if cfg.TracePath != "-" {
				fmt.Fprintf(logTo, "[obs] trace written to %s (digest %s)\n", cfg.TracePath, digest)
			}
		}
		if shutdown != nil {
			shutdown()
		}
	}
	return bus, cleanup, nil
}
