// Package obs is the streaming observability layer of the exploration
// engine: typed telemetry events, a lock-light bounded fan-out bus, JSONL
// run traces with a versioned schema, live progress snapshots, and an
// opt-in HTTP metrics endpoint.
//
// The engine (internal/engine) is the producer: with a Sink installed in
// its Options it publishes a run_start event, one level event per BFS
// barrier, timer-driven snapshot events from a monitor goroutine, a
// truncated event when the state limit trips, and a run_end event whose
// final snapshot totals equal the returned Stats. With no Sink installed
// the engine skips every telemetry branch — the disabled path costs one
// nil check and zero allocations (see Publish).
//
// The cardinal rule is that observing a run never changes it: sinks only
// read, events are published outside the worker hot loops (at level
// barriers and from the monitor goroutine), and the exploration Result is
// byte-identical with and without sinks attached, at any worker count.
// The engine's tests assert exactly that.
//
// Everything in this package is engine-agnostic: it imports no other
// internal package, so the engine, core, and the CLIs can all depend on it
// without cycles.
package obs

import (
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// SchemaVersion identifies the trace event layout. Policy: additive
// changes (new optional snapshot fields) do not bump the version —
// consumers must ignore unknown fields; new event *kinds* do bump it,
// because ValidateTrace rejects kinds it does not know. Renaming,
// removing, or changing the meaning of an existing field also bumps.
// Validators reject traces written by a newer schema than they understand.
//
// v1: exploration runs (run_start/level/snapshot/truncated/run_end).
// v2: adds live-runtime runs (rt_start/rt_event/rt_end) — see RuntimeConfig.
// v3: phase-attribution profiling — snapshot phases/worker_phases/expand_lat,
//     store page-cache + segment-latency fields, rt batch_lat, and per-event
//     elapsed_ns. Purely additive, so v2 readers still parse v3 traces; the
//     version is bumped deliberately (an exception to the additive rule) so
//     post-hoc tooling like `hundred report` can tell whether a missing
//     phase block means "profiling off" (v3) or "producer predates
//     profiling" (v2).
const SchemaVersion = 3

// EventKind discriminates trace events.
type EventKind string

const (
	// KindManifest tags the first line of a JSONL trace (a Manifest, not
	// an Event; listed here so validators can name it).
	KindManifest EventKind = "manifest"
	// KindRunStart opens one exploration run and carries its RunConfig.
	KindRunStart EventKind = "run_start"
	// KindLevel is published at every BFS level barrier with a
	// point-in-time snapshot. Its counter fields are worker-count
	// invariant (the engine's determinism contract extends to them), so
	// level events are the replay-comparable skeleton of a trace.
	KindLevel EventKind = "level"
	// KindSnapshot is a timer-driven live snapshot (worker utilization,
	// throughput). Timing-dependent: excluded from digests.
	KindSnapshot EventKind = "snapshot"
	// KindTruncated reports that the state limit cut the run short.
	KindTruncated EventKind = "truncated"
	// KindRunEnd closes a run; its snapshot is final (totals equal the
	// run's Stats).
	KindRunEnd EventKind = "run_end"

	// KindRTStart opens one live adversarial runtime run (internal/runtime)
	// and carries its RuntimeConfig. Runtime runs and exploration runs may
	// share a trace file, sequentially, never nested.
	KindRTStart EventKind = "rt_start"
	// KindRTEvent is one scheduled runtime action: a message delivery, a
	// local protocol step, an adversary drop/duplication, or a crash or
	// restart injection. The stream of rt_events under a fixed seed and
	// config is deterministic at any GOMAXPROCS — it is the replayable
	// record the refinement oracle embeds into the explored state space.
	KindRTEvent EventKind = "rt_event"
	// KindRTEnd closes a runtime run with its RuntimeSummary totals.
	KindRTEnd EventKind = "rt_end"
)

// Event is one telemetry record. Exactly one payload field is set,
// according to Kind. Run and Seq are stamped by TraceWriter, not by the
// producer.
type Event struct {
	Kind EventKind `json:"kind"`
	// Run numbers the exploration run within a trace file (1-based),
	// stamped by TraceWriter.
	Run int `json:"run,omitempty"`
	// Seq orders events within a trace file (1-based, strictly
	// increasing), stamped by TraceWriter.
	Seq uint64 `json:"seq,omitempty"`
	// ElapsedNs is the monotonic time since the trace writer was created,
	// stamped by TraceWriter under its write lock — so it is non-decreasing
	// across a trace file by construction (ValidateTrace checks), and
	// reports can order and window events without trusting wall clocks.
	// Timing, not structure: excluded from trace digests.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	// Config accompanies run_start.
	Config *RunConfig `json:"config,omitempty"`
	// Snapshot accompanies level, snapshot, truncated and run_end.
	Snapshot *ProgressSnapshot `json:"snapshot,omitempty"`
	// RTConfig accompanies rt_start.
	RTConfig *RuntimeConfig `json:"rt_config,omitempty"`
	// RT accompanies rt_event.
	RT *RuntimeEvent `json:"rt,omitempty"`
	// RTSummary accompanies rt_end.
	RTSummary *RuntimeSummary `json:"rt_summary,omitempty"`
}

// RunConfig describes one exploration run, published with run_start.
type RunConfig struct {
	// Workers is the resolved worker count.
	Workers int `json:"workers"`
	// MaxStates is the resolved state limit.
	MaxStates int `json:"max_states"`
	// Inits is the number of deduplicated initial states.
	Inits int `json:"inits"`
	// Canon reports that a symmetry canonicalizer is installed.
	Canon bool `json:"canon,omitempty"`
	// POR reports that an independence relation is installed.
	POR bool `json:"por,omitempty"`
	// Store names the state-store backend ("mem", "spill", "bitstate").
	// Empty in traces from before the pluggable store (reads as "mem").
	Store string `json:"store,omitempty"`
	// MaxStoreBytes is the spill backend's resident-payload budget.
	MaxStoreBytes int64 `json:"max_store_bytes,omitempty"`
	// Sched names the discovery scheduler ("barrier" or "steal"; empty in
	// traces from before the work-stealing scheduler, reads as "barrier").
	// Scheduling, not structure: excluded from trace digests, like Workers.
	Sched string `json:"sched,omitempty"`
}

// Mode names the reduction stack of a run: "full", "canon", "por" or
// "canon+por" — the same vocabulary engine.Differential uses.
func (c RunConfig) Mode() string {
	switch {
	case c.Canon && c.POR:
		return "canon+por"
	case c.Canon:
		return "canon"
	case c.POR:
		return "por"
	}
	return "full"
}

// ProgressSnapshot is a point-in-time view of one exploration run. Level
// and run_end snapshots carry barrier-accurate (worker-count-invariant)
// counters; timer-driven snapshots carry live values that may be mid-level.
type ProgressSnapshot struct {
	// Elapsed is the time since the run started. Serialized in
	// nanoseconds (Go's time.Duration JSON form).
	Elapsed time.Duration `json:"elapsed"`
	// States is the number of distinct states interned so far.
	States int `json:"states"`
	// Edges is the number of recorded transitions (final snapshots only;
	// zero mid-run — edge arenas are per-worker until replay).
	Edges int `json:"edges,omitempty"`
	// Depth is the number of BFS levels completed.
	Depth int `json:"depth"`
	// Frontier is the size of the level currently being expanded (zero on
	// final snapshots: the frontier is empty when the run ends).
	Frontier int `json:"frontier,omitempty"`
	// PeakFrontier is the largest level seen so far.
	PeakFrontier int `json:"peak_frontier,omitempty"`
	// Expansions counts ExpandFunc calls so far.
	Expansions uint64 `json:"expansions"`
	// DedupHits counts generated successors that were already known.
	DedupHits uint64 `json:"dedup_hits"`
	// CanonHits counts states remapped to a different orbit
	// representative (canonicalizer runs only).
	CanonHits uint64 `json:"canon_hits,omitempty"`
	// RawStates is the distinct raw pre-canonicalization state count
	// (final snapshots of canonicalizer runs only; unioning the
	// per-worker sets mid-run would not be lock-light).
	RawStates int `json:"raw_states,omitempty"`
	// AmpleStates and DeferredActions are the POR counters.
	AmpleStates     uint64 `json:"ample_states,omitempty"`
	DeferredActions uint64 `json:"deferred_actions,omitempty"`
	// WorkerSteps[i] is the number of states worker i has expanded.
	WorkerSteps []uint64 `json:"worker_steps,omitempty"`
	// MaxStates echoes the run's state limit, for ETA arithmetic.
	MaxStates int `json:"max_states,omitempty"`
	// Truncated reports that the state limit cut the run short.
	Truncated bool `json:"truncated,omitempty"`
	// Final marks the run_end snapshot: totals equal the run's Stats.
	Final bool `json:"final,omitempty"`

	// Work-stealing scheduler gauges (zero under the barrier scheduler).
	// Scheduling-dependent, excluded from trace digests.

	// Steals counts work batches taken from another worker's deque.
	Steals uint64 `json:"steals,omitempty"`
	// HandoffBatches counts batched frontier forwards between shard-owning
	// workers.
	HandoffBatches uint64 `json:"handoff_batches,omitempty"`
	// QueueOccupancy is the momentary total of states parked in worker
	// deques (live snapshots only; zero at barriers and run end).
	QueueOccupancy uint64 `json:"queue_occupancy,omitempty"`

	// State-store telemetry (absent in traces from before the pluggable
	// store). Spill byte/segment counters depend on page layout, which
	// depends on scheduling: like WorkerSteps and Elapsed they are NOT
	// worker-count invariant and are excluded from trace digests.

	// StoreBytesInRAM is the store's resident footprint estimate.
	StoreBytesInRAM int64 `json:"store_bytes_in_ram,omitempty"`
	// StoreBytesSpilled is the raw payload bytes written to segment files.
	StoreBytesSpilled int64 `json:"store_bytes_spilled,omitempty"`
	// StoreSegments is the number of segment files written.
	StoreSegments int `json:"store_segments,omitempty"`
	// StoreSegmentReads counts page fetches served from disk.
	StoreSegmentReads uint64 `json:"store_segment_reads,omitempty"`
	// StoreCollisionConfirms counts fingerprint hits confirmed against a
	// spilled payload.
	StoreCollisionConfirms uint64 `json:"store_collision_confirms,omitempty"`
	// StoreLossy flags a lossy (bitstate) store: state counts are lower
	// bounds and any verdict is "no violation found", never impossibility.
	StoreLossy bool `json:"store_lossy,omitempty"`
	// StorePageCacheHits counts spilled-payload reads served from the
	// store's decompressed-page cache (spill backend only). Together with
	// StoreSegmentReads (the misses) it gives the page-cache hit rate.
	StorePageCacheHits uint64 `json:"store_page_cache_hits,omitempty"`
	// StoreReadLat and StoreWriteLat are the spill backend's segment I/O
	// latency histograms: per-page decompress-read and compress-write.
	StoreReadLat  *HistSnap `json:"store_read_lat,omitempty"`
	StoreWriteLat *HistSnap `json:"store_write_lat,omitempty"`
	// PeakRSSBytes is the process's peak resident set size, sampled at
	// publish time. Process-wide and monotone, so it bounds every run in a
	// multi-run trace from above; zero on platforms without rusage.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`

	// Phase-attribution profile (schema v3, present when the engine runs
	// with profiling enabled — any Stats or Sink installed). Pure timing:
	// excluded from trace digests, so worker-count invariance holds.

	// Phases is the run-wide aggregate across workers plus the
	// coordinator-only phases (store I/O, replay).
	Phases *Phases `json:"phases,omitempty"`
	// WorkerPhases[i] is worker i's own profile (final snapshots only).
	WorkerPhases []Phases `json:"worker_phases,omitempty"`
	// ExpandLat is the sampled per-state expansion latency histogram.
	ExpandLat *HistSnap `json:"expand_lat,omitempty"`
}

// Phases attributes a run's worker time to coarse engine phases, in
// nanoseconds. The coarse counters (Expand through Idle) are exact wall
// time measured at phase transitions; the Sample* counters are a
// 1-in-64-states sampling profile that splits expansion time into
// canonicalization and hash+intern without per-emission clock reads —
// scale them against each other (CanonFrac, InternFrac), not against the
// exact counters. All fields are timing, never structure: two runs of the
// same system agree on everything else and may differ arbitrarily here.
type Phases struct {
	// ExpandNs is time spent inside worker expansion loops: ExpandFunc
	// calls plus per-state bookkeeping (chunk claiming, span recording,
	// dedup, canon, intern — the sampled counters below split these out).
	ExpandNs int64 `json:"expand_ns,omitempty"`
	// BarrierWaitNs is time waiting at level barriers: the coordinator's
	// fork/join wait, and epoch-pool workers waiting for the next job.
	BarrierWaitNs int64 `json:"barrier_wait_ns,omitempty"`
	// StoreIONs is coordinator time in store maintenance (segment spill
	// between levels). Worker-side segment reads during interning count as
	// expand time here; the store's own latency histograms isolate them.
	StoreIONs int64 `json:"store_io_ns,omitempty"`
	// ReplayNs is the sequential deterministic-replay pass that assigns
	// final IDs and edges.
	ReplayNs int64 `json:"replay_ns,omitempty"`
	// StealNs is work-stealing time: probing and claiming other workers'
	// deques (steal scheduler only).
	StealNs int64 `json:"steal_ns,omitempty"`
	// HandoffNs is time processing cross-shard handoff batches (steal
	// scheduler only).
	HandoffNs int64 `json:"handoff_ns,omitempty"`
	// IdleNs is time parked waiting for work or termination (steal
	// scheduler only).
	IdleNs int64 `json:"idle_ns,omitempty"`

	// SampledStates counts the states profiled at fine grain (1 in 64).
	SampledStates uint64 `json:"sampled_states,omitempty"`
	// SampleExpandNs is the sampled states' total expansion time;
	// SampleCanonNs and SampleInternNs are the canonicalization and
	// hash+intern shares within it.
	SampleExpandNs int64 `json:"sample_expand_ns,omitempty"`
	SampleCanonNs  int64 `json:"sample_canon_ns,omitempty"`
	SampleInternNs int64 `json:"sample_intern_ns,omitempty"`
}

// Add accumulates o into p, field-wise.
func (p *Phases) Add(o Phases) {
	p.ExpandNs += o.ExpandNs
	p.BarrierWaitNs += o.BarrierWaitNs
	p.StoreIONs += o.StoreIONs
	p.ReplayNs += o.ReplayNs
	p.StealNs += o.StealNs
	p.HandoffNs += o.HandoffNs
	p.IdleNs += o.IdleNs
	p.SampledStates += o.SampledStates
	p.SampleExpandNs += o.SampleExpandNs
	p.SampleCanonNs += o.SampleCanonNs
	p.SampleInternNs += o.SampleInternNs
}

// Zero reports whether no phase time has been recorded.
func (p Phases) Zero() bool { return p == Phases{} }

// TotalNs is the sum of the exact (non-sampled) phase counters.
func (p Phases) TotalNs() int64 {
	return p.ExpandNs + p.BarrierWaitNs + p.StoreIONs + p.ReplayNs +
		p.StealNs + p.HandoffNs + p.IdleNs
}

// CanonFrac estimates the fraction of expansion time spent canonicalizing,
// from the sampling profile. Zero when nothing was sampled.
func (p Phases) CanonFrac() float64 {
	if p.SampleExpandNs <= 0 {
		return 0
	}
	return float64(p.SampleCanonNs) / float64(p.SampleExpandNs)
}

// InternFrac estimates the fraction of expansion time spent hashing and
// interning successors, from the sampling profile.
func (p Phases) InternFrac() float64 {
	if p.SampleExpandNs <= 0 {
		return 0
	}
	return float64(p.SampleInternNs) / float64(p.SampleExpandNs)
}

// String renders the profile as one log line: exact phases with their
// share of TotalNs, then the sampled canon/intern split.
func (p Phases) String() string {
	total := p.TotalNs()
	if total <= 0 {
		return ""
	}
	var b strings.Builder
	frac := func(name string, ns int64) {
		if ns > 0 {
			fmt.Fprintf(&b, " %s=%s(%.0f%%)", name, time.Duration(ns).Round(time.Millisecond), 100*float64(ns)/float64(total))
		}
	}
	frac("expand", p.ExpandNs)
	frac("barrier", p.BarrierWaitNs)
	frac("store_io", p.StoreIONs)
	frac("replay", p.ReplayNs)
	frac("steal", p.StealNs)
	frac("handoff", p.HandoffNs)
	frac("idle", p.IdleNs)
	if p.SampledStates > 0 {
		fmt.Fprintf(&b, " ~canon=%.0f%% ~intern=%.0f%% (n=%d sampled)",
			100*p.CanonFrac(), 100*p.InternFrac(), p.SampledStates)
	}
	return strings.TrimSpace(b.String())
}

// StatesPerSec is the run-average throughput, States / Elapsed.
func (p ProgressSnapshot) StatesPerSec() float64 {
	if secs := p.Elapsed.Seconds(); secs > 0 {
		return float64(p.States) / secs
	}
	return 0
}

// Rate is the windowed throughput between prev and p: Δstates / Δelapsed.
// It is the instantaneous figure a live display wants (a stuck frontier
// shows up here long before it dents the run average). Zero when the
// snapshots are not ordered or coincide.
func (p ProgressSnapshot) Rate(prev ProgressSnapshot) float64 {
	dt := (p.Elapsed - prev.Elapsed).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(p.States-prev.States) / dt
}

// Utilization is the worker-balance figure mean(WorkerSteps)/max(WorkerSteps),
// in (0, 1]: 1.0 means the frontier sharded perfectly evenly, lower values
// mean some workers idled. Zero when no worker has stepped yet.
func (p ProgressSnapshot) Utilization() float64 {
	var max, sum uint64
	for _, s := range p.WorkerSteps {
		sum += s
		if s > max {
			max = s
		}
	}
	if max == 0 {
		return 0
	}
	return float64(sum) / float64(len(p.WorkerSteps)) / float64(max)
}

// ReductionFactor is the live orbit reduction RawStates / States (zero
// unless RawStates is populated — final snapshots of canonicalizer runs).
func (p ProgressSnapshot) ReductionFactor() float64 {
	if p.RawStates == 0 || p.States == 0 {
		return 0
	}
	return float64(p.RawStates) / float64(p.States)
}

// ETA extrapolates the time remaining until the run hits MaxStates at the
// run-average rate — an upper bound on the time to completion, since most
// runs exhaust their space below the limit. Zero when MaxStates is unset,
// already reached, or no rate is measurable yet.
func (p ProgressSnapshot) ETA() time.Duration {
	rate := p.StatesPerSec()
	if p.MaxStates <= 0 || p.States >= p.MaxStates || rate <= 0 {
		return 0
	}
	return time.Duration(float64(p.MaxStates-p.States) / rate * float64(time.Second))
}

// String renders the snapshot as one log line.
func (p ProgressSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d depth=%d", p.States, p.Depth)
	if p.Frontier > 0 {
		fmt.Fprintf(&b, " frontier=%d", p.Frontier)
	}
	fmt.Fprintf(&b, " %s states/sec=%.0f", p.Elapsed.Round(time.Millisecond), p.StatesPerSec())
	if len(p.WorkerSteps) > 1 {
		fmt.Fprintf(&b, " util=%.0f%%", 100*p.Utilization())
	}
	if p.RawStates > 0 {
		fmt.Fprintf(&b, " raw=%d reduction=%.2fx", p.RawStates, p.ReductionFactor())
	}
	if p.DeferredActions > 0 {
		fmt.Fprintf(&b, " deferred=%d", p.DeferredActions)
	}
	if eta := p.ETA(); eta > 0 && !p.Final {
		fmt.Fprintf(&b, " eta(max)=%s", eta.Round(time.Second))
	}
	if p.Truncated {
		b.WriteString(" (truncated)")
	}
	if p.Final {
		b.WriteString(" (final)")
	}
	return b.String()
}

// Sink consumes telemetry events. Publish must be safe for concurrent
// calls (the engine publishes from the coordinator and from a monitor
// goroutine) and must not block the caller for long: sinks that fan out to
// slow consumers should buffer and drop (see Bus), never stall the
// exploration.
type Sink interface {
	Publish(ev Event)
}

// Publish forwards ev to sink, tolerating a nil sink. The nil branch is
// the engine's disabled-telemetry fast path: one comparison, zero
// allocations (asserted by TestNilSinkZeroAllocs).
func Publish(sink Sink, ev Event) {
	if sink != nil {
		sink.Publish(ev)
	}
}

// MultiSink fans every event out to each member, synchronously and in
// order.
type MultiSink []Sink

// Publish implements Sink.
func (m MultiSink) Publish(ev Event) {
	for _, s := range m {
		s.Publish(ev)
	}
}

// VCSVersion reports the build's VCS revision ("git describe"-grade
// provenance for run manifests): the short commit hash, "+dirty" when the
// working tree was modified, or "unknown" for builds without VCS stamping
// (go run from a non-repo, test binaries).
func VCSVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
