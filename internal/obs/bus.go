package obs

import (
	"sync"
	"sync/atomic"
)

// DefaultBusBuffer is the Bus channel capacity when NewBus is given a
// non-positive buffer size.
const DefaultBusBuffer = 1024

// Bus is the bounded-buffer fan-out at the center of the layer: producers
// Publish without blocking (events beyond the buffer are dropped and
// counted, never queued unboundedly), and a single drain goroutine
// delivers buffered events to every subscribed sink in publication order.
//
// The asymmetry is deliberate: the exploration engine must never stall on
// a slow consumer (a wedged trace file, a disconnected metrics scraper),
// so backpressure turns into counted drops on the producer side while
// consumers see a strictly ordered, possibly gappy stream. Level and
// run_end events carry cumulative counters, so a gap loses resolution, not
// accounting.
type Bus struct {
	// mu guards the closed flag against the channel close: Publish holds
	// it shared for the duration of its non-blocking send, so Close can
	// never close the channel out from under an in-flight send.
	mu      sync.RWMutex
	closed  bool
	ch      chan Event
	sinks   []Sink
	dropped atomic.Uint64
	done    chan struct{}
	once    sync.Once
}

// NewBus starts a bus draining into sinks. buffer <= 0 selects
// DefaultBusBuffer. Close the bus to flush and stop the drain goroutine.
func NewBus(buffer int, sinks ...Sink) *Bus {
	if buffer <= 0 {
		buffer = DefaultBusBuffer
	}
	b := &Bus{
		ch:    make(chan Event, buffer),
		sinks: sinks,
		done:  make(chan struct{}),
	}
	go b.drain()
	return b
}

func (b *Bus) drain() {
	defer close(b.done)
	for ev := range b.ch {
		for _, s := range b.sinks {
			s.Publish(ev)
		}
	}
}

// Publish implements Sink: it enqueues ev if the buffer has room and
// otherwise drops it, incrementing the drop counter. Events published
// after Close are dropped, never delivered.
func (b *Bus) Publish(ev Event) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		b.dropped.Add(1)
		return
	}
	select {
	case b.ch <- ev:
	default:
		b.dropped.Add(1)
	}
}

// Dropped reports how many events were discarded because the buffer was
// full (or the bus closed).
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// Close delivers every already-buffered event to the sinks, then stops
// the drain goroutine. Safe to call more than once, and safe against
// concurrent Publish calls (which turn into counted drops).
func (b *Bus) Close() {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		close(b.ch)
		b.mu.Unlock()
		<-b.done
	})
}
