package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// Digest folds the deterministic skeleton of an event stream — level
// events, truncation, and final run_end totals — into a short hex
// fingerprint. Two runs of the same system under the same mode produce
// the same digest at any worker count and any snapshot period: the hashed
// fields are exactly the worker-count-invariant counters the engine's
// determinism contract covers, and timer-driven snapshot events (plus
// timing fields like Elapsed and WorkerSteps) are excluded.
//
// That makes digests replay-comparable across machines: when two modes of
// engine.Differential diverge, their digests name which JSONL traces to
// diff, and a digest mismatch across worker counts within one mode is
// itself a determinism violation.
type Digest struct {
	mu sync.Mutex
	h  hash.Hash
	n  int
}

// NewDigest returns an empty digest; it implements Sink and can be
// attached directly to an exploration or subscribed to a Bus.
func NewDigest() *Digest {
	return &Digest{h: sha256.New()}
}

// DigestLine renders ev's contribution to the trace digest, or ("",
// false) for events the digest ignores (timer snapshots, manifest lines,
// payload-less events). The rendered line names exactly the
// worker-count-invariant fields — nothing timing- or scheduling-dependent
// — which is why `hundred trace-diff` can compare two traces line-by-line
// to localize the first structural divergence behind a digest mismatch.
func DigestLine(ev Event) (string, bool) {
	switch ev.Kind {
	case KindRunStart:
		// Workers is scheduling, not structure; hash only the mode shape.
		if c := ev.Config; c != nil {
			return fmt.Sprintf("start mode=%s max=%d inits=%d\n", c.Mode(), c.MaxStates, c.Inits), true
		}
	case KindLevel, KindTruncated, KindRunEnd:
		if s := ev.Snapshot; s != nil {
			return fmt.Sprintf("%s states=%d edges=%d depth=%d frontier=%d peak=%d exp=%d dedup=%d canon=%d raw=%d ample=%d defer=%d trunc=%v\n",
				ev.Kind, s.States, s.Edges, s.Depth, s.Frontier, s.PeakFrontier,
				s.Expansions, s.DedupHits, s.CanonHits, s.RawStates,
				s.AmpleStates, s.DeferredActions, s.Truncated), true
		}
	case KindRTStart:
		// Every config field shapes the adversary's RNG stream, so all of
		// them are structure.
		if c := ev.RTConfig; c != nil {
			return fmt.Sprintf("rt_start workload=%s procs=%d seed=%d max=%d batch=%d drop=%g dup=%g delay=%d crash=%g restart=%d\n",
				c.Workload, c.Procs, c.Seed, c.MaxEvents, c.Batch,
				c.Drop, c.Dup, c.Delay, c.Crash, c.RestartAfter), true
		}
	case KindRTEvent:
		// The whole rt_event stream is deterministic under a fixed seed, so
		// every field folds in — this is what makes runtime digests the
		// replay-identity check at any GOMAXPROCS.
		if e := ev.RT; e != nil {
			return fmt.Sprintf("rt_event %d %s actor=%d from=%d to=%d label=%q\n",
				e.Event, e.Kind, e.Actor, e.From, e.To, e.Label), true
		}
	case KindRTEnd:
		if s := ev.RTSummary; s != nil {
			return fmt.Sprintf("rt_end events=%d deliver=%d local=%d drop=%d dup=%d crash=%d restart=%d pending=%d halted=%d stopped=%v quiesced=%v stalled=%v budget=%v\n",
				s.Events, s.Deliveries, s.LocalSteps, s.Drops, s.Dups,
				s.Crashes, s.Restarts, s.Pending, s.Halted,
				s.Stopped, s.Quiesced, s.Stalled, s.Budget), true
		}
	}
	return "", false
}

// Publish implements Sink, folding in the deterministic events.
func (d *Digest) Publish(ev Event) {
	line, ok := DigestLine(ev)
	if !ok {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.h.Write([]byte(line))
	d.n++
}

// Events reports how many events have been folded in.
func (d *Digest) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Sum returns the 16-hex-digit digest of the events folded in so far.
func (d *Digest) Sum() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	sum := d.h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
