package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// Digest folds the deterministic skeleton of an event stream — level
// events, truncation, and final run_end totals — into a short hex
// fingerprint. Two runs of the same system under the same mode produce
// the same digest at any worker count and any snapshot period: the hashed
// fields are exactly the worker-count-invariant counters the engine's
// determinism contract covers, and timer-driven snapshot events (plus
// timing fields like Elapsed and WorkerSteps) are excluded.
//
// That makes digests replay-comparable across machines: when two modes of
// engine.Differential diverge, their digests name which JSONL traces to
// diff, and a digest mismatch across worker counts within one mode is
// itself a determinism violation.
type Digest struct {
	mu sync.Mutex
	h  hash.Hash
	n  int
}

// NewDigest returns an empty digest; it implements Sink and can be
// attached directly to an exploration or subscribed to a Bus.
func NewDigest() *Digest {
	return &Digest{h: sha256.New()}
}

// Publish implements Sink, folding in the deterministic events.
func (d *Digest) Publish(ev Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch ev.Kind {
	case KindRunStart:
		// Workers is scheduling, not structure; hash only the mode shape.
		if c := ev.Config; c != nil {
			fmt.Fprintf(d.h, "start mode=%s max=%d inits=%d\n", c.Mode(), c.MaxStates, c.Inits)
			d.n++
		}
	case KindLevel, KindTruncated, KindRunEnd:
		if s := ev.Snapshot; s != nil {
			fmt.Fprintf(d.h, "%s states=%d edges=%d depth=%d frontier=%d peak=%d exp=%d dedup=%d canon=%d raw=%d ample=%d defer=%d trunc=%v\n",
				ev.Kind, s.States, s.Edges, s.Depth, s.Frontier, s.PeakFrontier,
				s.Expansions, s.DedupHits, s.CanonHits, s.RawStates,
				s.AmpleStates, s.DeferredActions, s.Truncated)
			d.n++
		}
	case KindRTStart:
		// Every config field shapes the adversary's RNG stream, so all of
		// them are structure.
		if c := ev.RTConfig; c != nil {
			fmt.Fprintf(d.h, "rt_start workload=%s procs=%d seed=%d max=%d batch=%d drop=%g dup=%g delay=%d crash=%g restart=%d\n",
				c.Workload, c.Procs, c.Seed, c.MaxEvents, c.Batch,
				c.Drop, c.Dup, c.Delay, c.Crash, c.RestartAfter)
			d.n++
		}
	case KindRTEvent:
		// The whole rt_event stream is deterministic under a fixed seed, so
		// every field folds in — this is what makes runtime digests the
		// replay-identity check at any GOMAXPROCS.
		if e := ev.RT; e != nil {
			fmt.Fprintf(d.h, "rt_event %d %s actor=%d from=%d to=%d label=%q\n",
				e.Event, e.Kind, e.Actor, e.From, e.To, e.Label)
			d.n++
		}
	case KindRTEnd:
		if s := ev.RTSummary; s != nil {
			fmt.Fprintf(d.h, "rt_end events=%d deliver=%d local=%d drop=%d dup=%d crash=%d restart=%d pending=%d halted=%d stopped=%v quiesced=%v stalled=%v budget=%v\n",
				s.Events, s.Deliveries, s.LocalSteps, s.Drops, s.Dups,
				s.Crashes, s.Restarts, s.Pending, s.Halted,
				s.Stopped, s.Quiesced, s.Stalled, s.Budget)
			d.n++
		}
	}
}

// Events reports how many events have been folded in.
func (d *Digest) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Sum returns the 16-hex-digit digest of the events folded in so far.
func (d *Digest) Sum() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	sum := d.h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
