package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite buckets of a Hist. Bucket i covers
// durations up to HistBound(i) = 256ns << i, so the ladder spans 256ns to
// ~8.6s in powers of two; one extra overflow bucket catches everything
// beyond. The bounds are fixed at compile time — every Hist in the process
// shares them — which is what makes snapshots mergeable by plain
// element-wise addition and renderable as one Prometheus histogram.
const HistBuckets = 26

// HistBound returns the inclusive upper bound, in nanoseconds, of finite
// bucket i.
func HistBound(i int) int64 { return 256 << i }

// Hist is a fixed-bucket latency histogram safe for concurrent use:
// Observe is lock-free, allocation-free (asserted by TestHistObserveZeroAllocs)
// and cheap enough for I/O paths; Snapshot extracts a mergeable value
// copy. The zero value is ready to use. Writers and snapshotters may race
// benignly: a snapshot taken mid-Observe may miss the in-flight sample,
// never corrupt a count.
type Hist struct {
	counts [HistBuckets + 1]atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// Observe records one duration in nanoseconds (negative values clamp to
// zero).
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histBucket(ns)].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// histBucket maps a non-negative duration to its bucket index: the
// smallest i with ns <= 256<<i, or the overflow bucket.
func histBucket(ns int64) int {
	if ns <= 256 {
		return 0
	}
	b := bits.Len64(uint64(ns-1) >> 8)
	if b > HistBuckets {
		return HistBuckets
	}
	return b
}

// Snapshot extracts the histogram's current state as a value.
func (h *Hist) Snapshot() HistSnap {
	s := HistSnap{SumNs: h.sum.Load(), Count: h.n.Load()}
	last := -1
	var counts [HistBuckets + 1]uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		if counts[i] > 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Counts = append([]uint64(nil), counts[:last+1]...)
	}
	return s
}

// HistSnap is a point-in-time copy of a Hist: per-bucket counts (trailing
// zero buckets trimmed; index i is the HistBound(i) bucket, index
// HistBuckets the overflow bucket), the sum of observed nanoseconds, and
// the observation count. The JSON form is what snapshot events and run
// reports carry.
type HistSnap struct {
	Counts []uint64 `json:"counts,omitempty"`
	SumNs  int64    `json:"sum_ns,omitempty"`
	Count  uint64   `json:"count,omitempty"`
}

// Add merges o into s (same fixed bucket bounds, so element-wise).
func (s *HistSnap) Add(o HistSnap) {
	if len(o.Counts) > len(s.Counts) {
		s.Counts = append(s.Counts, make([]uint64, len(o.Counts)-len(s.Counts))...)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.SumNs += o.SumNs
	s.Count += o.Count
}

// MeanNs is the average observed duration in nanoseconds (0 when empty).
func (s HistSnap) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / int64(s.Count)
}

// QuantileNs returns an upper bound on the q-quantile (q in [0,1]): the
// bound of the bucket holding the q-th observation. Overflow-bucket hits
// report the largest finite bound. 0 when the histogram is empty.
func (s HistSnap) QuantileNs(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if rank < cum {
			if i >= HistBuckets {
				i = HistBuckets - 1
			}
			return HistBound(i)
		}
	}
	return HistBound(HistBuckets - 1)
}

// String renders the snapshot's summary figures.
func (s HistSnap) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s",
		s.Count,
		time.Duration(s.MeanNs()).Round(time.Microsecond),
		time.Duration(s.QuantileNs(0.5)).Round(time.Microsecond),
		time.Duration(s.QuantileNs(0.99)).Round(time.Microsecond))
}
