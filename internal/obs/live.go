package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Live is a Sink that retains the latest state of the event stream for
// the -serve debug endpoint: the current run's config, the most recent
// snapshot, and expvar-style event counters. It is the read model behind
// /metrics; Publish only swaps pointers under a short lock, so it is safe
// to subscribe directly (no Bus needed) even on hot runs.
type Live struct {
	mu        sync.RWMutex
	manifest  *Manifest
	config    *RunConfig
	last      *ProgressSnapshot
	final     *ProgressSnapshot
	runs      int
	events    uint64
	snapshots uint64
	rtRuns    int
	rtEvents  map[string]uint64
	rtFinal   *RuntimeSummary
	started   time.Time
}

// NewLive returns a Live sink, optionally carrying the producer's
// manifest (shown by /metrics for provenance).
func NewLive(m *Manifest) *Live {
	return &Live{manifest: m, started: time.Now()}
}

// Publish implements Sink.
func (l *Live) Publish(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events++
	switch ev.Kind {
	case KindRunStart:
		l.runs++
		l.config = ev.Config
		l.last, l.final = nil, nil
	case KindSnapshot:
		l.snapshots++
		l.last = ev.Snapshot
	case KindLevel, KindTruncated:
		l.last = ev.Snapshot
	case KindRunEnd:
		l.last, l.final = ev.Snapshot, ev.Snapshot
	case KindRTStart:
		l.rtRuns++
	case KindRTEvent:
		if ev.RT != nil {
			if l.rtEvents == nil {
				l.rtEvents = make(map[string]uint64)
			}
			l.rtEvents[ev.RT.Kind]++
		}
	case KindRTEnd:
		l.rtFinal = ev.RTSummary
	}
}

// liveMetrics is the /metrics JSON document.
type liveMetrics struct {
	SchemaVersion int               `json:"schema_version"`
	Manifest      *Manifest         `json:"manifest,omitempty"`
	UptimeSec     float64           `json:"uptime_sec"`
	Runs          int               `json:"runs"`
	Events        uint64            `json:"events"`
	Snapshots     uint64            `json:"snapshots"`
	Config        *RunConfig        `json:"config,omitempty"`
	Snapshot      *ProgressSnapshot `json:"snapshot,omitempty"`
	Final         *ProgressSnapshot `json:"final,omitempty"`
	StatesPerSec  float64           `json:"states_per_sec,omitempty"`
	Utilization   float64           `json:"utilization,omitempty"`
	RTRuns        int               `json:"rt_runs,omitempty"`
	RTEvents      map[string]uint64 `json:"rt_events,omitempty"`
	RTFinal       *RuntimeSummary   `json:"rt_final,omitempty"`
}

// wantsPrometheus decides the /metrics representation: Prometheus text for
// scrapers (an Accept header naming text/plain or OpenMetrics, as
// prometheus sends, or an explicit ?format=prometheus), JSON otherwise —
// so curl and browsers (Accept: */*) keep the original document.
func wantsPrometheus(r *http.Request) bool {
	if r == nil {
		return false
	}
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// ServeHTTP implements http.Handler: the latest counters, as the
// Prometheus text exposition format when the scraper asks for it (see
// wantsPrometheus and WritePrometheus) and as JSON by default. Both render
// from a consistent copy taken under the read lock, so scraping mid-run is
// safe however hot the producer is.
func (l *Live) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		l.WritePrometheus(w)
		return
	}
	m := l.metrics()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m) //nolint:errcheck // best-effort debug endpoint
}

// metrics assembles the current liveMetrics document under the read lock.
func (l *Live) metrics() liveMetrics {
	l.mu.RLock()
	m := liveMetrics{
		SchemaVersion: SchemaVersion,
		Manifest:      l.manifest,
		UptimeSec:     time.Since(l.started).Seconds(),
		Runs:          l.runs,
		Events:        l.events,
		Snapshots:     l.snapshots,
		Config:        l.config,
		Snapshot:      l.last,
		Final:         l.final,
		RTRuns:        l.rtRuns,
		RTFinal:       l.rtFinal,
	}
	if len(l.rtEvents) > 0 {
		m.RTEvents = make(map[string]uint64, len(l.rtEvents))
		for k, v := range l.rtEvents {
			m.RTEvents[k] = v
		}
	}
	l.mu.RUnlock()
	if m.Snapshot != nil {
		m.StatesPerSec = m.Snapshot.StatesPerSec()
		m.Utilization = m.Snapshot.Utilization()
	}
	return m
}

// Handler returns the -serve debug mux: /metrics (the Live JSON document)
// plus the standard pprof profile endpoints under /debug/pprof/.
func Handler(l *Live) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", l)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "exploration telemetry\n  /metrics      live counters (JSON; Prometheus text with Accept: text/plain or ?format=prometheus)\n  /debug/pprof/ profiles\n")
	})
	return mux
}

// Serve listens on addr (e.g. ":6060", or ":0" for an ephemeral port) and
// serves Handler(l) in a background goroutine. It returns the bound
// address and a shutdown function.
func Serve(addr string, l *Live) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(l)}
	go srv.Serve(ln) //nolint:errcheck // closed by shutdown below
	return ln.Addr().String(), func() { srv.Close() }, nil
}
