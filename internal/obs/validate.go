package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary is ValidateTrace's account of a well-formed trace.
type TraceSummary struct {
	// SchemaVersion and Tool echo the manifest.
	SchemaVersion int
	Tool          string
	// Events counts event lines (the manifest excluded).
	Events int
	// Runs counts run_start/run_end pairs.
	Runs int
	// Levels counts per-barrier level events (the deterministic progress
	// record; present however fast the run was).
	Levels int
	// Snapshots counts timer-driven snapshot events.
	Snapshots int
	// FinalStates[i] is run i's final state count (from its run_end).
	FinalStates []int
	// RTRuns counts rt_start/rt_end pairs (live runtime runs) and RTEvents
	// their scheduled actions.
	RTRuns   int
	RTEvents int
	// Digest is the deterministic-event digest recomputed from the file;
	// it equals the producing TraceWriter's Digest.
	Digest string
}

// ValidateTrace checks a JSONL trace against the schema: a current-version
// manifest first; then events with known kinds, strictly increasing
// sequence numbers, and correctly nested runs (run_start opens, run_end
// with a final snapshot closes, nothing outside a run); snapshot-carrying
// events must have a snapshot payload whose counters are internally
// consistent (Expansions equals the worker-step sum when worker steps are
// present, monotone non-decreasing States/Depth within a run). Store
// telemetry, when present, must cohere with the run's configured backend:
// spill counters only under a spill store, the lossy flag exactly under a
// bitstate store. Traces from before the store fields existed carry all
// zeros there and lint clean.
//
// Runtime runs (schema v2) follow the same nesting discipline: rt_start
// opens with a well-formed RuntimeConfig (probabilities in [0,1], positive
// procs/batch/budget), rt_events carry known kinds with consecutive
// 1-based indices and in-range process references, and rt_end's summary
// totals must account exactly for the observed events. Exploration and
// runtime runs may share a file sequentially, never interleaved. The
// per-event elapsed_ns stamp (schema v3) must be non-decreasing across the
// file, and phase profiles, when present, must carry non-negative
// counters. It returns a summary, or the first violation with its line
// number.
func ValidateTrace(r io.Reader) (*TraceSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("trace line %d: %s", line, fmt.Sprintf(format, args...))
	}

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace is empty (no manifest line)")
	}
	var m Manifest
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m.Kind != KindManifest {
		return nil, fail(1, "first line is not a manifest: %s", firstOf(err, "kind %q", m.Kind))
	}
	if m.SchemaVersion <= 0 {
		return nil, fail(1, "manifest has no schema_version")
	}
	if m.SchemaVersion > SchemaVersion {
		return nil, fail(1, "schema_version %d is newer than this binary's %d; upgrade the binary",
			m.SchemaVersion, SchemaVersion)
	}

	sum := &TraceSummary{SchemaVersion: m.SchemaVersion, Tool: m.Tool}
	digest := NewDigest()
	var (
		lastSeq             uint64
		lastElapsed         int64
		inRun               bool
		runStates, runDepth int
		runCfg              RunConfig
		inRT                bool
		rtCfg               RuntimeConfig
		rtSeen              runtimeTally
	)
	line := 1
	for sc.Scan() {
		line++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fail(line, "not a JSON event: %v", err)
		}
		sum.Events++
		if ev.Seq <= lastSeq {
			return nil, fail(line, "seq %d is not strictly increasing (previous %d)", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		// elapsed_ns (schema v3) is stamped under the writer's lock from a
		// monotonic clock, so within one file it never decreases. Traces
		// from before the field carry zeros throughout, which pass trivially.
		if ev.ElapsedNs < lastElapsed {
			return nil, fail(line, "elapsed_ns regressed %d -> %d", lastElapsed, ev.ElapsedNs)
		}
		lastElapsed = ev.ElapsedNs

		switch ev.Kind {
		case KindRunStart:
			if inRun {
				return nil, fail(line, "run_start inside an open run")
			}
			if inRT {
				return nil, fail(line, "run_start inside an open runtime run")
			}
			if ev.Config == nil {
				return nil, fail(line, "run_start without a config payload")
			}
			if ev.Config.Workers <= 0 || ev.Config.MaxStates <= 0 || ev.Config.Inits <= 0 {
				return nil, fail(line, "run_start config has non-positive workers/max_states/inits: %+v", *ev.Config)
			}
			switch ev.Config.Store {
			case "", "mem", "spill", "bitstate":
			default:
				return nil, fail(line, "run_start config names unknown store backend %q", ev.Config.Store)
			}
			if ev.Config.MaxStoreBytes < 0 {
				return nil, fail(line, "run_start config has negative max_store_bytes %d", ev.Config.MaxStoreBytes)
			}
			inRun, runStates, runDepth, runCfg = true, 0, 0, *ev.Config
		case KindLevel, KindSnapshot, KindTruncated, KindRunEnd:
			if inRT {
				return nil, fail(line, "%s event inside a runtime run", ev.Kind)
			}
			if !inRun {
				return nil, fail(line, "%s event outside a run", ev.Kind)
			}
			s := ev.Snapshot
			if s == nil {
				return nil, fail(line, "%s event without a snapshot payload", ev.Kind)
			}
			if s.States < 0 || s.Depth < 0 || s.Frontier < 0 {
				return nil, fail(line, "snapshot has negative counters: %+v", *s)
			}
			if s.StoreBytesInRAM < 0 || s.StoreBytesSpilled < 0 || s.StoreSegments < 0 || s.PeakRSSBytes < 0 {
				return nil, fail(line, "snapshot has negative store/RSS counters: %+v", *s)
			}
			if p := s.Phases; p != nil {
				if p.ExpandNs < 0 || p.BarrierWaitNs < 0 || p.StoreIONs < 0 || p.ReplayNs < 0 ||
					p.StealNs < 0 || p.HandoffNs < 0 || p.IdleNs < 0 ||
					p.SampleExpandNs < 0 || p.SampleCanonNs < 0 || p.SampleInternNs < 0 {
					return nil, fail(line, "snapshot phase profile has negative counters: %+v", *p)
				}
			}
			if (s.StoreBytesSpilled > 0) != (s.StoreSegments > 0) {
				return nil, fail(line, "spill accounting disagrees: %d bytes across %d segments",
					s.StoreBytesSpilled, s.StoreSegments)
			}
			if s.StoreSegments > 0 && runCfg.Store != "spill" {
				return nil, fail(line, "segments written under store backend %q", runCfg.Store)
			}
			if s.StoreLossy != (runCfg.Store == "bitstate") && ev.Kind == KindRunEnd {
				return nil, fail(line, "run_end lossy flag %v under store backend %q", s.StoreLossy, runCfg.Store)
			}
			if len(s.WorkerSteps) > 0 {
				var steps uint64
				for _, w := range s.WorkerSteps {
					steps += w
				}
				if steps != s.Expansions {
					return nil, fail(line, "snapshot expansions %d != worker-step sum %d", s.Expansions, steps)
				}
			}
			// Timer-driven snapshots may race one barrier behind the live
			// state counter; monotonicity is only promised barrier-to-barrier.
			if ev.Kind != KindSnapshot {
				if s.States < runStates {
					return nil, fail(line, "states regressed %d -> %d within a run", runStates, s.States)
				}
				if s.Depth < runDepth {
					return nil, fail(line, "depth regressed %d -> %d within a run", runDepth, s.Depth)
				}
				runStates, runDepth = s.States, s.Depth
			}
			switch ev.Kind {
			case KindLevel:
				sum.Levels++
			case KindSnapshot:
				sum.Snapshots++
			case KindRunEnd:
				if !s.Final {
					return nil, fail(line, "run_end snapshot is not marked final")
				}
				sum.Runs++
				sum.FinalStates = append(sum.FinalStates, s.States)
				inRun = false
			}
		case KindRTStart:
			if inRun || inRT {
				return nil, fail(line, "rt_start inside an open run")
			}
			c := ev.RTConfig
			if c == nil {
				return nil, fail(line, "rt_start without a config payload")
			}
			if c.Workload == "" {
				return nil, fail(line, "rt_start config has no workload name")
			}
			if c.Procs <= 0 || c.Batch <= 0 || c.MaxEvents <= 0 {
				return nil, fail(line, "rt_start config has non-positive procs/batch/max_events: %+v", *c)
			}
			if bad(c.Drop) || bad(c.Dup) || bad(c.Crash) {
				return nil, fail(line, "rt_start config probability outside [0,1]: drop=%g dup=%g crash=%g",
					c.Drop, c.Dup, c.Crash)
			}
			if c.Delay < 0 || c.RestartAfter < 0 {
				return nil, fail(line, "rt_start config has negative delay/restart_after: %+v", *c)
			}
			inRT, rtCfg, rtSeen = true, *c, runtimeTally{}
		case KindRTEvent:
			if !inRT {
				return nil, fail(line, "rt_event outside a runtime run")
			}
			e := ev.RT
			if e == nil {
				return nil, fail(line, "rt_event without a payload")
			}
			if e.Event != rtSeen.events+1 {
				return nil, fail(line, "rt_event index %d, want %d (consecutive 1-based)", e.Event, rtSeen.events+1)
			}
			if e.To < 0 || e.To >= rtCfg.Procs {
				return nil, fail(line, "rt_event targets process %d outside [0,%d)", e.To, rtCfg.Procs)
			}
			if e.From < -1 || e.From >= rtCfg.Procs || e.Actor < -1 {
				return nil, fail(line, "rt_event has out-of-range from=%d actor=%d", e.From, e.Actor)
			}
			switch e.Kind {
			case RTDeliver:
				rtSeen.deliveries++
			case RTLocal:
				rtSeen.locals++
			case RTDrop:
				rtSeen.drops++
			case RTDup:
				rtSeen.dups++
			case RTCrash:
				rtSeen.crashes++
			case RTRestart:
				rtSeen.restarts++
			default:
				return nil, fail(line, "unknown runtime event kind %q", e.Kind)
			}
			rtSeen.events++
			sum.RTEvents++
		case KindRTEnd:
			if !inRT {
				return nil, fail(line, "rt_end outside a runtime run")
			}
			s := ev.RTSummary
			if s == nil {
				return nil, fail(line, "rt_end without a summary payload")
			}
			want := runtimeTally{
				events: s.Events, deliveries: s.Deliveries, locals: s.LocalSteps,
				drops: s.Drops, dups: s.Dups, crashes: s.Crashes, restarts: s.Restarts,
			}
			if want != rtSeen {
				return nil, fail(line, "rt_end totals %+v disagree with observed events %+v", want, rtSeen)
			}
			if s.Pending < 0 || s.Halted < 0 || s.Halted > rtCfg.Procs {
				return nil, fail(line, "rt_end has out-of-range pending=%d halted=%d", s.Pending, s.Halted)
			}
			if s.Quiesced && s.Pending > 0 {
				return nil, fail(line, "rt_end claims quiescence with %d actions pending", s.Pending)
			}
			sum.RTRuns++
			inRT = false
		default:
			return nil, fail(line, "unknown event kind %q", ev.Kind)
		}
		digest.Publish(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inRun {
		return nil, fmt.Errorf("trace ends inside an open run (missing run_end)")
	}
	if inRT {
		return nil, fmt.Errorf("trace ends inside an open runtime run (missing rt_end)")
	}
	if sum.Runs == 0 && sum.RTRuns == 0 {
		return nil, fmt.Errorf("trace contains no completed runs")
	}
	sum.Digest = digest.Sum()
	return sum, nil
}

// runtimeTally accumulates per-kind rt_event counts inside one runtime run
// so rt_end's summary can be checked against what was actually observed.
type runtimeTally struct {
	events, deliveries, locals, drops, dups, crashes, restarts int
}

// bad reports whether p is outside [0,1] (not a probability).
func bad(p float64) bool { return p < 0 || p > 1 }

// firstOf renders err when non-nil, else the fallback format.
func firstOf(err error, format string, args ...any) string {
	if err != nil {
		return err.Error()
	}
	return fmt.Sprintf(format, args...)
}
