package obs

import (
	"sync"
	"testing"
)

// recordSink appends every event under a lock, optionally blocking on gate
// to simulate a slow consumer.
type recordSink struct {
	mu   sync.Mutex
	evs  []Event
	gate chan struct{}
}

func (r *recordSink) Publish(ev Event) {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func (r *recordSink) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.evs...)
}

func TestBusDeliversInOrder(t *testing.T) {
	rec := &recordSink{}
	bus := NewBus(64, rec)
	for i := 1; i <= 10; i++ {
		bus.Publish(Event{Kind: KindSnapshot, Seq: uint64(i)})
	}
	bus.Close()
	evs := rec.events()
	if len(evs) != 10 {
		t.Fatalf("delivered %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (order broken)", i, ev.Seq, i+1)
		}
	}
	if bus.Dropped() != 0 {
		t.Fatalf("dropped %d events on an uncontended bus, want 0", bus.Dropped())
	}
}

// TestBusBackpressureDropsAndCounts wedges the consumer, overflows the
// buffer, and checks the accounting: publishes never block, the overflow
// is counted, and everything that was buffered still arrives in order.
func TestBusBackpressureDropsAndCounts(t *testing.T) {
	gate := make(chan struct{})
	rec := &recordSink{gate: gate}
	const buffer = 8
	bus := NewBus(buffer, rec)

	// With the consumer wedged, the drain goroutine takes at most one
	// event out of the buffer; everything beyond buffer+1 must drop.
	const published = 50
	for i := 1; i <= published; i++ {
		bus.Publish(Event{Kind: KindSnapshot, Seq: uint64(i)})
	}
	dropped := bus.Dropped()
	if dropped < published-buffer-1 {
		t.Fatalf("dropped %d events, want >= %d (buffer %d)", dropped, published-buffer-1, buffer)
	}

	close(gate) // unwedge the consumer
	bus.Close()
	evs := rec.events()
	if uint64(len(evs))+dropped != published {
		t.Fatalf("delivered %d + dropped %d != published %d", len(evs), dropped, published)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("delivery order broken: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestBusPublishAfterCloseDrops(t *testing.T) {
	rec := &recordSink{}
	bus := NewBus(4, rec)
	bus.Publish(Event{Kind: KindSnapshot})
	bus.Close()
	bus.Publish(Event{Kind: KindSnapshot})
	bus.Publish(Event{Kind: KindSnapshot})
	if got := bus.Dropped(); got != 2 {
		t.Fatalf("dropped %d events after close, want 2", got)
	}
	if got := len(rec.events()); got != 1 {
		t.Fatalf("delivered %d events, want 1 (pre-close only)", got)
	}
	bus.Close() // idempotent
}

// TestBusConcurrentPublishClose races many publishers against Close; under
// -race this pins the send-on-closed-channel guard.
func TestBusConcurrentPublishClose(t *testing.T) {
	rec := &recordSink{}
	bus := NewBus(16, rec)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				bus.Publish(Event{Kind: KindSnapshot})
			}
		}()
	}
	bus.Close()
	wg.Wait()
}
