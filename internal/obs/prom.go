package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the Live sink's current state in the Prometheus
// text exposition format (version 0.0.4): counters, gauges, and latency
// histograms with the standard _bucket/_sum/_count triple and `le` bounds
// in seconds. It is hand-rolled — the repo deliberately has no metrics
// client dependency — and renders from the same locked copy the JSON view
// uses, so a scrape mid-run observes a consistent snapshot and never
// blocks the exploration beyond the Publish lock.
//
// Metric names are prefixed explore_ (exploration engine) and rt_ (live
// runtime); per-worker and per-phase series use worker= and phase= labels
// so a dashboard can stack them.
func (l *Live) WritePrometheus(w io.Writer) {
	m := l.metrics()
	p := promWriter{w: w}

	p.gauge("explore_uptime_seconds", "Seconds since the telemetry sink was created.", m.UptimeSec)
	p.counter("explore_runs_total", "Exploration runs started.", float64(m.Runs))
	p.counter("explore_events_total", "Telemetry events received.", float64(m.Events))
	p.counter("explore_snapshots_total", "Timer-driven snapshot events received.", float64(m.Snapshots))

	if c := m.Config; c != nil {
		p.gauge("explore_workers", "Resolved worker count of the current run.", float64(c.Workers))
		p.gauge("explore_max_states", "State limit of the current run.", float64(c.MaxStates))
	}
	if s := m.Snapshot; s != nil {
		p.gauge("explore_states", "Distinct states interned.", float64(s.States))
		p.gauge("explore_depth", "BFS levels completed.", float64(s.Depth))
		p.gauge("explore_frontier", "States in the level being expanded.", float64(s.Frontier))
		p.gauge("explore_peak_frontier", "Largest level seen.", float64(s.PeakFrontier))
		p.counter("explore_expansions_total", "ExpandFunc calls.", float64(s.Expansions))
		p.counter("explore_dedup_hits_total", "Successors already known.", float64(s.DedupHits))
		p.counter("explore_canon_hits_total", "States remapped to an orbit representative.", float64(s.CanonHits))
		p.counter("explore_ample_states_total", "States expanded with a reduced ample set.", float64(s.AmpleStates))
		p.counter("explore_deferred_actions_total", "Actions deferred by POR.", float64(s.DeferredActions))
		p.gauge("explore_states_per_second", "Run-average throughput.", m.StatesPerSec)
		if len(s.WorkerSteps) > 0 {
			p.help("explore_worker_steps_total", "States expanded, per worker.", "counter")
			for i, steps := range s.WorkerSteps {
				p.labeled("explore_worker_steps_total", "worker", strconv.Itoa(i), float64(steps))
			}
		}
		if ph := s.Phases; ph != nil {
			p.help("explore_phase_seconds_total", "Worker time attributed to engine phases.", "counter")
			for _, kv := range []struct {
				name string
				ns   int64
			}{
				{"expand", ph.ExpandNs},
				{"barrier_wait", ph.BarrierWaitNs},
				{"store_io", ph.StoreIONs},
				{"replay", ph.ReplayNs},
				{"steal", ph.StealNs},
				{"handoff", ph.HandoffNs},
				{"idle", ph.IdleNs},
			} {
				p.labeled("explore_phase_seconds_total", "phase", kv.name, float64(kv.ns)/1e9)
			}
			p.counter("explore_sampled_states_total", "States profiled at fine grain.", float64(ph.SampledStates))
			p.gauge("explore_canon_fraction", "Sampled fraction of expansion time spent canonicalizing.", ph.CanonFrac())
			p.gauge("explore_intern_fraction", "Sampled fraction of expansion time spent hashing and interning.", ph.InternFrac())
		}
		if s.ExpandLat != nil {
			p.histogram("explore_expand_latency_seconds", "Sampled per-state expansion latency.", *s.ExpandLat)
		}
		p.gauge("explore_store_bytes_in_ram", "State-store resident footprint estimate.", float64(s.StoreBytesInRAM))
		p.counter("explore_store_bytes_spilled_total", "Raw payload bytes written to segment files.", float64(s.StoreBytesSpilled))
		p.gauge("explore_store_segments", "Segment files written.", float64(s.StoreSegments))
		p.counter("explore_store_segment_reads_total", "Page fetches served from disk.", float64(s.StoreSegmentReads))
		p.counter("explore_store_page_cache_hits_total", "Spilled-payload reads served from the page cache.", float64(s.StorePageCacheHits))
		if s.StoreReadLat != nil {
			p.histogram("explore_store_read_latency_seconds", "Spill segment per-page read latency.", *s.StoreReadLat)
		}
		if s.StoreWriteLat != nil {
			p.histogram("explore_store_write_latency_seconds", "Spill segment per-page write latency.", *s.StoreWriteLat)
		}
		p.counter("explore_steals_total", "Work batches stolen from other deques.", float64(s.Steals))
		p.counter("explore_handoff_batches_total", "Cross-shard handoff batches.", float64(s.HandoffBatches))
		p.gauge("explore_queue_occupancy", "States parked in worker deques.", float64(s.QueueOccupancy))
		p.gauge("explore_peak_rss_bytes", "Process peak resident set size.", float64(s.PeakRSSBytes))
	}

	p.counter("rt_runs_total", "Live runtime runs started.", float64(m.RTRuns))
	if len(m.RTEvents) > 0 {
		p.help("rt_events_total", "Scheduled runtime actions, by kind (fault mix).", "counter")
		kinds := make([]string, 0, len(m.RTEvents))
		for k := range m.RTEvents {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			p.labeled("rt_events_total", "kind", k, float64(m.RTEvents[k]))
		}
	}
	if s := m.RTFinal; s != nil {
		p.gauge("rt_pending_actions", "Actions still pending when the last runtime run ended.", float64(s.Pending))
		p.gauge("rt_halted_procs", "Processes halted when the last runtime run ended.", float64(s.Halted))
		if s.BatchLat != nil {
			p.histogram("rt_batch_dispatch_latency_seconds", "Concurrent batch dispatch latency.", *s.BatchLat)
		}
	}
}

// promWriter accumulates text-format lines; errors are ignored (the
// endpoint is best-effort, like the JSON view).
type promWriter struct{ w io.Writer }

func (p promWriter) help(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) counter(name, help string, v float64) {
	p.help(name, help, "counter")
	fmt.Fprintf(p.w, "%s %s\n", name, promFloat(v))
}

func (p promWriter) gauge(name, help string, v float64) {
	p.help(name, help, "gauge")
	fmt.Fprintf(p.w, "%s %s\n", name, promFloat(v))
}

func (p promWriter) labeled(name, label, value string, v float64) {
	fmt.Fprintf(p.w, "%s{%s=%q} %s\n", name, label, value, promFloat(v))
}

// histogram renders a HistSnap as a cumulative Prometheus histogram with
// `le` bounds converted from nanoseconds to seconds.
func (p promWriter) histogram(name, help string, s HistSnap) {
	p.help(name, help, "histogram")
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(p.w, "%s_bucket{le=%q} %d\n", name, promFloat(float64(HistBound(i))/1e9), cum)
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(p.w, "%s_sum %s\n", name, promFloat(float64(s.SumNs)/1e9))
	fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
}

// promFloat renders a sample value the way Prometheus expects: plain
// decimal, shortest round-trip form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
