package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Manifest is the first line of every JSONL trace: the provenance record
// that makes two traces comparable. Same Tool + Seed + Options + schema
// means the deterministic skeleton of the traces (level events, final
// totals — see Digest) must match; Git pins the code that produced it.
type Manifest struct {
	// Kind is always "manifest".
	Kind EventKind `json:"kind"`
	// SchemaVersion is the trace schema the file was written under.
	SchemaVersion int `json:"schema_version"`
	// Tool names the producer (e.g. "bivalence", "hundred").
	Tool string `json:"tool"`
	// Seed is the deterministic seed of the run, when one exists.
	Seed int64 `json:"seed,omitempty"`
	// Git is the producing build's VCS revision (see VCSVersion).
	Git string `json:"git,omitempty"`
	// Options records the producer's relevant flag/option settings.
	Options map[string]string `json:"options,omitempty"`
	// Started is the wall-clock start time, RFC3339. Events carry only
	// monotonic elapsed durations; this is the single wall anchor.
	Started string `json:"started,omitempty"`
}

// NewManifest builds a manifest for tool with the current schema version,
// build revision, and start time.
func NewManifest(tool string) Manifest {
	return Manifest{
		Kind:          KindManifest,
		SchemaVersion: SchemaVersion,
		Tool:          tool,
		Git:           VCSVersion(),
		Started:       time.Now().UTC().Format(time.RFC3339),
	}
}

// TraceWriter is a Sink that renders events as JSON Lines: the manifest
// first, then one event object per line, stamped with a file-global
// sequence number and a 1-based run number (incremented at every
// run_start). It simultaneously folds the deterministic events into a
// Digest, so a trace's replay-comparable fingerprint is available without
// re-reading the file.
//
// Writes are serialized under a mutex; the first write error sticks and
// suppresses further output (check Err or Close).
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	seq    uint64
	run    int
	start  time.Time
	digest *Digest
	err    error
}

// NewTraceWriter writes the manifest line to w and returns the writer. If
// w is an io.Closer, Close closes it after flushing.
func NewTraceWriter(w io.Writer, m Manifest) (*TraceWriter, error) {
	m.Kind = KindManifest
	if m.SchemaVersion == 0 {
		m.SchemaVersion = SchemaVersion
	}
	t := &TraceWriter{bw: bufio.NewWriter(w), start: time.Now(), digest: NewDigest()}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	line, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("obs: marshal manifest: %w", err)
	}
	line = append(line, '\n')
	if _, err := t.bw.Write(line); err != nil {
		return nil, fmt.Errorf("obs: write manifest: %w", err)
	}
	return t, nil
}

// Publish implements Sink.
func (t *TraceWriter) Publish(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	// Stamped under the same lock as Seq, from the monotonic clock: events
	// later in the file always carry an equal-or-larger elapsed_ns, which
	// ValidateTrace enforces. Digest ignores it (see DigestLine).
	ev.ElapsedNs = time.Since(t.start).Nanoseconds()
	if ev.Kind == KindRunStart || ev.Kind == KindRTStart {
		t.run++
	}
	ev.Run = t.run
	t.digest.Publish(ev)
	line, err := json.Marshal(ev)
	if err != nil {
		t.err = fmt.Errorf("obs: marshal event: %w", err)
		return
	}
	line = append(line, '\n')
	if _, err := t.bw.Write(line); err != nil {
		t.err = fmt.Errorf("obs: write event: %w", err)
	}
}

// Digest returns the trace's deterministic-event digest so far.
func (t *TraceWriter) Digest() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.digest.Sum()
}

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes buffered lines and closes the underlying writer when it
// is closable, returning the first error encountered over the writer's
// lifetime.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}
