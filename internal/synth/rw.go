package synth

import (
	"fmt"

	"repro/internal/sharedmem"
)

// RWSearchConfig parameterizes SearchRWMutex: the mechanized Burns–Lynch
// result (§2.1) that two processes cannot achieve mutual exclusion with
// progress through a single shared read/write register, regardless of how
// many values it holds. Every access in the enumerated class is either a
// pure read (the register is unchanged; the branch may depend on the
// value) or a blind write (the stored value and successor state are
// independent of the old value) — "a writing process obliterates any
// information previously in the variable".
type RWSearchConfig struct {
	// Values is the register's domain size.
	Values int
	// TryStates bounds the trying-region local states per process.
	TryStates int
	// Symmetric restricts to value-involution-symmetric protocol pairs.
	Symmetric bool
	// RequireLockoutFree adds lockout-freedom to the specification.
	// Burns–Lynch holds already for plain progress, so the default false
	// is the stronger search.
	RequireLockoutFree bool
	// MaxCandidates aborts with ErrSpaceTooLarge if the estimated pair
	// count is bigger. Zero means DefaultMaxCandidates.
	MaxCandidates uint64
	// Workers is the parallelism degree; zero means GOMAXPROCS.
	Workers int
}

// rwStateOptions enumerates the legal behaviors of one trying state under
// the read/write discipline: all pure reads (a next-state per observed
// value), then all blind writes (one next state and one stored value).
func rwStateOptions(values, try int) [][]sharedmem.Cell {
	targets := try + 1 // trying states 1..try plus critical (try+1)
	total := 1
	for i := 0; i < values; i++ {
		total *= targets
	}
	out := make([][]sharedmem.Cell, 0, total+targets*values)
	// Pure reads: next[val] ranges over all target assignments.
	for idx := 0; idx < total; idx++ {
		row := make([]sharedmem.Cell, values)
		rem := idx
		for v := 0; v < values; v++ {
			row[v] = sharedmem.Cell{NextLocal: 1 + rem%targets, NewVal: v}
			rem /= targets
		}
		out = append(out, row)
	}
	// Blind writes: (next, stored) constant across observed values.
	for next := 1; next <= targets; next++ {
		for nv := 0; nv < values; nv++ {
			row := make([]sharedmem.Cell, values)
			for v := 0; v < values; v++ {
				row[v] = sharedmem.Cell{NextLocal: next, NewVal: nv}
			}
			out = append(out, row)
		}
	}
	return out
}

// SearchRWMutex exhaustively enumerates 2-process protocols over a single
// shared read/write register and checks mutual exclusion + progress
// (+ lockout-freedom if required). An empty result mechanizes Burns–Lynch
// for the bounded class; compare SearchTASMutex, where test-and-set power
// makes the same skeleton succeed.
func SearchRWMutex(cfg RWSearchConfig) (Result, error) {
	if cfg.Values < 2 || cfg.TryStates < 1 {
		return Result{}, fmt.Errorf("synth: invalid config: need Values >= 2 and TryStates >= 1, got %d/%d", cfg.Values, cfg.TryStates)
	}
	sk := tasSkeleton{values: cfg.Values, try: cfg.TryStates}
	stateOpts := rwStateOptions(cfg.Values, cfg.TryStates)
	perProc := spaceSize(uint64(len(stateOpts)), cfg.TryStates, uint64(cfg.Values))
	if err := checkBudget(perProc, cfg.Symmetric, cfg.Values, cfg.MaxCandidates); err != nil {
		return Result{}, err
	}

	res := Result{TablesEnumerated: perProc}
	tables := make([][][]sharedmem.Cell, 0, 1024)
	for idx := uint64(0); idx < perProc; idx++ {
		rem := idx
		cells := make([]sharedmem.Cell, 0, cfg.TryStates*cfg.Values)
		for s := 0; s < cfg.TryStates; s++ {
			cells = append(cells, stateOpts[rem%uint64(len(stateOpts))]...)
			rem /= uint64(len(stateOpts))
		}
		exitVal := int(rem % uint64(cfg.Values))
		t := sk.buildTable(cells, exitVal)
		if !sk.criticalReachable(t) || !sk.soloLive(t) {
			res.TablesPruned++
			continue
		}
		tables = append(tables, t)
	}
	runPairSearch(sk, tables, cfg.Symmetric, cfg.RequireLockoutFree, cfg.Workers, sharedmem.RW,
		fmt.Sprintf("synth-rw(v=%d,t=%d)", cfg.Values, cfg.TryStates), &res)
	return res, nil
}
