// Package synth proves small impossibility results by exhaustion: it
// enumerates every protocol in a bounded class (all transition tables over
// a fixed skeleton) and model-checks each against a problem statement.
//
// The paper (§2.1) tells the story of Cremers and Hibbard proving that two
// processes cannot achieve fair mutual exclusion through a single 2-valued
// test-and-set variable, and of Burns and Lynch proving that mutual
// exclusion is impossible with a single read/write register no matter how
// many values it holds. Those pen-and-paper proofs quantify over *all*
// algorithms; this package mechanizes the quantification for bounded local
// state counts: if the search over every table returns no witness, the
// impossibility holds for the enumerated class, and when a witness exists
// the search returns it — reproducing the paper's observation (§3.4) that
// failed impossibility proofs yield "counterexample algorithms".
package synth

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sharedmem"
	"repro/internal/spec"
)

// ErrSpaceTooLarge is returned when the requested search space exceeds the
// configured candidate budget.
var ErrSpaceTooLarge = errors.New("synth: search space exceeds candidate budget")

// Result summarizes one exhaustive search.
type Result struct {
	// TablesEnumerated is the number of per-process transition tables
	// generated before pruning.
	TablesEnumerated uint64
	// TablesPruned counts tables discarded by the static prunes
	// (critical-state unreachable, or failing solo liveness).
	TablesPruned uint64
	// PairsChecked is the number of two-process protocols model-checked.
	PairsChecked uint64
	// PassedExclusion counts pairs satisfying mutual exclusion.
	PassedExclusion uint64
	// PassedProgress counts pairs additionally satisfying progress.
	PassedProgress uint64
	// Passed counts pairs satisfying the full specification.
	Passed uint64
	// Example is a protocol meeting the full specification, if any.
	Example *sharedmem.TableAlgorithm
}

// Found reports whether the search produced a witness protocol.
func (r Result) Found() bool { return r.Example != nil }

// TASSearchConfig parameterizes SearchTASMutex.
type TASSearchConfig struct {
	// Values is the domain size of the single shared RMW variable.
	Values int
	// TryStates is the number of distinct trying-region local states each
	// process may use (the skeleton bound for the exhaustion).
	TryStates int
	// Symmetric restricts the search to protocols where process 1 runs
	// process 0's table under a value involution — a standard symmetry
	// reduction. When false, both tables are enumerated independently.
	Symmetric bool
	// RequireLockoutFree adds lockout-freedom to the specification
	// (otherwise only mutual exclusion + progress are required).
	RequireLockoutFree bool
	// MaxCandidates aborts with ErrSpaceTooLarge if the estimated pair
	// count is bigger. Zero means DefaultMaxCandidates.
	MaxCandidates uint64
	// Workers is the parallelism degree; zero means GOMAXPROCS.
	Workers int
}

// DefaultMaxCandidates bounds search spaces unless overridden.
const DefaultMaxCandidates = 50_000_000

// tasSkeleton describes the fixed protocol skeleton: local states are
// 0 = remainder, 1..T = trying, T+1 = critical, T+2 = exit. The remainder
// step is a pure read entering trying state 1; the critical step is a pure
// read entering exit; exit writes a searched constant and returns to
// remainder. All searched freedom lives in the trying states and the exit
// write.
type tasSkeleton struct {
	values int
	try    int
}

func (sk tasSkeleton) remainder() int { return 0 }
func (sk tasSkeleton) critical() int  { return sk.try + 1 }
func (sk tasSkeleton) exit() int      { return sk.try + 2 }
func (sk tasSkeleton) numLocals() int { return sk.try + 3 }

// cellOptions enumerates the choices for one (tryState, value) cell:
// next local state in {trying states} ∪ {critical}, paired with any new
// value.
func (sk tasSkeleton) cellOptions() []sharedmem.Cell {
	opts := make([]sharedmem.Cell, 0, (sk.try+1)*sk.values)
	for next := 1; next <= sk.try+1; next++ {
		for nv := 0; nv < sk.values; nv++ {
			opts = append(opts, sharedmem.Cell{NextLocal: next, NewVal: nv})
		}
	}
	return opts
}

// buildTable materializes a full per-process transition table from the
// searched trying-cell assignment and exit constant.
func (sk tasSkeleton) buildTable(tryCells []sharedmem.Cell, exitVal int) [][]sharedmem.Cell {
	table := make([][]sharedmem.Cell, sk.numLocals())
	// Remainder: pure read into first trying state.
	row := make([]sharedmem.Cell, sk.values)
	for v := 0; v < sk.values; v++ {
		row[v] = sharedmem.Cell{NextLocal: 1, NewVal: v}
	}
	table[sk.remainder()] = row
	// Trying states.
	idx := 0
	for t := 1; t <= sk.try; t++ {
		row := make([]sharedmem.Cell, sk.values)
		for v := 0; v < sk.values; v++ {
			row[v] = tryCells[idx]
			idx++
		}
		table[t] = row
	}
	// Critical: pure read into exit.
	row = make([]sharedmem.Cell, sk.values)
	for v := 0; v < sk.values; v++ {
		row[v] = sharedmem.Cell{NextLocal: sk.exit(), NewVal: v}
	}
	table[sk.critical()] = row
	// Exit: blind write of exitVal, back to remainder.
	row = make([]sharedmem.Cell, sk.values)
	for v := 0; v < sk.values; v++ {
		row[v] = sharedmem.Cell{NextLocal: sk.remainder(), NewVal: exitVal}
	}
	table[sk.exit()] = row
	return table
}

// regions returns the region classification for the skeleton.
func (sk tasSkeleton) regions() []spec.Region {
	out := make([]spec.Region, sk.numLocals())
	out[sk.remainder()] = spec.Remainder
	for t := 1; t <= sk.try; t++ {
		out[t] = spec.Trying
	}
	out[sk.critical()] = spec.Critical
	out[sk.exit()] = spec.Exit
	return out
}

// toAlgorithm wraps a table pair as a checkable sharedmem.TableAlgorithm.
func (sk tasSkeleton) toAlgorithm(name string, kind sharedmem.VarKind, t0, t1 [][]sharedmem.Cell) *sharedmem.TableAlgorithm {
	return &sharedmem.TableAlgorithm{
		AlgName:  name,
		Procs:    2,
		VarSpecs: []sharedmem.VarSpec{{Kind: kind, Init: 0, Values: sk.values}},
		Initial:  []int{0, 0},
		Regions:  [][]spec.Region{sk.regions(), sk.regions()},
		Accesses: [][]int{zeros(sk.numLocals()), zeros(sk.numLocals())},
		Table:    [][][]sharedmem.Cell{t0, t1},
	}
}

// permuteTable renames the values of a table by involution pi: the derived
// process "behaves like process 0 with values relabeled".
func permuteTable(table [][]sharedmem.Cell, pi []int) [][]sharedmem.Cell {
	out := make([][]sharedmem.Cell, len(table))
	for l, row := range table {
		newRow := make([]sharedmem.Cell, len(row))
		for v := range row {
			c := row[pi[v]]
			newRow[v] = sharedmem.Cell{NextLocal: c.NextLocal, NewVal: pi[c.NewVal]}
		}
		out[l] = newRow
	}
	return out
}

// involutions returns all involutions (self-inverse permutations) of
// {0..n-1}, identity included.
func involutions(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			cp := make([]int, n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		if perm[i] != -1 {
			rec(i + 1)
			return
		}
		perm[i] = i
		rec(i + 1)
		perm[i] = -1
		for j := i + 1; j < n; j++ {
			if perm[j] == -1 {
				perm[i], perm[j] = j, i
				rec(i + 1)
				perm[i], perm[j] = -1, -1
			}
		}
	}
	rec(0)
	return out
}

// criticalReachable statically prunes tables from which no chain of cells
// reaches the critical state (such protocols trivially fail progress).
func (sk tasSkeleton) criticalReachable(table [][]sharedmem.Cell) bool {
	seen := make([]bool, sk.numLocals())
	stack := []int{1}
	seen[1] = true
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l == sk.critical() {
			return true
		}
		for _, c := range table[l] {
			if !seen[c.NextLocal] {
				seen[c.NextLocal] = true
				stack = append(stack, c.NextLocal)
			}
		}
	}
	return false
}

// SearchTASMutex exhaustively enumerates 2-process protocols over a single
// shared test-and-set variable and checks them against the fair mutual
// exclusion specification. With Values=2 and RequireLockoutFree=true the
// search is the mechanized Cremers–Hibbard impossibility (no witness in
// the bounded class); rerunning with Values=3 searches for their
// "carefully-crafted" positive algorithm.
func SearchTASMutex(cfg TASSearchConfig) (Result, error) {
	if cfg.Values < 2 || cfg.TryStates < 1 {
		return Result{}, fmt.Errorf("synth: invalid config: need Values >= 2 and TryStates >= 1, got %d/%d", cfg.Values, cfg.TryStates)
	}
	sk := tasSkeleton{values: cfg.Values, try: cfg.TryStates}
	opts := sk.cellOptions()
	numCells := sk.try * sk.values
	perProc := spaceSize(uint64(len(opts)), numCells, uint64(cfg.Values))
	if err := checkBudget(perProc, cfg.Symmetric, cfg.Values, cfg.MaxCandidates); err != nil {
		return Result{}, err
	}

	res := Result{TablesEnumerated: perProc}
	tables := make([][][]sharedmem.Cell, 0, 1024)
	cells := make([]sharedmem.Cell, numCells)
	for idx := uint64(0); idx < perProc; idx++ {
		rem := idx
		for c := 0; c < numCells; c++ {
			cells[c] = opts[rem%uint64(len(opts))]
			rem /= uint64(len(opts))
		}
		exitVal := int(rem % uint64(cfg.Values))
		t := sk.buildTable(cells, exitVal)
		if !sk.criticalReachable(t) || !sk.soloLive(t) {
			res.TablesPruned++
			continue
		}
		tables = append(tables, t)
	}
	runPairSearch(sk, tables, cfg.Symmetric, cfg.RequireLockoutFree, cfg.Workers, sharedmem.RMW,
		fmt.Sprintf("synth-tas(v=%d,t=%d)", cfg.Values, cfg.TryStates), &res)
	return res, nil
}

// spaceSize computes base^cells * extra with overflow saturation.
func spaceSize(base uint64, cells int, extra uint64) uint64 {
	out := uint64(1)
	for i := 0; i < cells; i++ {
		out, _ = mulCheck(out, base)
	}
	out, _ = mulCheck(out, extra)
	return out
}

// checkBudget validates the estimated pair count against the budget.
func checkBudget(perProc uint64, symmetric bool, values int, budget uint64) error {
	if budget == 0 {
		budget = DefaultMaxCandidates
	}
	var total uint64
	if symmetric {
		total, _ = mulCheck(perProc, uint64(len(involutions(values))))
	} else {
		half, _ := mulCheck(perProc, perProc+1)
		total = half / 2
	}
	if total > budget {
		return fmt.Errorf("%w: ~%d candidate pairs > budget %d", ErrSpaceTooLarge, total, budget)
	}
	return nil
}

// pairSearchChunk is how many table rows a worker claims from the shared
// cursor at a time: large enough to amortize the atomic add, small enough
// to balance the wildly uneven row costs (in the asymmetric search row i
// covers len(tables)-i pairs).
const pairSearchChunk = 16

// runPairSearch drives the parallel pair-checking phase shared by the TAS
// and RW searches. The specification is symmetric under process renaming,
// so the asymmetric search only examines ordered pairs i <= j. Workers
// claim chunks of the row axis from an atomic cursor, and the result is
// deterministic at any worker count: the counters are order-independent
// sums, and Example is resolved by a CAS-min race over the packed (i, j)
// index, so the witness with the smallest enumeration index always wins no
// matter which worker found it first.
func runPairSearch(sk tasSkeleton, tables [][][]sharedmem.Cell, symmetric, needLockout bool,
	workers int, kind sharedmem.VarKind, exampleName string, res *Result) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pairs, passedME, passedProg, passed atomic.Uint64
	var pis [][]int
	if symmetric {
		pis = involutions(sk.values)
	}

	const noWitness = ^uint64(0)
	var bestKey atomic.Uint64
	bestKey.Store(noWitness)

	// check examines one pair, keyed by its enumeration index (the pair
	// index in asymmetric mode, the involution index in symmetric mode).
	check := func(i, j int, t0, t1 [][]sharedmem.Cell) {
		pairs.Add(1)
		v := sk.checkPair(t0, t1, needLockout)
		if !v.exclusion {
			return
		}
		passedME.Add(1)
		if !v.progress {
			return
		}
		passedProg.Add(1)
		if needLockout && !v.lockoutFree {
			return
		}
		passed.Add(1)
		key := uint64(i)<<32 | uint64(j)
		for {
			cur := bestKey.Load()
			if key >= cur || bestKey.CompareAndSwap(cur, key) {
				return
			}
		}
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(pairSearchChunk)) - pairSearchChunk
				if lo >= len(tables) {
					return
				}
				hi := min(lo+pairSearchChunk, len(tables))
				for i := lo; i < hi; i++ {
					if symmetric {
						for pidx, pi := range pis {
							check(i, pidx, tables[i], permuteTable(tables[i], pi))
						}
						continue
					}
					for j := i; j < len(tables); j++ {
						check(i, j, tables[i], tables[j])
					}
				}
			}
		}()
	}
	wg.Wait()
	res.PairsChecked = pairs.Load()
	res.PassedExclusion = passedME.Load()
	res.PassedProgress = passedProg.Load()
	res.Passed = passed.Load()
	if key := bestKey.Load(); key != noWitness {
		i, j := int(key>>32), int(key&0xffffffff)
		t1 := tables[j]
		if symmetric {
			t1 = permuteTable(tables[i], pis[j])
		}
		res.Example = sk.toAlgorithm(exampleName, kind, tables[i], t1)
	}
}

func zeros(n int) []int { return make([]int, n) }

func mulCheck(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/a != b {
		return ^uint64(0), false
	}
	return c, true
}
