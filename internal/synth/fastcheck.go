package synth

import "repro/internal/sharedmem"

// This file implements a dedicated high-throughput checker for the
// 2-process single-variable skeleton: the exhaustive searches evaluate
// millions of tables, so instead of the generic core explorer they use a
// dense integer state encoding (local0, local1, value) and flat arrays.
// The semantics are identical to sharedmem's adapter: request steps from
// the remainder state belong to the environment and are exempt from
// fairness; all other steps are process steps under weak fairness.

// soloLive checks a necessary condition cheaply before any pairing: a
// process running entirely alone (its rival never requests) must still
// enter the critical region infinitely often. The deterministic solo walk
// over (local, value) pairs must cycle through the critical state.
func (sk tasSkeleton) soloLive(table [][]sharedmem.Cell) bool {
	// The solo walk over (local, value) pairs is deterministic on at most
	// numLocals*values states, so it reaches its cycle within that many
	// steps; walking twice that bound guarantees a full lap of the cycle.
	// The protocol is solo-live iff the cyclic part visits critical.
	n := sk.numLocals() * sk.values
	l, v := 0, 0
	for step := 0; step < n; step++ { // burn in: reach the cycle
		c := table[l][v]
		l, v = c.NextLocal, c.NewVal
	}
	crit := sk.critical()
	startL, startV := l, v
	for step := 0; step < n; step++ { // one full lap
		if l == crit {
			return true
		}
		c := table[l][v]
		l, v = c.NextLocal, c.NewVal
		if l == startL && v == startV {
			break
		}
	}
	return l == crit
}

// pairChecker holds the dense transition structure for one (t0, t1) pair.
type pairChecker struct {
	sk tasSkeleton
	// L is the per-process local state count, V the value count.
	L, V int
	// succ[s][p] is the successor state when process p steps from s.
	succ [][2]int32
	// isEnv[s][p] marks p's step from s as an environment (request) step.
	isEnv [][2]bool
	// reach marks states reachable from the initial state.
	reach []bool
	// n is the dense state space size L*L*V.
	n int
}

func (sk tasSkeleton) newPairChecker(t0, t1 [][]sharedmem.Cell) *pairChecker {
	L := sk.numLocals()
	V := sk.values
	n := L * L * V
	pc := &pairChecker{sk: sk, L: L, V: V, n: n}
	pc.succ = make([][2]int32, n)
	pc.isEnv = make([][2]bool, n)
	tables := [2][][]sharedmem.Cell{t0, t1}
	for l0 := 0; l0 < L; l0++ {
		for l1 := 0; l1 < L; l1++ {
			for v := 0; v < V; v++ {
				s := (l0*L+l1)*V + v
				for p := 0; p < 2; p++ {
					lp := l0
					if p == 1 {
						lp = l1
					}
					c := tables[p][lp][v]
					nl0, nl1 := l0, l1
					if p == 0 {
						nl0 = c.NextLocal
					} else {
						nl1 = c.NextLocal
					}
					pc.succ[s][p] = int32((nl0*L+nl1)*V + c.NewVal)
					pc.isEnv[s][p] = lp == sk.remainder()
				}
			}
		}
	}
	return pc
}

// explore computes reachability from the initial state and reports whether
// mutual exclusion holds everywhere reachable.
func (pc *pairChecker) explore() (mutualExclusion bool) {
	pc.reach = make([]bool, pc.n)
	init := 0 // (l0=0, l1=0, v=0): remainder, remainder, initial value 0
	pc.reach[init] = true
	stack := []int32{int32(init)}
	crit := pc.sk.critical()
	ok := true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l0, l1, _ := pc.decode(int(s))
		if l0 == crit && l1 == crit {
			ok = false // keep exploring: reach set is reused by callers
		}
		for p := 0; p < 2; p++ {
			t := pc.succ[s][p]
			if !pc.reach[t] {
				pc.reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	return ok
}

func (pc *pairChecker) decode(s int) (l0, l1, v int) {
	v = s % pc.V
	rest := s / pc.V
	return rest / pc.L, rest % pc.L, v
}

// region returns process p's region in dense state s, expressed through
// the skeleton's state layout.
func (pc *pairChecker) inTrying(s, p int) bool {
	l0, l1, _ := pc.decode(s)
	l := l0
	if p == 1 {
		l = l1
	}
	return l >= 1 && l <= pc.sk.try
}

func (pc *pairChecker) inCritical(s, p int) bool {
	l0, l1, _ := pc.decode(s)
	l := l0
	if p == 1 {
		l = l1
	}
	return l == pc.sk.critical()
}

func (pc *pairChecker) inRemainder(s, p int) bool {
	l0, l1, _ := pc.decode(s)
	l := l0
	if p == 1 {
		l = l1
	}
	return l == pc.sk.remainder()
}

// leadsTo checks "premise leads to goal" under weak fairness on the dense
// graph. Transition functions are total, so only livelocks (fair cycles in
// the goal-avoiding region) can violate the property.
func (pc *pairChecker) leadsTo(premise, goal func(s int) bool) bool {
	inH := make([]bool, pc.n)
	var stack []int32
	for s := 0; s < pc.n; s++ {
		if pc.reach[s] && premise(s) && !goal(s) {
			inH[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < 2; p++ {
			t := pc.succ[s][p]
			if !goal(int(t)) && !inH[t] {
				inH[t] = true
				stack = append(stack, t)
			}
		}
	}
	return !pc.hasFairCycle(inH)
}

// hasFairCycle reports whether the subgraph inH contains a cycle that is
// weakly fair: for each process p, either p takes a step inside the cycle
// or p is in its remainder region somewhere on the cycle (where its
// process step does not exist — only the environment's request does).
func (pc *pairChecker) hasFairCycle(inH []bool) bool {
	const unvisited = -1
	index := make([]int32, pc.n)
	low := make([]int32, pc.n)
	onStack := make([]bool, pc.n)
	comp := make([]int32, pc.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		counter int32
		nComp   int32
		sstack  []int32
		frames  []int32
		cursors []int8
	)
	for root := 0; root < pc.n; root++ {
		if !inH[root] || index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], int32(root))
		cursors = append(cursors[:0], 0)
		index[root] = counter
		low[root] = counter
		counter++
		sstack = append(sstack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			v := frames[len(frames)-1]
			ci := cursors[len(cursors)-1]
			advanced := false
			for ; ci < 2; ci++ {
				w := pc.succ[v][ci]
				if !inH[w] {
					continue
				}
				if index[w] == unvisited {
					cursors[len(cursors)-1] = ci + 1
					index[w] = counter
					low[w] = counter
					counter++
					sstack = append(sstack, w)
					onStack[w] = true
					frames = append(frames, w)
					cursors = append(cursors, 0)
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			frames = frames[:len(frames)-1]
			cursors = cursors[:len(cursors)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				// Pop one SCC and test fairness inline.
				var members []int32
				for {
					w := sstack[len(sstack)-1]
					sstack = sstack[:len(sstack)-1]
					onStack[w] = false
					comp[w] = nComp
					members = append(members, w)
					if w == v {
						break
					}
				}
				nComp++
				if pc.sccFair(members, comp, inH) {
					return true
				}
			}
		}
	}
	return false
}

// sccFair tests one SCC for an internal edge and weak fairness of both
// processes.
func (pc *pairChecker) sccFair(members []int32, comp []int32, inH []bool) bool {
	cid := comp[members[0]]
	hasEdge := false
	var stepTaken [2]bool
	var disabled [2]bool
	for _, s := range members {
		for p := 0; p < 2; p++ {
			t := pc.succ[s][p]
			internal := inH[t] && comp[t] == cid
			if internal {
				hasEdge = true
				if !pc.isEnv[s][p] {
					stepTaken[p] = true
				}
			}
			if pc.isEnv[s][p] {
				// Process p has no process-step here (it is in remainder):
				// weak fairness for p is dischargeable at this state.
				disabled[p] = true
			}
		}
	}
	if !hasEdge {
		return false
	}
	for p := 0; p < 2; p++ {
		if !stepTaken[p] && !disabled[p] {
			return false
		}
	}
	return true
}

// pairVerdict is the outcome of checkPair.
type pairVerdict struct {
	exclusion   bool
	progress    bool
	lockoutFree bool
}

// checkPair runs the full fair-mutex specification on one table pair.
// Later checks are skipped once an earlier one fails.
func (sk tasSkeleton) checkPair(t0, t1 [][]sharedmem.Cell, needLockout bool) pairVerdict {
	pc := sk.newPairChecker(t0, t1)
	var v pairVerdict
	v.exclusion = pc.explore()
	if !v.exclusion {
		return v
	}
	v.progress = pc.leadsTo(
		func(s int) bool {
			return (pc.inTrying(s, 0) || pc.inTrying(s, 1)) &&
				!pc.inCritical(s, 0) && !pc.inCritical(s, 1)
		},
		func(s int) bool { return pc.inCritical(s, 0) || pc.inCritical(s, 1) },
	)
	if !v.progress || !needLockout {
		return v
	}
	v.lockoutFree = true
	for p := 0; p < 2; p++ {
		pp := p
		if !pc.leadsTo(
			func(s int) bool { return pc.inTrying(s, pp) },
			func(s int) bool { return pc.inCritical(s, pp) },
		) {
			v.lockoutFree = false
			break
		}
	}
	return v
}
