package synth

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/sharedmem"
)

func TestInvolutions(t *testing.T) {
	if got := len(involutions(2)); got != 2 {
		t.Fatalf("involutions(2) = %d, want 2 (id and swap)", got)
	}
	if got := len(involutions(3)); got != 4 {
		t.Fatalf("involutions(3) = %d, want 4 (id and three transpositions)", got)
	}
	// Every returned permutation must be self-inverse.
	for _, pi := range involutions(4) {
		for i, j := range pi {
			if pi[j] != i {
				t.Fatalf("%v is not an involution", pi)
			}
		}
	}
}

func TestMulCheck(t *testing.T) {
	if v, ok := mulCheck(1<<40, 1<<40); ok || v != ^uint64(0) {
		t.Fatal("expected overflow detection")
	}
	if v, ok := mulCheck(6, 7); !ok || v != 42 {
		t.Fatalf("mulCheck(6,7) = %d,%v", v, ok)
	}
	if v, ok := mulCheck(0, 99); !ok || v != 0 {
		t.Fatalf("mulCheck(0,99) = %d,%v", v, ok)
	}
}

func TestSearchRejectsInvalidConfigs(t *testing.T) {
	if _, err := SearchTASMutex(TASSearchConfig{Values: 1, TryStates: 1}); err == nil {
		t.Fatal("Values=1 should be rejected")
	}
	if _, err := SearchRWMutex(RWSearchConfig{Values: 2, TryStates: 0}); err == nil {
		t.Fatal("TryStates=0 should be rejected")
	}
}

func TestSearchRespectsBudget(t *testing.T) {
	_, err := SearchTASMutex(TASSearchConfig{Values: 3, TryStates: 3, MaxCandidates: 10})
	if !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("err = %v, want ErrSpaceTooLarge", err)
	}
}

// TestCremersHibbardTwoValuesImpossible is E01's negative half: exhaustive
// search over every 2-process protocol with a single 2-valued test-and-set
// variable and up to 2 trying states finds protocols achieving mutual
// exclusion and progress — but none that is also lockout-free.
func TestCremersHibbardTwoValuesImpossible(t *testing.T) {
	res, err := SearchTASMutex(TASSearchConfig{
		Values:             2,
		TryStates:          2,
		Symmetric:          false,
		RequireLockoutFree: true,
	})
	if err != nil {
		t.Fatalf("SearchTASMutex: %v", err)
	}
	if res.PassedProgress == 0 {
		t.Fatal("some 2-valued protocols should achieve exclusion+progress (the semaphore does)")
	}
	if res.Found() {
		t.Fatalf("no 2-valued protocol should be lockout-free, but found %s (passed=%d)",
			res.Example.Name(), res.Passed)
	}
}

// TestTwoValuedUnfairMutexExists is the sanity counterpart: without the
// fairness requirement, the search rediscovers the semaphore.
func TestTwoValuedUnfairMutexExists(t *testing.T) {
	res, err := SearchTASMutex(TASSearchConfig{
		Values:    2,
		TryStates: 1,
		Symmetric: true,
	})
	if err != nil {
		t.Fatalf("SearchTASMutex: %v", err)
	}
	if !res.Found() {
		t.Fatal("an unfair 2-valued TAS mutex (the semaphore) should be found")
	}
	// The found protocol must itself verify.
	rep, err := sharedmem.CheckMutex(res.Example, sharedmem.CheckMutexOptions{})
	if err != nil {
		t.Fatalf("CheckMutex on found example: %v", err)
	}
	if !rep.MutualExclusion || !rep.Progress {
		t.Fatalf("found example fails re-verification: %+v", rep)
	}
}

// TestBurnsLynchSingleRWRegisterImpossible is E03: exhaustive search over
// every 2-process protocol using one read/write register (2 values, up to
// 2 trying states) finds no protocol achieving even mutual exclusion plus
// progress — test-and-set power is essential with a single variable.
func TestBurnsLynchSingleRWRegisterImpossible(t *testing.T) {
	res, err := SearchRWMutex(RWSearchConfig{
		Values:    2,
		TryStates: 2,
		Symmetric: false,
	})
	if err != nil {
		t.Fatalf("SearchRWMutex: %v", err)
	}
	if res.Found() {
		t.Fatalf("no single-RW-register mutex should exist, but found %s", res.Example.Name())
	}
	if res.TablesEnumerated == 0 || res.PairsChecked == 0 {
		t.Fatalf("search should have enumerated candidates: %+v", res)
	}
}

// TestBurnsLynchThreeValuesStillImpossible strengthens E03: more register
// values do not help (symmetric class to keep the space small).
func TestBurnsLynchThreeValuesStillImpossible(t *testing.T) {
	res, err := SearchRWMutex(RWSearchConfig{
		Values:    3,
		TryStates: 2,
		Symmetric: true,
	})
	if err != nil {
		t.Fatalf("SearchRWMutex: %v", err)
	}
	if res.Found() {
		t.Fatalf("no single-RW-register mutex should exist with 3 values either, but found %s", res.Example.Name())
	}
}

func TestPermuteTableRoundTrip(t *testing.T) {
	sk := tasSkeleton{values: 2, try: 1}
	cells := []sharedmem.Cell{{NextLocal: 2, NewVal: 1}, {NextLocal: 1, NewVal: 0}}
	table := sk.buildTable(cells, 0)
	swap := []int{1, 0}
	double := permuteTable(permuteTable(table, swap), swap)
	for l := range table {
		for v := range table[l] {
			if table[l][v] != double[l][v] {
				t.Fatalf("permuteTable is not an involution at (%d,%d)", l, v)
			}
		}
	}
}

// TestSearchDeterministicAcrossWorkerCounts: the chunked worker pool must
// produce identical results — counts and the witness protocol — at any
// parallelism. The witness is pinned by the CAS-min over enumeration
// indices, so even Example survives the comparison byte for byte.
func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		run  func(workers int) (Result, error)
	}{
		{"tas-sym-found", func(w int) (Result, error) {
			return SearchTASMutex(TASSearchConfig{Values: 2, TryStates: 1, Symmetric: true, Workers: w})
		}},
		{"tas-lockout-none", func(w int) (Result, error) {
			return SearchTASMutex(TASSearchConfig{Values: 2, TryStates: 2, RequireLockoutFree: true, Workers: w})
		}},
		{"rw-none", func(w int) (Result, error) {
			return SearchRWMutex(RWSearchConfig{Values: 2, TryStates: 2, Workers: w})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base, err := c.run(1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, w := range []int{2, 8} {
				got, err := c.run(w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("workers=%d result differs from workers=1:\n%+v\nvs\n%+v", w, got, base)
				}
			}
		})
	}
}

// BenchmarkSearchTASMutexSeq / Par measure the pair-checking fan-out at one
// worker vs all cores on the E01 lockout-freedom search.
func BenchmarkSearchTASMutexSeq(b *testing.B) { benchSearchTAS(b, 1) }
func BenchmarkSearchTASMutexPar(b *testing.B) { benchSearchTAS(b, 0) }

func benchSearchTAS(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		res, err := SearchTASMutex(TASSearchConfig{
			Values: 2, TryStates: 2, RequireLockoutFree: true, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PairsChecked), "pairs")
	}
}

// BenchmarkSearchRWMutexSeq / Par: same for the E03 register search.
func BenchmarkSearchRWMutexSeq(b *testing.B) { benchSearchRW(b, 1) }
func BenchmarkSearchRWMutexPar(b *testing.B) { benchSearchRW(b, 0) }

func benchSearchRW(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		res, err := SearchRWMutex(RWSearchConfig{Values: 2, TryStates: 2, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PairsChecked), "pairs")
	}
}

func TestCriticalReachablePrunes(t *testing.T) {
	sk := tasSkeleton{values: 2, try: 1}
	// A table that loops in trying forever can never reach critical.
	dead := sk.buildTable([]sharedmem.Cell{{NextLocal: 1, NewVal: 0}, {NextLocal: 1, NewVal: 1}}, 0)
	if sk.criticalReachable(dead) {
		t.Fatal("dead table should be pruned")
	}
	live := sk.buildTable([]sharedmem.Cell{{NextLocal: 2, NewVal: 1}, {NextLocal: 1, NewVal: 1}}, 0)
	if !sk.criticalReachable(live) {
		t.Fatal("live table should not be pruned")
	}
}
