package consensus

import (
	"fmt"

	"repro/internal/core"
)

// BenOrSpace is Ben-Or's randomized binary consensus (§2.2.4) recast as a
// finite explorable state space, bounded to a fixed number of phases. It
// is the reference model for the live Ben-Or runtime workload: the
// single-threaded executable in internal/async covers one schedule per
// seed, while this space covers *every* delivery schedule and every coin
// outcome at once, with coin flips encoded as nondeterministic branches
// in the delivery labels.
//
// Protocol (per process): each phase has a report wave (R) and a proposal
// wave (P). A process entering phase ph broadcasts R(ph, value); on
// collecting n−t phase-ph reports it proposes the majority value (2c > n)
// or ⊥ and broadcasts P(ph, prop); on collecting n−t phase-ph proposals
// it decides v if ≥ t+1 carry the same v ≠ ⊥, adopts a proposed v ≠ ⊥ if
// one exists, and otherwise flips a fair coin — then enters phase ph+1.
// After Phases phases the process halts (the bound that makes the space
// finite; unbounded Ben-Or terminates only with probability 1, which is
// exactly how it circumvents FLP).
//
// A configuration packs into 4n + 4·n·Phases bytes: per process
// [value, phase, stage, decided] (phase Phases+1 = halted, decided 0xFF =
// undecided), then per (sender, phase, wave) a [sentValue, deliveredMask]
// pair (sentValue 0xFF = unsent, benOrBot = ⊥; the mask has a bit per
// receiver, with the sender's own bit set at send time). Steps deliver
// one sent-but-undelivered message to one still-running receiver; the
// receiver's entire quorum-advance cascade — possibly several stages,
// possibly several coin flips — runs inside the delivery edge, and the
// coin outcomes are spelled out in the label ("coins=01"), so a live
// trace with concrete flips picks out exactly one branch.
type BenOrSpace struct {
	// Procs is n (2..8 so a delivery mask fits a byte).
	Procs int
	// MaxFaults is t, with 2t < n (the Ben-Or resilience bound).
	MaxFaults int
	// Phases bounds the explored phases (1..8).
	Phases int
	// Inputs are the initial binary values, one per process.
	Inputs []int
}

// Wave kinds and the ⊥ proposal encoding.
const (
	benOrKindR = 0
	benOrKindP = 1
	benOrBot   = 2    // the ⊥ proposal value
	benOrNone  = 0xFF // unsent message / undecided process
)

// NewBenOrSpace validates the parameters.
func NewBenOrSpace(n, t, phases int, inputs []int) (*BenOrSpace, error) {
	if n < 2 || n > 8 {
		return nil, fmt.Errorf("consensus: BenOrSpace needs 2..8 processes, got %d", n)
	}
	if t < 0 || 2*t >= n {
		return nil, fmt.Errorf("consensus: BenOrSpace needs 0 <= 2t < n, got t=%d n=%d", t, n)
	}
	if phases < 1 || phases > 8 {
		return nil, fmt.Errorf("consensus: BenOrSpace needs 1..8 phases, got %d", phases)
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("consensus: BenOrSpace needs %d inputs, got %d", n, len(inputs))
	}
	for p, v := range inputs {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("consensus: input %d of process %d is not binary", v, p)
		}
	}
	return &BenOrSpace{Procs: n, MaxFaults: t, Phases: phases, Inputs: append([]int(nil), inputs...)}, nil
}

// Byte layout helpers.
func (b *BenOrSpace) procOff(p int) int { return 4 * p }
func (b *BenOrSpace) msgOff(s, ph, kind int) int {
	return 4*b.Procs + 2*((s*b.Phases+(ph-1))*2+kind)
}
func (b *BenOrSpace) stateLen() int { return 4*b.Procs + 4*b.Procs*b.Phases }

// System returns the exploration system over packed configurations.
func (b *BenOrSpace) System() core.System[string] { return benOrSystem{b} }

// Decision decodes process p's decision from a state (-1 if undecided).
func (b *BenOrSpace) Decision(st string, p int) int {
	if d := st[b.procOff(p)+3]; d != benOrNone {
		return int(d)
	}
	return -1
}

// Phase decodes process p's current phase (Phases+1 once halted).
func (b *BenOrSpace) Phase(st string, p int) int { return int(st[b.procOff(p)+1]) }

// CheckAgreement verifies Ben-Or's safety on the whole explored graph: no
// reachable state holds two processes decided on different values.
func (b *BenOrSpace) CheckAgreement(g *core.Graph[string]) error {
	if _, trace, ok := g.CheckInvariant(func(st string) bool {
		seen := -1
		for p := 0; p < b.Procs; p++ {
			d := b.Decision(st, p)
			if d < 0 {
				continue
			}
			if seen >= 0 && d != seen {
				return false
			}
			seen = d
		}
		return true
	}); !ok {
		return fmt.Errorf("consensus: ben-or agreement violated:\n%s", trace)
	}
	return nil
}

// benOrPropose applies the stage-0 rule: propose the strict majority of
// the delivered reports, ⊥ if none.
func benOrPropose(c0, c1, n int) byte {
	switch {
	case 2*c0 > n:
		return 0
	case 2*c1 > n:
		return 1
	default:
		return benOrBot
	}
}

// benOrResolve applies the stage-1 rule to delivered proposal counts
// (non-⊥ proposals within a phase all carry the same value, since two
// strict majorities cannot coexist). coin reports that the caller must
// flip for the next value.
func benOrResolve(c0, c1, t int) (decide bool, value byte, coin bool) {
	switch {
	case c0 > 0:
		return c0 >= t+1, 0, false
	case c1 > 0:
		return c1 >= t+1, 1, false
	default:
		return false, 0, true
	}
}

// benOrView abstracts one process's knowledge so the quorum-advance loop
// is shared verbatim between the explored model (reading the packed
// global state) and the live runtime processes (reading their private
// tables) — the two sides cannot drift.
type benOrView interface {
	// header returns the process's [value, phase, stage, decided] block.
	header() (value, phase, stage, decided byte)
	setHeader(value, phase, stage, decided byte)
	// counts tallies the wave-kind messages of one phase delivered to this
	// process (its own included), split by value (cq counts ⊥).
	counts(ph, kind int) (c0, c1, cq int)
	// send records this process's own (ph, kind, val) message as sent and
	// self-delivered; the model marks the table, the live process
	// broadcasts.
	send(ph, kind int, val byte)
}

// benOrAdvance runs the quorum cascade for one process until a quorum is
// missing or the phase bound is passed. flip supplies coin outcomes (the
// model enumerates both; the live process uses its seeded RNG).
func benOrAdvance(v benOrView, n, t, phases int, flip func() byte) {
	for {
		value, phase, stage, decided := v.header()
		if int(phase) > phases {
			return
		}
		if stage == 0 {
			c0, c1, _ := v.counts(int(phase), benOrKindR)
			if c0+c1 < n-t {
				return
			}
			v.setHeader(value, phase, 1, decided)
			v.send(int(phase), benOrKindP, benOrPropose(c0, c1, n))
			continue
		}
		c0, c1, cq := v.counts(int(phase), benOrKindP)
		if c0+c1+cq < n-t {
			return
		}
		dec, val, coin := benOrResolve(c0, c1, t)
		if coin {
			val = flip()
		}
		if dec && decided == benOrNone {
			decided = val
		}
		phase++
		v.setHeader(val, phase, 0, decided)
		if int(phase) <= phases {
			v.send(int(phase), benOrKindR, val)
		}
	}
}

// benOrLabel renders the delivery edge label shared by model and live
// runs: wave, phase, value, route, and the receiver's coin outcomes.
func benOrLabel(kind, ph int, val byte, from, to int, coins []byte) string {
	k := byte('R')
	if kind == benOrKindP {
		k = 'P'
	}
	v := "?"
	if val != benOrBot {
		v = string('0' + val)
	}
	lbl := fmt.Sprintf("deliver %c%d v%s p%d->p%d", k, ph, v, from, to)
	if len(coins) > 0 {
		buf := make([]byte, len(coins))
		for i, c := range coins {
			buf[i] = '0' + c
		}
		lbl += " coins=" + string(buf)
	}
	return lbl
}

// benOrSystem adapts BenOrSpace to core.System.
type benOrSystem struct{ b *BenOrSpace }

func (s benOrSystem) Init() []string {
	b := s.b
	st := make([]byte, b.stateLen())
	for i := 4 * b.Procs; i < len(st); i += 2 {
		st[i] = benOrNone
	}
	for p := 0; p < b.Procs; p++ {
		o := b.procOff(p)
		st[o], st[o+1], st[o+2], st[o+3] = byte(b.Inputs[p]), 1, 0, benOrNone
		m := b.msgOff(p, 1, benOrKindR)
		st[m], st[m+1] = byte(b.Inputs[p]), 1<<uint(p)
	}
	return []string{string(st)}
}

func (s benOrSystem) Steps(st string) []core.Step[string] {
	b := s.b
	var out []core.Step[string]
	for snd := 0; snd < b.Procs; snd++ {
		for ph := 1; ph <= b.Phases; ph++ {
			for kind := 0; kind < 2; kind++ {
				m := b.msgOff(snd, ph, kind)
				val, mask := st[m], st[m+1]
				if val == benOrNone {
					continue
				}
				for q := 0; q < b.Procs; q++ {
					if mask&(1<<uint(q)) != 0 {
						continue
					}
					if int(st[b.procOff(q)+1]) > b.Phases {
						continue // halted receivers no longer consume
					}
					out = append(out, b.deliveries(st, snd, ph, kind, val, q)...)
				}
			}
		}
	}
	return out
}

// deliveries enumerates the branches of delivering (snd, ph, kind, val)
// to q: one successor per coin-outcome sequence of q's advance cascade.
func (b *BenOrSpace) deliveries(st string, snd, ph, kind int, val byte, q int) []core.Step[string] {
	var out []core.Step[string]
	var expand func(tape []byte)
	expand = func(tape []byte) {
		next := []byte(st)
		next[b.msgOff(snd, ph, kind)+1] |= 1 << uint(q)
		v := &benOrModelView{b: b, st: next, p: q}
		pos, starved := 0, false
		benOrAdvance(v, b.Procs, b.MaxFaults, b.Phases, func() byte {
			if pos < len(tape) {
				c := tape[pos]
				pos++
				return c
			}
			starved = true
			return 0
		})
		if starved {
			expand(append(append([]byte(nil), tape...), 0))
			expand(append(append([]byte(nil), tape...), 1))
			return
		}
		out = append(out, core.Step[string]{
			To:    string(next),
			Label: benOrLabel(kind, ph, val, snd, q, tape),
			Actor: q,
		})
	}
	expand(nil)
	return out
}

// benOrModelView implements benOrView over the packed global state.
type benOrModelView struct {
	b  *BenOrSpace
	st []byte
	p  int
}

func (v *benOrModelView) header() (byte, byte, byte, byte) {
	o := v.b.procOff(v.p)
	return v.st[o], v.st[o+1], v.st[o+2], v.st[o+3]
}

func (v *benOrModelView) setHeader(value, phase, stage, decided byte) {
	o := v.b.procOff(v.p)
	v.st[o], v.st[o+1], v.st[o+2], v.st[o+3] = value, phase, stage, decided
}

func (v *benOrModelView) counts(ph, kind int) (c0, c1, cq int) {
	for s := 0; s < v.b.Procs; s++ {
		m := v.b.msgOff(s, ph, kind)
		if v.st[m] == benOrNone || v.st[m+1]&(1<<uint(v.p)) == 0 {
			continue
		}
		switch v.st[m] {
		case 0:
			c0++
		case 1:
			c1++
		default:
			cq++
		}
	}
	return
}

func (v *benOrModelView) send(ph, kind int, val byte) {
	m := v.b.msgOff(v.p, ph, kind)
	v.st[m], v.st[m+1] = val, 1<<uint(v.p)
}
