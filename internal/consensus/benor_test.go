package consensus

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestNewBenOrSpaceValidation(t *testing.T) {
	cases := []struct {
		name    string
		n, t, p int
		inputs  []int
		wantErr string
	}{
		{"too few procs", 1, 0, 1, []int{0}, "2..8 processes"},
		{"too many procs", 9, 1, 1, make([]int, 9), "2..8 processes"},
		{"faults too high", 4, 2, 1, []int{0, 1, 0, 1}, "2t < n"},
		{"negative faults", 3, -1, 1, []int{0, 1, 0}, "2t < n"},
		{"zero phases", 3, 1, 0, []int{0, 1, 0}, "1..8 phases"},
		{"too many phases", 3, 1, 9, []int{0, 1, 0}, "1..8 phases"},
		{"wrong input count", 3, 1, 1, []int{0, 1}, "3 inputs"},
		{"non-binary input", 3, 1, 1, []int{0, 2, 1}, "not binary"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewBenOrSpace(c.n, c.t, c.p, c.inputs)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("NewBenOrSpace(%d,%d,%d,%v) = %v, want %q",
					c.n, c.t, c.p, c.inputs, err, c.wantErr)
			}
		})
	}
	if _, err := NewBenOrSpace(3, 1, 1, []int{0, 1, 1}); err != nil {
		t.Fatalf("valid configuration rejected: %v", err)
	}
}

func TestNewLiveBenOrValidation(t *testing.T) {
	cases := []struct {
		name    string
		n, t, p int
		inputs  []int
		wantErr string
	}{
		{"too few procs", 1, 0, 1, []int{0}, "2..255 processes"},
		{"faults too high", 5, 3, 1, make([]int, 5), "2t < n"},
		{"zero phases", 3, 1, 0, []int{0, 1, 0}, "1..64 phases"},
		{"too many phases", 3, 1, 65, []int{0, 1, 0}, "1..64 phases"},
		{"wrong input count", 3, 1, 1, []int{0}, "3 inputs"},
		{"non-binary input", 2, 0, 1, []int{0, 7}, "not binary"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewLiveBenOr(c.n, c.t, c.p, c.inputs)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("NewLiveBenOr(%d,%d,%d,%v) = %v, want %q",
					c.n, c.t, c.p, c.inputs, err, c.wantErr)
			}
		})
	}
	w, err := NewLiveBenOr(64, 31, 4, make([]int, 64))
	if err != nil {
		t.Fatalf("valid large configuration rejected: %v", err)
	}
	if w.Name() != "ben-or" || w.NumProcs() != 64 {
		t.Fatalf("Name/NumProcs = %q/%d", w.Name(), w.NumProcs())
	}
	if g, err := w.Model(); g != nil || err != nil {
		t.Fatalf("n=64 must be live-only, got graph=%v err=%v", g, err)
	}
}

func TestBenOrProposeResolve(t *testing.T) {
	// Propose: strict majority or ⊥.
	for _, c := range []struct {
		c0, c1, n int
		want      byte
	}{
		{3, 0, 3, 0}, {2, 0, 3, 0}, {0, 2, 3, 1}, {1, 1, 3, benOrBot},
		{2, 2, 4, benOrBot}, {3, 1, 4, 0},
	} {
		if got := benOrPropose(c.c0, c.c1, c.n); got != c.want {
			t.Errorf("benOrPropose(%d,%d,%d) = %d, want %d", c.c0, c.c1, c.n, got, c.want)
		}
	}
	// Resolve: decide at t+1 matching proposals, adopt below, coin at none.
	for _, c := range []struct {
		c0, c1, t  int
		wantDecide bool
		wantVal    byte
		wantCoin   bool
	}{
		{2, 0, 1, true, 0, false},  // c0 >= t+1: decide 0
		{1, 0, 1, false, 0, false}, // adopt 0 without deciding
		{0, 2, 1, true, 1, false},  // decide 1
		{0, 1, 1, false, 1, false}, // adopt 1
		{0, 0, 1, false, 0, true},  // all ⊥: caller must flip a coin
	} {
		decide, val, coin := benOrResolve(c.c0, c.c1, c.t)
		if decide != c.wantDecide || val != c.wantVal || coin != c.wantCoin {
			t.Errorf("benOrResolve(%d,%d,t=%d) = (%v,%d,%v), want (%v,%d,%v)",
				c.c0, c.c1, c.t, decide, val, coin, c.wantDecide, c.wantVal, c.wantCoin)
		}
	}
}

// TestBenOrSpaceUnanimous: with unanimous inputs Ben-Or decides that value
// in the first phase on every schedule (validity), and the explored graph
// satisfies agreement and reaches terminal states.
func TestBenOrSpaceUnanimous(t *testing.T) {
	for _, input := range []int{0, 1} {
		b, err := NewBenOrSpace(3, 1, 1, []int{input, input, input})
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.Explore(b.System(), core.ExploreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.CheckAgreement(g); err != nil {
			t.Fatal(err)
		}
		terms := g.Terminals()
		if len(terms) == 0 {
			t.Fatal("no terminal states explored")
		}
		for _, id := range terms {
			st := g.State(id)
			for p := 0; p < 3; p++ {
				if d := b.Decision(st, p); d != input {
					t.Fatalf("unanimous %d: process %d ended with decision %d", input, p, d)
				}
				if ph := b.Phase(st, p); ph != 2 {
					t.Fatalf("process %d halted in phase %d, want 2 (= Phases+1)", p, ph)
				}
			}
		}
	}
}

// TestBenOrSpaceSplit: with split inputs one phase cannot force a decision
// on every schedule, but agreement must still hold everywhere.
func TestBenOrSpaceSplit(t *testing.T) {
	b, err := NewBenOrSpace(3, 1, 1, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Explore(b.System(), core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckAgreement(g); err != nil {
		t.Fatal(err)
	}
	if g.Len() < 1000 {
		t.Fatalf("split 3-process Ben-Or explored only %d states; the space should be thousands", g.Len())
	}
	// Some terminal state must exist where at least one process decided 1
	// (the majority value wins on schedules delivering both 1-reports first).
	sawDecided := false
	for _, id := range g.Terminals() {
		st := g.State(id)
		for p := 0; p < 3; p++ {
			if b.Decision(st, p) >= 0 {
				sawDecided = true
			}
		}
	}
	if !sawDecided {
		t.Fatal("no schedule decided within one phase; majority schedules should")
	}
}
