package consensus

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/rounds"
)

// ApproxAgreement is the round-by-round approximate agreement algorithm of
// Dolev, Lynch, Pinter, Stark and Weihl ([36], §2.2.2): in each round
// every process broadcasts its current real value, discards the t lowest
// and t highest received values, and averages the rest. The paper reports
// that k independent rounds achieve an output-to-input range ratio of
// about (t/n)^k, while the lower bound for any k-round algorithm is
// (t/(nk))^k — the gap Fekete's counterexample algorithm [50] exploited.
//
// Values are scaled integers (millionths) so runs are exact and
// deterministic.
type ApproxAgreement struct {
	// Procs is the number of processes n.
	Procs int
	// MaxFaults is the tolerated Byzantine fault count t.
	MaxFaults int
}

var _ rounds.Protocol = (*ApproxAgreement)(nil)

// approxState is the process's current value in millionths.
type approxState int64

// Name implements rounds.Protocol.
func (a *ApproxAgreement) Name() string { return "approximate-agreement" }

// NumProcs implements rounds.Protocol.
func (a *ApproxAgreement) NumProcs() int { return a.Procs }

// Init implements rounds.Protocol. The input is interpreted directly in
// millionths.
func (a *ApproxAgreement) Init(_, input int) any { return approxState(input) }

// Send implements rounds.Protocol.
func (a *ApproxAgreement) Send(_ int, state any, _, _ int) rounds.Message {
	return strconv.FormatInt(int64(state.(approxState)), 10)
}

// Receive implements rounds.Protocol: trimmed mean of received + own value.
func (a *ApproxAgreement) Receive(_ int, state any, _ int, msgs []rounds.Message) any {
	own := int64(state.(approxState))
	vals := make([]int64, 0, a.Procs)
	vals = append(vals, own)
	for _, m := range msgs {
		if m == "" {
			continue
		}
		if v, err := strconv.ParseInt(m, 10, 64); err == nil {
			vals = append(vals, v)
		}
	}
	// Pad missing senders (crashed) with own value, so trimming is
	// calibrated to n values.
	for len(vals) < a.Procs {
		vals = append(vals, own)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	trimmed := vals[a.MaxFaults : len(vals)-a.MaxFaults]
	var sum int64
	for _, v := range trimmed {
		sum += v
	}
	return approxState(sum / int64(len(trimmed)))
}

// Decide implements rounds.Protocol: the current value.
func (a *ApproxAgreement) Decide(_ int, state any) (int, bool) {
	return int(state.(approxState)), true
}

// ApproxReport measures one approximate agreement run.
type ApproxReport struct {
	// InputRange and OutputRange are the spreads of nonfaulty inputs and
	// outputs (millionths).
	InputRange, OutputRange int64
	// Ratio is OutputRange/InputRange.
	Ratio float64
	// RoundByRoundBound is the (t/n)^k ratio the paper attributes to this
	// algorithm family.
	RoundByRoundBound float64
	// LowerBound is the (t/(n·k))^k bound no k-round algorithm can beat.
	LowerBound float64
	// Rounds is k.
	Rounds int
}

// MeasureApprox runs the algorithm for k rounds under adv and reports the
// achieved convergence ratio next to the paper's two bounds.
func MeasureApprox(n, t, k int, inputs []int, adv rounds.Adversary) (ApproxReport, error) {
	a := &ApproxAgreement{Procs: n, MaxFaults: t}
	res, err := rounds.Run(a, inputs, adv, rounds.RunOptions{Rounds: k})
	if err != nil {
		return ApproxReport{}, fmt.Errorf("consensus: approximate agreement run: %w", err)
	}
	rep := ApproxReport{Rounds: k}
	var inLo, inHi, outLo, outHi int64
	first := true
	for p := 0; p < n; p++ {
		if res.Faulty[p] {
			continue
		}
		in := int64(inputs[p])
		out := int64(res.Decisions[p])
		if first {
			inLo, inHi, outLo, outHi = in, in, out, out
			first = false
			continue
		}
		inLo, inHi = min64(inLo, in), max64(inHi, in)
		outLo, outHi = min64(outLo, out), max64(outHi, out)
	}
	rep.InputRange = inHi - inLo
	rep.OutputRange = outHi - outLo
	if rep.InputRange > 0 {
		rep.Ratio = float64(rep.OutputRange) / float64(rep.InputRange)
	}
	rep.RoundByRoundBound = pow(float64(t)/float64(n), k)
	rep.LowerBound = pow(float64(t)/float64(n*k), k)
	return rep, nil
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TwoFacedExtremes is the adversary that keeps approximate agreement from
// converging faster than the (t/n)-per-round factor: the corrupt process
// reports the lowest value to half its peers and the highest to the other
// half, every round, pulling the honest trimmed means apart.
func TwoFacedExtremes(corrupt int, high int64) rounds.Adversary {
	return &rounds.ByzantineStrategy{
		Corrupt: map[int]bool{corrupt: true},
		Forge: func(_, _, to int, _ rounds.Message) rounds.Message {
			if to%2 == 0 {
				return "0"
			}
			return strconv.FormatInt(high, 10)
		},
	}
}
