package consensus

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rounds"
)

// AuthBA is Dolev–Strong authenticated Byzantine broadcast (§2.2.3): a
// designated general signs and broadcasts its value; every process relays
// each newly accepted value after countersigning, and a value is accepted
// in round r only when it carries r distinct valid signatures starting
// with the general's. After t+1 rounds the nonfaulty processes hold equal
// accepted sets and decide. Authentication defeats the n > 3t bound (any
// n > t works), but the Dolev–Reischuk lower bound [42] still forces
// Ω(nt) messages — measurable here via rounds.Result.MessagesSent.
//
// Signatures are HMAC-SHA256 under per-process keys derived from a seed, a
// stand-in for the paper's abstract unforgeable signatures: inside the
// simulation nobody except process p (and test adversaries that explicitly
// request p's signing oracle via SignAs, modeling p's own corruption) can
// produce p's signature.
type AuthBA struct {
	// Procs is the number of processes n (any n > MaxFaults works).
	Procs int
	// MaxFaults is the tolerated fault count t; the protocol runs t+1
	// rounds.
	MaxFaults int
	// General is the broadcasting process.
	General int
	// DefaultValue is decided when zero or several values were accepted.
	DefaultValue int

	keys [][]byte
}

var _ rounds.Protocol = (*AuthBA)(nil)

// NewAuthBA constructs an authenticated-broadcast instance with keys
// derived deterministically from seed.
func NewAuthBA(n, t, general int, defaultValue int, seed int64) *AuthBA {
	keys := make([][]byte, n)
	for p := 0; p < n; p++ {
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], uint64(seed))
		binary.BigEndian.PutUint64(buf[8:], uint64(p))
		sum := sha256.Sum256(buf[:])
		keys[p] = sum[:]
	}
	return &AuthBA{Procs: n, MaxFaults: t, General: general, DefaultValue: defaultValue, keys: keys}
}

// Rounds returns the protocol's round count, t+1.
func (a *AuthBA) Rounds() int { return a.MaxFaults + 1 }

// SignAs produces process p's signature over content. Honest code paths
// call it only for their own id; test adversaries may call it for the
// processes they corrupt.
func (a *AuthBA) SignAs(p int, content string) string {
	mac := hmac.New(sha256.New, a.keys[p])
	mac.Write([]byte(content))
	return hex.EncodeToString(mac.Sum(nil)[:8])
}

// chainContent is the byte string covered by the i-th signature: the value
// plus all earlier signers.
func chainContent(value int, signers []int) string {
	parts := make([]string, 0, len(signers)+1)
	parts = append(parts, "ba:"+strconv.Itoa(value))
	for _, s := range signers {
		parts = append(parts, strconv.Itoa(s))
	}
	return strings.Join(parts, "|")
}

// EncodeChain renders a signed value as a wire message:
// "v;signer:sig;signer:sig;...".
func (a *AuthBA) EncodeChain(value int, signers []int, sigs []string) rounds.Message {
	parts := make([]string, 0, len(signers)+1)
	parts = append(parts, strconv.Itoa(value))
	for i, s := range signers {
		parts = append(parts, strconv.Itoa(s)+":"+sigs[i])
	}
	return strings.Join(parts, ";")
}

// VerifyChain parses and validates a wire message in round r: the chain
// must carry exactly r distinct valid signatures, the first by the
// general. It returns the value and signer list.
func (a *AuthBA) VerifyChain(m rounds.Message, r int) (value int, signers []int, ok bool) {
	parts := strings.Split(m, ";")
	if len(parts) != r+1 {
		return 0, nil, false
	}
	value, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, nil, false
	}
	seen := map[int]bool{}
	signers = make([]int, 0, r)
	for i, part := range parts[1:] {
		colon := strings.IndexByte(part, ':')
		if colon < 0 {
			return 0, nil, false
		}
		s, err := strconv.Atoi(part[:colon])
		if err != nil || s < 0 || s >= a.Procs || seen[s] {
			return 0, nil, false
		}
		if i == 0 && s != a.General {
			return 0, nil, false
		}
		want := a.SignAs(s, chainContent(value, signers))
		if !hmac.Equal([]byte(part[colon+1:]), []byte(want)) {
			return 0, nil, false
		}
		seen[s] = true
		signers = append(signers, s)
	}
	return value, signers, true
}

// authState holds the accepted values and the relays queued for the next
// round.
type authState struct {
	accepted map[int]bool
	// relay[v] is the extended chain to forward for newly accepted v.
	relay map[int]rounds.Message
	input int
	self  int
}

// Name implements rounds.Protocol.
func (a *AuthBA) Name() string { return "dolev-strong-authenticated" }

// NumProcs implements rounds.Protocol.
func (a *AuthBA) NumProcs() int { return a.Procs }

// Init implements rounds.Protocol.
func (a *AuthBA) Init(p, input int) any {
	s := &authState{accepted: map[int]bool{}, relay: map[int]rounds.Message{}, input: input, self: p}
	if p == a.General {
		sig := a.SignAs(p, chainContent(input, nil))
		s.relay[input] = a.EncodeChain(input, []int{p}, []string{sig})
		s.accepted[input] = true
	}
	return s
}

// Send implements rounds.Protocol: forward every queued relay (all queued
// chains concatenated with "&").
func (a *AuthBA) Send(_ int, state any, _, _ int) rounds.Message {
	s := state.(*authState)
	if len(s.relay) == 0 {
		return ""
	}
	vals := make([]int, 0, len(s.relay))
	for v := range s.relay {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	parts := make([]string, 0, len(vals))
	for _, v := range vals {
		parts = append(parts, s.relay[v])
	}
	return strings.Join(parts, "&")
}

// Receive implements rounds.Protocol: verify chains, accept new values,
// and queue countersigned relays for the next round.
func (a *AuthBA) Receive(p int, state any, r int, msgs []rounds.Message) any {
	s := state.(*authState)
	s.relay = map[int]rounds.Message{}
	for _, m := range msgs {
		if m == "" {
			continue
		}
		for _, chain := range strings.Split(m, "&") {
			v, signers, ok := a.VerifyChain(chain, r)
			if !ok || s.accepted[v] {
				continue
			}
			s.accepted[v] = true
			if r <= a.MaxFaults && !containsInt(signers, p) {
				sig := a.SignAs(p, chainContent(v, signers))
				newSigners := append(append([]int{}, signers...), p)
				sigs := extractSigs(chain)
				sigs = append(sigs, sig)
				s.relay[v] = a.EncodeChain(v, newSigners, sigs)
			}
		}
	}
	return s
}

func extractSigs(chain string) []string {
	parts := strings.Split(chain, ";")
	out := make([]string, 0, len(parts)-1)
	for _, part := range parts[1:] {
		if colon := strings.IndexByte(part, ':'); colon >= 0 {
			out = append(out, part[colon+1:])
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// Decide implements rounds.Protocol: the unique accepted value, or the
// default when none or several were accepted.
func (a *AuthBA) Decide(_ int, state any) (int, bool) {
	s := state.(*authState)
	if len(s.accepted) == 1 {
		for v := range s.accepted {
			return v, true
		}
	}
	return a.DefaultValue, true
}
