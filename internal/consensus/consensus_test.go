package consensus

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rounds"
	"repro/internal/spec"
)

func TestFloodSetExhaustive(t *testing.T) {
	cases := []struct{ n, tt int }{{3, 1}, {3, 2}, {4, 1}}
	for _, c := range cases {
		count, err := VerifyFloodSetExhaustively(c.n, c.tt)
		if err != nil {
			t.Errorf("n=%d t=%d: %v", c.n, c.tt, err)
			continue
		}
		if count == 0 {
			t.Errorf("n=%d t=%d: no executions verified", c.n, c.tt)
		}
	}
}

// TestFloodSetTruncatedFails shows that running FloodSet for only t rounds
// admits a disagreement under some crash schedule — the executable side of
// the t+1 round lower bound.
func TestFloodSetTruncatedFails(t *testing.T) {
	n, tt := 4, 2 // the lower bound needs n >= t+2
	f := &FloodSet{Procs: n, MaxFaults: tt}
	truncated := tt // one round short
	found := false
	for _, in := range AllBinaryInputs(n) {
		for _, sched := range AllCrashSchedules(n, tt, truncated) {
			res, err := rounds.Run(f, in, sched, rounds.RunOptions{Rounds: truncated})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if spec.CheckCrashConsensus(in, res.Decisions, res.Faulty) != nil {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("expected a violating execution for t-round FloodSet")
	}
}

func TestChainLowerBound(t *testing.T) {
	cases := []struct {
		n, tt, k  int
		wantChain bool
	}{
		{3, 1, 1, true},  // 1 round insufficient for 1 fault
		{4, 2, 2, true},  // 2 rounds insufficient for 2 faults (n >= t+2)
		{3, 1, 2, false}, // t+1 rounds suffice
		{4, 1, 1, true},
		// The lower bound needs n >= t+2: with n = t+1 = 3 there is no
		// chain at k = t = 2 — a t-round protocol exists in that corner,
		// and the mechanized search correctly refuses to "prove" too much.
		{3, 2, 2, false},
		{2, 1, 1, false}, // same corner at n=2: one round suffices
	}
	for _, c := range cases {
		res, err := ChainLowerBound(c.n, c.tt, c.k)
		if err != nil {
			t.Fatalf("ChainLowerBound(%d,%d,%d): %v", c.n, c.tt, c.k, err)
		}
		if res.ChainFound != c.wantChain {
			t.Errorf("%s: ChainFound = %v, want %v", res, res.ChainFound, c.wantChain)
		}
		if c.wantChain && res.ChainLength == 0 {
			t.Errorf("%s: expected a nonzero chain length", res)
		}
	}
}

// twoFacedStrategies enumerates deterministic Byzantine strategies for one
// corrupt process f against EIG with t=1: in round 1 it sends an arbitrary
// binary value per receiver; in round 2 it relays arbitrary binary values
// for each level-1 label per receiver.
func twoFacedStrategies(n, f int) []*rounds.ByzantineStrategy {
	receivers := otherProcs(n, f)
	var labels []string
	for q := 0; q < n; q++ {
		if q != f {
			labels = append(labels, strconv.Itoa(q))
		}
	}
	r1Bits := len(receivers)
	r2Bits := len(labels) * len(receivers)
	var out []*rounds.ByzantineStrategy
	for seed := 0; seed < 1<<uint(r1Bits+r2Bits); seed++ {
		seed := seed
		r1val := map[int]int{}
		for i, q := range receivers {
			r1val[q] = (seed >> uint(i)) & 1
		}
		r2val := map[string]int{}
		for li, l := range labels {
			for ri, q := range receivers {
				bit := r1Bits + li*len(receivers) + ri
				r2val[l+">"+strconv.Itoa(q)] = (seed >> uint(bit)) & 1
			}
		}
		out = append(out, &rounds.ByzantineStrategy{
			Corrupt: map[int]bool{f: true},
			Forge: func(r, _, to int, _ rounds.Message) rounds.Message {
				if r == 1 {
					return "=" + strconv.Itoa(r1val[to])
				}
				parts := make([]string, 0, len(labels))
				for _, l := range labels {
					parts = append(parts, l+"="+strconv.Itoa(r2val[l+">"+strconv.Itoa(to)]))
				}
				return strings.Join(parts, ";")
			},
		})
	}
	return out
}

// TestEIGWithFourProcessesToleratesOneByzantine: n=4 > 3t=3, so agreement
// and validity must hold among nonfaulty processes under every two-faced
// strategy of the corrupt process.
func TestEIGWithFourProcessesToleratesOneByzantine(t *testing.T) {
	n, f := 4, 3
	e := &EIG{Procs: n, MaxFaults: 1}
	strategies := twoFacedStrategies(n, f)
	runs := 0
	for mask := 0; mask < 8; mask++ {
		inputs := []int{mask & 1, (mask >> 1) & 1, (mask >> 2) & 1, 0}
		for _, adv := range strategies {
			res, err := rounds.Run(e, inputs, adv, rounds.RunOptions{Rounds: e.Rounds()})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := spec.CheckConsensus(inputs, res.Decisions, res.Faulty); err != nil {
				t.Fatalf("inputs=%v: %v (decisions=%v)", inputs, err, res.Decisions)
			}
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("no strategies enumerated")
	}
}

// TestEIGWithThreeProcessesFails: n=3 = 3t, so some Byzantine behavior
// must break agreement or validity (§2.2.1) — and the two-faced family
// contains it.
func TestEIGWithThreeProcessesFails(t *testing.T) {
	n, f := 3, 2
	e := &EIG{Procs: n, MaxFaults: 1}
	for _, inputs := range [][]int{{0, 1, 0}, {0, 0, 0}, {1, 1, 0}, {0, 1, 1}} {
		for _, adv := range twoFacedStrategies(n, f) {
			res, err := rounds.Run(e, inputs, adv, rounds.RunOptions{Rounds: e.Rounds()})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if spec.CheckConsensus(inputs, res.Decisions, res.Faulty) != nil {
				return // found the predicted violation
			}
		}
	}
	t.Fatal("no violating Byzantine strategy found for n=3, t=1 — but n <= 3t should fail")
}

func TestEIGFailureFree(t *testing.T) {
	for n := 4; n <= 5; n++ {
		e := &EIG{Procs: n, MaxFaults: 1}
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i % 2
		}
		res, err := rounds.Run(e, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: e.Rounds()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := spec.CheckConsensus(inputs, res.Decisions, nil); err != nil {
			t.Fatalf("n=%d: %v (decisions=%v)", n, err, res.Decisions)
		}
	}
}

func TestApproxAgreementConvergence(t *testing.T) {
	n, tt := 5, 1
	inputs := []int{0, 1_000_000, 500_000, 250_000, 750_000}
	for _, k := range []int{1, 2, 3} {
		rep, err := MeasureApprox(n, tt, k, inputs, rounds.NoFaults{})
		if err != nil {
			t.Fatalf("MeasureApprox: %v", err)
		}
		if rep.InputRange != 1_000_000 {
			t.Fatalf("input range = %d", rep.InputRange)
		}
		// Convergence must beat the per-round factor t/n each round
		// in the failure-free case (the paper's ~(t/n)^k shape), up to
		// integer-rounding slack.
		slack := 0.02
		if rep.Ratio > rep.RoundByRoundBound+slack {
			t.Errorf("k=%d: ratio %.4f exceeds round-by-round bound %.4f", k, rep.Ratio, rep.RoundByRoundBound)
		}
		// And no algorithm can beat the (t/(nk))^k lower bound.
		if rep.Ratio != 0 && rep.Ratio < rep.LowerBound {
			t.Errorf("k=%d: ratio %.6f beats the lower bound %.6f — measurement bug", k, rep.Ratio, rep.LowerBound)
		}
	}
}

func TestApproxAgreementWithCrash(t *testing.T) {
	n, tt := 4, 1
	inputs := []int{0, 900_000, 300_000, 600_000}
	sched := &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
		1: {Round: 1, DeliverTo: map[int]bool{0: true}},
	}}
	rep, err := MeasureApprox(n, tt, 3, inputs, sched)
	if err != nil {
		t.Fatalf("MeasureApprox: %v", err)
	}
	if rep.OutputRange >= rep.InputRange {
		t.Errorf("no convergence despite 3 rounds: %+v", rep)
	}
}

func TestTwoPhaseCommitMessageCount(t *testing.T) {
	// E14: every failure-free committing execution uses exactly 2n-2
	// messages — the Dwork–Skeen bound, met by 2PC.
	for _, n := range []int{3, 4, 6} {
		c := &TwoPhaseCommit{Procs: n}
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = spec.Commit
		}
		res, err := rounds.Run(c, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: c.Rounds()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for p, d := range res.Decisions {
			if d != spec.Commit {
				t.Fatalf("n=%d: p%d decided %d, want commit", n, p, d)
			}
		}
		if got, want := res.MessagesSent, 2*n-2; got != want {
			t.Errorf("n=%d: messages = %d, want %d", n, got, want)
		}
		if err := spec.CheckCommitRule(inputs, res.Decisions, false); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestTwoPhaseCommitAbortPaths(t *testing.T) {
	n := 4
	c := &TwoPhaseCommit{Procs: n}
	// One abort vote forces abort.
	inputs := []int{spec.Commit, spec.Abort, spec.Commit, spec.Commit}
	res, err := rounds.Run(c, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := spec.CheckCommitRule(inputs, res.Decisions, false); err != nil {
		t.Fatalf("commit rule: %v", err)
	}
	for p, d := range res.Decisions {
		if d != spec.Abort {
			t.Errorf("p%d decided %d, want abort", p, d)
		}
	}
	// A participant crashing before voting forces abort too.
	all := []int{spec.Commit, spec.Commit, spec.Commit, spec.Commit}
	sched := &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
		2: {Round: 1, DeliverTo: map[int]bool{}},
	}}
	res, err = rounds.Run(c, all, sched, rounds.RunOptions{Rounds: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range res.Decisions {
		if res.Faulty[p] || d == spec.Undecided {
			continue
		}
		if d != spec.Abort {
			t.Errorf("p%d decided %d, want abort after missing vote", p, d)
		}
	}
	// A coordinator crash after collecting votes leaves participants
	// undecided: the blocking behavior that motivates §2.2.5.
	sched = &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
		0: {Round: 2, DeliverTo: map[int]bool{}},
	}}
	res, err = rounds.Run(c, all, sched, rounds.RunOptions{Rounds: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p := 1; p < n; p++ {
		if res.Decisions[p] != spec.Undecided {
			t.Errorf("p%d decided %d despite silent coordinator", p, res.Decisions[p])
		}
	}
}

func TestAuthBAHonestGeneral(t *testing.T) {
	for _, tt := range []int{1, 2} {
		n := tt + 2 // authentication needs only n > t
		ba := NewAuthBA(n, tt, 0, 0, 42)
		inputs := make([]int, n)
		inputs[0] = 1
		res, err := rounds.Run(ba, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: ba.Rounds()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for p, d := range res.Decisions {
			if d != 1 {
				t.Errorf("n=%d t=%d: p%d decided %d, want the general's 1", n, tt, p, d)
			}
		}
	}
}

func TestAuthBAByzantineGeneralStillAgrees(t *testing.T) {
	// The corrupt general signs conflicting values for different
	// receivers; relaying with signature chains still forces agreement
	// among the nonfaulty processes.
	n, tt := 4, 1
	ba := NewAuthBA(n, tt, 0, 0, 7)
	sig0 := ba.SignAs(0, chainContent(0, nil))
	sig1 := ba.SignAs(0, chainContent(1, nil))
	chain0 := ba.EncodeChain(0, []int{0}, []string{sig0})
	chain1 := ba.EncodeChain(1, []int{0}, []string{sig1})
	adv := &rounds.ByzantineStrategy{
		Corrupt: map[int]bool{0: true},
		Forge: func(r, _, to int, honest rounds.Message) rounds.Message {
			if r != 1 {
				return honest
			}
			if to%2 == 0 {
				return chain0
			}
			return chain1
		},
	}
	inputs := []int{0, 0, 0, 0}
	res, err := rounds.Run(ba, inputs, adv, rounds.RunOptions{Rounds: ba.Rounds()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := spec.CheckAgreement(res.Decisions, res.Faulty); err != nil {
		t.Fatalf("agreement among nonfaulty: %v (decisions=%v)", err, res.Decisions)
	}
}

func TestAuthBARejectsForgedSignatures(t *testing.T) {
	n, tt := 4, 1
	ba := NewAuthBA(n, tt, 0, 0, 9)
	// A corrupt relay fabricates a chain with a bogus general signature.
	adv := &rounds.ByzantineStrategy{
		Corrupt: map[int]bool{2: true},
		Forge: func(r, _, _ int, _ rounds.Message) rounds.Message {
			forged := ba.EncodeChain(1, []int{0}, []string{"deadbeef00000000"})
			if r == 1 {
				return forged
			}
			return ""
		},
	}
	inputs := []int{0, 0, 0, 0}
	res, err := rounds.Run(ba, inputs, adv, rounds.RunOptions{Rounds: ba.Rounds()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range res.Decisions {
		if res.Faulty[p] {
			continue
		}
		if d != 0 {
			t.Errorf("p%d decided %d despite forged chains, want general's 0", p, d)
		}
	}
}

func TestVerifyChainValidation(t *testing.T) {
	ba := NewAuthBA(4, 2, 0, 0, 1)
	sig := ba.SignAs(0, chainContent(1, nil))
	chain := ba.EncodeChain(1, []int{0}, []string{sig})
	if _, _, ok := ba.VerifyChain(chain, 1); !ok {
		t.Fatal("valid chain rejected")
	}
	// Wrong round length.
	if _, _, ok := ba.VerifyChain(chain, 2); ok {
		t.Fatal("round-length mismatch accepted")
	}
	// Tampered value.
	bad := strings.Replace(chain, "1;", "0;", 1)
	if _, _, ok := ba.VerifyChain(bad, 1); ok {
		t.Fatal("tampered chain accepted")
	}
	// Chain not starting with the general.
	sig2 := ba.SignAs(2, chainContent(1, nil))
	notGeneral := ba.EncodeChain(1, []int{2}, []string{sig2})
	if _, _, ok := ba.VerifyChain(notGeneral, 1); ok {
		t.Fatal("chain not starting with the general accepted")
	}
}

func TestAuthBAMessageGrowth(t *testing.T) {
	// E10 shape: total message volume grows at least linearly in n*t —
	// the Dolev–Reischuk Ω(nt) lower bound for authenticated agreement.
	var counts []int
	for _, tt := range []int{1, 2, 3} {
		n := 2*tt + 2
		ba := NewAuthBA(n, tt, 0, 0, 3)
		inputs := make([]int, n)
		inputs[0] = 1
		res, err := rounds.Run(ba, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: ba.Rounds()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		counts = append(counts, res.MessagesSent)
		if res.MessagesSent < n*tt/2 {
			t.Errorf("t=%d: %d messages, below the Ω(nt) shape", tt, res.MessagesSent)
		}
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("message counts should grow with t: %v", counts)
	}
}

func TestEncodeDecodeSet(t *testing.T) {
	for _, s := range [][]int{nil, {0}, {0, 1}, {1, 2, 5}} {
		got := decodeSet(encodeSet(s))
		if fmt.Sprint(got) != fmt.Sprint([]int(s)) && !(len(got) == 0 && len(s) == 0) {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
}

func TestAllCrashSchedulesCountsFaults(t *testing.T) {
	scheds := AllCrashSchedules(3, 1, 1)
	// 1 failure-free + 3 procs * 1 round * 2^2 subsets = 13.
	if len(scheds) != 13 {
		t.Fatalf("len = %d, want 13", len(scheds))
	}
	for _, s := range scheds {
		if s.NumFaulty() > 1 {
			t.Fatalf("schedule with %d faults enumerated for t=1", s.NumFaulty())
		}
	}
}

func TestAllBinaryInputs(t *testing.T) {
	ins := AllBinaryInputs(3)
	if len(ins) != 8 {
		t.Fatalf("len = %d, want 8", len(ins))
	}
}

func TestApproxAgreementUnderTwoFacedAdversary(t *testing.T) {
	// With a Byzantine two-faced process, convergence slows to the
	// paper's ~(t/n) per-round shape: the ratio is nonzero but shrinks
	// geometrically, staying between the two bounds (up to rounding).
	n, tt := 5, 1
	inputs := []int{0, 1_000_000, 500_000, 250_000, 0}
	prev := 2.0
	for _, k := range []int{1, 2, 3} {
		rep, err := MeasureApprox(n, tt, k, inputs, TwoFacedExtremes(4, 1_000_000))
		if err != nil {
			t.Fatalf("MeasureApprox: %v", err)
		}
		if rep.Ratio >= prev && rep.Ratio != 0 {
			t.Errorf("k=%d: ratio %.6f did not shrink from %.6f", k, rep.Ratio, prev)
		}
		if rep.Ratio < rep.LowerBound && rep.Ratio != 0 {
			t.Errorf("k=%d: ratio %.8f beats the universal lower bound %.8f", k, rep.Ratio, rep.LowerBound)
		}
		prev = rep.Ratio
	}
}
