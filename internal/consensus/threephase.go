package consensus

import (
	"strconv"
	"strings"

	"repro/internal/rounds"
	"repro/internal/spec"
)

// ThreePhaseCommit is the classic non-blocking refinement of 2PC (§2.2.5)
// in its synchronous form, tolerating one crash fault: the coordinator
// inserts a pre-commit round between vote collection and the decision, and
// a final participant round exchanges "I saw pre-commit / commit" flags,
// so that a participant facing coordinator silence can terminate safely —
// commit if anyone witnessed the pre-commit, abort otherwise. This removes
// the blocking window that TwoPhaseCommit demonstrates. (The FLP-implied
// caveat stands: this termination guarantee is a synchronous-model
// property; the §2.2.5 asynchronous commit impossibility is untouched.)
//
// Round structure: 1 votes to coordinator; 2 coordinator pre-commit;
// 3 coordinator commit/abort; 4 participants exchange witness flags and
// decide.
type ThreePhaseCommit struct {
	// Procs is the number of processes; process 0 coordinates.
	Procs int
}

var _ rounds.Protocol = (*ThreePhaseCommit)(nil)

// tpc3State tracks one participant.
type tpc3State struct {
	vote       int
	votes      []int // coordinator only
	preCommit  bool  // coordinator: all votes were commit
	sawPrepare bool  // participant: received pre-commit
	gotWord    int   // participant: explicit round-3 word (-1 none)
	decision   int
	decided    bool
}

// Rounds returns the protocol's round count, 4.
func (c *ThreePhaseCommit) Rounds() int { return 4 }

// Name implements rounds.Protocol.
func (c *ThreePhaseCommit) Name() string { return "three-phase-commit" }

// NumProcs implements rounds.Protocol.
func (c *ThreePhaseCommit) NumProcs() int { return c.Procs }

// Init implements rounds.Protocol.
func (c *ThreePhaseCommit) Init(p, input int) any {
	s := &tpc3State{vote: input, decision: spec.Abort, gotWord: -1}
	if p == 0 {
		s.votes = make([]int, c.Procs)
		for i := range s.votes {
			s.votes[i] = -1
		}
		s.votes[0] = input
	}
	return s
}

// Send implements rounds.Protocol.
func (c *ThreePhaseCommit) Send(p int, state any, r, q int) rounds.Message {
	s := state.(*tpc3State)
	switch {
	case r == 1 && p != 0 && q == 0:
		return "vote:" + strconv.Itoa(s.vote)
	case r == 2 && p == 0 && s.preCommit:
		return "precommit"
	case r == 3 && p == 0:
		if s.preCommit {
			return "commit"
		}
		return "abort"
	case r == 4 && p != 0:
		if s.sawPrepare || s.gotWord == spec.Commit {
			return "saw:1"
		}
		return "saw:0"
	default:
		return ""
	}
}

// Receive implements rounds.Protocol.
func (c *ThreePhaseCommit) Receive(p int, state any, r int, msgs []rounds.Message) any {
	s := state.(*tpc3State)
	switch {
	case p == 0 && r == 1:
		for q, m := range msgs {
			if strings.HasPrefix(m, "vote:") {
				if v, err := strconv.Atoi(m[5:]); err == nil {
					s.votes[q] = v
				}
			}
		}
		s.preCommit = true
		for q := 0; q < c.Procs; q++ {
			if s.votes[q] != spec.Commit {
				s.preCommit = false
				break
			}
		}
		if s.preCommit {
			s.decision = spec.Commit
		}
	case p == 0 && r == 3:
		s.decided = true // the coordinator decides after its final word
	case p != 0 && r == 2:
		s.sawPrepare = msgs[0] == "precommit"
	case p != 0 && r == 3:
		switch msgs[0] {
		case "commit":
			s.gotWord = spec.Commit
		case "abort":
			s.gotWord = spec.Abort
		}
	case p != 0 && r == 4:
		// Termination rule: commit iff this or any other participant
		// witnessed the pre-commit/commit intent. The coordinator only
		// ever says "commit" after pre-committing, and only pre-commits
		// on unanimous commit votes, so witnesses are mutually
		// consistent; with at most one crash (the coordinator) all
		// surviving participants see the same witness set.
		witness := s.sawPrepare || s.gotWord == spec.Commit
		for q, m := range msgs {
			if q != 0 && m == "saw:1" {
				witness = true
			}
		}
		if s.gotWord == spec.Abort {
			witness = false // explicit abort word wins; no commit was possible
		}
		if witness {
			s.decision = spec.Commit
		} else {
			s.decision = spec.Abort
		}
		s.decided = true
	}
	return s
}

// Decide implements rounds.Protocol.
func (c *ThreePhaseCommit) Decide(_ int, state any) (int, bool) {
	s := state.(*tpc3State)
	return s.decision, s.decided
}
