// Package consensus implements the distributed consensus algorithms and
// lower-bound engines of §2.2: FloodSet for crash faults, exponential
// information gathering (EIG) for Byzantine faults, authenticated
// broadcast, approximate agreement, two-phase commit, and the mechanized
// chain argument for the t+1 round lower bound.
package consensus

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/rounds"
)

// FloodSet is the classic crash-tolerant consensus protocol: every process
// floods the set of input values it has seen for t+1 rounds, then decides
// the minimum of its set. With at most t crash faults, t+1 rounds
// guarantee a clean round in which no process crashes, after which all
// sets are equal (§2.2.2: "two rounds can't suffice ... t+1 rounds" is
// tight; see ChainLowerBound for the matching impossibility).
type FloodSet struct {
	// Procs is the number of processes.
	Procs int
	// MaxFaults is the tolerated number of crash faults t; the protocol
	// is meant to run Rounds() = t+1 rounds.
	MaxFaults int
}

var _ rounds.Protocol = (*FloodSet)(nil)

// floodState is the set of values seen, kept sorted.
type floodState []int

// Rounds returns the protocol's intended round count, t+1.
func (f *FloodSet) Rounds() int { return f.MaxFaults + 1 }

// Name implements rounds.Protocol.
func (f *FloodSet) Name() string { return "floodset" }

// NumProcs implements rounds.Protocol.
func (f *FloodSet) NumProcs() int { return f.Procs }

// Init implements rounds.Protocol.
func (f *FloodSet) Init(_, input int) any { return floodState{input} }

// Send implements rounds.Protocol: broadcast the whole set.
func (f *FloodSet) Send(_ int, state any, _, _ int) rounds.Message {
	return encodeSet(state.(floodState))
}

// Receive implements rounds.Protocol: union all received sets.
func (f *FloodSet) Receive(_ int, state any, _ int, msgs []rounds.Message) any {
	s := state.(floodState)
	seen := make(map[int]bool, len(s))
	for _, v := range s {
		seen[v] = true
	}
	for _, m := range msgs {
		if m == "" {
			continue
		}
		for _, v := range decodeSet(m) {
			seen[v] = true
		}
	}
	out := make(floodState, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Decide implements rounds.Protocol: the minimum value seen.
func (f *FloodSet) Decide(_ int, state any) (int, bool) {
	s := state.(floodState)
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

func encodeSet(s []int) string {
	if len(s) == 0 {
		return "∅"
	}
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func decodeSet(m string) []int {
	if m == "" || m == "∅" {
		return nil
	}
	parts := strings.Split(m, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		if v, err := strconv.Atoi(p); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// AllCrashSchedules enumerates every crash schedule with at most t faulty
// processes among n, crashing within maxRound rounds, with every possible
// set of final-round deliveries. The enumeration is the adversary space of
// the chain argument (§2.2.2) and of exhaustive robustness tests.
func AllCrashSchedules(n, t, maxRound int) []*rounds.CrashSchedule {
	// Enumerate subsets of processes of size <= t, then per-process crash
	// parameters.
	var out []*rounds.CrashSchedule
	out = append(out, &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{}})
	var subsets [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			subsets = append(subsets, cp)
		}
		if len(cur) == t {
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(cur, v))
		}
	}
	rec(0, nil)
	for _, sub := range subsets {
		// Per faulty process: a crash round in [1,maxRound] and a subset
		// of receivers for the crash round.
		perProc := make([][]rounds.Crash, len(sub))
		for i, p := range sub {
			var opts []rounds.Crash
			for r := 1; r <= maxRound; r++ {
				receivers := otherProcs(n, p)
				for mask := 0; mask < 1<<uint(len(receivers)); mask++ {
					del := make(map[int]bool, len(receivers))
					for bi, q := range receivers {
						if mask&(1<<uint(bi)) != 0 {
							del[q] = true
						}
					}
					opts = append(opts, rounds.Crash{Round: r, DeliverTo: del})
				}
			}
			perProc[i] = opts
		}
		idx := make([]int, len(sub))
		for {
			crashes := make(map[int]rounds.Crash, len(sub))
			for i, p := range sub {
				crashes[p] = perProc[i][idx[i]]
			}
			out = append(out, &rounds.CrashSchedule{Crashes: crashes})
			// Odometer.
			k := len(idx) - 1
			for ; k >= 0; k-- {
				idx[k]++
				if idx[k] < len(perProc[k]) {
					break
				}
				idx[k] = 0
			}
			if k < 0 {
				break
			}
		}
	}
	return out
}

func otherProcs(n, p int) []int {
	out := make([]int, 0, n-1)
	for q := 0; q < n; q++ {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// AllBinaryInputs enumerates every 0/1 input vector for n processes.
func AllBinaryInputs(n int) [][]int {
	out := make([][]int, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		v := make([]int, n)
		for i := 0; i < n; i++ {
			v[i] = (mask >> uint(i)) & 1
		}
		out = append(out, v)
	}
	return out
}
