package consensus

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/rounds"
)

// EIG is the exponential information gathering protocol for Byzantine
// agreement ([89],[73], §2.2.1): each process maintains a tree of "who
// said that who said ..." values, relays one tree level per round for t+1
// rounds, and decides by a recursive strict-majority reduction. It
// tolerates t Byzantine faults when n > 3t; the scenario package
// mechanizes why n ≤ 3t is impossible.
type EIG struct {
	// Procs is the number of processes n.
	Procs int
	// MaxFaults is the tolerated Byzantine fault count t.
	MaxFaults int
	// DefaultValue is used when majorities are inconclusive.
	DefaultValue int
}

var _ rounds.Protocol = (*EIG)(nil)

// eigState maps tree labels to values. A label is a "/"-joined sequence of
// distinct process ids, e.g. "" (root), "2", "2/0". val("q1/.../qk") held
// by p means: "qk told p that q(k-1) told qk that ... q1's input was v".
// Labels ending in p itself record p's own (trusted) relays.
type eigState struct {
	vals map[string]int
	self int
}

// Rounds returns the protocol's intended round count, t+1.
func (e *EIG) Rounds() int { return e.MaxFaults + 1 }

// Name implements rounds.Protocol.
func (e *EIG) Name() string { return "eig-byzantine" }

// NumProcs implements rounds.Protocol.
func (e *EIG) NumProcs() int { return e.Procs }

// Init implements rounds.Protocol.
func (e *EIG) Init(p, input int) any {
	return &eigState{vals: map[string]int{"": input}, self: p}
}

func labelIDs(l string) map[int]bool {
	out := map[int]bool{}
	if l == "" {
		return out
	}
	for _, part := range strings.Split(l, "/") {
		if v, err := strconv.Atoi(part); err == nil {
			out[v] = true
		}
	}
	return out
}

func labelLen(l string) int {
	if l == "" {
		return 0
	}
	return strings.Count(l, "/") + 1
}

func extendLabel(l string, q int) string {
	if l == "" {
		return strconv.Itoa(q)
	}
	return l + "/" + strconv.Itoa(q)
}

// Send implements rounds.Protocol: in round r, relay every stored level
// r-1 value whose label does not already contain the sender.
func (e *EIG) Send(p int, state any, r, _ int) rounds.Message {
	s := state.(*eigState)
	var parts []string
	for l, v := range s.vals {
		if labelLen(l) != r-1 || labelIDs(l)[p] {
			continue
		}
		parts = append(parts, l+"="+strconv.Itoa(v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Receive implements rounds.Protocol: store each received level r-1 value
// v under label·sender, and self-relay own level r-1 values under
// label·self (a process trusts its own reports).
func (e *EIG) Receive(p int, state any, r int, msgs []rounds.Message) any {
	s := state.(*eigState)
	// Self-relay first: for every level r-1 label not containing p,
	// val(label·p) := val(label).
	for l, v := range copyLevel(s.vals, r-1) {
		if labelIDs(l)[p] {
			continue
		}
		s.vals[extendLabel(l, p)] = v
	}
	for q, m := range msgs {
		if m == "" || q == p {
			continue
		}
		for _, part := range strings.Split(m, ";") {
			if part == "" {
				continue
			}
			eq := strings.LastIndexByte(part, '=')
			if eq < 0 {
				continue
			}
			label := part[:eq]
			v, err := strconv.Atoi(part[eq+1:])
			if err != nil {
				continue
			}
			if labelLen(label) != r-1 || labelIDs(label)[q] {
				continue // malformed or dishonest framing: ignore
			}
			s.vals[extendLabel(label, q)] = v
		}
	}
	return s
}

func copyLevel(vals map[string]int, level int) map[string]int {
	out := map[string]int{}
	for l, v := range vals {
		if labelLen(l) == level {
			out[l] = v
		}
	}
	return out
}

// Decide implements rounds.Protocol: recursive strict-majority reduction
// from the leaves (depth t+1) to the root.
func (e *EIG) Decide(_ int, state any) (int, bool) {
	s := state.(*eigState)
	return e.resolve(s, "", 0), true
}

// resolve computes the reduced value of the subtree rooted at label.
func (e *EIG) resolve(s *eigState, label string, depth int) int {
	if depth == e.Rounds() {
		if v, ok := s.vals[label]; ok {
			return v
		}
		return e.DefaultValue
	}
	used := labelIDs(label)
	counts := map[int]int{}
	children := 0
	for q := 0; q < e.Procs; q++ {
		if used[q] {
			continue
		}
		children++
		counts[e.resolve(s, extendLabel(label, q), depth+1)]++
	}
	for v, c := range counts {
		if 2*c > children {
			return v
		}
	}
	return e.DefaultValue
}
