package consensus

import (
	"strconv"

	"repro/internal/rounds"
	"repro/internal/spec"
)

// TwoPhaseCommit is the classic centralized commit protocol (§2.2.5):
// round 1, every participant sends its vote to the coordinator (process
// 0); round 2, the coordinator broadcasts the outcome (commit iff all
// votes commit and none are missing). Its failure-free commit executions
// use exactly 2n-2 messages, matching the Dwork–Skeen lower bound [48]
// that every failure-free committing execution needs a message path from
// every process to every other.
type TwoPhaseCommit struct {
	// Procs is the number of processes; process 0 coordinates.
	Procs int
}

var _ rounds.Protocol = (*TwoPhaseCommit)(nil)

// tpcState tracks a participant through the two rounds.
type tpcState struct {
	vote     int
	votes    []int // coordinator only: votes received (by sender)
	decision int
	decided  bool
}

// Rounds returns the protocol's round count, 2.
func (c *TwoPhaseCommit) Rounds() int { return 2 }

// Name implements rounds.Protocol.
func (c *TwoPhaseCommit) Name() string { return "two-phase-commit" }

// NumProcs implements rounds.Protocol.
func (c *TwoPhaseCommit) NumProcs() int { return c.Procs }

// Init implements rounds.Protocol.
func (c *TwoPhaseCommit) Init(p, input int) any {
	s := &tpcState{vote: input, decision: spec.Abort}
	if p == 0 {
		s.votes = make([]int, c.Procs)
		for i := range s.votes {
			s.votes[i] = -1
		}
		s.votes[0] = input
	}
	return s
}

// Send implements rounds.Protocol.
func (c *TwoPhaseCommit) Send(p int, state any, r, q int) rounds.Message {
	s := state.(*tpcState)
	switch {
	case r == 1 && p != 0 && q == 0:
		return "vote:" + strconv.Itoa(s.vote)
	case r == 2 && p == 0:
		return "decide:" + strconv.Itoa(s.decision)
	default:
		return ""
	}
}

// Receive implements rounds.Protocol.
func (c *TwoPhaseCommit) Receive(p int, state any, r int, msgs []rounds.Message) any {
	s := state.(*tpcState)
	if p == 0 && r == 1 {
		for q, m := range msgs {
			if len(m) > 5 && m[:5] == "vote:" {
				if v, err := strconv.Atoi(m[5:]); err == nil {
					s.votes[q] = v
				}
			}
		}
		s.decision = spec.Commit
		for q := 0; q < c.Procs; q++ {
			if s.votes[q] != spec.Commit { // missing vote counts as abort
				s.decision = spec.Abort
				break
			}
		}
		s.decided = true
	}
	if p != 0 && r == 2 {
		m := msgs[0]
		if len(m) > 7 && m[:7] == "decide:" {
			if v, err := strconv.Atoi(m[7:]); err == nil {
				s.decision = v
				s.decided = true
			}
		}
		// A silent coordinator leaves the participant undecided —
		// the blocking weakness of 2PC.
	}
	return s
}

// Decide implements rounds.Protocol.
func (c *TwoPhaseCommit) Decide(_ int, state any) (int, bool) {
	s := state.(*tpcState)
	return s.decision, s.decided
}
