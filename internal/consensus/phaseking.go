package consensus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rounds"
)

// PhaseKing is the Berman–Garay phase-king Byzantine agreement protocol:
// t+1 phases of three rounds each, with constant-size messages — the
// polynomial-communication counterpoint to EIG's exponential relays. It
// tolerates t Byzantine faults when n > 4t. Per phase: every process
// broadcasts its value (round A); broadcasts which value it saw a > n/2
// majority for, if any (round B); then the phase's king broadcasts a
// tiebreak that processes without an overwhelming (> n/2 + t) count adopt
// (round C).
type PhaseKing struct {
	// Procs is the number of processes n > 4t.
	Procs int
	// MaxFaults is the tolerated Byzantine fault count t.
	MaxFaults int
}

var _ rounds.Protocol = (*PhaseKing)(nil)

// pkState is one process's view.
type pkState struct {
	value int
	// counts accumulates the current phase's tallies.
	countA [2]int
	countB [3]int // votes for 0, 1, and "no majority" (index 2)
	strong bool   // saw > n/2 + t support in round B
	self   int
}

// Rounds returns the protocol's total round count, 3(t+1).
func (pk *PhaseKing) Rounds() int { return 3 * (pk.MaxFaults + 1) }

// phaseOf decomposes a 1-based global round into (phase, subround).
func (pk *PhaseKing) phaseOf(r int) (phase, sub int) {
	return (r - 1) / 3, (r - 1) % 3
}

// Name implements rounds.Protocol.
func (pk *PhaseKing) Name() string { return "phase-king" }

// NumProcs implements rounds.Protocol.
func (pk *PhaseKing) NumProcs() int { return pk.Procs }

// Init implements rounds.Protocol.
func (pk *PhaseKing) Init(p, input int) any {
	return &pkState{value: clampBit(input), self: p}
}

func clampBit(v int) int {
	if v != 0 {
		return 1
	}
	return v
}

// Send implements rounds.Protocol: constant-size messages only.
func (pk *PhaseKing) Send(p int, state any, r, _ int) rounds.Message {
	s := state.(*pkState)
	phase, sub := pk.phaseOf(r)
	switch sub {
	case 0: // round A: broadcast value
		return "A" + strconv.Itoa(s.value)
	case 1: // round B: broadcast majority claim
		maj := 2 // "no majority"
		for v := 0; v <= 1; v++ {
			if 2*s.countA[v] > pk.Procs {
				maj = v
			}
		}
		return "B" + strconv.Itoa(maj)
	default: // round C: the king's tiebreak
		if p == phase%pk.Procs {
			return "C" + strconv.Itoa(s.value)
		}
		return ""
	}
}

// Receive implements rounds.Protocol.
func (pk *PhaseKing) Receive(p int, state any, r int, msgs []rounds.Message) any {
	s := state.(*pkState)
	phase, sub := pk.phaseOf(r)
	switch sub {
	case 0:
		s.countA = [2]int{}
		s.countA[s.value]++ // own vote
		for q, m := range msgs {
			if q == p || !strings.HasPrefix(m, "A") {
				continue
			}
			if v, err := strconv.Atoi(m[1:]); err == nil && (v == 0 || v == 1) {
				s.countA[v]++
			}
		}
	case 1:
		s.countB = [3]int{}
		ownMaj := 2
		for v := 0; v <= 1; v++ {
			if 2*s.countA[v] > pk.Procs {
				ownMaj = v
			}
		}
		s.countB[ownMaj]++
		for q, m := range msgs {
			if q == p || !strings.HasPrefix(m, "B") {
				continue
			}
			if v, err := strconv.Atoi(m[1:]); err == nil && v >= 0 && v <= 2 {
				s.countB[v]++
			}
		}
		// Adopt the most-claimed majority value as the working value.
		best := 2
		for v := 0; v <= 1; v++ {
			if s.countB[v] > s.countB[best] {
				best = v
			}
		}
		if best != 2 {
			s.value = best
		}
		s.strong = best != 2 && s.countB[best] > pk.Procs/2+pk.MaxFaults
	default:
		king := phase % pk.Procs
		if king == p {
			return s // the king keeps its own value
		}
		if s.strong {
			return s // overwhelming support: ignore the king
		}
		m := msgs[king]
		if strings.HasPrefix(m, "C") {
			if v, err := strconv.Atoi(m[1:]); err == nil && (v == 0 || v == 1) {
				s.value = v
			}
		}
	}
	return s
}

// Decide implements rounds.Protocol.
func (pk *PhaseKing) Decide(_ int, state any) (int, bool) {
	return state.(*pkState).value, true
}

// CompareMessageSizes runs EIG and PhaseKing side by side on failure-free
// executions and reports their total communication in bytes — the paper's
// message-size axis (§2.2.3): EIG relays trees that grow exponentially in
// t while phase-king messages stay constant.
func CompareMessageSizes(n, t int, inputs []int) (eigBytes, pkBytes int, err error) {
	e := &EIG{Procs: n, MaxFaults: t}
	resE, err := rounds.Run(e, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: e.Rounds()})
	if err != nil {
		return 0, 0, fmt.Errorf("consensus: EIG run: %w", err)
	}
	pk := &PhaseKing{Procs: n, MaxFaults: t}
	resP, err := rounds.Run(pk, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: pk.Rounds()})
	if err != nil {
		return 0, 0, fmt.Errorf("consensus: phase-king run: %w", err)
	}
	return resE.BytesSent, resP.BytesSent, nil
}
