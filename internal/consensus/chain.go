package consensus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rounds"
	"repro/internal/spec"
)

// This file mechanizes the t+1 round lower bound for crash-fault consensus
// (§2.2.2, [56] and the Dwork–Moses folklore refinement): no deterministic
// protocol can decide in k <= t rounds. The proof is a *chain argument*: a
// sequence of admissible k-round executions, each pair consecutive
// executions indistinguishable to some process nonfaulty in both, linking
// the all-zeros failure-free execution to the all-ones failure-free
// execution. Any k-round protocol's decision is a function of a process's
// full-information view, so the decision value is constant along the chain
// — contradicting validity at the endpoints.
//
// The mechanization enumerates every input vector and every crash schedule
// with at most t faults in k rounds, computes full-information views, and
// searches for the chain by BFS. A found chain *is* the lower-bound proof
// for (n, t, k); the absence of any chain at k = t+1 is consistent with
// FloodSet's correctness at t+1 rounds.

// FullInfo is the full-information protocol: every process's state is its
// complete history, rebroadcast every round. Every deterministic k-round
// protocol factors through it.
type FullInfo struct {
	// Procs is the number of processes.
	Procs int
}

var _ rounds.Protocol = (*FullInfo)(nil)

// Name implements rounds.Protocol.
func (f *FullInfo) Name() string { return "full-information" }

// NumProcs implements rounds.Protocol.
func (f *FullInfo) NumProcs() int { return f.Procs }

// Init implements rounds.Protocol.
func (f *FullInfo) Init(p, input int) any {
	return "p" + strconv.Itoa(p) + "=" + strconv.Itoa(input)
}

// Send implements rounds.Protocol.
func (f *FullInfo) Send(_ int, state any, _, _ int) rounds.Message {
	return state.(string)
}

// Receive implements rounds.Protocol.
func (f *FullInfo) Receive(_ int, state any, r int, msgs []rounds.Message) any {
	var b strings.Builder
	b.WriteString(state.(string))
	b.WriteString("\x1er")
	b.WriteString(strconv.Itoa(r))
	for q, m := range msgs {
		b.WriteString("\x1f")
		b.WriteString(strconv.Itoa(q))
		b.WriteString("<")
		b.WriteString(m)
	}
	return b.String()
}

// Decide implements rounds.Protocol (the full-information protocol itself
// never decides; consumers interpret views).
func (f *FullInfo) Decide(int, any) (int, bool) { return 0, false }

// chainExecution is one enumerated k-round execution.
type chainExecution struct {
	inputs   []int
	schedule *rounds.CrashSchedule
	// viewKeys[p] identifies p's full-information view; equal keys mean
	// indistinguishable executions for p.
	viewKeys []string
	faulty   []bool
}

// ChainResult reports a ChainLowerBound search.
type ChainResult struct {
	// N, T, K are the instance parameters.
	N, T, K int
	// Executions is the number of admissible executions enumerated.
	Executions int
	// ChainFound reports whether an indistinguishability chain connects
	// the all-zeros and all-ones failure-free executions (proving no
	// k-round protocol exists for this n and t).
	ChainFound bool
	// ChainLength is the number of links in the found chain.
	ChainLength int
}

// String renders the verdict.
func (r ChainResult) String() string {
	if r.ChainFound {
		return fmt.Sprintf("n=%d t=%d k=%d: chain of length %d over %d executions — no %d-round protocol exists",
			r.N, r.T, r.K, r.ChainLength, r.Executions, r.K)
	}
	return fmt.Sprintf("n=%d t=%d k=%d: no chain over %d executions — consistent with a %d-round protocol",
		r.N, r.T, r.K, r.Executions, r.K)
}

// ChainLowerBound enumerates all k-round crash executions for n processes
// and at most t faults and searches for the indistinguishability chain.
func ChainLowerBound(n, t, k int) (ChainResult, error) {
	proto := &FullInfo{Procs: n}
	schedules := AllCrashSchedules(n, t, k)
	inputs := AllBinaryInputs(n)
	execs := make([]chainExecution, 0, len(schedules)*len(inputs))
	for _, in := range inputs {
		for _, sched := range schedules {
			res, err := rounds.Run(proto, in, sched, rounds.RunOptions{Rounds: k, RecordViews: true})
			if err != nil {
				return ChainResult{}, fmt.Errorf("consensus: chain enumeration: %w", err)
			}
			ex := chainExecution{
				inputs:   in,
				schedule: sched,
				viewKeys: make([]string, n),
				faulty:   res.Faulty,
			}
			for p := 0; p < n; p++ {
				ex.viewKeys[p] = "in=" + strconv.Itoa(in[p]) + "\x1d" + strings.Join(res.Views[p][:], "\x1c")
			}
			execs = append(execs, ex)
		}
	}
	out := ChainResult{N: n, T: t, K: k, Executions: len(execs)}

	// Locate the endpoints: failure-free all-zeros and all-ones.
	start, goal := -1, -1
	for i, ex := range execs {
		if ex.schedule.NumFaulty() != 0 {
			continue
		}
		if allEqual(ex.inputs, 0) {
			start = i
		}
		if allEqual(ex.inputs, 1) {
			goal = i
		}
	}
	if start < 0 || goal < 0 {
		return out, fmt.Errorf("consensus: chain endpoints missing")
	}

	// Group executions by (process, view): all members of a group are
	// pairwise indistinguishable to that process, provided it is
	// nonfaulty in both.
	groups := make(map[string][]int32)
	for i, ex := range execs {
		for p := 0; p < n; p++ {
			if ex.faulty[p] {
				continue
			}
			key := strconv.Itoa(p) + "\x1b" + ex.viewKeys[p]
			groups[key] = append(groups[key], int32(i))
		}
	}
	// BFS over executions through shared groups.
	dist := make([]int32, len(execs))
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int32{int32(start)}
	usedGroup := make(map[string]bool, len(groups))
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		if int(i) == goal {
			out.ChainFound = true
			out.ChainLength = int(dist[i])
			return out, nil
		}
		ex := execs[i]
		for p := 0; p < n; p++ {
			if ex.faulty[p] {
				continue
			}
			key := strconv.Itoa(p) + "\x1b" + ex.viewKeys[p]
			if usedGroup[key] {
				continue
			}
			usedGroup[key] = true
			for _, j := range groups[key] {
				if dist[j] < 0 {
					dist[j] = dist[i] + 1
					queue = append(queue, j)
				}
			}
		}
	}
	return out, nil
}

func allEqual(xs []int, v int) bool {
	for _, x := range xs {
		if x != v {
			return false
		}
	}
	return true
}

// VerifyFloodSetExhaustively runs FloodSet at its full t+1 rounds against
// every input vector and every enumerated crash schedule and checks the
// consensus conditions, returning the number of executions verified.
func VerifyFloodSetExhaustively(n, t int) (int, error) {
	f := &FloodSet{Procs: n, MaxFaults: t}
	schedules := AllCrashSchedules(n, t, f.Rounds())
	count := 0
	for _, in := range AllBinaryInputs(n) {
		for _, sched := range schedules {
			res, err := rounds.Run(f, in, sched, rounds.RunOptions{Rounds: f.Rounds()})
			if err != nil {
				return count, fmt.Errorf("consensus: floodset run: %w", err)
			}
			if err := spec.CheckCrashConsensus(in, res.Decisions, res.Faulty); err != nil {
				return count, fmt.Errorf("consensus: floodset inputs=%v schedule=%+v: %w", in, sched.Crashes, err)
			}
			count++
		}
	}
	return count, nil
}
