package consensus

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/rounds"
	"repro/internal/spec"
)

func TestPhaseKingFailureFree(t *testing.T) {
	pk := &PhaseKing{Procs: 5, MaxFaults: 1}
	for _, inputs := range [][]int{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}, {0, 1, 0, 1, 1}} {
		res, err := rounds.Run(pk, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: pk.Rounds()})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := spec.CheckConsensus(inputs, res.Decisions, nil); err != nil {
			t.Fatalf("inputs=%v: %v (decisions=%v)", inputs, err, res.Decisions)
		}
	}
}

// randomByzantine builds a deterministic pseudorandom Byzantine strategy
// for one corrupt process: arbitrary well-formed bits per (round, kind,
// receiver).
func randomByzantine(corrupt int, seed int64) *rounds.ByzantineStrategy {
	rng := rand.New(rand.NewSource(seed))
	cache := map[string]string{}
	return &rounds.ByzantineStrategy{
		Corrupt: map[int]bool{corrupt: true},
		Forge: func(r, _, to int, honest rounds.Message) rounds.Message {
			key := strconv.Itoa(r) + ":" + strconv.Itoa(to)
			if m, ok := cache[key]; ok {
				return m
			}
			kind := "A"
			switch (r - 1) % 3 {
			case 1:
				kind = "B"
			case 2:
				kind = "C"
			}
			m := kind + strconv.Itoa(rng.Intn(2))
			if kind == "B" && rng.Intn(3) == 0 {
				m = "B2" // claim "no majority"
			}
			cache[key] = m
			return m
		},
	}
}

// TestPhaseKingToleratesByzantine: n=5 > 4t=4 — agreement and validity
// must survive every sampled Byzantine strategy of process 4.
func TestPhaseKingToleratesByzantine(t *testing.T) {
	pk := &PhaseKing{Procs: 5, MaxFaults: 1}
	for seed := int64(0); seed < 150; seed++ {
		for mask := 0; mask < 16; mask += 5 { // a spread of input vectors
			inputs := []int{mask & 1, (mask >> 1) & 1, (mask >> 2) & 1, (mask >> 3) & 1, 0}
			adv := randomByzantine(4, seed)
			res, err := rounds.Run(pk, inputs, adv, rounds.RunOptions{Rounds: pk.Rounds()})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := spec.CheckConsensus(inputs, res.Decisions, res.Faulty); err != nil {
				t.Fatalf("seed=%d inputs=%v: %v (decisions=%v)", seed, inputs, err, res.Decisions)
			}
		}
	}
}

// TestPhaseKingConstantMessagesVsEIG: the §2.2.3 communication contrast —
// EIG's relayed trees grow with t while phase-king messages stay constant
// size; at n=9, t=2 the byte totals diverge decisively.
func TestPhaseKingConstantMessagesVsEIG(t *testing.T) {
	n, tt := 9, 2
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i % 2
	}
	eigBytes, pkBytes, err := CompareMessageSizes(n, tt, inputs)
	if err != nil {
		t.Fatalf("CompareMessageSizes: %v", err)
	}
	if eigBytes < 10*pkBytes {
		t.Errorf("EIG bytes %d should dwarf phase-king bytes %d", eigBytes, pkBytes)
	}
	// And phase-king's individual messages are tiny (<= 3 bytes each).
	pk := &PhaseKing{Procs: n, MaxFaults: tt}
	res, err := rounds.Run(pk, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: pk.Rounds()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MessagesSent > 0 && res.BytesSent/res.MessagesSent > 3 {
		t.Errorf("phase-king average message size %d bytes, want <= 3", res.BytesSent/res.MessagesSent)
	}
}

// TestThreePhaseCommitFailureFree: commits on unanimous yes, aborts
// otherwise.
func TestThreePhaseCommitFailureFree(t *testing.T) {
	n := 4
	c := &ThreePhaseCommit{Procs: n}
	all := []int{spec.Commit, spec.Commit, spec.Commit, spec.Commit}
	res, err := rounds.Run(c, all, rounds.NoFaults{}, rounds.RunOptions{Rounds: c.Rounds()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range res.Decisions {
		if d != spec.Commit {
			t.Fatalf("p%d decided %d, want commit", p, d)
		}
	}
	mixed := []int{spec.Commit, spec.Abort, spec.Commit, spec.Commit}
	res, err = rounds.Run(c, mixed, rounds.NoFaults{}, rounds.RunOptions{Rounds: c.Rounds()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range res.Decisions {
		if d != spec.Abort {
			t.Fatalf("p%d decided %d, want abort", p, d)
		}
	}
}

// TestThreePhaseCommitNonBlocking is the 2PC-vs-3PC separation: under
// every single-crash schedule, all surviving 3PC participants decide and
// agree — including the coordinator-crash windows where 2PC blocks.
func TestThreePhaseCommitNonBlocking(t *testing.T) {
	n := 4
	c := &ThreePhaseCommit{Procs: n}
	inputsList := [][]int{
		{spec.Commit, spec.Commit, spec.Commit, spec.Commit},
		{spec.Commit, spec.Abort, spec.Commit, spec.Commit},
	}
	for _, inputs := range inputsList {
		for _, sched := range AllCrashSchedules(n, 1, c.Rounds()) {
			res, err := rounds.Run(c, inputs, sched, rounds.RunOptions{Rounds: c.Rounds()})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := spec.CheckTermination(res.Decisions, res.Faulty); err != nil {
				t.Fatalf("inputs=%v schedule=%+v: %v (3PC must not block)", inputs, sched.Crashes, err)
			}
			if err := spec.CheckAgreement(res.Decisions, res.Faulty); err != nil {
				t.Fatalf("inputs=%v schedule=%+v: %v (decisions=%v)", inputs, sched.Crashes, err, res.Decisions)
			}
			anyFail := sched.NumFaulty() > 0
			// Commit-rule check over nonfaulty decisions only.
			nf := make([]int, 0, n)
			for p, d := range res.Decisions {
				if !res.Faulty[p] {
					nf = append(nf, d)
				}
			}
			_ = anyFail
			if err := spec.CheckCommitRule(inputs, res.Decisions, anyFail); err != nil {
				// Faulty processes' stale decisions are exempt; re-check
				// ignoring them.
				ok := true
				for p, d := range res.Decisions {
					if res.Faulty[p] || d == spec.Undecided {
						continue
					}
					if singleErr := spec.CheckCommitRule(inputs, []int{d}, anyFail); singleErr != nil {
						ok = false
					}
				}
				if !ok {
					t.Fatalf("inputs=%v schedule=%+v: %v", inputs, sched.Crashes, err)
				}
			}
		}
	}
}

// TestTwoPhaseCommitBlocksWhereThreePhaseDoesNot pins the exact
// separation: the coordinator crashing in round 2 leaves 2PC participants
// undecided forever, while 3PC participants all terminate.
func TestTwoPhaseCommitBlocksWhereThreePhaseDoesNot(t *testing.T) {
	n := 4
	all := []int{spec.Commit, spec.Commit, spec.Commit, spec.Commit}
	crash := &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
		0: {Round: 2, DeliverTo: map[int]bool{}},
	}}
	two := &TwoPhaseCommit{Procs: n}
	res2, err := rounds.Run(two, all, crash, rounds.RunOptions{Rounds: two.Rounds()})
	if err != nil {
		t.Fatalf("Run 2PC: %v", err)
	}
	blocked := 0
	for p := 1; p < n; p++ {
		if res2.Decisions[p] == spec.Undecided {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("2PC should block under a round-2 coordinator crash")
	}
	three := &ThreePhaseCommit{Procs: n}
	crash3 := &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
		0: {Round: 2, DeliverTo: map[int]bool{}},
	}}
	res3, err := rounds.Run(three, all, crash3, rounds.RunOptions{Rounds: three.Rounds()})
	if err != nil {
		t.Fatalf("Run 3PC: %v", err)
	}
	for p := 1; p < n; p++ {
		if res3.Decisions[p] == spec.Undecided {
			t.Fatalf("3PC participant p%d blocked", p)
		}
	}
	if err := spec.CheckAgreement(res3.Decisions, res3.Faulty); err != nil {
		t.Fatalf("3PC agreement: %v", err)
	}
}

// TestFloodSetBreaksUnderOmissionFaults is a fault-model separation
// finding in the spirit of §2.2's crash/omission/Byzantine gradation:
// FloodSet is exhaustively correct under crash faults at t+1 rounds
// (TestFloodSetExhaustive), yet a *send-omission* faulty process — which,
// unlike a crashed one, may stay silent early and then inject its value to
// a subset in the very last round — produces disagreement among the
// nonfaulty. Crash-tolerance does not imply omission-tolerance.
func TestFloodSetBreaksUnderOmissionFaults(t *testing.T) {
	n, tt := 3, 1
	f := &FloodSet{Procs: n, MaxFaults: tt}
	k := f.Rounds()
	violations := 0
	for faulty := 0; faulty < n; faulty++ {
		// Enumerate all drop patterns: k rounds x (n-1) receivers.
		receivers := otherProcs(n, faulty)
		bits := k * len(receivers)
		for mask := 0; mask < 1<<uint(bits); mask++ {
			omit := map[[2]int]bool{}
			bit := 0
			for r := 1; r <= k; r++ {
				for _, q := range receivers {
					if mask&(1<<uint(bit)) != 0 {
						omit[[2]int{r, q}] = true
					}
					bit++
				}
			}
			adv := &rounds.OmissionSchedule{Omit: map[int]map[[2]int]bool{faulty: omit}}
			for _, inputs := range [][]int{{0, 1, 1}, {1, 0, 1}, {0, 0, 1}} {
				res, err := rounds.Run(f, inputs, adv, rounds.RunOptions{Rounds: k})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if spec.CheckCrashConsensus(inputs, res.Decisions, res.Faulty) != nil {
					violations++
				}
			}
		}
	}
	if violations == 0 {
		t.Fatal("expected send-omission patterns to break crash-tolerant FloodSet")
	}
}

// TestOmissionScheduleSemantics covers the adversary itself.
func TestOmissionScheduleSemantics(t *testing.T) {
	adv := &rounds.OmissionSchedule{Omit: map[int]map[[2]int]bool{
		1: {{2, 0}: true},
	}}
	if !adv.Faulty(1) || adv.Faulty(0) {
		t.Fatal("faulty classification wrong")
	}
	if _, ok := adv.Deliver(2, 1, 0, "x"); ok {
		t.Error("omitted message should drop")
	}
	if m, ok := adv.Deliver(2, 1, 2, "x"); !ok || m != "x" {
		t.Error("non-omitted message should deliver")
	}
	if m, ok := adv.Deliver(1, 0, 1, "y"); !ok || m != "y" {
		t.Error("nonfaulty sender should deliver")
	}
}
