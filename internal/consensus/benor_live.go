package consensus

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/runtime"
)

// LiveBenOr runs phase-bounded Ben-Or as a real concurrent system under
// internal/runtime: one goroutine per process, report and proposal waves
// as live broadcasts, the adversary choosing delivery order. The quorum
// cascade is benOrAdvance — the same function the explored BenOrSpace
// model runs inside its delivery edges — so live labels and model labels
// agree by construction; only the coin source differs (a per-process
// seeded RNG live, both branches in the model).
//
// The model is explorable only at the smallest configuration (n ≤ 3,
// one phase — larger spaces exceed millions of states); bigger live runs
// are legitimate but carry no refinement verdict.
type LiveBenOr struct {
	// Procs, MaxFaults, Phases mirror BenOrSpace (but without the model's
	// n ≤ 8 mask bound: big rings simply have no model).
	Procs     int
	MaxFaults int
	Phases    int
	// Inputs are the initial binary values.
	Inputs []int

	procs []*liveBenOrProc
}

// benOrMsg is the live wire payload for one wave message.
type benOrMsg struct {
	kind byte // benOrKindR or benOrKindP
	ph   byte
	from byte
	val  byte // 0, 1, or benOrBot for a ⊥ proposal
}

// NewLiveBenOr validates the configuration.
func NewLiveBenOr(n, t, phases int, inputs []int) (*LiveBenOr, error) {
	if n < 2 || n > 255 {
		return nil, fmt.Errorf("consensus: LiveBenOr needs 2..255 processes, got %d", n)
	}
	if t < 0 || 2*t >= n {
		return nil, fmt.Errorf("consensus: LiveBenOr needs 0 <= 2t < n, got t=%d n=%d", t, n)
	}
	if phases < 1 || phases > 64 {
		return nil, fmt.Errorf("consensus: LiveBenOr needs 1..64 phases, got %d", phases)
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("consensus: LiveBenOr needs %d inputs, got %d", n, len(inputs))
	}
	for p, v := range inputs {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("consensus: input %d of process %d is not binary", v, p)
		}
	}
	return &LiveBenOr{Procs: n, MaxFaults: t, Phases: phases, Inputs: append([]int(nil), inputs...)}, nil
}

// Name implements runtime.Workload.
func (l *LiveBenOr) Name() string { return "ben-or" }

// NumProcs implements runtime.Workload.
func (l *LiveBenOr) NumProcs() int { return l.Procs }

// Supports implements runtime.Workload: delay and crash. No drop — the
// model has no loss edges, so a silently dropped wave message would make
// the refinement oracle's quiescence rule fire spuriously (Ben-Or
// tolerates loss through quorums, but the bounded model delivers
// everything). No duplication — delivery is recorded per (sender, phase,
// wave) and the model has no re-delivery edge.
func (l *LiveBenOr) Supports() runtime.Faults {
	return runtime.FaultDelay | runtime.FaultCrash
}

// Spawn implements runtime.Workload, deriving one RNG per process from
// the run seed for the live coin flips.
func (l *LiveBenOr) Spawn(seed int64) []runtime.Proc {
	l.procs = make([]*liveBenOrProc, l.Procs)
	out := make([]runtime.Proc, l.Procs)
	for p := range out {
		pr := &liveBenOrProc{
			w: l, p: p,
			rng:     rand.New(rand.NewSource(seed ^ (int64(p+1) * 0x9E3779B97F4A7C1))),
			value:   byte(l.Inputs[p]),
			phase:   1,
			decided: benOrNone,
		}
		pr.got[0] = make([]byte, l.Phases*l.Procs)
		pr.got[1] = make([]byte, l.Phases*l.Procs)
		for i := range pr.got[0] {
			pr.got[0][i] = benOrNone
			pr.got[1][i] = benOrNone
		}
		l.procs[p] = pr
		out[p] = pr
	}
	return out
}

// Model implements runtime.Workload: the explored BenOrSpace at the
// smallest configurations, nil at live-only scale.
func (l *LiveBenOr) Model() (*core.Graph[string], error) {
	if l.Procs > 3 || l.Phases > 1 {
		return nil, nil
	}
	b, err := NewBenOrSpace(l.Procs, l.MaxFaults, l.Phases, l.Inputs)
	if err != nil {
		return nil, err
	}
	return core.Explore[string](b.System(), core.ExploreOptions{})
}

// Check implements runtime.Workload: live agreement (no two processes
// decided differently), and exact agreement of every process's
// [value, phase, stage, decided] block with every consistent model end
// state — the live run must be *the* execution the trace describes.
func (l *LiveBenOr) Check(_ *runtime.Result, g *core.Graph[string], ends []int) error {
	seen, seenBy := -1, -1
	for _, pr := range l.procs {
		if pr.decided == benOrNone {
			continue
		}
		if seen >= 0 && int(pr.decided) != seen {
			return fmt.Errorf("consensus: live agreement violated: p%d decided %d, p%d decided %d",
				seenBy, seen, pr.p, pr.decided)
		}
		seen, seenBy = int(pr.decided), pr.p
	}
	b, err := NewBenOrSpace(l.Procs, l.MaxFaults, l.Phases, l.Inputs)
	if err != nil {
		return err
	}
	for _, e := range ends {
		st := g.State(e)
		for _, pr := range l.procs {
			o := b.procOff(pr.p)
			if st[o] != pr.value || st[o+1] != pr.phase || st[o+2] != pr.stage || st[o+3] != pr.decided {
				return fmt.Errorf("consensus: live p%d is [v%d ph%d st%d d%d] but consistent model state %d has [v%d ph%d st%d d%d]",
					pr.p, pr.value, pr.phase, pr.stage, pr.decided,
					e, st[o], st[o+1], st[o+2], st[o+3])
			}
		}
	}
	return nil
}

// liveBenOrProc is one live Ben-Or process. It implements benOrView over
// its private delivery tables.
type liveBenOrProc struct {
	w   *LiveBenOr
	p   int
	rng *rand.Rand

	value, phase, stage, decided byte
	// got[kind][(ph-1)*n + sender] is the delivered value (benOrNone if
	// not yet received); first write wins.
	got [2][]byte

	outbox []runtime.Action // broadcasts accumulated by send()
}

func (pr *liveBenOrProc) header() (byte, byte, byte, byte) {
	return pr.value, pr.phase, pr.stage, pr.decided
}

func (pr *liveBenOrProc) setHeader(value, phase, stage, decided byte) {
	pr.value, pr.phase, pr.stage, pr.decided = value, phase, stage, decided
}

func (pr *liveBenOrProc) counts(ph, kind int) (c0, c1, cq int) {
	row := pr.got[kind][(ph-1)*pr.w.Procs : ph*pr.w.Procs]
	for _, v := range row {
		switch v {
		case benOrNone:
		case 0:
			c0++
		case 1:
			c1++
		default:
			cq++
		}
	}
	return
}

// send records the own message and broadcasts it to every other process.
func (pr *liveBenOrProc) send(ph, kind int, val byte) {
	pr.got[kind][(ph-1)*pr.w.Procs+pr.p] = val
	for q := 0; q < pr.w.Procs; q++ {
		if q == pr.p {
			continue
		}
		pr.outbox = append(pr.outbox, runtime.Action{
			Kind: runtime.ActDeliver, From: pr.p, To: q,
			Payload: benOrMsg{kind: byte(kind), ph: byte(ph), from: byte(pr.p), val: val},
		})
	}
}

// Start implements runtime.Proc: broadcast the phase-1 report, exactly
// the model's initial configuration.
func (pr *liveBenOrProc) Start() []runtime.Action {
	pr.outbox = nil
	pr.send(1, benOrKindR, pr.value)
	out := pr.outbox
	pr.outbox = nil
	return out
}

// Handle implements runtime.Proc: record the wave message, run the shared
// quorum cascade with the live coin, and broadcast whatever it sent.
func (pr *liveBenOrProc) Handle(a runtime.Action) runtime.Outcome {
	msg := a.Payload.(benOrMsg)
	if int(pr.phase) > pr.w.Phases {
		// Finished processes no longer consume: the model suppresses these
		// delivery edges, so the live run records no step either.
		return runtime.Outcome{Actor: pr.p}
	}
	slot := &pr.got[msg.kind][(int(msg.ph)-1)*pr.w.Procs+int(msg.from)]
	if *slot == benOrNone {
		*slot = msg.val
	}
	pr.outbox = nil
	var coins []byte
	benOrAdvance(pr, pr.w.Procs, pr.w.MaxFaults, pr.w.Phases, func() byte {
		c := byte(pr.rng.Intn(2))
		coins = append(coins, c)
		return c
	})
	out := runtime.Outcome{
		Label:   benOrLabel(int(msg.kind), int(msg.ph), msg.val, int(msg.from), pr.p, coins),
		Actor:   pr.p,
		Effects: pr.outbox,
		Halt:    int(pr.phase) > pr.w.Phases,
	}
	pr.outbox = nil
	return out
}
