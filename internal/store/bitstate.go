package store

import (
	"sync"
	"sync/atomic"
)

// The bitstate backend is the lossy sweep: the visited set keys on the
// (optionally truncated) fingerprint alone and never confirms a hit
// against the real payload, so two distinct states sharing a fingerprint
// silently merge — the second one is dropped along with its entire
// subtree. This is SPIN's bitstate-hashing trade: a fixed, tiny index in
// exchange for giving up exactness. Every Stats it reports carries
// Lossy=true, which downstream layers must translate into "no violation
// found", never "violation impossible"; engine.Differential refuses the
// backend unless the caller opts into AllowLossy.
//
// Payloads of the states that *are* kept still go into the paged table —
// the engine must expand and replay them — so bitstate bounds the index,
// not the payload bytes. Under a collision-free fingerprint the backend is
// exact and deterministic; with collisions (e.g. a small FingerprintBits
// mask) the surviving payload of a colliding pair is first-intern-wins,
// which under parallel exploration can depend on scheduling. That
// nondeterminism is part of the documented unsoundness, not a bug to fix.

// bitEntryOverhead approximates the per-state index cost of a bitstate
// entry (map bucket share plus id).
const bitEntryOverhead = 24

type bitShard struct {
	mu sync.Mutex
	m  map[uint64]int32
}

type bitStore[S comparable] struct {
	shards   []*bitShard
	mask     uint64
	fpMask   uint64
	fpBits   int
	fp       func(*S) uint64
	sizeOf   func(*S) int64
	isString bool
	counter  atomic.Int64
	pages    pagetab[S]
	bytes    atomic.Int64
}

func newBitStore[S comparable](cfg Config, shards int, fp func(*S) uint64) *bitStore[S] {
	var zero S
	_, isString := any(zero).(string)
	st := &bitStore[S]{
		shards:   make([]*bitShard, shards),
		mask:     uint64(shards - 1),
		fpMask:   ^uint64(0),
		fp:       fp,
		sizeOf:   sizeOfFunc[S](),
		isString: isString,
	}
	st.pages.init(0)
	if cfg.FingerprintBits > 0 && cfg.FingerprintBits < 64 {
		st.fpBits = cfg.FingerprintBits
		st.fpMask = 1<<uint(cfg.FingerprintBits) - 1
	}
	for i := range st.shards {
		st.shards[i] = &bitShard{m: make(map[uint64]int32)}
	}
	return st
}

func (st *bitStore[S]) Intern(s S) (int32, bool) {
	h := st.fp(&s) & st.fpMask
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	if id, ok := sh.m[h]; ok {
		sh.mu.Unlock()
		return id, false
	}
	id := int32(st.counter.Add(1) - 1)
	sh.m[h] = id
	st.pages.set(id, s)
	st.bytes.Add(st.sizeOf(&s) + bitEntryOverhead)
	sh.mu.Unlock()
	return id, true
}

// BytesSupported reports whether InternBytes is usable (string states).
func (st *bitStore[S]) BytesSupported() bool { return st.isString }

// InternBytes is the zero-copy intern path (see store.BytesInterner). The
// bitstate index trusts the (masked) fingerprint alone, so a hit costs one
// map lookup and allocates nothing; only the first state of each
// fingerprint class materializes its payload.
func (st *bitStore[S]) InternBytes(h uint64, b []byte) (int32, bool) {
	h &= st.fpMask
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	if id, ok := sh.m[h]; ok {
		sh.mu.Unlock()
		return id, false
	}
	id := int32(st.counter.Add(1) - 1)
	sh.m[h] = id
	var s S
	*any(&s).(*string) = string(b)
	st.pages.set(id, s)
	st.bytes.Add(st.sizeOf(&s) + bitEntryOverhead)
	sh.mu.Unlock()
	return id, true
}

func (st *bitStore[S]) State(id int32) S { return st.pages.get(id) }

func (st *bitStore[S]) Probe(s S) (int32, bool) {
	h := st.fp(&s) & st.fpMask
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	id, ok := sh.m[h]
	if !ok {
		return -1, false
	}
	return id, true
}

func (st *bitStore[S]) Len() int { return int(st.counter.Load()) }

func (st *bitStore[S]) Stats() Stats {
	return Stats{
		Kind:            Bitstate,
		States:          st.Len(),
		BytesInRAM:      st.bytes.Load(),
		Lossy:           true,
		FingerprintBits: st.fpBits,
	}
}

func (st *bitStore[S]) Maintain(int32) error { return nil }
func (st *bitStore[S]) Err() error           { return nil }
func (st *bitStore[S]) Close() error         { return nil }
