// Package store is the pluggable visited-set subsystem underneath the
// exploration engine: the fingerprint-sharded state store that bounds how
// large an instance of each impossibility proof's finite model the library
// can certify. It extracts the engine's original in-memory sharded map into
// a StateStore interface with three backends:
//
//   - mem: the exact hash-sharded map the engine always had, now with
//     per-shard byte accounting. Sound, RAM-resident, the default.
//   - spill: memory-budgeted. The fingerprint index stays in RAM; full
//     state payloads spill to compressed append-only segment files once a
//     byte budget is exceeded, and fingerprint hits are confirmed by
//     reading the segment back. Sound: no 64-bit collision is ever trusted.
//   - bitstate: a fingerprint-only lossy sweep (SPIN's bitstate-hashing
//     analogue). Colliding states are silently merged, so the explored
//     graph may undercount the reachable set; Stats.Lossy flags every
//     result so downstream verdicts are downgraded to "no violation
//     found". Never an impossibility-proof witness.
//
// The package is near-leaf: its only internal dependency is obs (itself a
// leaf), for the shared latency-histogram type in Stats — so the engine,
// core and the CLIs can all select backends without cycles. The
// concurrency contract mirrors the engine's two-phase BFS: Intern/Probe/
// State/Len/Stats may be called concurrently during a level; Maintain and
// Close require quiescence (the engine calls them only at level barriers
// and after replay).
package store

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Kind names a backend.
type Kind string

const (
	// Mem is the RAM-resident sharded map (the default; "" resolves to it).
	Mem Kind = "mem"
	// Spill keeps the fingerprint index in RAM and spills state payloads
	// to compressed segment files under a byte budget.
	Spill Kind = "spill"
	// Bitstate is the lossy fingerprint-only sweep. Unsound by design.
	Bitstate Kind = "bitstate"
)

// DefaultMaxBytes is the spill backend's payload budget when
// Config.MaxBytes is zero: 256 MiB.
const DefaultMaxBytes = 256 << 20

// ErrUnknownKind is returned by New and ParseFlags for an unrecognized
// backend name.
var ErrUnknownKind = errors.New("store: unknown backend kind")

// ErrNoCodec is returned by New when the spill backend is requested for a
// state type it cannot serialize (see codecFor).
var ErrNoCodec = errors.New("store: state type has no spill codec")

// Config selects and parameterizes a backend.
type Config struct {
	// Kind picks the backend; "" means Mem.
	Kind Kind
	// MaxBytes is the spill backend's resident-payload budget in bytes
	// (zero means DefaultMaxBytes). The fingerprint index and the engine's
	// edge arenas are outside the budget by design: the index must stay in
	// RAM for dedup to stay O(1), and the budget's job is to bound the
	// dominant cost, the payload bytes.
	MaxBytes int64
	// Dir, when non-empty, is the directory for spill segment files. Empty
	// selects a fresh temp directory, removed on Close.
	Dir string
	// FingerprintBits, for the bitstate backend, masks the 64-bit state
	// fingerprint down to its low N bits (0 means all 64). Small values
	// force collisions — the knob the lossiness tests turn.
	FingerprintBits int
	// PageBits sets the spill backend's page granularity to 2^PageBits
	// states per page (0 means the default, 2^10). Pages are the spill
	// unit: only whole pages move to disk, so small workloads need small
	// pages to spill at all — the knob the spill tests turn. Production
	// runs should leave it at the default.
	PageBits int
}

// Lossy reports whether the configured backend can merge distinct states
// (and so can only ever support "no violation found" verdicts).
func (c Config) Lossy() bool { return c.Kind == Bitstate }

// ResolvedKind is Kind with the empty default folded to Mem.
func (c Config) ResolvedKind() Kind {
	if c.Kind == "" {
		return Mem
	}
	return c.Kind
}

// Stats is a backend's telemetry snapshot. Counter fields that depend on
// scheduling (SegmentReads, CollisionConfirms, BytesSpilled — all functions
// of which provisional ids landed on which pages) are NOT worker-count
// invariant and are excluded from the engine's determinism comparisons and
// from trace digests.
type Stats struct {
	// Kind is the resolved backend kind.
	Kind Kind
	// States is the number of states interned.
	States int
	// BytesInRAM is the resident footprint estimate: payload bytes still
	// in memory plus index overhead.
	BytesInRAM int64
	// MaxBytes echoes the configured budget (spill only).
	MaxBytes int64
	// ShardBytes is the per-shard resident payload accounting (mem only).
	ShardBytes []int64
	// SpilledStates counts states whose payloads live on disk.
	SpilledStates int
	// BytesSpilled is the raw (uncompressed) payload bytes written to
	// segment files.
	BytesSpilled int64
	// CompressedBytes is the on-disk size of those payloads.
	CompressedBytes int64
	// Segments is the number of segment files written.
	Segments int
	// SegmentReads counts page fetches served from disk (cache misses).
	SegmentReads uint64
	// CollisionConfirms counts fingerprint hits confirmed against a
	// spilled payload.
	CollisionConfirms uint64
	// PageCacheHits counts spilled-payload reads served from the
	// decompressed-page LRU cache; with SegmentReads (the misses) it gives
	// the cache hit rate.
	PageCacheHits uint64
	// ReadLat and WriteLat are the spill backend's per-page segment I/O
	// latency histograms (decompress-read, compress-write).
	ReadLat  obs.HistSnap
	WriteLat obs.HistSnap
	// Lossy reports that the backend may have merged distinct states. A
	// lossy run can never witness a violation's absence — only report that
	// none was found in the states it kept.
	Lossy bool
	// FingerprintBits echoes the bitstate mask width (0 = full 64 bits).
	FingerprintBits int
}

// StateStore is the visited set of one exploration run. Implementations
// are safe for concurrent Intern/Probe/State/Len/Stats during a level;
// Maintain and Close require all workers quiescent (the engine's level
// barriers provide exactly that).
type StateStore[S comparable] interface {
	// Intern returns the provisional id of s, assigning a fresh dense id
	// (in interning order, starting at 0) on first sight. Exact backends
	// confirm every fingerprint hit against the stored payload; the
	// bitstate backend trusts the fingerprint and may merge distinct
	// states.
	Intern(s S) (id int32, fresh bool)
	// State returns the payload interned under id. The id must have been
	// returned by Intern, and the read must be ordered after the write
	// (same-shard mutual exclusion during a level, or a level barrier).
	State(id int32) S
	// Probe reports whether s is already interned, and under which id,
	// without interning it.
	Probe(s S) (id int32, ok bool)
	// Len is the number of states interned so far (live, atomic).
	Len() int
	// Stats snapshots the backend telemetry (safe during a level).
	Stats() Stats
	// Maintain is the level-barrier hook: the backend may enforce its byte
	// budget (spilling payloads with id < keepFrom — the ids below the
	// frontier about to be expanded). It returns the first I/O error the
	// backend has encountered, sticky.
	Maintain(keepFrom int32) error
	// Err returns the sticky I/O error, if any, without maintenance.
	Err() error
	// Close releases files and temp directories. Idempotent.
	Close() error
}

// BytesInterner is the optional zero-copy extension every built-in backend
// implements for string-typed states: the expansion hot path interns a
// successor directly from its encoded bytes, without materializing a
// string per generated state. The contract binding it to Intern:
//
//   - b must be the exact payload bytes of the state (for string states,
//     the bytes ARE the state: string(b)).
//   - h must equal what the fingerprint function passed to New returns
//     for the materialized state. The caller hashes the bytes; the store
//     never re-derives h.
//   - InternBytes(h, b) and Intern(string(b)) are interchangeable: same
//     id assignment, same dedup, same Stats accounting. b is fully
//     consumed before InternBytes returns — callers may reuse the buffer
//     immediately.
//
// BytesSupported reports whether the extension is live for the store's
// state type; when it returns false, InternBytes must not be called. The
// engine probes with a type assertion and falls back to the materializing
// Intern path when the extension is absent or unsupported.
type BytesInterner interface {
	InternBytes(h uint64, b []byte) (id int32, fresh bool)
	BytesSupported() bool
}

// OwnedInterner is the optional single-writer extension backing the
// engine's work-stealing scheduler. The scheduler partitions the store's
// shards among its workers — shard index h & (shards-1), the same formula
// the built-in backends use — and routes every intern to the worker owning
// the successor's shard. Because that makes each shard single-writer for
// the whole discovery phase, the owner may intern without taking the
// per-shard lock.
//
// Contract (in addition to the Intern/InternBytes contracts):
//
//   - h must be the fingerprint fp would assign to the state; the caller
//     hashes, the store never re-derives it.
//   - During a concurrent phase, ALL interns and probes touching a given
//     shard must come from the single goroutine owning it. Mixing
//     InternOwned with concurrent Intern/Probe on the same shard is a data
//     race. State/Len/Stats stay safe from any goroutine.
//   - A quiescent phase (no concurrent access) may freely mix locked and
//     owned calls; establishing happens-before between phases is the
//     caller's job.
//
// OwnedSupported reports whether the extension is live; when false the
// caller must fall back to the locked Intern path (which is always
// correct — ownership routing is then purely a scheduling decision).
type OwnedInterner[S comparable] interface {
	InternOwned(h uint64, s S) (id int32, fresh bool)
	InternBytesOwned(h uint64, b []byte) (id int32, fresh bool)
	OwnedSupported() bool
}

// New builds the configured backend. shards is the stripe count (a power
// of two, chosen by the caller from its worker count) and fp the state
// fingerprint. The spill backend additionally needs a payload codec for S
// and fails with ErrNoCodec when none exists.
func New[S comparable](cfg Config, shards int, fp func(*S) uint64) (StateStore[S], error) {
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("store: shard count %d is not a positive power of two", shards)
	}
	switch cfg.ResolvedKind() {
	case Mem:
		return newMemStore[S](shards, fp), nil
	case Spill:
		return newSpillStore[S](cfg, shards, fp)
	case Bitstate:
		return newBitStore[S](cfg, shards, fp), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, cfg.Kind)
	}
}

// ParseFlags assembles a Config from the CLIs' shared flag values
// (-store and -max-store-bytes), validating the backend name.
func ParseFlags(kind string, maxBytes int64) (Config, error) {
	var cfg Config
	switch kind {
	case "", "mem":
		cfg.Kind = Mem
	case "spill":
		cfg.Kind = Spill
	case "bitstate":
		cfg.Kind = Bitstate
	default:
		return Config{}, fmt.Errorf("%w: %q (want mem, spill or bitstate)", ErrUnknownKind, kind)
	}
	if maxBytes < 0 {
		return Config{}, fmt.Errorf("store: negative byte budget %d", maxBytes)
	}
	cfg.MaxBytes = maxBytes
	return cfg, nil
}
