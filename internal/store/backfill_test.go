package store

import (
	"errors"
	"testing"
)

// TestNewValidation pins New's error paths: shard counts must be positive
// powers of two and the backend kind must be known.
func TestNewValidation(t *testing.T) {
	for _, shards := range []int{0, -1, 3, 6} {
		if _, err := New[string](Config{}, shards, stringFP); err == nil {
			t.Errorf("New accepted shard count %d", shards)
		}
	}
	if _, err := New[string](Config{Kind: Kind("disk")}, 1, stringFP); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("New(kind=disk) = %v, want ErrUnknownKind", err)
	}
}

func TestConfigLossy(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want bool
	}{
		{Config{}, false},
		{Config{Kind: Mem}, false},
		{Config{Kind: Spill}, false},
		{Config{Kind: Bitstate}, true},
	} {
		if got := tc.cfg.Lossy(); got != tc.want {
			t.Errorf("Config{Kind:%q}.Lossy() = %v, want %v", tc.cfg.Kind, got, tc.want)
		}
	}
}

// TestErrNilOnHealthyBackends: Err reports no deferred I/O failure on any
// backend that has only done in-memory or successful disk work.
func TestErrNilOnHealthyBackends(t *testing.T) {
	for name, cfg := range backendConfigs(t) {
		st, err := New[string](cfg, 2, stringFP)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st.Intern("a")
		st.Intern("b")
		if err := st.Maintain(2); err != nil {
			t.Fatalf("%s: Maintain: %v", name, err)
		}
		if err := st.Err(); err != nil {
			t.Errorf("%s: Err() = %v on a healthy store", name, err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestMemOwnedInterner covers the single-writer fast path: owned interns
// must agree with the locked path on ids and freshness.
func TestMemOwnedInterner(t *testing.T) {
	st, err := New[string](Config{Kind: Mem}, 4, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	own, ok := st.(OwnedInterner[string])
	if !ok || !own.OwnedSupported() {
		t.Fatal("mem backend does not expose the owned-interner extension")
	}
	s := "owned-state"
	h := stringFP(&s)
	id, fresh := own.InternOwned(h, s)
	if !fresh {
		t.Fatal("first owned intern not fresh")
	}
	if id2, fresh2 := st.Intern(s); id2 != id || fresh2 {
		t.Fatalf("locked re-intern = (%d,%v), want (%d,false)", id2, fresh2, id)
	}
	b := "owned-bytes"
	hb := stringFP(&b)
	idb, fresh := own.InternBytesOwned(hb, []byte(b))
	if !fresh {
		t.Fatal("first owned byte intern not fresh")
	}
	if st.State(idb) != b {
		t.Fatalf("State(%d) = %q, want %q", idb, st.State(idb), b)
	}
	if id3, fresh3 := own.InternBytesOwned(hb, []byte(b)); id3 != idb || fresh3 {
		t.Fatalf("owned byte re-intern = (%d,%v), want (%d,false)", id3, fresh3, idb)
	}
}

// TestSpillDefaultDir: an empty Dir selects a temp directory that Close
// cleans up, and an unset MaxBytes falls back to the default budget.
func TestSpillDefaultDir(t *testing.T) {
	st, err := New[string](Config{Kind: Spill}, 1, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	st.Intern("x")
	if got := st.Stats().MaxBytes; got != DefaultMaxBytes {
		t.Errorf("default budget = %d, want DefaultMaxBytes %d", got, DefaultMaxBytes)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntCodecWidths round-trips every fixed-width integer state type
// through the spill codec, including negative values whose sign must
// survive the uint64 raw-bits transport.
func TestIntCodecWidths(t *testing.T) {
	t.Run("int8", func(t *testing.T) { codecRoundTrip(t, []int8{-128, -1, 0, 1, 127}) })
	t.Run("int16", func(t *testing.T) { codecRoundTrip(t, []int16{-32768, -7, 0, 9, 32767}) })
	t.Run("int32", func(t *testing.T) { codecRoundTrip(t, []int32{-1 << 31, -3, 0, 5, 1<<31 - 1}) })
	t.Run("int64", func(t *testing.T) { codecRoundTrip(t, []int64{-1 << 62, -11, 0, 13, 1 << 62}) })
	t.Run("uint", func(t *testing.T) { codecRoundTrip(t, []uint{0, 1, 1 << 40}) })
	t.Run("uint8", func(t *testing.T) { codecRoundTrip(t, []uint8{0, 1, 255}) })
	t.Run("uint16", func(t *testing.T) { codecRoundTrip(t, []uint16{0, 2, 65535}) })
	t.Run("uint32", func(t *testing.T) { codecRoundTrip(t, []uint32{0, 4, 1<<32 - 1}) })
	t.Run("uint64", func(t *testing.T) { codecRoundTrip(t, []uint64{0, 8, 1 << 63}) })
	t.Run("uintptr", func(t *testing.T) { codecRoundTrip(t, []uintptr{0, 16, 1 << 30}) })
}

func codecRoundTrip[S comparable](t *testing.T, vals []S) {
	t.Helper()
	cdc := codecFor[S]()
	if cdc == nil {
		t.Fatalf("codecFor[%T] = nil", vals[0])
	}
	size := sizeOfFunc[S]()
	for _, v := range vals {
		v := v
		if size(&v) <= 0 {
			t.Fatalf("sizeOf(%v) not positive", v)
		}
		enc := cdc.enc(nil, &v)
		if got := cdc.dec(enc); got != v {
			t.Fatalf("codec round trip %v -> %v", v, got)
		}
	}
}
