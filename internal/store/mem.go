package store

import (
	"sync"
	"sync/atomic"
)

// memEntryOverhead approximates the per-state index cost of a mem-backend
// entry: the map bucket share, the bucket-slice header amortization and
// the id. Accounting only — never correctness.
const memEntryOverhead = 48

// memEntry is one occupant of a mem-backend shard: the full state is kept
// inline so a fingerprint hit is always confirmed against the real state,
// ruling out 64-bit collisions.
type memEntry[S comparable] struct {
	state S
	id    int32
}

// memShard is one stripe of the visited set, keyed by state fingerprint,
// with resident-byte accounting.
type memShard[S comparable] struct {
	mu    sync.Mutex
	m     map[uint64][]memEntry[S]
	bytes int64
}

// memStore is the RAM-resident backend: the engine's original sharded map
// plus per-shard byte accounting and the shared paged id -> payload table.
type memStore[S comparable] struct {
	shards  []*memShard[S]
	mask    uint64
	fp      func(*S) uint64
	sizeOf  func(*S) int64
	counter atomic.Int64
	pages   pagetab[S]
}

func newMemStore[S comparable](shards int, fp func(*S) uint64) *memStore[S] {
	st := &memStore[S]{
		shards: make([]*memShard[S], shards),
		mask:   uint64(shards - 1),
		fp:     fp,
		sizeOf: sizeOfFunc[S](),
	}
	st.pages.init(0)
	for i := range st.shards {
		st.shards[i] = &memShard[S]{m: make(map[uint64][]memEntry[S])}
	}
	return st
}

func (st *memStore[S]) Intern(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	for _, en := range sh.m[h] {
		if en.state == s {
			sh.mu.Unlock()
			return en.id, false
		}
	}
	id := int32(st.counter.Add(1) - 1)
	sh.m[h] = append(sh.m[h], memEntry[S]{state: s, id: id})
	sh.bytes += st.sizeOf(&s) + memEntryOverhead
	st.pages.set(id, s)
	sh.mu.Unlock()
	return id, true
}

func (st *memStore[S]) State(id int32) S { return st.pages.get(id) }

func (st *memStore[S]) Probe(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, en := range sh.m[h] {
		if en.state == s {
			return en.id, true
		}
	}
	return -1, false
}

func (st *memStore[S]) Len() int { return int(st.counter.Load()) }

func (st *memStore[S]) Stats() Stats {
	out := Stats{
		Kind:       Mem,
		States:     st.Len(),
		ShardBytes: make([]int64, len(st.shards)),
	}
	for i, sh := range st.shards {
		sh.mu.Lock()
		out.ShardBytes[i] = sh.bytes
		sh.mu.Unlock()
		out.BytesInRAM += out.ShardBytes[i]
	}
	return out
}

func (st *memStore[S]) Maintain(int32) error { return nil }
func (st *memStore[S]) Err() error           { return nil }
func (st *memStore[S]) Close() error         { return nil }
