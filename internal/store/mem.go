package store

import (
	"sync"
	"sync/atomic"
)

// memEntryOverhead approximates the per-state index cost of a mem-backend
// entry: the open-addressing slot share (fingerprint + id at ~75% load)
// plus the paged-table slot. Accounting only — never correctness.
const memEntryOverhead = 48

// memShardInitSlots is the initial open-addressing table size per shard.
const memShardInitSlots = 64

// memShard is one stripe of the visited set: an open-addressing
// fingerprint → id table (linear probing, no deletion) with resident-byte
// accounting and, for string states, a slab arena holding the payload
// bytes. Compared to the map-of-buckets it replaced, a hit costs one probe
// sequence over two flat arrays instead of a map lookup plus bucket-slice
// walk, and a fresh intern allocates nothing in steady state.
type memShard struct {
	mu sync.Mutex
	// fps[i] is the full 64-bit fingerprint of the occupant of slot i;
	// ids[i] is its id+1, so 0 marks an empty slot. Probing starts at
	// fingerprint bits disjoint from the shard-selection bits and walks
	// linearly; equal fingerprints of distinct states (a real 64-bit
	// collision, or the test-only degraded fingerprint) simply occupy
	// separate slots and are disambiguated by payload confirmation.
	fps  []uint64
	ids  []int32
	used int
	// bytes is atomic (not mutex-guarded like the rest): Stats may run from
	// the telemetry monitor while the shard's owner interns lock-free under
	// the work-stealing scheduler, so the one field Stats reads must not
	// rely on the mutex the owner skips.
	bytes atomic.Int64
	arena slab
}

// probeAt returns the slot index where h's probe sequence starts. The low
// byte of h selects the shard, so the start position uses the bits above
// it to keep the within-shard spread independent of the sharding.
func probeAt(h uint64, n int) int { return int((h >> 8) & uint64(n-1)) }

// grow doubles the table and reinserts every occupant. Caller holds mu.
func (sh *memShard) grow() {
	oldFps, oldIds := sh.fps, sh.ids
	n := len(oldFps) * 2
	sh.fps = make([]uint64, n)
	sh.ids = make([]int32, n)
	for j, idp := range oldIds {
		if idp == 0 {
			continue
		}
		h := oldFps[j]
		i := probeAt(h, n)
		for sh.ids[i] != 0 {
			i = (i + 1) & (n - 1)
		}
		sh.fps[i] = h
		sh.ids[i] = idp
	}
}

// memStore is the RAM-resident backend: open-addressing fingerprint
// shards over the shared paged id -> payload table. String payloads are
// copied into per-shard slab arenas and stored as zero-copy views, so the
// hot intern path allocates only on chunk turnover and table growth.
type memStore[S comparable] struct {
	shards   []*memShard
	mask     uint64
	fp       func(*S) uint64
	sizeOf   func(*S) int64
	isString bool
	counter  atomic.Int64
	pages    pagetab[S]
}

func newMemStore[S comparable](shards int, fp func(*S) uint64) *memStore[S] {
	var zero S
	_, isString := any(zero).(string)
	st := &memStore[S]{
		shards:   make([]*memShard, shards),
		mask:     uint64(shards - 1),
		fp:       fp,
		sizeOf:   sizeOfFunc[S](),
		isString: isString,
	}
	st.pages.init(0)
	for i := range st.shards {
		st.shards[i] = &memShard{
			fps: make([]uint64, memShardInitSlots),
			ids: make([]int32, memShardInitSlots),
		}
	}
	return st
}

func (st *memStore[S]) Intern(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	id, fresh := st.intern(sh, h, s)
	sh.mu.Unlock()
	return id, fresh
}

// intern is the lock-free core of Intern: the caller either holds sh.mu or
// is the shard's single writer (see OwnedInterner).
func (st *memStore[S]) intern(sh *memShard, h uint64, s S) (int32, bool) {
	mask := len(sh.ids) - 1
	i := probeAt(h, len(sh.ids))
	for {
		idp := sh.ids[i]
		if idp == 0 {
			break
		}
		if sh.fps[i] == h && st.pages.get(idp-1) == s {
			return idp - 1, false
		}
		i = (i + 1) & mask
	}
	id := int32(st.counter.Add(1) - 1)
	sh.fps[i] = h
	sh.ids[i] = id + 1
	if st.isString {
		// Copy the payload into the shard's slab so the store owns dense,
		// stable bytes regardless of where the caller's string came from.
		view := sh.arena.addString(*any(&s).(*string))
		var owned S
		*any(&owned).(*string) = view
		st.pages.set(id, owned)
	} else {
		st.pages.set(id, s)
	}
	sh.bytes.Add(st.sizeOf(&s) + memEntryOverhead)
	sh.used++
	if sh.used*16 >= len(sh.ids)*13 {
		sh.grow()
	}
	return id, true
}

// BytesSupported reports whether InternBytes is usable: the payload type
// must be string (the bytes ARE the state).
func (st *memStore[S]) BytesSupported() bool { return st.isString }

// InternBytes interns the string state whose payload is b without
// materializing it: h must be the fingerprint the store's fp would assign
// to string(b) (see BytesInterner). On a hit nothing is allocated; on a
// fresh intern the bytes are slab-copied and published as a zero-copy
// string view.
func (st *memStore[S]) InternBytes(h uint64, b []byte) (int32, bool) {
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	id, fresh := st.internBytes(sh, h, b)
	sh.mu.Unlock()
	return id, fresh
}

// internBytes is the lock-free core of InternBytes; locking discipline as
// for intern.
func (st *memStore[S]) internBytes(sh *memShard, h uint64, b []byte) (int32, bool) {
	mask := len(sh.ids) - 1
	i := probeAt(h, len(sh.ids))
	for {
		idp := sh.ids[i]
		if idp == 0 {
			break
		}
		if sh.fps[i] == h {
			v := st.pages.get(idp - 1)
			if *any(&v).(*string) == string(b) {
				return idp - 1, false
			}
		}
		i = (i + 1) & mask
	}
	id := int32(st.counter.Add(1) - 1)
	sh.fps[i] = h
	sh.ids[i] = id + 1
	var owned S
	*any(&owned).(*string) = sh.arena.addBytes(b)
	st.pages.set(id, owned)
	sh.bytes.Add(int64(len(b)) + stringHeaderBytes + memEntryOverhead)
	sh.used++
	if sh.used*16 >= len(sh.ids)*13 {
		sh.grow()
	}
	return id, true
}

// InternOwned interns on behalf of the goroutine owning h's shard,
// skipping the shard lock. See store.OwnedInterner for the single-writer
// contract that makes this sound.
func (st *memStore[S]) InternOwned(h uint64, s S) (int32, bool) {
	return st.intern(st.shards[h&st.mask], h, s)
}

// InternBytesOwned is InternOwned over encoded payload bytes. Requires
// BytesSupported (string states), like InternBytes.
func (st *memStore[S]) InternBytesOwned(h uint64, b []byte) (int32, bool) {
	return st.internBytes(st.shards[h&st.mask], h, b)
}

// OwnedSupported reports that the mem backend implements the single-writer
// fast path. The shard-selection formula is h & (shards-1), which is what
// the engine's ownership partition assumes.
func (st *memStore[S]) OwnedSupported() bool { return true }

func (st *memStore[S]) State(id int32) S { return st.pages.get(id) }

func (st *memStore[S]) Probe(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mask := len(sh.ids) - 1
	for i := probeAt(h, len(sh.ids)); ; i = (i + 1) & mask {
		idp := sh.ids[i]
		if idp == 0 {
			return -1, false
		}
		if sh.fps[i] == h && st.pages.get(idp-1) == s {
			return idp - 1, true
		}
	}
}

func (st *memStore[S]) Len() int { return int(st.counter.Load()) }

func (st *memStore[S]) Stats() Stats {
	out := Stats{
		Kind:       Mem,
		States:     st.Len(),
		ShardBytes: make([]int64, len(st.shards)),
	}
	for i, sh := range st.shards {
		// Atomic read only: under the work-stealing scheduler the shard's
		// owner writes without the mutex, so taking it here would not
		// synchronize anything anyway.
		out.ShardBytes[i] = sh.bytes.Load()
		out.BytesInRAM += out.ShardBytes[i]
	}
	return out
}

func (st *memStore[S]) Maintain(int32) error { return nil }
func (st *memStore[S]) Err() error           { return nil }
func (st *memStore[S]) Close() error         { return nil }
