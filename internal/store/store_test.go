package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// stringFP mirrors the engine's string fingerprint shape: deterministic,
// well spread. Tests that need collisions use the bitstate mask knob
// instead of degrading this.
func stringFP(s *string) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(*s); i++ {
		h ^= uint64((*s)[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// backendConfigs enumerates the conformance matrix: every backend, with
// the spill backend additionally squeezed under a tiny budget so the
// segment path is exercised, not just compiled.
func backendConfigs(t *testing.T) map[string]Config {
	t.Helper()
	return map[string]Config{
		"mem":          {Kind: Mem},
		"spill":        {Kind: Spill, Dir: t.TempDir()},
		"spill-tiny":   {Kind: Spill, MaxBytes: 1 << 10, Dir: t.TempDir()},
		"spill-page32": {Kind: Spill, MaxBytes: 1 << 10, Dir: t.TempDir(), PageBits: 5},
		"bitstate":     {Kind: Bitstate},
		"default-kind": {},
	}
}

func testStates(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("state-%06d-%s", i, string(rune('a'+i%26)))
	}
	return out
}

// TestConformanceInsertLookup drives the shared insert/lookup/confirm
// semantics through every backend: dense ids in interning order, stable
// re-interning, payload round-trips and Probe visibility — including
// across Maintain-driven spilling.
func TestConformanceInsertLookup(t *testing.T) {
	const n = 4096 // > 1 page, so spill-tiny moves multiple pages to disk
	states := testStates(n)
	for name, cfg := range backendConfigs(t) {
		t.Run(name, func(t *testing.T) {
			st, err := New[string](cfg, 4, stringFP)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			for i, s := range states {
				id, fresh := st.Intern(s)
				if !fresh || id != int32(i) {
					t.Fatalf("Intern(%q) = (%d, %v), want (%d, true)", s, id, fresh, i)
				}
			}
			if st.Len() != n {
				t.Fatalf("Len = %d, want %d", st.Len(), n)
			}
			// Barrier-equivalent: enforce the budget, then re-check everything.
			if err := st.Maintain(int32(n)); err != nil {
				t.Fatal(err)
			}
			for i, s := range states {
				if got := st.State(int32(i)); got != s {
					t.Fatalf("State(%d) = %q, want %q", i, got, s)
				}
				id, fresh := st.Intern(s)
				if fresh || id != int32(i) {
					t.Fatalf("re-Intern(%q) = (%d, %v), want (%d, false)", s, id, fresh, i)
				}
				pid, ok := st.Probe(s)
				if !ok || pid != int32(i) {
					t.Fatalf("Probe(%q) = (%d, %v), want (%d, true)", s, pid, ok, i)
				}
			}
			if _, ok := st.Probe("never-interned"); ok {
				t.Fatal("Probe of an unknown state reported a hit")
			}
			if st.Len() != n {
				t.Fatalf("Len after re-interning = %d, want %d", st.Len(), n)
			}
			ss := st.Stats()
			if ss.States != n {
				t.Fatalf("Stats.States = %d, want %d", ss.States, n)
			}
			if ss.Lossy != (cfg.Kind == Bitstate) {
				t.Fatalf("Stats.Lossy = %v for kind %q", ss.Lossy, cfg.ResolvedKind())
			}
			if ss.Kind != cfg.ResolvedKind() {
				t.Fatalf("Stats.Kind = %q, want %q", ss.Kind, cfg.ResolvedKind())
			}
		})
	}
}

// TestConformanceConcurrent hammers Intern/Probe from several goroutines
// with overlapping state sets and checks the end state agrees with a
// sequential interning. Run under -race this is the synchronization
// contract's unit-level check (the engine-level determinism checks are in
// internal/engine).
func TestConformanceConcurrent(t *testing.T) {
	const n = 2000
	states := testStates(n)
	for name, cfg := range backendConfigs(t) {
		t.Run(name, func(t *testing.T) {
			st, err := New[string](cfg, 8, stringFP)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := range states {
						s := states[(i+g*531)%n]
						id, _ := st.Intern(s)
						if got := st.State(id); got != s {
							panic(fmt.Sprintf("State(%d) = %q after Intern(%q)", id, got, s))
						}
						if pid, ok := st.Probe(s); !ok || pid != id {
							panic(fmt.Sprintf("Probe(%q) = (%d, %v), want (%d, true)", s, pid, ok, id))
						}
					}
				}(g)
			}
			wg.Wait()
			if st.Len() != n {
				t.Fatalf("Len = %d, want %d distinct states", st.Len(), n)
			}
			seen := make(map[int32]bool, n)
			for _, s := range states {
				id, fresh := st.Intern(s)
				if fresh {
					t.Fatalf("state %q lost after concurrent interning", s)
				}
				if seen[id] {
					t.Fatalf("id %d assigned to two states", id)
				}
				seen[id] = true
			}
		})
	}
}

// TestSpillBudget checks the budget mechanics: payloads spill oldest-first
// once resident bytes exceed MaxBytes, ids at or above keepFrom stay
// resident, and spilled payloads keep answering State/Intern/Probe
// exactly (confirm-by-readback).
func TestSpillBudget(t *testing.T) {
	const n = 8192
	states := testStates(n)
	st, err := New[string](Config{Kind: Spill, MaxBytes: 4 << 10, Dir: t.TempDir()}, 4, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, s := range states {
		st.Intern(s)
	}
	before := st.Stats()
	if before.Segments != 0 {
		t.Fatalf("segments written before Maintain: %d", before.Segments)
	}
	// keepFrom in the middle: pages wholly below it may spill, the rest not.
	keep := int32(3 << defaultPageBits)
	if err := st.Maintain(keep); err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.Segments == 0 || ss.SpilledStates == 0 {
		t.Fatalf("nothing spilled under a %d-byte budget: %+v", 4<<10, ss)
	}
	if ss.SpilledStates > int(keep) {
		t.Fatalf("spilled %d states past keepFrom %d", ss.SpilledStates, keep)
	}
	if ss.BytesSpilled <= 0 || ss.CompressedBytes <= 0 || ss.CompressedBytes >= ss.BytesSpilled {
		t.Fatalf("suspicious spill accounting: raw=%d comp=%d", ss.BytesSpilled, ss.CompressedBytes)
	}
	for i, s := range states {
		if got := st.State(int32(i)); got != s {
			t.Fatalf("State(%d) = %q, want %q after spill", i, got, s)
		}
		if id, fresh := st.Intern(s); fresh || id != int32(i) {
			t.Fatalf("re-Intern(%q) = (%d, %v) after spill", s, id, fresh)
		}
	}
	after := st.Stats()
	if after.CollisionConfirms == 0 {
		t.Fatal("re-interning spilled states confirmed nothing from segments")
	}
	if after.SegmentReads == 0 {
		t.Fatal("no segment reads recorded")
	}
	// A second Maintain with full keepFrom may spill the rest; everything
	// must still round-trip.
	if err := st.Maintain(int32(n)); err != nil {
		t.Fatal(err)
	}
	for i, s := range states {
		if got := st.State(int32(i)); got != s {
			t.Fatalf("State(%d) = %q, want %q after second spill", i, got, s)
		}
	}
}

// TestSpillRefusesExoticTypes pins ErrNoCodec: the spill backend must
// reject state types it cannot serialize instead of guessing.
func TestSpillRefusesExoticTypes(t *testing.T) {
	type odd struct{ A, B int }
	if _, err := New[odd](Config{Kind: Spill}, 1, func(*odd) uint64 { return 0 }); !errors.Is(err, ErrNoCodec) {
		t.Fatalf("New[odd](spill) = %v, want ErrNoCodec", err)
	}
	if _, err := New[odd](Config{Kind: Mem}, 1, func(*odd) uint64 { return 0 }); err != nil {
		t.Fatalf("New[odd](mem) = %v, want nil (mem needs no codec)", err)
	}
}

// TestBitstateLossiness pins the documented unsoundness: under a
// truncated fingerprint, distinct states merge, Len undercounts, and the
// Stats carry Lossy plus the mask width. Under the full 64-bit
// fingerprint the backend behaves exactly on these inputs.
func TestBitstateLossiness(t *testing.T) {
	const n = 1000
	states := testStates(n)

	lossy, err := New[string](Config{Kind: Bitstate, FingerprintBits: 6}, 2, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	for _, s := range states {
		lossy.Intern(s)
	}
	if lossy.Len() >= n {
		t.Fatalf("6-bit fingerprints kept %d of %d states; expected merges", lossy.Len(), n)
	}
	if lossy.Len() > 1<<6 {
		t.Fatalf("6-bit fingerprints admit at most 64 states, got %d", lossy.Len())
	}
	ss := lossy.Stats()
	if !ss.Lossy || ss.FingerprintBits != 6 {
		t.Fatalf("Stats = %+v, want Lossy=true FingerprintBits=6", ss)
	}

	exact, err := New[string](Config{Kind: Bitstate}, 2, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	for i, s := range states {
		if id, fresh := exact.Intern(s); !fresh || id != int32(i) {
			t.Fatalf("full-width bitstate merged distinct state %q", s)
		}
	}
	if !exact.Stats().Lossy {
		t.Fatal("bitstate must report Lossy even when no collision occurred: the claim is about the mode, not the run")
	}
}

// TestIntCodecRoundTrip drives the integer codecs through a spill
// round-trip (ints are the engine's toy-system state type).
func TestIntCodecRoundTrip(t *testing.T) {
	st, err := New[int](Config{Kind: Spill, MaxBytes: 1, Dir: t.TempDir()},
		1, func(v *int) uint64 { return uint64(*v) * 0x9e3779b97f4a7c15 })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		st.Intern(i*7 - 1000)
	}
	if err := st.Maintain(n); err != nil {
		t.Fatal(err)
	}
	if st.Stats().SpilledStates == 0 {
		t.Fatal("int payloads did not spill under a 1-byte budget")
	}
	for i := 0; i < n; i++ {
		if got := st.State(int32(i)); got != i*7-1000 {
			t.Fatalf("State(%d) = %d, want %d", i, got, i*7-1000)
		}
	}
}

// TestParseFlags pins the CLI flag surface.
func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want Kind
	}{{"", Mem}, {"mem", Mem}, {"spill", Spill}, {"bitstate", Bitstate}} {
		cfg, err := ParseFlags(tc.kind, 0)
		if err != nil || cfg.Kind != tc.want {
			t.Fatalf("ParseFlags(%q) = (%+v, %v), want kind %q", tc.kind, cfg, err, tc.want)
		}
	}
	if _, err := ParseFlags("disk", 0); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("ParseFlags(disk) = %v, want ErrUnknownKind", err)
	}
	if _, err := ParseFlags("spill", -1); err == nil {
		t.Fatal("ParseFlags accepted a negative budget")
	}
}

// TestStatsByteAccounting sanity-checks the mem backend's per-shard
// accounting: shard totals are positive where populated and sum to
// BytesInRAM.
func TestStatsByteAccounting(t *testing.T) {
	st, err := New[string](Config{Kind: Mem}, 4, stringFP)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, s := range testStates(500) {
		st.Intern(s)
	}
	ss := st.Stats()
	if len(ss.ShardBytes) != 4 {
		t.Fatalf("ShardBytes has %d entries, want 4", len(ss.ShardBytes))
	}
	var sum int64
	for i, b := range ss.ShardBytes {
		if b <= 0 {
			t.Fatalf("shard %d accounts %d bytes over 500 well-spread states", i, b)
		}
		sum += b
	}
	if sum != ss.BytesInRAM || sum < 500*memEntryOverhead {
		t.Fatalf("BytesInRAM %d vs shard sum %d", ss.BytesInRAM, sum)
	}
}

// TestConformanceInternBytes drives the BytesInterner extension through
// every backend: InternBytes and Intern must be interchangeable — same id
// assignment, same dedup verdicts, same payload round-trips — whether a
// state first arrives as a string or as raw bytes, including across
// Maintain-driven spilling and under the bitstate backend's lossy merge
// (which InternBytes must reproduce exactly).
func TestConformanceInternBytes(t *testing.T) {
	const n = 4096
	states := testStates(n)
	fpBytes := func(b []byte) uint64 {
		s := string(b)
		return stringFP(&s)
	}
	for name, cfg := range backendConfigs(t) {
		t.Run(name, func(t *testing.T) {
			st, err := New[string](cfg, 4, stringFP)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			bi, ok := any(st).(BytesInterner)
			if !ok || !bi.BytesSupported() {
				t.Fatalf("backend %q does not support bytes interning for string states", name)
			}
			buf := make([]byte, 0, 64)
			for i, s := range states {
				buf = append(buf[:0], s...)
				var id int32
				var fresh bool
				if i%2 == 0 {
					id, fresh = bi.InternBytes(fpBytes(buf), buf)
				} else {
					id, fresh = st.Intern(s)
				}
				if !fresh || id != int32(i) {
					t.Fatalf("first intern of %q = (%d, %v), want (%d, true)", s, id, fresh, i)
				}
				// Poison the scratch buffer: the store must have copied.
				for j := range buf {
					buf[j] = 0xDB
				}
			}
			if err := st.Maintain(int32(n)); err != nil {
				t.Fatal(err)
			}
			for i, s := range states {
				// Re-intern through the opposite path from the first pass.
				buf = append(buf[:0], s...)
				var id int32
				var fresh bool
				if i%2 == 0 {
					id, fresh = st.Intern(s)
				} else {
					id, fresh = bi.InternBytes(fpBytes(buf), buf)
				}
				if fresh || id != int32(i) {
					t.Fatalf("re-intern of %q = (%d, %v), want (%d, false)", s, id, fresh, i)
				}
				if got := st.State(int32(i)); got != s {
					t.Fatalf("State(%d) = %q, want %q", i, got, s)
				}
			}
			if st.Len() != n {
				t.Fatalf("Len = %d, want %d", st.Len(), n)
			}
		})
	}
}

// TestInternBytesUnsupported checks that non-string stores report the
// extension as unavailable rather than mis-serializing.
func TestInternBytesUnsupported(t *testing.T) {
	st, err := New[int](Config{}, 1, func(p *int) uint64 { return uint64(*p) })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bi, ok := any(st).(BytesInterner)
	if !ok {
		t.Fatal("mem store does not implement BytesInterner")
	}
	if bi.BytesSupported() {
		t.Fatal("BytesSupported() = true for int states")
	}
}
