package store

import (
	"encoding/binary"
	"testing"
)

// BenchmarkPageEncode is the satellite-fix evidence: the spill write path
// encodes a whole page of states into one reused scratch buffer
// (encodePage), replacing the naive per-state allocation a first cut would
// make. The "naive" variant below is that first cut, kept as the
// before/after baseline quoted in EXPERIMENTS.md.
func BenchmarkPageEncode(b *testing.B) {
	st, err := newSpillStore[string](Config{Dir: b.TempDir()}, 1, stringFP)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	pageSize := st.pages.size
	pg := &page[string]{slots: testStates(pageSize)}

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var raw []byte
			raw = binary.LittleEndian.AppendUint32(raw, uint32(pageSize))
			offs := make([]uint32, 0, pageSize+1)
			offs = append(offs, 0)
			var payload []byte
			for j := range pg.slots {
				enc := make([]byte, 0, len(pg.slots[j]))
				enc = st.codec.enc(enc, &pg.slots[j])
				payload = append(payload, enc...)
				offs = append(offs, uint32(len(payload)))
			}
			for _, o := range offs {
				raw = binary.LittleEndian.AppendUint32(raw, o)
			}
			raw = append(raw, payload...)
			if len(raw) == 0 {
				b.Fatal("empty page image")
			}
		}
	})

	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			raw, _ := st.encodePage(pg, pageSize)
			if len(raw) == 0 {
				b.Fatal("empty page image")
			}
		}
	})
}
