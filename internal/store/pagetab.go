package store

import (
	"sync"
	"sync/atomic"
)

// pagetab is the id -> payload table shared by every backend: a two-level
// paged array that grows without ever moving a published page, so readers
// need no lock.
//
// Synchronization contract (matching StateStore's): the page spine and the
// page pointers are atomic, so concurrent set calls may create pages
// freely; a *slot* write is only visible to a reader ordered after it by
// some external happens-before edge — the owning shard's mutex within a
// level, or a level barrier across levels. Distinct slots may be written
// concurrently. page and drop require quiescence (Maintain-time only).
const (
	// defaultPageBits sets the default page granularity: 2^10 states.
	defaultPageBits = 10
	chunkBits       = 6
	chunkPages      = 1 << chunkBits
)

// page holds the payloads of one aligned block of consecutive ids.
type page[S any] struct{ slots []S }

// chunk is a fixed block of page pointers; chunks never move once
// published, so a page pointer load needs no spine lock.
type chunk[S any] struct {
	pages [chunkPages]atomic.Pointer[page[S]]
}

type pagetab[S any] struct {
	bits  uint
	size  int
	mask  int
	mu    sync.Mutex // guards spine growth only
	spine atomic.Pointer[[]*chunk[S]]
}

// init fixes the page granularity (0 selects defaultPageBits). Must be
// called before any other method.
func (t *pagetab[S]) init(bits int) {
	if bits <= 0 {
		bits = defaultPageBits
	}
	t.bits = uint(bits)
	t.size = 1 << bits
	t.mask = t.size - 1
}

// set records the payload of id. Safe concurrently with other set/get
// calls on distinct ids (see the synchronization contract above).
func (t *pagetab[S]) set(id int32, s S) {
	pno := int(id) >> t.bits
	ci, pi := pno>>chunkBits, pno&(chunkPages-1)
	chunks := t.spine.Load()
	if chunks == nil || ci >= len(*chunks) {
		t.grow(ci)
		chunks = t.spine.Load()
	}
	c := (*chunks)[ci]
	pg := c.pages[pi].Load()
	if pg == nil {
		fresh := &page[S]{slots: make([]S, t.size)}
		if c.pages[pi].CompareAndSwap(nil, fresh) {
			pg = fresh
		} else {
			pg = c.pages[pi].Load()
		}
	}
	pg.slots[int(id)&t.mask] = s
}

// get returns the payload of id. The page must be resident (not dropped).
func (t *pagetab[S]) get(id int32) S {
	pno := int(id) >> t.bits
	chunks := *t.spine.Load()
	return chunks[pno>>chunkBits].pages[pno&(chunkPages-1)].Load().slots[int(id)&t.mask]
}

// page returns the full page pno for bulk encoding (quiescent use).
func (t *pagetab[S]) page(pno int) *page[S] {
	chunks := *t.spine.Load()
	return chunks[pno>>chunkBits].pages[pno&(chunkPages-1)].Load()
}

// drop releases page pno after its payloads were spilled (quiescent use).
func (t *pagetab[S]) drop(pno int) {
	chunks := *t.spine.Load()
	chunks[pno>>chunkBits].pages[pno&(chunkPages-1)].Store(nil)
}

// grow extends the spine to cover chunk index ci.
func (t *pagetab[S]) grow(ci int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.spine.Load()
	n := 0
	if cur != nil {
		n = len(*cur)
	}
	if ci < n {
		return
	}
	next := make([]*chunk[S], ci+1)
	if cur != nil {
		copy(next, *cur)
	}
	for i := n; i <= ci; i++ {
		next[i] = new(chunk[S])
	}
	t.spine.Store(&next)
}
