package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The spill backend keeps the fingerprint index in RAM — buckets hold ids
// only — while state payloads live in the paged table until the resident
// budget is exceeded, at which point Maintain moves whole pages of the
// *oldest* payloads into flate-compressed, append-only segment files. Ids
// are assigned in interning order, so "oldest" means the earliest BFS
// levels: exactly the states the frontier's dedup hits target least, which
// keeps the confirm-read rate low. A fingerprint hit on a spilled id is
// confirmed by decompressing its page back (served through a small LRU
// page cache), so the backend stays exact: no 64-bit collision is ever
// trusted.
//
// Layout of one spilled page (before compression):
//
//	u32 count                      number of states in the page
//	u32 off[count+1]               payload-section offsets, off[0] = 0
//	payload bytes                  count encoded states, back to back
//
// Each page is an independent flate stream at a recorded (segment, offset,
// length), so a single confirm decompresses one page, never a segment.
// Crash safety is an explicit non-goal: segments hold no redundancy or
// checksums and are deleted on Close; a store never outlives its run.

// spillIndexOverhead approximates the per-state RAM cost of an index entry
// (bucket share plus id).
const spillIndexOverhead = 24

// pageCacheSize is the capacity, in pages, of the decompressed-page LRU
// cache serving confirm and replay reads.
const pageCacheSize = 64

// spillLowWater is the fraction of MaxBytes that Maintain spills down to
// once the budget trips, so each spill round writes a batch of pages
// instead of shaving single pages every barrier.
const spillLowWater = 0.75

type spillShard struct {
	mu sync.Mutex
	m  map[uint64][]int32
}

// pageMeta locates one spilled page inside the segment files.
type pageMeta struct {
	seg     int32
	off     int64
	compLen int32
	rawLen  int32
}

type cacheEnt[S comparable] struct {
	pg      *page[S]
	lastUse uint64
}

type spillStore[S comparable] struct {
	shards   []*spillShard
	mask     uint64
	fp       func(*S) uint64
	sizeOf   func(*S) int64
	isString bool
	codec    *codec[S]
	maxBytes int64
	counter  atomic.Int64
	pages    pagetab[S]

	// resident is the payload bytes currently in RAM; spilledTo (a page
	// count) is the watermark: ids below spilledTo<<pages.bits live on disk.
	resident  atomic.Int64
	spilledTo atomic.Int32

	dir    string
	ownDir bool

	// segMu guards everything below: segment files, page metadata, the
	// decompressed-page cache and the sticky I/O error. Readers holding a
	// shard lock may take segMu (never the reverse), so lock order is
	// shard -> seg.
	segMu     sync.Mutex
	segs      []*os.File
	meta      []pageMeta
	cache     map[int32]*cacheEnt[S]
	cacheTick uint64
	ioErr     error

	spilledStates int
	bytesSpilled  int64
	compBytes     int64
	segReads      atomic.Uint64
	confirms      atomic.Uint64
	cacheHits     atomic.Uint64

	// readLat and writeLat time the per-page segment I/O: a decompress-read
	// on a cache miss, a compress-write during Maintain. Both paths are
	// disk-bound, so always-on observation costs two clock reads per page —
	// noise next to the I/O itself.
	readLat  obs.Hist
	writeLat obs.Hist

	// encScratch and compScratch are the Maintain-only encode buffers: the
	// raw page image and its compressed form, reused across pages and
	// rounds so the spill write path allocates nothing per state.
	encScratch  []byte
	compScratch bytes.Buffer
	flateW      *flate.Writer
}

func newSpillStore[S comparable](cfg Config, shards int, fp func(*S) uint64) (*spillStore[S], error) {
	cdc := codecFor[S]()
	if cdc == nil {
		return nil, fmt.Errorf("%w: %T", ErrNoCodec, *new(S))
	}
	var zero S
	_, isString := any(zero).(string)
	st := &spillStore[S]{
		shards:   make([]*spillShard, shards),
		mask:     uint64(shards - 1),
		fp:       fp,
		sizeOf:   sizeOfFunc[S](),
		isString: isString,
		codec:    cdc,
		maxBytes: cfg.MaxBytes,
		cache:    make(map[int32]*cacheEnt[S], pageCacheSize),
	}
	st.pages.init(cfg.PageBits)
	if st.maxBytes <= 0 {
		st.maxBytes = DefaultMaxBytes
	}
	for i := range st.shards {
		st.shards[i] = &spillShard{m: make(map[uint64][]int32)}
	}
	st.dir = cfg.Dir
	if st.dir == "" {
		dir, err := os.MkdirTemp("", "store-spill-*")
		if err != nil {
			return nil, fmt.Errorf("store: spill dir: %w", err)
		}
		st.dir, st.ownDir = dir, true
	}
	var err error
	if st.flateW, err = flate.NewWriter(io.Discard, flate.BestSpeed); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *spillStore[S]) Intern(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	for _, id := range sh.m[h] {
		if st.equals(id, s) {
			sh.mu.Unlock()
			return id, false
		}
	}
	id := int32(st.counter.Add(1) - 1)
	sh.m[h] = append(sh.m[h], id)
	st.pages.set(id, s)
	st.resident.Add(st.sizeOf(&s))
	sh.mu.Unlock()
	return id, true
}

// BytesSupported reports whether InternBytes is usable (string states).
func (st *spillStore[S]) BytesSupported() bool { return st.isString }

// InternBytes is the zero-copy intern path (see store.BytesInterner). A
// dedup hit — the overwhelmingly common case on the hot path — allocates
// nothing, including when the confirm reads a spilled page back (the
// comparison against the decoded payload converts nothing). Only a fresh
// intern materializes the state, which is unavoidable: the payload must
// outlive the caller's scratch buffer.
func (st *spillStore[S]) InternBytes(h uint64, b []byte) (int32, bool) {
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	for _, id := range sh.m[h] {
		if st.equalsBytes(id, b) {
			sh.mu.Unlock()
			return id, false
		}
	}
	id := int32(st.counter.Add(1) - 1)
	sh.m[h] = append(sh.m[h], id)
	var s S
	*any(&s).(*string) = string(b)
	st.pages.set(id, s)
	st.resident.Add(st.sizeOf(&s))
	sh.mu.Unlock()
	return id, true
}

// equalsBytes is equals against raw payload bytes; the conversion in the
// comparison does not allocate.
func (st *spillStore[S]) equalsBytes(id int32, b []byte) bool {
	if int(id) < int(st.spilledTo.Load())<<st.pages.bits {
		st.confirms.Add(1)
		v, ok := st.spilledState(id)
		return ok && *any(&v).(*string) == string(b)
	}
	v := st.pages.get(id)
	return *any(&v).(*string) == string(b)
}

// equals confirms a fingerprint hit against the real payload of id,
// reading the segment back when the payload was spilled. Called with the
// owning shard locked, which orders it after the payload write of any id
// interned during the current level (same state, same fingerprint, same
// shard); payloads from earlier levels are ordered by the level barrier.
func (st *spillStore[S]) equals(id int32, s S) bool {
	if int(id) < int(st.spilledTo.Load())<<st.pages.bits {
		st.confirms.Add(1)
		v, ok := st.spilledState(id)
		return ok && v == s
	}
	return st.pages.get(id) == s
}

func (st *spillStore[S]) State(id int32) S {
	if int(id) < int(st.spilledTo.Load())<<st.pages.bits {
		v, _ := st.spilledState(id)
		return v
	}
	return st.pages.get(id)
}

func (st *spillStore[S]) Probe(s S) (int32, bool) {
	h := st.fp(&s)
	sh := st.shards[h&st.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, id := range sh.m[h] {
		if st.equals(id, s) {
			return id, true
		}
	}
	return -1, false
}

func (st *spillStore[S]) Len() int { return int(st.counter.Load()) }

// spilledState fetches the payload of a spilled id through the page cache.
// On I/O or decode failure it records the sticky error (surfaced at the
// next barrier's Maintain, which aborts the run) and reports !ok, which
// the confirm path treats as a mismatch — wrong only in runs that are
// already doomed.
func (st *spillStore[S]) spilledState(id int32) (S, bool) {
	pno := int32(int(id) >> st.pages.bits)
	st.segMu.Lock()
	defer st.segMu.Unlock()
	st.cacheTick++
	if ent, ok := st.cache[pno]; ok {
		ent.lastUse = st.cacheTick
		st.cacheHits.Add(1)
		return ent.pg.slots[int(id)&st.pages.mask], true
	}
	var zero S
	if st.ioErr != nil {
		return zero, false
	}
	t := time.Now()
	pg, err := st.readPage(pno)
	if err != nil {
		st.ioErr = fmt.Errorf("store: spill read of page %d: %w", pno, err)
		return zero, false
	}
	st.readLat.Observe(int64(time.Since(t)))
	st.segReads.Add(1)
	if len(st.cache) >= pageCacheSize {
		var victim int32
		oldest := uint64(1<<64 - 1)
		for p, ent := range st.cache {
			if ent.lastUse < oldest {
				oldest, victim = ent.lastUse, p
			}
		}
		delete(st.cache, victim)
	}
	st.cache[pno] = &cacheEnt[S]{pg: pg, lastUse: st.cacheTick}
	return pg.slots[int(id)&st.pages.mask], true
}

// readPage decompresses and decodes one spilled page. Caller holds segMu.
func (st *spillStore[S]) readPage(pno int32) (*page[S], error) {
	m := st.meta[pno]
	comp := make([]byte, m.compLen)
	if _, err := st.segs[m.seg].ReadAt(comp, m.off); err != nil {
		return nil, err
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, m.rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("short page image (%d bytes)", len(raw))
	}
	count := int(binary.LittleEndian.Uint32(raw))
	if count < 1 || count > st.pages.size {
		return nil, fmt.Errorf("corrupt page count %d", count)
	}
	offTab := raw[4 : 4+4*(count+1)]
	payload := raw[4+4*(count+1):]
	pg := &page[S]{slots: make([]S, st.pages.size)}
	for i := 0; i < count; i++ {
		lo := binary.LittleEndian.Uint32(offTab[4*i:])
		hi := binary.LittleEndian.Uint32(offTab[4*i+4:])
		if lo > hi || int(hi) > len(payload) {
			return nil, fmt.Errorf("corrupt page offsets %d..%d", lo, hi)
		}
		pg.slots[i] = st.codec.dec(payload[lo:hi])
	}
	return pg, nil
}

// Maintain enforces the budget at a level barrier: while resident payload
// bytes exceed MaxBytes it spills the oldest still-resident full pages
// whose every id is below keepFrom (the next frontier stays in RAM), all
// into one fresh segment file, then drops the pages. Quiescence required.
func (st *spillStore[S]) Maintain(keepFrom int32) error {
	st.segMu.Lock()
	defer st.segMu.Unlock()
	if st.ioErr != nil {
		return st.ioErr
	}
	if st.resident.Load() <= st.maxBytes {
		return nil
	}
	limit := int32(st.counter.Load())
	if keepFrom < limit {
		limit = keepFrom
	}
	spillable := int(limit) >> st.pages.bits // pages wholly below the keep line
	from := int(st.spilledTo.Load())
	if from >= spillable {
		return nil // budget exceeded but nothing eligible; overshoot is bounded by the frontier
	}
	target := int64(float64(st.maxBytes) * spillLowWater)
	if err := st.spillPages(from, spillable, target); err != nil {
		st.ioErr = err
		return err
	}
	return nil
}

// spillPages writes pages [from, upTo) — stopping early once resident
// drops to target — into one new segment file. Caller holds segMu.
func (st *spillStore[S]) spillPages(from, upTo int, target int64) error {
	segNo := len(st.segs)
	f, err := os.Create(filepath.Join(st.dir, fmt.Sprintf("seg-%05d.dat", segNo)))
	if err != nil {
		return fmt.Errorf("store: segment create: %w", err)
	}
	st.segs = append(st.segs, f)
	var fileOff int64
	p := from
	for ; p < upTo && st.resident.Load() > target; p++ {
		pg := st.pages.page(p)
		count := st.pages.size
		if end := int(st.counter.Load()) - p<<st.pages.bits; end < count {
			count = end // only the last eligible page can be partial, and only on the final Maintain
		}
		raw, pageBytes := st.encodePage(pg, count)
		t := time.Now()
		st.compScratch.Reset()
		st.flateW.Reset(&st.compScratch)
		if _, err := st.flateW.Write(raw); err != nil {
			return fmt.Errorf("store: page compress: %w", err)
		}
		if err := st.flateW.Close(); err != nil {
			return fmt.Errorf("store: page compress: %w", err)
		}
		comp := st.compScratch.Bytes()
		if _, err := f.WriteAt(comp, fileOff); err != nil {
			return fmt.Errorf("store: segment write: %w", err)
		}
		st.writeLat.Observe(int64(time.Since(t)))
		st.meta = append(st.meta, pageMeta{
			seg:     int32(segNo),
			off:     fileOff,
			compLen: int32(len(comp)),
			rawLen:  int32(len(raw)),
		})
		fileOff += int64(len(comp))
		st.bytesSpilled += int64(len(raw))
		st.compBytes += int64(len(comp))
		st.spilledStates += count
		st.resident.Add(-pageBytes)
		st.pages.drop(p)
		st.spilledTo.Store(int32(p + 1))
	}
	return nil
}

// encodePage builds the raw page image in the reused scratch buffer and
// returns it together with the resident payload bytes it replaces. The
// buffer is owned by Maintain (quiescent), so zero per-state allocations
// survive steady state — see BenchmarkPageEncode for the before/after.
func (st *spillStore[S]) encodePage(pg *page[S], count int) ([]byte, int64) {
	raw := st.encScratch[:0]
	raw = binary.LittleEndian.AppendUint32(raw, uint32(count))
	offPos := len(raw)
	for i := 0; i <= count; i++ {
		raw = binary.LittleEndian.AppendUint32(raw, 0)
	}
	var pageBytes int64
	base := len(raw)
	for i := 0; i < count; i++ {
		raw = st.codec.enc(raw, &pg.slots[i])
		binary.LittleEndian.PutUint32(raw[offPos+4*(i+1):], uint32(len(raw)-base))
		pageBytes += st.sizeOf(&pg.slots[i])
	}
	st.encScratch = raw
	return raw, pageBytes
}

func (st *spillStore[S]) Stats() Stats {
	out := Stats{
		Kind:              Spill,
		States:            st.Len(),
		MaxBytes:          st.maxBytes,
		SegmentReads:      st.segReads.Load(),
		CollisionConfirms: st.confirms.Load(),
		PageCacheHits:     st.cacheHits.Load(),
		ReadLat:           st.readLat.Snapshot(),
		WriteLat:          st.writeLat.Snapshot(),
	}
	out.BytesInRAM = st.resident.Load() + int64(out.States)*spillIndexOverhead
	st.segMu.Lock()
	out.SpilledStates = st.spilledStates
	out.BytesSpilled = st.bytesSpilled
	out.CompressedBytes = st.compBytes
	out.Segments = len(st.segs)
	st.segMu.Unlock()
	return out
}

func (st *spillStore[S]) Err() error {
	st.segMu.Lock()
	defer st.segMu.Unlock()
	return st.ioErr
}

func (st *spillStore[S]) Close() error {
	st.segMu.Lock()
	defer st.segMu.Unlock()
	var first error
	for _, f := range st.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.segs = nil
	if st.ownDir && st.dir != "" {
		if err := os.RemoveAll(st.dir); err != nil && first == nil {
			first = err
		}
		st.dir = ""
	}
	return first
}
