package store

import "encoding/binary"

// codec serializes state payloads for segment files. enc appends the
// encoding of s to dst and returns the grown slice — the append form is
// what lets the spill path reuse one scratch buffer per page instead of
// allocating per state. dec must tolerate b aliasing a larger buffer.
type codec[S comparable] struct {
	enc func(dst []byte, s *S) []byte
	dec func(b []byte) S
}

// codecFor resolves the payload codec for S: strings encode as their raw
// bytes, integers as 8-byte little-endian. Every canonical state type in
// this repository (encoded protocol strings, small-int toy systems) is
// covered; exotic comparable types return nil and make the spill backend
// fail with ErrNoCodec rather than silently mis-serialize.
func codecFor[S comparable]() *codec[S] {
	var zero S
	switch any(zero).(type) {
	case string:
		return &codec[S]{
			enc: func(dst []byte, s *S) []byte { return append(dst, *any(s).(*string)...) },
			dec: func(b []byte) S {
				var s S
				*any(&s).(*string) = string(b)
				return s
			},
		}
	case int:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*int)) },
			func(v uint64, s *S) { *any(s).(*int) = int(v) })
	case int8:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*int8)) },
			func(v uint64, s *S) { *any(s).(*int8) = int8(v) })
	case int16:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*int16)) },
			func(v uint64, s *S) { *any(s).(*int16) = int16(v) })
	case int32:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*int32)) },
			func(v uint64, s *S) { *any(s).(*int32) = int32(v) })
	case int64:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*int64)) },
			func(v uint64, s *S) { *any(s).(*int64) = int64(v) })
	case uint:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*uint)) },
			func(v uint64, s *S) { *any(s).(*uint) = uint(v) })
	case uint8:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*uint8)) },
			func(v uint64, s *S) { *any(s).(*uint8) = uint8(v) })
	case uint16:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*uint16)) },
			func(v uint64, s *S) { *any(s).(*uint16) = uint16(v) })
	case uint32:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*uint32)) },
			func(v uint64, s *S) { *any(s).(*uint32) = uint32(v) })
	case uint64:
		return intCodec(func(s *S) uint64 { return *any(s).(*uint64) },
			func(v uint64, s *S) { *any(s).(*uint64) = v })
	case uintptr:
		return intCodec(func(s *S) uint64 { return uint64(*any(s).(*uintptr)) },
			func(v uint64, s *S) { *any(s).(*uintptr) = uintptr(v) })
	default:
		return nil
	}
}

// intCodec builds a fixed-width codec from the raw-bits accessors of one
// integer state type.
func intCodec[S comparable](get func(*S) uint64, set func(uint64, *S)) *codec[S] {
	return &codec[S]{
		enc: func(dst []byte, s *S) []byte {
			return binary.LittleEndian.AppendUint64(dst, get(s))
		},
		dec: func(b []byte) S {
			var s S
			set(binary.LittleEndian.Uint64(b), &s)
			return s
		},
	}
}

// stringHeaderBytes approximates a string's fixed in-RAM overhead (header
// plus allocator slack) for the byte accounting.
const stringHeaderBytes = 16

// fallbackStateBytes is the accounting estimate for state types without a
// known layout. Only the mem and bitstate backends ever see such types
// (spill refuses them), and there the estimate only shades the reported
// BytesInRAM, never correctness.
const fallbackStateBytes = 32

// sizeOfFunc resolves the per-state resident-byte estimator for S.
func sizeOfFunc[S comparable]() func(*S) int64 {
	var zero S
	switch any(zero).(type) {
	case string:
		return func(s *S) int64 { return int64(len(*any(s).(*string))) + stringHeaderBytes }
	case int8, uint8:
		return func(*S) int64 { return 1 }
	case int16, uint16:
		return func(*S) int64 { return 2 }
	case int32, uint32:
		return func(*S) int64 { return 4 }
	case int, int64, uint, uint64, uintptr:
		return func(*S) int64 { return 8 }
	default:
		return func(*S) int64 { return fallbackStateBytes }
	}
}
