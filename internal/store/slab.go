package store

import "unsafe"

// slabChunkSize is the slab arena's allocation unit: big enough that chunk
// turnover is rare, small enough that a mostly-dead chunk pinned by one
// surviving view is cheap.
const slabChunkSize = 64 << 10

// slab is an append-only byte arena handing out immutable string views of
// the bytes copied into it. It exists so the mem backend can intern a
// state payload with zero per-state allocations in steady state: the copy
// lands in the current chunk and the returned string is an unsafe.String
// view of those bytes — no per-string header allocation, no fragmentation.
//
// Soundness of the unsafe.String views: a chunk's backing array never
// moves once bytes are handed out, because the arena only appends within
// the chunk's fixed capacity and starts a new chunk (leaving the old one
// to the views that reference it) when the remainder doesn't fit. This is
// the same lifetime argument strings.Builder makes. A slab is not safe for
// concurrent use; each shard owns one and serializes access through its
// mutex.
type slab struct {
	cur   []byte
	total int64
}

// addBytes copies b into the arena and returns a stable string view of the
// copy.
func (a *slab) addBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.cur)-len(a.cur) < len(b) {
		a.grow(len(b))
	}
	off := len(a.cur)
	a.cur = append(a.cur, b...)
	a.total += int64(len(b))
	return unsafe.String(&a.cur[off], len(b))
}

// addString is addBytes for a string source (no intermediate conversion).
func (a *slab) addString(s string) string {
	if len(s) == 0 {
		return ""
	}
	if cap(a.cur)-len(a.cur) < len(s) {
		a.grow(len(s))
	}
	off := len(a.cur)
	a.cur = append(a.cur, s...)
	a.total += int64(len(s))
	return unsafe.String(&a.cur[off], len(s))
}

// grow starts a fresh chunk with room for at least n bytes. The old chunk
// is abandoned to whatever views still reference it.
func (a *slab) grow(n int) {
	size := slabChunkSize
	if n > size {
		size = n
	}
	a.cur = make([]byte, 0, size)
}
