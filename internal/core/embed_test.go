package core

import (
	"reflect"
	"testing"
)

// embedSys is a small hand-built system for embedding tests:
//
//	A --a/p0--> B --b/p1--> D (terminal)
//	A --a/p0--> C --c/p1--> D
//
// The two a-steps from A are label-ambiguous (same label, same actor,
// different successors), so the subset construction is exercised: after
// "a" the frontier is {B, C}.
type embedSys struct{}

func (embedSys) Init() []string { return []string{"A"} }
func (embedSys) Steps(s string) []Step[string] {
	switch s {
	case "A":
		return []Step[string]{
			{To: "B", Label: "a", Actor: 0},
			{To: "C", Label: "a", Actor: 0},
		}
	case "B":
		return []Step[string]{{To: "D", Label: "b", Actor: 1}}
	case "C":
		return []Step[string]{{To: "D", Label: "c", Actor: 1}}
	}
	return nil
}

func exploreEmbed(t *testing.T) *Graph[string] {
	t.Helper()
	g, err := Explore[string](embedSys{}, ExploreOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmbedTraceAmbiguousPrefix(t *testing.T) {
	g := exploreEmbed(t)
	// After the ambiguous "a" the frontier must hold both successors.
	res := g.EmbedTrace(Trace{{Label: "a", Actor: 0}})
	if !res.Ok || len(res.Ends) != 2 {
		t.Fatalf("ambiguous prefix: got %+v, want Ok with 2 ends", res)
	}
	// Resolving via "c" must succeed even though the BFS-first branch is B.
	res = g.EmbedTrace(Trace{{Label: "a", Actor: 0}, {Label: "c", Actor: 1}})
	if !res.Ok {
		t.Fatalf("a,c should embed via C: %+v", res)
	}
	d, ok := g.StateID("D")
	if !ok || !reflect.DeepEqual(res.Ends, []int{d}) {
		t.Fatalf("a,c ends = %v, want [%d]", res.Ends, d)
	}
	if !g.IsTerminal(res.Ends[0]) {
		t.Fatal("D should be terminal")
	}
}

func TestEmbedTraceEmpty(t *testing.T) {
	g := exploreEmbed(t)
	res := g.EmbedTrace(nil)
	if !res.Ok {
		t.Fatalf("empty trace must embed: %+v", res)
	}
	if !reflect.DeepEqual(res.Ends, g.Initials()) {
		t.Fatalf("empty-trace ends %v != initials %v", res.Ends, g.Initials())
	}
}

func TestEmbedTraceFailure(t *testing.T) {
	g := exploreEmbed(t)
	// "b" with the wrong actor is not an edge anywhere.
	res := g.EmbedTrace(Trace{{Label: "a", Actor: 0}, {Label: "b", Actor: 0}})
	if res.Ok {
		t.Fatal("wrong-actor step embedded")
	}
	if res.FailAt != 1 {
		t.Fatalf("FailAt = %d, want 1", res.FailAt)
	}
	// The failing frontier is the post-"a" set {B, C}.
	if len(res.Frontier) != 2 {
		t.Fatalf("failing frontier %v, want the two a-successors", res.Frontier)
	}
	// A step past a terminal state also fails.
	res = g.EmbedTrace(Trace{{Label: "a", Actor: 0}, {Label: "b", Actor: 1}, {Label: "b", Actor: 1}})
	if res.Ok || res.FailAt != 2 {
		t.Fatalf("step past terminal: got %+v, want FailAt 2", res)
	}
}

func TestEmbedTraceLabelMismatchAtStart(t *testing.T) {
	g := exploreEmbed(t)
	res := g.EmbedTrace(Trace{{Label: "z", Actor: 0}})
	if res.Ok || res.FailAt != 0 {
		t.Fatalf("unknown first label: got %+v, want FailAt 0", res)
	}
	if !reflect.DeepEqual(res.Frontier, g.Initials()) {
		t.Fatalf("frontier %v, want initials %v", res.Frontier, g.Initials())
	}
}
