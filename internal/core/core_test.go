package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

// chainSys is a linear system 0 -> 1 -> ... -> n, stepped by actor 0.
type chainSys struct{ n int }

func (c chainSys) Init() []int { return []int{0} }

func (c chainSys) Steps(s int) []Step[int] {
	if s >= c.n {
		return nil
	}
	return []Step[int]{{To: s + 1, Label: "inc", Actor: 0}}
}

func TestExploreChain(t *testing.T) {
	g, err := Explore[int](chainSys{n: 10}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if got, want := g.Len(), 11; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 10; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	terms := g.Terminals()
	if len(terms) != 1 || g.State(terms[0]) != 10 {
		t.Fatalf("Terminals = %v, want the single state 10", terms)
	}
}

func TestExploreStateLimit(t *testing.T) {
	_, err := Explore[int](chainSys{n: 100}, ExploreOptions{MaxStates: 5})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

func TestPathToReconstructsShortestTrace(t *testing.T) {
	g, err := Explore[int](chainSys{n: 5}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	id, ok := g.FindState(func(s int) bool { return s == 3 })
	if !ok {
		t.Fatal("state 3 not found")
	}
	tr := g.PathTo(id)
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want 3", len(tr))
	}
	for _, ev := range tr {
		if ev.Label != "inc" || ev.Actor != 0 {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}

func TestCheckInvariant(t *testing.T) {
	g, err := Explore[int](chainSys{n: 5}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if _, _, ok := g.CheckInvariant(func(s int) bool { return s <= 5 }); !ok {
		t.Fatal("invariant s<=5 should hold")
	}
	id, tr, ok := g.CheckInvariant(func(s int) bool { return s < 4 })
	if ok {
		t.Fatal("invariant s<4 should fail")
	}
	if g.State(id) != 4 {
		t.Fatalf("violating state = %d, want 4 (BFS-first)", g.State(id))
	}
	if len(tr) != 4 {
		t.Fatalf("witness length = %d, want 4", len(tr))
	}
}

// diamondSys branches from 0 to terminal decisions: 0 -> 1 (decides 0),
// 0 -> 2 -> {3 decides 0, 4 decides 1}.
type diamondSys struct{}

func (diamondSys) Init() []string { return []string{"root"} }

func (diamondSys) Steps(s string) []Step[string] {
	switch s {
	case "root":
		return []Step[string]{
			{To: "d0", Label: "left", Actor: 0},
			{To: "mid", Label: "right", Actor: 1},
		}
	case "mid":
		return []Step[string]{
			{To: "d0b", Label: "down0", Actor: 0},
			{To: "d1", Label: "down1", Actor: 1},
		}
	default:
		return nil
	}
}

func diamondDecide(s string) (int, bool) {
	switch s {
	case "d0", "d0b":
		return 0, true
	case "d1":
		return 1, true
	default:
		return 0, false
	}
}

func TestValenceDiamond(t *testing.T) {
	g, err := Explore[string](diamondSys{}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	v, err := g.Valence(diamondDecide)
	if err != nil {
		t.Fatalf("Valence: %v", err)
	}
	rootID, _ := g.StateID("root")
	midID, _ := g.StateID("mid")
	d1ID, _ := g.StateID("d1")
	if !v.IsBivalent(rootID) {
		t.Error("root should be bivalent")
	}
	if !v.IsBivalent(midID) {
		t.Error("mid should be bivalent")
	}
	if !v.IsUnivalent(d1ID) {
		t.Error("d1 should be univalent")
	}
	if got := v.Values(rootID); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Values(root) = %v, want [0 1]", got)
	}
	if got := v.Values(d1ID); len(got) != 1 || got[0] != 1 {
		t.Errorf("Values(d1) = %v, want [1]", got)
	}
	init, ok := g.BivalentInitial(v)
	if !ok || g.State(init) != "root" {
		t.Errorf("BivalentInitial = %v,%v, want root", init, ok)
	}
	// mid is bivalent and all its successors are decided (univalent):
	// it is a decider in Herlihy's sense.
	dec, ok := g.Decider(v)
	if !ok || g.State(dec) != "mid" {
		t.Errorf("Decider = %v,%v, want mid", dec, ok)
	}
}

func TestValenceRejectsOutOfRange(t *testing.T) {
	g, err := Explore[int](chainSys{n: 1}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if _, err := g.Valence(func(s int) (int, bool) { return 99, s == 1 }); err == nil {
		t.Fatal("expected error for value >= MaxDecisionValues")
	}
}

// loopSys: two actors; actor 0 can loop forever at "spin" while actor 1
// could move to "goal". State "spin" has both a self-loop (actor 0) and an
// exit (actor 1). An unfair run spins forever, but weak fairness forces
// actor 1 to move.
type loopSys struct{}

func (loopSys) Init() []string { return []string{"spin"} }

func (loopSys) Steps(s string) []Step[string] {
	switch s {
	case "spin":
		return []Step[string]{
			{To: "spin", Label: "spin", Actor: 0},
			{To: "goal", Label: "exit", Actor: 1},
		}
	case "goal":
		return []Step[string]{{To: "goal", Label: "stay", Actor: 1}}
	default:
		return nil
	}
}

func TestLeadsToWeakFairnessExcludesSpin(t *testing.T) {
	g, err := Explore[string](loopSys{}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	prem := func(s string) bool { return s == "spin" }
	goal := func(s string) bool { return s == "goal" }
	// Under weak fairness actor 1 must eventually exit, so leads-to holds.
	res := g.CheckLeadsTo(prem, goal, WeakFairness, 2)
	if !res.Holds {
		t.Fatalf("leads-to should hold under weak fairness; got %+v", res)
	}
	// Without fairness the self-loop is a legitimate livelock.
	res = g.CheckLeadsTo(prem, goal, NoFairness, 2)
	if res.Holds {
		t.Fatal("leads-to should fail without fairness")
	}
	if res.Kind != "livelock" {
		t.Fatalf("Kind = %q, want livelock", res.Kind)
	}
	if len(res.Cycle) == 0 {
		t.Fatal("expected a nonempty violating cycle")
	}
}

// stuckSys: a deadlock before the goal.
type stuckSys struct{}

func (stuckSys) Init() []string { return []string{"a"} }

func (stuckSys) Steps(s string) []Step[string] {
	if s == "a" {
		return []Step[string]{{To: "dead", Label: "step", Actor: 0}}
	}
	return nil
}

func TestLeadsToDeadlock(t *testing.T) {
	g, err := Explore[string](stuckSys{}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	res := g.CheckLeadsTo(
		func(s string) bool { return s == "a" },
		func(s string) bool { return s == "goal" },
		WeakFairness, 1)
	if res.Holds {
		t.Fatal("leads-to should fail")
	}
	if res.Kind != "deadlock" {
		t.Fatalf("Kind = %q, want deadlock", res.Kind)
	}
	if g.State(res.StateID) != "dead" {
		t.Fatalf("deadlock state = %q, want dead", g.State(res.StateID))
	}
}

// pingpong: two actors alternate between two states forever. The cycle is
// weakly fair for both actors (each takes a step in it).
type pingpong struct{}

func (pingpong) Init() []string { return []string{"ping"} }

func (pingpong) Steps(s string) []Step[string] {
	if s == "ping" {
		return []Step[string]{{To: "pong", Label: "p0", Actor: 0}}
	}
	return []Step[string]{{To: "ping", Label: "p1", Actor: 1}}
}

func TestFairLassoWithin(t *testing.T) {
	g, err := Explore[string](pingpong{}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	lasso, ok := g.FairLassoWithin(func(int) bool { return true }, WeakFairness, 2)
	if !ok {
		t.Fatal("expected a fair lasso")
	}
	if len(lasso.Cycle) == 0 {
		t.Fatal("expected nonempty cycle")
	}
	actors := map[int]bool{}
	for _, ev := range lasso.Cycle {
		actors[ev.Actor] = true
	}
	if !actors[0] || !actors[1] {
		t.Fatalf("cycle %v does not include both actors", lasso.Cycle)
	}
}

func TestFairLassoRespectsAllowedSet(t *testing.T) {
	g, err := Explore[string](pingpong{}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	pingID, _ := g.StateID("ping")
	// Only ping allowed: no cycle fits inside the allowed set.
	if _, ok := g.FairLassoWithin(func(i int) bool { return i == pingID }, NoFairness, 2); ok {
		t.Fatal("no lasso should exist inside {ping}")
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{
		{Label: "send", Actor: 2},
		{Label: "deliver", Actor: EnvironmentActor},
	}
	s := tr.String()
	if !strings.Contains(s, "p2") || !strings.Contains(s, "[env]") {
		t.Fatalf("unexpected trace rendering:\n%s", s)
	}
}

func TestFairnessString(t *testing.T) {
	if WeakFairness.String() != "weak-fairness" || NoFairness.String() != "no-fairness" {
		t.Fatal("unexpected Fairness string values")
	}
	if Fairness(42).String() != "Fairness(42)" {
		t.Fatal("unexpected fallthrough Fairness string")
	}
}

func TestNullvalent(t *testing.T) {
	// Chain with no decided states: everything is nullvalent.
	g, err := Explore[int](chainSys{n: 3}, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	v, err := g.Valence(func(int) (int, bool) { return 0, false })
	if err != nil {
		t.Fatalf("Valence: %v", err)
	}
	for i := 0; i < g.Len(); i++ {
		if !v.IsNullvalent(i) {
			t.Fatalf("state %d should be nullvalent", i)
		}
	}
}

// graphsIdentical compares every canonical facet of two graphs: state
// numbering, initials, edge lists (with order), parent tree and parent
// steps.
func graphsIdentical[S comparable](t *testing.T, label string, a, b *Graph[S]) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: Len %d vs %d", label, a.Len(), b.Len())
	}
	ai, bi := a.Initials(), b.Initials()
	if len(ai) != len(bi) {
		t.Fatalf("%s: initials %v vs %v", label, ai, bi)
	}
	for k := range ai {
		if ai[k] != bi[k] {
			t.Fatalf("%s: initials %v vs %v", label, ai, bi)
		}
	}
	for i := 0; i < a.Len(); i++ {
		if a.State(i) != b.State(i) {
			t.Fatalf("%s: state %d differs: %v vs %v", label, i, a.State(i), b.State(i))
		}
		if a.Parent(i) != b.Parent(i) {
			t.Fatalf("%s: parent[%d] = %d vs %d", label, i, a.Parent(i), b.Parent(i))
		}
		if a.ParentStep(i) != b.ParentStep(i) {
			t.Fatalf("%s: parent step %d differs", label, i)
		}
		as, bs := a.Successors(i), b.Successors(i)
		if len(as) != len(bs) {
			t.Fatalf("%s: successors of %d: %d vs %d", label, i, len(as), len(bs))
		}
		for k := range as {
			if as[k] != bs[k] {
				t.Fatalf("%s: successor %d/%d differs: %+v vs %+v", label, i, k, as[k], bs[k])
			}
		}
	}
}

// TestParallelExploreMatchesSequential: the engine-backed path must yield a
// graph identical to the legacy sequential explorer, worker count
// notwithstanding.
func TestParallelExploreMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := newRandomSys(seed)
		seq, err := Explore[int](sys, ExploreOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		for _, par := range []int{1, 2, 8} {
			var st engine.Stats
			got, err := Explore[int](sys, ExploreOptions{Parallelism: par, Stats: &st})
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			graphsIdentical(t, fmt.Sprintf("seed %d par %d", seed, par), seq, got)
			if st.States != seq.Len() {
				t.Fatalf("seed %d par %d: stats states %d, want %d", seed, par, st.States, seq.Len())
			}
		}
	}
}

// TestTruncationReturnsPartialGraph: both explorer paths return the same
// canonical partial graph alongside ErrStateLimit.
func TestTruncationReturnsPartialGraph(t *testing.T) {
	seq, err := Explore[int](chainSys{n: 100}, ExploreOptions{MaxStates: 5, Parallelism: 1})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("sequential err = %v, want ErrStateLimit", err)
	}
	if seq == nil || seq.Len() != 6 {
		t.Fatalf("sequential partial graph missing or wrong size: %v", seq)
	}
	par, err := Explore[int](chainSys{n: 100}, ExploreOptions{MaxStates: 5, Parallelism: 4})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("parallel err = %v, want ErrStateLimit", err)
	}
	graphsIdentical(t, "truncated", seq, par)
}
