package core

// Trace embedding: the refinement half of the paper's unified-model story
// (§3.6). A live execution observed by internal/runtime refines the
// explored model iff its event sequence traces a path through the Graph —
// every observed (label, actor) step must be an edge enabled at the
// current model state. Because the live system may be nondeterministic in
// ways the labels do not distinguish (e.g. two in-flight messages with the
// same label), the walk carries the whole frontier of model states
// consistent with the prefix so far — a subset construction, not a
// single-path replay.

// EmbedResult reports one trace-embedding attempt.
type EmbedResult struct {
	// Ok is true when the whole trace embeds from some initial state.
	Ok bool
	// Ends is the sorted set of state ids the trace can end in (every model
	// state consistent with the full observation); empty when !Ok.
	Ends []int
	// FailAt is the index of the first event with no consistent extension
	// (the whole prefix [0,FailAt) embeds, event FailAt does not); -1 when
	// Ok.
	FailAt int
	// Frontier is the set of model states the prefix [0,FailAt) can reach —
	// the states at which the failing event was not enabled. Nil when Ok.
	Frontier []int
}

// EmbedTrace checks that tr embeds as a path in the explored graph,
// starting from any initial state. Matching is by exact (Label, Actor)
// equality against graph edges. The search carries the full set of model
// states consistent with each prefix (a subset construction over the
// graph), so label-ambiguous systems embed iff any resolution works;
// frontier sets are deduplicated per step, bounding work by
// O(len(tr) · states · max-degree).
func (g *Graph[S]) EmbedTrace(tr Trace) EmbedResult {
	frontier := append([]int(nil), g.inits...)
	seen := make(map[int]bool, len(frontier))
	for i, ev := range tr {
		next := frontier[:0:0] // fresh backing array; frontier is still read below
		for k := range seen {
			delete(seen, k)
		}
		for _, id := range frontier {
			for _, e := range g.edges[id] {
				if e.Label == ev.Label && e.Actor == ev.Actor && !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		if len(next) == 0 {
			return EmbedResult{FailAt: i, Frontier: sortedIDs(frontier)}
		}
		frontier = next
	}
	return EmbedResult{Ok: true, Ends: sortedIDs(frontier), FailAt: -1}
}

// sortedIDs copies ids into ascending order so embedding results are
// deterministic regardless of edge iteration order.
func sortedIDs(ids []int) []int {
	out := append([]int(nil), ids...)
	// Insertion sort: frontiers are small (bounded by label ambiguity, not
	// graph size) and this avoids an import for the hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
