package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
)

// twinSys is two symmetric bounded counters: state "xy" over digit bytes,
// either counter may increment up to max. Swapping the counters is a
// symmetry of the transition relation.
type twinSys struct{ max byte }

func (c twinSys) Init() []string { return []string{"00"} }

func (c twinSys) Steps(s string) []Step[string] {
	var out []Step[string]
	if s[0] < c.max {
		out = append(out, Step[string]{To: string([]byte{s[0] + 1, s[1]}), Label: "inc0", Actor: 0})
	}
	if s[1] < c.max {
		out = append(out, Step[string]{To: string([]byte{s[0], s[1] + 1}), Label: "inc1", Actor: 1})
	}
	return out
}

// twinCanon sorts the two counters: the representative of {xy, yx}.
func twinCanon(s string) string {
	if s[0] > s[1] {
		return string([]byte{s[1], s[0]})
	}
	return s
}

func TestExploreQuotient(t *testing.T) {
	sys := twinSys{max: '3'}
	full, err := Explore[string](sys, ExploreOptions{})
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	if full.Len() != 16 {
		t.Fatalf("full states = %d, want 16", full.Len())
	}
	// Canon alone must route through the engine even at Parallelism 1.
	var st engine.Stats
	quo, err := Explore[string](sys, ExploreOptions{
		Parallelism: 1,
		Canon:       twinCanon,
		VerifyCanon: 1,
		Stats:       &st,
	})
	if err != nil {
		t.Fatalf("quotient explore: %v", err)
	}
	if quo.Len() != 10 {
		t.Fatalf("quotient states = %d, want 10", quo.Len())
	}
	if !st.CanonEnabled || st.ReductionFactor() <= 1 {
		t.Fatalf("missing orbit telemetry: %+v", st)
	}
	// The symmetric invariant "sum of counters ≤ 2·max" holds on both; the
	// symmetric violation "some counter maxed" is found on both.
	for _, g := range []*Graph[string]{full, quo} {
		if _, _, ok := g.CheckInvariant(func(s string) bool { return s[0] < '3' && s[1] < '3' }); ok {
			t.Fatalf("expected a maxed-counter state to be reachable")
		}
	}
}

func TestExploreQuotientUnsoundCanon(t *testing.T) {
	// Swapping unconditionally is an involution, not a projection; the
	// safety check must fail the exploration.
	swap := func(s string) string { return string([]byte{s[1], s[0]}) }
	_, err := Explore[string](twinSys{max: '3'}, ExploreOptions{Canon: swap, VerifyCanon: 1})
	if !errors.Is(err, engine.ErrCanonUnsound) {
		t.Fatalf("err = %v, want engine.ErrCanonUnsound", err)
	}
}

// TestStateIDConcurrentReaders exercises the lazy index build of an
// engine-adopted graph from many goroutines at once; under -race this
// guards the sync.Once construction in StateID.
func TestStateIDConcurrentReaders(t *testing.T) {
	g, err := Explore[string](twinSys{max: '9'}, ExploreOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < g.Len(); i++ {
				s := g.State((i + w) % g.Len())
				id, ok := g.StateID(s)
				if !ok || g.State(id) != s {
					t.Errorf("StateID(%q) = %d, %v", s, id, ok)
					return
				}
			}
			if _, ok := g.StateID("zz"); ok {
				t.Errorf("StateID of unreachable state reported ok")
			}
		}(w)
	}
	wg.Wait()
}
