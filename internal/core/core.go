// Package core provides the unified formal model underlying every checker
// in this library: finite labeled transition systems, bounded reachability
// exploration, execution traces, valence analysis, and fairness-aware
// liveness checking.
//
// The paper this library reproduces (Lynch, "A Hundred Impossibility Proofs
// for Distributed Computing", PODC 1989) argues that all impossibility
// proofs in distributed computing rest on the limitation of local knowledge,
// and calls (§3.6, §4.4) for a unified model in which the arguments can be
// expressed once instead of re-deriving ad-hoc models per paper. This
// package is that unified model: shared-memory systems, synchronous round
// systems, asynchronous message-passing systems, and timed systems all
// compile down to a System over canonical comparable states, and every
// proof-technique engine (bivalence, scenario, chain, stretching, symmetry)
// operates on the resulting Graph.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// EnvironmentActor is the Actor value used for steps taken by the
// environment (message delivery, clock advance, adversary moves) rather
// than by a numbered process. Environment steps are exempt from process
// fairness requirements.
const EnvironmentActor = -1

// Step is one labeled transition out of a state. Actor identifies the
// process taking the step (or EnvironmentActor); Label is a human-readable
// action name used in traces and counterexamples.
type Step[S comparable] struct {
	To    S
	Label string
	Actor int
}

// System is a (finitely explorable) labeled transition system over
// canonical comparable states. Implementations must ensure that equal
// states (in the == sense) are behaviorally identical: the explorer
// deduplicates by state equality, which is exactly the paper's "if a
// process sees the same thing in two executions, it behaves the same in
// both" — equality of canonical encodings is the mechanized form of
// indistinguishability.
type System[S comparable] interface {
	// Init returns the initial states.
	Init() []S
	// Steps returns every enabled transition from s. An empty result
	// marks s as terminal.
	Steps(s S) []Step[S]
}

// ScratchSystem is the zero-allocation extension of System: a system that
// can enumerate successors directly into the engine's expansion context —
// reusing per-worker scratch buffers and emitting encoded states as raw
// bytes — instead of materializing a fresh []Step per state. When a system
// implements it, engine-routed exploration calls ExpandInto on the hot
// path and never calls Steps (the sequential fallback still does).
//
// The contract: ExpandInto(s, x) must emit exactly the transitions
// Steps(s) returns, in the same order, with byte-identical labels and
// successor encodings — Steps stays the executable specification, and the
// equivalence tests (plus engine.Differential and Options.VerifyAliasing)
// hold implementations to it. Buffer ownership follows engine.Ctx: emitted
// byte slices are consumed by the time the emit call returns and must not
// be retained by the system across expansions.
type ScratchSystem[S comparable] interface {
	System[S]
	ExpandInto(s S, x *engine.Ctx[S])
}

// ErrStateLimit is returned by Explore when the reachable state space
// exceeds the configured bound before exploration completes.
var ErrStateLimit = errors.New("core: state limit exceeded during exploration")

// edge is the interned form of a Step. It is the engine's canonical edge
// type, aliased so that parallel exploration results are adopted into a
// Graph without copying.
type edge = engine.Edge

// Graph is the explored reachable state graph of a System. It supports the
// analyses every impossibility engine needs: invariant checking with
// counterexample paths, terminal/deadlock detection, valence computation,
// and fair-cycle (livelock) detection.
type Graph[S comparable] struct {
	states []S
	// index is built eagerly by the sequential explorer and lazily (under
	// indexOnce) on the first StateID call for engine-built graphs, so
	// concurrent readers race neither on construction nor on lookup.
	index     map[S]int
	indexOnce sync.Once
	edges     [][]edge
	// parent[i] is the state that first reached state i during BFS, used
	// to reconstruct shortest witness paths; -1 for initial states.
	parent     []int
	parentEdge []edge
	inits      []int
}

// ExploreOptions bound an exploration.
type ExploreOptions struct {
	// MaxStates caps the number of distinct states explored. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Parallelism is the worker count for the exploration engine: 0 means
	// runtime.GOMAXPROCS(0), 1 selects the legacy sequential explorer.
	// Whatever the worker count, the resulting Graph is identical — state
	// numbering, edge order, parent tree and initials all match the
	// sequential explorer's, so downstream analyses stay reproducible.
	// Parallel exploration requires System.Steps to be safe for concurrent
	// calls and a pure function of its argument (true of every System in
	// this repository: canonical states in, deterministic steps out).
	Parallelism int
	// Stats, when non-nil, receives the engine's exploration telemetry.
	// Setting Stats routes exploration through the engine even when the
	// resolved parallelism is 1.
	Stats *engine.Stats
	// Canon, when non-nil, must be an engine.Canonicalizer[S] (or plain
	// func(S) S) over the system's state type: exploration then builds the
	// symmetry-quotient graph, interning only orbit representatives. Setting
	// Canon routes exploration through the engine at any parallelism. See
	// engine.Canonicalizer for the soundness contract and for which
	// predicates survive quotienting (orbit-invariant ones only).
	Canon any
	// VerifyCanon, when > 0, spot-checks Canon for idempotence and
	// step-commutation on every raw state whose fingerprint is ≡ 0 mod
	// VerifyCanon (1 = check everything); a violation fails the exploration
	// with engine.ErrCanonUnsound.
	VerifyCanon int
	// Independent, when non-nil, must be an engine.Independence[S] (or the
	// equivalent plain func type) over the system's state type: exploration
	// then applies ample-set partial-order reduction, expanding at each
	// state only a dependence-closed subset of the enabled steps. Setting
	// Independent routes exploration through the engine at any parallelism.
	// See engine.Independence for the soundness contract; the reduced graph
	// preserves terminal states and stutter-invariant verdicts, but is NOT
	// the full interleaving graph — per-interleaving analyses (e.g. decider
	// counting) must run without it. Composes with Canon.
	Independent any
	// Visible, when non-nil, must be an engine.Visibility[S] (or the
	// equivalent plain func type) marking the steps whose ordering the
	// downstream predicates can observe; such steps are never placed in a
	// proper ample set. Only meaningful together with Independent.
	Visible any
	// VerifyPOR, when > 0, re-executes declared-independent action pairs in
	// both orders at every expanded state whose fingerprint is ≡ 0 mod
	// VerifyPOR (1 = check everything); a broken diamond fails the
	// exploration with engine.ErrPORUnsound.
	VerifyPOR int
	// CanonBytes, when non-nil, must be an engine.BytesCanonicalizer (or a
	// func() engine.BytesCanonicalizer factory) matching Canon: it lets
	// the engine canonicalize byte-emitted successors without
	// materializing strings. Requires Canon. See engine.Options.
	CanonBytes any
	// VerifyAliasing, when > 0, re-expands every state whose fingerprint
	// is ≡ 0 mod VerifyAliasing after poisoning the reusable scratch
	// buffers (1 = check everything); an expansion that changes fails with
	// engine.ErrAliasUnsound. The falsifier for the ScratchSystem buffer
	// contract.
	VerifyAliasing int
	// Sink, when non-nil, streams the exploration's telemetry (run_start,
	// per-level barrier events, timer-driven progress snapshots, run_end)
	// to the observability layer. Setting Sink routes exploration through
	// the engine at any parallelism. Observation is passive: the Graph is
	// byte-identical with and without a sink. See obs.Sink.
	Sink obs.Sink
	// SnapshotEvery is the timer-driven snapshot period (only meaningful
	// with Sink; zero = engine.DefaultSnapshotEvery, negative = barrier
	// events only).
	SnapshotEvery time.Duration
	// Store selects the visited-set backend (zero value = the RAM-resident
	// mem store). Setting a non-empty Kind routes exploration through the
	// engine at any parallelism. A lossy backend (bitstate) taints the
	// exploration: the Graph may undercount the reachable set, so callers
	// must downgrade universally-quantified verdicts — check Stats.Lossy.
	// See store.Config.
	Store store.Config
	// Sched selects the exploration scheduler: "" or "barrier" for the
	// per-level fork/join loop, "steal" for the persistent work-stealing
	// pool (barrier-free discovery on low-branching graphs; see
	// engine.Options.Sched). The Graph is byte-identical either way —
	// scheduling is a performance knob, never a semantic one. Setting a
	// non-empty Sched routes exploration through the engine at any
	// parallelism.
	Sched string
}

// DefaultMaxStates bounds exploration when ExploreOptions.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// Explore performs breadth-first exhaustive exploration of sys and returns
// the reachable graph. It returns ErrStateLimit (wrapped) if the state
// space exceeds the bound; the partial graph built up to the bound — itself
// canonical, and identical at any parallelism — is returned alongside the
// error.
func Explore[S comparable](sys System[S], opts ExploreOptions) (*Graph[S], error) {
	limit := opts.MaxStates
	if limit <= 0 {
		limit = DefaultMaxStates
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > 1 || opts.Stats != nil || opts.Canon != nil || opts.Independent != nil || opts.Sink != nil || opts.Store.Kind != "" || opts.VerifyAliasing > 0 || opts.Sched != "" {
		return exploreEngine(sys, limit, par, opts)
	}
	return exploreSequential(sys, limit)
}

// exploreEngine delegates to the parallel exploration engine and adopts its
// canonical result as a Graph (the engine's edge arrays are shared, not
// copied; see the edge alias).
func exploreEngine[S comparable](sys System[S], limit, par int, opts ExploreOptions) (*Graph[S], error) {
	var expand engine.ExpandFunc[S]
	if ss, ok := sys.(ScratchSystem[S]); ok {
		expand = ss.ExpandInto
	} else {
		expand = func(s S, x *engine.Ctx[S]) {
			for _, st := range sys.Steps(s) {
				x.Emit(st.To, st.Label, st.Actor)
			}
		}
	}
	res, err := engine.Explore(sys.Init(), expand, engine.Options{
		MaxStates:      limit,
		Parallelism:    par,
		Stats:          opts.Stats,
		Canon:          opts.Canon,
		VerifyCanon:    opts.VerifyCanon,
		Independent:    opts.Independent,
		Visible:        opts.Visible,
		VerifyPOR:      opts.VerifyPOR,
		CanonBytes:     opts.CanonBytes,
		VerifyAliasing: opts.VerifyAliasing,
		Sink:           opts.Sink,
		SnapshotEvery:  opts.SnapshotEvery,
		Store:          opts.Store,
		Sched:          opts.Sched,
	})
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrNoInitialStates):
			return nil, errors.New("core: system has no initial states")
		case errors.Is(err, engine.ErrStateLimit):
			return adoptResult(res), fmt.Errorf("%w: limit %d", ErrStateLimit, limit)
		default:
			return nil, err
		}
	}
	return adoptResult(res), nil
}

// adoptResult wraps an engine result as a Graph. The index map is built
// lazily on the first StateID call rather than eagerly re-interning every
// state on the hot path.
func adoptResult[S comparable](res *engine.Result[S]) *Graph[S] {
	return &Graph[S]{
		states:     res.States,
		edges:      res.Edges,
		parent:     res.Parents,
		parentEdge: res.ParentEdges,
		inits:      res.Inits,
	}
}

// exploreSequential is the legacy single-threaded explorer, kept both as
// the Parallelism == 1 fast path (no level barriers, no canonicalization
// pass) and as the executable specification of the canonical order the
// engine must reproduce.
func exploreSequential[S comparable](sys System[S], limit int) (*Graph[S], error) {
	g := &Graph[S]{index: make(map[S]int)}
	intern := func(s S) (int, bool) {
		if id, ok := g.index[s]; ok {
			return id, false
		}
		id := len(g.states)
		g.states = append(g.states, s)
		g.index[s] = id
		g.edges = append(g.edges, nil)
		g.parent = append(g.parent, -1)
		g.parentEdge = append(g.parentEdge, edge{})
		return id, true
	}
	queue := make([]int, 0, 1024)
	for _, s := range sys.Init() {
		id, fresh := intern(s)
		if fresh {
			g.inits = append(g.inits, id)
			queue = append(queue, id)
		}
	}
	if len(g.inits) == 0 {
		return nil, errors.New("core: system has no initial states")
	}
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		steps := sys.Steps(g.states[id])
		out := make([]edge, 0, len(steps))
		for _, st := range steps {
			tid, fresh := intern(st.To)
			if fresh {
				if len(g.states) > limit {
					return g, fmt.Errorf("%w: limit %d", ErrStateLimit, limit)
				}
				g.parent[tid] = id
				g.parentEdge[tid] = edge{To: tid, Label: st.Label, Actor: st.Actor}
				queue = append(queue, tid)
			}
			out = append(out, edge{To: tid, Label: st.Label, Actor: st.Actor})
		}
		g.edges[id] = out
	}
	return g, nil
}

// Len returns the number of reachable states.
func (g *Graph[S]) Len() int { return len(g.states) }

// NumEdges returns the number of transitions in the reachable graph.
func (g *Graph[S]) NumEdges() int {
	n := 0
	for _, es := range g.edges {
		n += len(es)
	}
	return n
}

// State returns the state with internal id i. Ids are stable for the life
// of the graph and densely numbered from 0.
func (g *Graph[S]) State(i int) S { return g.states[i] }

// StateID returns the id of state s, if it is reachable. Graphs built by
// the parallel engine materialize the state index on the first call, under
// a sync.Once so that concurrent readers are safe: after exploration the
// graph is immutable and StateID may be called from multiple goroutines.
func (g *Graph[S]) StateID(s S) (int, bool) {
	g.indexOnce.Do(func() {
		if g.index != nil {
			// Built eagerly by the sequential explorer.
			return
		}
		idx := make(map[S]int, len(g.states))
		for i, st := range g.states {
			idx[st] = i
		}
		g.index = idx
	})
	id, ok := g.index[s]
	return id, ok
}

// Initials returns the ids of the initial states.
func (g *Graph[S]) Initials() []int {
	out := make([]int, len(g.inits))
	copy(out, g.inits)
	return out
}

// Successors returns the steps out of state id i.
func (g *Graph[S]) Successors(i int) []Step[S] {
	es := g.edges[i]
	out := make([]Step[S], len(es))
	for k, e := range es {
		out[k] = Step[S]{To: g.states[e.To], Label: e.Label, Actor: e.Actor}
	}
	return out
}

// IsTerminal reports whether state id i has no outgoing transitions.
func (g *Graph[S]) IsTerminal(i int) bool { return len(g.edges[i]) == 0 }

// Parent returns the id of the state that first reached state i during
// BFS, or -1 for initial states.
func (g *Graph[S]) Parent(i int) int { return g.parent[i] }

// ParentStep returns the step by which Parent(i) first reached state i.
// For initial states it returns the zero Step.
func (g *Graph[S]) ParentStep(i int) Step[S] {
	if g.parent[i] < 0 {
		return Step[S]{}
	}
	pe := g.parentEdge[i]
	return Step[S]{To: g.states[pe.To], Label: pe.Label, Actor: pe.Actor}
}

// TraceEvent is one step of a witness execution.
type TraceEvent struct {
	Label string
	Actor int
}

// Trace is a finite execution fragment: the sequence of events from an
// initial state to a witness state. It is the mechanized form of the
// paper's "construction of a bad execution".
type Trace []TraceEvent

// String renders the trace one event per line.
func (t Trace) String() string {
	out := ""
	for i, ev := range t {
		if i > 0 {
			out += "\n"
		}
		if ev.Actor == EnvironmentActor {
			out += fmt.Sprintf("%3d. [env] %s", i+1, ev.Label)
		} else {
			out += fmt.Sprintf("%3d. p%-3d %s", i+1, ev.Actor, ev.Label)
		}
	}
	return out
}

// PathTo reconstructs the BFS-shortest trace from an initial state to
// state id i.
func (g *Graph[S]) PathTo(i int) Trace {
	var rev []TraceEvent
	for cur := i; g.parent[cur] != -1; cur = g.parent[cur] {
		pe := g.parentEdge[cur]
		rev = append(rev, TraceEvent{Label: pe.Label, Actor: pe.Actor})
	}
	out := make(Trace, len(rev))
	for k := range rev {
		out[k] = rev[len(rev)-1-k]
	}
	return out
}

// FindState returns the id of a BFS-first reachable state satisfying pred,
// or ok=false if none exists.
func (g *Graph[S]) FindState(pred func(S) bool) (int, bool) {
	for i, s := range g.states {
		if pred(s) {
			return i, true
		}
	}
	return 0, false
}

// CheckInvariant verifies that inv holds in every reachable state. On
// violation it returns the violating state id and a witness trace.
func (g *Graph[S]) CheckInvariant(inv func(S) bool) (violation int, trace Trace, ok bool) {
	for i, s := range g.states {
		if !inv(s) {
			return i, g.PathTo(i), false
		}
	}
	return 0, nil, true
}

// Terminals returns the ids of all terminal (deadlocked or decided) states.
func (g *Graph[S]) Terminals() []int {
	var out []int
	for i := range g.states {
		if g.IsTerminal(i) {
			out = append(out, i)
		}
	}
	return out
}
