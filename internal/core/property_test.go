package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSys is a seeded random finite transition system over integer
// states, used to property-test the analyses.
type randomSys struct {
	n      int
	actors int
	edges  map[int][]Step[int]
}

func newRandomSys(seed int64) *randomSys {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(30) + 5
	actors := rng.Intn(3) + 1
	s := &randomSys{n: n, actors: actors, edges: make(map[int][]Step[int], n)}
	for v := 0; v < n; v++ {
		deg := rng.Intn(3)
		for e := 0; e < deg; e++ {
			s.edges[v] = append(s.edges[v], Step[int]{
				To:    rng.Intn(n),
				Label: "e",
				Actor: rng.Intn(actors),
			})
		}
	}
	return s
}

func (s *randomSys) Init() []int             { return []int{0} }
func (s *randomSys) Steps(v int) []Step[int] { return s.edges[v] }

// TestValenceMonotoneProperty: a state's attainable-decision set is the
// union of its successors' sets (plus its own decision) — the defining
// fixpoint, checked on random graphs against random decision functions.
func TestValenceMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		sys := newRandomSys(seed)
		g, err := Explore[int](sys, ExploreOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		decided := make(map[int]int)
		for i := 0; i < g.Len(); i++ {
			if rng.Intn(4) == 0 {
				decided[g.State(i)] = rng.Intn(3)
			}
		}
		decide := func(s int) (int, bool) {
			v, ok := decided[s]
			return v, ok
		}
		val, err := g.Valence(decide)
		if err != nil {
			return false
		}
		for i := 0; i < g.Len(); i++ {
			want := uint64(0)
			if v, ok := decide(g.State(i)); ok {
				want |= 1 << uint(v)
			}
			for _, st := range g.Successors(i) {
				j, _ := g.StateID(st.To)
				for _, v := range val.Values(j) {
					want |= 1 << uint(v)
				}
			}
			got := uint64(0)
			for _, v := range val.Values(i) {
				got |= 1 << uint(v)
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPathToAlwaysReplays: every witness path must replay from an initial
// state to the target through real edges.
func TestPathToAlwaysReplays(t *testing.T) {
	prop := func(seed int64) bool {
		sys := newRandomSys(seed)
		g, err := Explore[int](sys, ExploreOptions{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		target := rng.Intn(g.Len())
		tr := g.PathTo(target)
		// The witness trace must have exactly the target's BFS depth (it
		// is reconstructed from BFS parents); verify via a fresh BFS.
		// Labels here are deliberately ambiguous, so a literal replay is
		// not well defined — length against an independent BFS is the
		// invariant.
		dist := bfsDistances(g)
		return len(tr) == dist[target]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func bfsDistances[S comparable](g *Graph[S]) []int {
	dist := make([]int, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	queue := g.Initials()
	for _, i := range queue {
		dist[i] = 0
	}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		for _, st := range g.Successors(i) {
			j, _ := g.StateID(st.To)
			if dist[j] < 0 {
				dist[j] = dist[i] + 1
				queue = append(queue, j)
			}
		}
	}
	return dist
}

// TestLeadsToConsistentWithNoFairness: whatever violates leads-to under
// weak fairness also violates it with no fairness (weak fairness admits
// fewer executions, so it can only make liveness easier to satisfy).
func TestLeadsToConsistentWithNoFairness(t *testing.T) {
	prop := func(seed int64) bool {
		sys := newRandomSys(seed)
		g, err := Explore[int](sys, ExploreOptions{})
		if err != nil {
			return false
		}
		premise := func(s int) bool { return s%3 == 0 }
		goal := func(s int) bool { return s%7 == 1 }
		weak := g.CheckLeadsTo(premise, goal, WeakFairness, sys.actors)
		none := g.CheckLeadsTo(premise, goal, NoFairness, sys.actors)
		// none.Holds => weak.Holds (fewer admissible executions).
		if none.Holds && !weak.Holds {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFairLassoCycleStaysInAllowedSet: any lasso returned must keep its
// cycle within the allowed predicate.
func TestFairLassoCycleStaysInAllowedSet(t *testing.T) {
	prop := func(seed int64) bool {
		sys := newRandomSys(seed)
		g, err := Explore[int](sys, ExploreOptions{})
		if err != nil {
			return false
		}
		allowed := func(i int) bool { return g.State(i)%5 != 2 }
		lasso, ok := g.FairLassoWithin(allowed, NoFairness, sys.actors)
		if !ok {
			return true // nothing to check
		}
		if !allowed(lasso.Entry) {
			return false
		}
		return len(lasso.Cycle) > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
